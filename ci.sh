#!/bin/sh
# ci.sh — the full local gate: formatting, vet, build, race-enabled tests.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== fluidvet =="
# The repo's own analyzers (determinism, diagcode, errwrap, syncerr,
# enumswitch, parallelsafe, globalstate, sharedcapture) run through the
# same vet driver. The binary lands in the build cache, so rebuilds
# after the first run are near-instant.
vettmp=$(mktemp -d)
trap 'rm -rf "$vettmp"' EXIT
go build -o "$vettmp/fluidvet" ./cmd/fluidvet
go vet -vettool="$vettmp/fluidvet" ./...

echo "== fluidvet -json dump =="
# Machine-readable findings dump (one JSON object per vetted package,
# on the tool's stderr channel; '#' lines are go vet's package headers).
# The gate is the plain run above — this dump always exits 0 and is
# uploaded as a CI artifact so certification output can be diffed
# across commits.
go vet -vettool="$vettmp/fluidvet" -json ./... 2>&1 >/dev/null \
    | grep -v '^#' >fluidvet-findings.json
echo "wrote fluidvet-findings.json ($(wc -c <fluidvet-findings.json) bytes)"

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (10s each) =="
go test -fuzz=FuzzAssemble -fuzztime=10s ./internal/ais
go test -fuzz=FuzzLint -fuzztime=10s ./internal/analysis
go test -fuzz=FuzzDecode -fuzztime=10s ./internal/journal

echo "== aisverify over compiled examples =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp" "$vettmp"' EXIT
# Static assay: verify the shipped (listing, volume table) pair.
go run ./cmd/fluidc -o "$tmp/glucose.ais" -voltab "$tmp/glucose.vol" testdata/glucose.asy
go run ./cmd/aisverify -voltab "$tmp/glucose.vol" "$tmp/glucose.ais"
# Staged assay (§3.5): volumes resolve at run time.
go run ./cmd/fluidc -o "$tmp/glycomics.ais" testdata/glycomics.asy
go run ./cmd/aisverify -unknown-volumes "$tmp/glycomics.ais"

echo "== fault-injection determinism =="
# Same (listing, seed, profile) must give byte-identical output, trace
# included: faults and recovery draw from one seeded PRNG stream.
go run ./cmd/fluidvm -faults moderate -seed 42 -recover -trace testdata/glucose.asy >"$tmp/run1.out" 2>&1
go run ./cmd/fluidvm -faults moderate -seed 42 -recover -trace testdata/glucose.asy >"$tmp/run2.out" 2>&1
cmp "$tmp/run1.out" "$tmp/run2.out"

echo "== durable execution: crash + resume =="
# A journaled run killed mid-flight must resume from its write-ahead
# journal to stdout byte-identical to the uninterrupted run's, and a
# journal with a torn tail must recover instead of failing.
go build -o "$tmp/fluidvm" ./cmd/fluidvm
"$tmp/fluidvm" -faults moderate -seed 42 -journal "$tmp/ref.aqj" testdata/glucose.asy >"$tmp/ref.out"
status=0
"$tmp/fluidvm" -faults moderate -seed 42 -journal "$tmp/crash.aqj" -crash-at 7 testdata/glucose.asy >/dev/null 2>&1 || status=$?
[ "$status" -eq 3 ] # exit 3 = aborted
"$tmp/fluidvm" -resume "$tmp/crash.aqj" testdata/glucose.asy >"$tmp/resume.out" 2>/dev/null
cmp "$tmp/ref.out" "$tmp/resume.out"
size=$(wc -c <"$tmp/crash.aqj")
head -c $((size - 5)) "$tmp/crash.aqj" >"$tmp/torn.aqj"
"$tmp/fluidvm" -resume "$tmp/torn.aqj" testdata/glucose.asy >"$tmp/torn.out" 2>/dev/null
cmp "$tmp/ref.out" "$tmp/torn.out"

echo "== adaptive replanning: determinism + crash at a replan boundary =="
# Replanning re-solves the residual DAG around measured volumes. The
# same seed must patch the plan identically twice, and a crash landing
# inside the replanned region must resume to byte-identical output —
# whether the resume re-derives the replan (crash before the next
# snapshot) or restores its patch overlay from one (crash after).
"$tmp/fluidvm" -replan -faults moderate -seed 42 -trace testdata/glucose.asy >"$tmp/replan1.out" 2>&1
"$tmp/fluidvm" -replan -faults moderate -seed 42 -trace testdata/glucose.asy >"$tmp/replan2.out" 2>&1
cmp "$tmp/replan1.out" "$tmp/replan2.out"
grep -Eq ' [1-9][0-9]* replans' "$tmp/replan1.out" # the gate is vacuous if nothing replanned
"$tmp/fluidvm" -replan -faults moderate -seed 42 -journal "$tmp/rref.aqj" testdata/glucose.asy >"$tmp/rref.out"
# Seed 42 replans at boundaries 6, 16 and 26; snapshots land every 8.
# Crash at 7: resume replays from snapshot 0 and must re-derive the
# boundary-6 replan. Crash at 18: resume restores snapshot 16, whose
# state already carries the replan patch overlay.
for at in 7 18; do
    status=0
    "$tmp/fluidvm" -replan -faults moderate -seed 42 -journal "$tmp/rcrash$at.aqj" -crash-at "$at" testdata/glucose.asy >/dev/null 2>&1 || status=$?
    [ "$status" -eq 3 ]
    "$tmp/fluidvm" -resume "$tmp/rcrash$at.aqj" testdata/glucose.asy >"$tmp/rresume.out" 2>/dev/null
    cmp "$tmp/rref.out" "$tmp/rresume.out"
done

echo "== storage-fault robustness (E14) =="
# The storage-chaos matrix injects one fault at every journal I/O site
# (EIO, ENOSPC, short writes, lying fsyncs) and asserts the trichotomy:
# clean completion, refused journal creation, or a fail-stop abort whose
# salvaged journal resumes bit-identical. The table is seeded and
# timing-free, so two runs must agree byte for byte.
go build -o "$tmp/volbench" ./cmd/volbench
"$tmp/volbench" -experiment storage-chaos >"$tmp/chaos1.out"
"$tmp/volbench" -experiment storage-chaos >"$tmp/chaos2.out"
cmp "$tmp/chaos1.out" "$tmp/chaos2.out"
grep -q 'recovered' "$tmp/chaos1.out"
! grep -q 'FAILED' "$tmp/chaos1.out"
# fluidvm smoke: a journal refuses to clobber crash evidence, a lying
# fsync under -fsfaults fail-stops the run, and the snapshot-fallback
# resume still lands on the reference output.
status=0
"$tmp/fluidvm" -journal "$tmp/ref.aqj" testdata/glucose.asy >/dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] # exit 1 = refused to clobber the earlier reference journal
status=0
"$tmp/fluidvm" -fsfaults sync@2:lying -journal "$tmp/lying.aqj" -force-journal testdata/glucose.asy >/dev/null 2>&1 || status=$?
[ "$status" -eq 3 ] # exit 3 = fail-stop abort on the first failed fsync

echo "== bounded execution (E15) =="
# The cancel-at-every-boundary matrix cancels every certified solver
# path and every shipped assay at a sweep of charge/instruction
# boundaries, asserting the trichotomy: completed, clean typed cancel
# after exactly k work units, or a fail-stopped journal whose salvaged
# prefix resumes bit-identical. The table is seeded and timing-free, so
# two runs must agree byte for byte (cancellation latency and polling
# overhead are wall-clock and live in the JSON report only).
"$tmp/volbench" -experiment bounded >"$tmp/bounded1.out"
"$tmp/volbench" -experiment bounded >"$tmp/bounded2.out"
cmp "$tmp/bounded1.out" "$tmp/bounded2.out"
! grep -qw 'NO' "$tmp/bounded1.out" # every row completes at exactly its budget
# fluidvm smoke: a work budget that runs out mid-execution fail-stops
# the journaled run with exit 5 (cancelled/deadline/budget), and the
# salvaged journal resumes to output byte-identical to the
# uninterrupted reference run from the durable-execution gate above.
# (Planning for this assay now costs ~60 units with certification
# charging the meter, so 80 is the smallest round budget that gets
# past planning and trips mid-execution with a journal to salvage.)
status=0
"$tmp/fluidvm" -budget 80 -faults moderate -seed 42 -journal "$tmp/cancel.aqj" testdata/glucose.asy >/dev/null 2>&1 || status=$?
[ "$status" -eq 5 ] # exit 5 = budget exhausted mid-run
"$tmp/fluidvm" -resume "$tmp/cancel.aqj" testdata/glucose.asy >"$tmp/cancel-resume.out" 2>/dev/null
cmp "$tmp/ref.out" "$tmp/cancel-resume.out"
# A budget that runs out during planning trips before the journal is
# ever created: exit 5, no journal, nothing to clobber or salvage.
status=0
"$tmp/fluidvm" -budget 20 -faults moderate -seed 42 -journal "$tmp/plantrip.aqj" testdata/glucose.asy >/dev/null 2>&1 || status=$?
[ "$status" -eq 5 ]
[ ! -f "$tmp/plantrip.aqj" ]

echo "== proof-carrying plans (E16) =="
# The mutation kill matrix perturbs every field of every shipped plan
# and errors out unless the certification layer kills 100% of mutants
# with exactly one typed cause each. The kill table is timing-free and
# deterministic, so two runs must agree byte for byte; the per-assay
# certify-vs-solve overhead is wall-clock and lives in the JSON report
# (BENCH_certify.json, uploaded as a CI artifact).
"$tmp/volbench" -experiment certify -json BENCH_certify.json >"$tmp/certify1.out"
"$tmp/volbench" -experiment certify >"$tmp/certify2.out"
cmp "$tmp/certify1.out" "$tmp/certify2.out"
# The gate itself must be live, not just the library: a compile whose
# solved plan is corrupted before certification must fail with a
# certification diagnostic and generate no code.
status=0
go run ./cmd/fluidc -mutate-plan -o "$tmp/mutated.ais" testdata/glucose.asy 2>"$tmp/mutate.err" || status=$?
[ "$status" -ne 0 ]
grep -q 'failed certification' "$tmp/mutate.err"
[ ! -s "$tmp/mutated.ais" ]

echo "CI OK"
