#!/bin/sh
# ci.sh — the full local gate: formatting, vet, build, race-enabled tests.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
