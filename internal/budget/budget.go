// Package budget provides deterministic work budgets and cooperative
// cancellation for the planning/execution pipeline.
//
// A Meter counts abstract work units — simplex pivots, branch-and-bound
// nodes, simulated instructions — and trips with a typed, errors.Is-
// matchable cause when a bound is crossed:
//
//   - ErrCancelled: the caller (or a chaos harness) asked to stop;
//   - ErrDeadline:  an optional wall-clock deadline expired;
//   - ErrExhausted: the work-unit budget ran out.
//
// Work-unit budgets are deterministic: the same program charged the
// same way trips at the same unit on every run, so budget-truncated
// results are replayable and can be asserted byte-for-byte in benches.
// Wall-clock deadlines are resource guards only — they depend on host
// speed, are never recorded in journals or snapshots, and truncation
// by deadline is reported, never replayed (the //fluidvet:allow
// determinism convention marks the two clock reads below).
//
// A Meter is config, not state: it is never snapshotted, so a journal
// salvaged from a cancelled run resumes under a fresh (or absent)
// meter and completes bit-identically to an uninterrupted run.
//
// All methods are safe for concurrent use and nil-receiver safe: a nil
// *Meter is an unlimited, uncancellable budget, so call sites charge
// unconditionally without guarding.
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// The cause taxonomy. Every error returned by Charge/Err wraps exactly
// one of these sentinels; match with errors.Is or classify with IsStop.
var (
	// ErrCancelled reports a caller-initiated stop (Cancel or a
	// deterministic CancelAfter trip).
	ErrCancelled = errors.New("budget: cancelled")
	// ErrDeadline reports an expired wall-clock deadline.
	ErrDeadline = errors.New("budget: deadline exceeded")
	// ErrExhausted reports a spent work-unit budget.
	ErrExhausted = errors.New("budget: work budget exhausted")
)

// IsStop reports whether err carries any budget stop cause. Call sites
// that must distinguish truncation from corruption (e.g. SolveResidual's
// infeasible-fallback path) use this to let stops propagate untouched.
func IsStop(err error) bool {
	return errors.Is(err, ErrCancelled) || errors.Is(err, ErrDeadline) || errors.Is(err, ErrExhausted)
}

// Meter states. The first cause to trip is sticky: once stopped, every
// subsequent Charge/Err reports the same cause, so a run cancelled
// during budget-exhaustion cleanup still reports exhaustion.
const (
	stRunning int32 = iota
	stCancelled
	stDeadline
	stExhausted
)

// defaultPollEvery is the deadline-poll stride: Charge reads the clock
// only every N charges (and on the first), keeping per-pivot overhead
// at an atomic add + compare in the common case. Err always polls.
const defaultPollEvery = 64

// A Meter is a shared work budget. Construct with New (or new(Meter)
// for an unlimited, cancellable meter), then chain WithDeadline /
// CancelAfter / DeadlineEvery as needed. The zero Meter is unlimited.
type Meter struct {
	work      int64     // max work units; 0 = unlimited
	cancelAt  int64     // deterministic cancel trip point; 0 = none
	deadline  time.Time // wall-clock deadline; zero = none
	pollEvery int64     // deadline poll stride; 0 = defaultPollEvery

	used  atomic.Int64
	state atomic.Int32
}

// New returns a Meter limited to work units; work <= 0 means unlimited.
func New(work int64) *Meter {
	m := &Meter{}
	if work > 0 {
		m.work = work
	}
	return m
}

// WithDeadline arms a wall-clock deadline d from now; d <= 0 leaves the
// meter deadline-free. Deadlines are resource guards, not replayable
// bounds — see the package comment. Returns m for chaining.
func (m *Meter) WithDeadline(d time.Duration) *Meter {
	if d > 0 {
		//fluidvet:allow determinism deadline is a resource guard; truncation is reported, never replayed
		m.deadline = time.Now().Add(d)
	}
	return m
}

// DeadlineEvery sets the deadline-poll stride to every n charges
// (n >= 1). Coarse-grained loops (one charge per branch-and-bound
// node) poll every charge; fine-grained loops (one per pivot) keep the
// default stride. Returns m for chaining.
func (m *Meter) DeadlineEvery(n int64) *Meter {
	if n >= 1 {
		m.pollEvery = n
	}
	return m
}

// CancelAfter arms a deterministic cancellation: the charge that makes
// the used count reach n trips ErrCancelled. This is the chaos-matrix
// hook — it lands the cancel at an exact work-unit boundary, the same
// one on every run. n <= 0 disarms. Returns m for chaining.
func (m *Meter) CancelAfter(n int64) *Meter {
	if n > 0 {
		m.cancelAt = n
	} else {
		m.cancelAt = 0
	}
	return m
}

// Cancel requests a stop. Safe to call from any goroutine, any number
// of times; the first cause to land wins.
func (m *Meter) Cancel() {
	if m == nil {
		return
	}
	m.state.CompareAndSwap(stRunning, stCancelled)
}

// stop trips the meter to cause (if still running) and returns the
// error for the cause that actually holds — the sticky first one.
func (m *Meter) stop(cause int32) error {
	m.state.CompareAndSwap(stRunning, cause)
	return m.cause()
}

// cause maps the current state to its error, nil while running.
func (m *Meter) cause() error {
	switch m.state.Load() {
	case stCancelled:
		return fmt.Errorf("%w after %d work units", ErrCancelled, m.used.Load())
	case stDeadline:
		return fmt.Errorf("%w after %d work units", ErrDeadline, m.used.Load())
	case stExhausted:
		return fmt.Errorf("%w after %d work units", ErrExhausted, m.used.Load())
	}
	return nil
}

// overDeadline reports whether the armed deadline has passed.
func (m *Meter) overDeadline() bool {
	if m.deadline.IsZero() {
		return false
	}
	//fluidvet:allow determinism deadline is a resource guard; truncation is reported, never replayed
	return time.Now().After(m.deadline)
}

// Charge consumes n work units and returns the stop cause if the meter
// has tripped (now or earlier). The charge is counted even when it
// trips, so Used reports where the stop landed. A nil Meter charges
// nothing and never stops.
//
// The deterministic bounds (work exhaustion, CancelAfter) are exact:
// they trip on the precise charge that crosses them, every run. The
// asynchronous signals (Cancel from another goroutine, the wall-clock
// deadline) are polled on the first charge and at every stride boundary
// (DeadlineEvery), keeping the common case to one atomic add plus
// register compares; detection latency is bounded by the stride.
//
// Charge is a thin inlinable wrapper over the out-of-line charge slow
// path: unbudgeted callers sit in the solvers' hottest loops (one
// charge per simplex pivot, per B&B node, per DAG node walked), and an
// un-inlined call there — spilling the loop's registers at every
// iteration — costs the nil path double-digit percent of planning
// throughput. Keep this wrapper small enough to inline.
func (m *Meter) Charge(n int64) error {
	if m == nil {
		return nil
	}
	return m.charge(n)
}

func (m *Meter) charge(n int64) error {
	used := m.used.Add(n)
	if m.cancelAt > 0 && used >= m.cancelAt {
		return m.stop(stCancelled)
	}
	if m.work > 0 && used > m.work {
		return m.stop(stExhausted)
	}
	stride := m.pollEvery
	if stride <= 0 {
		stride = defaultPollEvery
	}
	// Poll on the first charge and whenever a stride boundary is
	// crossed; n > 1 charges cross at most one boundary short of n.
	if used-n < 1 || (used-n)/stride != used/stride {
		if err := m.cause(); err != nil {
			return err
		}
		if m.overDeadline() {
			return m.stop(stDeadline)
		}
	}
	return nil
}

// Err polls the meter without charging: it returns the stop cause if
// tripped, checking the deadline unconditionally. Loops that do no
// countable work (recovery's instruction loop charges through the
// machine's meter, not its own) poll with Err at their boundaries.
// Like Charge, the nil check inlines and the poll stays out of line.
func (m *Meter) Err() error {
	if m == nil {
		return nil
	}
	return m.err()
}

func (m *Meter) err() error {
	if err := m.cause(); err != nil {
		return err
	}
	if m.cancelAt > 0 && m.used.Load() >= m.cancelAt {
		return m.stop(stCancelled)
	}
	if m.overDeadline() {
		return m.stop(stDeadline)
	}
	return nil
}

// Used returns the work units charged so far (0 for a nil Meter).
func (m *Meter) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Remaining returns the work units left before exhaustion, or -1 when
// the meter is unlimited (or nil).
func (m *Meter) Remaining() int64 {
	if m == nil || m.work <= 0 {
		return -1
	}
	if r := m.work - m.used.Load(); r > 0 {
		return r
	}
	return 0
}
