package budget

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil meter is an unlimited, uncancellable budget: every operation
// is a no-op, so call sites charge unconditionally.
func TestNilMeterIsUnlimited(t *testing.T) {
	var m *Meter
	if err := m.Charge(1 << 40); err != nil {
		t.Fatalf("nil meter charged: %v", err)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("nil meter tripped: %v", err)
	}
	m.Cancel() // must not panic
	if m.Used() != 0 || m.Remaining() != -1 {
		t.Fatalf("nil meter: Used=%d Remaining=%d", m.Used(), m.Remaining())
	}
}

func TestZeroMeterIsUnlimitedButCancellable(t *testing.T) {
	m := new(Meter)
	for i := 0; i < 1000; i++ {
		if err := m.Charge(1); err != nil {
			t.Fatalf("unlimited meter tripped at %d: %v", i, err)
		}
	}
	if m.Remaining() != -1 {
		t.Fatalf("Remaining = %d, want -1 (unlimited)", m.Remaining())
	}
	m.Cancel()
	// Err polls the shared state directly: immediate detection.
	if err := m.Err(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("post-cancel Err: %v, want ErrCancelled", err)
	}
	// Charge polls it at stride boundaries: detection within one stride.
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		err = m.Charge(1)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("post-cancel charges: %v, want ErrCancelled within one poll stride", err)
	}
}

// Exhaustion trips on the charge that exceeds the budget: a meter of N
// admits exactly N units, so truncated searches report Used == N.
func TestExhaustionBoundary(t *testing.T) {
	m := New(3)
	for i := 0; i < 3; i++ {
		if err := m.Charge(1); err != nil {
			t.Fatalf("charge %d within budget tripped: %v", i+1, err)
		}
	}
	err := m.Charge(1)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("charge past budget: %v, want ErrExhausted", err)
	}
	if !IsStop(err) {
		t.Fatal("IsStop must classify ErrExhausted")
	}
	if m.Used() != 4 {
		t.Fatalf("Used = %d, want 4 (tripping charge is counted)", m.Used())
	}
	if m.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", m.Remaining())
	}
}

// CancelAfter trips deterministically on the charge that reaches n —
// the chaos-matrix contract: same charge pattern, same trip point.
func TestCancelAfterDeterministic(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		m := New(0).CancelAfter(5)
		var tripped int64
		for i := int64(1); i <= 10; i++ {
			if err := m.Charge(1); err != nil {
				if !errors.Is(err, ErrCancelled) {
					t.Fatalf("trip cause: %v, want ErrCancelled", err)
				}
				tripped = i
				break
			}
		}
		if tripped != 5 {
			t.Fatalf("trial %d: tripped at charge %d, want 5", trial, tripped)
		}
	}
}

// The first cause is sticky: a meter that exhausted its budget keeps
// reporting exhaustion even after a later Cancel.
func TestFirstCauseSticky(t *testing.T) {
	m := New(1)
	if err := m.Charge(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	m.Cancel()
	if err := m.Err(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("cause not sticky: %v, want ErrExhausted", err)
	}
	if err := m.Charge(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("cause not sticky on charge: %v, want ErrExhausted", err)
	}
}

// An already-expired deadline trips on the first charge regardless of
// the poll stride, and Err always polls the clock.
func TestDeadlineExpired(t *testing.T) {
	m := New(0).WithDeadline(time.Nanosecond)
	time.Sleep(time.Millisecond)
	if err := m.Charge(1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("first charge past deadline: %v, want ErrDeadline", err)
	}

	m2 := New(0).WithDeadline(time.Nanosecond)
	time.Sleep(time.Millisecond)
	if err := m2.Err(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Err past deadline: %v, want ErrDeadline", err)
	}
}

// DeadlineEvery(1) polls every charge, so the trip lands within one
// charge of expiry even off the default stride.
func TestDeadlineEveryCharge(t *testing.T) {
	m := New(0).WithDeadline(time.Nanosecond).DeadlineEvery(1)
	time.Sleep(time.Millisecond)
	// Land mid-stride relative to the default 64.
	for i := 0; i < 3; i++ {
		if err := m.Charge(1); err != nil {
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("cause: %v, want ErrDeadline", err)
			}
			if i != 0 {
				t.Fatalf("tripped at charge %d, want first", i+1)
			}
			return
		}
	}
	t.Fatal("expired deadline never tripped with per-charge polling")
}

// WithDeadline(0) and negative durations leave the meter deadline-free.
func TestNoDeadline(t *testing.T) {
	m := New(0).WithDeadline(0)
	if err := m.Charge(1); err != nil {
		t.Fatalf("deadline-free meter tripped: %v", err)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("deadline-free Err tripped: %v", err)
	}
}

// Concurrent chargers racing a sibling Cancel: every goroutine
// eventually observes ErrCancelled, exactly once each, with no torn
// state (run under -race in CI).
func TestConcurrentCancel(t *testing.T) {
	m := New(0)
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if err := m.Charge(1); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	m.Cancel()
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("worker %d: %v, want ErrCancelled", w, err)
		}
	}
}

// IsStop classifies exactly the three causes.
func TestIsStop(t *testing.T) {
	for _, err := range []error{ErrCancelled, ErrDeadline, ErrExhausted} {
		if !IsStop(err) {
			t.Errorf("IsStop(%v) = false", err)
		}
	}
	if IsStop(errors.New("unrelated")) {
		t.Error("IsStop(unrelated) = true")
	}
	if IsStop(nil) {
		t.Error("IsStop(nil) = true")
	}
}

// Errors carry the work-unit count at the stop for diagnostics.
func TestErrorMessageCarriesUsed(t *testing.T) {
	m := New(2)
	m.Charge(1)
	m.Charge(1)
	err := m.Charge(1)
	if err == nil || !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v", err)
	}
	if want := "after 3 work units"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}
