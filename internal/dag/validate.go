package dag

import (
	"fmt"
	"math"
)

// fracTol is the tolerance for inbound-fraction sums.
const fracTol = 1e-9

// Validate checks structural invariants:
//
//   - the graph is acyclic;
//   - every edge fraction is positive, finite, and ≤ 1;
//   - the inbound fractions of every non-source node sum to 1;
//   - source nodes are Inputs or ConstrainedInputs, and vice versa;
//   - OutFrac ∈ (0, 1], Discard ∈ [0, 1), Share ∈ (0, 1] where applicable;
//   - only Separate nodes use named output ports;
//   - Excess nodes are leaves with a single inbound edge.
//
// It returns the first violation found, or nil.
func (g *Graph) Validate() error {
	for _, e := range g.edges {
		if e == nil {
			continue
		}
		if e.Frac <= 0 || e.Frac > 1+fracTol || math.IsNaN(e.Frac) || math.IsInf(e.Frac, 0) {
			return fmt.Errorf("dag: edge %v has invalid fraction %v", e, e.Frac)
		}
		if e.Port != PortDefault && e.From.Kind != Separate {
			return fmt.Errorf("dag: edge %v uses port %q but source is %v", e, e.Port, e.From.Kind)
		}
	}
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		switch {
		case n.OutFrac <= 0 || n.OutFrac > 1+fracTol || math.IsNaN(n.OutFrac):
			return fmt.Errorf("dag: node %v has invalid OutFrac %v", n, n.OutFrac)
		case n.Discard < 0 || n.Discard >= 1 || math.IsNaN(n.Discard):
			return fmt.Errorf("dag: node %v has invalid Discard %v", n, n.Discard)
		}
		isPseudoSource := n.Kind == Input || n.Kind == ConstrainedInput
		if n.IsSource() != isPseudoSource {
			if isPseudoSource {
				return fmt.Errorf("dag: %v node %v has inbound edges", n.Kind, n)
			}
			return fmt.Errorf("dag: node %v has no inbound edges but is not an input", n)
		}
		if n.Kind == ConstrainedInput {
			if n.Share <= 0 || n.Share > 1+fracTol || math.IsNaN(n.Share) {
				return fmt.Errorf("dag: constrained input %v has invalid share %v", n, n.Share)
			}
		}
		if n.Kind == Excess {
			if !n.IsLeaf() || len(n.in) != 1 {
				return fmt.Errorf("dag: excess node %v must be a leaf with one inbound edge", n)
			}
		}
		if !n.IsSource() {
			sum := 0.0
			for _, e := range n.in {
				sum += e.Frac
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("dag: node %v inbound fractions sum to %v, want 1", n, sum)
			}
		}
	}
	// Cycle check via DFS (TopoOrder panics; keep Validate non-panicking).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Node]int, len(g.nodes))
	var visit func(n *Node) error
	visit = func(n *Node) error {
		color[n] = gray
		for _, e := range n.out {
			switch color[e.To] {
			case gray:
				return fmt.Errorf("dag: cycle through %v -> %v", n, e.To)
			case white:
				if err := visit(e.To); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.nodes {
		if n != nil && color[n] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	return nil
}
