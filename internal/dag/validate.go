package dag

import (
	"errors"
	"fmt"
	"math"
)

// fracTol is the tolerance for inbound-fraction sums.
const fracTol = 1e-9

// Validate checks structural invariants:
//
//   - the graph is acyclic;
//   - every edge fraction is positive, finite, and ≤ 1;
//   - the inbound fractions of every non-source node sum to 1;
//   - source nodes are Inputs or ConstrainedInputs, and vice versa;
//   - OutFrac ∈ (0, 1], Discard ∈ [0, 1), Share ∈ (0, 1] where applicable,
//     and all three are finite (neither NaN nor ±Inf);
//   - only Separate nodes use named output ports;
//   - Excess nodes are leaves with a single inbound edge.
//
// It returns every violation found, joined into a single error (nil if the
// graph is valid). Use ValidateAll to examine violations individually.
//
// Validate is certified parallel-safe: it only reads the graph, so any
// number of goroutines may validate (distinct or shared, unmutated)
// graphs concurrently.
//
//fluidvet:parallelsafe
func (g *Graph) Validate() error {
	return errors.Join(g.ValidateAll()...)
}

// ValidateAll is Validate returning the individual violations instead of a
// joined error. It returns nil for a valid graph.
func (g *Graph) ValidateAll() []error {
	var errs []error
	badf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	for _, e := range g.edges {
		if e == nil {
			continue
		}
		if e.Frac <= 0 || e.Frac > 1+fracTol || math.IsNaN(e.Frac) || math.IsInf(e.Frac, 0) {
			badf("dag: edge %v has invalid fraction %v", e, e.Frac)
		}
		if e.Port != PortDefault && e.From.Kind != Separate {
			badf("dag: edge %v uses port %q but source is %v", e, e.Port, e.From.Kind)
		}
	}
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		if n.OutFrac <= 0 || n.OutFrac > 1+fracTol || math.IsNaN(n.OutFrac) || math.IsInf(n.OutFrac, 0) {
			badf("dag: node %v has invalid OutFrac %v", n, n.OutFrac)
		}
		if n.Discard < 0 || n.Discard >= 1 || math.IsNaN(n.Discard) || math.IsInf(n.Discard, 0) {
			badf("dag: node %v has invalid Discard %v", n, n.Discard)
		}
		isPseudoSource := n.Kind == Input || n.Kind == ConstrainedInput
		if n.IsSource() != isPseudoSource {
			if isPseudoSource {
				badf("dag: %v node %v has inbound edges", n.Kind, n)
			} else {
				badf("dag: node %v has no inbound edges but is not an input", n)
			}
		}
		if n.Kind == ConstrainedInput {
			if n.Share <= 0 || n.Share > 1+fracTol || math.IsNaN(n.Share) || math.IsInf(n.Share, 0) {
				badf("dag: constrained input %v has invalid share %v", n, n.Share)
			}
		}
		if n.Kind == Excess {
			if !n.IsLeaf() || len(n.in) != 1 {
				badf("dag: excess node %v must be a leaf with one inbound edge", n)
			}
		}
		if !n.IsSource() {
			sum := 0.0
			for _, e := range n.in {
				sum += e.Frac
			}
			if math.Abs(sum-1) > 1e-6 {
				badf("dag: node %v inbound fractions sum to %v, want 1", n, sum)
			}
		}
	}
	// Cycle check via DFS (TopoOrder panics; keep Validate non-panicking).
	// One representative cycle is reported rather than every rotation.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Node]int, len(g.nodes))
	var visit func(n *Node) error
	visit = func(n *Node) error {
		color[n] = gray
		for _, e := range n.out {
			switch color[e.To] {
			case gray:
				return fmt.Errorf("dag: cycle through %v -> %v", n, e.To)
			case white:
				if err := visit(e.To); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.nodes {
		if n != nil && color[n] == white {
			if err := visit(n); err != nil {
				errs = append(errs, err)
				break
			}
		}
	}
	return errs
}
