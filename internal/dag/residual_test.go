package dag

import "testing"

// chainFixture is in1,in2 → mix M → incubate H → sense end.
func chainFixture() (*Graph, *Node, *Node, *Node) {
	g := New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	m := g.AddMix("M", Part{Source: in1, Ratio: 1}, Part{Source: in2, Ratio: 3})
	h := g.AddUnary(Incubate, "H", m)
	g.AddUnary(Sense, "end", h)
	return g, m, h, g.NodeByName("end")
}

func TestExtractResidualBasic(t *testing.T) {
	g, m, h, end := chainFixture()
	done := map[int]bool{}
	for _, n := range []string{"in1", "in2", "M"} {
		done[g.NodeByName(n).ID()] = true
	}
	r, err := ExtractResidual(g, func(n *Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	// Pending H and end survive; one ConstrainedInput replaces M.
	if got := r.Graph.NumNodes(); got != 3 {
		t.Fatalf("residual nodes = %d, want 3 (H, end, M@live)", got)
	}
	if len(r.Boundaries) != 1 {
		t.Fatalf("boundaries = %d, want 1", len(r.Boundaries))
	}
	b := r.Boundaries[0]
	if b.SourceID != m.ID() || b.SourcePort != PortDefault {
		t.Errorf("boundary = %+v, want source M default port", b)
	}
	ci := r.Graph.Node(b.CINode)
	if ci.Kind != ConstrainedInput || ci.Share != 1 {
		t.Errorf("CI = kind %v share %v, want ConstrainedInput share 1", ci.Kind, ci.Share)
	}
	// NodeOf round-trips the pending nodes; the CI has no original.
	back := map[int]bool{}
	for res, orig := range r.NodeOf {
		if res == b.CINode {
			t.Error("NodeOf contains the synthetic constrained input")
		}
		back[orig] = true
	}
	if !back[h.ID()] || !back[end.ID()] || len(r.NodeOf) != 2 {
		t.Errorf("NodeOf = %v, want exactly {H, end}", r.NodeOf)
	}
	// The cut M→H edge maps to the CI's out-edge; the pending H→end edge
	// maps to its copy. Every pending-consumer edge is covered.
	var cut, inner *Edge
	for _, e := range g.Edges() {
		switch {
		case e.From == m && e.To == h:
			cut = e
		case e.From == h:
			inner = e
		}
	}
	for _, e := range []*Edge{cut, inner} {
		re, ok := r.EdgeOf[e.ID()]
		if !ok {
			t.Fatalf("edge %d missing from EdgeOf", e.ID())
		}
		if got := r.Graph.Edges()[re]; got.Frac != e.Frac {
			t.Errorf("residual edge frac = %v, want %v", got.Frac, e.Frac)
		}
	}
	if err := r.Graph.Validate(); err != nil {
		t.Fatalf("residual graph invalid: %v", err)
	}
}

func TestExtractResidualPerPortBoundaries(t *testing.T) {
	// An executed separation consumed on both ports yields one
	// constrained input per port: effluent and waste live in different
	// vessels.
	g := New()
	in := g.AddInput("in")
	sep := g.AddUnary(Separate, "sep", in)
	a := g.AddNode(Incubate, "a")
	b := g.AddNode(Incubate, "b")
	g.AddPortEdge(sep, a, 1, PortEffluent)
	g.AddPortEdge(sep, b, 1, PortWaste)
	g.AddUnary(Sense, "sa", a)
	g.AddUnary(Sense, "sb", b)
	done := map[int]bool{in.ID(): true, sep.ID(): true}
	r, err := ExtractResidual(g, func(n *Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Boundaries) != 2 {
		t.Fatalf("boundaries = %d, want 2 (effluent + waste)", len(r.Boundaries))
	}
	ports := map[string]bool{}
	for _, bd := range r.Boundaries {
		if bd.SourceID != sep.ID() {
			t.Errorf("boundary source = %d, want sep", bd.SourceID)
		}
		ports[bd.SourcePort] = true
	}
	if !ports[PortEffluent] || !ports[PortWaste] {
		t.Errorf("boundary ports = %v, want effluent and waste", ports)
	}
}

func TestExtractResidualFrontierError(t *testing.T) {
	g, m, _, _ := chainFixture()
	// "H executed but its producer M pending" contradicts topological
	// execution and must be rejected.
	if _, err := ExtractResidual(g, func(n *Node) bool { return n.ID() != m.ID() && n.Kind != Input }); err == nil {
		t.Fatal("non-frontier cut accepted")
	}
}

func TestExtractResidualEmptyError(t *testing.T) {
	g, _, _, _ := chainFixture()
	if _, err := ExtractResidual(g, func(*Node) bool { return true }); err == nil {
		t.Fatal("empty residual accepted")
	}
}

func TestExtractResidualNothingExecuted(t *testing.T) {
	// Degenerate but legal: nothing executed means the residual is a
	// copy with no constrained inputs.
	g, _, _, _ := chainFixture()
	r, err := ExtractResidual(g, func(*Node) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Boundaries) != 0 {
		t.Errorf("boundaries = %d, want 0", len(r.Boundaries))
	}
	if r.Graph.NumNodes() != g.NumNodes() {
		t.Errorf("residual nodes = %d, want %d", r.Graph.NumNodes(), g.NumNodes())
	}
}
