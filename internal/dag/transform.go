package dag

import (
	"fmt"
	"math"
)

// ExtremeRatio reports the skew of a mix node: the ratio of its largest to
// smallest inbound fraction. A mix is infeasible to execute directly when
// this exceeds maxCap/leastCount (§3.4.1). Returns 1 for nodes with fewer
// than two inbound edges.
func ExtremeRatio(n *Node) float64 {
	if len(n.in) < 2 {
		return 1
	}
	lo, hi := math.Inf(1), 0.0
	for _, e := range n.in {
		lo = math.Min(lo, e.Frac)
		hi = math.Max(hi, e.Frac)
	}
	return hi / lo
}

// CascadeLevels picks the cascade depth for a two-part mix with skew R
// (major:minor), such that each stage's ratio 1:r with (1+r)^k = 1+R stays
// within maxSkew. Following the paper's examples (1:99 → two 1:9 stages,
// 1:399 → two 1:19 stages, 1:999 → three 1:9 stages), depths whose stage
// ratio is integral are preferred: the smallest k ≥ 2 with (1+R)^(1/k)
// integral and stage skew ≤ maxSkew wins; otherwise the smallest k whose
// stage skew fits is used. Returns 0 if R already fits (no cascade needed).
func CascadeLevels(R, maxSkew float64) int {
	if R <= maxSkew {
		return 0
	}
	const maxDepth = 16
	fallback := 0
	for k := 2; k <= maxDepth; k++ {
		base := math.Pow(1+R, 1/float64(k))
		r := base - 1
		if r > maxSkew {
			continue
		}
		if fallback == 0 {
			fallback = k
		}
		if isNearInteger(base) {
			return k
		}
	}
	return fallback
}

func isNearInteger(x float64) bool {
	return math.Abs(x-math.Round(x)) < 1e-6
}

// Cascade rewrites a two-part extreme-ratio mix node into `levels` cascaded
// stages, each with ratio 1:r where (1+r)^levels = 1+R (Fig. 7). The minor
// component feeds the first stage; every intermediate stage produces 1+r
// parts, forwards one part, and routes the remaining r/(1+r) fraction to a
// synthetic Excess sink. The original node is retained as the final stage so
// its outbound edges (and identity) are untouched.
//
// Cascade returns an error if the node is not a Mix with exactly two
// inbound edges, or if levels < 2.
func (g *Graph) Cascade(mix *Node, levels int) error {
	g.mustOwn(mix)
	if mix.Kind != Mix {
		return fmt.Errorf("dag: cascade target %v is not a mix", mix)
	}
	if len(mix.in) != 2 {
		return fmt.Errorf("dag: cascade supports two-part mixes, %v has %d parts", mix, len(mix.in))
	}
	if levels < 2 {
		return fmt.Errorf("dag: cascade needs at least 2 levels, got %d", levels)
	}
	minor, major := mix.in[0], mix.in[1]
	if minor.Frac > major.Frac {
		minor, major = major, minor
	}
	R := major.Frac / minor.Frac
	stageMinor := math.Pow(1/(1+R), 1/float64(levels)) // 1/(1+r)
	stageMajor := 1 - stageMinor                       // r/(1+r)

	minorSrc, majorSrc := minor.From, major.From
	minorPort, majorPort := minor.Port, major.Port
	g.removeEdge(minor)
	g.removeEdge(major)

	prev, prevPort := minorSrc, minorPort
	for i := 1; i < levels; i++ {
		stage := g.AddNode(Mix, fmt.Sprintf("%s~cascade%d", mix.Name, i))
		stage.Ref = mix.Ref // inherit front-end op metadata (time, guards)
		g.AddPortEdge(prev, stage, stageMinor, prevPort)
		g.AddPortEdge(majorSrc, stage, stageMajor, majorPort)
		stage.Discard = stageMajor // forward 1 part of 1+r produced
		excess := g.AddNode(Excess, fmt.Sprintf("%s~excess%d", mix.Name, i))
		excess.Ref = mix.Ref
		g.AddEdge(stage, excess, 1)
		prev, prevPort = stage, PortDefault
	}
	g.AddPortEdge(prev, mix, stageMinor, prevPort)
	g.AddPortEdge(majorSrc, mix, stageMajor, majorPort)
	g.compactEdges()
	return nil
}

// Replicate splits node into `copies` instances and distributes its
// outbound uses among them. Non-source nodes get their inbound edges
// duplicated onto every replica (which is what increases demand upstream,
// per §3.4.2); excess outbound edges are duplicated per replica rather than
// distributed.
//
// assign maps each distributable outbound edge to a replica index in
// [0, copies); index 0 keeps the edge on the original node. A nil assign
// distributes round-robin. Replicate returns the replicas (index 0 is the
// original node) or an error if the node kind cannot be replicated
// (Unknown-volume nodes and Excess sinks cannot).
func (g *Graph) Replicate(node *Node, copies int, assign func(e *Edge) int) ([]*Node, error) {
	g.mustOwn(node)
	if copies < 2 {
		return nil, fmt.Errorf("dag: replicate needs at least 2 copies, got %d", copies)
	}
	if node.Unknown {
		return nil, fmt.Errorf("dag: cannot replicate unknown-volume node %v", node)
	}
	if node.Kind == Excess || node.Kind == ConstrainedInput {
		return nil, fmt.Errorf("dag: cannot replicate %v node %v", node.Kind, node)
	}
	if assign == nil {
		i := 0
		assign = func(*Edge) int {
			i++
			return (i - 1) % copies
		}
	}

	replicas := make([]*Node, copies)
	replicas[0] = node
	for i := 1; i < copies; i++ {
		r := g.AddNode(node.Kind, fmt.Sprintf("%s~rep%d", node.Name, i))
		r.OutFrac = node.OutFrac
		r.Discard = node.Discard
		r.NoExcess = node.NoExcess
		r.Ref = node.Ref
		replicas[i] = r
		for _, e := range node.in {
			g.AddPortEdge(e.From, r, e.Frac, e.Port)
		}
	}

	// Distribute distributable outbound edges; duplicate excess edges.
	outs := append([]*Edge(nil), node.out...)
	for _, e := range outs {
		if e.To.Kind == Excess {
			for i := 1; i < copies; i++ {
				ex := g.AddNode(Excess, fmt.Sprintf("%s~rep%d", e.To.Name, i))
				g.AddEdge(replicas[i], ex, 1)
			}
			continue
		}
		idx := assign(e)
		if idx < 0 || idx >= copies {
			return nil, fmt.Errorf("dag: replica assignment %d out of range [0,%d)", idx, copies)
		}
		if idx == 0 {
			continue
		}
		g.AddPortEdge(replicas[idx], e.To, e.Frac, e.Port)
		g.removeEdge(e)
	}
	g.compactEdges()
	return replicas, nil
}
