package dag

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// fig2 builds the paper's Figure 2 assay DAG:
//
//	K = mix A:B in 1:4, L = mix B:C in 2:1,
//	M = mix K:L in 2:1, N = mix L:C in 2:3.
func fig2() *Graph {
	g := New()
	a := g.AddInput("A")
	b := g.AddInput("B")
	c := g.AddInput("C")
	k := g.AddMix("K", Part{a, 1}, Part{b, 4})
	l := g.AddMix("L", Part{b, 2}, Part{c, 1})
	g.AddMix("M", Part{k, 2}, Part{l, 1})
	g.AddMix("N", Part{l, 2}, Part{c, 3})
	return g
}

func TestFig2Structure(t *testing.T) {
	g := fig2()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 || g.NumEdges() != 8 {
		t.Fatalf("got %d nodes %d edges, want 7, 8", g.NumNodes(), g.NumEdges())
	}
	k := g.NodeByName("K")
	if !approx(k.In()[0].Frac, 1.0/5) || !approx(k.In()[1].Frac, 4.0/5) {
		t.Fatalf("K fractions = %v, %v; want 1/5, 4/5", k.In()[0].Frac, k.In()[1].Frac)
	}
	if len(g.Leaves()) != 2 {
		t.Fatalf("leaves = %d, want 2 (M, N)", len(g.Leaves()))
	}
	if len(g.Sources()) != 3 {
		t.Fatalf("sources = %d, want 3 (A, B, C)", len(g.Sources()))
	}
}

func TestTopoOrder(t *testing.T) {
	g := fig2()
	order := g.TopoOrder()
	if len(order) != 7 {
		t.Fatalf("topo order length = %d, want 7", len(order))
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From.Name] >= pos[e.To.Name] {
			t.Fatalf("topo violated: %s before %s", e.To.Name, e.From.Name)
		}
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New()
	a := g.AddNode(Mix, "a")
	b := g.AddNode(Mix, "b")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestValidateRejectsBadFractionSum(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	m := g.AddNode(Mix, "m")
	g.AddEdge(a, m, 0.5)
	g.AddEdge(b, m, 0.3)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "sum") {
		t.Fatalf("want fraction-sum error, got %v", err)
	}
}

func TestValidateRejectsInputWithInbound(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddEdge(a, b, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("want error for input with inbound edges")
	}
}

func TestValidateRejectsOrphanOp(t *testing.T) {
	g := New()
	g.AddNode(Mix, "m") // mix with no inputs
	if err := g.Validate(); err == nil {
		t.Fatal("want error for non-input source")
	}
}

func TestValidateRejectsPortOnMix(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	m := g.AddUnary(Incubate, "m", a)
	s := g.AddNode(Sense, "s")
	g.AddPortEdge(m, s, 1, PortEffluent)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "port") {
		t.Fatalf("want port error, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := fig2()
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone sizes differ")
	}
	// Mutating the clone must not affect the original.
	x := c.AddInput("X")
	c.AddMix("Y", Part{x, 1}, Part{c.NodeByName("M"), 1})
	if g.NodeByName("X") != nil || g.NumNodes() != 7 {
		t.Fatal("mutating clone affected original")
	}
	// Edge endpoints in clone point at clone nodes.
	for _, e := range c.Edges() {
		if c.Node(e.From.ID()) != e.From || c.Node(e.To.ID()) != e.To {
			t.Fatal("clone edge endpoints not owned by clone")
		}
	}
}

func TestDOT(t *testing.T) {
	g := fig2()
	dot := g.DOT("fig2")
	for _, want := range []string{"digraph", `"A"`, `"M"`, "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestExtremeRatio(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	m := g.AddMix("m", Part{a, 1}, Part{b, 999})
	if r := ExtremeRatio(m); !approx(r, 999) {
		t.Fatalf("ExtremeRatio = %v, want 999", r)
	}
	u := g.AddUnary(Sense, "s", m)
	if r := ExtremeRatio(u); r != 1 {
		t.Fatalf("unary ExtremeRatio = %v, want 1", r)
	}
}

func TestCascadeLevels(t *testing.T) {
	cases := []struct {
		r, maxSkew float64
		want       int
	}{
		{999, 1000, 0}, // fits: no cascade
		{999, 100, 3},  // paper: three 1:9 stages (1000 = 10³)
		{99, 50, 2},    // paper: two 1:9 stages (100 = 10²)
		{399, 100, 2},  // paper: two 1:19 stages (400 = 20²)
		{9999, 100, 4}, // 10000 = 10⁴ → integral at k=2 (99)… see below
		{50, 100, 0},   // fits
	}
	for _, c := range cases {
		got := CascadeLevels(c.r, c.maxSkew)
		// 9999 special case: k=2 gives stage ratio 99 (integral, ≤100).
		if c.r == 9999 {
			if got != 2 {
				t.Fatalf("CascadeLevels(9999, 100) = %d, want 2 (stage 1:99)", got)
			}
			continue
		}
		if got != c.want {
			t.Fatalf("CascadeLevels(%v, %v) = %d, want %d", c.r, c.maxSkew, got, c.want)
		}
	}
}

func TestCascade99(t *testing.T) {
	g := New()
	a := g.AddInput("A")
	b := g.AddInput("B")
	m := g.AddMix("C", Part{a, 1}, Part{b, 99})
	sink := g.AddUnary(Sense, "out", m)
	_ = sink
	if err := g.Cascade(m, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// One intermediate stage + its excess node were added.
	stage := g.NodeByName("C~cascade1")
	if stage == nil {
		t.Fatal("intermediate cascade stage missing")
	}
	if !approx(stage.Discard, 0.9) {
		t.Fatalf("stage discard = %v, want 0.9", stage.Discard)
	}
	// Stage mixes A:B in 1:9 → fractions 0.1, 0.9.
	if !approx(stage.In()[0].Frac, 0.1) || !approx(stage.In()[1].Frac, 0.9) {
		t.Fatalf("stage fractions = %v, %v; want 0.1, 0.9", stage.In()[0].Frac, stage.In()[1].Frac)
	}
	// Final mix now combines stage:B in 1:9.
	if len(m.In()) != 2 || !approx(m.In()[0].Frac, 0.1) || !approx(m.In()[1].Frac, 0.9) {
		t.Fatalf("final fractions wrong: %v", m.In())
	}
	if m.In()[0].From != stage || m.In()[1].From != b {
		t.Fatal("final stage inputs wrong")
	}
	// B is now used twice (paper: uses of the major component increase).
	if len(b.Out()) != 2 {
		t.Fatalf("B uses = %d, want 2", len(b.Out()))
	}
	// Excess node exists and hangs off the stage.
	ex := g.NodeByName("C~excess1")
	if ex == nil || ex.Kind != Excess || ex.In()[0].From != stage {
		t.Fatal("excess node missing or miswired")
	}
	// Original consumer is untouched.
	if sink.In()[0].From != m {
		t.Fatal("cascade disturbed the original mix's consumers")
	}
}

func TestCascade999ThreeLevels(t *testing.T) {
	g := New()
	a := g.AddInput("enzyme")
	b := g.AddInput("diluent")
	m := g.AddMix("dilution", Part{a, 1}, Part{b, 999})
	g.AddUnary(Sense, "out", m)
	if err := g.Cascade(m, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each stage is 1:9 (cube root of 1000 = 10).
	for _, name := range []string{"dilution~cascade1", "dilution~cascade2"} {
		st := g.NodeByName(name)
		if st == nil {
			t.Fatalf("missing %s", name)
		}
		if !approx(st.In()[0].Frac, 0.1) || !approx(st.Discard, 0.9) {
			t.Fatalf("%s: frac %v discard %v, want 0.1, 0.9", name, st.In()[0].Frac, st.Discard)
		}
	}
	// Diluent used 3 times now (one per stage).
	if len(b.Out()) != 3 {
		t.Fatalf("diluent uses = %d, want 3", len(b.Out()))
	}
}

func TestCascadeErrors(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	m3 := g.AddMix("m3", Part{a, 1}, Part{b, 100}, Part{c, 1})
	if err := g.Cascade(m3, 2); err == nil {
		t.Fatal("want error for three-part mix")
	}
	m2 := g.AddMix("m2", Part{a, 1}, Part{b, 99})
	if err := g.Cascade(m2, 1); err == nil {
		t.Fatal("want error for levels < 2")
	}
	if err := g.Cascade(a, 2); err == nil {
		t.Fatal("want error for non-mix")
	}
}

func TestReplicateInput(t *testing.T) {
	g := New()
	d := g.AddInput("diluent")
	a := g.AddInput("a")
	var mixes []*Node
	for i := 0; i < 6; i++ {
		mixes = append(mixes, g.AddMix("m", Part{a, 1}, Part{d, 9}))
	}
	for _, m := range mixes {
		g.AddUnary(Sense, "s", m)
	}
	reps, err := g.Replicate(d, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("replicas = %d, want 3", len(reps))
	}
	// Round-robin: each replica gets 2 of the 6 uses.
	for i, r := range reps {
		if len(r.Out()) != 2 {
			t.Fatalf("replica %d has %d uses, want 2", i, len(r.Out()))
		}
	}
	// Consumers' fraction sums are intact.
	for _, m := range mixes {
		sum := 0.0
		for _, e := range m.In() {
			sum += e.Frac
		}
		if !approx(sum, 1) {
			t.Fatalf("mix fraction sum %v after replication", sum)
		}
	}
}

func TestReplicateIntermediateDuplicatesInbound(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	x := g.AddMix("x", Part{a, 1}, Part{b, 1})
	for i := 0; i < 4; i++ {
		g.AddUnary(Sense, "s", x)
	}
	reps, err := g.Replicate(x, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// a and b now feed both replicas: 2 uses each.
	if len(a.Out()) != 2 || len(b.Out()) != 2 {
		t.Fatalf("source uses = %d, %d; want 2, 2", len(a.Out()), len(b.Out()))
	}
	if len(reps[0].Out()) != 2 || len(reps[1].Out()) != 2 {
		t.Fatalf("use distribution = %d, %d; want 2, 2", len(reps[0].Out()), len(reps[1].Out()))
	}
}

func TestReplicateCustomAssign(t *testing.T) {
	g := New()
	d := g.AddInput("d")
	a := g.AddInput("a")
	var sinks []*Node
	for i := 0; i < 4; i++ {
		m := g.AddMix("m", Part{a, 1}, Part{d, 1})
		sinks = append(sinks, m)
		g.AddUnary(Sense, "s", m)
	}
	_ = sinks
	// Send all uses to replica 1.
	reps, err := g.Replicate(d, 2, func(*Edge) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(reps[0].Out()) != 0 || len(reps[1].Out()) != 4 {
		t.Fatalf("distribution = %d, %d; want 0, 4", len(reps[0].Out()), len(reps[1].Out()))
	}
}

func TestReplicateErrors(t *testing.T) {
	g := New()
	a := g.AddInput("a")
	sep := g.AddUnary(Separate, "sep", a)
	sep.Unknown = true
	if _, err := g.Replicate(sep, 2, nil); err == nil {
		t.Fatal("want error replicating unknown node")
	}
	if _, err := g.Replicate(a, 1, nil); err == nil {
		t.Fatal("want error for copies < 2")
	}
}

// glycomicsShape builds a pipeline with three unknown separations and a
// shared buffer used across two regions, mirroring Fig. 13.
func glycomicsShape() (*Graph, *Node, []*Node) {
	g := New()
	b1a := g.AddInput("buffer1a")
	sample := g.AddInput("sample")
	b1b := g.AddInput("buffer1b")
	lectin := g.AddInput("lectin")
	b2 := g.AddInput("buffer2")
	b3a := g.AddInput("buffer3a")
	b3b := g.AddInput("buffer3b")
	c18 := g.AddInput("C_18")
	b4 := g.AddInput("buffer4")
	naoh := g.AddInput("NaOH")
	b5 := g.AddInput("buffer5")

	m1 := g.AddMix("m1", Part{b1a, 1}, Part{sample, 1})
	sep1 := g.AddMix("sep1-in", Part{m1, 1}, Part{b1b, 1}, Part{lectin, 1})
	sep1.Kind = Separate
	sep1.Unknown = true
	m2 := g.AddMix("m2", Part{sep1, 1}, Part{b2, 1})
	m2.In()[0].Port = PortEffluent
	inc1 := g.AddUnary(Incubate, "inc1", m2)
	m3 := g.AddMix("m3", Part{inc1, 1}, Part{b3a, 10})
	sep2 := g.AddMix("sep2-in", Part{m3, 1}, Part{b3b, 1}, Part{c18, 1})
	sep2.Kind = Separate
	sep2.Unknown = true
	m4 := g.AddMix("m4", Part{sep2, 1}, Part{b4, 100}, Part{naoh, 1})
	m4.In()[0].Port = PortEffluent
	m5 := g.AddMix("m5", Part{m4, 1}, Part{b3a, 1})
	sep3 := g.AddMix("sep3-in", Part{m5, 1}, Part{b3b, 1}, Part{c18, 1})
	sep3.Kind = Separate
	sep3.Unknown = true
	m6 := g.AddMix("m6", Part{sep3, 1}, Part{b5, 1})
	m6.In()[0].Port = PortEffluent
	return g, b3a, []*Node{sep1, sep2, sep3}
}

func TestPartitionGlycomicsShape(t *testing.T) {
	g, b3a, _ := glycomicsShape()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParts() != 4 {
		t.Fatalf("parts = %d, want 4 (Fig. 13)", res.NumParts())
	}
	// buffer3a and b3b and C_18 are split across regions; b3a into two
	// constrained inputs with share 1/2 each.
	var b3aShares []float64
	for _, b := range res.Bindings {
		if b.SourceID == b3a.ID() {
			b3aShares = append(b3aShares, b.Share)
			if b.SourcePart != -1 {
				t.Fatalf("buffer3a binding source part = %d, want -1 (natural input)", b.SourcePart)
			}
		}
	}
	if len(b3aShares) != 2 || !approx(b3aShares[0], 0.5) || !approx(b3aShares[1], 0.5) {
		t.Fatalf("buffer3a shares = %v, want [0.5, 0.5]", b3aShares)
	}
	// Every separation binding is run-time measured.
	sawUnknown := 0
	for _, b := range res.Bindings {
		if b.SourceUnknown {
			sawUnknown++
			if b.SourcePort != PortEffluent {
				t.Fatalf("unknown binding port = %q, want effluent", b.SourcePort)
			}
		}
	}
	if sawUnknown != 3 {
		t.Fatalf("unknown bindings = %d, want 3", sawUnknown)
	}
}

func TestPartitionNoUnknownsSinglePart(t *testing.T) {
	g := fig2()
	res, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParts() != 1 || len(res.Bindings) != 0 {
		t.Fatalf("parts = %d bindings = %d, want 1, 0", res.NumParts(), len(res.Bindings))
	}
	if res.Parts[0].NumNodes() != 7 || res.Parts[0].NumEdges() != 8 {
		t.Fatal("single part should mirror the original graph")
	}
}

// Fig. 8: X has two uses, one feeding a node downstream of an unknown
// separation. X's outbound edges must be cut and both uses become
// constrained inputs with share 1/2.
func TestPartitionFig8(t *testing.T) {
	g := New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	x := g.AddMix("X", Part{in1, 1}, Part{in2, 1})
	u := g.AddUnary(Separate, "U", in2)
	u.Unknown = true
	y := g.AddMix("Y", Part{x, 1}, Part{in1, 1})
	g.AddUnary(Sense, "sy", y)
	// Second use of X mixes with U's effluent (downstream of unknown).
	z := g.AddMix("Z", Part{x, 1}, Part{u, 1})
	z.In()[1].Port = PortEffluent
	g.AddUnary(Sense, "sz", z)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	var xShares []float64
	for _, b := range res.Bindings {
		if b.SourceID == x.ID() {
			xShares = append(xShares, b.Share)
			if b.SourcePart < 0 {
				t.Fatal("X is not a natural input; binding should reference its part")
			}
		}
	}
	if len(xShares) != 2 || !approx(xShares[0], 0.5) || !approx(xShares[1], 0.5) {
		t.Fatalf("X shares = %v, want [0.5, 0.5]", xShares)
	}
	// X must be a leaf of its own part.
	xPart := res.PartOf[x.ID()]
	pg := res.Parts[xPart]
	for lid, oid := range res.OrigOf[xPart] {
		if oid == x.ID() && !pg.Node(lid).IsLeaf() {
			t.Fatal("cut node X should be a leaf in its part")
		}
	}
}

// m/N refinement: a cut node with two uses in the SAME consuming part gets
// one constrained input with share m/N = 2/3.
func TestPartitionShareRefinement(t *testing.T) {
	g := New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	x := g.AddMix("X", Part{in1, 1}, Part{in2, 1})
	u := g.AddUnary(Separate, "U", in2)
	u.Unknown = true
	// Two uses of X downstream of U, one use upstream.
	y := g.AddMix("Y", Part{x, 1}, Part{in1, 1})
	g.AddUnary(Sense, "sy", y)
	z1 := g.AddMix("Z1", Part{x, 1}, Part{u, 1})
	z1.In()[1].Port = PortEffluent
	z2 := g.AddMix("Z2", Part{x, 1}, Part{z1, 1})
	g.AddUnary(Sense, "sz", z2)
	res, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[float64]int{}
	for _, b := range res.Bindings {
		if b.SourceID == x.ID() {
			shares[b.Share]++
		}
	}
	if shares[1.0/3] != 1 || shares[2.0/3] != 1 {
		t.Fatalf("X shares = %v, want one 1/3 and one 2/3", shares)
	}
}

// randomDAG builds a random valid assay DAG.
func randomDAG(r *rand.Rand) *Graph {
	g := New()
	nIn := 2 + r.Intn(4)
	var pool []*Node
	for i := 0; i < nIn; i++ {
		pool = append(pool, g.AddInput("in"))
	}
	nOps := 3 + r.Intn(10)
	for i := 0; i < nOps; i++ {
		switch r.Intn(4) {
		case 0, 1: // mix of 2-3 parts
			k := 2 + r.Intn(2)
			if k > len(pool) {
				k = len(pool)
			}
			parts := make([]Part, 0, k)
			seen := map[*Node]bool{}
			for len(parts) < k {
				src := pool[r.Intn(len(pool))]
				if seen[src] {
					continue
				}
				seen[src] = true
				parts = append(parts, Part{src, float64(1 + r.Intn(9))})
			}
			pool = append(pool, g.AddMix("m", parts...))
		case 2: // incubate
			pool = append(pool, g.AddUnary(Incubate, "h", pool[r.Intn(len(pool))]))
		case 3: // unknown separation
			s := g.AddUnary(Separate, "sep", pool[r.Intn(len(pool))])
			s.Unknown = r.Intn(2) == 0
			if !s.Unknown {
				s.OutFrac = 0.25 + 0.5*r.Float64()
			}
			pool = append(pool, s)
		}
	}
	return g
}

// Property: random DAGs validate, and Partition yields valid ordered parts
// whose bindings reference earlier parts.
func TestQuickPartitionInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r)
		if g.Validate() != nil {
			return false
		}
		res, err := Partition(g)
		if err != nil {
			return false
		}
		for _, b := range res.Bindings {
			if b.SourcePart >= b.Part {
				return false
			}
			if b.Share <= 0 || b.Share > 1+eps {
				return false
			}
		}
		for _, pg := range res.Parts {
			if pg.Validate() != nil {
				return false
			}
			for _, n := range pg.Nodes() {
				if n.Unknown && !n.IsLeaf() {
					return false // unknown nodes must be cut
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is structurally identical and Validate-stable.
func TestQuickCloneEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r)
		c := g.Clone()
		if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
			return false
		}
		for i, e := range g.Edges() {
			ce := c.Edges()[i]
			if ce.From.ID() != e.From.ID() || ce.To.ID() != e.To.ID() || ce.Frac != e.Frac {
				return false
			}
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
