// Package dag implements the assay DAG representation of §3.1 of the paper,
// plus the graph transforms the volume-management algorithms operate on:
// cascading for extreme mix ratios (§3.4.1), static replication for
// numerous uses (§3.4.2), and partitioning at statically-unknown-volume
// nodes (§3.5).
//
// Nodes represent operations (inputs, mixes, incubations, separations,
// sensing); edges represent true dependences, annotated with the *fraction*
// of the consumer's total input contributed by the producer. A mix of A and
// B in ratio 1:4 therefore has inbound edges with fractions 1/5 and 4/5
// (Fig. 2 of the paper).
//
// Volume-management algorithms themselves (DAGSolve, the LP formulation)
// live in internal/core; this package owns the graph structure and its
// purely structural manipulations.
package dag

import (
	"fmt"
	"math"
	"sort"
)

// Kind classifies a node.
type Kind int

const (
	// Input is a source fluid drawn from an input port; it has no inbound
	// edges and can supply up to the machine maximum.
	Input Kind = iota
	// Mix combines its inbound fluids in the edge-specified fractions.
	Mix
	// Incubate heats its single inbound fluid; volume is preserved.
	Incubate
	// Concentrate reduces volume by evaporation/concentration; OutFrac
	// gives the output-to-input fraction.
	Concentrate
	// Separate splits its inbound mixture into effluent and waste ports.
	// When Unknown is set the effluent volume is only measurable at run
	// time (§3.5); otherwise OutFrac gives the effluent fraction.
	Separate
	// Sense consumes its inbound fluid to produce a (dry) measurement; it
	// is a natural leaf.
	Sense
	// Output sends its inbound fluid to an output port; a natural leaf.
	Output
	// Excess is a synthetic sink created by cascading: the portion of an
	// intermediate cascade mix that is produced only to keep the stage
	// ratio non-extreme and is then discarded (Fig. 7).
	Excess
	// ConstrainedInput is a synthetic source created by partitioning: it
	// stands for fluid produced in an earlier partition, available only in
	// a bounded (possibly run-time-measured) amount (§3.5, Fig. 8).
	ConstrainedInput
)

var kindNames = map[Kind]string{
	Input:            "input",
	Mix:              "mix",
	Incubate:         "incubate",
	Concentrate:      "concentrate",
	Separate:         "separate",
	Sense:            "sense",
	Output:           "output",
	Excess:           "excess",
	ConstrainedInput: "constrained-input",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Port names for separate-node outputs.
const (
	PortDefault  = ""
	PortEffluent = "effluent"
	PortWaste    = "waste"
)

// Node is one operation in the assay DAG.
type Node struct {
	id   int
	Kind Kind
	// Name labels the node for diagnostics and DOT output (typically the
	// fluid it produces).
	Name string
	// OutFrac is the node's output volume as a fraction of its total input
	// volume. It is 1 for volume-preserving operations. For Separate nodes
	// it is the effluent fraction (a programmer hint when Unknown is also
	// set; see §3.5).
	OutFrac float64
	// Unknown marks nodes whose output volume can only be measured at run
	// time (separations, chemically transformative steps).
	Unknown bool
	// Discard is the fraction of the produced volume routed to an Excess
	// sink, for cascade intermediates (Fig. 7). Zero for ordinary nodes.
	Discard float64
	// Share applies to ConstrainedInput nodes: the fraction of the source
	// node's produced volume available through this pseudo-input (the m/N
	// split of §3.5).
	Share float64
	// Source applies to ConstrainedInput nodes: the id of the producing
	// node in the parent graph, and whether that producer is a natural
	// (unconstrained) input.
	Source        int
	SourceIsInput bool
	// NoExcess marks fluids for which producing-and-discarding excess is
	// disallowed (safety, cost, regulation; §3.4.1 end). Cascading never
	// introduces excess of a mix whose components are marked.
	NoExcess bool
	// Ref optionally links back to the front-end operation that created
	// this node.
	Ref any

	in, out []*Edge
}

// ID reports the node's stable identifier within its graph.
func (n *Node) ID() int { return n.id }

// In returns the inbound edges in insertion order. The slice is shared;
// callers must not mutate it.
func (n *Node) In() []*Edge { return n.in }

// Out returns the outbound edges in insertion order. The slice is shared;
// callers must not mutate it.
func (n *Node) Out() []*Edge { return n.out }

// IsLeaf reports whether the node has no outbound edges.
func (n *Node) IsLeaf() bool { return len(n.out) == 0 }

// IsSource reports whether the node has no inbound edges.
func (n *Node) IsSource() bool { return len(n.in) == 0 }

func (n *Node) String() string {
	return fmt.Sprintf("%s#%d(%s)", n.Kind, n.id, n.Name)
}

// Edge is a true dependence between operations, annotated with the fraction
// of the consumer's input contributed by the producer.
type Edge struct {
	id       int
	From, To *Node
	// Frac is the fraction of To's total input carried by this edge; the
	// inbound fractions of every non-source node sum to 1.
	Frac float64
	// Port distinguishes multiple outputs of the producer (separate nodes
	// have effluent and waste ports).
	Port string
}

// ID reports the edge's stable identifier within its graph.
func (e *Edge) ID() int { return e.id }

func (e *Edge) String() string {
	return fmt.Sprintf("%s->%s(%.4g)", e.From.Name, e.To.Name, e.Frac)
}

// Graph is an assay DAG. The zero value is empty and ready to use.
type Graph struct {
	nodes []*Node
	edges []*Edge
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Nodes returns all nodes in creation order. The slice is shared; callers
// must not mutate it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Edges returns all edges in creation order. The slice is shared; callers
// must not mutate it.
func (g *Graph) Edges() []*Edge { return g.edges }

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id int) *Node {
	if id < 0 || id >= len(g.nodes) || g.nodes[id] == nil {
		return nil
	}
	return g.nodes[id]
}

// AddNode adds a node of the given kind and name. OutFrac defaults to 1.
func (g *Graph) AddNode(kind Kind, name string) *Node {
	n := &Node{id: len(g.nodes), Kind: kind, Name: name, OutFrac: 1, Source: -1}
	g.nodes = append(g.nodes, n)
	return n
}

// AddInput adds an Input node.
func (g *Graph) AddInput(name string) *Node { return g.AddNode(Input, name) }

// AddEdge connects from → to carrying fraction frac of to's input.
// AddEdge panics if either node belongs to a different graph.
func (g *Graph) AddEdge(from, to *Node, frac float64) *Edge {
	return g.AddPortEdge(from, to, frac, PortDefault)
}

// AddPortEdge is AddEdge with an explicit producer port.
func (g *Graph) AddPortEdge(from, to *Node, frac float64, port string) *Edge {
	g.mustOwn(from)
	g.mustOwn(to)
	e := &Edge{id: len(g.edges), From: from, To: to, Frac: frac, Port: port}
	g.edges = append(g.edges, e)
	from.out = append(from.out, e)
	to.in = append(to.in, e)
	return e
}

func (g *Graph) mustOwn(n *Node) {
	if n.id >= len(g.nodes) || g.nodes[n.id] != n {
		panic(fmt.Sprintf("dag: node %v does not belong to this graph", n))
	}
}

// Part is one component of a mix: a source node and its relative ratio.
type Part struct {
	Source *Node
	Ratio  float64
}

// AddMix adds a Mix node named name combining the given parts; ratios are
// normalized into edge fractions. AddMix panics if ratios are non-positive
// or no parts are given.
func (g *Graph) AddMix(name string, parts ...Part) *Node {
	if len(parts) == 0 {
		panic("dag: AddMix with no parts")
	}
	total := 0.0
	for _, p := range parts {
		if p.Ratio <= 0 || math.IsNaN(p.Ratio) || math.IsInf(p.Ratio, 0) {
			panic(fmt.Sprintf("dag: AddMix %q: bad ratio %v", name, p.Ratio))
		}
		total += p.Ratio
	}
	n := g.AddNode(Mix, name)
	for _, p := range parts {
		g.AddEdge(p.Source, n, p.Ratio/total)
	}
	return n
}

// AddUnary adds a single-input node (Incubate, Sense, Concentrate, ...) fed
// entirely by src.
func (g *Graph) AddUnary(kind Kind, name string, src *Node) *Node {
	n := g.AddNode(kind, name)
	g.AddEdge(src, n, 1)
	return n
}

// Sources returns nodes with no inbound edges, in id order.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n != nil && n.IsSource() {
			out = append(out, n)
		}
	}
	return out
}

// Leaves returns nodes with no outbound edges, in id order.
func (g *Graph) Leaves() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n != nil && n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// NodeByName returns the first node with the given name, or nil. Intended
// for tests and examples; names need not be unique.
func (g *Graph) NodeByName(name string) *Node {
	for _, n := range g.nodes {
		if n != nil && n.Name == name {
			return n
		}
	}
	return nil
}

// removeEdge detaches e from its endpoints and from the graph's edge list.
// Edge ids of other edges are preserved (the slot is nilled).
func (g *Graph) removeEdge(e *Edge) {
	e.From.out = deleteEdge(e.From.out, e)
	e.To.in = deleteEdge(e.To.in, e)
	g.edges[e.id] = nil
}

func deleteEdge(s []*Edge, e *Edge) []*Edge {
	for i, x := range s {
		if x == e {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}

// compactEdges drops nil edge slots and renumbers ids. Called by transforms
// that delete edges so that downstream consumers see a dense edge list.
func (g *Graph) compactEdges() {
	out := g.edges[:0]
	for _, e := range g.edges {
		if e != nil {
			e.id = len(out)
			out = append(out, e)
		}
	}
	g.edges = out
}

// Clone returns a deep copy of the graph. Node and edge ids are preserved;
// Ref pointers are copied shallowly.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		nodes: make([]*Node, len(g.nodes)),
		edges: make([]*Edge, len(g.edges)),
	}
	for i, n := range g.nodes {
		if n == nil {
			continue
		}
		c := *n
		c.in = nil
		c.out = nil
		ng.nodes[i] = &c
	}
	for i, e := range g.edges {
		if e == nil {
			continue
		}
		ne := &Edge{id: e.id, From: ng.nodes[e.From.id], To: ng.nodes[e.To.id], Frac: e.Frac, Port: e.Port}
		ng.edges[i] = ne
		ne.From.out = append(ne.From.out, ne)
		ne.To.in = append(ne.To.in, ne)
	}
	return ng
}

// TopoOrder returns the nodes in a deterministic topological order (among
// ready nodes, smallest id first). It panics if the graph has a cycle; use
// Validate to check first.
func (g *Graph) TopoOrder() []*Node {
	indeg := make(map[*Node]int, len(g.nodes))
	var ready []*Node
	count := 0
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		count++
		indeg[n] = len(n.in)
		if len(n.in) == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].id < ready[j].id })
	order := make([]*Node, 0, count)
	for len(ready) > 0 {
		// Pop the smallest id for determinism.
		min := 0
		for i := 1; i < len(ready); i++ {
			if ready[i].id < ready[min].id {
				min = i
			}
		}
		n := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		order = append(order, n)
		for _, e := range n.out {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != count {
		panic("dag: TopoOrder on cyclic graph")
	}
	return order
}
