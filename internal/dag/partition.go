package dag

import (
	"fmt"
	"sort"
	"strings"
)

// Binding records where one ConstrainedInput pseudo-source gets its fluid.
type Binding struct {
	// Part and NodeID locate the constrained input within
	// PartitionResult.Parts.
	Part   int
	NodeID int
	// SourcePart is the index of the part that produces the fluid, or -1
	// when the source is a natural input split across parts.
	SourcePart int
	// SourceID is the producing node's id in the original graph.
	SourceID int
	// SourcePort is the producer port the fluid comes from (effluent/waste
	// for separations, empty otherwise).
	SourcePort string
	// Share is the fraction of the source's produced volume available
	// through this constrained input (the m/N split of §3.5).
	Share float64
	// SourceUnknown reports whether the source's produced volume is only
	// measurable at run time.
	SourceUnknown bool
}

// PartitionResult is the outcome of Partition.
type PartitionResult struct {
	// Parts holds the solvable subgraphs in dependency order: every
	// constrained input's producing part appears earlier in the slice.
	Parts []*Graph
	// Bindings describes every constrained input across all parts.
	Bindings []Binding
	// OrigOf maps, for each part, part-local node ids to node ids in the
	// original graph. Synthetic ConstrainedInput nodes are absent.
	OrigOf []map[int]int
	// PartOf maps original node ids to the index of the part that contains
	// them.
	PartOf map[int]int
	// EdgeOf maps original edge ids to their realization: the part index
	// and the part-local edge id (for cut edges, the constrained-input
	// edge that replaced it).
	EdgeOf map[int][2]int
}

// NumParts reports the number of partitions.
func (r *PartitionResult) NumParts() int { return len(r.Parts) }

// Partition splits the graph at statically-unknown-volume nodes per §3.5 of
// the paper:
//
//   - every Unknown node's outbound edges are cut (its consumers see a
//     run-time-measured constrained input);
//   - a node whose uses span multiple solve-time regions has ALL its
//     outbound edges cut and its uses become constrained inputs with an
//     m/N share each (conservative equal split, with the m/N refinement);
//   - a natural input whose consumers span regions is split the same way.
//
// A "region" is identified by the set of boundary nodes (unknown-volume
// nodes plus cut known-volume nodes) strictly upstream of a node: all nodes
// in a region receive their absolute volumes in the same solve. Because
// cutting a node can itself create new cross-region uses, the cut set is
// computed to a fixpoint.
//
// If the graph contains no unknown nodes and no cross-region uses, the
// result is a single part that is a copy of g.
func Partition(g *Graph) (*PartitionResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order := g.TopoOrder()

	// Fixpoint: boundary set → region keys → cut set → boundary set.
	boundary := make(map[*Node]bool) // non-input cut nodes with outbound edges
	for _, n := range order {
		if n.Unknown && !n.IsLeaf() {
			boundary[n] = true
		}
	}
	cut := make(map[*Node]bool)
	setOf := make(map[*Node]map[int]bool, len(order))
	keyOf := make(map[*Node]string, len(order))
	for {
		for _, n := range order {
			set := map[int]bool{}
			for _, e := range n.in {
				for u := range setOf[e.From] {
					set[u] = true
				}
				if boundary[e.From] {
					set[e.From.id] = true
				}
			}
			setOf[n] = set
			keyOf[n] = keyString(set)
		}
		changed := false
		for _, n := range order {
			if n.IsLeaf() || cut[n] {
				continue
			}
			crossing := false
			if n.Kind == Input {
				first := keyOf[n.out[0].To]
				for _, e := range n.out[1:] {
					if keyOf[e.To] != first {
						crossing = true
						break
					}
				}
			} else {
				for _, e := range n.out {
					if keyOf[e.To] != keyOf[n] {
						crossing = true
						break
					}
				}
			}
			if crossing {
				cut[n] = true
				if n.Kind != Input {
					boundary[n] = true
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for n := range boundary {
		cut[n] = true
	}

	// Part identity is the region key; uncut natural inputs adopt their
	// consumers' region.
	partKey := make(map[*Node]string, len(order))
	keySize := map[string]int{}
	for _, n := range order {
		if n.Kind == Input && !cut[n] && len(n.out) > 0 {
			partKey[n] = keyOf[n.out[0].To]
			keySize[partKey[n]] = len(setOf[n.out[0].To])
		} else {
			partKey[n] = keyOf[n]
			keySize[partKey[n]] = len(setOf[n])
		}
	}
	var keys []string
	seen := map[string]bool{}
	for _, n := range order {
		if !seen[partKey[n]] {
			seen[partKey[n]] = true
			keys = append(keys, partKey[n])
		}
	}
	// Order parts so producers precede consumers. A constrained input's
	// source region is always a strict subset of the consuming region, so
	// sorting by region-set size (ties by key text) is a valid topological
	// order of the part dependency graph.
	sort.Slice(keys, func(i, j int) bool {
		if keySize[keys[i]] != keySize[keys[j]] {
			return keySize[keys[i]] < keySize[keys[j]]
		}
		return keys[i] < keys[j]
	})
	partIdx := make(map[string]int, len(keys))
	for i, k := range keys {
		partIdx[k] = i
	}

	res := &PartitionResult{
		Parts:  make([]*Graph, len(keys)),
		OrigOf: make([]map[int]int, len(keys)),
		PartOf: make(map[int]int, len(order)),
		EdgeOf: make(map[int][2]int, len(g.edges)),
	}
	for i := range res.Parts {
		res.Parts[i] = New()
		res.OrigOf[i] = map[int]int{}
	}
	newNode := make(map[*Node]*Node, len(order))
	for _, n := range order {
		if n.Kind == Input && cut[n] {
			// Split natural inputs are fully replaced by their per-part
			// constrained inputs; the original node needs no plan of its
			// own (availability is the static share of the machine
			// maximum). It appears in no part and in no PartOf entry.
			continue
		}
		pi := partIdx[partKey[n]]
		res.PartOf[n.id] = pi
		pg := res.Parts[pi]
		c := pg.AddNode(n.Kind, n.Name)
		c.OutFrac = n.OutFrac
		c.Unknown = n.Unknown
		c.Discard = n.Discard
		c.Share = n.Share
		c.Source = n.Source
		c.SourceIsInput = n.SourceIsInput
		c.NoExcess = n.NoExcess
		c.Ref = n.Ref
		newNode[n] = c
		res.OrigOf[pi][c.ID()] = n.id
	}

	// Wire edges. Uncut edges stay inside their part; cut sources feed
	// grouped ConstrainedInput pseudo-sources in the consuming parts.
	type ciKey struct {
		src  int
		part int
		port string
	}
	type ciGroup struct {
		edges []*Edge
	}
	groups := map[ciKey]*ciGroup{}
	var groupOrder []ciKey
	for _, e := range g.edges {
		if e == nil {
			continue
		}
		if !cut[e.From] {
			if partKey[e.From] != partKey[e.To] {
				return nil, fmt.Errorf("dag: internal error: uncut edge %v crosses parts", e)
			}
			pi := partIdx[partKey[e.From]]
			pg := res.Parts[pi]
			ne := pg.AddPortEdge(newNode[e.From], newNode[e.To], e.Frac, e.Port)
			res.EdgeOf[e.ID()] = [2]int{pi, ne.ID()}
			continue
		}
		k := ciKey{src: e.From.id, part: partIdx[partKey[e.To]], port: e.Port}
		grp := groups[k]
		if grp == nil {
			grp = &ciGroup{}
			groups[k] = grp
			groupOrder = append(groupOrder, k)
		}
		grp.edges = append(grp.edges, e)
	}
	// Per-(source, port) use counts for the m/N shares.
	useCount := map[[2]any]int{}
	for _, e := range g.edges {
		if e != nil && cut[e.From] {
			useCount[[2]any{e.From.id, e.Port}]++
		}
	}
	for _, k := range groupOrder {
		grp := groups[k]
		src := g.Node(k.src)
		pg := res.Parts[k.part]
		ci := pg.AddNode(ConstrainedInput, fmt.Sprintf("%s@part%d", src.Name, k.part))
		n := useCount[[2]any{k.src, k.port}]
		ci.Share = float64(len(grp.edges)) / float64(n)
		ci.Source = src.id
		ci.SourceIsInput = src.Kind == Input
		for _, e := range grp.edges {
			ne := pg.AddPortEdge(ci, newNode[e.To], e.Frac, PortDefault)
			res.EdgeOf[e.ID()] = [2]int{k.part, ne.ID()}
		}
		srcPart := partIdx[partKey[src]]
		bindSrcPart := srcPart
		if src.Kind == Input {
			bindSrcPart = -1
		}
		res.Bindings = append(res.Bindings, Binding{
			Part:          k.part,
			NodeID:        ci.ID(),
			SourcePart:    bindSrcPart,
			SourceID:      src.id,
			SourcePort:    k.port,
			Share:         ci.Share,
			SourceUnknown: src.Unknown,
		})
	}

	for _, b := range res.Bindings {
		if b.SourcePart >= b.Part {
			return nil, fmt.Errorf("dag: internal error: part %d depends on part %d", b.Part, b.SourcePart)
		}
	}
	for i, pg := range res.Parts {
		if err := pg.Validate(); err != nil {
			return nil, fmt.Errorf("dag: partition %d invalid: %w", i, err)
		}
	}
	return res, nil
}

func keyString(set map[int]bool) string {
	if len(set) == 0 {
		return ""
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}
