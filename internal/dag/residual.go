package dag

import "fmt"

// FluidKey names the fluid a node produces on a port — the key format
// shared by codegen's location maps (codegen.Result.VesselOf) and the
// recovery runtime's live-volume lookups during replanning.
func FluidKey(nodeID int, port string) string { return fmt.Sprintf("%d/%s", nodeID, port) }

// ResidualBoundary records where one residual ConstrainedInput gets its
// fluid: a node that has already executed, whose live vessel volume is
// the fixed boundary condition of the residual solve.
type ResidualBoundary struct {
	// CINode is the ConstrainedInput's node id in the residual graph.
	CINode int
	// SourceID is the producing node's id in the original graph.
	SourceID int
	// SourcePort is the producer port the fluid comes from
	// (effluent/waste for separations, empty otherwise).
	SourcePort string
}

// Residual is the not-yet-executed remainder of a graph, extracted by
// ExtractResidual: a solvable DAG whose boundary conditions are the live
// volumes of already-produced fluids.
type Residual struct {
	Graph *Graph
	// NodeOf maps residual node ids to node ids in the original graph.
	// Synthetic ConstrainedInput nodes are absent.
	NodeOf map[int]int
	// EdgeOf maps ORIGINAL edge ids to residual edge ids, for every edge
	// whose consumer is still pending (cut edges map to the
	// constrained-input edge that replaced them).
	EdgeOf map[int]int
	// Boundaries describes every constrained input of the residual.
	Boundaries []ResidualBoundary
}

// ExtractResidual cuts g at the executed/pending frontier: nodes for
// which executed reports true are removed, and every edge from an
// executed producer into a pending consumer becomes a ConstrainedInput
// pseudo-source whose availability is, at solve time, the producer's
// live vessel volume. Pending nodes keep ALL their in-edges (each
// either stays internal or is re-sourced from a constrained input) with
// their original fractions, so mix ratios are preserved; a re-solve of
// the residual under a smaller scale shrinks every pending draw
// uniformly.
//
// Excess sinks follow their producer: codegen folds excess discharge
// into the producing cluster, so an Excess node is pending exactly when
// its producer is. An executed node consumed on several ports yields
// one constrained input per port (each port is a distinct vessel).
//
// Every pending node must come after every executed one along each
// path: an executed consumer of a pending producer is a contradiction
// (generated programs execute in topological order, so it cannot arise
// from a pc cut) and is reported as an error. A residual with no
// pending nodes is likewise an error — there is nothing to replan.
func ExtractResidual(g *Graph, executed func(*Node) bool) (*Residual, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	pending := make(map[*Node]bool, len(g.nodes))
	order := g.TopoOrder()
	for _, n := range order {
		switch {
		case n.Kind == Excess:
			// Excess discharge happens inside the producing cluster.
			if len(n.in) > 0 {
				pending[n] = pending[n.in[0].From]
			}
		default:
			pending[n] = !executed(n)
		}
	}
	anyPending := false
	for _, e := range g.edges {
		if e == nil {
			continue
		}
		if pending[e.From] && !pending[e.To] {
			return nil, fmt.Errorf("dag: residual cut is not a frontier: executed %v consumes pending %v", e.To, e.From)
		}
	}
	for _, p := range pending {
		if p {
			anyPending = true
		}
	}
	if !anyPending {
		return nil, fmt.Errorf("dag: residual is empty: every node has executed")
	}

	res := &Residual{
		Graph:  New(),
		NodeOf: map[int]int{},
		EdgeOf: map[int]int{},
	}
	newNode := make(map[*Node]*Node, len(order))
	for _, n := range order {
		if !pending[n] {
			continue
		}
		c := res.Graph.AddNode(n.Kind, n.Name)
		c.OutFrac = n.OutFrac
		c.Unknown = n.Unknown
		c.Discard = n.Discard
		c.Share = n.Share
		c.Source = n.Source
		c.SourceIsInput = n.SourceIsInput
		c.NoExcess = n.NoExcess
		c.Ref = n.Ref
		newNode[n] = c
		res.NodeOf[c.ID()] = n.id
	}

	// Wire edges: pending→pending edges copy over; executed→pending
	// edges are grouped per (source, port) into one constrained input
	// whose out-edges keep the original fractions. Edges into executed
	// consumers have already transferred and are dropped.
	type ciKey struct {
		src  int
		port string
	}
	cis := map[ciKey]*Node{}
	for _, e := range g.edges {
		if e == nil || !pending[e.To] {
			continue
		}
		if pending[e.From] {
			ne := res.Graph.AddPortEdge(newNode[e.From], newNode[e.To], e.Frac, e.Port)
			res.EdgeOf[e.ID()] = ne.ID()
			continue
		}
		k := ciKey{src: e.From.id, port: e.Port}
		ci := cis[k]
		if ci == nil {
			ci = res.Graph.AddNode(ConstrainedInput, fmt.Sprintf("%s@live", e.From.Name))
			// The whole live vessel is available to the residual: its
			// executed consumers have already drawn their shares out.
			ci.Share = 1
			ci.Source = e.From.id
			ci.SourceIsInput = e.From.Kind == Input
			cis[k] = ci
			res.Boundaries = append(res.Boundaries, ResidualBoundary{
				CINode: ci.ID(), SourceID: e.From.id, SourcePort: e.Port,
			})
		}
		ne := res.Graph.AddPortEdge(ci, newNode[e.To], e.Frac, PortDefault)
		res.EdgeOf[e.ID()] = ne.ID()
	}

	if err := res.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("dag: residual invalid: %w", err)
	}
	return res, nil
}
