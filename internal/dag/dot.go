package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, useful for documentation
// and debugging. Node shapes encode kinds; edge labels show fractions.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", title)
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		shape := "ellipse"
		style := ""
		switch n.Kind {
		case Input:
			shape = "box"
		case ConstrainedInput:
			shape = "box"
			style = ` style=dashed`
		case Sense:
			shape = "doublecircle"
		case Separate:
			shape = "trapezium"
			if n.Unknown {
				style = ` style=filled fillcolor=lightgray`
			}
		case Excess:
			shape = "point"
		}
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("%s#%d", n.Kind, n.id)
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s%s];\n", n.id, label, shape, style)
	}
	for _, e := range g.edges {
		if e == nil {
			continue
		}
		label := fmt.Sprintf("%.3g", e.Frac)
		if e.Port != PortDefault {
			label = e.Port + " " + label
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From.id, e.To.id, label)
	}
	b.WriteString("}\n")
	return b.String()
}
