package fluidvet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig is the JSON configuration the go command writes for each
// package when it invokes a -vettool. The field set mirrors the
// x/tools unitchecker contract; fields this driver does not consume are
// kept so the document round-trips recognizably in debug output.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/fluidvet. It implements the protocol
// the go command expects of a -vettool:
//
//	fluidvet -V=full         print a versioned build ID and exit
//	fluidvet -flags          print the supported analyzer flags (JSON)
//	fluidvet help            print usage
//	fluidvet [-json] <file>.cfg  analyze one package described by the config
//
// Diagnostics print to stderr as file:line:col: [analyzer] message,
// sorted by (file, line, column, analyzer), and the process exits 1 if
// there were any, which go vet turns into a non-zero exit for the whole
// run. With -json (forwarded by `go vet -json`), findings print to
// stdout as a JSON object {package: {analyzer: [{posn, message}]}} and
// the exit status is 0 — the machine-readable dump CI archives.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if len(os.Args) == 2 {
		switch arg := os.Args[1]; {
		case arg == "-V=full":
			printVersion()
			return
		case arg == "-flags":
			// Advertise the flags the go command may forward to each
			// tool invocation (cmd/go/internal/vet queries this list).
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics to stdout"}]`)
			return
		case arg == "help", arg == "-h", arg == "-help", arg == "--help":
			printUsage(analyzers)
			return
		}
	}
	args := os.Args[1:]
	jsonOut := false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-json", args[0] == "-json=true", args[0] == "--json":
			jsonOut = true
		case args[0] == "-json=false":
			jsonOut = false
		default:
			log.Fatalf("unknown flag %s", args[0])
		}
		args = args[1:]
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking %s directly is unsupported; use "go vet -vettool=<path to %s>"`, progname, progname)
	}
	ipath, findings, err := runUnit(args[0], analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		writeJSONFindings(os.Stdout, ipath, findings)
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// jsonDiagnostic is one finding in the -json dump, shaped like the
// x/tools unitchecker output so generic tooling can consume it.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// writeJSONFindings emits {package: {analyzer: [diagnostics]}}. The
// findings arrive sorted, so the dump is byte-stable across runs.
func writeJSONFindings(w io.Writer, ipath string, findings []Finding) {
	byAnalyzer := map[string][]jsonDiagnostic{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiagnostic{
			Posn:    f.Pos.String(),
			Message: f.Message,
		})
	}
	doc := map[string]map[string][]jsonDiagnostic{ipath: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	// Encoding a map of plain data cannot fail; ignore the error like
	// the unitchecker does.
	//fluidvet:allow syncerr stdout JSON encode of plain maps cannot fail
	_ = enc.Encode(doc)
}

// printVersion emits the "name version devel ... buildID=hash" line the
// go command hashes into its action cache key, in the same shape as
// x/tools' unitchecker (whose format the go command parses).
func printVersion() {
	progname, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	// The binary is opened read-only for hashing; its close result
	// cannot affect correctness.
	//fluidvet:allow syncerr read-only self-hash, close result is irrelevant
	_ = f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

func printUsage(analyzers []*Analyzer) {
	fmt.Println("fluidvet is a vet tool enforcing aquavol's determinism, diagnostics,")
	fmt.Println("and durability invariants. Run it via:")
	fmt.Println()
	fmt.Println("\tgo vet -vettool=$(command -v fluidvet) ./...")
	fmt.Println()
	fmt.Println("Suppress one finding with //fluidvet:allow <analyzer> <reason>.")
	fmt.Println()
	fmt.Println("Registered analyzers:")
	fmt.Println()
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("\t%-12s %s\n", a.Name, doc)
	}
}

// runUnit analyzes the single package described by cfgFile. It returns
// the package's import path alongside its findings.
//
// The effect facts channel: each in-module package's inferred function
// summaries are serialized as JSON into its .vetx output, which the go
// command hands to every dependent package's invocation via
// PackageVetx. Since the go command schedules vet actions in dependency
// order, `go vet -vettool ./...` computes the transitive, module-wide
// effect closure one package at a time — the same topology x/tools
// facts use. Out-of-module packages (stdlib) get an empty facts file
// and are classified by the curated table instead.
func runUnit(cfgFile string, analyzers []*Analyzer) (string, []Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return "", nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return "", nil, fmt.Errorf("cannot decode vet config %s: %w", cfgFile, err)
	}

	// Import path "pkg [pkg.test]" is the test variant of pkg: analyze
	// its production files under the plain path. Everything outside
	// this module (stdlib, synthesized test mains) passes untouched.
	ipath := cfg.ImportPath
	if i := strings.IndexByte(ipath, ' '); i >= 0 {
		ipath = ipath[:i]
	}

	writeFacts := func(facts EffectFacts) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		payload := []byte{}
		if len(facts) > 0 {
			// encoding/json sorts map keys, so the facts file is
			// byte-stable and cache-friendly.
			payload, err = json.Marshal(facts)
			if err != nil {
				return fmt.Errorf("encoding facts: %w", err)
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			return fmt.Errorf("writing facts: %w", err)
		}
		return nil
	}

	if !inModule(ipath) || strings.HasSuffix(ipath, ".test") {
		return ipath, nil, writeFacts(nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return ipath, nil, writeFacts(nil)
			}
			return ipath, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return ipath, nil, writeFacts(nil)
	}

	pkg, info, err := typeCheck(fset, files, ipath, cfg.GoVersion, makeImporter(fset, cfg))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return ipath, nil, writeFacts(nil)
		}
		return ipath, nil, fmt.Errorf("typechecking %s: %w", ipath, err)
	}

	deps, err := readDepFacts(cfg)
	if err != nil {
		return ipath, nil, err
	}

	findings, effects, err := Check(fset, files, pkg, info, analyzers, deps)
	if err != nil {
		return ipath, nil, err
	}
	if err := writeFacts(effects.Facts()); err != nil {
		return ipath, nil, err
	}
	if cfg.VetxOnly {
		// Fact-generation-only invocation for a dependency outside the
		// vet pattern: summaries are written, findings are not reported.
		return ipath, nil, nil
	}
	return ipath, findings, nil
}

// readDepFacts loads the effect summaries of every dependency the go
// command provided a .vetx file for. Empty files (stdlib, pre-effect
// tools) contribute nothing.
func readDepFacts(cfg *vetConfig) (EffectFacts, error) {
	all := EffectFacts{}
	for path, file := range cfg.PackageVetx {
		if !inModule(path) {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue // absent or empty facts: fall back to worst-case
		}
		facts := EffectFacts{}
		if err := json.Unmarshal(data, &facts); err != nil {
			return nil, fmt.Errorf("decoding facts for %s: %w", path, err)
		}
		for k, v := range facts {
			all[k] = v
		}
	}
	return all, nil
}

// makeImporter resolves imports from the export-data files the go
// command listed in the vet config, exactly as the compiler saw them.
func makeImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// typeCheck runs go/types over the files with full info recording.
func typeCheck(fset *token.FileSet, files []*ast.File, path, goVersion string, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
