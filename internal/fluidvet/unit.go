package fluidvet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig is the JSON configuration the go command writes for each
// package when it invokes a -vettool. The field set mirrors the
// x/tools unitchecker contract; fields this driver does not consume are
// kept so the document round-trips recognizably in debug output.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/fluidvet. It implements the protocol
// the go command expects of a -vettool:
//
//	fluidvet -V=full         print a versioned build ID and exit
//	fluidvet -flags          print the supported analyzer flags (JSON)
//	fluidvet help            print usage
//	fluidvet <file>.cfg      analyze one package described by the config
//
// Diagnostics print to stderr as file:line:col: [analyzer] message and
// the process exits 1 if there were any, which go vet turns into a
// non-zero exit for the whole run.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if len(os.Args) == 2 {
		switch arg := os.Args[1]; {
		case arg == "-V=full":
			printVersion()
			return
		case arg == "-flags":
			// No analyzer flags: an empty JSON list tells the go
			// command there is nothing to forward.
			fmt.Println("[]")
			return
		case arg == "help", arg == "-h", arg == "-help", arg == "--help":
			printUsage(analyzers)
			return
		}
	}
	if len(os.Args) != 2 || !strings.HasSuffix(os.Args[1], ".cfg") {
		log.Fatalf(`invoking %s directly is unsupported; use "go vet -vettool=<path to %s>"`, progname, progname)
	}
	findings, err := runUnit(os.Args[1], analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// printVersion emits the "name version devel ... buildID=hash" line the
// go command hashes into its action cache key, in the same shape as
// x/tools' unitchecker (whose format the go command parses).
func printVersion() {
	progname, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	// The binary is opened read-only for hashing; its close result
	// cannot affect correctness.
	//fluidvet:allow syncerr read-only self-hash, close result is irrelevant
	_ = f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

func printUsage(analyzers []*Analyzer) {
	fmt.Println("fluidvet is a vet tool enforcing aquavol's determinism, diagnostics,")
	fmt.Println("and durability invariants. Run it via:")
	fmt.Println()
	fmt.Println("\tgo vet -vettool=$(command -v fluidvet) ./...")
	fmt.Println()
	fmt.Println("Suppress one finding with //fluidvet:allow <analyzer> <reason>.")
	fmt.Println()
	fmt.Println("Registered analyzers:")
	fmt.Println()
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("\t%-12s %s\n", a.Name, doc)
	}
}

// runUnit analyzes the single package described by cfgFile.
func runUnit(cfgFile string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %w", cfgFile, err)
	}

	// The go command expects a facts file for every package it vets,
	// ours carry no cross-package facts, so an empty marker suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %w", err)
		}
	}

	// Import path "pkg [pkg.test]" is the test variant of pkg: analyze
	// its production files under the plain path. Everything outside
	// this module (stdlib, synthesized test mains) passes untouched, as
	// do fact-only invocations for dependencies.
	ipath := cfg.ImportPath
	if i := strings.IndexByte(ipath, ' '); i >= 0 {
		ipath = ipath[:i]
	}
	if cfg.VetxOnly || !inModule(ipath) || strings.HasSuffix(ipath, ".test") {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkg, info, err := typeCheck(fset, files, ipath, cfg.GoVersion, makeImporter(fset, cfg))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", ipath, err)
	}
	return Check(fset, files, pkg, info, analyzers)
}

// makeImporter resolves imports from the export-data files the go
// command listed in the vet config, exactly as the compiler saw them.
func makeImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// typeCheck runs go/types over the files with full info recording.
func typeCheck(fset *token.FileSet, files []*ast.File, path, goVersion string, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
