package fluidvet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch enforces exhaustiveness for the enums whose variants gate
// replay and repair behavior: recovery's RepairKind, the journal's
// record Kind, and aquacore's EventKind. A switch over one of these
// with neither full coverage nor an explicit default is how a newly
// added kind silently falls through resume, repair selection, or event
// accounting — the compiler accepts it and no test fails until a run
// actually emits the new kind. An explicit default documents that the
// fall-through is intended.
var EnumSwitch = &Analyzer{
	Name: "enumswitch",
	Doc:  "switches over RepairKind, journal record kinds, and aquacore event kinds must be exhaustive or carry an explicit default",
	Run:  runEnumSwitch,
}

// guardedEnum reports whether the named type is one of the guarded
// enums. Matching is by type name (plus declaring-package name for the
// journal's generic "Kind") so analyzer fixtures can declare
// structurally identical enums.
func guardedEnum(named *types.Named) bool {
	obj := named.Obj()
	switch obj.Name() {
	case "RepairKind", "EventKind":
		return true
	case "Kind":
		return obj.Pkg() != nil && obj.Pkg().Name() == "journal"
	}
	return false
}

func runEnumSwitch(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := pass.TypeOf(sw.Tag)
			if t == nil {
				return true
			}
			named, ok := t.(*types.Named)
			if !ok || !guardedEnum(named) {
				return true
			}
			variants := enumVariants(named)
			if len(variants) < 2 {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					// An explicit default is the documented catch-all.
					return true
				}
				for _, e := range cc.List {
					tv, ok := pass.Info.Types[e]
					if !ok || tv.Value == nil {
						// A non-constant case defeats static coverage
						// reasoning; stand down rather than guess.
						return true
					}
					for name, val := range variants {
						if constant.Compare(tv.Value, token.EQL, val) {
							covered[name] = true
						}
					}
				}
			}
			var missing []string
			for name := range variants {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) == 0 {
				return true
			}
			sort.Strings(missing)
			pass.Reportf(sw.Pos(),
				"switch over %s is not exhaustive: missing %s; handle every kind or add an explicit default so a newly added kind cannot silently fall through",
				named.Obj().Name(), strings.Join(missing, ", "))
			return true
		})
	}
	return nil
}

// enumVariants returns the named constants of type named declared in
// its defining package, keyed by name.
func enumVariants(named *types.Named) map[string]constant.Value {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	out := map[string]constant.Value{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if !types.Identical(c.Type(), named) {
			continue
		}
		out[name] = c.Val()
	}
	return out
}
