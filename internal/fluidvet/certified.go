package fluidvet

// CertifiedEntryPoints is the canonical list of solver-core functions
// that carry a //fluidvet:parallelsafe declaration directive. It is the
// single source of truth three consumers check against:
//
//   - the certified-list meta-test verifies every entry here carries
//     the directive in source (and that no directive exists outside
//     this list), so the certificate cannot silently drift;
//   - the concurrency smoke test hammers each entry point from many
//     goroutines under -race, validating the static certificate
//     dynamically;
//   - the CI gate compares this list against the table documented in
//     README.md ("Parallel-safety certification").
//
// Names are FullName forms as go/types renders them. The paper-facing
// shorthand (README) maps dag.Validate to the (*dag.Graph).Validate
// method, lp.Solve to (*lp.Problem).Solve, and analysis.Run to
// analysis.Analyze — the repo's actual API names.
var CertifiedEntryPoints = []string{
	"aquavol/internal/core.DAGSolve",
	"aquavol/internal/core.SolveResidual",
	"(*aquavol/internal/lp.Problem).Solve",
	"aquavol/internal/ilp.Solve",
	"(*aquavol/internal/dag.Graph).Validate",
	"aquavol/internal/analysis.Analyze",
	"aquavol/internal/aisverify.Verify",
	"aquavol/internal/certify.CheckPlan",
	"aquavol/internal/certify.CheckResidual",
}
