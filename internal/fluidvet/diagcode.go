package fluidvet

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// DiagCode enforces that VOL/AIS/ASM diagnostic codes are minted
// exclusively through the internal/diag registry. The codes are a
// stable machine-readable surface (tools parse fluidlint/aisverify
// -json output by code), so every code must be unique, carry one
// severity, and be documented — properties the registry guarantees at
// registration and this analyzer guarantees nobody bypasses: a raw
// "VOL001"-shaped string literal may appear only as the ID argument of
// diag.MustRegister, and diag.Diagnostic literals must not set Code
// directly outside internal/diag (use diag.New, which looks the code
// up).
var DiagCode = &Analyzer{
	Name: "diagcode",
	Doc:  "diagnostic codes must be minted through the internal/diag registry (unique, one severity, documented)",
	Run:  runDiagCode,
}

// diagPkgPath is the registry package. The analyzer recognizes it by
// path so fixtures importing the real package are checked identically.
const diagPkgPath = "aquavol/internal/diag"

var codeLitRe = regexp.MustCompile(`^(VOL|AIS|ASM)[0-9]{3}$`)

func runDiagCode(pass *Pass) error {
	inDiag := pass.Pkg.Path() == diagPkgPath
	// registered maps code literal -> first MustRegister position, for
	// same-package duplicate detection (cross-package duplicates panic
	// at registration and are caught by internal/diag's meta-test).
	registered := map[string]bool{}
	allowedLits := map[*ast.BasicLit]bool{}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isMustRegister(pass, call) || len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"diag.MustRegister ID must be a string literal so uniqueness and documentation are statically checkable")
				return true
			}
			allowedLits[lit] = true
			id, err := strconv.Unquote(lit.Value)
			if err != nil || !codeLitRe.MatchString(id) {
				pass.Reportf(lit.Pos(),
					"diag.MustRegister ID %s does not match the VOL/AIS/ASM code grammar %s", lit.Value, codeLitRe)
				return true
			}
			if registered[id] {
				pass.Reportf(lit.Pos(), "diagnostic code %s registered twice in this package: codes must be unique", id)
			}
			registered[id] = true
			// MustRegister(id, severity, summary, doc): statically empty
			// summary or doc defeats the "documented" guarantee.
			for _, part := range []struct {
				i    int
				what string
			}{{2, "summary"}, {3, "doc link"}} {
				i, what := part.i, part.what
				if i < len(call.Args) {
					if s, ok := ast.Unparen(call.Args[i]).(*ast.BasicLit); ok && (s.Value == `""` || s.Value == "``") {
						pass.Reportf(s.Pos(), "diagnostic code %s has an empty %s: registered codes must be documented", id, what)
					}
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if allowedLits[n] {
					return true
				}
				s, err := strconv.Unquote(n.Value)
				if err != nil || !codeLitRe.MatchString(s) {
					return true
				}
				pass.Reportf(n.Pos(),
					"raw diagnostic code %q: mint codes through diag.MustRegister and reference the registered variable, so every code is unique, has one severity, and is documented", s)
			case *ast.CompositeLit:
				if inDiag {
					return true
				}
				if !isDiagDiagnosticType(pass.TypeOf(n)) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
						pass.Reportf(kv.Pos(),
							"diag.Diagnostic literal sets Code directly: construct coded findings with diag.New so the severity and documentation come from the registry")
					}
				}
			}
			return true
		})
	}
	return nil
}

func isMustRegister(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == "MustRegister" &&
		fn.Pkg() != nil && fn.Pkg().Path() == diagPkgPath
}

func isDiagDiagnosticType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Diagnostic" && obj.Pkg() != nil && obj.Pkg().Path() == diagPkgPath
}
