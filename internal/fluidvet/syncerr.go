package fluidvet

import (
	"go/ast"
	"go/types"
)

// SyncErr enforces the journal/snapshot durability discipline in
// replay-critical packages: the write-ahead log's crash guarantees
// hold only if every (*os.File).Sync and Close result on a write path
// is checked — a failed fsync means the record is not durable, a
// failed Close can swallow the final flush — and only if CRC results
// are actually consumed. Discarding any of these turns "the journal
// survives the crashes it exists for" into a hope. Read-only paths
// where the result genuinely cannot matter carry a //fluidvet:allow
// with the reason.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc:  "flag unchecked (*os.File).Sync/Close and ignored CRC results on journal/snapshot write paths",
	Run:  runSyncErr,
}

func runSyncErr(pass *Pass) error {
	if !isReplayCritical(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, n.X, "discarded")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "deferred without checking")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "discarded (go statement)")
			case *ast.AssignStmt:
				if allBlank(n.Lhs) {
					for _, rhs := range n.Rhs {
						checkDiscardedCall(pass, rhs, "explicitly discarded")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall flags e when it is a call whose error or checksum
// result is being dropped.
func checkDiscardedCall(pass *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if name, ok := osFileSyncOrClose(pass, call); ok {
		pass.Reportf(call.Pos(),
			"(*os.File).%s result %s: a failed %s on a journal or snapshot write path silently breaks durability; check it (or allow with a reason on read-only paths)", name, how, name)
		return
	}
	if recv, name, ok := vfsDurabilityCall(pass, call); ok {
		pass.Reportf(call.Pos(),
			"%s.%s result %s: the vfs layer exists to surface exactly these storage failures; check it (or allow with a reason on read-only paths)", recv, name, how)
		return
	}
	if name, ok := crcResult(pass, call); ok {
		pass.Reportf(call.Pos(),
			"%s result %s: a checksum that is computed but never compared protects nothing", name, how)
	}
}

// osFileSyncOrClose reports whether call invokes Sync or Close on an
// *os.File receiver.
func osFileSyncOrClose(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Sync" && name != "Close" {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if !isOSFilePtr(sig.Recv().Type()) && !isOSFilePtr(pass.TypeOf(sel.X)) {
		return "", false
	}
	return name, true
}

// vfsDurabilityCall reports whether call invokes Sync or Close on a
// vfs.File (or any type the vfs package declares), or SyncDir on a
// vfs.FS. The injectable filesystem is the journal's durability seam:
// a dropped error there is a dropped EIO/ENOSPC/lying-fsync, the exact
// failures the layer is built to make visible.
func vfsDurabilityCall(pass *Pass, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	name = sel.Sel.Name
	if name != "Sync" && name != "Close" && name != "SyncDir" {
		return "", "", false
	}
	fn, fnOK := pass.Info.Uses[sel.Sel].(*types.Func)
	if !fnOK {
		return "", "", false
	}
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return "", "", false
	}
	if r := vfsTypeName(sig.Recv().Type()); r != "" {
		return "vfs." + r, name, true
	}
	if r := vfsTypeName(pass.TypeOf(sel.X)); r != "" {
		return "vfs." + r, name, true
	}
	return "", "", false
}

// vfsTypeName returns the named type's name when it is declared in a
// package whose final path segment is vfs (the interface or any
// implementation it owns), else "".
func vfsTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || lastSegment(obj.Pkg().Path()) != "vfs" {
		return ""
	}
	return obj.Name()
}

func isOSFilePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// crcResult reports whether call computes a CRC whose result is the
// call's value: hash/crc32 and hash/crc64 package functions, or Sum32/
// Sum64 on their hash objects.
func crcResult(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "hash/crc32", "hash/crc64":
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 0 {
			return "", false
		}
		return lastSegment(fn.Pkg().Path()) + "." + fn.Name(), true
	case "hash":
		if fn.Name() == "Sum32" || fn.Name() == "Sum64" {
			return "hash." + fn.Name(), true
		}
	}
	return "", false
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}
