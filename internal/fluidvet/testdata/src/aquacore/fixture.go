// Package aquacore is a fluidvet fixture: its directory name puts it in
// the replay-critical set, so the determinism analyzer's trigger and
// suppress cases both run here.
package aquacore

import (
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock twice: both flagged.
func Clock() time.Duration {
	start := time.Now()      // want `determinism: call to time\.Now reads the wall clock`
	return time.Since(start) // want `determinism: call to time\.Since reads the wall clock`
}

// Draw mixes the process-global PRNG (flagged) with a seeded generator
// (method calls on an explicitly-seeded source are fine).
func Draw(seed int64) (float64, float64) {
	global := rand.Float64() // want `determinism: call to rand\.Float64 uses the process-global PRNG`
	seeded := rand.New(rand.NewSource(seed)).Float64()
	return global, seeded
}

// SumInts accumulates integers over a map: commutative, order-free.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SumFloats accumulates floats over a map: float addition is not
// associative, so the sum's bits depend on iteration order.
func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `determinism: map iteration order is nondeterministic .*floating-point accumulation`
		total += v
	}
	return total
}

// PerKey writes each entry under its own range key: order-free.
func PerKey(m, out map[string]float64) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// Keys collects then sorts: the canonical deterministic-iteration idiom.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Unsorted collects without ever sorting: the slice order leaks.
func Unsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `determinism: map iteration order is nondeterministic .*never sorted`
		keys = append(keys, k)
	}
	return keys
}

// Last keeps only the final iterated entry: which one that is depends
// on iteration order.
func Last(m map[string]int) string {
	winner := ""
	for k := range m { // want `determinism: map iteration order is nondeterministic .*last-iterated`
		winner = k
	}
	return winner
}

// Max is conditional selection (the min/max idiom): order-free.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Prune deletes as it goes: order-free.
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Emit calls an effectful function per entry: the observable call order
// depends on iteration order.
func Emit(m map[string]int, sink func(string)) {
	for k := range m { // want `determinism: map iteration order is nondeterministic .*calls with effects`
		sink(k)
	}
}
