// Package budget is a fluidvet fixture: its directory name puts it in
// the replay-critical set (mirroring the real work-budget layer), so
// the determinism analyzer polices its clock reads. The real package's
// deadline support is the sanctioned exception — deadlines are resource
// guards, never replayed state — and must carry the allow directive;
// this fixture pins both the trigger and the escape hatch.
package budget

import "time"

// NakedDeadline arms a deadline without the allow directive: flagged.
func NakedDeadline(d time.Duration) time.Time {
	return time.Now().Add(d) // want `determinism: call to time\.Now reads the wall clock`
}

// GuardedDeadline is the real meter's idiom: the clock read is audited
// by an allow directive carrying the reason.
func GuardedDeadline(d time.Duration) time.Time {
	//fluidvet:allow determinism deadline is a resource guard; truncation is reported, never replayed
	return time.Now().Add(d)
}

// Poll checks an armed deadline: the expiry read needs the same audit.
func Poll(deadline time.Time) bool {
	if deadline.IsZero() {
		return false
	}
	//fluidvet:allow determinism deadline is a resource guard; truncation is reported, never replayed
	return time.Now().After(deadline)
}

// Used counts work units with no clock involvement: nothing to flag.
func Used(charges []int64) int64 {
	var total int64
	for _, n := range charges {
		total += n
	}
	return total
}
