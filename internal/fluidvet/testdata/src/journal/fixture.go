// Package journal is a fluidvet fixture for the durability analyzers:
// its directory name is replay-critical, so unchecked Sync/Close and
// computed-but-unused CRCs are flagged (syncerr), and its Kind enum is
// exhaustiveness-guarded by name (enumswitch).
package journal

import (
	"hash/crc32"
	"os"
)

// Kind mirrors the journal's record-kind enum: guarded because the
// declaring package is named journal.
type Kind int

const (
	KindBegin Kind = iota
	KindStep
	KindSnapshot
)

// Describe covers every kind: fine.
func Describe(k Kind) string {
	switch k {
	case KindBegin:
		return "begin"
	case KindStep:
		return "step"
	case KindSnapshot:
		return "snapshot"
	}
	return ""
}

// Partial silently drops snapshots.
func Partial(k Kind) string {
	switch k { // want `enumswitch: switch over Kind is not exhaustive: missing KindSnapshot`
	case KindBegin:
		return "begin"
	case KindStep:
		return "step"
	}
	return ""
}

// Defaulted documents the fall-through: fine.
func Defaulted(k Kind) string {
	switch k {
	case KindBegin:
		return "begin"
	default:
		return "other"
	}
}

// WriteUnchecked drops a checksum, an fsync result, and a close result.
func WriteUnchecked(f *os.File, payload []byte) {
	crc32.ChecksumIEEE(payload) // want `syncerr: crc32\.ChecksumIEEE result discarded`
	f.Sync()                    // want `syncerr: .*Sync result discarded`
	defer f.Close()             // want `syncerr: .*Close result deferred without checking`
}

// Blank discards explicitly: still flagged.
func Blank(f *os.File) {
	_ = f.Close() // want `syncerr: .*Close result explicitly discarded`
}

// WriteChecked consumes every result: fine.
func WriteChecked(f *os.File, payload []byte) (uint32, error) {
	sum := crc32.ChecksumIEEE(payload)
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return sum, f.Close()
}
