// Package core is a globalstate fixture: its import-path last segment
// places it in the solver-core set, so package-level mutable state must
// be effectively-const or sync-guarded. Each finding below is the race
// shape the analyzer exists to catch — a lazily-populated package map or
// a per-call counter that the certified entry points would trip
// concurrently; each non-finding is a blessed repair for it.
package core

import (
	"sync"
	"sync/atomic"
)

var limits = map[string]int{"cap": 8}

var (
	mu      sync.Mutex
	byLabel = map[string]int{}
)

var (
	once sync.Once
	lazy map[string]int
)

var hits atomic.Int64

var calls int64

func init() {
	limits["init"] = 1 // initialization before main is single-threaded: ok
}

func record(k string) {
	limits[k] = limits[k] + 1 // want `globalstate: package-level core\.limits is mutated \(element write\) outside init`
}

func reset() {
	limits = map[string]int{} // want `globalstate: package-level core\.limits is reassigned outside init`
}

func drop(k string) {
	delete(limits, k) // want `globalstate: package-level core\.limits is mutated \(delete\) outside init`
}

func bump() {
	calls++ // want `globalstate: package-level core\.calls is incremented/decremented outside init`
}

func leak() *map[string]int {
	return &limits // want `globalstate: package-level core\.limits is aliased \(&\) into mutable context`
}

// lockAndRecord acquires the package mutex: its writes are guarded.
func lockAndRecord(k string) {
	mu.Lock()
	defer mu.Unlock()
	byLabel[k]++
}

// lazyGet is the blessed lazily-initialized-map idiom: the write lives
// in a (*sync.Once).Do body.
func lazyGet(k string) int {
	once.Do(func() { lazy = map[string]int{"a": 1} })
	return lazy[k]
}

// count mutates a sync/atomic value type: the variable is the
// synchronization.
func count() {
	hits.Add(1)
}

var total int64

// countAtomic goes through sync/atomic, so the &total operand is a
// synchronized access, not an unguarded alias.
func countAtomic() {
	atomic.AddInt64(&total, 1)
}
