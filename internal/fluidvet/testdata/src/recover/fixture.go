// Package recover is a fluidvet fixture for the errwrap analyzer: its
// directory name is in scope, so identity-destroying format verbs and
// never-produced sentinels are flagged.
package recover

import (
	"errors"
	"fmt"
)

// ErrStuck is only ever tested with errors.Is, never produced: the
// match can never succeed.
var ErrStuck = errors.New("recover: stuck") // want `errwrap: sentinel ErrStuck is never produced`

// ErrDone is produced by Finish: fine.
var ErrDone = errors.New("recover: done")

// ErrExternal is produced by another package; the allow documents it.
//
//fluidvet:allow errwrap produced by the fixture's imaginary sibling package
var ErrExternal = errors.New("recover: external")

// Classify only tests the sentinels.
func Classify(err error) bool {
	return errors.Is(err, ErrStuck) || errors.Is(err, ErrDone) || errors.Is(err, ErrExternal)
}

// Finish produces ErrDone (wrapped, which also counts).
func Finish(step int) error {
	if step > 0 {
		return fmt.Errorf("step %d: %w", step, ErrDone)
	}
	return ErrDone
}

// Flatten renders the cause with %v: its identity is lost.
func Flatten(err error) error {
	return fmt.Errorf("replan failed: %v", err) // want `errwrap: error formatted with %v`
}

// Wrap keeps the cause's identity: fine.
func Wrap(err error) error {
	return fmt.Errorf("replan failed: %w", err)
}

// Mixed maps verbs to arguments: the %s lands on the error even with
// other verbs (and a width) in front.
func Mixed(n int, err error) error {
	return fmt.Errorf("%3d retries: %s", n, err) // want `errwrap: error formatted with %s`
}

// Quoted is as lossy as %v.
func Quoted(err error) error {
	return fmt.Errorf("inner: %q", err) // want `errwrap: error formatted with %q`
}

// TypeOnly prints the dynamic type, which never carries identity to
// begin with: not flagged.
func TypeOnly(err error) error {
	return fmt.Errorf("unexpected %T", err)
}
