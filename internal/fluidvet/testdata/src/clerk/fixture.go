// Package clerk is a fluidvet fixture OUTSIDE the replay-critical set:
// the same constructs the determinism analyzer flags in aquacore pass
// without a finding here.
package clerk

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: fine outside replay-critical packages.
func Stamp() time.Time { return time.Now() }

// Roll draws from the global PRNG: likewise fine here.
func Roll() float64 { return rand.Float64() }

// Tally iterates a map into a float accumulator: likewise fine here.
func Tally(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
