// Package faults is a fluidvet fixture for the //fluidvet:allow escape
// hatch, in a replay-critical directory so the determinism analyzer
// supplies the findings to suppress. Expectations live in
// TestAllowFixture (misuse findings land on the directive-comment lines
// themselves, which cannot also carry want comments).
package faults

import "time"

// SameLine is properly allowed on the finding's line: suppressed.
func SameLine() time.Time {
	return time.Now() //fluidvet:allow determinism fixture: wall time is reported, never replayed
}

// LineAbove is properly allowed on the line above: suppressed.
func LineAbove() time.Time {
	//fluidvet:allow determinism fixture: wall time is reported, never replayed
	return time.Now()
}

// UnknownName names a nonexistent analyzer: the directive is a finding
// and the wall-clock finding survives.
func UnknownName() time.Time {
	return time.Now() //fluidvet:allow clockcheck this analyzer does not exist
}

// NoReason suppresses without an audit trail: rejected, finding survives.
func NoReason() time.Time {
	return time.Now() //fluidvet:allow determinism
}

// NoName gives neither analyzer nor reason: rejected, finding survives.
func NoName() time.Time {
	return time.Now() //fluidvet:allow
}

// WrongVerb uses an unknown fluidvet directive: malformed.
//
//fluidvet:deny determinism no such verb
func WrongVerb() {}
