// Package certify is a fluidvet fixture: the real certification
// package is replay-critical (certificate hashes land in journal
// records, so a nondeterministic checker would break bit-identical
// resume verification), and its directory name puts this fixture in
// the same scope — the determinism analyzer's trigger and suppress
// cases both run here.
package certify

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock: flagged — a certificate must not depend
// on when it was checked.
func Stamp() time.Time {
	return time.Now() // want `determinism: call to time\.Now reads the wall clock`
}

// Perturb draws from the process-global PRNG: flagged — mutation
// matrices must be enumerated, never sampled.
func Perturb(v float64) float64 {
	return v + rand.Float64() // want `determinism: call to rand\.Float64 uses the process-global PRNG`
}

// WorstViolation folds residuals over a map: float comparison under
// map order decides which witness is reported, so the pick must be
// made deterministic (sort the keys first).
func WorstViolation(residuals map[string]float64) float64 {
	worst := 0.0
	for _, r := range residuals { // want `determinism: map iteration order is nondeterministic .*floating-point accumulation`
		worst += r
	}
	return worst
}

// SortedChecks visits checks in sorted key order: the deterministic
// first-violation idiom the real checker uses, unflagged.
func SortedChecks(checks map[string]float64) []string {
	names := make([]string, 0, len(checks))
	for name := range checks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
