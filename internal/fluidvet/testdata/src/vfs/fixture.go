// Package vfs is a fluidvet fixture for the syncerr analyzer's vfs
// coverage: the injectable filesystem is the journal's durability seam,
// so a discarded File.Sync/Close or FS.SyncDir result is a discarded
// EIO/ENOSPC/lying-fsync — flagged exactly like the *os.File cases.
package vfs

// File mirrors the real vfs.File surface the analyzer keys on.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS mirrors the real vfs.FS surface.
type FS interface {
	Create(name string) (File, error)
	SyncDir(dir string) error
}

// Disk is a concrete implementation: methods on types the vfs package
// declares are covered too, not just the interfaces.
type Disk struct{}

func (Disk) Create(name string) (File, error) { return nil, nil }
func (Disk) SyncDir(dir string) error         { return nil }

// AppendUnchecked drops every durability result on the write path.
func AppendUnchecked(fsys FS, f File, payload []byte) {
	f.Write(payload)
	f.Sync()          // want `syncerr: vfs\.File\.Sync result discarded`
	fsys.SyncDir(".") // want `syncerr: vfs\.FS\.SyncDir result discarded`
	defer f.Close()   // want `syncerr: vfs\.File\.Close result deferred without checking`
	_ = f.Sync()      // want `syncerr: vfs\.File\.Sync result explicitly discarded`
	var d Disk
	d.SyncDir(".") // want `syncerr: vfs\.Disk\.SyncDir result discarded`
}

// AppendChecked propagates everything: no findings.
func AppendChecked(fsys FS, f File, payload []byte) error {
	if _, err := f.Write(payload); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fsys.SyncDir("."); err != nil {
		return err
	}
	return f.Close()
}

// ReadOnlyClose documents the read-path exception: suppressed.
func ReadOnlyClose(f File) {
	f.Close() //fluidvet:allow syncerr read-only open; nothing written, nothing to lose
}
