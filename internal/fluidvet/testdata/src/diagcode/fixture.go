// Package diagcode is a fluidvet fixture for the registry discipline:
// codes minted through diag.MustRegister pass; non-literal IDs, grammar
// violations, duplicates, empty documentation, raw code literals, and
// directly-set Diagnostic.Code fields are flagged.
package diagcode

import (
	"aquavol/internal/diag"
)

// CodeGood is minted through the registry: fine. (The fixture is only
// analyzed, never linked, so the registration does not execute.)
var CodeGood = diag.MustRegister("VOL900", diag.Error,
	"fixture condition", "README.md#static-analysis-fluidlint")

// A non-literal ID defeats the static uniqueness check.
var dynamicID = pick()

var CodeDynamic = diag.MustRegister(dynamicID, diag.Warning, "s", "d") // want `diagcode: .*must be a string literal`

// A malformed ID breaks the code grammar.
var CodeBad = diag.MustRegister("VOLX01", diag.Error, "s", "d") // want `diagcode: .*does not match the VOL/AIS/ASM code grammar`

// Registering the same ID twice in one package.
var CodeDup = diag.MustRegister("VOL900", diag.Error, "s", "d") // want `diagcode: .*registered twice`

// An empty summary defeats the "documented" guarantee.
var CodeBlank = diag.MustRegister("VOL902", diag.Error, "", "d") // want `diagcode: .*empty summary`

// A raw code literal outside MustRegister bypasses the registry.
var raw = "AIS001" // want `diagcode: raw diagnostic code "AIS001"`

// Setting Code directly skips the registry's severity and doc.
var direct = diag.Diagnostic{Code: CodeGood.ID} // want `diagcode: .*sets Code directly`

func pick() string { return raw }
