// Package enumswitch is a fluidvet fixture for the exhaustiveness
// rules over RepairKind and EventKind (guarded by type name, so the
// fixture's structurally identical enums exercise the real scoping).
package enumswitch

// RepairKind mirrors the recovery repair ladder.
type RepairKind int

const (
	RepairRetry RepairKind = iota
	RepairRescale
	RepairAbort
)

// EventKind mirrors the aquacore event taxonomy.
type EventKind int

const (
	EventBegin EventKind = iota
	EventEnd
)

// Other is not a guarded enum: never flagged.
type Other int

const (
	OtherA Other = iota
	OtherB
)

// Full covers every repair kind: fine.
func Full(k RepairKind) int {
	switch k {
	case RepairRetry:
		return 1
	case RepairRescale:
		return 2
	case RepairAbort:
		return 3
	}
	return 0
}

// Partial drops the abort arm.
func Partial(k RepairKind) int {
	switch k { // want `enumswitch: switch over RepairKind is not exhaustive: missing RepairAbort`
	case RepairRetry:
		return 1
	case RepairRescale:
		return 2
	}
	return 0
}

// Defaulted documents the fall-through: fine.
func Defaulted(k RepairKind) int {
	switch k {
	case RepairRetry:
		return 1
	default:
		return 0
	}
}

// Events misses EventEnd.
func Events(k EventKind) bool {
	switch k { // want `enumswitch: switch over EventKind is not exhaustive: missing EventEnd`
	case EventBegin:
		return true
	}
	return false
}

// NonConstant cases defeat static coverage: the analyzer stands down.
func NonConstant(k, other RepairKind) bool {
	switch k {
	case other:
		return true
	}
	return false
}

// Unguarded enums are out of scope.
func Unguarded(o Other) bool {
	switch o {
	case OtherA:
		return true
	}
	return false
}
