// Package sharedcapture is the fixture for the goroutine-capture
// analyzer: each finding is an unsynchronized shared capture, each
// non-finding is one of the blessed shapes (channels, sync/atomic,
// both-sides locking, fan-out into distinct slice elements, and Go's
// per-iteration loop variables).
package sharedcapture

import (
	"sync"
	"sync/atomic"
)

func compute() int { return 42 }

// A direct write inside the goroutine while the enclosing function also
// uses the variable.
func sumRace() int {
	total := 0
	go func() { // want `sharedcapture: goroutine captures "total" and writes it while the enclosing function also uses it`
		total++
	}()
	return total
}

// Concurrent map writes race (and fault at runtime).
func mapRace() map[int]int {
	m := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // want `sharedcapture: goroutine writes into captured map "m"`
			defer wg.Done()
			m[i] = i * i
		}()
	}
	wg.Wait()
	return m
}

// A write after the spawn races with the goroutine's read.
func staleRead() chan int {
	x := 1
	done := make(chan int)
	go func() { // want `sharedcapture: goroutine reads captured "x", which the enclosing function writes after the spawn`
		done <- x
	}()
	x = 2
	return done
}

// spawnHelper launches f on a fresh goroutine; its inferred effect
// includes spawns-goroutine, so literals passed to it are analyzed
// exactly like go-statement bodies.
func spawnHelper(f func()) { go f() }

func viaSpawnAPI() int {
	total := 0
	spawnHelper(func() { // want `sharedcapture: goroutine captures "total" and writes it while the enclosing function also uses it`
		total++
	})
	return total
}

// --- blessed shapes: no findings ---

// Communicate the result over a channel.
func viaChannel() int {
	ch := make(chan int)
	go func() { ch <- compute() }()
	return <-ch
}

// Fan out into distinct slice elements.
func fanOut(xs []int) []int {
	out := make([]int, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = x * x
		}()
	}
	wg.Wait()
	return out
}

// Per-iteration loop variables (Go ≥ 1.22): the header increment
// operates on each ending iteration's own copy.
func perIteration(n int) []int {
	results := make([]int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			results[i] = i
		}()
	}
	wg.Wait()
	return results
}

// Every inside write goes through sync/atomic.
func atomicCount(n int) int64 {
	var total int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			atomic.AddInt64(&total, 1)
		}()
	}
	wg.Wait()
	return atomic.LoadInt64(&total)
}

// Both sides lock.
func lockedCount(n int) int {
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			count++
			mu.Unlock()
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return count
}
