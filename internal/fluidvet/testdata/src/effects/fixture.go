// Package effects exercises every transition of the fluidvet effect
// lattice. effects_test.go asserts the inferred summary of each function
// by name (the table-driven lattice test), and the
// //fluidvet:parallelsafe annotations below pin the parallelsafe
// analyzer's findings — including the call-path proof traces — via want
// comments.
package effects

import (
	"os"
	"sync"
)

// --- pure chain: purity propagates through same-package calls ---

func pureLeaf(x int) int { return x + 1 }

func pureChain(x int) int { return pureLeaf(pureLeaf(x)) }

// --- global read ---

var table = map[string]int{"a": 1}

func readsTable(k string) int { return table[k] }

// --- global write: direct, and through an aliasing pointer ---

var counter int

func writesCounter() { counter++ }

func writesThroughPointer() {
	p := &counter
	*p = 42
}

// --- interface-call widening: dynamic dispatch is worst-case ---

type doer interface{ Do() }

func callsInterface(d doer) { d.Do() }

// --- SCC recursion: one member's write taints the whole cycle ---

func recursiveA(n int) int {
	if n <= 0 {
		return 0
	}
	return recursiveB(n - 1)
}

func recursiveB(n int) int {
	counter = n
	return recursiveA(n - 1)
}

// --- caller-bound function values: effect polymorphism lite ---

func callsParam(f func() int) int { return f() }

// --- sync.Once-guarded initialization: the write downgrades to a read ---

var (
	once  sync.Once
	cache map[string]int
)

func gets(k string) int {
	once.Do(func() { cache = map[string]int{"a": 1} })
	return cache[k]
}

// --- IO and spawning ---

func doesIO() string { return os.Getenv("HOME") }

func spawns() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
}

// --- directive override: trusted assertion replaces inference ---

// asserted would be worst-case by inference (interface dispatch) but the
// directive pins it pure; the override is what the lattice test checks.
//
//fluidvet:effect pure the dispatch target is audited pure
func asserted(d doer) { d.Do() }

// --- certified entry points: the parallelsafe analyzer's findings ---

// goodEntry only computes and reads immutable package state: certified.
//
//fluidvet:parallelsafe
func goodEntry(x int) int { return pureChain(x) + readsTable("a") }

// paramEntry calls whatever its caller supplies: calls-param is
// permitted under the race-free-callback contract.
//
//fluidvet:parallelsafe
func paramEntry(f func() int) int { return callsParam(f) }

// assertedEntry leans on the trusted //fluidvet:effect assertion.
//
//fluidvet:parallelsafe
func assertedEntry(d doer) { asserted(d) }

//fluidvet:parallelsafe
func badEntry() { // want `parallelsafe: effects\.badEntry is declared //fluidvet:parallelsafe but is writes-global: effects\.badEntry calls effects\.writesCounter \(.*fixture\.go.*\) -> effects\.writesCounter writes package-level var effects\.counter`
	writesCounter()
}

//fluidvet:parallelsafe
func ioEntry() string { // want `parallelsafe: effects\.ioEntry is declared //fluidvet:parallelsafe but is does-io: effects\.ioEntry calls effects\.doesIO \(.*\) -> effects\.doesIO calls os\.Getenv`
	return doesIO()
}

//fluidvet:parallelsafe
func spawnEntry() { // want `parallelsafe: effects\.spawnEntry is declared //fluidvet:parallelsafe but is spawns-goroutine: effects\.spawnEntry calls effects\.spawns \(.*\) -> effects\.spawns starts a goroutine`
	spawns()
}

//fluidvet:parallelsafe
func widenedEntry(d doer) { // want `parallelsafe: effects\.widenedEntry .* but is writes-global: .*calls interface method Do dynamically` `parallelsafe: effects\.widenedEntry .* but is does-io: .*assumed worst-case` `parallelsafe: effects\.widenedEntry .* but is spawns-goroutine: .*assumed worst-case`
	callsInterface(d)
}
