// Package effectsbad holds malformed effect-layer directives; the
// misuse findings land on the directive-comment lines themselves (which
// cannot also carry want comments), so effects_test.go checks them
// programmatically, mirroring TestAllowFixture.
package effectsbad

// BadName asserts an effect that does not exist.
//
//fluidvet:effect launders-money because reasons
func BadName() {}

// NoReason asserts an effect without justifying it.
//
//fluidvet:effect pure
func NoReason() {}

// BadParallel decorates the parallelsafe directive, which must appear
// exactly bare.
//
//fluidvet:parallelsafe because it is fast
func BadParallel() {}
