package fluidvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The effect system: an interprocedural, flow-insensitive inference of
// what each function in the module may do to shared state. It is the
// foundation the parallelsafe, globalstate, and sharedcapture analyzers
// build on, and the mechanism by which //fluidvet:parallelsafe entry
// points are certified data-race-free by construction.
//
// Every function gets a value in a small effect lattice:
//
//	pure < reads-global < writes-global / does-io / spawns-goroutine
//
// represented as a bitset so the join is a bitwise or. Effects are
// inferred bottom-up: local effects come from the function body
// (assignments to package-level variables, `go` statements, calls into
// classified standard-library packages), callee effects are joined in
// transitively by a fixed-point iteration over the strongly connected
// components of the package's static call graph, and cross-package
// effects flow through the go vet facts channel (each package's
// summaries are serialized into its .vetx file and read back by its
// dependents, so `go vet -vettool` gives whole-module transitive
// closure for free, in dependency order).
//
// Unknown callees are worst-case by construction: a call through an
// interface method or a function value that cannot be resolved
// statically is assumed to read, write, do IO, and spawn — unless the
// value is caller-bound (a parameter, or reached through one), in
// which case the call contributes the distinct calls-param effect:
// "as effectful as whatever the caller passes in". A caller that only
// ever passes pure closures keeps a pure certificate. The escape hatch
// for dispatch sites the human can vouch for is the declaration
// directive
//
//	//fluidvet:effect <effect>[,<effect>...] <reason>
//
// which overrides inference for that one function (and is itself
// validated: unknown effect names or a missing reason are findings).

// Effect is a join-semilattice element: a set of effect bits. The zero
// value is pure.
type Effect uint8

const (
	// EffectReadsGlobal: reads a package-level variable (any package).
	EffectReadsGlobal Effect = 1 << iota
	// EffectWritesGlobal: writes a package-level variable, or mutates a
	// map/slice held in one, without synchronization.
	EffectWritesGlobal
	// EffectIO: performs input/output (file system, process state,
	// terminal) or calls into a standard-library package that does.
	EffectIO
	// EffectSpawns: starts a goroutine, directly or transitively.
	EffectSpawns
	// EffectCallsParam: calls through a caller-bound function value (a
	// parameter or a value reached through one). The function is as
	// effectful as the callbacks its caller supplies.
	EffectCallsParam

	// EffectPure is the lattice bottom.
	EffectPure Effect = 0
	// effectWorst is the lattice top: what an unresolvable callee is
	// assumed to do.
	effectWorst = EffectReadsGlobal | EffectWritesGlobal | EffectIO | EffectSpawns
)

// effectNames maps each bit to its surface name, in severity order.
var effectNames = []struct {
	bit  Effect
	name string
}{
	{EffectReadsGlobal, "reads-global"},
	{EffectWritesGlobal, "writes-global"},
	{EffectIO, "does-io"},
	{EffectSpawns, "spawns-goroutine"},
	{EffectCallsParam, "calls-param"},
}

func (e Effect) String() string {
	if e == EffectPure {
		return "pure"
	}
	var parts []string
	for _, en := range effectNames {
		if e&en.bit != 0 {
			parts = append(parts, en.name)
		}
	}
	return strings.Join(parts, ",")
}

// parseEffect resolves one surface name to its bit. "pure" maps to the
// zero effect.
func parseEffect(name string) (Effect, bool) {
	if name == "pure" {
		return EffectPure, true
	}
	for _, en := range effectNames {
		if en.name == name {
			return en.bit, true
		}
	}
	return 0, false
}

// A Step is one hop in the call path that witnesses an effect: either a
// call ("core.DAGSolve calls lp.(*Problem).Solve") or the leaf cause
// ("writes package-level var lp.pivotCache").
type Step struct {
	Desc string `json:"desc"`
	Pos  string `json:"pos"`
}

// maxWitnessDepth bounds the length of a recorded call path so facts
// files stay small; deeper chains are truncated with an ellipsis step.
const maxWitnessDepth = 16

// A Summary is the inferred (or asserted) effect of one function, with
// one witness call path per effect bit explaining where it comes from.
type Summary struct {
	Effect  Effect            `json:"effect"`
	Witness map[Effect][]Step `json:"witness,omitempty"`
	// Asserted marks a summary fixed by a //fluidvet:effect directive
	// rather than inferred; its witness is the directive itself.
	Asserted bool `json:"asserted,omitempty"`
}

// witnessFor returns the recorded path for the severest effect bit in
// mask that the summary carries.
func (s *Summary) witnessFor(mask Effect) []Step {
	for i := len(effectNames) - 1; i >= 0; i-- {
		bit := effectNames[i].bit
		if bit&mask != 0 && s.Effect&bit != 0 {
			if w := s.Witness[bit]; w != nil {
				return w
			}
		}
	}
	return nil
}

// EffectFacts is the serialized form of a package's summaries, keyed by
// types.Func.FullName (e.g. "aquavol/internal/core.DAGSolve" or
// "(*aquavol/internal/lp.Problem).Solve").
type EffectFacts map[string]*Summary

// Effects holds the inference result for one package: summaries for the
// package's own functions plus the imported facts of its dependencies.
type Effects struct {
	pkg       *types.Package
	summaries map[*types.Func]*Summary
	deps      EffectFacts
	// paramFuncs records, per function literal or declaration body,
	// objects that are caller-bound function values (parameters of
	// function type, and locals assigned from them).
	callerBound map[types.Object]bool
	// guardedOnce marks function-literal nodes whose body is an argument
	// to (*sync.Once).Do: writes inside are synchronized by definition.
	// lockHolders marks declared functions that acquire a sync.Mutex or
	// RWMutex lock somewhere in their body; global writes inside them
	// are treated as guarded (and left to human audit via the lock).
	guardedOnce map[*ast.FuncLit]bool
	lockHolders map[*ast.FuncDecl]bool
}

// Of returns the summary for fn, consulting local inference first, then
// imported facts, then the curated standard-library table, and finally
// the worst case. The returned summary is never nil.
func (e *Effects) Of(fn *types.Func) *Summary {
	if s, ok := e.summaries[fn]; ok {
		return s
	}
	if s, ok := e.deps[fn.FullName()]; ok {
		return s
	}
	return stdlibSummary(fn)
}

// OfName looks a summary up by FullName string (used by tests and the
// certified-entry-point meta-checks).
func (e *Effects) OfName(full string) (*Summary, bool) {
	for fn, s := range e.summaries {
		if fn.FullName() == full {
			return s, true
		}
	}
	s, ok := e.deps[full]
	return s, ok
}

// Facts renders the package's summaries for serialization into the
// .vetx facts file consumed by dependent packages. Only exported-ish
// reachability matters, but unexported functions are included too: a
// dependent package never names them, and the size cost is small
// compared to re-deriving paths.
//
// Imported dep facts are re-exported alongside the package's own
// summaries, so the facts channel carries the transitive module
// closure even though the go command only hands each vet invocation
// the .vetx files of its direct imports. Without this, a method
// reached through a re-exported type — core.Config's *budget.Meter
// field called from a package that never imports budget itself — would
// fall off the facts channel and classify worst-case.
func (e *Effects) Facts() EffectFacts {
	out := make(EffectFacts, len(e.summaries)+len(e.deps))
	for name, s := range e.deps {
		out[name] = s
	}
	for fn, s := range e.summaries {
		out[fn.FullName()] = s
	}
	return out
}

// stdlibClass classifies standard-library (and otherwise external)
// packages by import path. Worst-case is the default for anything not
// listed: externals are untrusted unless classified or annotated.
//
// The classification is about *data races and process effects*, not
// determinism (the determinism analyzer owns that): time.Now is
// race-safe, sync.Mutex.Lock is the whole point, fmt.Sprintf is pure.
var stdlibClass = map[string]Effect{
	// Pure computation and in-memory data structure packages.
	"errors": EffectPure, "sort": EffectPure, "strings": EffectPure,
	"strconv": EffectPure, "bytes": EffectPure, "unicode": EffectPure,
	"unicode/utf8": EffectPure, "math": EffectPure, "math/bits": EffectPure,
	"math/big": EffectPure, "slices": EffectPure, "maps": EffectPure,
	"cmp": EffectPure, "container/heap": EffectPure, "container/list": EffectPure,
	"hash": EffectPure, "hash/crc32": EffectPure, "crypto/sha256": EffectPure,
	"encoding/json": EffectPure, "encoding/binary": EffectPure,
	"regexp": EffectPure, "path": EffectPure, "path/filepath": EffectPure,
	"go/token": EffectPure, "go/ast": EffectPure, "go/types": EffectPure,
	// Synchronization primitives are race-safe by definition, and the
	// wall clock is race-safe (determinism is a separate analyzer).
	"sync": EffectPure, "sync/atomic": EffectPure, "time": EffectPure,
	"reflect": EffectPure,
	// IO-performing packages.
	"os": EffectIO, "io": EffectIO, "io/fs": EffectIO, "bufio": EffectIO,
	"log": EffectIO, "os/exec": EffectIO, "net": EffectIO, "syscall": EffectIO,
	// The global PRNG is shared mutable state (rand.New et al. are
	// carved out in stdlibSummary).
	"math/rand":    EffectReadsGlobal | EffectWritesGlobal,
	"math/rand/v2": EffectReadsGlobal | EffectWritesGlobal,
}

// fmtPure are the fmt functions that only build strings or values; the
// rest of fmt writes to a writer or standard output.
var fmtPure = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Sscanf": true, "Sscan": true, "Sscanln": true,
	"Appendf": true, "Append": true, "Appendln": true,
	"FormatString": true,
}

// seededRandFuncs are math/rand constructors and methods on explicitly
// constructed generators — no global state involved.
func isSeededRand(fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return true // methods on *rand.Rand / sources are instance state
	}
	return seededRandCtors[fn.Name()]
}

// stdlibSummary classifies one external function. The witness explains
// the classification so certification findings stay readable.
func stdlibSummary(fn *types.Func) *Summary {
	pkg := fn.Pkg()
	if pkg == nil {
		return &Summary{Effect: EffectPure} // builtins, error.Error
	}
	path := pkg.Path()
	var eff Effect
	var why string
	switch {
	case path == "fmt":
		if fmtPure[fn.Name()] {
			return &Summary{Effect: EffectPure}
		}
		eff, why = EffectIO, fmt.Sprintf("fmt.%s writes to a stream", fn.Name())
	case path == "math/rand" || path == "math/rand/v2":
		if isSeededRand(fn) {
			return &Summary{Effect: EffectPure}
		}
		eff = EffectReadsGlobal | EffectWritesGlobal
		why = fmt.Sprintf("%s.%s uses the process-global PRNG", lastSegment(path), fn.Name())
	default:
		if class, ok := stdlibClass[path]; ok {
			if class == EffectPure {
				return &Summary{Effect: EffectPure}
			}
			eff, why = class, fmt.Sprintf("%s.%s is classified %s", lastSegment(path), fn.Name(), class)
		} else {
			eff, why = effectWorst, fmt.Sprintf("%s.%s is external and unclassified: assumed worst-case", path, fn.Name())
		}
	}
	s := &Summary{Effect: eff, Witness: map[Effect][]Step{}}
	for _, en := range effectNames {
		if eff&en.bit != 0 {
			s.Witness[en.bit] = []Step{{Desc: why}}
		}
	}
	return s
}

// effectDirective is one parsed //fluidvet:effect or
// //fluidvet:parallelsafe declaration directive.
type effectDirective struct {
	kind   string // "effect" or "parallelsafe"
	effect Effect
	reason string
	pos    token.Pos
}

// parseEffectDirectives scans a declaration's doc comment. Misuses are
// reported through misuse under the "effect" pseudo-analyzer.
func parseEffectDirectives(fset *token.FileSet, doc *ast.CommentGroup, misuse func(Finding)) []effectDirective {
	if doc == nil {
		return nil
	}
	var out []effectDirective
	for _, c := range doc.List {
		switch {
		case c.Text == "//fluidvet:parallelsafe":
			out = append(out, effectDirective{kind: "parallelsafe", pos: c.Pos()})
		case strings.HasPrefix(c.Text, "//fluidvet:parallelsafe"):
			misuse(Finding{
				Analyzer: "effect",
				Pos:      fset.Position(c.Pos()),
				Message:  fmt.Sprintf("malformed directive %q (want exactly //fluidvet:parallelsafe)", c.Text),
			})
		case strings.HasPrefix(c.Text, "//fluidvet:effect"):
			rest := strings.TrimPrefix(c.Text, "//fluidvet:effect")
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				misuse(Finding{
					Analyzer: "effect",
					Pos:      fset.Position(c.Pos()),
					Message:  "//fluidvet:effect needs an effect list and a reason: //fluidvet:effect <effect>[,<effect>] <reason>",
				})
				continue
			}
			var eff Effect
			bad := false
			for _, name := range strings.Split(fields[0], ",") {
				bit, ok := parseEffect(name)
				if !ok {
					misuse(Finding{
						Analyzer: "effect",
						Pos:      fset.Position(c.Pos()),
						Message:  fmt.Sprintf("//fluidvet:effect names unknown effect %q (valid: pure, reads-global, writes-global, does-io, spawns-goroutine, calls-param)", name),
					})
					bad = true
					break
				}
				eff |= bit
			}
			if bad {
				continue
			}
			out = append(out, effectDirective{kind: "effect", effect: eff, reason: strings.Join(fields[1:], " "), pos: c.Pos()})
		}
	}
	return out
}

// isEffectDirective reports whether a //fluidvet: comment belongs to the
// effect layer (so the allow-table scanner leaves it alone).
func isEffectDirective(text string) bool {
	return strings.HasPrefix(text, "//fluidvet:effect") ||
		strings.HasPrefix(text, "//fluidvet:parallelsafe")
}

// syncType reports whether t (or the type it points to) is a sync
// primitive whose methods and state are synchronization rather than
// shared data: sync.Mutex, RWMutex, Once, WaitGroup, Map, Cond, Pool,
// and the sync/atomic value types.
func syncType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// packageLevelVar resolves expr's base object if it is a package-level
// variable (of this or any imported package), excluding sync primitives.
// For selector chains and index expressions (g.f[i].x) the *root* is
// what decides: mutating anything reachable from a global mutates
// global state.
func packageLevelVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok || v.Pkg() == nil {
				return nil
			}
			// A package-level var's parent scope is the package scope.
			if v.Parent() != v.Pkg().Scope() {
				return nil
			}
			if syncType(v.Type()) {
				return nil
			}
			return v
		case *ast.SelectorExpr:
			// Qualified identifier (pkg.Var) resolves through the Sel;
			// field access recurses into the base.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				if syncType(v.Type()) {
					return nil
				}
				return v
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// InferEffects runs the whole inference for one package: local effect
// collection, call-graph construction, SCC condensation, and fixed-point
// propagation. deps supplies the facts of imported packages (nil is
// fine: everything external falls back to the curated table or worst
// case). Directive misuses are reported through misuse.
func InferEffects(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps EffectFacts, misuse func(Finding)) *Effects {
	e := &Effects{
		pkg:         pkg,
		summaries:   map[*types.Func]*Summary{},
		deps:        deps,
		callerBound: map[types.Object]bool{},
		guardedOnce: map[*ast.FuncLit]bool{},
		lockHolders: map[*ast.FuncDecl]bool{},
	}
	if e.deps == nil {
		e.deps = EffectFacts{}
	}

	// Pass 1: collect declarations, directives, caller-bound values, and
	// synchronization context.
	type funcInfo struct {
		fn    *types.Func
		decl  *ast.FuncDecl
		local *Summary                  // local effects + witnesses
		calls map[*types.Func]token.Pos // same-package static callees
	}
	infos := map[*types.Func]*funcInfo{}
	var order []*types.Func // declaration order, for deterministic iteration
	asserted := map[*types.Func]*Summary{}

	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{fn: fn, decl: fd, local: &Summary{Witness: map[Effect][]Step{}}, calls: map[*types.Func]token.Pos{}}
			infos[fn] = fi
			order = append(order, fn)

			for _, d := range parseEffectDirectives(fset, fd.Doc, misuse) {
				if d.kind == "effect" {
					s := &Summary{Effect: d.effect, Asserted: true, Witness: map[Effect][]Step{}}
					for _, en := range effectNames {
						if d.effect&en.bit != 0 {
							s.Witness[en.bit] = []Step{{
								Desc: fmt.Sprintf("%s is asserted %s by //fluidvet:effect (%s)", funcDisplayName(fn), d.effect, d.reason),
								Pos:  fset.Position(d.pos).String(),
							}}
						}
					}
					asserted[fn] = s
				}
			}

			// Parameters of function type are caller-bound.
			sig := fn.Type().(*types.Signature)
			markCallerBoundParams(e, sig)
			if fd.Body != nil {
				collectCallerBoundLocals(e, info, fd.Body)
				markSyncContexts(e, info, fd)
			}
		}
	}

	// Pass 2: per-function local effects and call edges.
	for _, fn := range order {
		fi := infos[fn]
		if fi.decl.Body == nil {
			continue
		}
		w := &effectWalker{
			fset:   fset,
			info:   info,
			pkg:    pkg,
			eff:    e,
			fn:     fn,
			out:    fi.local,
			calls:  fi.calls,
			decl:   fi.decl,
			locked: e.lockHolders[fi.decl],
		}
		w.walkBody(fi.decl.Body)
	}

	// Pass 3: SCC condensation of the same-package call graph (Tarjan),
	// then fixed-point propagation in reverse topological order. Within
	// an SCC the members iterate to a fixed point (the lattice is finite
	// and the join monotone, so this terminates quickly).
	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0
	var strongconnect func(fn *types.Func)
	strongconnect = func(fn *types.Func) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		fi := infos[fn]
		// Deterministic edge order: sort callees by name.
		callees := make([]*types.Func, 0, len(fi.calls))
		for c := range fi.calls {
			if _, same := infos[c]; same {
				callees = append(callees, c)
			}
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i].FullName() < callees[j].FullName() })
		for _, c := range callees {
			if _, seen := index[c]; !seen {
				strongconnect(c)
				low[fn] = min(low[fn], low[c])
			} else if onStack[c] {
				low[fn] = min(low[fn], index[c])
			}
		}
		if low[fn] == index[fn] {
			var scc []*types.Func
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == fn {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fn := range order {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}

	// Tarjan emits SCCs in reverse topological order (callees before
	// callers), which is exactly the propagation order we need.
	for _, scc := range sccs {
		// Seed each member with its assertion or local summary.
		for _, fn := range scc {
			if s, ok := asserted[fn]; ok {
				e.summaries[fn] = s
				continue
			}
			fi := infos[fn]
			e.summaries[fn] = &Summary{
				Effect:  fi.local.Effect,
				Witness: cloneWitness(fi.local.Witness),
			}
		}
		// Fixed point over the SCC: join callee summaries until stable.
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				if _, isAsserted := asserted[fn]; isAsserted {
					continue
				}
				s := e.summaries[fn]
				fi := infos[fn]
				callees := make([]*types.Func, 0, len(fi.calls))
				for c := range fi.calls {
					callees = append(callees, c)
				}
				sort.Slice(callees, func(i, j int) bool { return callees[i].FullName() < callees[j].FullName() })
				for _, c := range callees {
					cs := e.Of(c)
					add := cs.Effect &^ s.Effect
					if add == 0 {
						continue
					}
					s.Effect |= add
					pos := fset.Position(fi.calls[c])
					for _, en := range effectNames {
						if add&en.bit == 0 {
							continue
						}
						step := Step{
							Desc: fmt.Sprintf("%s calls %s", funcDisplayName(fn), funcDisplayName(c)),
							Pos:  pos.String(),
						}
						path := append([]Step{step}, cs.Witness[en.bit]...)
						if len(path) > maxWitnessDepth {
							path = append(path[:maxWitnessDepth], Step{Desc: "..."})
						}
						s.Witness[en.bit] = path
					}
					changed = true
				}
			}
		}
	}
	return e
}

func cloneWitness(w map[Effect][]Step) map[Effect][]Step {
	out := make(map[Effect][]Step, len(w))
	for k, v := range w {
		out[k] = append([]Step(nil), v...)
	}
	return out
}

// markCallerBoundParams registers a signature's function-typed
// parameters as caller-bound values.
func markCallerBoundParams(e *Effects, sig *types.Signature) {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if _, ok := p.Type().Underlying().(*types.Signature); ok {
			e.callerBound[p] = true
		}
	}
}

// collectCallerBoundLocals marks locals assigned directly from a
// caller-bound value (v := param; v(...)), one level of copying deep —
// enough for the repo's idioms without building full dataflow.
func collectCallerBoundLocals(e *Effects, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			rhs, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if robj := info.Uses[rhs]; robj != nil && e.callerBound[robj] {
				if lobj := info.Defs[lhs]; lobj != nil {
					e.callerBound[lobj] = true
				} else if lobj := info.Uses[lhs]; lobj != nil {
					e.callerBound[lobj] = true
				}
			}
		}
		return true
	})
}

// markSyncContexts records (a) function literals passed to
// (*sync.Once).Do and (b) whether the declaration acquires a mutex lock
// anywhere — the two synchronization shapes under which a global write
// does not count as an unsynchronized race.
func markSyncContexts(e *Effects, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return true
		}
		recvName := recvTypeName(recv.Type())
		switch {
		case recvName == "Once" && fn.Name() == "Do" && len(call.Args) == 1:
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				e.guardedOnce[lit] = true
			}
		case (recvName == "Mutex" || recvName == "RWMutex") && (fn.Name() == "Lock" || fn.Name() == "RLock"):
			e.lockHolders[fd] = true
		}
		return true
	})
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// funcDisplayName renders a function for findings: package-qualified but
// with the module prefix shortened to the package's base name.
func funcDisplayName(fn *types.Func) string {
	full := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil {
		full = strings.ReplaceAll(full, pkg.Path(), lastSegment(pkg.Path()))
	}
	return full
}

// effectWalker accumulates the local effects of one function body.
type effectWalker struct {
	fset   *token.FileSet
	info   *types.Info
	pkg    *types.Package
	eff    *Effects
	fn     *types.Func
	out    *Summary
	calls  map[*types.Func]token.Pos
	decl   *ast.FuncDecl
	locked bool // the function acquires a mutex: its writes are guarded
}

// add records effect bits with a leaf witness for each newly-set bit.
func (w *effectWalker) add(bits Effect, pos token.Pos, desc string) {
	newBits := bits &^ w.out.Effect
	if newBits == 0 {
		return
	}
	w.out.Effect |= newBits
	step := []Step{{
		Desc: fmt.Sprintf("%s %s", funcDisplayName(w.fn), desc),
		Pos:  w.fset.Position(pos).String(),
	}}
	for _, en := range effectNames {
		if newBits&en.bit != 0 {
			w.out.Witness[en.bit] = step
		}
	}
}

// walkBody traverses the body including nested function literals
// (effects of a closure are attributed to the function that creates it:
// conservative, and sound for certification).
func (w *effectWalker) walkBody(body *ast.BlockStmt) {
	w.walkNode(body, false)
}

func (w *effectWalker) walkNode(root ast.Node, guarded bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Recurse manually so the guarded flag tracks Once.Do bodies.
			w.walkNode(n.Body, guarded || w.eff.guardedOnce[n])
			return false
		case *ast.GoStmt:
			w.add(EffectSpawns, n.Pos(), "starts a goroutine")
			return true
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				w.checkWrite(lhs, guarded)
			}
			return true
		case *ast.IncDecStmt:
			w.checkWrite(n.X, guarded)
			return true
		case *ast.UnaryExpr:
			// Taking the address of a package-level var leaks a mutable
			// reference; treat as a write (conservative).
			if n.Op == token.AND {
				w.checkWrite(n.X, guarded)
			}
			return true
		case *ast.Ident:
			if v, ok := w.info.Uses[n].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && !syncType(v.Type()) {
				w.add(EffectReadsGlobal, n.Pos(), fmt.Sprintf("reads package-level var %s.%s", lastSegment(v.Pkg().Path()), v.Name()))
			}
			return true
		case *ast.CallExpr:
			return w.checkCall(n, guarded)
		}
		return true
	})
}

// checkWrite classifies an assignment target.
func (w *effectWalker) checkWrite(lhs ast.Expr, guarded bool) {
	v := packageLevelVar(w.info, lhs)
	if v == nil {
		return
	}
	if guarded || w.locked {
		// Synchronized writes still read/publish shared state.
		w.add(EffectReadsGlobal, lhs.Pos(), fmt.Sprintf("writes package-level var %s.%s under synchronization", lastSegment(v.Pkg().Path()), v.Name()))
		return
	}
	w.add(EffectWritesGlobal, lhs.Pos(), fmt.Sprintf("writes package-level var %s.%s", lastSegment(v.Pkg().Path()), v.Name()))
}

// checkCall classifies one call site. The return value tells the walk
// whether to descend into the call's children (false only for
// sync/atomic calls, whose &global operands are synchronized accesses,
// not unguarded writes).
func (w *effectWalker) checkCall(call *ast.CallExpr, guarded bool) bool {
	fun := ast.Unparen(call.Fun)

	// Type conversions (T(x), pkg.T(x), (*T)(x)) are pure.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}

	// Builtins: delete(g, k) on a global is a write; the rest are pure.
	// Conversions are pure.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "delete":
				if len(call.Args) > 0 {
					w.checkWrite(call.Args[0], guarded)
				}
			case "print", "println":
				w.add(EffectIO, call.Pos(), fmt.Sprintf("calls builtin %s", b.Name()))
			}
			return true
		}
		if _, isType := w.info.Uses[id].(*types.TypeName); isType {
			return true
		}
	}

	// Statically resolved function or method?
	var callee *types.Func
	switch fun := fun.(type) {
	case *ast.Ident:
		callee, _ = w.info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface dispatch is dynamic; concrete methods are static.
				if isInterfaceRecv(sel) {
					w.dynamicCall(call, fn)
					return true
				}
				callee = fn
			}
		} else if fn, ok := w.info.Uses[fun.Sel].(*types.Func); ok {
			callee = fn // qualified identifier pkg.F
		}
	case *ast.FuncLit:
		return true // immediate invocation: body effects counted by the walk
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation f[T](...) — resolve the underlying ident.
		var base ast.Expr
		if ix, ok := fun.(*ast.IndexExpr); ok {
			base = ix.X
		} else {
			base = fun.(*ast.IndexListExpr).X
		}
		switch b := ast.Unparen(base).(type) {
		case *ast.Ident:
			callee, _ = w.info.Uses[b].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = w.info.Uses[b.Sel].(*types.Func)
		}
	}

	if callee == nil {
		// A call through a function value. Caller-bound values get the
		// calls-param effect; anything else is worst-case.
		if w.isCallerBound(fun) {
			w.add(EffectCallsParam, call.Pos(), "calls a caller-supplied function value")
		} else {
			w.add(effectWorst, call.Pos(), "calls through an unresolvable function value: assumed worst-case")
		}
		return true
	}

	// sync/atomic operands are synchronized accesses of their targets:
	// record a read and keep the walk out of the &global arguments.
	if p := callee.Pkg(); p != nil && p.Path() == "sync/atomic" {
		for _, arg := range call.Args {
			if v := packageLevelVar(w.info, arg); v != nil {
				w.add(EffectReadsGlobal, arg.Pos(), fmt.Sprintf("accesses package-level var %s.%s atomically", lastSegment(v.Pkg().Path()), v.Name()))
			}
		}
		return false
	}

	if callee.Pkg() == w.pkg {
		// Same package: record a call-graph edge for the fixed point.
		if _, ok := w.calls[callee]; !ok {
			w.calls[callee] = call.Pos()
		}
		return true
	}

	// Cross-package: join facts (module deps) or the curated table.
	s := w.eff.Of(callee)
	eff := s.Effect
	if guarded || w.locked {
		// Inside a synchronized region a callee's global writes are
		// guarded at this site (the lazily-initialized-map idiom).
		if eff&EffectWritesGlobal != 0 {
			eff = (eff &^ EffectWritesGlobal) | EffectReadsGlobal
		}
	}
	add := eff &^ w.out.Effect
	if add == 0 {
		return true
	}
	w.out.Effect |= add
	pos := w.fset.Position(call.Pos())
	for _, en := range effectNames {
		if add&en.bit == 0 {
			continue
		}
		step := Step{
			Desc: fmt.Sprintf("%s calls %s", funcDisplayName(w.fn), funcDisplayName(callee)),
			Pos:  pos.String(),
		}
		path := append([]Step{step}, s.Witness[en.bit]...)
		if len(path) > maxWitnessDepth {
			path = append(path[:maxWitnessDepth], Step{Desc: "..."})
		}
		w.out.Witness[en.bit] = path
	}
	return true
}

// isCallerBound reports whether the callee expression denotes a
// caller-bound function value: a parameter, a local copied from one, or
// a field of function type reached through a parameter or local struct
// (opts.Callback, v.opts.Callback).
func (w *effectWalker) isCallerBound(fun ast.Expr) bool {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		obj := w.info.Uses[fun]
		if obj == nil {
			return false
		}
		if w.eff.callerBound[obj] {
			return true
		}
		// Any non-package-level variable of function type: a local or
		// parameter whose closure origin was attributed at creation.
		if v, ok := obj.(*types.Var); ok {
			return v.Pkg() == nil || v.Parent() != v.Pkg().Scope()
		}
		return false
	case *ast.SelectorExpr:
		// A func-typed field is caller-bound iff its base chain roots in
		// a non-global variable (struct carried by value/pointer from
		// the caller, or built locally from caller data).
		return packageLevelVar(w.info, fun) == nil && rootIsVar(w.info, fun.X)
	}
	return false
}

// rootIsVar reports whether the expression's base chain bottoms out in a
// plain variable (as opposed to a call result or literal, which could
// hide arbitrary origin — those stay worst-case).
func rootIsVar(info *types.Info, expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			_, ok := info.Uses[e].(*types.Var)
			return ok
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// isInterfaceRecv reports whether a method selection dispatches through
// an interface. error.Error and fmt.Stringer.String are conventionally
// pure and carved out by the caller via stdlibSummary (their *types.Func
// has no body anywhere).
func isInterfaceRecv(sel *types.Selection) bool {
	if sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr {
		return false
	}
	return types.IsInterface(sel.Recv())
}

// dynamicCall handles an interface-method call site.
func (w *effectWalker) dynamicCall(call *ast.CallExpr, fn *types.Func) {
	// Conventionally-pure interface methods: error.Error, Stringer.
	if fn.Name() == "Error" || fn.Name() == "String" {
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); ok && b.Kind() == types.String {
				return
			}
		}
	}
	w.add(effectWorst, call.Pos(), fmt.Sprintf("calls interface method %s dynamically: assumed worst-case (annotate the dispatch site with //fluidvet:effect if audited)", fn.Name()))
}
