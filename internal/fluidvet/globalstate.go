package fluidvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobalState enforces that package-level mutable state in the solver
// core is effectively-const or sync-guarded. The certified entry points
// (parallelsafe) run concurrently; a package map lazily populated on
// first solve, or a counter bumped per call, is a data race the happy
// path never trips. In the packages below, a package-level variable may
// be assigned in its declaration and in init functions, and mutated
// under synchronization (inside a (*sync.Once).Do body, or in a
// function that acquires a sync.Mutex/RWMutex); every other write is a
// finding. Variables of sync primitive types are exempt — they are the
// synchronization.
var GlobalState = &Analyzer{
	Name: "globalstate",
	Doc:  "package-level state in the solver core must be effectively-const or sync-guarded",
	Run:  runGlobalState,
}

// solverCore is the set of package directory names whose package-level
// state must be effectively-const: the packages reachable from the
// //fluidvet:parallelsafe entry points.
var solverCore = map[string]bool{
	"core":      true,
	"lp":        true,
	"ilp":       true,
	"dag":       true,
	"analysis":  true,
	"aisverify": true,
}

func runGlobalState(pass *Pass) error {
	if !solverCore[lastSegment(pass.Pkg.Path())] {
		return nil
	}
	eff := pass.Effects

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue // initialization before main is single-threaded
			}
			locked := eff != nil && eff.lockHolders[fd]
			checkGlobalWrites(pass, fd.Body, locked)
		}
	}
	return nil
}

// checkGlobalWrites walks one function body reporting unguarded writes
// to package-level variables. Function literals inherit the guard when
// they are (*sync.Once).Do bodies.
func checkGlobalWrites(pass *Pass, body ast.Node, guarded bool) {
	report := func(pos token.Pos, v *types.Var, how string) {
		if guarded {
			return
		}
		pass.Reportf(pos,
			"package-level %s.%s is %s outside init and without synchronization: make it effectively-const, or guard it with a sync.Once/sync.Mutex so the certified solver entry points stay data-race-free",
			lastSegment(v.Pkg().Path()), v.Name(), how)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g := guarded
			if pass.Effects != nil && pass.Effects.guardedOnce[n] {
				g = true
			}
			checkGlobalWrites(pass, n.Body, g)
			return false
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if v := packageLevelVar(pass.Info, lhs); v != nil {
					how := "reassigned"
					if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
						how = "mutated (element write)"
					} else if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
						how = "mutated (field write)"
					}
					report(lhs.Pos(), v, how)
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelVar(pass.Info, n.X); v != nil {
				report(n.X.Pos(), v, "incremented/decremented")
			}
		case *ast.CallExpr:
			// delete(globalMap, k) mutates; sync/atomic accesses are
			// synchronized by definition (skip their &global operands).
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) > 0 {
					if v := packageLevelVar(pass.Info, n.Args[0]); v != nil {
						report(n.Args[0].Pos(), v, "mutated (delete)")
					}
					return true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					return false
				}
			}
		case *ast.UnaryExpr:
			// &globalVar escaping into arbitrary code is a mutable
			// alias; the effect layer treats it as a write, and so does
			// this analyzer.
			if n.Op == token.AND {
				if v := packageLevelVar(pass.Info, n.X); v != nil {
					report(n.X.Pos(), v, "aliased (&) into mutable context")
				}
			}
		}
		return true
	})
}
