package fluidvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism flags constructs that break bit-identical replay in
// replay-critical packages: wall-clock reads, draws from the unseeded
// math/rand globals, and map-range loops whose iteration order can
// leak into results. Crash-resume (internal/journal, internal/recover)
// and the seeded-determinism CI gates rely on a run being a pure
// function of (listing, seed, profile); one of these constructs in
// aquacore/journal/recover/faults/codegen/core/dag makes resume output
// diverge from the original run in a way no test on the happy path
// catches.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, unseeded math/rand, and order-sensitive map iteration in replay-critical packages",
	Run:  runDeterminism,
}

// wallClockFuncs are time-package functions whose result depends on the
// wall clock. Constructors like NewTimer are excluded: creating a timer
// is only a hazard when its reading reaches replayed state, which the
// map/clock rules catch at the use site.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// seededRandCtors are the math/rand and math/rand/v2 functions that
// construct explicitly-seeded generators; everything else exported by
// those packages draws from (or reseeds) process-global state.
var seededRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runDeterminism(pass *Pass) error {
	if !isReplayCritical(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		// Clock and PRNG rules apply everywhere in the file, including
		// package-level initializers.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to time.%s reads the wall clock in a replay-critical package: replay from (listing, seed, profile) must be bit-identical, so derive timing from the plan or the seeded fault PRNG", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(call.Pos(),
						"call to %s.%s uses the process-global PRNG, which is not derived from the run seed: use rand.New(rand.NewSource(seed)) so replay can reproduce every draw", lastSegment(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})

		// The map-order rule reasons about whole function bodies (it
		// needs to see whether collected keys are later sorted), so it
		// walks declarations.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorts := bodyCallsSort(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if detail := mapRangeOrderHazard(pass, rng, sorts); detail != "" {
					pass.Reportf(rng.For,
						"map iteration order is nondeterministic and this loop is order-sensitive (%s): journal records, snapshots, listings, and event streams must not depend on it; iterate sorted keys instead", detail)
				}
				return true
			})
		}
	}
	return nil
}

// calleeFunc resolves the function a call invokes, or nil for builtins,
// conversions, and calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// bodyCallsSort reports whether the function body calls into package
// sort or slices anywhere — the signal that a key slice collected from
// a map range is ordered before use.
func bodyCallsSort(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return true
	})
	return found
}

// mapRangeOrderHazard inspects the body of a range-over-map and returns
// a non-empty description if its effect can depend on iteration order.
// The loop is order-free when every statement is one of:
//
//   - a declaration, := binding, increment/decrement, continue;
//   - an op-assignment (+=, |=, ...) — commutative across iterations —
//     unless the target is a float or string accumulator that is not
//     indexed by the range key (float addition is not associative, so
//     even a sum changes bits with iteration order);
//   - a plain assignment whose every target is an index into a map
//     (per-key writes touch each key once, in any order);
//   - x = append(x, ...) when the enclosing function sorts afterwards
//     (the collect-keys-then-sort idiom);
//   - delete(...);
//   - an if statement whose branches satisfy the same rules, where
//     plain assignment is additionally permitted (the min/max selection
//     idiom is conditional assignment).
func mapRangeOrderHazard(pass *Pass, rng *ast.RangeStmt, fnSorts bool) string {
	var keyObj types.Object
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = pass.Info.Defs[id]
		if keyObj == nil {
			keyObj = pass.Info.Uses[id]
		}
	}
	var check func(s ast.Stmt, inBranch bool) string
	checkList := func(list []ast.Stmt, inBranch bool) string {
		for _, s := range list {
			if d := check(s, inBranch); d != "" {
				return d
			}
		}
		return ""
	}
	check = func(s ast.Stmt, inBranch bool) string {
		switch s := s.(type) {
		case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
			return ""
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE {
				return ""
			}
			return "a break/goto inside the loop makes the visited set order-dependent"
		case *ast.BlockStmt:
			return checkList(s.List, inBranch)
		case *ast.IfStmt:
			if s.Init != nil {
				if d := check(s.Init, true); d != "" {
					return d
				}
			}
			if d := checkList(s.Body.List, true); d != "" {
				return d
			}
			if s.Else != nil {
				return check(s.Else, true)
			}
			return ""
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						return ""
					}
				}
			}
			return "calls with effects inside the loop body"
		case *ast.AssignStmt:
			switch s.Tok {
			case token.DEFINE:
				return ""
			case token.ASSIGN:
				if allMapIndexTargets(pass, s.Lhs) {
					return ""
				}
				if isSelfAppend(s) {
					if fnSorts {
						return ""
					}
					return "keys are collected but never sorted in this function"
				}
				if inBranch {
					return ""
				}
				return "a plain assignment keeps only the last-iterated entry"
			default:
				for _, lhs := range s.Lhs {
					t := pass.TypeOf(lhs)
					if t == nil {
						continue
					}
					b, ok := t.Underlying().(*types.Basic)
					if !ok {
						continue
					}
					info := b.Info()
					if info&(types.IsFloat|types.IsComplex) != 0 && !indexedByKey(pass, lhs, keyObj) {
						return "floating-point accumulation is not associative, so the sum's bits depend on iteration order"
					}
					if info&types.IsString != 0 && !indexedByKey(pass, lhs, keyObj) {
						return "string concatenation depends on iteration order"
					}
				}
				return ""
			}
		default:
			return "the loop body is not a recognized order-free form"
		}
	}
	return checkList(rng.Body.List, false)
}

// allMapIndexTargets reports whether every assignment target is an
// index expression into a map.
func allMapIndexTargets(pass *Pass, lhs []ast.Expr) bool {
	for _, e := range lhs {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := pass.TypeOf(ix.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
	}
	return true
}

// isSelfAppend matches `x = append(x, ...)`.
func isSelfAppend(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && arg0.Name == lhs.Name
}

// indexedByKey reports whether lhs is an index expression whose index
// mentions the range key — the per-key accumulation pattern m[k] += v,
// which touches each key exactly once and so is order-free.
func indexedByKey(pass *Pass, lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	uses := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
			uses = true
		}
		return true
	})
	return uses
}
