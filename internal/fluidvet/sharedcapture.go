package fluidvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedCapture flags goroutine bodies that capture addressable
// variables also touched outside the goroutine without synchronization
// — the race shape `go vet`'s own loopclosure check no longer covers
// now that loop variables are per-iteration. Two shapes are findings:
//
//   - a captured variable written inside the goroutine body and used
//     (read or written) outside it in the enclosing function: the
//     write races with the outer use unless synchronized;
//   - a captured variable written outside the goroutine after the
//     spawn point (or anywhere in the surrounding loop when the spawn
//     sits in one) and used inside it.
//
// Synchronization that silences the finding: the captured variable has
// a channel/sync type, every inside write goes through sync/atomic, a
// captured map/slice is only written through per-key/per-index element
// writes into a slice (the fan-out-into-distinct-elements idiom —
// element writes into a captured *map* still race and are flagged), or
// both sides lock. Function values passed to spawning APIs (callees
// whose inferred effect includes spawns-goroutine) are analyzed like
// `go` statement bodies.
var SharedCapture = &Analyzer{
	Name: "sharedcapture",
	Doc:  "goroutine closures must not capture variables written elsewhere without synchronization",
	Run:  runSharedCapture,
}

func runSharedCapture(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Collect every goroutine-body literal in this function:
			// direct `go func(){...}()` and literals handed to spawning
			// callees.
			type spawn struct {
				lit    *ast.FuncLit
				pos    token.Pos
				inLoop bool
			}
			var spawns []spawn
			var loopStack []ast.Node
			var visit func(n ast.Node) bool
			visit = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loopStack = append(loopStack, n)
					ast.Inspect(loopBody(n), visit)
					loopStack = loopStack[:len(loopStack)-1]
					return false
				case *ast.GoStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						spawns = append(spawns, spawn{lit: lit, pos: n.Pos(), inLoop: len(loopStack) > 0})
					}
					return true
				case *ast.CallExpr:
					if pass.Effects == nil {
						return true
					}
					if fn := calleeFunc(pass, n); fn != nil {
						// Only positively-inferred spawners count as spawning
						// APIs. A fully worst-case-widened callee (unknown or
						// dynamic) carries the spawns bit by assumption, not
						// evidence — treating it as a spawner would turn every
						// closure handed to e.g. ast.Inspect or sort.Slice
						// into a goroutine body. parallelsafe still surfaces
						// the widened callee itself at certified call sites.
						eff := pass.Effects.Of(fn).Effect
						if eff&EffectSpawns != 0 && eff&effectWorst != effectWorst {
							for _, arg := range n.Args {
								if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
									spawns = append(spawns, spawn{lit: lit, pos: n.Pos(), inLoop: len(loopStack) > 0})
								}
							}
						}
					}
					return true
				}
				return true
			}
			ast.Inspect(fd.Body, visit)

			for _, sp := range spawns {
				checkCaptures(pass, fd, sp.lit, sp.pos, sp.inLoop)
			}
		}
	}
	return nil
}

func loopBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return n
}

// accessKind summarizes how one variable is touched at one site.
type accessKind struct {
	write   bool
	atomic  bool
	element bool // write through an index/field, not to the var itself
	mapElem bool // element write into a map
}

// checkCaptures analyzes one goroutine-body literal.
func checkCaptures(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, spawnPos token.Pos, inLoop bool) {
	// A captured object: declared in the enclosing function (not inside
	// the literal, not package-level), used inside the literal.
	insideWrites := map[*types.Var][]accessKind{}
	insideReads := map[*types.Var]bool{}
	capturedSet := map[*types.Var]bool{}

	isLocalVar := func(obj types.Object) *types.Var {
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return nil
		}
		if v.Parent() == v.Pkg().Scope() {
			return nil // package-level: globalstate/effects territory
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil // declared inside the literal (incl. its params)
		}
		if !posWithin(v.Pos(), fd) {
			return nil // not from this function (e.g. receiver of elsewhere)
		}
		return v
	}

	collectAccesses(pass, lit.Body, func(v *types.Var, a accessKind) {
		if lv := isLocalVar(v); lv != nil {
			capturedSet[lv] = true
			if a.write {
				insideWrites[lv] = append(insideWrites[lv], a)
			} else {
				insideReads[lv] = true
			}
		}
	})

	// Outside accesses: the rest of the function body, excluding the
	// literal itself. Writes in a for-loop post statement to the loop's
	// own init-declared variables are exempt: loop variables are
	// per-iteration (Go ≥ 1.22), so the header increment operates on each
	// ending iteration's own copy and cannot race with a captured one.
	perIter := perIterationPosts(pass, fd.Body)
	outsideWrites := map[*types.Var][]token.Pos{}
	outsideReads := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() >= lit.Pos() && n.End() <= lit.End() {
			return false // inside the literal
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if v := baseLocalVar(pass, lhs); v != nil && !perIter[lhs.Pos()] {
					outsideWrites[v] = append(outsideWrites[v], lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if v := baseLocalVar(pass, n.X); v != nil && !perIter[n.X.Pos()] {
				outsideWrites[v] = append(outsideWrites[v], n.X.Pos())
			}
		case *ast.Ident:
			if v, ok := pass.Info.Uses[n].(*types.Var); ok {
				outsideReads[v] = true
			}
		}
		return true
	})

	synced := func(v *types.Var) bool {
		if syncType(v.Type()) {
			return true
		}
		if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
			return true
		}
		// Both sides lock: crude but auditable — the enclosing function
		// acquires a mutex somewhere.
		if pass.Effects != nil && pass.Effects.lockHolders[fd] {
			return true
		}
		return false
	}

	// Deterministic report order: sort captured variables by position.
	vars := make([]*types.Var, 0, len(capturedSet))
	for v := range capturedSet {
		vars = append(vars, v)
	}
	sortVarsByPos(vars)

	for _, v := range vars {
		if synced(v) {
			continue
		}
		var hasDirectWrite, hasMapElemWrite bool
		allAtomic := true
		anyWrite := false
		for _, a := range insideWrites[v] {
			anyWrite = true
			if !a.atomic {
				allAtomic = false
			}
			if !a.element {
				hasDirectWrite = true
			}
			if a.mapElem {
				hasMapElemWrite = true
			}
		}
		switch {
		case anyWrite && allAtomic:
			continue
		case hasDirectWrite && (outsideReads[v] || len(outsideWrites[v]) > 0):
			pass.Reportf(spawnPos,
				"goroutine captures %q and writes it while the enclosing function also uses it: unsynchronized shared capture races; communicate the result over a channel, use sync/atomic, or guard both sides with a mutex", v.Name())
		case hasMapElemWrite:
			pass.Reportf(spawnPos,
				"goroutine writes into captured map %q: concurrent map writes race (and fault); give each goroutine its own slice element or guard the map with a mutex", v.Name())
		case insideReads[v] && writesAfter(outsideWrites[v], spawnPos, inLoop):
			pass.Reportf(spawnPos,
				"goroutine reads captured %q, which the enclosing function writes after the spawn: unsynchronized shared capture races; pass the value as an argument or synchronize the write", v.Name())
		}
	}
}

func sortVarsByPos(vars []*types.Var) {
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j].Pos() < vars[j-1].Pos(); j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
}

// perIterationPosts collects the write positions in for-loop post
// statements that target the loop's own init-declared variables. Per
// Go's per-iteration loop-variable semantics these writes do not race
// with a goroutine's captured incarnation, so the outside-write scan
// skips them. Writes in a post statement to *outer* variables
// (`for ; ; total++`) are still real shared writes and stay in.
func perIterationPosts(pass *Pass, body ast.Node) map[token.Pos]bool {
	skip := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		f, ok := n.(*ast.ForStmt)
		if !ok || f.Post == nil || f.Init == nil {
			return true
		}
		mark := func(x ast.Expr) {
			if v := baseLocalVar(pass, x); v != nil && v.Pos() >= f.Init.Pos() && v.Pos() <= f.Init.End() {
				skip[x.Pos()] = true
			}
		}
		switch p := f.Post.(type) {
		case *ast.IncDecStmt:
			mark(p.X)
		case *ast.AssignStmt:
			if p.Tok != token.DEFINE {
				for _, lhs := range p.Lhs {
					mark(lhs)
				}
			}
		}
		return true
	})
	return skip
}

// writesAfter reports whether any outside write lands after the spawn
// point — or anywhere, when the spawn is inside a loop (a write before
// the go statement in iteration i races with iteration i-1's goroutine).
func writesAfter(writes []token.Pos, spawnPos token.Pos, inLoop bool) bool {
	for _, w := range writes {
		if inLoop || w > spawnPos {
			return true
		}
	}
	return false
}

// collectAccesses walks a goroutine body and reports each access to a
// variable: writes (direct, element, atomic) and reads.
func collectAccesses(pass *Pass, body ast.Node, report func(*types.Var, accessKind)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				reportWrite(pass, lhs, false, report)
			}
		case *ast.IncDecStmt:
			reportWrite(pass, n.X, false, report)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					for _, arg := range n.Args {
						reportWrite(pass, stripAddr(arg), true, report)
					}
					return false
				}
			}
		case *ast.Ident:
			if v, ok := pass.Info.Uses[n].(*types.Var); ok {
				report(v, accessKind{})
			}
		}
		return true
	})
}

func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// reportWrite classifies one write target and reports the base variable.
func reportWrite(pass *Pass, lhs ast.Expr, atomic bool, report func(*types.Var, accessKind)) {
	a := accessKind{write: true, atomic: atomic}
	expr := ast.Unparen(lhs)
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if v, ok := pass.Info.Uses[e].(*types.Var); ok {
				report(v, a)
			}
			return
		case *ast.IndexExpr:
			a.element = true
			if t := pass.TypeOf(e.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					a.mapElem = true
				}
			}
			expr = ast.Unparen(e.X)
		case *ast.SelectorExpr:
			a.element = true
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			a.element = true
			expr = ast.Unparen(e.X)
		default:
			return
		}
	}
}

// baseLocalVar resolves the base variable of a write target when it is
// function-local (not package-level).
func baseLocalVar(pass *Pass, lhs ast.Expr) *types.Var {
	expr := ast.Unparen(lhs)
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			v, ok := pass.Info.Uses[e].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
				return nil
			}
			return v
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
		case *ast.SelectorExpr:
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
		default:
			return nil
		}
	}
}

// posWithin reports whether pos falls inside the function declaration.
func posWithin(pos token.Pos, fd *ast.FuncDecl) bool {
	return pos >= fd.Pos() && pos <= fd.End()
}
