package fluidvet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ParallelSafe certifies annotated entry points data-race-free by
// construction. A function carrying the declaration directive
//
//	//fluidvet:parallelsafe
//
// must be transitively free of unsynchronized package-level writes,
// IO, and goroutine spawns, as established by the interprocedural
// effect inference (see effects.go). Reads of package-level state are
// permitted — shared immutable tables are how the solver core is built
// — and calls through caller-supplied function values are permitted
// with the contract that the certificate extends only to callers that
// pass race-free callbacks (the concurrency smoke test does exactly
// that). Violations print the full offending call path so the finding
// reads as a proof trace: entry → ... → leaf cause.
var ParallelSafe = &Analyzer{
	Name: "parallelsafe",
	Doc:  "certify //fluidvet:parallelsafe entry points transitively free of global writes, IO, and goroutine spawns",
	Run:  runParallelSafe,
}

// forbiddenInParallel are the effect bits a certified entry point must
// not have.
const forbiddenInParallel = EffectWritesGlobal | EffectIO | EffectSpawns

func runParallelSafe(pass *Pass) error {
	if pass.Effects == nil {
		return fmt.Errorf("parallelsafe requires effect inference")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			hasDirective := false
			for _, c := range fd.Doc.List {
				if c.Text == "//fluidvet:parallelsafe" {
					hasDirective = true
				}
			}
			if !hasDirective {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := pass.Effects.Of(fn)
			bad := s.Effect & forbiddenInParallel
			if bad == 0 {
				continue
			}
			for _, en := range effectNames {
				if bad&en.bit == 0 {
					continue
				}
				pass.Reportf(fd.Name.Pos(),
					"%s is declared //fluidvet:parallelsafe but is %s: %s",
					funcDisplayName(fn), en.name, renderPath(s.Witness[en.bit]))
			}
		}
	}
	return nil
}

// renderPath flattens a witness call path into a single-line proof
// trace: "a (pos) calls b -> b (pos) calls c -> c (pos) writes x".
func renderPath(path []Step) string {
	if len(path) == 0 {
		return "(no witness recorded)"
	}
	parts := make([]string, len(path))
	for i, s := range path {
		if s.Pos != "" {
			parts[i] = fmt.Sprintf("%s (%s)", s.Desc, s.Pos)
		} else {
			parts[i] = s.Desc
		}
	}
	return strings.Join(parts, " -> ")
}
