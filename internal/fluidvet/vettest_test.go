package fluidvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture harness: each package under testdata/src/<name> is parsed,
// type-checked against real export data (stdlib and module packages,
// compiled on demand via `go list -export`), and run through Check with
// a chosen analyzer set. Expected findings are declared inline with
//
//	expr // want `regexp`
//
// comments: every finding must match a want on its line, and every want
// must be matched, so the fixtures pin both trigger and suppress
// behavior of each analyzer.

// wantRe extracts the body of a want comment; backquoted segments inside
// are the expectation regexps, matched against "analyzer: message".
var (
	wantRe   = regexp.MustCompile(`// want (.*)$`)
	wantItem = regexp.MustCompile("`([^`]*)`")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// fixture is a loaded, type-checked fixture package.
type fixture struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loadFixture parses and type-checks testdata/src/<name> as package path
// <name> (so replay-critical scoping keyed on the path's last segment
// behaves exactly as for the real packages).
func loadFixture(t *testing.T, name string) *fixture {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", name)
	}
	pkg, info, err := typeCheck(fset, files, name, "", fixtureImporter(t, fset, imports))
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", name, err)
	}
	return &fixture{fset: fset, files: files, pkg: pkg, info: info}
}

// check runs Check over the fixture with the given analyzers.
func (fx *fixture) check(t *testing.T, analyzers ...*Analyzer) []Finding {
	t.Helper()
	findings, _, err := Check(fx.fset, fx.files, fx.pkg, fx.info, analyzers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// effects runs the inference alone over the fixture (no analyzers).
func (fx *fixture) effects(t *testing.T) *Effects {
	t.Helper()
	_, eff, err := Check(fx.fset, fx.files, fx.pkg, fx.info, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eff
}

// runFixture loads the fixture, runs the analyzers, and matches findings
// against the fixture's want comments.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	fx := loadFixture(t, name)
	findings := fx.check(t, analyzers...)

	// A fixture may carry wants for several analyzers (journal serves both
	// syncerr and enumswitch); only the wants addressed to the analyzers
	// under test are in play for this run. Every want regexp leads with
	// its analyzer's name, so the prefix routes it.
	inPlay := map[string]bool{"allow": true, "effect": true}
	for _, a := range analyzers {
		inPlay[a.Name] = true
	}
	wantOwner := regexp.MustCompile(`^([a-z]+):`)

	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range fx.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fx.fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				items := wantItem.FindAllStringSubmatch(m[1], -1)
				if len(items) == 0 {
					t.Fatalf("%s: want comment carries no backquoted regexp: %s", key, c.Text)
				}
				for _, it := range items {
					owner := wantOwner.FindStringSubmatch(it[1])
					if owner == nil {
						t.Fatalf("%s: want regexp must lead with `analyzer:`: %s", key, it[1])
					}
					if !inPlay[owner[1]] {
						continue
					}
					wants[key] = append(wants[key], &expectation{re: regexp.MustCompile(it[1])})
				}
			}
		}
	}

	for _, f := range findings {
		full := f.Analyzer + ": " + f.Message
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		ok := false
		for _, w := range wants[key] {
			if w.re.MatchString(full) {
				w.matched, ok = true, true
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s: %s", key, full)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched want `%s`", key, w.re)
			}
		}
	}
}

// exportCache memoizes `go list -export` results across fixtures; the
// test binary runs single-package but subtests share the process.
var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{} // import path -> export data file
)

// fixtureImporter resolves fixture imports from compiler export data,
// asking the go command to (re)build it into the build cache. This works
// offline: stdlib and module sources are local.
func fixtureImporter(t *testing.T, fset *token.FileSet, imports map[string]bool) types.Importer {
	t.Helper()
	var need []string
	exportMu.Lock()
	for p := range imports {
		if _, ok := exportFiles[p]; !ok && p != "unsafe" {
			need = append(need, p)
		}
	}
	exportMu.Unlock()
	if len(need) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, need...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("go list -export %v: %v\n%s", need, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		exportMu.Lock()
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				exportMu.Unlock()
				t.Fatalf("decoding go list output: %v", err)
			}
			if p.Export != "" {
				exportFiles[p.ImportPath] = p.Export
			}
		}
		exportMu.Unlock()
	}
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		file, ok := exportFiles[path]
		exportMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "aquacore", Determinism)
}

// TestDeterminismCertifyFixture pins the certify package's scoping:
// certificate checking and hashing are replay-critical (hashes are
// journaled and re-verified on resume), so clock reads, global PRNG
// draws, and order-dependent float folds are flagged there.
func TestDeterminismCertifyFixture(t *testing.T) {
	runFixture(t, "certify", Determinism)
}

// TestDeterminismOutOfScope: the same constructs outside the
// replay-critical set produce nothing.
func TestDeterminismOutOfScope(t *testing.T) {
	runFixture(t, "clerk", Determinism)
}

// TestDeterminismBudgetFixture pins the budget package's scoping: the
// work-budget layer is replay-critical, its deadline clock reads are
// the audited exception (//fluidvet:allow determinism with a reason),
// and a naked clock read there is flagged.
func TestDeterminismBudgetFixture(t *testing.T) {
	runFixture(t, "budget", Determinism)
}

func TestDiagCodeFixture(t *testing.T) {
	runFixture(t, "diagcode", DiagCode)
}

func TestErrWrapFixture(t *testing.T) {
	runFixture(t, "recover", ErrWrap)
}

func TestSyncErrFixture(t *testing.T) {
	runFixture(t, "journal", SyncErr)
}

// TestSyncErrVFSFixture pins the vfs extension: Sync/Close on vfs.File
// (interface or implementation) and SyncDir on vfs.FS are check-required
// in replay-critical packages, with the same allow escape hatch.
func TestSyncErrVFSFixture(t *testing.T) {
	runFixture(t, "vfs", SyncErr)
}

func TestEnumSwitchJournalKindFixture(t *testing.T) {
	runFixture(t, "journal", EnumSwitch)
}

func TestEnumSwitchFixture(t *testing.T) {
	runFixture(t, "enumswitch", EnumSwitch)
}

// TestAllowFixture pins the escape-hatch semantics programmatically (the
// misuse findings land on directive-comment lines, which cannot also
// carry want comments): a well-formed allow with a reason suppresses the
// finding on its line or the line below; a malformed, unknown-analyzer,
// or reasonless directive suppresses nothing and is itself a finding.
func TestAllowFixture(t *testing.T) {
	fx := loadFixture(t, "faults")
	findings := fx.check(t, Determinism)

	type want struct {
		analyzer string
		re       string
	}
	expect := map[string][]want{ // function containing the line -> findings
		"UnknownName": {
			{"allow", `unknown analyzer "clockcheck"`},
			{"determinism", `call to time\.Now`},
		},
		"NoReason": {
			{"allow", `needs a reason`},
			{"determinism", `call to time\.Now`},
		},
		"NoName": {
			{"allow", `needs an analyzer name and a reason`},
			{"determinism", `call to time\.Now`},
		},
		"WrongVerb": {
			{"allow", `malformed fluidvet directive`},
		},
	}
	// Resolve each named function's line range so expectations are not
	// brittle against fixture edits.
	ranges := map[string][2]int{}
	for _, f := range fx.files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				start := fd.Pos()
				if fd.Doc != nil {
					start = fd.Doc.Pos() // directives may sit in the doc comment
				}
				ranges[fd.Name.Name] = [2]int{
					fx.fset.Position(start).Line,
					fx.fset.Position(fd.End()).Line,
				}
			}
		}
	}
	within := func(fn string, line int) bool {
		r, ok := ranges[fn]
		return ok && line >= r[0] && line <= r[1]
	}

	matched := map[*Finding]bool{}
	for fn, ws := range expect {
		for _, w := range ws {
			found := false
			for i := range findings {
				f := &findings[i]
				if matched[f] || f.Analyzer != w.analyzer || !within(fn, f.Pos.Line) {
					continue
				}
				if regexp.MustCompile(w.re).MatchString(f.Message) {
					matched[f] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("missing finding in %s: %s matching %q", fn, w.analyzer, w.re)
			}
		}
	}
	for i := range findings {
		f := &findings[i]
		if !matched[f] {
			t.Errorf("unexpected finding (should be suppressed or absent): %s", f)
		}
	}
}
