// Package fluidvet statically enforces the repository's determinism,
// diagnostics, and durability invariants as a suite of vet analyzers.
//
// The invariants it mechanizes are the ones the runtime layers rely on
// but cannot check for themselves:
//
//   - determinism: crash-resume (internal/journal, internal/recover)
//     replays a run bit-identically from (listing, seed, profile). One
//     wall-clock read, one draw from the unseeded global PRNG, or one
//     map-order-dependent loop in a replay-critical package silently
//     breaks that contract.
//   - diagnostics: VOL/AIS/ASM diagnostic codes are a stable public
//     surface. Every code must be minted through the internal/diag
//     registry so it is unique, carries a severity, and is documented.
//   - error taxonomy: recovery classifies faults with errors.Is, so
//     error paths must wrap with %w and declared sentinels must
//     actually be produced somewhere.
//   - durability: the write-ahead journal's guarantees are only as good
//     as its fsync/Close/CRC discipline; discarding one of those results
//     turns "durable" into "probably".
//   - exhaustiveness: switches over RepairKind, journal record kinds,
//     and machine event kinds must handle every variant (or carry an
//     explicit default), so adding a kind cannot silently fall through
//     replay or repair logic.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is implemented on the standard library alone, because
// this module builds offline with no third-party dependencies. The
// cmd/fluidvet driver speaks the `go vet -vettool` unitchecker protocol,
// so the suite runs as `go vet -vettool=$(fluidvet) ./...` in ci.sh.
//
// Findings can be suppressed, one line at a time, with an escape hatch:
//
//	//fluidvet:allow <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory and the analyzer name must be one of the suite's; both
// misuses are themselves findings.
package fluidvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //fluidvet:allow comments. It must be a lower-case identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why the invariant exists.
	Doc string
	// Run performs the check over one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// A Pass is one analyzer applied to one package. The driver constructs
// it with full type information; Files holds the package's non-test
// files only (test files may use wall clocks and raw codes freely).
// Effects is the package's interprocedural effect-inference result
// (with imported facts joined in); it is computed once per package and
// shared by every analyzer in the run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Effects  *Effects

	report func(Diagnostic)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// All returns the full suite in a stable order. The driver, the ci.sh
// gate, and the allow-comment validator all use this list, so an
// analyzer name is valid in //fluidvet:allow iff it appears here.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		DiagCode,
		ErrWrap,
		SyncErr,
		EnumSwitch,
		ParallelSafe,
		GlobalState,
		SharedCapture,
	}
}

// IsAnalyzerName reports whether name names an analyzer in the suite.
func IsAnalyzerName(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
