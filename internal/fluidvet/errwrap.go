package fluidvet

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the error-taxonomy contract in replay-critical
// packages: the recovery runtime, fluidvm's exit-code mapping, and the
// resume path all classify failures with errors.Is, which only works
// when intermediate layers wrap causes with %w (not %v/%s/%q) and when
// every declared sentinel is actually produced by some code path. A
// sentinel that is only ever *tested* can never match; an error
// formatted with %v is flattened to text and loses its identity.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "error causes must be wrapped with %w and declared sentinels must be produced somewhere, so errors.Is classification works",
	Run:  runErrWrap,
}

// errWrapScope extends the replay-critical set with regen: it is part
// of the recovery machinery whose errors the repair policy classifies.
func errWrapScope(pkg *types.Package) bool {
	return isReplayCritical(pkg) || lastSegment(pkg.Path()) == "regen"
}

func runErrWrap(pass *Pass) error {
	if !errWrapScope(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			checkErrorfVerbs(pass, call)
			return true
		})
	}
	checkSentinels(pass)
	return nil
}

// checkErrorfVerbs maps format verbs to arguments and flags error-typed
// arguments rendered with an identity-destroying verb.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	args := call.Args[1:]
	argIx := 0
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags, width, precision; '*' consumes an argument.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				argIx++
				i++
				continue
			}
			if strings.IndexByte("+-# 0.123456789", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		if argIx >= len(args) {
			break
		}
		arg := args[argIx]
		argIx++
		if verb == 'w' || verb == 'T' {
			continue
		}
		if verb != 'v' && verb != 's' && verb != 'q' {
			continue
		}
		t := pass.TypeOf(arg)
		if t == nil || !implementsError(t) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error formatted with %%%c is flattened to text and loses its identity for errors.Is; wrap the cause with %%w so the recovery taxonomy can classify it", verb)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// checkSentinels flags package-level Err* sentinels that no code path
// in the package produces: every use is the target of errors.Is /
// errors.As (or there are no uses at all), so matching can never
// succeed. Sentinels intentionally produced by another package carry a
// //fluidvet:allow errwrap comment naming the producer.
func checkSentinels(pass *Pass) {
	scope := pass.Pkg.Scope()
	sentinels := map[types.Object]bool{}
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.Var)
		if !ok || !strings.HasPrefix(name, "Err") || !implementsError(obj.Type()) {
			continue
		}
		sentinels[obj] = false // false = no producing use seen yet
	}
	if len(sentinels) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, tracked := sentinels[obj]; !tracked {
				return true
			}
			if !isErrorsIsTarget(pass, file, id) {
				sentinels[obj] = true
			}
			return true
		})
	}
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		produced, tracked := sentinels[obj]
		if tracked && !produced {
			pass.Reportf(obj.Pos(),
				"sentinel %s is never produced in this package: no return or %%w wrap creates it, so errors.Is(err, %s) cannot match; produce it or document the external producer with an allow", name, name)
		}
	}
}

// isErrorsIsTarget reports whether ident id appears as the second
// argument of errors.Is or errors.As — a testing use, not a producing
// one. The enclosing call is found by walking down from the file root.
func isErrorsIsTarget(pass *Pass, file *ast.File, id *ast.Ident) bool {
	path := enclosingCalls(file, id)
	for _, call := range path {
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
			continue
		}
		if fn.Name() != "Is" && fn.Name() != "As" {
			continue
		}
		if len(call.Args) == 2 && containsNode(call.Args[1], id) {
			return true
		}
	}
	return false
}

// enclosingCalls returns the call expressions containing pos, innermost
// last.
func enclosingCalls(file *ast.File, id *ast.Ident) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		// Prune subtrees that cannot contain the ident.
		if n.Pos() > id.Pos() || n.End() < id.End() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
