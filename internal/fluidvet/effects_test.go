package fluidvet

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestEffectLattice pins the inferred summary of every function in the
// effects fixture: one row per lattice transition (pure chain, global
// read, global write direct and through a pointer, interface-call
// widening, SCC recursion, caller-bound values, Once-guarded writes,
// directive override, IO, spawning).
func TestEffectLattice(t *testing.T) {
	fx := loadFixture(t, "effects")
	eff := fx.effects(t)

	tests := []struct {
		fn       string
		want     Effect
		asserted bool
	}{
		{fn: "effects.pureLeaf", want: EffectPure},
		{fn: "effects.pureChain", want: EffectPure},
		{fn: "effects.readsTable", want: EffectReadsGlobal},
		{fn: "effects.writesCounter", want: EffectReadsGlobal | EffectWritesGlobal},
		{fn: "effects.writesThroughPointer", want: EffectReadsGlobal | EffectWritesGlobal},
		{fn: "effects.callsInterface", want: effectWorst},
		{fn: "effects.recursiveA", want: EffectReadsGlobal | EffectWritesGlobal},
		{fn: "effects.recursiveB", want: EffectReadsGlobal | EffectWritesGlobal},
		{fn: "effects.callsParam", want: EffectCallsParam},
		{fn: "effects.gets", want: EffectReadsGlobal},
		{fn: "effects.doesIO", want: EffectIO},
		{fn: "effects.spawns", want: EffectSpawns},
		{fn: "effects.asserted", want: EffectPure, asserted: true},
		{fn: "effects.goodEntry", want: EffectReadsGlobal},
		{fn: "effects.paramEntry", want: EffectCallsParam},
		{fn: "effects.assertedEntry", want: EffectPure},
		{fn: "effects.badEntry", want: EffectReadsGlobal | EffectWritesGlobal},
		{fn: "effects.ioEntry", want: EffectIO},
		{fn: "effects.spawnEntry", want: EffectSpawns},
		{fn: "effects.widenedEntry", want: effectWorst},
	}
	for _, tt := range tests {
		s, ok := eff.OfName(tt.fn)
		if !ok {
			t.Errorf("%s: no summary inferred", tt.fn)
			continue
		}
		if s.Effect != tt.want {
			t.Errorf("%s: effect = %v, want %v", tt.fn, s.Effect, tt.want)
		}
		if s.Asserted != tt.asserted {
			t.Errorf("%s: asserted = %v, want %v", tt.fn, s.Asserted, tt.asserted)
		}
		// Every carried effect bit must come with a witness explaining it
		// (assertions witness the directive itself).
		for _, en := range effectNames {
			if s.Effect&en.bit != 0 && len(s.Witness[en.bit]) == 0 {
				t.Errorf("%s: effect %s has no witness path", tt.fn, en.name)
			}
		}
	}
}

// TestEffectWitnessPath checks that a transitive effect's witness reads
// as a proof trace from the entry to the leaf cause.
func TestEffectWitnessPath(t *testing.T) {
	fx := loadFixture(t, "effects")
	eff := fx.effects(t)

	s, ok := eff.OfName("effects.badEntry")
	if !ok {
		t.Fatal("no summary for effects.badEntry")
	}
	path := s.Witness[EffectWritesGlobal]
	if len(path) != 2 {
		t.Fatalf("witness path length = %d, want 2 (call + leaf): %v", len(path), path)
	}
	if want := "effects.badEntry calls effects.writesCounter"; path[0].Desc != want {
		t.Errorf("step 0 = %q, want %q", path[0].Desc, want)
	}
	if want := "effects.writesCounter writes package-level var effects.counter"; path[1].Desc != want {
		t.Errorf("step 1 = %q, want %q", path[1].Desc, want)
	}
	for i, step := range path {
		if step.Pos == "" {
			t.Errorf("step %d carries no position", i)
		}
	}
}

// TestParallelSafeFixture runs the certifying analyzer over the effects
// fixture: annotated entry points that write, do IO, spawn, or widen
// through an interface are findings with full call paths; pure,
// read-only, caller-bound, and asserted entries pass.
func TestParallelSafeFixture(t *testing.T) {
	runFixture(t, "effects", ParallelSafe)
}

func TestGlobalStateFixture(t *testing.T) {
	runFixture(t, "core", GlobalState)
}

// TestGlobalStateOutOfScope: the same package-level mutations outside
// the solver core produce nothing (the effects fixture writes
// effects.counter freely and is not in the solverCore set).
func TestGlobalStateOutOfScope(t *testing.T) {
	fx := loadFixture(t, "effects")
	for _, f := range fx.check(t, GlobalState) {
		t.Errorf("unexpected globalstate finding outside the solver core: %s", f)
	}
}

func TestSharedCaptureFixture(t *testing.T) {
	runFixture(t, "sharedcapture", SharedCapture)
}

// TestEffectFactsRoundTrip serializes a package's summaries the way the
// vet driver does (JSON into the .vetx facts channel) and checks the
// decoded facts drive Effects.Of exactly like the originals.
func TestEffectFactsRoundTrip(t *testing.T) {
	fx := loadFixture(t, "effects")
	eff := fx.effects(t)

	facts := eff.Facts()
	if len(facts) == 0 {
		t.Fatal("no facts exported")
	}
	blob, err := json.Marshal(facts)
	if err != nil {
		t.Fatalf("marshaling facts: %v", err)
	}
	var decoded EffectFacts
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("unmarshaling facts: %v", err)
	}
	if len(decoded) != len(facts) {
		t.Fatalf("decoded %d facts, want %d", len(decoded), len(facts))
	}
	for name, s := range facts {
		d, ok := decoded[name]
		if !ok {
			t.Errorf("%s: missing after round trip", name)
			continue
		}
		if d.Effect != s.Effect {
			t.Errorf("%s: effect %v -> %v across round trip", name, s.Effect, d.Effect)
		}
		if d.Asserted != s.Asserted {
			t.Errorf("%s: asserted %v -> %v across round trip", name, s.Asserted, d.Asserted)
		}
		for bit, path := range s.Witness {
			if len(d.Witness[bit]) != len(path) {
				t.Errorf("%s: witness for %v has %d steps, want %d", name, bit, len(d.Witness[bit]), len(path))
			}
		}
	}

	// A dependent package resolving through the decoded facts sees the
	// same classification (this is the cross-package propagation path).
	imported := &Effects{deps: decoded}
	if s, ok := imported.deps["effects.writesCounter"]; !ok || s.Effect&EffectWritesGlobal == 0 {
		t.Errorf("decoded facts lost the writes-global classification of effects.writesCounter")
	}
}

// TestEffectDirectiveMisuse checks the validation of the declaration
// directives programmatically (the findings land on the directive lines,
// which cannot also carry want comments).
func TestEffectDirectiveMisuse(t *testing.T) {
	fx := loadFixture(t, "effectsbad")
	findings := fx.check(t)

	wants := []string{
		`names unknown effect "launders-money"`,
		`needs an effect list and a reason`,
		`malformed directive`,
	}
	for _, w := range wants {
		found := false
		for _, f := range findings {
			if f.Analyzer == "effect" && regexp.MustCompile(w).MatchString(f.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no effect-misuse finding matching %q in %v", w, findings)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
}

// TestSortFindings pins the byte-stable emission order: (file, line,
// column, analyzer, message).
func TestSortFindings(t *testing.T) {
	mk := func(file string, line, col int, analyzer, msg string) Finding {
		return Finding{Analyzer: analyzer, Message: msg,
			Pos: token.Position{Filename: file, Line: line, Column: col}}
	}
	in := []Finding{
		mk("b.go", 1, 1, "determinism", "z"),
		mk("a.go", 2, 1, "parallelsafe", "m"),
		mk("a.go", 1, 9, "globalstate", "m"),
		mk("a.go", 1, 2, "sharedcapture", "m"),
		mk("a.go", 1, 2, "globalstate", "b"),
		mk("a.go", 1, 2, "globalstate", "a"),
	}
	want := []Finding{
		mk("a.go", 1, 2, "globalstate", "a"),
		mk("a.go", 1, 2, "globalstate", "b"),
		mk("a.go", 1, 2, "sharedcapture", "m"),
		mk("a.go", 1, 9, "globalstate", "m"),
		mk("a.go", 2, 1, "parallelsafe", "m"),
		mk("b.go", 1, 1, "determinism", "z"),
	}
	SortFindings(in)
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, in[i], want[i])
		}
	}
}

// parseEntryPoint splits a CertifiedEntryPoints entry (a
// types.Func.FullName) into package path, receiver type name (if a
// method), and function name.
func parseEntryPoint(full string) (pkgPath, recv, name string) {
	if strings.HasPrefix(full, "(*") {
		end := strings.Index(full, ")")
		inner := full[2:end]
		i := strings.LastIndex(inner, ".")
		return inner[:i], inner[i+1:], full[end+2:]
	}
	i := strings.LastIndex(full, ".")
	return full[:i], "", full[i+1:]
}

// TestCertifiedEntryPointsAnnotated is the meta-check tying the three
// consumers together: every entry in CertifiedEntryPoints must resolve
// to a declaration in the module source that carries the exact
// //fluidvet:parallelsafe directive, and — the reverse direction — every
// directive in the module must be in the list, so the certified set
// cannot drift from the code, the README table, or the smoke test.
func TestCertifiedEntryPointsAnnotated(t *testing.T) {
	if len(CertifiedEntryPoints) < 6 {
		t.Fatalf("CertifiedEntryPoints lists %d entry points, want at least the 6 from the certification issue", len(CertifiedEntryPoints))
	}
	fset := token.NewFileSet()
	for _, full := range CertifiedEntryPoints {
		pkgPath, recv, name := parseEntryPoint(full)
		if !strings.HasPrefix(pkgPath, "aquavol/") {
			t.Errorf("%s: not a module package", full)
			continue
		}
		dir := filepath.Join("..", "..", strings.TrimPrefix(pkgPath, "aquavol/"))
		if !entryPointAnnotated(t, fset, dir, recv, name) {
			t.Errorf("%s: no declaration in %s carries //fluidvet:parallelsafe", full, dir)
		}
	}

	// Reverse: the number of directives in the module equals the number
	// of certified entries, so nothing is annotated without being listed.
	count := countDirectives(t, filepath.Join("..", ".."))
	if count != len(CertifiedEntryPoints) {
		t.Errorf("module carries %d //fluidvet:parallelsafe directives, but CertifiedEntryPoints lists %d", count, len(CertifiedEntryPoints))
	}
}

// entryPointAnnotated reports whether package directory dir declares
// recv.name (or plain name) with the parallelsafe directive in its doc.
func entryPointAnnotated(t *testing.T, fset *token.FileSet, dir, recv, name string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Doc == nil {
				continue
			}
			if recvTypeOf(fd) != recv {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == "//fluidvet:parallelsafe" {
					return true
				}
			}
		}
	}
	return false
}

// recvTypeOf names a declaration's receiver base type ("" for plain
// functions).
func recvTypeOf(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// countDirectives counts exact //fluidvet:parallelsafe lines in module
// sources (testdata fixtures excluded — they annotate deliberately-bad
// entry points).
func countDirectives(t *testing.T, root string) int {
	t.Helper()
	count := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(blob), "\n") {
			if strings.TrimSpace(line) == "//fluidvet:parallelsafe" {
				count++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return count
}

// TestCertifiedListMatchesREADME gates the documentation: every
// certified entry point must appear (by FullName) in the README's
// parallel-safety section, so the published table and the enforced list
// cannot diverge. CI runs this via go test.
func TestCertifiedListMatchesREADME(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	readme := string(blob)
	for _, full := range CertifiedEntryPoints {
		if !strings.Contains(readme, full) {
			t.Errorf("README.md does not mention certified entry point %s", full)
		}
	}
}
