package fluidvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// A Finding is one reported diagnostic, resolved to a file position and
// tagged with the analyzer that produced it. Allow-comment misuses are
// reported under the pseudo-analyzer name "allow".
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// allowRe matches the escape hatch. The analyzer name and free-form
// reason are validated separately so misuses get precise findings.
var allowRe = regexp.MustCompile(`^//fluidvet:allow(?:[ \t]+(\S+))?[ \t]*(.*)$`)

// allowEntry is one parsed //fluidvet:allow comment.
type allowEntry struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// allowTable indexes allow comments by file and line.
type allowTable map[string]map[int][]allowEntry

// buildAllowTable scans the comments of files for //fluidvet:allow
// directives and reports misuses (missing analyzer name, unknown
// analyzer name, missing reason) as findings.
func buildAllowTable(fset *token.FileSet, files []*ast.File, misuse func(Finding)) allowTable {
	tab := make(allowTable)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//fluidvet:") {
					continue
				}
				// Declaration directives (//fluidvet:effect,
				// //fluidvet:parallelsafe) belong to the effect layer,
				// which validates them itself.
				if isEffectDirective(c.Text) {
					continue
				}
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					misuse(Finding{
						Analyzer: "allow",
						Pos:      fset.Position(c.Pos()),
						Message:  fmt.Sprintf("malformed fluidvet directive %q (want //fluidvet:allow <analyzer> <reason>)", c.Text),
					})
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				switch {
				case name == "":
					misuse(Finding{
						Analyzer: "allow",
						Pos:      fset.Position(c.Pos()),
						Message:  "//fluidvet:allow needs an analyzer name and a reason",
					})
					continue
				case !IsAnalyzerName(name):
					misuse(Finding{
						Analyzer: "allow",
						Pos:      fset.Position(c.Pos()),
						Message:  fmt.Sprintf("//fluidvet:allow names unknown analyzer %q (valid: %s)", name, analyzerNames()),
					})
					continue
				case reason == "":
					misuse(Finding{
						Analyzer: "allow",
						Pos:      fset.Position(c.Pos()),
						Message:  fmt.Sprintf("//fluidvet:allow %s needs a reason: every suppressed invariant must say why it is safe", name),
					})
					continue
				}
				posn := fset.Position(c.Pos())
				byLine := tab[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]allowEntry)
					tab[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], allowEntry{analyzer: name, reason: reason, pos: c.Pos()})
			}
		}
	}
	return tab
}

// allows reports whether a finding by analyzer at posn is suppressed:
// an allow entry for that analyzer sits on the same line or the line
// directly above.
func (t allowTable) allows(analyzer string, posn token.Position) bool {
	byLine := t[posn.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, e := range byLine[line] {
			if e.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// Check runs the analyzers over one type-checked package and returns
// the surviving findings, sorted by (file, line, column, analyzer,
// message) so `go vet -vettool` output is byte-stable across runs and
// usable in golden tests. Test files must already have been excluded
// from files. The allow escape hatch is applied here, uniformly for
// every analyzer, and its misuses are returned as findings under the
// "allow" pseudo-analyzer. Effect inference (which the parallelsafe,
// globalstate, and sharedcapture analyzers consume) runs once per
// package; deps supplies imported packages' effect facts (nil is fine
// for single-package runs — externals fall back to the curated table).
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, deps EffectFacts) ([]Finding, *Effects, error) {
	var out []Finding
	tab := buildAllowTable(fset, files, func(f Finding) { out = append(out, f) })
	effects := InferEffects(fset, files, pkg, info, deps, func(f Finding) { out = append(out, f) })

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Effects:  effects,
		}
		pass.report = func(d Diagnostic) {
			posn := fset.Position(d.Pos)
			if tab.allows(a.Name, posn) {
				return
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("fluidvet: %s: %w", a.Name, err)
		}
	}

	SortFindings(out)
	return out, effects, nil
}

// SortFindings orders findings by (file, line, column, analyzer,
// message) — the emission order every driver and test relies on.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// modulePath is the import-path prefix of this repository. The vet
// driver analyzes only packages under it: go vet hands the tool every
// dependency (standard library included) for fact generation, and those
// must pass through untouched.
const modulePath = "aquavol"

// inModule reports whether the import path (with any " [test-variant]"
// suffix already stripped) belongs to this module.
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// lastSegment returns the final element of an import path: the
// conventional package directory name used for scope matching.
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// replayCritical is the set of package directory names whose state can
// reach journal records, snapshots, listings, or event streams. A
// determinism violation in any of them breaks bit-identical replay.
// ilp, bench, and budget are included although their wall-clock uses
// are legitimate (a solver deadline, benchmark timers, the budget
// layer's deadline-as-resource-guard): those sites carry
// //fluidvet:allow comments so the exceptions are visible and audited.
var replayCritical = map[string]bool{
	"aquacore": true,
	"journal":  true,
	"recover":  true,
	"faults":   true,
	"codegen":  true,
	"core":     true,
	"certify":  true,
	"dag":      true,
	"ilp":      true,
	"bench":    true,
	"budget":   true,
	"vfs":      true,
}

// isReplayCritical reports whether pkg is in the replay-critical set.
// Matching is by final path segment so analyzer fixtures under
// testdata/src/<name> exercise the same scoping as the real packages.
func isReplayCritical(pkg *types.Package) bool {
	return replayCritical[lastSegment(pkg.Path())]
}
