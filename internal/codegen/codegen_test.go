package codegen_test

import (
	"errors"
	"strings"
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
)

func genFromSource(t *testing.T, src string) *codegen.Result {
	t.Helper()
	ep, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func countOp(p *ais.Program, op ais.Opcode) int {
	c := 0
	for _, in := range p.Instrs {
		if in.Op == op {
			c++
		}
	}
	return c
}

func TestGenerateGlucose(t *testing.T) {
	res := genFromSource(t, assays.GlucoseSource)
	p := res.Prog
	if got := countOp(p, ais.Input); got != 3 {
		t.Errorf("input instrs = %d, want 3", got)
	}
	if got := countOp(p, ais.Mix); got != 5 {
		t.Errorf("mix instrs = %d, want 5", got)
	}
	if got := countOp(p, ais.SenseOD); got != 5 {
		t.Errorf("sense instrs = %d, want 5", got)
	}
	// Each mix gathers two operands; each sense one: 15 moves total.
	if got := countOp(p, ais.Move); got != 15 {
		t.Errorf("move instrs = %d, want 15", got)
	}
	// Mix results are sensed immediately: storage-less forwarding means
	// only the three inputs occupy reservoirs.
	if res.MaxLiveReservoirs != 3 {
		t.Errorf("max live reservoirs = %d, want 3", res.MaxLiveReservoirs)
	}
	// Listing resembles the paper's Fig. 9(b).
	text := p.String()
	for _, want := range []string{"input s1, ip1 ;Glucose", "mix mixer1, 10", "sense.OD sensor1, Result[1]"} {
		if !strings.Contains(text, want) {
			t.Errorf("listing missing %q\n%s", want, text)
		}
	}
	// The listing assembles back.
	if _, err := ais.Assemble(text); err != nil {
		t.Errorf("generated listing does not assemble: %v", err)
	}
}

func TestGenerateEdgesAnnotated(t *testing.T) {
	res := genFromSource(t, assays.GlucoseSource)
	withEdge := 0
	for _, in := range res.Prog.Instrs {
		if in.Op == ais.Move && in.Edge >= 0 {
			withEdge++
		}
	}
	// All 15 operand-gathering moves carry edge annotations (glucose has
	// no whole-vessel stores: everything is forwarded).
	if withEdge != 15 {
		t.Errorf("edge-annotated moves = %d, want 15", withEdge)
	}
}

func TestGenerateSeparatorAuxLoads(t *testing.T) {
	res := genFromSource(t, assays.GlycomicsSource)
	text := res.Prog.String()
	for _, want := range []string{".matrix", ".pusher", "separate.AF", "separate.LC"} {
		if !strings.Contains(text, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	// lectin, buffer1b, C_18, buffer3b get ports beyond the managed
	// inputs.
	for _, aux := range []string{"lectin", "buffer1b", "C_18", "buffer3b"} {
		if res.InputPort[aux] == 0 {
			t.Errorf("aux input %s has no port", aux)
		}
	}
}

func TestGenerateGuardsCompileToJumps(t *testing.T) {
	res := genFromSource(t, `ASSAY g START
fluid a, b;
VAR x;
MIX a AND b FOR 1;
SENSE OPTICAL it INTO x;
IF x < 3 START
  MIX a AND b FOR 10;
ELSE
  MIX a AND b FOR 20;
ENDIF
END`)
	p := res.Prog
	if got := countOp(p, ais.DryJZ); got != 2 {
		t.Errorf("dry-jz = %d, want 2 (one per guarded branch)", got)
	}
	if got := countOp(p, ais.DryNot); got != 1 {
		t.Errorf("dry-not = %d, want 1 (negated else guard)", got)
	}
	if got := countOp(p, ais.DryLT); got != 2 {
		t.Errorf("dry-lt = %d, want 2", got)
	}
	if len(p.Labels) != 2 {
		t.Errorf("labels = %d, want 2 skip targets", len(p.Labels))
	}
}

func TestGenerateOutOfReservoirs(t *testing.T) {
	ep, err := lang.Compile(assays.EnzymeSource(4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = codegen.Generate(ep, ep.Graph, codegen.Config{NumReservoirs: 4})
	var oor codegen.ErrOutOfReservoirs
	if !errors.As(err, &oor) {
		t.Fatalf("err = %v, want ErrOutOfReservoirs", err)
	}
}

func TestGenerateEnzymeFits(t *testing.T) {
	ep, err := lang.Compile(assays.EnzymeSource(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 inputs + 12 dilutions stored; combos forward through units.
	if res.MaxLiveReservoirs > 20 {
		t.Errorf("max live reservoirs = %d, want <= 20", res.MaxLiveReservoirs)
	}
	if got := countOp(res.Prog, ais.Mix); got != 12+64 {
		t.Errorf("mix instrs = %d, want 76", got)
	}
	if got := countOp(res.Prog, ais.Incubate); got != 64 {
		t.Errorf("incubate instrs = %d, want 64", got)
	}
}

// Code generation over a cascade/replication-transformed graph emits the
// extra stages, excess discards, and replica input loads.
func TestGenerateTransformedEnzyme(t *testing.T) {
	ep, err := lang.Compile(assays.EnzymeSource(4))
	if err != nil {
		t.Fatal(err)
	}
	mres, err := core.Manage(ep.Graph, core.DefaultConfig(), core.ManageOptions{SkipLP: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.Generate(ep, mres.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Cascades add mixes beyond the original 76 and excess discards to
	// the waste port.
	if got := countOp(res.Prog, ais.Mix); got <= 76 {
		t.Errorf("mix instrs = %d, want > 76 (cascade stages)", got)
	}
	excess := 0
	for _, in := range res.Prog.Instrs {
		if in.Op == ais.Output && in.Comment == "excess" {
			excess++
		}
	}
	if excess == 0 {
		t.Error("no excess discard instructions for cascade stages")
	}
}
