// Package codegen lowers an elaborated assay (plus its possibly
// cascade/replication-transformed volume DAG) to AquaCore Instruction Set
// code: input-port assignment, reservoir allocation by linear scan over
// fluid live ranges, storage-less FU-to-FU forwarding when a result's only
// consumer is the immediately following operation (§2.1), auxiliary
// matrix/pusher loads for separators, guarded regions compiled to dry
// compare-and-skip sequences, and move instructions annotated with their
// volume-DAG edges so the runtime volume manager can translate relative
// volumes to absolute ones.
package codegen

import (
	"fmt"
	"sort"

	"aquavol/internal/ais"
	"aquavol/internal/dag"
	"aquavol/internal/lang/ast"
	"aquavol/internal/lang/elab"
	"aquavol/internal/lang/token"
)

// Config sets the PLoC resource envelope code generation targets.
type Config struct {
	// NumReservoirs bounds simultaneously-live stored fluids. 0 selects
	// 64.
	NumReservoirs int
	// NumSeparators bounds distinct separator units. 0 selects 2.
	NumSeparators int
	// ReuseReservoirs lets dead fluids' reservoirs be re-allocated. Off by
	// default: under LP plans with excess production a reservoir can
	// retain a residue, and reusing it without a flush would contaminate
	// the next fluid. (The paper likewise notes residue is handled by
	// over-provisioning, not reuse.)
	ReuseReservoirs bool
	// NoForwarding disables storage-less FU-to-FU forwarding, routing
	// every result through a reservoir. Required for plans that may leave
	// excess in a unit (LP plans without flow conservation): a forwarded
	// partial draw would leave residue in the unit for the next
	// operation.
	NoForwarding bool
}

func (c Config) withDefaults() Config {
	if c.NumReservoirs == 0 {
		c.NumReservoirs = 64
	}
	if c.NumSeparators == 0 {
		c.NumSeparators = 2
	}
	return c
}

// ErrOutOfReservoirs reports that live fluids exceed the PLoC's storage
// (compilation fails, per §3.4.2).
type ErrOutOfReservoirs struct {
	Needed, Have int
}

func (e ErrOutOfReservoirs) Error() string {
	return fmt.Sprintf("codegen: out of reservoirs: need more than %d", e.Have)
}

// VolumeTable materializes a volume plan as per-instruction absolute
// volumes for every edge-annotated instruction, producing the shippable
// (listing, table) pair executable without recompilation. vol resolves a
// DAG edge id to its planned volume; instructions whose edges it cannot
// resolve are an error (the plan does not cover the program).
func (r *Result) VolumeTable(vol func(edge int) (float64, bool)) (ais.VolumeTable, error) {
	t := ais.VolumeTable{}
	for pc, in := range r.Prog.Instrs {
		if in.Edge < 0 {
			continue
		}
		v, ok := vol(in.Edge)
		if !ok {
			return nil, fmt.Errorf("codegen: no planned volume for edge %d at pc %d (%s)", in.Edge, pc, in)
		}
		t[pc] = v
	}
	return t, nil
}

// Result is the generated program plus allocation metadata.
type Result struct {
	Prog *ais.Program
	// InputPort maps input fluid names (managed and auxiliary) to input
	// port numbers.
	InputPort map[string]int
	// ReservoirOf maps (node id, port) keys to the reservoir that held
	// the fluid, for diagnostics.
	ReservoirOf map[string]int
	// MaxLiveReservoirs is the high-water mark of simultaneously
	// allocated reservoirs.
	MaxLiveReservoirs int
	// Clusters maps each emitted DAG node id to the half-open pc range
	// [start, end) of its instruction cluster: guard prologue, auxiliary
	// and operand moves, the operation itself, and the placement move.
	// Guard skip labels land exactly at the cluster end, so control never
	// leaves the range. The recovery runtime re-executes these ranges to
	// regenerate depleted fluids (regen.BackwardSlice driving actual
	// re-execution).
	Clusters map[int][2]int
	// VesselOf maps dag.FluidKey(node, port) to the machine vessel that
	// holds the fluid after its producing cluster: a reservoir name
	// ("s3") or, for forwarded results, the unit ("mixer1") or unit port
	// ("separator1.out1"). Each produced fluid is placed exactly once, so
	// the map is the program-long location table; the recovery runtime
	// reads live volumes through it when replanning the residual DAG.
	// (With Config.ReuseReservoirs a reservoir may later hold a different
	// fluid — reuse and replanning should not be combined.)
	VesselOf map[string]string
}

type loc struct {
	// Exactly one of res >= 0 or unit != "" holds.
	res  int
	unit string
	sub  string
}

type generator struct {
	cfg   Config
	ep    *elab.Program
	g     *dag.Graph
	prog  *ais.Program
	res   *Result
	nodes []*dag.Node // emission order (wet clusters)

	freeRes  []int
	nextRes  int
	maxLive  int
	liveEnd  map[string]int // loc key -> last emission position
	location map[string]loc // (node,port) -> current location
	tempN    int
	labelN   int
	sepN     int
	outPortN int
}

func key(nodeID int, port string) string { return dag.FluidKey(nodeID, port) }

// setLocation records where a produced fluid now lives, both in the
// generator's working map and in the exported Result.VesselOf table.
func (gen *generator) setLocation(k string, l loc) {
	gen.location[k] = l
	if l.res >= 0 {
		gen.res.VesselOf[k] = ais.Res(l.res).Name
	} else if l.sub != "" {
		gen.res.VesselOf[k] = l.unit + "." + l.sub
	} else {
		gen.res.VesselOf[k] = l.unit
	}
}

// Generate lowers ep over graph g (ep.Graph or a transformed clone of it;
// node Refs must link back to ep.Ops indices).
func Generate(ep *elab.Program, g *dag.Graph, cfg Config) (*Result, error) {
	gen := &generator{
		cfg: cfg.withDefaults(),
		ep:  ep,
		g:   g,
		prog: &ais.Program{
			Name:   ep.Name,
			Labels: map[string]int{},
		},
		liveEnd:  map[string]int{},
		location: map[string]loc{},
	}
	gen.res = &Result{
		Prog:        gen.prog,
		InputPort:   map[string]int{},
		ReservoirOf: map[string]int{},
		Clusters:    map[int][2]int{},
		VesselOf:    map[string]string{},
	}
	if err := gen.schedule(); err != nil {
		return nil, err
	}
	gen.computeLiveness()
	if err := gen.emitAll(); err != nil {
		return nil, err
	}
	gen.res.MaxLiveReservoirs = gen.maxLive
	return gen.res, nil
}

// opIndex recovers a node's elab op index from its Ref.
func opIndex(n *dag.Node) int {
	if ix, ok := n.Ref.(int); ok {
		return ix
	}
	return -1
}

// schedule computes the wet-node emission order: inputs first, then nodes
// grouped by originating op index, topologically ordered within a group
// (cascade stages precede their final mix). Excess nodes are folded into
// their producer's emission.
func (gen *generator) schedule() error {
	if err := gen.g.Validate(); err != nil {
		return err
	}
	topo := gen.g.TopoOrder()
	rank := make(map[*dag.Node]int, len(topo))
	for i, n := range topo {
		rank[n] = i
	}
	var nodes []*dag.Node
	for _, n := range topo {
		if n.Kind == dag.Excess || n.Kind == dag.ConstrainedInput {
			continue
		}
		nodes = append(nodes, n)
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		ki, kj := nodeKey(nodes[i]), nodeKey(nodes[j])
		if ki != kj {
			return ki < kj
		}
		return rank[nodes[i]] < rank[nodes[j]]
	})
	gen.nodes = nodes
	return nil
}

func nodeKey(n *dag.Node) int {
	if n.Kind == dag.Input {
		return -1
	}
	return opIndex(n)
}

// computeLiveness records, per produced fluid location, the last emission
// position that consumes it.
func (gen *generator) computeLiveness() {
	pos := make(map[*dag.Node]int, len(gen.nodes))
	for i, n := range gen.nodes {
		pos[n] = i
	}
	for _, n := range gen.nodes {
		for _, e := range n.In() {
			k := key(e.From.ID(), e.Port)
			if pos[n] > gen.liveEnd[k] {
				gen.liveEnd[k] = pos[n]
			}
		}
	}
}

func (gen *generator) allocRes(k string) (int, error) {
	var r int
	if n := len(gen.freeRes); n > 0 {
		r = gen.freeRes[n-1]
		gen.freeRes = gen.freeRes[:n-1]
	} else {
		gen.nextRes++
		r = gen.nextRes
		if gen.nextRes > gen.cfg.NumReservoirs {
			return 0, ErrOutOfReservoirs{Have: gen.cfg.NumReservoirs}
		}
	}
	if live := gen.nextRes - len(gen.freeRes); live > gen.maxLive {
		gen.maxLive = live
	}
	gen.res.ReservoirOf[k] = r
	return r, nil
}

// releaseDead frees reservoirs whose fluids have no consumers after
// emission position p (only when reuse is enabled).
func (gen *generator) releaseDead(p int) {
	if !gen.cfg.ReuseReservoirs {
		return
	}
	for k, l := range gen.location {
		if l.res < 0 {
			continue
		}
		if gen.liveEnd[k] <= p {
			gen.freeRes = append(gen.freeRes, l.res)
			delete(gen.location, k)
		}
	}
	sort.Ints(gen.freeRes) // determinism
}

func (gen *generator) emit(in ais.Instr) {
	gen.prog.Instrs = append(gen.prog.Instrs, in)
}

func (gen *generator) temp() ais.Operand {
	gen.tempN++
	return ais.Reg(fmt.Sprintf("t%d", gen.tempN))
}

func (gen *generator) label(prefix string) string {
	gen.labelN++
	return fmt.Sprintf("%s_%d", prefix, gen.labelN)
}

func (gen *generator) emitAll() error {
	// Assign input ports: managed inputs by node id order, then aux.
	type namedInput struct {
		name string
		node int
	}
	var ins []namedInput
	for name, id := range gen.ep.Inputs {
		ins = append(ins, namedInput{name, id})
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i].node < ins[j].node })
	port := 0
	auxRes := map[string]int{}
	for _, in := range ins {
		port++
		gen.res.InputPort[in.name] = port
	}
	for _, aux := range gen.ep.AuxInputs {
		port++
		gen.res.InputPort[aux] = port
	}

	// Interleave dry ops and wet clusters by op index.
	nextNode := 0
	emitWetUpTo := func(limit int) error {
		for nextNode < len(gen.nodes) && nodeKey(gen.nodes[nextNode]) < limit {
			start := len(gen.prog.Instrs)
			if err := gen.emitNode(nextNode, auxRes); err != nil {
				return err
			}
			gen.res.Clusters[gen.nodes[nextNode].ID()] = [2]int{start, len(gen.prog.Instrs)}
			gen.releaseDead(nextNode)
			nextNode++
		}
		return nil
	}
	for ix, op := range gen.ep.Ops {
		if err := emitWetUpTo(ix); err != nil {
			return err
		}
		if op.Kind == elab.OpDry {
			gen.emitDryOp(&op)
			continue
		}
		// Wet clusters for this index (replicas + cascade stages + node).
		if err := emitWetUpTo(ix + 1); err != nil {
			return err
		}
	}
	if err := emitWetUpTo(1 << 30); err != nil {
		return err
	}
	gen.emit(ais.Instr{Op: ais.Halt, Edge: -1, Node: -1})
	return nil
}

// guardsOf returns the guards of the op a node realizes.
func (gen *generator) guardsOf(n *dag.Node) []elab.Guard {
	ix := opIndex(n)
	if ix < 0 || ix >= len(gen.ep.Ops) {
		return nil
	}
	return gen.ep.Ops[ix].Guards
}

func (gen *generator) opOf(n *dag.Node) *elab.Op {
	ix := opIndex(n)
	if ix < 0 || ix >= len(gen.ep.Ops) {
		return nil
	}
	return &gen.ep.Ops[ix]
}

// emitNode generates the instruction cluster for one wet node.
func (gen *generator) emitNode(pos int, auxRes map[string]int) error {
	n := gen.nodes[pos]
	if n.Kind == dag.Input {
		return gen.emitInput(n)
	}
	op := gen.opOf(n)
	if op == nil {
		return fmt.Errorf("codegen: node %v has no originating op", n)
	}

	// Guard prologue.
	skip := ""
	if guards := gen.guardsOf(n); len(guards) > 0 {
		skip = gen.label("skip")
		gen.emitGuards(guards, skip)
	}

	var err error
	switch n.Kind {
	case dag.Mix:
		err = gen.emitMix(n, op)
	case dag.Incubate, dag.Concentrate:
		err = gen.emitHeat(n, op)
	case dag.Separate:
		err = gen.emitSeparate(n, op, auxRes)
	case dag.Sense:
		err = gen.emitSense(n, op)
	case dag.Output:
		err = gen.emitOutput(n, op)
	default:
		err = fmt.Errorf("codegen: cannot emit node kind %v", n.Kind)
	}
	if err != nil {
		return err
	}
	if skip != "" {
		gen.prog.Labels[skip] = len(gen.prog.Instrs)
	}
	return nil
}

func (gen *generator) emitInput(n *dag.Node) error {
	k := key(n.ID(), dag.PortDefault)
	r, err := gen.allocRes(k)
	if err != nil {
		return err
	}
	gen.setLocation(k, loc{res: r, unit: ""})
	gen.emit(ais.Instr{
		Op:       ais.Input,
		Operands: []ais.Operand{ais.Res(r), ais.IP(gen.res.InputPort[n.Name])},
		Edge:     -1, Node: n.ID(), Comment: n.Name,
	})
	return nil
}

// srcOperand resolves the current location of an edge's source fluid.
func (gen *generator) srcOperand(e *dag.Edge) (ais.Operand, error) {
	l, ok := gen.location[key(e.From.ID(), e.Port)]
	if !ok {
		return ais.Operand{}, fmt.Errorf("codegen: fluid of %v (port %q) has no location", e.From, e.Port)
	}
	if l.res >= 0 {
		return ais.Res(l.res), nil
	}
	if l.sub != "" {
		return ais.FUPort(l.unit, l.sub), nil
	}
	return ais.FU(l.unit), nil
}

// moveIn emits the operand-gathering move for edge e into unit dst, with
// the edge's assay-relative volume as the move's <rel vol>.
func (gen *generator) moveIn(e *dag.Edge, dst ais.Operand) error {
	src, err := gen.srcOperand(e)
	if err != nil {
		return err
	}
	ops := []ais.Operand{dst, src}
	// Relative volume operand: the edge fraction scaled to small integers
	// is the assay-level ratio; we emit the fraction itself (the runtime
	// translates via the plan, keyed by Edge).
	ops = append(ops, ais.Num(round4(e.Frac)))
	gen.emit(ais.Instr{Op: ais.Move, Operands: ops, Edge: e.ID(), Node: -1})
	return nil
}

func round4(v float64) float64 {
	return float64(int64(v*10000+0.5)) / 10000
}

// place decides where a node's produced fluid lives after its operation:
// forwarded in the unit for a single immediately-next consumer, otherwise
// moved to a reservoir (or dropped if unconsumed).
func (gen *generator) place(pos int, n *dag.Node, port string, unit ais.Operand) error {
	k := key(n.ID(), port)
	consumers := 0
	var only *dag.Node
	for _, e := range n.Out() {
		if e.Port != port || e.To.Kind == dag.Excess {
			continue
		}
		consumers++
		only = e.To
	}
	// Excess discard: route the surplus to the waste port.
	for _, e := range n.Out() {
		if e.Port == port && e.To.Kind == dag.Excess {
			gen.emit(ais.Instr{
				Op:       ais.Output,
				Operands: []ais.Operand{{Kind: ais.OutPort, Name: "op0"}, unit},
				Edge:     e.ID(), Node: e.To.ID(), Comment: "excess",
			})
		}
	}
	if consumers == 0 {
		// Unconsumed product: flush the unit to the waste port so the
		// next operation on it starts clean.
		gen.emit(ais.Instr{
			Op:       ais.Output,
			Operands: []ais.Operand{{Kind: ais.OutPort, Name: "op0"}, unit},
			Edge:     -1, Node: -1, Comment: "flush " + n.Name,
		})
		return nil
	}
	if !gen.cfg.NoForwarding && consumers == 1 &&
		pos+1 < len(gen.nodes) && gen.nodes[pos+1] == only && !sameUnit(n, only) {
		// Storage-less forwarding: leave it in the unit. Forwarding is
		// unsafe when the consumer runs on the same unit (a mix feeding a
		// mix would fold any residue into the new mixture), so those
		// results go through a reservoir.
		gen.setLocation(k, loc{res: -1, unit: unit.Name, sub: unit.Sub})
		return nil
	}
	r, err := gen.allocRes(k)
	if err != nil {
		return err
	}
	gen.setLocation(k, loc{res: r})
	gen.emit(ais.Instr{
		Op:       ais.Move,
		Operands: []ais.Operand{ais.Res(r), unit},
		Edge:     -1, Node: -1, Comment: n.Name,
	})
	return nil
}

// sameUnit reports whether two node kinds execute on the same functional
// unit, making storage-less forwarding between them unsafe.
func sameUnit(a, b *dag.Node) bool {
	unitClass := func(k dag.Kind) int {
		switch k {
		case dag.Mix:
			return 1
		case dag.Incubate:
			return 2
		case dag.Concentrate:
			return 3
		case dag.Separate:
			return 4
		default:
			return 0 // sensors/outputs never feed onward
		}
	}
	ca, cb := unitClass(a.Kind), unitClass(b.Kind)
	return ca != 0 && ca == cb
}

func (gen *generator) posOf(n *dag.Node) int {
	for i, m := range gen.nodes {
		if m == n {
			return i
		}
	}
	return -1
}

func (gen *generator) emitMix(n *dag.Node, op *elab.Op) error {
	mixer := ais.FU("mixer1")
	for _, e := range n.In() {
		if err := gen.moveIn(e, mixer); err != nil {
			return err
		}
	}
	gen.emit(ais.Instr{
		Op:       ais.Mix,
		Operands: []ais.Operand{mixer, ais.Num(op.TimeSec)},
		Edge:     -1, Node: n.ID(),
	})
	return gen.place(gen.posOf(n), n, dag.PortDefault, mixer)
}

func (gen *generator) emitHeat(n *dag.Node, op *elab.Op) error {
	unit := ais.FU("heater1")
	aop := ais.Incubate
	if n.Kind == dag.Concentrate {
		unit = ais.FU("concentrator1")
		aop = ais.Concentrate
	}
	for _, e := range n.In() {
		if err := gen.moveIn(e, unit); err != nil {
			return err
		}
	}
	gen.emit(ais.Instr{
		Op:       aop,
		Operands: []ais.Operand{unit, ais.Num(op.TempC), ais.Num(op.TimeSec)},
		Edge:     -1, Node: n.ID(),
	})
	return gen.place(gen.posOf(n), n, dag.PortDefault, unit)
}

func (gen *generator) emitSeparate(n *dag.Node, op *elab.Op, auxRes map[string]int) error {
	gen.sepN++
	unitName := fmt.Sprintf("separator%d", (gen.sepN-1)%gen.cfg.NumSeparators+1)
	unit := ais.FU(unitName)
	// Auxiliary loads: matrix and pusher drawn whole from their
	// reservoirs (loaded lazily once per fluid).
	for _, aux := range []struct{ name, sub string }{
		{op.Matrix, "matrix"}, {op.Pusher, "pusher"},
	} {
		if aux.name == "" {
			continue
		}
		r, ok := auxRes[aux.name]
		if !ok {
			var err error
			r, err = gen.allocRes("aux/" + aux.name)
			if err != nil {
				return err
			}
			auxRes[aux.name] = r
			gen.emit(ais.Instr{
				Op:       ais.Input,
				Operands: []ais.Operand{ais.Res(r), ais.IP(gen.res.InputPort[aux.name])},
				Edge:     -1, Node: -1, Comment: aux.name,
			})
		}
		gen.emit(ais.Instr{
			Op:       ais.Move,
			Operands: []ais.Operand{ais.FUPort(unitName, aux.sub), ais.Res(r)},
			Edge:     -1, Node: -1,
		})
	}
	for _, e := range n.In() {
		if err := gen.moveIn(e, unit); err != nil {
			return err
		}
	}
	var aop ais.Opcode
	switch op.Sep {
	case ast.SepAffinity:
		aop = ais.SeparateAF
	case ast.SepLC:
		aop = ais.SeparateLC
	case ast.SepCE:
		aop = ais.SeparateCE
	case ast.SepSize:
		aop = ais.SeparateSize
	}
	gen.emit(ais.Instr{
		Op:       aop,
		Operands: []ais.Operand{unit, ais.Num(op.TimeSec)},
		Edge:     -1, Node: n.ID(),
	})
	pos := gen.posOf(n)
	if err := gen.placePort(pos, n, dag.PortEffluent, unitName, "out1"); err != nil {
		return err
	}
	return gen.placePort(pos, n, dag.PortWaste, unitName, "out2")
}

// placePort is place for a named separator output port.
func (gen *generator) placePort(pos int, n *dag.Node, port, unitName, sub string) error {
	k := key(n.ID(), port)
	consumers := 0
	var only *dag.Node
	for _, e := range n.Out() {
		if e.Port == port {
			consumers++
			only = e.To
		}
	}
	if consumers == 0 {
		return nil
	}
	if !gen.cfg.NoForwarding && consumers == 1 &&
		pos+1 < len(gen.nodes) && gen.nodes[pos+1] == only && !sameUnit(n, only) {
		gen.setLocation(k, loc{res: -1, unit: unitName, sub: sub})
		return nil
	}
	r, err := gen.allocRes(k)
	if err != nil {
		return err
	}
	gen.setLocation(k, loc{res: r})
	gen.emit(ais.Instr{
		Op:       ais.Move,
		Operands: []ais.Operand{ais.Res(r), ais.FUPort(unitName, sub)},
		Edge:     -1, Node: -1, Comment: n.Name + "." + port,
	})
	return nil
}

func (gen *generator) emitSense(n *dag.Node, op *elab.Op) error {
	unit := ais.FU("sensor1")
	for _, e := range n.In() {
		if err := gen.moveIn(e, unit); err != nil {
			return err
		}
	}
	aop := ais.SenseOD
	if op.SenseMode == ast.SenseFluorescence {
		aop = ais.SenseFL
	}
	gen.emit(ais.Instr{
		Op:       aop,
		Operands: []ais.Operand{unit, ais.Reg(gen.ep.Slots[op.ResultSlot])},
		Edge:     -1, Node: n.ID(),
	})
	return nil
}

func (gen *generator) emitOutput(n *dag.Node, op *elab.Op) error {
	gen.outPortN++
	for _, e := range n.In() {
		src, err := gen.srcOperand(e)
		if err != nil {
			return err
		}
		gen.emit(ais.Instr{
			Op:       ais.Output,
			Operands: []ais.Operand{ais.OP(gen.outPortN), src},
			Edge:     e.ID(), Node: n.ID(),
		})
	}
	_ = op
	return nil
}

// emitGuards compiles guard conditions to dry code ending in conditional
// skips to label.
func (gen *generator) emitGuards(guards []elab.Guard, label string) {
	for _, g := range guards {
		r := gen.compileExpr(g.Cond)
		if g.Negate {
			gen.emit(ais.Instr{Op: ais.DryNot, Operands: []ais.Operand{r}, Edge: -1, Node: -1})
		}
		gen.emit(ais.Instr{Op: ais.DryJZ, Operands: []ais.Operand{r, ais.Lbl(label)}, Edge: -1, Node: -1})
	}
}

func (gen *generator) emitDryOp(op *elab.Op) {
	skip := ""
	if len(op.Guards) > 0 {
		skip = gen.label("skip")
		gen.emitGuards(op.Guards, skip)
	}
	r := gen.compileExpr(op.DryExpr)
	gen.emit(ais.Instr{
		Op:       ais.DryMov,
		Operands: []ais.Operand{ais.Reg(gen.ep.Slots[op.ResultSlot]), r},
		Edge:     -1, Node: -1,
	})
	if skip != "" {
		gen.prog.Labels[skip] = len(gen.prog.Instrs)
	}
}

// compileExpr lowers an ExprIR into dry instructions, returning the
// register holding the result.
func (gen *generator) compileExpr(e elab.ExprIR) ais.Operand {
	switch e := e.(type) {
	case elab.ConstIR:
		t := gen.temp()
		gen.emit(ais.Instr{Op: ais.DryMov, Operands: []ais.Operand{t, ais.Num(float64(e))}, Edge: -1, Node: -1})
		return t
	case elab.SlotIR:
		t := gen.temp()
		gen.emit(ais.Instr{Op: ais.DryMov, Operands: []ais.Operand{t, ais.Reg(gen.ep.Slots[e])}, Edge: -1, Node: -1})
		return t
	case elab.BinIR:
		l := gen.compileExpr(e.L)
		r := gen.compileExpr(e.R)
		two := func(op ais.Opcode) ais.Operand {
			gen.emit(ais.Instr{Op: op, Operands: []ais.Operand{l, r}, Edge: -1, Node: -1})
			return l
		}
		switch e.Op {
		case token.PLUS:
			return two(ais.DryAdd)
		case token.MINUS:
			return two(ais.DrySub)
		case token.STAR:
			return two(ais.DryMul)
		case token.SLASH:
			return two(ais.DryDiv)
		case token.PERCENT:
			return two(ais.DryMod)
		case token.LT:
			return two(ais.DryLT)
		case token.LE:
			return two(ais.DryLE)
		case token.EQ:
			return two(ais.DryEQ)
		case token.NE:
			t := two(ais.DryEQ)
			gen.emit(ais.Instr{Op: ais.DryNot, Operands: []ais.Operand{t}, Edge: -1, Node: -1})
			return t
		case token.GT: // l > r  ⇔  r < l
			gen.emit(ais.Instr{Op: ais.DryLT, Operands: []ais.Operand{r, l}, Edge: -1, Node: -1})
			return r
		case token.GE: // l >= r ⇔ !(l < r)
			gen.emit(ais.Instr{Op: ais.DryLT, Operands: []ais.Operand{l, r}, Edge: -1, Node: -1})
			gen.emit(ais.Instr{Op: ais.DryNot, Operands: []ais.Operand{l}, Edge: -1, Node: -1})
			return l
		default:
			panic(fmt.Sprintf("codegen: unsupported dry operator %v", e.Op))
		}
	default:
		panic(fmt.Sprintf("codegen: unsupported expression %T", e))
	}
}

// DryInit returns the elaborated program's compile-time-known initial
// dry-register bindings keyed by register name — the values
// aquacore.Machine.SetDry applies before execution and the registers
// aisverify treats as defined at entry. fluidc, fluidvm, and the
// verifier all consume the same map so the simulated and verified entry
// states cannot drift apart.
func DryInit(ep *elab.Program) map[string]float64 {
	init := make(map[string]float64, len(ep.Init))
	for slot, v := range ep.Init {
		init[ep.Slots[slot]] = v
	}
	return init
}
