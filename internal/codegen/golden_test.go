package codegen_test

import (
	"strings"
	"testing"

	"aquavol/internal/codegen"
	"aquavol/internal/lang"
)

// Golden listing: the generated code for a two-mix assay is pinned
// instruction by instruction. This guards the emission order, operand
// syntax, storage-less forwarding, and flush behavior against silent
// regressions (compare the shape of the paper's Fig. 9(b)).
func TestGoldenListing(t *testing.T) {
	src := `ASSAY demo START
fluid A, B, keep;
VAR r1, r2;
keep = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL keep INTO r1;
MIX A AND B FOR 20;
SENSE OPTICAL it INTO r2;
END`
	ep, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(`
demo{
  input s1, ip1 ;A
  input s2, ip2 ;B
  move mixer1, s1, 0.2
  move mixer1, s2, 0.8
  mix mixer1, 10
  move sensor1, mixer1, 1
  sense.OD sensor1, r1
  move mixer1, s1, 0.5
  move mixer1, s2, 0.5
  mix mixer1, 20
  move sensor1, mixer1, 1
  sense.OD sensor1, r2
  halt
}`)
	got := strings.TrimSpace(cg.Prog.String())
	if got != want {
		t.Errorf("listing drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
