package codegen

import (
	"testing"

	"aquavol/internal/lang/elab"
)

func TestDryInit(t *testing.T) {
	ep := &elab.Program{
		Slots: []string{"n", "thresh", "r"},
		Init:  map[int]float64{0: 3, 1: 0.5},
	}
	got := DryInit(ep)
	want := map[string]float64{"n": 3, "thresh": 0.5}
	if len(got) != len(want) {
		t.Fatalf("DryInit = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("DryInit[%q] = %g, want %g", k, got[k], v)
		}
	}
}
