package codegen_test

import (
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
	"aquavol/internal/lang/elab"
)

func compileFor(t *testing.T, src string) *elab.Program {
	t.Helper()
	ep, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

const chainSrc = `ASSAY chain START
fluid a, b, c;
VAR r;
MIX a AND b FOR 5;
MIX it AND c FOR 5;
INCUBATE it AT 37 FOR 10;
SENSE OPTICAL it INTO r;
END`

// NoForwarding routes every result through a reservoir: more moves, more
// reservoirs, same sensed result.
func TestNoForwardingEquivalence(t *testing.T) {
	ep := compileFor(t, chainSrc)
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nofwd, err := codegen.Generate(ep, ep.Graph, codegen.Config{NoForwarding: true})
	if err != nil {
		t.Fatal(err)
	}
	if nofwd.MaxLiveReservoirs <= fwd.MaxLiveReservoirs {
		t.Errorf("NoForwarding reservoirs %d <= forwarding %d",
			nofwd.MaxLiveReservoirs, fwd.MaxLiveReservoirs)
	}
	run := func(cg *codegen.Result) float64 {
		m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
		res, err := m.Run(cg.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Clean() {
			t.Fatalf("events: %v", res.Events)
		}
		return res.Dry["r"]
	}
	if a, b := run(fwd), run(nofwd); a != b {
		t.Errorf("sensed result differs: forwarding %v vs no-forwarding %v", a, b)
	}
}

// ReuseReservoirs lowers the high-water mark on assays with dead fluids.
func TestReuseReservoirsLowersHighWater(t *testing.T) {
	src := `ASSAY seq START
fluid a, b, c, d;
VAR r1, r2;
x1 = MIX a AND b FOR 5;
y1 = MIX c AND d FOR 5;
MIX x1 AND y1 FOR 5;
SENSE OPTICAL it INTO r1;
x2 = MIX a AND b FOR 5;
y2 = MIX c AND d FOR 5;
MIX x2 AND y2 FOR 5;
SENSE OPTICAL it INTO r2;
END`
	// Declare the intermediates.
	src = "ASSAY seq START\nfluid a, b, c, d, x1, y1, x2, y2;\nVAR r1, r2;\n" +
		src[len("ASSAY seq START\nfluid a, b, c, d;\nVAR r1, r2;\n"):]
	ep := compileFor(t, src)
	plain, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := codegen.Generate(ep, ep.Graph, codegen.Config{ReuseReservoirs: true})
	if err != nil {
		t.Fatal(err)
	}
	if reuse.MaxLiveReservoirs > plain.MaxLiveReservoirs {
		t.Errorf("reuse high-water %d > plain %d", reuse.MaxLiveReservoirs, plain.MaxLiveReservoirs)
	}
}

// Unconsumed leaf products are flushed so the unit starts clean
// (regression for the residue bug found by the pipeline property test).
func TestUnconsumedProductFlushed(t *testing.T) {
	src := `ASSAY waste START
fluid a, b;
VAR r;
MIX a AND b FOR 5;
MIX a AND b IN RATIOS 1:3 FOR 5;
SENSE OPTICAL it INTO r;
END`
	ep := compileFor(t, src)
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	flushes := 0
	for _, in := range cg.Prog.Instrs {
		if in.Op == ais.Output && len(in.Comment) >= 5 && in.Comment[:5] == "flush" {
			flushes++
		}
	}
	if flushes != 1 {
		t.Fatalf("flush instructions = %d, want 1 (first mix unconsumed)", flushes)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("events: %v", res.Events)
	}
}
