package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	recovery "aquavol/internal/recover"
	"aquavol/internal/vfs"
)

// StorageChaosCell is one assay × seed of the storage-fault matrix
// (E14). Every write/sync/create/rename/close/syncdir site of the
// reference run's journal I/O receives one injected fault in turn, and
// every struck run must land in the trichotomy: clean completion, no
// journal at all (creation refused, loudly), or abort with a salvageable
// journal prefix from which a resume reproduces the reference state bit
// for bit. All counts are deterministic in (assay, seed).
type StorageChaosCell struct {
	Assay string `json:"assay"`
	Seed  int64  `json:"seed"`
	// WriteSites/SyncSites/OtherSites are the fault-site counts the
	// reference run enumerated per op class.
	WriteSites int `json:"writeSites"`
	SyncSites  int `json:"syncSites"`
	OtherSites int `json:"otherSites"`
	// Strikes is the total number of injected-fault runs (write sites get
	// an EIO and a short-write variant, sync sites an EIO and a lying
	// variant).
	Strikes int `json:"strikes"`
	// The trichotomy. Clean + NoJournal + Resumed == Strikes when the
	// cell passed.
	Clean     int `json:"clean"`
	NoJournal int `json:"noJournal"`
	Resumed   int `json:"resumed"`
	// FallbackSkipped is how many poisoned rungs the snapshot-fallback
	// ladder case skipped (the newest snapshot is rewritten with a valid
	// CRC but no machine state); FallbackOK reports that the ladder then
	// reproduced the reference state from an earlier snapshot.
	FallbackSkipped int  `json:"fallbackSkipped"`
	FallbackOK      bool `json:"fallbackOK"`
	// EnospcResumeOK reports the disk-full scenario: a sticky ENOSPC
	// mid-run aborts the journaled run, and after "freeing space" (a
	// healthy filesystem) the resume finishes bit-identical.
	EnospcResumeOK bool `json:"enospcResumeOK"`
}

// StorageChaosReport is the machine-readable E14 result. The cells are
// deterministic; the appends/sec figures are wall-clock measurements and
// vary run to run (they are reported in JSON only, never in the table).
type StorageChaosReport struct {
	Experiment    string             `json:"experiment"`
	SnapshotEvery int                `json:"snapshotEvery"`
	Seed          int64              `json:"seed"`
	Cells         []StorageChaosCell `json:"cells"`
	// AppendsPerSecRaw is journal append throughput writing straight to
	// an *os.File; AppendsPerSecVFS goes through the vfs indirection.
	// OverheadPct is the relative cost of the seam.
	AppendsPerSecRaw float64 `json:"appendsPerSecRaw"`
	AppendsPerSecVFS float64 `json:"appendsPerSecVFS"`
	OverheadPct      float64 `json:"overheadPct"`
}

// storageChaosSeed fixes the matrix; like E12 the whole experiment is
// reproducible (and the ci gate runs it twice and diffs the output).
const storageChaosSeed = 7

// storageChaosEvery is E14's snapshot cadence.
const storageChaosEvery = 4

// chaos classification outcomes.
const (
	chaosClean     = "clean"
	chaosNoJournal = "nojournal"
	chaosResumed   = "resumed"
)

// StorageChaosOutcomes runs the E14 matrix over the glucose (static
// plan) and glycomics (staged, measurement-driven) assays.
func StorageChaosOutcomes() ([]StorageChaosCell, error) {
	dir, err := os.MkdirTemp("", "aquavol-storage-chaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	specs := []struct{ name, src string }{
		{"glucose", assays.GlucoseSource},
		{"glycomics", assays.GlycomicsSource},
	}
	var cells []StorageChaosCell
	for _, spec := range specs {
		ca, err := compileForRun(spec.name, spec.src, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		cell, err := storageChaosCell(ca, storageChaosSeed, dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		cells = append(cells, *cell)
	}
	return cells, nil
}

func storageChaosCell(ca *compiledAssay, seed int64, dir string) (*StorageChaosCell, error) {
	p, _ := faults.Preset("moderate")
	opts := recovery.Options{SnapshotEvery: storageChaosEvery}
	cell := &StorageChaosCell{Assay: ca.name, Seed: seed}

	// Reference: a journaled run on a counting (fault-free) Faulty FS
	// fixes the expected final state and enumerates every I/O site.
	counter := vfs.NewFaulty(vfs.OS{}, nil, nil)
	refPath := filepath.Join(dir, ca.name+"-ref.aqj")
	jw, f, err := journal.Create(counter, refPath, true)
	if err != nil {
		return nil, err
	}
	refOpts := opts
	refOpts.Journal = jw
	refOut, refM, err := ca.runRecovered(p, seed, refOpts)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if refOut.Status == recovery.Aborted {
		return nil, fmt.Errorf("reference run aborted: %w", refOut.Err)
	}
	want, err := machineFP(refM)
	if err != nil {
		return nil, err
	}
	boundaries := 0
	if recs, _, err := journal.Recover(vfs.OS{}, refPath); err == nil {
		for _, r := range recs {
			if r.Kind == journal.KindStep {
				boundaries++
			}
		}
	}

	// One strike per site: EIO everywhere, plus the op-specific horrors
	// (short writes tear frames, lying fsyncs drop synced-looking bytes).
	counts := counter.Counts()
	var strikes []vfs.Strike
	for n := uint64(0); n < counts[vfs.OpWrite]; n++ {
		strikes = append(strikes,
			vfs.Strike{Op: vfs.OpWrite, N: n},
			vfs.Strike{Op: vfs.OpWrite, N: n, Short: true})
	}
	for n := uint64(0); n < counts[vfs.OpSync]; n++ {
		strikes = append(strikes,
			vfs.Strike{Op: vfs.OpSync, N: n},
			vfs.Strike{Op: vfs.OpSync, N: n, Lying: true})
	}
	for _, op := range []vfs.Op{vfs.OpCreate, vfs.OpRename, vfs.OpSyncDir, vfs.OpClose} {
		for n := uint64(0); n < counts[op]; n++ {
			strikes = append(strikes, vfs.Strike{Op: op, N: n})
		}
	}
	cell.WriteSites = int(counts[vfs.OpWrite])
	cell.SyncSites = int(counts[vfs.OpSync])
	cell.OtherSites = int(counts[vfs.OpCreate] + counts[vfs.OpRename] + counts[vfs.OpSyncDir] + counts[vfs.OpClose])
	cell.Strikes = len(strikes)

	path := filepath.Join(dir, ca.name+"-strike.aqj")
	for _, strike := range strikes {
		class, err := ca.strikeOutcome(p, seed, opts, path, strike, want)
		if err != nil {
			return nil, fmt.Errorf("strike %s: %w", strike, err)
		}
		switch class {
		case chaosClean:
			cell.Clean++
		case chaosNoJournal:
			cell.NoJournal++
		case chaosResumed:
			cell.Resumed++
		}
	}

	// Disk-full scenario: the device fills mid-run and stays full; the
	// run fail-stops, space is freed (a healthy FS), and the resume
	// completes bit-identical.
	enospc := vfs.Strike{Op: vfs.OpWrite, N: counts[vfs.OpWrite] / 2, Err: vfs.ErrNoSpace, Sticky: true}
	class, err := ca.strikeOutcome(p, seed, opts, path, enospc, want)
	if err != nil {
		return nil, fmt.Errorf("sticky ENOSPC: %w", err)
	}
	cell.EnospcResumeOK = class == chaosResumed

	skipped, ok, err := ca.fallbackLadderCase(p, seed, opts, dir, boundaries, want)
	if err != nil {
		return nil, fmt.Errorf("fallback ladder: %w", err)
	}
	cell.FallbackSkipped, cell.FallbackOK = skipped, ok
	return cell, nil
}

// strikeOutcome runs one journaled execution with a single injected
// storage fault and classifies the result against the trichotomy,
// erroring on any fourth outcome (a silent divergence, an abort that
// does not wrap ErrAborted, an unsalvageable journal).
func (ca *compiledAssay) strikeOutcome(p faults.Profile, seed int64, opts recovery.Options,
	path string, strike vfs.Strike, want string) (string, error) {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return "", err
	}
	fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{strike}, nil)
	jw, f, err := journal.Create(fsys, path, false)
	if err != nil {
		// Creation failed loudly: the run never starts journaled. The
		// atomicity contract says path holds either nothing or a complete
		// empty journal (the strike hit after the rename) — never a
		// half-written header.
		if st, serr := os.Stat(path); serr == nil && st.Size() != 0 && st.Size() != journal.HeaderSize {
			return "", fmt.Errorf("failed creation left %d bytes at %s", st.Size(), path)
		}
		return chaosNoJournal, nil
	}
	ropts := opts
	ropts.Journal = jw
	out, m, err := ca.runRecovered(p, seed, ropts)
	if err != nil {
		return "", err
	}
	// A struck close fires here; the run itself has already finished, so
	// the error is reported but changes nothing.
	f.Close() //fluidvet:allow syncerr close is itself a strike site; every append was already fsynced

	if out.Status != recovery.Aborted {
		got, err := machineFP(m)
		if err != nil {
			return "", err
		}
		if got != want {
			return "", fmt.Errorf("non-aborted run diverged from reference")
		}
		return chaosClean, nil
	}
	if !errors.Is(out.Err, recovery.ErrAborted) {
		return "", fmt.Errorf("aborted outcome error does not wrap ErrAborted: %w", out.Err)
	}
	// The journal's good prefix must salvage on the now-healthy real
	// filesystem, and the resume must land on the reference state.
	recs, _, err := journal.Recover(vfs.OS{}, path)
	if err != nil {
		return "", fmt.Errorf("salvaging struck journal: %w", err)
	}
	var m2 *aquacore.Machine
	out2, _, err := recovery.ResumeFallback(
		func() (*aquacore.Machine, error) {
			mm, err := ca.newMachine(p, seed)
			m2 = mm
			return mm, err
		},
		ca.cg.Prog, ca.compiled(), opts, recovery.Snapshots(recs), nil)
	if err != nil {
		return "", fmt.Errorf("resume after strike: %w", err)
	}
	if out2.Status == recovery.Aborted {
		return "", fmt.Errorf("resume after strike aborted: %w", out2.Err)
	}
	got, err := machineFP(m2)
	if err != nil {
		return "", err
	}
	if got != want {
		return "", fmt.Errorf("resumed state diverged from reference")
	}
	return chaosResumed, nil
}

// fallbackLadderCase exercises the snapshot ladder end to end on disk: a
// crashed journal's newest snapshot record is rewritten with a valid CRC
// but its machine state dropped — damage the frame checksum cannot see —
// and the resume must skip it, restore the previous snapshot, and still
// finish bit-identical.
func (ca *compiledAssay) fallbackLadderCase(p faults.Profile, seed int64, opts recovery.Options,
	dir string, boundaries int, want string) (skipped int, ok bool, err error) {
	path := filepath.Join(dir, ca.name+"-ladder.aqj")
	jw, f, err := journal.Create(vfs.OS{}, path, true)
	if err != nil {
		return 0, false, err
	}
	copts := opts
	copts.SnapshotEvery = 2
	copts.Journal = jw
	copts.Crash = faults.CrashAt(min(boundaries-1, 9))
	out, _, err := ca.runRecovered(p, seed, copts)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return 0, false, err
	}
	if out.Status != recovery.Aborted {
		return 0, false, fmt.Errorf("crash run finished with status %s", out.Status)
	}

	recs, _, err := journal.Recover(vfs.OS{}, path)
	if err != nil {
		return 0, false, err
	}
	last := -1
	for i, r := range recs {
		if r.Kind == journal.KindSnapshot {
			last = i
		}
	}
	if last < 0 || len(recovery.Snapshots(recs)) < 2 {
		return 0, false, fmt.Errorf("crash journal has too few snapshots for a ladder")
	}
	recs[last].Snapshot.Machine = nil

	// Rewrite the journal with the poisoned record: every frame CRC is
	// valid, the damage is semantic.
	jw2, f2, err := journal.Create(vfs.OS{}, path, true)
	if err != nil {
		return 0, false, err
	}
	for _, r := range recs {
		if err := jw2.Append(r); err != nil {
			f2.Close() //fluidvet:allow syncerr error path; the append failure being returned supersedes any close error
			return 0, false, err
		}
	}
	if err := f2.Close(); err != nil {
		return 0, false, err
	}

	// End-to-end resume: reopen for append, walk the ladder.
	recs2, _, w, f3, err := journal.OpenAppend(vfs.OS{}, path)
	if err != nil {
		return 0, false, err
	}
	ropts := opts
	ropts.SnapshotEvery = 2
	ropts.Journal = w
	snaps := recovery.Snapshots(recs2)
	var m *aquacore.Machine
	out2, used, err := recovery.ResumeFallback(
		func() (*aquacore.Machine, error) {
			mm, merr := ca.newMachine(p, seed)
			m = mm
			return mm, merr
		},
		ca.cg.Prog, ca.compiled(), ropts, snaps,
		func(string) { skipped++ })
	if cerr := f3.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return skipped, false, err
	}
	// The chosen-rung announcement is a note too; only the rungs before
	// it were skipped.
	skipped--
	got, err := machineFP(m)
	if err != nil {
		return skipped, false, err
	}
	ok = used != nil && used == snaps[len(snaps)-2] && skipped == 1 &&
		out2.Status != recovery.Aborted && got == want
	return skipped, ok, nil
}

// journalOverhead measures append throughput with and without the vfs
// seam: the same record stream written through journal.Create(vfs.OS)
// versus a Writer handed the *os.File directly.
func journalOverhead(n int) (raw, viaVFS float64, err error) {
	dir, err := os.MkdirTemp("", "aquavol-journal-overhead")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	rec := &journal.Record{Kind: journal.KindStep, Step: &journal.Step{Boundary: 1, PC: 1, Next: 2, Draws: 3}}

	run := func(append func(*journal.Record) error) (float64, error) {
		start := time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		for i := 0; i < n; i++ {
			if err := append(rec); err != nil {
				return 0, err
			}
		}
		secs := time.Since(start).Seconds() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		if secs <= 0 {
			secs = 1e-9
		}
		return float64(n) / secs, nil
	}

	rawFile, err := os.Create(filepath.Join(dir, "raw.aqj"))
	if err != nil {
		return 0, 0, err
	}
	rawW, err := journal.NewWriter(rawFile)
	if err != nil {
		return 0, 0, err
	}
	raw, err = run(rawW.Append)
	if cerr := rawFile.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return 0, 0, err
	}

	vfsW, vfsFile, err := journal.Create(vfs.OS{}, filepath.Join(dir, "vfs.aqj"), false)
	if err != nil {
		return 0, 0, err
	}
	viaVFS, err = run(vfsW.Append)
	if cerr := vfsFile.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return raw, viaVFS, err
}

// StorageChaos runs E14 and renders the deterministic table plus the
// JSON report (which adds the wall-clock journaling-overhead figures).
func StorageChaos() (*Table, *StorageChaosReport, error) {
	cells, err := StorageChaosOutcomes()
	if err != nil {
		return nil, nil, err
	}
	report := &StorageChaosReport{
		Experiment:    "storage-chaos",
		SnapshotEvery: storageChaosEvery,
		Seed:          storageChaosSeed,
		Cells:         cells,
	}
	if raw, viaVFS, err := journalOverhead(400); err == nil && raw > 0 && viaVFS > 0 {
		report.AppendsPerSecRaw = raw
		report.AppendsPerSecVFS = viaVFS
		report.OverheadPct = 100 * (raw/viaVFS - 1)
	}

	verdict := func(ok bool) string {
		if ok {
			return "recovered"
		}
		return "FAILED"
	}
	t := &Table{
		ID:    "E14/StorageChaos",
		Title: "storage-fault matrix: one injected fault at every journal I/O site",
		Header: []string{"assay", "seed", "sites (w/s/other)", "strikes",
			"clean", "no journal", "resumed", "ENOSPC+resume", "snapshot fallback"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Assay, fmt.Sprintf("%d", c.Seed),
			fmt.Sprintf("%d/%d/%d", c.WriteSites, c.SyncSites, c.OtherSites),
			fmt.Sprintf("%d", c.Strikes),
			fmt.Sprintf("%d", c.Clean),
			fmt.Sprintf("%d", c.NoJournal),
			fmt.Sprintf("%d", c.Resumed),
			verdict(c.EnospcResumeOK),
			fmt.Sprintf("%s (skipped %d)", verdict(c.FallbackOK), c.FallbackSkipped),
		})
	}
	t.Notes = append(t.Notes,
		"every write site is struck with EIO and a short write, every sync site with EIO and a lying fsync (reported failure + dropped unsynced bytes), every create/rename/close/syncdir site with EIO",
		"trichotomy: clean completion, refused journal creation (nothing half-made on disk), or fail-stop abort whose salvaged journal prefix resumes bit-identical to the reference",
		"ENOSPC+resume: a sticky device-full fault mid-run, then resume on a healthy filesystem",
		"snapshot fallback: the newest snapshot record is rewritten CRC-valid but without machine state; the resume ladder must skip it and restore the previous snapshot",
		fmt.Sprintf("snapshot cadence %d boundaries; fixed seed %d; the table is byte-reproducible (timing lives only in the JSON report)", storageChaosEvery, storageChaosSeed))
	return t, report, nil
}
