package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"aquavol/internal/faults"
	recovery "aquavol/internal/recover"
)

// ReplanStrategies are the repair configurations E13 compares: in-place
// retries only, retries + regeneration (the previous default), and
// retries + adaptive replanning with regeneration as the fallback.
func ReplanStrategies() []struct {
	Name string
	Opts recovery.Options
} {
	return []struct {
		Name string
		Opts recovery.Options
	}{
		{"retry-only", recovery.Options{DisableRegen: true}},
		{"regen", recovery.Options{}},
		{"replan", recovery.Options{EnableReplan: true}},
	}
}

// replanProfiles is E13's fault matrix. Harsh is excluded: its failure
// rate aborts runs for reasons no volume repair can address, which
// would only add noise to the reagent comparison.
func replanProfiles() []string { return []string{"mild", "moderate"} }

// ReplanCell is one assay × profile × strategy aggregate of E13.
type ReplanCell struct {
	Assay    string
	Profile  string
	Strategy string
	// Completed/Degraded/Aborted partition the seeded runs by status.
	Completed int
	Degraded  int
	Aborted   int
	// Repair totals across all seeds.
	Retries int
	Replans int
	Regens  int
	// ReagentNl is the total fluid drawn from input ports across all
	// seeds — the metric replanning exists to reduce.
	ReagentNl float64
	// ResumeChecks / ResumeIdentical report the crash-resume audit: each
	// replanned run is killed at a boundary inside its replanned region
	// and resumed from its journal; the resumed machine state must match
	// the uninterrupted run's fingerprint bit for bit.
	ResumeChecks    int
	ResumeIdentical int
}

// replanSeed fixes the per-run seed schedule (same as Robustness, so the
// two tables describe the same fault draws).
func replanSeed(s int) int64 { return int64(1000*s + 7) }

// ReplanOutcomes runs the E13 Monte-Carlo: every paper assay × fault
// profile × seed executes once per repair strategy, measuring completion
// and total input reagent. For the replan strategy, every run that
// actually replanned is additionally killed at its first replan boundary
// and resumed from a journal, verifying that resume reproduces the
// patched plan bit-identically.
func ReplanOutcomes(seeds int) ([]ReplanCell, error) {
	if seeds <= 0 {
		seeds = 5
	}
	cas, err := robustnessAssays()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "aquavol-replan")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var cells []ReplanCell
	for _, ca := range cas {
		for _, pname := range replanProfiles() {
			p, _ := faults.Preset(pname)
			for _, strat := range ReplanStrategies() {
				cell := ReplanCell{Assay: ca.name, Profile: pname, Strategy: strat.Name}
				for s := 0; s < seeds; s++ {
					seed := replanSeed(s)
					out, m, err := ca.runRecovered(p, seed, strat.Opts)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%s seed %d: %w", ca.name, pname, strat.Name, seed, err)
					}
					switch out.Status {
					case recovery.Completed:
						cell.Completed++
					case recovery.CompletedDegraded:
						cell.Degraded++
					default:
						cell.Aborted++
					}
					cell.Retries += out.Retries
					cell.Replans += out.Replans
					cell.Regens += out.Regens
					cell.ReagentNl += out.Result.InputNl

					// Crash-resume audit at the first replan boundary.
					if out.Status != recovery.Aborted && len(out.ReplanBoundaries) > 0 {
						cell.ResumeChecks++
						want, err := machineFP(m)
						if err != nil {
							return nil, err
						}
						path := filepath.Join(dir, fmt.Sprintf("%s-%s-%d.aqj", ca.name, pname, seed))
						if err := crashRun(ca, p, seed, strat.Opts, path, out.ReplanBoundaries[0]); err != nil {
							return nil, fmt.Errorf("%s/%s seed %d: crash at replan boundary %d: %w",
								ca.name, pname, seed, out.ReplanBoundaries[0], err)
						}
						got, err := resumeFromFile(ca, p, seed, strat.Opts, path)
						if err != nil {
							return nil, fmt.Errorf("%s/%s seed %d: resume: %w", ca.name, pname, seed, err)
						}
						if got == want {
							cell.ResumeIdentical++
						}
					}
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// Replan renders E13: adaptive replanning versus regeneration versus
// retry-only, by completion and total input reagent.
func Replan(seeds int) *Table {
	if seeds <= 0 {
		seeds = 5
	}
	cells, err := ReplanOutcomes(seeds)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:    "E13/Replan",
		Title: fmt.Sprintf("adaptive replanning vs regeneration, %d seeds per cell", seeds),
		Header: []string{"assay", "profile", "strategy", "completed", "degraded", "aborted",
			"retries", "replans", "regens", "reagent", "replan resumes"},
	}
	for _, c := range cells {
		resumes := "-"
		if c.ResumeChecks > 0 {
			resumes = fmt.Sprintf("%d/%d identical", c.ResumeIdentical, c.ResumeChecks)
		}
		t.Rows = append(t.Rows, []string{
			c.Assay, c.Profile, c.Strategy,
			fmt.Sprintf("%d/%d", c.Completed, seeds),
			fmt.Sprintf("%d/%d", c.Degraded, seeds),
			fmt.Sprintf("%d/%d", c.Aborted, seeds),
			fmt.Sprintf("%d", c.Retries),
			fmt.Sprintf("%d", c.Replans),
			fmt.Sprintf("%d", c.Regens),
			fmtVol(c.ReagentNl),
			resumes,
		})
	}
	t.Notes = append(t.Notes,
		"reagent: total fluid drawn from input ports across all seeds — replanning shrinks the residual instead of re-brewing it",
		"replan resumes: each replanned run is killed at its first replan boundary and resumed; the resumed machine state must equal the uninterrupted run's fingerprint",
		"same seed schedule as E10, so both tables describe identical fault draws")
	return t
}
