package bench

import (
	"fmt"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/budget"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	"aquavol/internal/lang"
	"aquavol/internal/lang/elab"
	recovery "aquavol/internal/recover"
)

// compiledAssay is a ready-to-execute assay: compiled, volume-managed, and
// code-generated. Staged assays keep only the compile artifacts; their
// run-time plan state is rebuilt per run (it is mutated by execution).
type compiledAssay struct {
	name   string
	ep     *elab.Program
	cfg    core.Config
	cg     *codegen.Result
	plan   *core.Plan // nil for staged assays
	staged bool
}

// compileForRun mirrors fluidvm's pipeline: Manage for static assays,
// staged planning for unknown-volume ones; forwarding is disabled for LP
// plans and for any margin > 0 (both leave excess in units).
func compileForRun(name, src string, margin float64) (*compiledAssay, error) {
	ep, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	c := core.DefaultConfig()
	c.SafetyMargin = margin
	ca := &compiledAssay{name: name, ep: ep, cfg: c}
	g := ep.Graph
	for _, n := range g.Nodes() {
		if n != nil && n.Unknown && !n.IsLeaf() {
			ca.staged = true
		}
	}
	noFwd := margin > 0
	if ca.staged {
		if _, err := core.NewStagedPlan(g, c); err != nil {
			return nil, err
		}
		noFwd = true // per-part solves may fall back to LP at run time
	} else {
		res, err := core.Manage(g, c, core.ManageOptions{})
		if err != nil {
			return nil, err
		}
		g = res.Graph
		ca.plan = res.Plan
		noFwd = noFwd || res.UsedLP
	}
	cg, err := codegen.Generate(ep, g, codegen.Config{NoForwarding: noFwd})
	if err != nil {
		return nil, err
	}
	ca.cg = cg
	return ca, nil
}

// newMachine builds a fresh machine for one run under profile p and seed.
func (ca *compiledAssay) newMachine(p faults.Profile, seed int64) (*aquacore.Machine, error) {
	return ca.newBudgetedMachine(p, seed, nil)
}

// newBudgetedMachine is newMachine with a work-budget meter wired into
// the machine config — the bench side of the E15 cancellation matrix.
func (ca *compiledAssay) newBudgetedMachine(p faults.Profile, seed int64, meter *budget.Meter) (*aquacore.Machine, error) {
	var src aquacore.VolumeSource
	g := ca.ep.Graph
	if ca.staged {
		sp, err := core.NewStagedPlan(ca.ep.Graph, ca.cfg)
		if err != nil {
			return nil, err
		}
		ss, err := aquacore.NewStagedSource(sp, nil)
		if err != nil {
			return nil, err
		}
		src = ss
	} else {
		src = aquacore.PlanSource{Plan: ca.plan}
		g = ca.plan.Graph
	}
	acfg := aquacore.Config{Budget: meter}
	if p.Enabled() {
		acfg.Faults = faults.New(p, seed)
	}
	m := aquacore.New(acfg, g, src)
	m.SetDry(codegen.DryInit(ca.ep))
	return m, nil
}

// runRecovered executes one seeded run under the recovery runtime,
// returning the machine too so callers can fingerprint its final state.
func (ca *compiledAssay) runRecovered(p faults.Profile, seed int64, opts recovery.Options) (*recovery.Outcome, *aquacore.Machine, error) {
	m, err := ca.newMachine(p, seed)
	if err != nil {
		return nil, nil, err
	}
	return recovery.Run(m, ca.cg.Prog, ca.compiled(), opts), m, nil
}

// resumeRecovered restores snap onto a fresh machine and continues the
// run — the bench side of the chaos harness.
func (ca *compiledAssay) resumeRecovered(p faults.Profile, seed int64, opts recovery.Options,
	snap *journal.Snapshot) (*recovery.Outcome, *aquacore.Machine, error) {
	m, err := ca.newMachine(p, seed)
	if err != nil {
		return nil, nil, err
	}
	out, err := recovery.Resume(m, ca.cg.Prog, ca.compiled(), opts, snap)
	if err != nil {
		return nil, nil, err
	}
	return out, m, nil
}

// compiled bundles the artifacts the recovery runtime's repair
// strategies need (regeneration and replanning).
func (ca *compiledAssay) compiled() *recovery.Compiled {
	return &recovery.Compiled{Graph: ca.runGraph(), Clusters: ca.cg.Clusters, VesselOf: ca.cg.VesselOf}
}

// runGraph is the graph execution sees: the managed one for static plans.
func (ca *compiledAssay) runGraph() *dag.Graph {
	if ca.plan != nil {
		return ca.plan.Graph
	}
	return ca.ep.Graph
}

// robustnessAssays compiles the three paper assays for fault sweeps.
func robustnessAssays() ([]*compiledAssay, error) {
	specs := []struct{ name, src string }{
		{"glucose", assays.GlucoseSource},
		{"glycomics", assays.GlycomicsSource},
		{"enzyme", assays.EnzymeSource(2)},
	}
	var out []*compiledAssay
	for _, s := range specs {
		ca, err := compileForRun(s.name, s.src, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		out = append(out, ca)
	}
	return out, nil
}

// Robustness is the Monte-Carlo fault sweep: every paper assay × every
// fault preset × seeds runs under the recovery runtime, reporting how
// often execution completes (cleanly or degraded), how much repair it
// took, and what the faults cost in fluid and time.
func Robustness(seeds int) *Table {
	if seeds <= 0 {
		seeds = 5
	}
	cas, err := robustnessAssays()
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:    "E10/Robust",
		Title: fmt.Sprintf("fault injection + recovery, %d seeds per cell", seeds),
		Header: []string{"assay", "profile", "completed", "degraded", "aborted",
			"retries", "regens", "fault loss", "wet time"},
	}
	for _, ca := range cas {
		for _, pname := range faults.Presets() {
			p, _ := faults.Preset(pname)
			var completed, degraded, aborted int
			var retries, regens, loss, wet float64
			for s := 0; s < seeds; s++ {
				out, _, err := ca.runRecovered(p, int64(1000*s+7), recovery.Options{})
				if err != nil {
					panic(err)
				}
				switch out.Status {
				case recovery.Completed:
					completed++
				case recovery.CompletedDegraded:
					degraded++
				default:
					aborted++
				}
				retries += float64(out.Retries)
				regens += float64(out.Regens)
				loss += out.Result.FaultLoss()
				wet += out.Result.WetSeconds
			}
			n := float64(seeds)
			t.Rows = append(t.Rows, []string{
				ca.name, pname,
				fmt.Sprintf("%d/%d", completed, seeds),
				fmt.Sprintf("%d/%d", degraded, seeds),
				fmt.Sprintf("%d/%d", aborted, seeds),
				fmt.Sprintf("%.1f", retries/n),
				fmt.Sprintf("%.1f", regens/n),
				fmtVol(loss / n),
				fmt.Sprintf("%.0f s", wet/n),
			})
		}
	}
	t.Notes = append(t.Notes,
		"recovery: bounded in-place retries + backward-slice regeneration (internal/recover)",
		"reproducible: each cell is a fixed seed sequence; rerunning the table is bit-identical")
	return t
}

// marginSweepProfile is the deterministic loss-only profile MarginSweep
// uses: dead volume and evaporation deplete fluids, but nothing is random
// (no jitter, no failures), so each margin either always or never
// completes.
func marginSweepProfile() faults.Profile {
	return faults.Profile{DeadVolume: 0.15, EvapRate: 2e-5}
}

// MarginEpsilons is the sweep range of the safety-margin experiment.
var MarginEpsilons = []float64{0, 0.05, 0.1, 0.2}

// MarginOutcome reports one margin-sweep cell.
type MarginOutcome struct {
	Margin    float64
	Status    recovery.Status
	RanOut    int
	FaultLoss float64
}

// MarginSweepOutcomes runs the glucose assay under the deterministic
// loss-only profile with recovery DISABLED at each safety margin: the
// margin alone must absorb the losses. Completion is monotonically
// non-decreasing in the margin.
func MarginSweepOutcomes() ([]MarginOutcome, error) {
	var out []MarginOutcome
	for _, eps := range MarginEpsilons {
		ca, err := compileForRun("glucose", assays.GlucoseSource, eps)
		if err != nil {
			return nil, err
		}
		o, _, err := ca.runRecovered(marginSweepProfile(), 0,
			recovery.Options{DisableRetry: true, DisableRegen: true})
		if err != nil {
			return nil, err
		}
		ranOut := 0
		for _, e := range o.Result.Events {
			if e.Kind == aquacore.EventRanOut {
				ranOut++
			}
		}
		out = append(out, MarginOutcome{
			Margin: eps, Status: o.Status, RanOut: ranOut,
			FaultLoss: o.Result.FaultLoss(),
		})
	}
	return out, nil
}

// MarginSweep renders MarginSweepOutcomes as a table.
func MarginSweep() *Table {
	outs, err := MarginSweepOutcomes()
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:     "E11/Margin",
		Title:  "safety-margin sweep, glucose, deterministic loss-only faults, recovery off",
		Header: []string{"margin", "status", "ran-out events", "fault loss"},
	}
	for _, o := range outs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*o.Margin),
			o.Status.String(),
			fmt.Sprintf("%d", o.RanOut),
			fmtVol(o.FaultLoss),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("profile %s: losses are deterministic, so completion depends only on the margin", marginSweepProfile()),
		"over-provisioning by (1+margin) absorbs dead-volume and evaporation losses without replanning")
	return t
}
