package bench

import (
	"fmt"
	"math"
	"sort"

	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/lp"
	"aquavol/internal/regen"
)

// Ablation experiments for the design choices DESIGN.md calls out: how
// deep to cascade, how many replicas to make, which regeneration repair
// strategy the baseline would use, and how the LP's output-skew bound
// trades fairness against total production.

// CascadeDepth sweeps the cascade depth for the enzyme assay's 1:999
// dilutions. Depth 3 gives integral 1:9 stages (the paper's choice);
// depth 2 gives non-integral 1:30.6 stages that also clear the least
// count but with less headroom per stage and fewer extra uses of the
// diluent.
func CascadeDepth() *Table {
	c := cfg()
	t := &Table{
		ID:     "A1/cascade-depth",
		Title:  "Cascade depth for the 1:999 dilutions (enzyme assay, before replication)",
		Header: []string{"levels", "stage ratio", "diluent Vnorm", "min dispense", "extra wet nodes", "feasible"},
	}
	base := assays.EnzymeDAG(4)
	baseNodes := wetCount(base)
	for levels := 2; levels <= 5; levels++ {
		g := assays.EnzymeDAG(4)
		for _, name := range []string{"inh_dil4", "enz_dil4", "sub_dil4"} {
			if err := g.Cascade(g.NodeByName(name), levels); err != nil {
				panic(err)
			}
		}
		plan, err := core.DAGSolve(g, c, nil)
		if err != nil {
			panic(err)
		}
		dil := g.NodeByName("diluent")
		_, min := plan.MinDispense()
		stage := math.Pow(1000, 1.0/float64(levels)) - 1
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", levels),
			fmt.Sprintf("1:%.3g", stage),
			fmt.Sprintf("%.3g", plan.NodeVnorm[dil.ID()]),
			fmtVol(min),
			fmt.Sprintf("%d", wetCount(g)-baseNodes),
			fmt.Sprintf("%v", plan.Feasible()),
		})
	}
	t.Notes = append(t.Notes,
		"deeper cascades raise the minimum stage dispense but add mixes and diluent uses; none fixes the enzyme assay alone (replication is also needed, or cascading the 1:99s too)")
	return t
}

// ReplicaSweep sweeps the diluent replica count on the cascaded enzyme
// assay: 2 replicas already clear the least count; 3 (the paper's choice)
// adds margin; beyond that the returns diminish as other nodes become the
// bottleneck.
func ReplicaSweep() *Table {
	c := cfg()
	t := &Table{
		ID:     "A2/replica-sweep",
		Title:  "Diluent replica count (enzyme assay, after 1:999 cascading)",
		Header: []string{"replicas", "max Vnorm", "min dispense", "feasible"},
	}
	for copies := 1; copies <= 5; copies++ {
		g := assays.EnzymeDAG(4)
		for _, name := range []string{"inh_dil4", "enz_dil4", "sub_dil4"} {
			if err := g.Cascade(g.NodeByName(name), 3); err != nil {
				panic(err)
			}
		}
		if copies > 1 {
			vn, err := core.ComputeVnorms(g)
			if err != nil {
				panic(err)
			}
			dil := g.NodeByName("diluent")
			if _, err := g.Replicate(dil, copies, balancedByVnorm(dil, vn, copies)); err != nil {
				panic(err)
			}
		}
		plan, err := core.DAGSolve(g, c, nil)
		if err != nil {
			panic(err)
		}
		_, maxV := maxVnorm(plan)
		_, min := plan.MinDispense()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", copies),
			fmt.Sprintf("%.3g", maxV),
			fmtVol(min),
			fmt.Sprintf("%v", plan.Feasible()),
		})
	}
	t.Notes = append(t.Notes,
		"the paper used 3 replicas (one per reagent group, min 196 pl); 2 already suffice at ~131 pl; past the point where the diluent stops being the Vnorm bottleneck, more replicas do not help")
	return t
}

func balancedByVnorm(n *dag.Node, vn *core.Vnorms, copies int) func(*dag.Edge) int {
	loads := make([]float64, copies)
	assign := map[*dag.Edge]int{}
	edges := append([]*dag.Edge(nil), n.Out()...)
	// Descending Vnorm, greedy least-loaded.
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if vn.Edge[edges[j].ID()] > vn.Edge[edges[i].ID()] {
				edges[i], edges[j] = edges[j], edges[i]
			}
		}
	}
	for _, e := range edges {
		min := 0
		for i := 1; i < copies; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		assign[e] = min
		loads[min] += vn.Edge[e.ID()]
	}
	return func(e *dag.Edge) int { return assign[e] }
}

// RegenStrategy compares lazy and eager-slice regeneration repair on the
// unmanaged assays: the fluidic-time overhead either way dwarfs the
// microseconds of proactive planning, which is the paper's core argument.
func RegenStrategy() *Table {
	c := cfg()
	t := &Table{
		ID:    "A3/regen-strategy",
		Title: "Reactive regeneration overhead by repair strategy (no volume management)",
		Header: []string{"assay", "strategy", "triggers", "re-executed ops",
			"overhead vs baseline ops", "extra fluidic time (10 s/op)"},
	}
	for _, a := range []struct {
		name string
		g    *dag.Graph
	}{
		{"Glucose", assays.GlucoseDAG()},
		{"Enzyme", assays.EnzymeDAG(4)},
		{"Enzyme10", assays.EnzymeDAG(10)},
	} {
		for _, s := range []regen.Strategy{regen.Lazy, regen.EagerSlice} {
			rep := regen.Execute(a.g, c, regen.ExecOptions{Strategy: s})
			t.Rows = append(t.Rows, []string{
				a.name, s.String(),
				fmt.Sprintf("%d", rep.Triggers),
				fmt.Sprintf("%d", rep.ReExecutedOps),
				fmt.Sprintf("%.0f%%", 100*rep.OverheadFraction),
				fmt.Sprintf("%.0f s", rep.ExtraFluidicSeconds),
			})
		}
	}
	t.Notes = append(t.Notes,
		"DAGSolve plans regenerate zero times and plan in micro-to-milliseconds on the electronic side (Table 2); regeneration pays in fluidic minutes-to-hours")
	return t
}

// OutputSkewSweep varies the LP's optional output-to-output bound on the
// glucose assay: tight bounds approach DAGSolve's equal outputs, loose
// ones let the objective skew production toward cheap outputs (§3.2's
// motivation for the constraint).
func OutputSkewSweep() *Table {
	t := &Table{
		ID:     "A4/output-skew",
		Title:  "LP output-to-output skew bound vs production balance (glucose)",
		Header: []string{"skew bound", "total output (nl)", "min output", "max output", "max/min"},
	}
	g := assays.GlucoseDAG()
	for _, skew := range []float64{0.01, 0.10, 0.25, 0.50, 0} {
		c := cfg()
		c.OutputSkew = skew
		f, err := core.Formulate(g, c, core.FormulateOptions{}, nil)
		if err != nil {
			panic(err)
		}
		plan, err := f.Solve(lp.Options{})
		if err != nil {
			panic(err)
		}
		outs := plan.OutputVolumes()
		names := make([]string, 0, len(outs))
		for name := range outs {
			names = append(names, name)
		}
		sort.Strings(names)
		total, min, max := 0.0, 1e18, 0.0
		// Summing in sorted-name order keeps the float total bit-identical
		// across runs; map order would perturb its low bits.
		for _, name := range names {
			v := outs[name]
			total += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		label := fmt.Sprintf("±%.0f%%", 100*skew)
		if skew == 0 {
			label = "disabled"
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.1f", total),
			fmt.Sprintf("%.1f", min),
			fmt.Sprintf("%.1f", max),
			fmt.Sprintf("%.2f", max/min),
		})
	}
	t.Notes = append(t.Notes,
		"maximizing total output alone skews production toward the outputs that consume the least of the bottleneck reagent; the paper's ±10% band keeps outputs comparable at a small total-production cost")
	return t
}

func wetCount(g *dag.Graph) int {
	c := 0
	for _, n := range g.Nodes() {
		if n != nil && n.Kind != dag.Excess {
			c++
		}
	}
	return c
}

func maxVnorm(p *core.Plan) (int, float64) {
	best, bestV := -1, 0.0
	for id, v := range p.NodeVnorm {
		if v > bestV {
			best, bestV = id, v
		}
	}
	return best, bestV
}
