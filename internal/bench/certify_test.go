package bench

import (
	"strings"
	"testing"
)

// The acceptance criterion verbatim: a mutation matrix over solver
// outputs in which every mutant is killed with exactly one typed cause.
// certifyMatrix errors on any survivor, untyped kill, or multi-cause
// kill, so a nil error plus full counts IS the 100% kill rate. The
// matrix is enumerated twice in the same test (it is expensive — the
// managed enzyme4 LP certificate re-derives the formulation per mutant)
// to also pin the CI contract that two runs aggregate to byte-identical
// cells.
func TestCertifyMatrixKillsEveryMutantDeterministically(t *testing.T) {
	cells, err := certifyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cell := range cells {
		if cell.Mutants == 0 {
			t.Errorf("%s/%s: empty cell", cell.Case, cell.Field)
		}
		if cell.Killed != cell.Mutants {
			t.Errorf("%s/%s: %d/%d killed", cell.Case, cell.Field, cell.Killed, cell.Mutants)
		}
		total += cell.Mutants
	}
	if total == 0 {
		t.Fatal("mutation matrix is empty")
	}
	// Every solver surface must appear: both dagsolve cases, the LP
	// certificate, the managed hierarchy, and the replan path.
	for _, want := range []string{"fig2/dagsolve", "glucose/dagsolve", "glucose/lp", "enzyme4/manage", "residual/"} {
		found := false
		for _, cell := range cells {
			if cell.Case == want || strings.HasPrefix(cell.Case, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no cells for case %s", want)
		}
	}

	// Second enumeration: the kill table is diffed in CI, so it must be
	// deterministic. The matrix carries no wall-clock data.
	again, err := certifyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(cells) {
		t.Fatalf("cell count %d vs %d across runs", len(cells), len(again))
	}
	for i := range cells {
		if cells[i].Case != again[i].Case || cells[i].Field != again[i].Field ||
			cells[i].Mutants != again[i].Mutants || cells[i].Killed != again[i].Killed ||
			fmtCauses(cells[i].Causes) != fmtCauses(again[i].Causes) {
			t.Errorf("cell %d differs across runs: %+v vs %+v", i, cells[i], again[i])
		}
	}
}
