package bench

import (
	"strings"
	"testing"
	"time"
)

func TestFig5Table(t *testing.T) {
	tbl := Fig5()
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tbl.Rows))
	}
	s := tbl.String()
	if !strings.Contains(s, "100.00") {
		t.Errorf("B should be dispensed 100 nl:\n%s", s)
	}
}

func TestGlucoseTable(t *testing.T) {
	tbl := Glucose()
	s := tbl.String()
	if !strings.Contains(s, "3.3") {
		t.Errorf("expected the 3.3 nl minimum dispense:\n%s", s)
	}
	if !strings.Contains(s, "feasible=true") {
		t.Errorf("glucose must be feasible:\n%s", s)
	}
}

func TestGlycomicsTable(t *testing.T) {
	tbl := Glycomics()
	s := tbl.String()
	if !strings.Contains(s, "4 partitions") {
		t.Errorf("expected 4 partitions:\n%s", s)
	}
}

func TestEnzymeTable(t *testing.T) {
	tbl := Enzyme()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 configurations", len(tbl.Rows))
	}
	// Last column of final row reports the automatic transform count.
	auto := tbl.Rows[4]
	if auto[3] != "true" {
		t.Errorf("automatic hierarchy should reach feasibility: %v", auto)
	}
}

func TestRoundingTable(t *testing.T) {
	tbl := Rounding()
	for _, r := range tbl.Rows {
		if r[3] != "true" {
			t.Errorf("rounding broke feasibility: %v", r)
		}
	}
}

func TestRegenTable(t *testing.T) {
	tbl := Regen()
	// DAGSolve rows must report zero regenerations.
	if tbl.Rows[0][2] != "0" || tbl.Rows[1][2] != "0" {
		t.Errorf("planned regens must be 0: %v", tbl.Rows)
	}
}

func TestScaling(t *testing.T) {
	rows := Scaling(3)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (N=2,3)", len(rows))
	}
	if rows[1].Constraints <= rows[0].Constraints {
		t.Error("constraint count should grow with N")
	}
}

func TestTimeIt(t *testing.T) {
	d := timeIt(func() { time.Sleep(time.Millisecond) })
	if d < 500*time.Microsecond || d > 50*time.Millisecond {
		t.Errorf("timeIt = %v, want ≈1ms", d)
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtVol(0.0098); got != "9.8 pl" {
		t.Errorf("fmtVol = %q", got)
	}
	if got := fmtVol(3.31); got != "3.31 nl" {
		t.Errorf("fmtVol = %q", got)
	}
	if got := fmtDur(1500 * time.Microsecond); !strings.Contains(got, "ms") {
		t.Errorf("fmtDur = %q", got)
	}
}
