package bench

import "testing"

// TestReplanBeatsRegenOnModerate is E13's acceptance criterion: on the
// moderate fault profile, adaptive replanning completes at least as many
// runs as regeneration-only repair while consuming strictly less total
// input reagent, and every replanned run crash-resumes bit-identically
// from a boundary inside its replanned region.
func TestReplanBeatsRegenOnModerate(t *testing.T) {
	const seeds = 3
	cells, err := ReplanOutcomes(seeds)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ assay, strategy string }
	moderate := map[key]ReplanCell{}
	totalReplans := 0
	for _, c := range cells {
		if c.ResumeIdentical != c.ResumeChecks {
			t.Errorf("%s/%s/%s: %d of %d replan crash-resumes diverged",
				c.Assay, c.Profile, c.Strategy, c.ResumeChecks-c.ResumeIdentical, c.ResumeChecks)
		}
		if c.Strategy == "replan" {
			totalReplans += c.Replans
		}
		if c.Profile == "moderate" {
			moderate[key{c.Assay, c.Strategy}] = c
		}
	}
	if totalReplans == 0 {
		t.Fatal("no replans fired anywhere: the strategy under test never ran")
	}
	for _, assay := range []string{"glucose", "glycomics", "enzyme"} {
		regen, ok := moderate[key{assay, "regen"}]
		if !ok {
			t.Fatalf("%s: no regen cell", assay)
		}
		replan, ok := moderate[key{assay, "replan"}]
		if !ok {
			t.Fatalf("%s: no replan cell", assay)
		}
		if got, want := seeds-replan.Aborted, seeds-regen.Aborted; got < want {
			t.Errorf("%s: replan finished %d runs, regen %d", assay, got, want)
		}
		if replan.Completed < regen.Completed {
			t.Errorf("%s: replan completed cleanly %d times, regen %d",
				assay, replan.Completed, regen.Completed)
		}
		if replan.Replans > 0 && replan.ReagentNl >= regen.ReagentNl {
			t.Errorf("%s: replan consumed %.2f nl reagent, regen %.2f — replanning should be strictly cheaper",
				assay, replan.ReagentNl, regen.ReagentNl)
		}
	}
}
