package bench

import "testing"

// The durability acceptance gate: killing a journaled run at EVERY
// instruction boundary of every shipped assay, under randomized fault
// profiles, must resume to a final machine state bit-identical to the
// uninterrupted run's — and damaged journal tails (torn write, bit flip)
// must recover instead of panicking or diverging.
func TestDurabilityMatrixBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix runs hundreds of crash-resume pairs")
	}
	cells, err := DurabilityOutcomes(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty durability matrix")
	}
	for _, c := range cells {
		if c.Boundaries == 0 {
			t.Errorf("%s/%s: no boundaries journaled", c.Assay, c.Profile)
			continue
		}
		if c.Identical != c.Boundaries {
			t.Errorf("%s/%s: only %d/%d resumes bit-identical", c.Assay, c.Profile, c.Identical, c.Boundaries)
		}
		if c.Snapshots == 0 {
			t.Errorf("%s/%s: no snapshots journaled", c.Assay, c.Profile)
		}
		if !c.TornOK {
			t.Errorf("%s/%s: torn-tail journal did not recover to the reference state", c.Assay, c.Profile)
		}
		if !c.FlipOK {
			t.Errorf("%s/%s: bit-flipped journal did not recover to the reference state", c.Assay, c.Profile)
		}
	}
}
