package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestCascadeDepthTable(t *testing.T) {
	tbl := CascadeDepth()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (levels 2-5)", len(tbl.Rows))
	}
	// Depth 3 must show the paper's 1:9 stages.
	if tbl.Rows[1][1] != "1:9" {
		t.Errorf("depth-3 stage ratio = %s, want 1:9", tbl.Rows[1][1])
	}
	// Diluent Vnorm grows with depth (more stages, more diluent uses).
	prev := 0.0
	for _, r := range tbl.Rows {
		v, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Errorf("diluent Vnorm not increasing with depth: %v", tbl.Rows)
		}
		prev = v
	}
}

func TestReplicaSweepTable(t *testing.T) {
	tbl := ReplicaSweep()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	// 1 replica infeasible; 2+ feasible; 3 replicas ≈ 196 pl (paper).
	if tbl.Rows[0][3] != "false" {
		t.Error("1 replica should be infeasible")
	}
	for _, r := range tbl.Rows[1:] {
		if r[3] != "true" {
			t.Errorf("replicas %s should be feasible", r[0])
		}
	}
	if !strings.Contains(tbl.Rows[2][2], "196") {
		t.Errorf("3 replicas min dispense = %s, want ≈196 pl", tbl.Rows[2][2])
	}
}

func TestRegenStrategyTable(t *testing.T) {
	tbl := RegenStrategy()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 assays × 2 strategies)", len(tbl.Rows))
	}
}

func TestOutputSkewTable(t *testing.T) {
	tbl := OutputSkewSweep()
	// Total output grows monotonically as the bound loosens.
	prev := 0.0
	for _, r := range tbl.Rows {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-6 {
			t.Errorf("total output should not shrink as the bound loosens: %v", tbl.Rows)
		}
		prev = v
	}
	// The unconstrained LP is dramatically skewed.
	last := tbl.Rows[len(tbl.Rows)-1]
	ratio, err := strconv.ParseFloat(last[4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 10 {
		t.Errorf("unconstrained max/min = %v, expected heavy skew", ratio)
	}
}
