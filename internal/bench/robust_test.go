package bench

import (
	"reflect"
	"testing"

	"aquavol/internal/faults"
	recovery "aquavol/internal/recover"
)

// Acceptance: under the moderate fault preset with recovery enabled,
// every paper assay reaches completed or completed-degraded — never
// aborted.
func TestModerateProfileAssaysSurvive(t *testing.T) {
	cas, err := robustnessAssays()
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := faults.Preset("moderate")
	if !ok {
		t.Fatal("moderate preset missing")
	}
	for _, ca := range cas {
		for _, seed := range []int64{7, 1007} {
			out, _, err := ca.runRecovered(prof, seed, recovery.Options{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", ca.name, seed, err)
			}
			if out.Status == recovery.Aborted {
				t.Errorf("%s seed %d aborted: %v", ca.name, seed, out.Err)
			}
		}
	}
}

// Acceptance: with a deterministic loss-only fault profile and recovery
// off, completion is monotonically non-decreasing in the safety margin,
// and a 20% margin completes outright.
func TestMarginCompletionMonotone(t *testing.T) {
	outs, err := MarginSweepOutcomes()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(MarginEpsilons) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(MarginEpsilons))
	}
	prevCompleted := false
	for _, o := range outs {
		completed := o.Status == recovery.Completed
		if prevCompleted && !completed {
			t.Errorf("completion regressed at margin %.0f%%", 100*o.Margin)
		}
		prevCompleted = prevCompleted || completed
		if completed && o.RanOut != 0 {
			t.Errorf("margin %.0f%%: completed with %d ran-out events", 100*o.Margin, o.RanOut)
		}
	}
	if outs[0].Status == recovery.Completed {
		t.Error("zero margin should not absorb the loss profile (sweep would be vacuous)")
	}
	if last := outs[len(outs)-1]; last.Status != recovery.Completed {
		t.Errorf("20%% margin must absorb the loss profile, got %v", last.Status)
	}
}

// The sweep is deterministic: two computations agree exactly.
func TestMarginSweepDeterministic(t *testing.T) {
	a, err := MarginSweepOutcomes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarginSweepOutcomes()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("margin sweep differs between runs")
	}
}

// Table smoke: the robustness table has one row per assay × profile.
func TestRobustnessTableShape(t *testing.T) {
	tab := Robustness(1)
	want := 3 * len(faults.Presets())
	if len(tab.Rows) != want {
		t.Errorf("rows = %d, want %d", len(tab.Rows), want)
	}
}
