package bench

import "testing"

// E14: the storage-fault matrix must close the trichotomy on every cell
// — each injected fault lands on clean completion, a loudly refused
// journal, or a bit-identical resume — and the two scenario columns
// (sticky ENOSPC + resume, snapshot-fallback ladder) must recover.
func TestStorageChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("storage-chaos matrix is a long sweep")
	}
	cells, err := StorageChaosOutcomes()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 2 {
		t.Fatalf("expected at least 2 assay cells, got %d", len(cells))
	}
	for _, c := range cells {
		if c.Strikes == 0 || c.WriteSites == 0 || c.SyncSites == 0 {
			t.Errorf("%s: degenerate site enumeration: %+v", c.Assay, c)
		}
		if c.Clean+c.NoJournal+c.Resumed != c.Strikes {
			t.Errorf("%s: trichotomy does not close: clean %d + nojournal %d + resumed %d != strikes %d",
				c.Assay, c.Clean, c.NoJournal, c.Resumed, c.Strikes)
		}
		if c.Resumed == 0 {
			t.Errorf("%s: no strike exercised the salvage+resume path", c.Assay)
		}
		if !c.EnospcResumeOK {
			t.Errorf("%s: sticky-ENOSPC-then-resume scenario failed", c.Assay)
		}
		if !c.FallbackOK {
			t.Errorf("%s: snapshot-fallback ladder failed (skipped %d rungs)", c.Assay, c.FallbackSkipped)
		}
	}
}

// The vfs seam's journaling overhead must be measurable and sane (both
// throughputs positive); the actual numbers are timing and live only in
// the JSON report.
func TestJournalOverheadMeasures(t *testing.T) {
	raw, viaVFS, err := journalOverhead(64)
	if err != nil {
		t.Fatal(err)
	}
	if raw <= 0 || viaVFS <= 0 {
		t.Fatalf("non-positive throughput: raw %f vfs %f", raw, viaVFS)
	}
}
