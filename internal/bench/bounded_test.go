package bench

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"aquavol/internal/assays"
	"aquavol/internal/budget"
	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// The E15 acceptance gate, solver half: cancelling every certified
// planning path at a sweep of charge boundaries must stop with the
// typed caller-cancelled cause after EXACTLY k work units, and a budget
// of exactly the reference work count must complete the solve.
func TestBoundedSolverMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation matrix sweeps dozens of full solves")
	}
	cases, err := boundedSolverCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("expected dagsolve/lp/ilp cases, got %d", len(cases))
	}
	for _, c := range cases {
		if c.WorkUnits == 0 || c.CancelPoints == 0 {
			t.Errorf("%s/%s: empty sweep (W=%d points=%d)", c.Solver, c.Assay, c.WorkUnits, c.CancelPoints)
			continue
		}
		if c.CleanCancels != c.CancelPoints {
			t.Errorf("%s/%s: only %d/%d cancels carried the typed cause", c.Solver, c.Assay, c.CleanCancels, c.CancelPoints)
		}
		if c.ExactStops != c.CancelPoints {
			t.Errorf("%s/%s: only %d/%d stops landed at exactly k work units", c.Solver, c.Assay, c.ExactStops, c.CancelPoints)
		}
		if !c.CompletedAtBudget {
			t.Errorf("%s/%s: a budget of exactly %d work units did not complete", c.Solver, c.Assay, c.WorkUnits)
		}
	}
}

// The E15 acceptance gate, exec half (one assay for speed; volbench
// -experiment bounded sweeps all three): cancelling a journaled run at
// every instruction boundary must fail-stop the journal (typed cause,
// no outcome record) and the salvaged prefix must resume bit-identical
// to the uninterrupted run.
func TestBoundedExecTrichotomy(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation matrix runs dozens of cancel-resume pairs")
	}
	cas, err := robustnessAssays()
	if err != nil {
		t.Fatal(err)
	}
	cell, err := boundedExecCell(cas[0], "mild", 4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if cell.WorkUnits == 0 || cell.CancelPoints == 0 {
		t.Fatalf("empty sweep: %+v", cell)
	}
	if cell.CleanCancels != cell.CancelPoints {
		t.Errorf("only %d/%d cancels fail-stopped with the typed cause and no outcome record",
			cell.CleanCancels, cell.CancelPoints)
	}
	if cell.Resumed != cell.CancelPoints {
		t.Errorf("only %d/%d salvaged journals resumed bit-identical", cell.Resumed, cell.CancelPoints)
	}
	if !cell.CompletedAtBudget {
		t.Errorf("a budget of exactly %d instructions did not complete the run", cell.WorkUnits)
	}
}

// The sweep always covers both ends without duplicates.
func TestBoundedSweep(t *testing.T) {
	for _, n := range []int64{1, 2, 23, 24, 25, 41, 1000, 16054} {
		points := boundedSweep(n, 24)
		seen := map[int64]bool{}
		for _, k := range points {
			if k < 1 || k > n {
				t.Errorf("n=%d: point %d out of range", n, k)
			}
			if seen[k] {
				t.Errorf("n=%d: duplicate point %d", n, k)
			}
			seen[k] = true
		}
		if !seen[1] || !seen[n] {
			t.Errorf("n=%d: sweep %v misses an endpoint", n, points)
		}
	}
}

// chargeLoop times the nil-path charge cost exactly as sited in the
// solvers: an inlined nil check inside a counted loop. noinline keeps
// the loop body (and the meter parameter) from being folded away.
//
//go:noinline
func chargeLoop(m *budget.Meter, n int) error {
	var err error
	for i := 0; i < n; i++ {
		if e := m.Charge(1); e != nil {
			err = e
		}
	}
	return err
}

// The budget plumbing must not slow the solvers down when no meter is
// armed (the nil fast path is a single inlined check per charge site):
// polling overhead stays within 3% of the recorded BENCH_solver.json
// solve times. Armed-meter polling cost is measured separately and
// recorded in BENCH_bounded.json.
//
// Wall-clock solver throughput on a shared host swings by tens of
// percent with noisy neighbors — far above any bound worth gating — so
// the check is analytic over stable measurements: (deterministic
// charges per solve, counted with a metering run) × (per-charge
// nil-path cost, timed in a tight ALU-bound loop that noisy neighbors
// barely touch) must be ≤ 3% of the recorded p50 solve time. A future
// change that fattens Charge's fast path or breaks its inlining fails
// this on any host; host-speed drift cannot.
func TestSolverThroughputNoRegressionVsRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the per-charge cost; the 3% bound is against an uninstrumented build")
	}
	blob, err := os.ReadFile("../../BENCH_solver.json")
	if err != nil {
		t.Skipf("no recorded baseline: %v", err)
	}
	var rec SolverReport
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	recordedP50 := func(assay, solver string) float64 {
		for _, s := range rec.Stats {
			if s.Assay == assay && s.Solver == solver {
				return s.P50Micros
			}
		}
		return 0
	}

	// Per-charge nil-path cost: best of three over 16M charges each.
	const loopIters = 1 << 24
	perChargeMicros := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		if err := chargeLoop(nil, loopIters); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start) //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		if per := float64(elapsed.Microseconds()) / loopIters; per < perChargeMicros {
			perChargeMicros = per
		}
	}

	c := cfg()
	for _, cse := range []struct {
		assay string
		graph func() *dag.Graph
	}{
		{"glucose", assays.GlucoseDAG},
		{"enzyme4", func() *dag.Graph { return assays.EnzymeDAG(4) }},
	} {
		p50 := recordedP50(cse.assay, "dagsolve")
		if p50 == 0 {
			t.Fatalf("no recorded dagsolve/%s cell in BENCH_solver.json", cse.assay)
		}
		// Deterministic charge count: a counting meter observes every
		// work unit the solve charges.
		mc := c
		mc.Budget = budget.New(0)
		if _, err := core.DAGSolve(cse.graph(), mc, nil); err != nil {
			t.Fatal(err)
		}
		charges := mc.Budget.Used()
		overhead := float64(charges) * perChargeMicros / p50
		t.Logf("dagsolve/%s: %d charges x %.4f µs = %.3f µs polling vs %.1f µs recorded p50 (%.2f%%)",
			cse.assay, charges, perChargeMicros, float64(charges)*perChargeMicros, p50, 100*overhead)
		if overhead > 0.03 {
			t.Errorf("dagsolve/%s: nil-path polling costs %.1f%% of the recorded p50 solve time, budget is 3%%",
				cse.assay, 100*overhead)
		}
	}
}
