package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"aquavol/internal/aquacore"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	recovery "aquavol/internal/recover"
	"aquavol/internal/vfs"
)

// DurabilityCell is one assay × profile result of the chaos matrix.
type DurabilityCell struct {
	Assay   string
	Profile string
	// Boundaries is the number of instruction boundaries the reference
	// run executed — and the number of kill points tested.
	Boundaries int
	// Snapshots is how many snapshot records the reference journal holds.
	Snapshots int
	// JournalBytes is the reference journal's size on disk.
	JournalBytes int64
	// Identical counts resumed runs whose final machine state fingerprint
	// was bit-identical to the uninterrupted run's.
	Identical int
	// TornOK / FlipOK report the damaged-tail recoveries: a journal
	// truncated mid-frame and one with a flipped bit both resumed to the
	// reference state.
	TornOK bool
	FlipOK bool
}

// durabilityProfiles is the fault matrix: deterministic losses plus
// randomized jitter/failures, both of which the resume path must replay
// exactly (the PRNG position rides in every snapshot).
func durabilityProfiles() []string { return []string{"mild", "moderate"} }

// durabilitySeed fixes the matrix: the whole experiment is reproducible.
const durabilitySeed = 42

// machineFP fingerprints a machine's complete state: JSON sorts map keys
// and round-trips float64 exactly, so state equality is byte equality.
func machineFP(m *aquacore.Machine) (string, error) {
	b, err := json.Marshal(m.Snapshot())
	return string(b), err
}

// DurabilityOutcomes runs the chaos matrix: for every shipped assay and
// profile, a journaled reference run establishes the expected final
// state, then the run is killed at EVERY instruction boundary in turn
// and resumed from its journal; each resume must reproduce the reference
// state bit for bit. Two damaged-journal cases (torn tail, flipped bit)
// exercise the corruption-recovery path end to end.
func DurabilityOutcomes(snapshotEvery int) ([]DurabilityCell, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = 4
	}
	cas, err := robustnessAssays()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "aquavol-durable")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var cells []DurabilityCell
	for _, ca := range cas {
		for _, pname := range durabilityProfiles() {
			p, _ := faults.Preset(pname)
			cell, err := durabilityCell(ca, pname, p, snapshotEvery, dir)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ca.name, pname, err)
			}
			cells = append(cells, *cell)
		}
	}
	return cells, nil
}

func durabilityCell(ca *compiledAssay, pname string, p faults.Profile,
	snapshotEvery int, dir string) (*DurabilityCell, error) {
	opts := recovery.Options{SnapshotEvery: snapshotEvery}
	cell := &DurabilityCell{Assay: ca.name, Profile: pname}

	// Reference: uninterrupted journaled run.
	refPath := filepath.Join(dir, ca.name+"-"+pname+"-ref.aqj")
	jw, f, err := journal.Create(vfs.OS{}, refPath, false)
	if err != nil {
		return nil, err
	}
	refOpts := opts
	refOpts.Journal = jw
	refOut, refM, err := ca.runRecovered(p, durabilitySeed, refOpts)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("closing reference journal: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	if refOut.Status == recovery.Aborted {
		return nil, fmt.Errorf("reference run aborted: %w", refOut.Err)
	}
	want, err := machineFP(refM)
	if err != nil {
		return nil, err
	}
	if st, err := os.Stat(refPath); err == nil {
		cell.JournalBytes = st.Size()
	}
	refRecs, _, err := journal.Recover(vfs.OS{}, refPath)
	if err != nil {
		return nil, err
	}
	for _, r := range refRecs {
		switch r.Kind {
		case journal.KindStep:
			cell.Boundaries++
		case journal.KindSnapshot:
			cell.Snapshots++
		default:
			// Begin/transfer/outcome/recovery/replan records are not
			// boundary or snapshot counts.
		}
	}

	// Kill at every boundary, resume from the journal, compare states.
	crashPath := filepath.Join(dir, ca.name+"-"+pname+"-crash.aqj")
	var midJournal []byte // saved crash journal for the damage cases
	for k := 0; k < cell.Boundaries; k++ {
		if err := crashRun(ca, p, durabilitySeed, opts, crashPath, k); err != nil {
			return nil, fmt.Errorf("kill at boundary %d: %w", k, err)
		}
		if k == cell.Boundaries/2 {
			midJournal, err = os.ReadFile(crashPath)
			if err != nil {
				return nil, err
			}
		}
		got, err := resumeFromFile(ca, p, durabilitySeed, opts, crashPath)
		if err != nil {
			return nil, fmt.Errorf("resume after kill at boundary %d: %w", k, err)
		}
		if got == want {
			cell.Identical++
		}
	}

	// Damaged tails: a kill mid-append leaves a torn frame; bad storage
	// flips bits. Both must recover to the last good record and resume.
	damaged := []struct {
		name   string
		mutate func([]byte) []byte
		ok     *bool
	}{
		{"torn", func(b []byte) []byte { return b[:len(b)-5] }, &cell.TornOK},
		{"flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-10] ^= 0x40
			return c
		}, &cell.FlipOK},
	}
	for _, d := range damaged {
		if len(midJournal) < 16 {
			return nil, fmt.Errorf("mid-run journal too small to damage (%d bytes)", len(midJournal))
		}
		path := filepath.Join(dir, ca.name+"-"+pname+"-"+d.name+".aqj")
		if err := os.WriteFile(path, d.mutate(midJournal), 0o644); err != nil {
			return nil, err
		}
		got, err := resumeFromFile(ca, p, durabilitySeed, opts, path)
		if err != nil {
			return nil, fmt.Errorf("resume from %s journal: %w", d.name, err)
		}
		*d.ok = got == want
	}
	return cell, nil
}

// crashRun executes a journaled run killed at boundary k.
func crashRun(ca *compiledAssay, p faults.Profile, seed int64, opts recovery.Options, path string, k int) error {
	jw, f, err := journal.Create(vfs.OS{}, path, true)
	if err != nil {
		return err
	}
	// The simulated kill leaves the journal tail exactly as a real crash
	// would; a close failure here cannot make the crash more crashed.
	defer f.Close() //fluidvet:allow syncerr crash simulation: the torn tail is the scenario under test
	opts.Journal = jw
	opts.Crash = faults.CrashAt(k)
	out, _, err := ca.runRecovered(p, seed, opts)
	if err != nil {
		return err
	}
	if out.Status != recovery.Aborted {
		return fmt.Errorf("crash run finished with status %s", out.Status)
	}
	return nil
}

// resumeFromFile recovers a (possibly damaged) journal, resumes from its
// last good snapshot, and fingerprints the final machine state.
func resumeFromFile(ca *compiledAssay, p faults.Profile, seed int64, opts recovery.Options, path string) (string, error) {
	recs, _, w, f, err := journal.OpenAppend(vfs.OS{}, path)
	if err != nil {
		return "", err
	}
	var snap *journal.Snapshot
	for _, r := range recs {
		if r.Kind == journal.KindSnapshot {
			snap = r.Snapshot
		}
	}
	if snap == nil {
		f.Close() //fluidvet:allow syncerr error path; nothing was appended yet
		return "", fmt.Errorf("no snapshot survived in %s", path)
	}
	opts.Journal = w
	_, m, err := ca.resumeRecovered(p, seed, opts, snap)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("closing resumed journal: %w", cerr)
	}
	if err != nil {
		return "", err
	}
	return machineFP(m)
}

// Durability renders the chaos matrix: the kill-at-every-boundary sweep
// over the shipped assays (E12).
func Durability() *Table {
	cells, err := DurabilityOutcomes(4)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:    "E12/Durable",
		Title: "durable execution: kill at every instruction boundary, resume from journal",
		Header: []string{"assay", "profile", "boundaries", "snapshots",
			"journal size", "bit-identical resumes", "torn tail", "bit flip"},
	}
	recovered := func(ok bool) string {
		if ok {
			return "recovered"
		}
		return "DIVERGED"
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Assay, c.Profile,
			fmt.Sprintf("%d", c.Boundaries),
			fmt.Sprintf("%d", c.Snapshots),
			fmt.Sprintf("%.1f KiB", float64(c.JournalBytes)/1024),
			fmt.Sprintf("%d/%d", c.Identical, c.Boundaries),
			recovered(c.TornOK),
			recovered(c.FlipOK),
		})
	}
	t.Notes = append(t.Notes,
		"each boundary k: run with a simulated kill after boundary k, resume from the journal's last snapshot",
		"bit-identical: the resumed run's full machine state (vessels, events, PRNG position) matches the uninterrupted run's JSON fingerprint byte for byte",
		fmt.Sprintf("snapshot cadence 4 boundaries; fixed seed %d; torn tail = 5 bytes cut mid-frame, bit flip = one bit in the final record", durabilitySeed))
	return t
}
