//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Timing-free assertions (the chaos matrices) run under both tiers;
// throughput comparisons against recorded wall-clock trajectories are
// meaningless under the detector's several-fold slowdown and skip.
const raceEnabled = true
