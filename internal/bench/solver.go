package bench

import (
	"fmt"
	"sort"
	"time"

	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/ilp"
	"aquavol/internal/lp"
)

// The solver-speed baseline: raw planning throughput and latency per
// shipped assay class, per solver. ROADMAP's "raw solver speed" item
// asks every optimization PR to show its speedup against a recorded
// trajectory; this experiment is the recorder. volbench -experiment
// solver prints the table and (with -json) writes BENCH_solver.json.

// SolverStat is one (assay, solver) cell of the baseline.
type SolverStat struct {
	Assay       string  `json:"assay"`
	Solver      string  `json:"solver"`
	Samples     int     `json:"samples"`
	PlansPerSec float64 `json:"plans_per_sec"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
}

// SolverReport is the JSON shape of BENCH_solver.json.
type SolverReport struct {
	Schema string       `json:"schema"`
	Stats  []SolverStat `json:"stats"`
}

// solverSampleBudget bounds each cell: stop at maxSamples or once
// budget wall time is spent, whichever first, with a minSamples floor
// so the percentiles mean something.
const (
	solverMinSamples = 20
	solverMaxSamples = 400
	solverBudget     = 1500 * time.Millisecond
)

// measure runs one solve repeatedly and summarizes its latency
// distribution.
func measure(assay, solver string, run func() error) (SolverStat, error) {
	var samples []time.Duration
	total := time.Duration(0)
	for len(samples) < solverMaxSamples {
		start := time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		err := run()
		d := time.Since(start) //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		if err != nil {
			return SolverStat{}, fmt.Errorf("%s/%s: %w", assay, solver, err)
		}
		samples = append(samples, d)
		total += d
		if total >= solverBudget && len(samples) >= solverMinSamples {
			break
		}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) float64 {
		idx := int(q*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return float64(sorted[idx].Nanoseconds()) / 1000
	}
	return SolverStat{
		Assay:       assay,
		Solver:      solver,
		Samples:     len(samples),
		PlansPerSec: float64(len(samples)) / total.Seconds(),
		P50Micros:   pct(0.50),
		P99Micros:   pct(0.99),
	}, nil
}

// SolverBaseline measures every (assay, solver) cell of the baseline
// and returns the rendered table plus the JSON report.
func SolverBaseline() (*Table, *SolverReport, error) {
	c := cfg()
	unitCfg := core.Config{
		MaxCapacity: c.MaxCapacity / c.LeastCount,
		LeastCount:  1,
		OutputSkew:  c.OutputSkew,
	}
	cases := []struct {
		assay, solver string
		run           func() error
	}{
		{"fig2", "dagsolve", func() error {
			_, err := core.DAGSolve(assays.Fig2DAG(), c, nil)
			return err
		}},
		{"glucose", "dagsolve", func() error {
			_, err := core.DAGSolve(assays.GlucoseDAG(), c, nil)
			return err
		}},
		{"enzyme4", "dagsolve", func() error {
			_, err := core.DAGSolve(assays.EnzymeDAG(4), c, nil)
			return err
		}},
		{"enzyme10", "dagsolve", func() error {
			_, err := core.DAGSolve(assays.EnzymeDAG(10), c, nil)
			return err
		}},
		{"glucose", "lp", func() error {
			f, err := core.Formulate(assays.GlucoseDAG(), c, core.FormulateOptions{}, nil)
			if err != nil {
				return err
			}
			_, err = f.Prob.Solve(lp.Options{})
			return err
		}},
		{"enzyme4", "lp", func() error {
			f, err := core.Formulate(assays.EnzymeDAG(4), c, core.FormulateOptions{}, nil)
			if err != nil {
				return err
			}
			_, err = f.Prob.Solve(lp.Options{})
			return err
		}},
		{"glucose", "ilp", func() error {
			f, err := core.Formulate(assays.GlucoseDAG(), unitCfg, core.FormulateOptions{}, nil)
			if err != nil {
				return err
			}
			_, err = ilp.Solve(f.Prob, ilp.Options{MaxNodes: 20000})
			return err
		}},
		// The frozen CPU-speed reference (see canary.go): records the
		// recording host's speed so cross-recording comparisons can
		// separate host drift from solver changes.
		{"canary", "kernel", canaryKernel},
	}

	report := &SolverReport{Schema: "aquavol/bench-solver/v1"}
	t := &Table{
		ID:     "ESOLVER",
		Title:  "solver throughput/latency baseline (plans/sec, p50/p99 per assay)",
		Header: []string{"assay", "solver", "samples", "plans/sec", "p50", "p99"},
		Notes: []string{
			"solve time only: graph/formulation construction included, IO excluded",
			"recorded to BENCH_solver.json so later solver PRs can show their speedup",
			"canary/kernel is the frozen CPU-speed reference: it dates each recording's host speed so trajectory jumps can be told apart from solver changes",
		},
	}
	for _, cse := range cases {
		st, err := measure(cse.assay, cse.solver, cse.run)
		if err != nil {
			return nil, nil, err
		}
		report.Stats = append(report.Stats, st)
		t.Rows = append(t.Rows, []string{
			st.Assay, st.Solver, fmt.Sprintf("%d", st.Samples),
			fmt.Sprintf("%.0f", st.PlansPerSec),
			fmtDur(time.Duration(st.P50Micros * 1000)),
			fmtDur(time.Duration(st.P99Micros * 1000)),
		})
	}
	return t, report, nil
}
