// Package bench regenerates every table and figure of the paper's
// evaluation (§4) on this reproduction: the Fig. 5 DAGSolve worked
// example, the glucose/glycomics/enzyme case studies (Figs. 12-14), the
// rounding-error experiment, Table 2's run-time and regeneration
// comparison, the §4.3 LP-with-extra-constraints ablation, and the ILP
// comparison. The volbench CLI and the repository's testing.B benchmarks
// both drive this package.
package bench

import (
	"fmt"
	"strings"
	"time"

	"aquavol/internal/assays"
	"aquavol/internal/budget"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/ilp"
	"aquavol/internal/lp"
	"aquavol/internal/regen"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func cfg() core.Config { return core.DefaultConfig() }

// timeIt measures f's wall time, repeating short runs for stability.
func timeIt(f func()) time.Duration {
	start := time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
	f()
	first := time.Since(start) //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
	if first > 200*time.Millisecond {
		return first
	}
	// Repeat until ~50 ms of samples.
	reps := 1
	total := first
	for total < 50*time.Millisecond && reps < 10000 {
		start = time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		f()
		total += time.Since(start) //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		reps++
	}
	return total / time.Duration(reps)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3g s", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3g ms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3g µs", float64(d.Nanoseconds())/1000)
	}
}

func fmtVol(nl float64) string {
	if nl < 1 {
		return fmt.Sprintf("%.1f pl", nl*1000)
	}
	return fmt.Sprintf("%.2f nl", nl)
}

// Fig5 reproduces the DAGSolve worked example (Fig. 5 a/b): Vnorms and
// dispensed volumes of the Fig. 2 assay.
func Fig5() *Table {
	g := assays.Fig2DAG()
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:     "E1/Fig5",
		Title:  "DAGSolve on the Fig. 2 assay (paper Fig. 5)",
		Header: []string{"node", "Vnorm", "volume (nl)", "paper"},
	}
	paper := map[string]string{
		"A": "≈13", "B": "100 (max)", "C": "≈83", "K": "≈65",
		"L": "≈72", "M": "≈98", "N": "≈98",
	}
	for _, name := range []string{"A", "B", "C", "K", "L", "M", "N"} {
		n := g.NodeByName(name)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.4g", plan.NodeVnorm[n.ID()]),
			fmt.Sprintf("%.2f", plan.NodeVolume[n.ID()]),
			paper[name],
		})
	}
	edge := func(from, to string) float64 {
		for _, e := range g.Edges() {
			if e.From.Name == from && e.To.Name == to {
				return plan.EdgeVolume[e.ID()]
			}
		}
		return 0
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("edges: B→K %.1f (paper 52), B→L %.1f (48), C→L %.1f (24), C→N %.1f (59)",
			edge("B", "K"), edge("B", "L"), edge("C", "L"), edge("C", "N")))
	return t
}

// Glucose reproduces the Fig. 12 / §4.2 glucose case study.
func Glucose() *Table {
	g := assays.GlucoseDAG()
	plan, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:     "E2/Fig12",
		Title:  "Glucose assay volumes (paper Fig. 12, §4.2)",
		Header: []string{"fluid", "Vnorm", "volume"},
	}
	for _, name := range []string{"Glucose", "Reagent", "Sample", "a", "b", "c", "d", "e"} {
		n := g.NodeByName(name)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.4g", plan.NodeVnorm[n.ID()]),
			fmtVol(plan.NodeVolume[n.ID()]),
		})
	}
	_, min := plan.MinDispense()
	t.Notes = append(t.Notes,
		fmt.Sprintf("smallest dispense %s (paper: 3.3 nl); feasible=%v; fully static: volumes assigned at compile time",
			fmtVol(min), plan.Feasible()))
	return t
}

// Glycomics reproduces the Fig. 13 partitioning case study.
func Glycomics() *Table {
	g := assays.GlycomicsDAG()
	sp, err := core.NewStagedPlan(g, cfg())
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:     "E3/Fig13",
		Title:  "Glycomics assay: partitioning at unknown-volume separations (paper Fig. 13)",
		Header: []string{"constrained input", "part", "share", "Vnorm", "source"},
	}
	for _, b := range sp.Partition.Bindings {
		pg := sp.Partition.Parts[b.Part]
		ci := pg.Node(b.NodeID)
		srcName := "input"
		if b.SourcePart >= 0 {
			srcName = g.Node(b.SourceID).Name
			if b.SourceUnknown {
				srcName += " (measured)"
			}
		} else {
			srcName = g.Node(b.SourceID).Name + " (static split)"
		}
		t.Rows = append(t.Rows, []string{
			ci.Name,
			fmt.Sprintf("%d", b.Part),
			fmt.Sprintf("%.3g", b.Share),
			fmt.Sprintf("%.4g", sp.Vnorms[b.Part].Node[b.NodeID]),
			srcName,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d partitions (paper: 4); buffer3a splits 50/50 nl; X2 Vnorm = 1/204 ≈ %.5f matches the paper", sp.NumParts(), 1.0/204))
	return t
}

// Enzyme reproduces the Fig. 14 case study: baseline underflow, cascading,
// static replication, and their combination.
func Enzyme() *Table {
	c := cfg()
	t := &Table{
		ID:     "E4/Fig14",
		Title:  "Enzyme assay: cascading and static replication (paper Fig. 14, §4.2)",
		Header: []string{"configuration", "diluent Vnorm", "min dispense", "feasible", "paper min"},
	}
	row := func(name string, g *dag.Graph, paperMin string) {
		plan, err := core.DAGSolve(g, c, nil)
		if err != nil {
			panic(err)
		}
		dil := g.NodeByName("diluent")
		_, min := plan.MinDispense()
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.3g", plan.NodeVnorm[dil.ID()]),
			fmtVol(min),
			fmt.Sprintf("%v", plan.Feasible()),
			paperMin,
		})
	}
	base := assays.EnzymeDAG(4)
	row("baseline", base, "9.8 pl")

	casc := assays.EnzymeDAG(4)
	cascadeAll(casc)
	row("cascade 1:999 → three 1:9", casc, "65.6 pl (still underflow)")

	rep := assays.EnzymeDAG(4)
	replicateDiluent(rep)
	row("replicate diluent ×3", rep, "29.5 pl (still underflow)")

	both := assays.EnzymeDAG(4)
	cascadeAll(both)
	replicateDiluent(both)
	row("cascade + replicate", both, "196 pl (fixed)")

	// The automatic hierarchy.
	auto, err := core.Manage(assays.EnzymeDAG(4), c, core.ManageOptions{SkipLP: true})
	if err != nil {
		panic(err)
	}
	_, autoMin := auto.Plan.MinDispense()
	t.Rows = append(t.Rows, []string{
		"automatic (Fig. 6 hierarchy)", "-", fmtVol(autoMin),
		fmt.Sprintf("%v", auto.Plan.Feasible()),
		fmt.Sprintf("%d transforms", len(auto.Transforms)),
	})
	t.Notes = append(t.Notes,
		"dilution Vnorm 16/3 ≈ 5.33, diluent 54 → 81 (cascade) → 27 (cascade+replicate); all match the paper",
		"paper also reports '123 pl' for the first cascade node; that value is inconsistent with its own Vnorms (16/3 at intermediates, diluent 81), which give 655 pl — see EXPERIMENTS.md")
	return t
}

func cascadeAll(g *dag.Graph) {
	for _, name := range []string{"inh_dil4", "enz_dil4", "sub_dil4"} {
		if err := g.Cascade(g.NodeByName(name), 3); err != nil {
			panic(err)
		}
	}
}

func replicateDiluent(g *dag.Graph) {
	dil := g.NodeByName("diluent")
	groups := map[string]int{"inh": 0, "enz": 1, "sub": 2}
	if _, err := g.Replicate(dil, 3, func(e *dag.Edge) int {
		return groups[e.To.Name[:3]]
	}); err != nil {
		panic(err)
	}
}

// Rounding reproduces the §4.2 IVol rounding-error measurement.
func Rounding() *Table {
	c := cfg()
	t := &Table{
		ID:     "E5/rounding",
		Title:  "IVol rounding error at least count 0.1 nl (§4.2; paper: ≤2%)",
		Header: []string{"assay", "max ratio error", "mean ratio error", "feasible after rounding"},
	}
	add := func(name string, g *dag.Graph) *core.IntPlan {
		plan, err := core.DAGSolve(g, c, nil)
		if err != nil {
			panic(err)
		}
		ipl := core.Round(plan, c)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.3g%%", 100*ipl.MaxRatioError),
			fmt.Sprintf("%.3g%%", 100*ipl.MeanRatioError),
			fmt.Sprintf("%v", ipl.Feasible()),
		})
		return ipl
	}
	gi := add("glucose", assays.GlucoseDAG())
	both := assays.EnzymeDAG(4)
	cascadeAll(both)
	replicateDiluent(both)
	ei := add("enzyme (cascaded+replicated)", both)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average mean error across both: %.3g%% (paper reports no more than 2%%)",
		100*(gi.MeanRatioError+ei.MeanRatioError)/2))
	return t
}

// solveTimes measures DAGSolve and LP times plus LP constraint counts for
// one statically-known DAG.
func solveTimes(g *dag.Graph, extra core.FormulateOptions) (dagT, lpT time.Duration, constraints int) {
	c := cfg()
	dagT = timeIt(func() {
		_, err := core.DAGSolve(g, c, nil)
		if err != nil {
			panic(err)
		}
	})
	f, err := core.Formulate(g, c, extra, nil)
	if err != nil {
		panic(err)
	}
	constraints = f.Counts.Total()
	lpT = timeIt(func() {
		f2, _ := core.Formulate(g, c, extra, nil)
		_, err := f2.Solve(lp.Options{})
		if err != nil && err != core.ErrLPInfeasible {
			panic(err)
		}
	})
	return dagT, lpT, constraints
}

// glycomicsTimes measures the partitioned glycomics solve: the total over
// all four partitions, as the paper does.
func glycomicsTimes() (dagT, lpT time.Duration, constraints int) {
	c := cfg()
	g := assays.GlycomicsDAG()
	avail := func(part *dag.Graph) core.Availability {
		return func(ci *dag.Node) (float64, bool) {
			if ci.SourceIsInput {
				return ci.Share * c.MaxCapacity, true
			}
			return ci.Share * 40, true // assume 40 nl measured at each cut
		}
	}
	dagT = timeIt(func() {
		sp, err := core.NewStagedPlan(g, c)
		if err != nil {
			panic(err)
		}
		for i := 0; i < sp.NumParts(); i++ {
			vn := sp.Vnorms[i]
			if _, err := core.Dispense(vn, c, avail(sp.Partition.Parts[i])); err != nil {
				panic(err)
			}
		}
	})
	part, err := dag.Partition(g)
	if err != nil {
		panic(err)
	}
	constraints = 0
	for _, pg := range part.Parts {
		f, err := core.Formulate(pg, c, core.FormulateOptions{}, avail(pg))
		if err != nil {
			panic(err)
		}
		constraints += f.Counts.Total()
	}
	lpT = timeIt(func() {
		for _, pg := range part.Parts {
			f, err := core.Formulate(pg, c, core.FormulateOptions{}, avail(pg))
			if err != nil {
				panic(err)
			}
			if _, err := f.Solve(lp.Options{}); err != nil && err != core.ErrLPInfeasible {
				panic(err)
			}
		}
	})
	return dagT, lpT, constraints
}

// Table2 reproduces Table 2: DAGSolve vs LP run times, LP constraint
// counts, and regeneration counts without volume management. Enzyme10's
// LP solve takes minutes (the paper's point); it only runs when full is
// set, and its constraint count and DAGSolve time are always reported.
func Table2(full bool) *Table {
	t := &Table{
		ID:    "E6/Table2",
		Title: "DAGSolve vs LP vs regeneration (paper Table 2)",
		Header: []string{"assay", "DAGSolve", "LP", "LP/DAGSolve", "LP constraints (paper)",
			"regen count (paper)"},
	}
	c := cfg()
	addRow := func(name string, dagT, lpT time.Duration, cons int, paperCons string, regenCount int, paperRegen string) {
		ratio := "-"
		if lpT > 0 && dagT > 0 {
			ratio = fmt.Sprintf("%.0fx", float64(lpT)/float64(dagT))
		}
		lpS := fmtDur(lpT)
		if lpT == 0 {
			lpS = "(skipped; -full)"
			ratio = "-"
		}
		t.Rows = append(t.Rows, []string{
			name, fmtDur(dagT), lpS, ratio,
			fmt.Sprintf("%d (%s)", cons, paperCons),
			fmt.Sprintf("%d (%s)", regenCount, paperRegen),
		})
	}

	dagT, lpT, cons := solveTimes(assays.GlucoseDAG(), core.FormulateOptions{})
	rg := regen.CountNaive(assays.GlucoseDAG(), c, regen.Options{})
	addRow("Glucose", dagT, lpT, cons, "49", rg.Regenerations, "2")

	dagT, lpT, cons = glycomicsTimes()
	addRow("Glycomics", dagT, lpT, cons, "84", 0, "n/a")

	dagT, lpT, cons = solveTimes(assays.EnzymeDAG(4), core.FormulateOptions{})
	rg = regen.CountNaive(assays.EnzymeDAG(4), c, regen.Options{})
	addRow("Enzyme", dagT, lpT, cons, "872", rg.Regenerations, "85")

	e10 := assays.EnzymeDAG(10)
	c10 := cfg()
	dagT = timeIt(func() {
		if _, err := core.DAGSolve(e10, c10, nil); err != nil {
			panic(err)
		}
	})
	f10, err := core.Formulate(e10, c10, core.FormulateOptions{}, nil)
	if err != nil {
		panic(err)
	}
	var lp10 time.Duration
	if full {
		start := time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		if _, err := f10.Solve(lp.Options{}); err != nil && err != core.ErrLPInfeasible {
			panic(err)
		}
		lp10 = time.Since(start) //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
	}
	rg = regen.CountNaive(e10, c10, regen.Options{})
	addRow("Enzyme10", dagT, lp10, f10.Counts.Total(), "11258", rg.Regenerations, "1313")

	t.Notes = append(t.Notes,
		"paper (750 MHz P3, Matlab LIPSOL): glucose ~0/0.08s, glycomics 0.003/0.28s, enzyme 0.016/0.73s, enzyme10 1.57s/20min",
		"absolute times differ (our simplex vs LIPSOL, modern CPU); the claim is the ratio and its growth with assay size",
		"with DAGSolve there are no regenerations (see E9)")
	return t
}

// ScalingRow is one point of the EnzymeN sweep.
type ScalingRow struct {
	N           int
	Nodes       int
	Constraints int
	DAGSolve    time.Duration
	LP          time.Duration
}

// Scaling sweeps EnzymeN to expose DAGSolve's linear growth against LP's
// superlinear growth (the Enzyme→Enzyme10 comparison of §4.3 as a curve).
func Scaling(maxN int) []ScalingRow {
	var out []ScalingRow
	for n := 2; n <= maxN; n++ {
		g := assays.EnzymeDAG(n)
		dagT, lpT, cons := solveTimes(g, core.FormulateOptions{})
		out = append(out, ScalingRow{
			N: n, Nodes: g.NumNodes(), Constraints: cons, DAGSolve: dagT, LP: lpT,
		})
	}
	return out
}

// ScalingTable renders Scaling.
func ScalingTable(maxN int) *Table {
	t := &Table{
		ID:     "E6b/scaling",
		Title:  "EnzymeN sweep: DAGSolve linear vs LP superlinear (§4.3)",
		Header: []string{"N", "DAG nodes", "LP constraints", "DAGSolve", "LP", "LP/DAGSolve"},
	}
	for _, r := range Scaling(maxN) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Constraints),
			fmtDur(r.DAGSolve),
			fmtDur(r.LP),
			fmt.Sprintf("%.0fx", float64(r.LP)/float64(r.DAGSolve)),
		})
	}
	return t
}

// LPAblation reproduces the §4.3 check that DAGSolve's speed does not come
// from its extra constraints: LP with flow conservation and equal outputs
// added remains far slower than DAGSolve.
func LPAblation() *Table {
	t := &Table{
		ID:     "E7/lp-ablation",
		Title:  "LP with DAGSolve's artificial constraints added (§4.3)",
		Header: []string{"assay", "DAGSolve", "LP (plain)", "LP (+flow conservation, equal outputs)", "plain/DS", "extra/DS"},
	}
	for _, a := range []struct {
		name string
		g    *dag.Graph
	}{
		{"Glucose", assays.GlucoseDAG()},
		{"Enzyme", assays.EnzymeDAG(4)},
	} {
		dagT, lpPlain, _ := solveTimes(a.g, core.FormulateOptions{})
		_, lpExtra, _ := solveTimes(a.g, core.FormulateOptions{FlowConservation: true, EqualOutputs: true})
		t.Rows = append(t.Rows, []string{
			a.name, fmtDur(dagT), fmtDur(lpPlain), fmtDur(lpExtra),
			fmt.Sprintf("%.0fx", float64(lpPlain)/float64(dagT)),
			fmt.Sprintf("%.0fx", float64(lpExtra)/float64(dagT)),
		})
	}
	t.Notes = append(t.Notes,
		"paper: extra constraints shrink the gap from ~80x to no less than ~60x; LP stays far slower than DAGSolve")
	return t
}

// ILPBounds bounds the E8 branch-and-bound comparison. The zero value
// selects the defaults: 20000 nodes and a 15 s wall-clock guard — the
// bounds are experiment configuration now, not constants buried in the
// harness, so callers (volbench flags, tests) can tighten or relax them.
type ILPBounds struct {
	// Nodes caps explored B&B nodes; 0 selects 20000.
	Nodes int
	// Time is the wall-clock guard on each ilp.Solve; 0 selects 15 s.
	Time time.Duration
	// Budget optionally bounds the whole experiment with a caller meter
	// (cooperative cancellation; charged per node and per LP pivot).
	Budget *budget.Meter
}

func (b ILPBounds) withDefaults() ILPBounds {
	if b.Nodes == 0 {
		b.Nodes = 20000
	}
	if b.Time == 0 {
		b.Time = 15 * time.Second
	}
	return b
}

// ILP reproduces the §4.3 ILP-vs-LP comparison: comparable on glucose,
// intractable on enzyme (node budget exhausted, the analogue of the
// paper's 'ran for hours').
func ILP(b ILPBounds) *Table {
	b = b.withDefaults()
	c := cfg()
	t := &Table{
		ID:     "E8/ilp",
		Title:  "ILP (branch & bound) vs LP (§4.3)",
		Header: []string{"assay", "LP", "ILP", "ILP status", "nodes explored"},
	}
	// The raw enzyme assay's relaxation is infeasible, which our branch &
	// bound proves at the root node (the paper's 2005-era solver instead
	// "ran for hours"). The interesting integer search is the feasible
	// cascaded+replicated enzyme, so that is what we time.
	enzyme := assays.EnzymeDAG(4)
	cascadeAll(enzyme)
	replicateDiluent(enzyme)
	for _, a := range []struct {
		name string
		g    *dag.Graph
	}{
		{"Glucose", assays.GlucoseDAG()},
		{"Enzyme (cascaded+replicated)", enzyme},
	} {
		// Scale to least-count units so integrality is the IVol condition.
		unitCfg := core.Config{
			MaxCapacity: c.MaxCapacity / c.LeastCount, // 1000 units
			LeastCount:  1,
			OutputSkew:  c.OutputSkew,
		}
		f, err := core.Formulate(a.g, unitCfg, core.FormulateOptions{}, nil)
		if err != nil {
			panic(err)
		}
		lpT := timeIt(func() {
			f2, _ := core.Formulate(a.g, unitCfg, core.FormulateOptions{}, nil)
			_, err := f2.Solve(lp.Options{})
			if err != nil && err != core.ErrLPInfeasible {
				panic(err)
			}
		})
		start := time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		res, err := ilp.Solve(f.Prob, ilp.Options{MaxNodes: b.Nodes, MaxTime: b.Time, Budget: b.Budget})
		if err != nil {
			panic(err)
		}
		ilpT := time.Since(start) //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		t.Rows = append(t.Rows, []string{
			a.name, fmtDur(lpT), fmtDur(ilpT), res.Status.String(),
			fmt.Sprintf("%d", res.Nodes),
		})
	}
	t.Notes = append(t.Notes,
		"paper: ILP (LP_Solve 5.5) matched LP on glucose but 'ran for hours' on enzyme",
		"here: the raw enzyme ILP is proven infeasible at the root; the feasible transformed enzyme exhausts the node budget (the modern analogue of 'ran for hours')")
	return t
}

// Regen reproduces the §4.3 regeneration comparison.
func Regen() *Table {
	c := cfg()
	t := &Table{
		ID:     "E9/regen",
		Title:  "Regenerations without volume management vs with DAGSolve (§4.3)",
		Header: []string{"assay", "naive regens (paper)", "with DAGSolve plan"},
	}
	glucosePlan, err := core.DAGSolve(assays.GlucoseDAG(), c, nil)
	if err != nil {
		panic(err)
	}
	managed, err := core.Manage(assays.EnzymeDAG(4), c, core.ManageOptions{SkipLP: true})
	if err != nil {
		panic(err)
	}
	rows := []struct {
		name    string
		g       *dag.Graph
		paper   string
		planned *core.Plan
	}{
		{"Glucose", assays.GlucoseDAG(), "2", glucosePlan},
		{"Enzyme", assays.EnzymeDAG(4), "85", managed.Plan},
		{"Enzyme10", assays.EnzymeDAG(10), "1313", nil},
	}
	for _, r := range rows {
		naive := regen.CountNaive(r.g, c, regen.Options{})
		withPlan := "-"
		if r.planned != nil {
			withPlan = fmt.Sprintf("%d", regen.CountPlanned(r.planned).Regenerations)
		}
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%d (%s)", naive.Regenerations, r.paper),
			withPlan,
		})
	}
	t.Notes = append(t.Notes,
		"naive model documented in package regen; absolute counts differ from BioStream's unspecified model by a small factor, the growth shape matches")
	return t
}

// All runs every experiment. full enables the long Enzyme10 LP solve.
func All(full bool, sweepN int) []*Table {
	if sweepN == 0 {
		sweepN = 5
	}
	return []*Table{
		Fig5(),
		Glucose(),
		Glycomics(),
		Enzyme(),
		Rounding(),
		Table2(full),
		ScalingTable(sweepN),
		LPAblation(),
		ILP(ILPBounds{}),
		Regen(),
		CascadeDepth(),
		ReplicaSweep(),
		RegenStrategy(),
		OutputSkewSweep(),
		Robustness(0),
		MarginSweep(),
		Durability(),
		Replan(0),
	}
}
