package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"aquavol/internal/assays"
	"aquavol/internal/certify"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/lang"
)

// E16: the proof-carrying-plans mutation matrix. The certification layer
// claims that no plan a buggy (or sabotaged) solver could emit reaches
// execution; this experiment earns that claim by enumerating every
// single-field perturbation of every shipped plan — each node volume,
// production, edge volume, dual, and reduced cost, plus coherent
// over-capacity and under-least-count scalings, shrunken live boundary
// readings, and corrupted instruction patches — and asserting that the
// checker kills each mutant with exactly one typed cause. A surviving
// mutant fails the experiment (and the CI gate built on it).
//
// The kill table is deterministic: mutants are enumerated in id order
// and the checker reports its first violation deterministically, so two
// runs render byte-identical tables (diffed in CI). Wall-clock numbers —
// the certify-vs-pipeline overhead — appear only in the JSON report.

// certifyLiveVol is the live boundary reading the residual fixture is
// solved against; mutants shrink it to 90%.
const certifyLiveVol = 37.5

// CertifyCell is one (case, field) aggregate of the mutation matrix.
type CertifyCell struct {
	Case    string         `json:"case"`
	Field   string         `json:"field"`
	Mutants int            `json:"mutants"`
	Killed  int            `json:"killed"`
	Causes  map[string]int `json:"causes"`
}

// CertifyOverhead is one assay's certify-vs-solve timing: what
// CheckPlan adds on top of the planning stage it gates.
type CertifyOverhead struct {
	Assay string `json:"assay"`
	// Baseline names what Solve times (the managed planning pipeline
	// certification fail-stops).
	Baseline    string     `json:"baseline"`
	Solve       SolverStat `json:"solve"`
	Certify     SolverStat `json:"certify"`
	OverheadPct float64    `json:"overhead_pct"`
}

// CertifyReport is the JSON shape of BENCH_certify.json.
type CertifyReport struct {
	Schema  string        `json:"schema"`
	Cells   []CertifyCell `json:"cells"`
	Mutants int           `json:"mutants"`
	Killed  int           `json:"killed"`
	// Overhead records certify p50 against the gated planning stage's
	// p50, per shipped assay. The exact dyadic checker runs in tens of
	// microseconds, so on solve-dominated assays (enzyme4's managed LP
	// hierarchy) it stays a few percent; on microsecond-scale assays
	// (glucose) the ratio is dominated by how trivially cheap the solve
	// is, and the absolute cost is the meaningful number — see
	// EXPERIMENTS.md E16.
	Overhead []CertifyOverhead `json:"overhead"`
}

// certifyCauses names the typed sentinels in severity-table order; a
// killed mutant must match exactly one.
var certifyCauses = []struct {
	name string
	err  error
}{
	{"shape", certify.ErrShape},
	{"conservation", certify.ErrConservation},
	{"capacity", certify.ErrCapacity},
	{"least-count", certify.ErrLeastCount},
	{"availability", certify.ErrAvailability},
	{"primal", certify.ErrPrimal},
	{"dual", certify.ErrDual},
	{"gap", certify.ErrGap},
	{"patch", certify.ErrPatch},
	{"hash", certify.ErrHash},
}

// certifyMutant is one enumerated perturbation: check applies it to a
// fresh clone and runs the certifier.
type certifyMutant struct {
	cse, field string
	check      func() error
}

// clonePlan deep-copies a plan's numeric payload (the graph is shared:
// mutants perturb certificates, never the problem).
func clonePlan(p *core.Plan) *core.Plan {
	q := *p
	q.NodeVnorm = append([]float64(nil), p.NodeVnorm...)
	q.EdgeVnorm = append([]float64(nil), p.EdgeVnorm...)
	q.NodeVolume = append([]float64(nil), p.NodeVolume...)
	q.EdgeVolume = append([]float64(nil), p.EdgeVolume...)
	q.Production = append([]float64(nil), p.Production...)
	q.Duals = append([]float64(nil), p.Duals...)
	q.ReducedCosts = append([]float64(nil), p.ReducedCosts...)
	q.Underflows = append([]core.Underflow(nil), p.Underflows...)
	return &q
}

// planMutants enumerates every single-field perturbation of one solved
// plan, plus the two coherent scalings that preserve conservation.
func planMutants(cse string, base *core.Plan, c core.Config, avail core.Availability) []certifyMutant {
	check := func(mutate func(*core.Plan)) func() error {
		return func() error {
			p := clonePlan(base)
			mutate(p)
			return certify.CheckPlan(p, c, avail)
		}
	}
	var ms []certifyMutant
	for _, n := range base.Graph.Nodes() {
		if n == nil {
			continue
		}
		id := n.ID()
		ms = append(ms,
			certifyMutant{cse, "node-volume", check(func(p *core.Plan) { p.NodeVolume[id] += 0.5 })},
			certifyMutant{cse, "production", check(func(p *core.Plan) { p.Production[id] -= 0.5 })})
	}
	for _, e := range base.Graph.Edges() {
		if e == nil {
			continue
		}
		id := e.ID()
		ms = append(ms,
			certifyMutant{cse, "edge-volume", check(func(p *core.Plan) { p.EdgeVolume[id] += 0.5 })})
	}
	scale := func(k float64) func(*core.Plan) {
		return func(p *core.Plan) {
			for i := range p.NodeVolume {
				p.NodeVolume[i] *= k
			}
			for i := range p.Production {
				p.Production[i] *= k
			}
			for i := range p.EdgeVolume {
				p.EdgeVolume[i] *= k
			}
		}
	}
	ms = append(ms, certifyMutant{cse, "scale-up", check(scale(1.2))})
	if _, min := base.MinDispense(); min > 0 {
		ms = append(ms, certifyMutant{cse, "scale-down", check(scale(0.5 * c.LeastCount / min))})
	}
	for i := range base.Duals {
		i := i
		ms = append(ms,
			certifyMutant{cse, "dual", check(func(p *core.Plan) { p.Duals[i] += 0.05 })})
	}
	for i := range base.ReducedCosts {
		i := i
		ms = append(ms,
			certifyMutant{cse, "reduced-cost", check(func(p *core.Plan) { p.ReducedCosts[i] += 0.05 })})
	}
	return ms
}

// certifyResidual builds and solves the replanning fixture (in1,in2 →
// mix 1:3 → incubate → sense, executed through the mix): the residual is
// fed by one live vessel holding certifyLiveVol.
func certifyResidual() (*core.ResidualPlan, error) {
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	m := g.AddMix("M", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 3})
	h := g.AddUnary(dag.Incubate, "H", m)
	g.AddUnary(dag.Sense, "end", h)
	done := map[int]bool{in1.ID(): true, in2.ID(): true, m.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		return nil, err
	}
	return core.SolveResidual(r, cfg(), func(int, string) (float64, bool) { return certifyLiveVol, true })
}

// residualMutants enumerates replan-side perturbations: plan fields of
// the residual plan, a shrunken live reading per boundary, and a
// corrupted or unresolvable instruction patch per patched pc.
func residualMutants(rp *core.ResidualPlan, c core.Config) []certifyMutant {
	cse := "residual/" + rp.Method
	liveFull := func(int, string) (float64, bool) { return certifyLiveVol, true }
	check := func(mutate func(*core.Plan)) func() error {
		return func() error {
			q := clonePlan(rp.Plan)
			mutate(q)
			return certify.CheckResidual(&core.ResidualPlan{Plan: q, Residual: rp.Residual, Method: rp.Method}, c, liveFull)
		}
	}
	var ms []certifyMutant
	for _, n := range rp.Plan.Graph.Nodes() {
		if n == nil {
			continue
		}
		id := n.ID()
		ms = append(ms,
			certifyMutant{cse, "node-volume", check(func(p *core.Plan) { p.NodeVolume[id] += 0.5 })},
			certifyMutant{cse, "production", check(func(p *core.Plan) { p.Production[id] -= 0.5 })})
	}
	for _, e := range rp.Plan.Graph.Edges() {
		if e == nil {
			continue
		}
		id := e.ID()
		ms = append(ms,
			certifyMutant{cse, "edge-volume", check(func(p *core.Plan) { p.EdgeVolume[id] += 0.5 })})
	}
	for _, b := range rp.Residual.Boundaries {
		b := b
		ms = append(ms, certifyMutant{cse, "live", func() error {
			shrunk := func(id int, port string) (float64, bool) {
				if id == b.SourceID && port == b.SourcePort {
					return 0.9 * certifyLiveVol, true
				}
				return certifyLiveVol, true
			}
			return certify.CheckResidual(rp, c, shrunk)
		}})
	}

	// Patches exactly as the repair engine builds them: pc → re-planned
	// edge volume, enumerated in original-edge-id order for determinism.
	vols := rp.EdgeVolumes()
	origs := make([]int, 0, len(vols))
	for orig := range vols {
		origs = append(origs, orig)
	}
	sort.Ints(origs)
	patches := map[int]float64{}
	edges := map[int]int{}
	for i, orig := range origs {
		patches[100+i] = vols[orig]
		edges[100+i] = orig
	}
	resolve := func(pc int) (int, int) {
		if e, ok := edges[pc]; ok {
			return e, -1
		}
		return -1, -1
	}
	for i := range origs {
		pc := 100 + i
		ms = append(ms, certifyMutant{cse, "patch", func() error {
			mutated := make(map[int]float64, len(patches))
			for k, v := range patches {
				mutated[k] = v
			}
			mutated[pc] += 0.5
			return certify.CheckPatches(rp, mutated, resolve)
		}})
	}
	ms = append(ms, certifyMutant{cse, "patch-unresolved", func() error {
		return certify.CheckPatches(rp, map[int]float64{7: 1}, func(int) (int, int) { return -1, -1 })
	}})
	return ms
}

// certifyMatrix enumerates and runs the full mutation matrix. Any
// surviving mutant, untyped error, or multi-cause kill is an error.
func certifyMatrix() ([]CertifyCell, error) {
	c := cfg()
	var ms []certifyMutant

	type planCase struct {
		name  string
		solve func() (*core.Plan, error)
		avail core.Availability
	}
	for _, pc := range []planCase{
		{"fig2/dagsolve", func() (*core.Plan, error) { return core.DAGSolve(assays.Fig2DAG(), c, nil) }, nil},
		{"glucose/dagsolve", func() (*core.Plan, error) { return core.DAGSolve(assays.GlucoseDAG(), c, nil) }, nil},
		{"glucose/lp", func() (*core.Plan, error) {
			return core.SolveLP(assays.GlucoseDAG(), c, core.FormulateOptions{}, nil)
		}, nil},
		{"enzyme4/manage", func() (*core.Plan, error) {
			res, err := core.Manage(assays.EnzymeDAG(4), c, core.ManageOptions{})
			if err != nil {
				return nil, err
			}
			return res.Plan, nil
		}, core.StaticAvailability(c)},
	} {
		base, err := pc.solve()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pc.name, err)
		}
		if !base.Feasible() {
			return nil, fmt.Errorf("%s: fixture plan infeasible", pc.name)
		}
		if err := certify.CheckPlan(base, c, pc.avail); err != nil {
			return nil, fmt.Errorf("%s: unmutated plan failed certification: %w", pc.name, err)
		}
		ms = append(ms, planMutants(pc.name, base, c, pc.avail)...)
	}

	rp, err := certifyResidual()
	if err != nil {
		return nil, fmt.Errorf("residual fixture: %w", err)
	}
	if err := certify.CheckResidual(rp, c, func(int, string) (float64, bool) { return certifyLiveVol, true }); err != nil {
		return nil, fmt.Errorf("unmutated residual failed certification: %w", err)
	}
	ms = append(ms, residualMutants(rp, c)...)

	// Run every mutant, aggregating kills per (case, field) in
	// enumeration order.
	var cells []CertifyCell
	idx := map[string]int{}
	for _, m := range ms {
		key := m.cse + "\x00" + m.field
		i, ok := idx[key]
		if !ok {
			i = len(cells)
			idx[key] = i
			cells = append(cells, CertifyCell{Case: m.cse, Field: m.field, Causes: map[string]int{}})
		}
		cells[i].Mutants++
		err := m.check()
		if err == nil {
			return nil, fmt.Errorf("%s/%s: mutant %d survived certification", m.cse, m.field, cells[i].Mutants)
		}
		if !errors.Is(err, certify.ErrCertificate) {
			return nil, fmt.Errorf("%s/%s: mutant died with a non-certification error: %w", m.cse, m.field, err)
		}
		var matched []string
		for _, cz := range certifyCauses {
			if errors.Is(err, cz.err) {
				matched = append(matched, cz.name)
			}
		}
		if len(matched) != 1 {
			return nil, fmt.Errorf("%s/%s: mutant matches %d typed causes %v, want exactly 1 (%w)",
				m.cse, m.field, len(matched), matched, err)
		}
		cells[i].Killed++
		cells[i].Causes[matched[0]]++
	}
	return cells, nil
}

// fmtCauses renders a cell's cause histogram deterministically, in
// severity-table order.
func fmtCauses(causes map[string]int) string {
	var parts []string
	for _, cz := range certifyCauses {
		if n := causes[cz.name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", cz.name, n))
		}
	}
	return strings.Join(parts, " ")
}

// Certify runs E16: the mutation kill matrix plus the
// certify-vs-pipeline overhead measurement, returning the deterministic
// table and the JSON report.
func Certify() (*Table, *CertifyReport, error) {
	cells, err := certifyMatrix()
	if err != nil {
		return nil, nil, err
	}
	report := &CertifyReport{Schema: "aquavol/bench-certify/v1", Cells: cells}
	t := &Table{
		ID:     "E16",
		Title:  "proof-carrying plans: mutation kill matrix (certify layer)",
		Header: []string{"case", "field", "mutants", "killed", "causes"},
		Notes: []string{
			"every node volume, production, edge volume, dual, reduced cost, live boundary, and patch perturbed once; plus coherent over-capacity and under-least-count scalings",
			"the experiment errors out unless every mutant is killed with exactly one typed cause — the 100% kill rate is the table's invariant, not a statistic",
			"per-assay certify-vs-solve overhead is reported only in BENCH_certify.json, keeping this table byte-identical across runs",
		},
	}
	for _, cell := range cells {
		report.Mutants += cell.Mutants
		report.Killed += cell.Killed
		t.Rows = append(t.Rows, []string{
			cell.Case, cell.Field,
			fmt.Sprintf("%d", cell.Mutants), fmt.Sprintf("%d", cell.Killed),
			fmtCauses(cell.Causes),
		})
	}
	t.Rows = append(t.Rows, []string{"total", "", fmt.Sprintf("%d", report.Mutants),
		fmt.Sprintf("%d", report.Killed), ""})

	// Overhead: what certification adds to the planning stage it gates,
	// per shipped assay. fluidc certifies after compile+Manage, so that
	// pipeline is the baseline.
	c := cfg()
	for _, oc := range []struct {
		assay, baseline string
		src             string
		g               func() *dag.Graph
	}{
		{"glucose", "compile+manage", assays.GlucoseSource, nil},
		{"enzyme4", "manage", "", func() *dag.Graph { return assays.EnzymeDAG(4) }},
	} {
		oc := oc
		graph := func() (*dag.Graph, error) {
			if oc.g != nil {
				return oc.g(), nil
			}
			ep, err := lang.Compile(oc.src)
			if err != nil {
				return nil, err
			}
			return ep.Graph, nil
		}
		g, err := graph()
		if err != nil {
			return nil, nil, err
		}
		res, err := core.Manage(g, c, core.ManageOptions{})
		if err != nil {
			return nil, nil, err
		}
		solve, err := measure(oc.assay, oc.baseline, func() error {
			g, err := graph()
			if err != nil {
				return err
			}
			_, err = core.Manage(g, c, core.ManageOptions{})
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		cert, err := measure(oc.assay, "certify", func() error {
			return certify.CheckPlan(res.Plan, c, core.StaticAvailability(c))
		})
		if err != nil {
			return nil, nil, err
		}
		report.Overhead = append(report.Overhead, CertifyOverhead{
			Assay: oc.assay, Baseline: oc.baseline, Solve: solve, Certify: cert,
			OverheadPct: 100 * cert.P50Micros / solve.P50Micros,
		})
	}
	return t, report, nil
}

// WriteCertifyReport encodes BENCH_certify.json.
func WriteCertifyReport(r *CertifyReport) ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
