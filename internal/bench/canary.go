package bench

// The CPU-speed canary: a frozen pure-computation kernel measured and
// recorded alongside the solver rows in BENCH_solver.json. Solver
// throughput on a shared host swings with noisy neighbors and
// frequency scaling by far more than any regression bound worth
// gating; the canary row records how fast the recording host ran a
// fixed ALU-bound workload, so readers of the trajectory file can
// tell a host-speed jump from a real solver change when comparing
// recordings across containers.
//
// DO NOT MODIFY the kernel: recorded trajectories are interpreted
// against it, so changing its cost silently rescales every recorded
// baseline. If it ever must change, re-record BENCH_solver.json in the
// same commit.

// canaryIters sizes the kernel near the mid-size solver cells (~50µs
// per op on the recording container class) so the measurement harness
// treats it like any other cell.
const canaryIters = 20000

// canarySink keeps the kernel's result observable so the compiler
// cannot elide the loop.
var canarySink float64

// canaryKernel runs a fixed xorshift64 + float64 accumulation loop:
// deterministic, allocation-free, and independent of every solver
// package, so no solver PR can change its cost.
func canaryKernel() error {
	x := uint64(0x9E3779B97F4A7C15)
	var acc float64
	for i := 0; i < canaryIters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		acc += float64(x>>40) * 1e-12
	}
	canarySink = acc
	return nil
}
