package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"aquavol/internal/assays"
	"aquavol/internal/budget"
	"aquavol/internal/core"
	"aquavol/internal/faults"
	"aquavol/internal/ilp"
	"aquavol/internal/journal"
	"aquavol/internal/lp"
	recovery "aquavol/internal/recover"
	"aquavol/internal/vfs"
)

// E15: bounded execution. The cancel-at-every-boundary chaos matrix for
// the budget layer, the work-budget analogue of E12's kill-at-every-
// boundary durability matrix. Two halves:
//
//   - solver: each certified planning path (DAGSolve, LP, ILP) runs once
//     with a counting meter to learn its work-unit count W, then is
//     cancelled at a sweep of charge boundaries k; every cancelled run
//     must stop with the typed caller-cancelled cause after exactly k
//     work units, and a budget of exactly W must complete.
//   - exec: a journaled reference run learns its instruction count U and
//     final-state fingerprint, then fresh runs are cancelled at a sweep
//     of instruction boundaries; each must abort with the typed cause,
//     leave a journal with NO outcome record (fail-stop, crash-
//     equivalent), and resume from that journal bit-identical to the
//     uninterrupted run.
//
// The trichotomy — completed / clean typed cancel within bounded work /
// salvaged journal resumes bit-identically — is the table; wall-clock
// cancellation latency and budget-polling overhead are measured
// separately and appear only in the JSON report (BENCH_bounded.json),
// keeping the table deterministic.

// BoundedSolverCase is one planning path of the solver half.
type BoundedSolverCase struct {
	Solver string `json:"solver"`
	Assay  string `json:"assay"`
	// WorkUnits is the reference run's total charge count W.
	WorkUnits int64 `json:"workUnits"`
	// CancelPoints is how many charge boundaries k were swept.
	CancelPoints int `json:"cancelPoints"`
	// CleanCancels counts sweeps that stopped with the typed
	// caller-cancelled cause (errors.Is budget.ErrCancelled).
	CleanCancels int `json:"cleanCancels"`
	// ExactStops counts sweeps whose meter read exactly k work units
	// after the stop: no work at all happens past the cancel boundary.
	ExactStops int `json:"exactStops"`
	// CompletedAtBudget reports that a budget of exactly W work units
	// admitted the whole solve (the boundary is off-by-one tight).
	CompletedAtBudget bool `json:"completedAtBudget"`
}

// BoundedExecCell is one assay of the exec half.
type BoundedExecCell struct {
	Assay   string `json:"assay"`
	Profile string `json:"profile"`
	// WorkUnits is the reference run's instruction count U (the machine
	// charges one unit per instruction, retries included).
	WorkUnits int64 `json:"workUnits"`
	// CancelPoints is how many instruction boundaries were swept.
	CancelPoints int `json:"cancelPoints"`
	// CleanCancels counts sweeps that aborted with the typed cause and
	// wrote NO outcome record — the journal fail-stopped like a crash.
	CleanCancels int `json:"cleanCancels"`
	// Resumed counts sweeps whose salvaged journal resumed to a machine
	// state bit-identical to the uninterrupted reference run's.
	Resumed int `json:"resumed"`
	// CompletedAtBudget reports that a budget of exactly U instructions
	// admitted the whole run.
	CompletedAtBudget bool `json:"completedAtBudget"`
}

// BoundedReport is the JSON shape of BENCH_bounded.json. The latency
// and overhead numbers are wall-clock measurements and live only here,
// never in the deterministic table.
type BoundedReport struct {
	Schema string              `json:"schema"`
	Solver []BoundedSolverCase `json:"solver"`
	Exec   []BoundedExecCell   `json:"exec"`
	// Cancellation latency: time from a sibling goroutine's Cancel()
	// call to the in-flight solve returning with the typed cause.
	CancelLatencySamples   int     `json:"cancelLatencySamples"`
	CancelLatencyP50Micros float64 `json:"cancelLatencyP50Micros"`
	CancelLatencyP99Micros float64 `json:"cancelLatencyP99Micros"`
	// Budget-polling overhead: DAGSolve throughput with no meter vs with
	// an armed counting meter, same assay, paired measurement.
	BaselinePlansPerSec float64 `json:"baselinePlansPerSec"`
	MeteredPlansPerSec  float64 `json:"meteredPlansPerSec"`
	OverheadPct         float64 `json:"overheadPct"`
}

// boundedSeed fixes the exec matrix; the whole table is reproducible.
const boundedSeed = 42

// boundedSweep returns up to max cancel points covering 1..n, always
// including both ends: the first charge and the final one.
func boundedSweep(n int64, max int) []int64 {
	if n <= 0 {
		return nil
	}
	if int64(max) >= n {
		points := make([]int64, 0, n)
		for k := int64(1); k <= n; k++ {
			points = append(points, k)
		}
		return points
	}
	stride := (n + int64(max) - 1) / int64(max) // ceil: never collides with 1 or n
	points := []int64{1}
	for k := 1 + stride; k < n; k += stride {
		points = append(points, k)
	}
	return append(points, n)
}

// boundedSolverCases sweeps cancellation across every certified planning
// path. Each runCase builds its problem from scratch so runs are
// independent; the meter is the only shared state.
func boundedSolverCases() ([]BoundedSolverCase, error) {
	c := cfg()
	unitCfg := core.Config{
		MaxCapacity: c.MaxCapacity / c.LeastCount,
		LeastCount:  1,
		OutputSkew:  c.OutputSkew,
	}
	paths := []struct {
		solver, assay string
		run           func(m *budget.Meter) error
	}{
		{"dagsolve", "glucose", func(m *budget.Meter) error {
			cc := c
			cc.Budget = m
			_, err := core.DAGSolve(assays.GlucoseDAG(), cc, nil)
			return err
		}},
		{"lp", "enzyme4", func(m *budget.Meter) error {
			f, err := core.Formulate(assays.EnzymeDAG(4), c, core.FormulateOptions{}, nil)
			if err != nil {
				return err
			}
			_, err = f.Prob.Solve(lp.Options{Budget: m})
			return err
		}},
		{"ilp", "glucose", func(m *budget.Meter) error {
			f, err := core.Formulate(assays.GlucoseDAG(), unitCfg, core.FormulateOptions{}, nil)
			if err != nil {
				return err
			}
			_, err = ilp.Solve(f.Prob, ilp.Options{MaxNodes: 20000, Budget: m})
			return err
		}},
	}

	var cases []BoundedSolverCase
	for _, pc := range paths {
		// Reference: a counting meter (no limits) learns the work count.
		ref := budget.New(0)
		if err := pc.run(ref); err != nil {
			return nil, fmt.Errorf("%s/%s reference: %w", pc.solver, pc.assay, err)
		}
		cse := BoundedSolverCase{Solver: pc.solver, Assay: pc.assay, WorkUnits: ref.Used()}
		for _, k := range boundedSweep(cse.WorkUnits, 24) {
			m := budget.New(0).CancelAfter(k)
			err := pc.run(m)
			cse.CancelPoints++
			if !errors.Is(err, budget.ErrCancelled) {
				return nil, fmt.Errorf("%s/%s cancel at %d: err = %w, want caller-cancelled",
					pc.solver, pc.assay, k, err)
			}
			cse.CleanCancels++
			if m.Used() == k {
				cse.ExactStops++
			}
		}
		// The boundary is tight: exactly W work units complete the solve.
		if err := pc.run(budget.New(cse.WorkUnits)); err != nil {
			return nil, fmt.Errorf("%s/%s with budget %d: %w", pc.solver, pc.assay, cse.WorkUnits, err)
		}
		cse.CompletedAtBudget = true
		cases = append(cases, cse)
	}
	return cases, nil
}

// boundedExecCell runs the exec half for one assay: cancel at a sweep of
// instruction boundaries, assert fail-stop + bit-identical resume.
func boundedExecCell(ca *compiledAssay, pname string, snapshotEvery int, dir string) (*BoundedExecCell, error) {
	p, ok := faults.Preset(pname)
	if !ok {
		return nil, fmt.Errorf("unknown fault preset %q", pname)
	}
	opts := recovery.Options{SnapshotEvery: snapshotEvery}
	cell := &BoundedExecCell{Assay: ca.name, Profile: pname}

	runBudgeted := func(meter *budget.Meter, jw *journal.Writer) (*recovery.Outcome, string, error) {
		m, err := ca.newBudgetedMachine(p, boundedSeed, meter)
		if err != nil {
			return nil, "", err
		}
		ropts := opts
		ropts.Journal = jw
		ropts.Budget = meter
		out := recovery.Run(m, ca.cg.Prog, ca.compiled(), ropts)
		fp, err := machineFP(m)
		return out, fp, err
	}

	// Reference: uninterrupted journaled run with a counting meter.
	refPath := filepath.Join(dir, ca.name+"-"+pname+"-bounded-ref.aqj")
	jw, f, err := journal.Create(vfs.OS{}, refPath, false)
	if err != nil {
		return nil, err
	}
	refMeter := budget.New(0)
	refOut, want, err := runBudgeted(refMeter, jw)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("closing reference journal: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	if refOut.Status == recovery.Aborted {
		return nil, fmt.Errorf("reference run aborted: %w", refOut.Err)
	}
	cell.WorkUnits = refMeter.Used()

	// Cancel at a sweep of instruction boundaries; each must fail-stop
	// (typed cause, no outcome record) and resume bit-identically.
	cancelPath := filepath.Join(dir, ca.name+"-"+pname+"-bounded-cancel.aqj")
	for _, k := range boundedSweep(cell.WorkUnits, 24) {
		jw, f, err := journal.Create(vfs.OS{}, cancelPath, true)
		if err != nil {
			return nil, err
		}
		out, _, err := runBudgeted(budget.New(0).CancelAfter(k), jw)
		if cerr := f.Close(); cerr != nil && err == nil { //fluidvet:allow syncerr the cancelled journal is crash-equivalent by design
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("cancel at %d: %w", k, err)
		}
		cell.CancelPoints++
		if out.Status != recovery.Aborted || !errors.Is(out.Err, budget.ErrCancelled) {
			return nil, fmt.Errorf("cancel at %d: status %v err %w, want aborted/caller-cancelled",
				k, out.Status, out.Err)
		}
		recs, _, err := journal.Recover(vfs.OS{}, cancelPath)
		if err != nil {
			return nil, fmt.Errorf("cancel at %d: recovering journal: %w", k, err)
		}
		outcomeFree := true
		for _, r := range recs {
			if r.Kind == journal.KindOutcome {
				outcomeFree = false
			}
		}
		if outcomeFree {
			cell.CleanCancels++
		}
		got, err := resumeFromFile(ca, p, boundedSeed, opts, cancelPath)
		if err != nil {
			return nil, fmt.Errorf("resume after cancel at %d: %w", k, err)
		}
		if got == want {
			cell.Resumed++
		}
	}

	// Exactly U instructions of budget admit the whole run.
	out, _, err := runBudgeted(budget.New(cell.WorkUnits), nil)
	if err != nil {
		return nil, err
	}
	cell.CompletedAtBudget = out.Status != recovery.Aborted
	return cell, nil
}

// BoundedOutcomes runs the full deterministic matrix: every solver path
// and every shipped assay. No wall-clock measurement happens here.
func BoundedOutcomes(snapshotEvery int) ([]BoundedSolverCase, []BoundedExecCell, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = 4
	}
	solver, err := boundedSolverCases()
	if err != nil {
		return nil, nil, err
	}
	cas, err := robustnessAssays()
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "aquavol-bounded")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	var exec []BoundedExecCell
	for _, ca := range cas {
		cell, err := boundedExecCell(ca, "mild", snapshotEvery, dir)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", ca.name, err)
		}
		exec = append(exec, *cell)
	}
	return solver, exec, nil
}

// cancelLatency measures the wall-clock gap between a sibling
// goroutine's Cancel() and the in-flight solve returning with the typed
// cause. The worker loops full DAGSolves against a shared meter; the
// measuring side waits for the loop to be hot, then cancels and times
// the detection. Reported in the JSON only.
func cancelLatency(trials int) (p50, p99 float64, n int, err error) {
	c := cfg()
	var lats []time.Duration
	for i := 0; i < trials; i++ {
		meter := budget.New(0)
		started := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			first := true
			for {
				cc := c
				cc.Budget = meter
				_, serr := core.DAGSolve(assays.EnzymeDAG(10), cc, nil)
				if serr != nil {
					done <- serr
					return
				}
				if first {
					close(started)
					first = false
				}
			}
		}()
		<-started
		t0 := time.Now() //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		meter.Cancel()
		serr := <-done
		lat := time.Since(t0) //fluidvet:allow determinism wall-clock timing is the benchmark's measurement, reported not replayed
		if !errors.Is(serr, budget.ErrCancelled) {
			return 0, 0, 0, fmt.Errorf("latency trial %d: err = %w, want caller-cancelled", i, serr)
		}
		lats = append(lats, lat)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) float64 {
		idx := int(q*float64(len(lats))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		return float64(lats[idx].Nanoseconds()) / 1000
	}
	return pct(0.50), pct(0.99), len(lats), nil
}

// budgetOverhead compares DAGSolve throughput without a meter against
// the same solve with an armed counting meter. Glucose DAGSolve is the
// worst case for polling overhead (the highest charges-per-second of
// any path), so each sample batches solves to amortize timer noise, the
// two arms interleave, and each takes its best rep. The returned
// numbers are batch rates — only their ratio is meaningful.
func budgetOverhead() (base, metered float64, err error) {
	c := cfg()
	const (
		reps  = 3
		batch = 64
	)
	mc := c
	mc.Budget = budget.New(0) // one armed counting meter, reused: pure polling cost
	for i := 0; i < reps; i++ {
		st, merr := measure("glucose", "dagsolve-nometer", func() error {
			for j := 0; j < batch; j++ {
				if _, err := core.DAGSolve(assays.GlucoseDAG(), c, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if merr != nil {
			return 0, 0, merr
		}
		if st.PlansPerSec > base {
			base = st.PlansPerSec
		}
		st, merr = measure("glucose", "dagsolve-meter", func() error {
			for j := 0; j < batch; j++ {
				if _, err := core.DAGSolve(assays.GlucoseDAG(), mc, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if merr != nil {
			return 0, 0, merr
		}
		if st.PlansPerSec > metered {
			metered = st.PlansPerSec
		}
	}
	return base, metered, nil
}

// Bounded renders the E15 matrix and assembles the JSON report. The
// table is byte-for-byte deterministic (ci runs it twice and diffs);
// latency and overhead are measured after the matrix and appear only in
// the report.
func Bounded() (*Table, *BoundedReport, error) {
	solver, exec, err := BoundedOutcomes(4)
	if err != nil {
		return nil, nil, err
	}
	report := &BoundedReport{Schema: "aquavol/bench-bounded/v1", Solver: solver, Exec: exec}
	t := &Table{
		ID:    "E15/Bounded",
		Title: "bounded execution: cancel at every boundary, typed stop, bit-identical resume",
		Header: []string{"stage", "case", "work units", "cancel points",
			"clean typed cancels", "exact stops / identical resumes", "completes at budget"},
	}
	yes := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "NO"
	}
	for _, s := range solver {
		t.Rows = append(t.Rows, []string{
			"solver", s.Solver + "/" + s.Assay,
			fmt.Sprintf("%d", s.WorkUnits),
			fmt.Sprintf("%d", s.CancelPoints),
			fmt.Sprintf("%d/%d", s.CleanCancels, s.CancelPoints),
			fmt.Sprintf("%d/%d", s.ExactStops, s.CancelPoints),
			yes(s.CompletedAtBudget),
		})
	}
	for _, e := range exec {
		t.Rows = append(t.Rows, []string{
			"exec", e.Assay + "/" + e.Profile,
			fmt.Sprintf("%d", e.WorkUnits),
			fmt.Sprintf("%d", e.CancelPoints),
			fmt.Sprintf("%d/%d", e.CleanCancels, e.CancelPoints),
			fmt.Sprintf("%d/%d", e.Resumed, e.CancelPoints),
			yes(e.CompletedAtBudget),
		})
	}
	t.Notes = append(t.Notes,
		"solver: cancel at charge k must stop with the typed cause after exactly k work units; a budget of exactly W completes",
		"exec: cancel at instruction k fail-stops the journal (typed cause, no outcome record) and the salvaged prefix resumes bit-identical to the uninterrupted run",
		fmt.Sprintf("snapshot cadence 4 boundaries; fixed seed %d; cancellation latency and polling overhead are wall-clock and live in the JSON report only", boundedSeed))

	p50, p99, n, err := cancelLatency(32)
	if err != nil {
		return nil, nil, err
	}
	report.CancelLatencyP50Micros, report.CancelLatencyP99Micros, report.CancelLatencySamples = p50, p99, n
	base, metered, err := budgetOverhead()
	if err != nil {
		return nil, nil, err
	}
	report.BaselinePlansPerSec, report.MeteredPlansPerSec = base, metered
	if metered > 0 {
		report.OverheadPct = 100 * (base/metered - 1)
	}
	return t, report, nil
}

// WriteBoundedReport renders the report as BENCH_bounded.json's bytes.
func WriteBoundedReport(r *BoundedReport) ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
