package ais

import "testing"

// FuzzAssemble: the assembler must never panic and must round-trip
// whatever it accepts.
func FuzzAssemble(f *testing.F) {
	f.Add("move mixer1, s2, 4\nmix mixer1, 10\nhalt")
	f.Add("glucose{\n  input s1, ip1 ;Glucose\n}\n")
	f.Add("lbl:\ndry-jz r0, lbl")
	f.Add("separate.LC separator2, 2400")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil || p == nil {
			return
		}
		// Accepted programs format and re-assemble to the same listing.
		again, err := Assemble(p.String())
		if err != nil {
			t.Fatalf("formatted listing did not re-assemble: %v\n%s", err, p.String())
		}
		if len(again.Instrs) != len(p.Instrs) {
			t.Fatalf("round trip changed instruction count")
		}
	})
}
