// Package ais defines the AquaCore Instruction Set (Table 1 of the paper
// and [2]): the wet instructions executed by the fluidic datapath (move,
// mix, incubate, separate.*, sense.*, concentrate, input, output) and the
// dry instructions executed by the electronic control (dry-mov, dry-add,
// dry-sub, dry-mul, ...). The paper shows a subset of the dry ISA; this
// package completes it with the comparison and conditional-skip
// instructions any real control program needs (dry-lt/le/eq, dry-not,
// dry-jz), in the spirit of the microcontroller-based electronic control.
//
// Wet operands name reservoirs (s1, s2, ...), functional units (mixer1,
// heater1, separator1, sensor1, ...) and their sub-ports
// (separator1.matrix, separator1.pusher, separator1.out1/out2), and I/O
// ports (ip1, op1, ...). Dry operands name registers/variables of the
// electronic control.
package ais

import (
	"fmt"
	"sort"
	"strings"
)

// Opcode enumerates AIS instructions.
type Opcode int

const (
	// Nop does nothing (assembler padding).
	Nop Opcode = iota
	// Move transfers a relative volume from Src to Dst; the runtime
	// translates relative volumes to absolute ones (§2.1).
	Move
	// MoveAbs transfers an absolute volume (in least-count units).
	MoveAbs
	// Input draws fluid from an input port into a reservoir.
	Input
	// Output sends fluid from a reservoir/unit to an output port.
	Output
	// Mix runs the mixer for Args[0] seconds.
	Mix
	// Incubate heats (temp, time).
	Incubate
	// Concentrate concentrates (temp, time).
	Concentrate
	// SeparateCE is electrophoresis-based separation (Esep, len, time).
	SeparateCE
	// SeparateSize separates by size (time).
	SeparateSize
	// SeparateAF separates by affinity to a pre-loaded matrix (time).
	SeparateAF
	// SeparateLC is liquid-chromatography separation (time).
	SeparateLC
	// SenseOD senses optical density into a dry register.
	SenseOD
	// SenseFL senses fluorescence into a dry register.
	SenseFL
	// DryMov sets Dst := Src (register or immediate).
	DryMov
	// DryAdd sets Dst += Src.
	DryAdd
	// DrySub sets Dst -= Src.
	DrySub
	// DryMul sets Dst *= Src.
	DryMul
	// DryDiv sets Dst /= Src.
	DryDiv
	// DryMod sets Dst := Dst mod Src (integer semantics).
	DryMod
	// DryLT sets Dst := Dst < Src ? 1 : 0.
	DryLT
	// DryLE sets Dst := Dst <= Src ? 1 : 0.
	DryLE
	// DryEQ sets Dst := Dst == Src ? 1 : 0.
	DryEQ
	// DryNot sets Dst := Dst == 0 ? 1 : 0.
	DryNot
	// DryJZ jumps to the label operand when Dst == 0.
	DryJZ
	// DryJump jumps unconditionally.
	DryJump
	// Halt stops execution.
	Halt
)

var opcodeNames = map[Opcode]string{
	Nop: "nop", Move: "move", MoveAbs: "move-abs", Input: "input",
	Output: "output", Mix: "mix", Incubate: "incubate",
	Concentrate: "concentrate", SeparateCE: "separate.CE",
	SeparateSize: "separate.SIZE", SeparateAF: "separate.AF",
	SeparateLC: "separate.LC", SenseOD: "sense.OD", SenseFL: "sense.FL",
	DryMov: "dry-mov", DryAdd: "dry-add", DrySub: "dry-sub",
	DryMul: "dry-mul", DryDiv: "dry-div", DryMod: "dry-mod",
	DryLT: "dry-lt", DryLE: "dry-le",
	DryEQ: "dry-eq", DryNot: "dry-not", DryJZ: "dry-jz", DryJump: "dry-jmp",
	Halt: "halt",
}

var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opcodeNames))
	for k, v := range opcodeNames {
		m[v] = k
	}
	return m
}()

func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// IsWet reports whether the instruction occupies the fluidic datapath.
func (o Opcode) IsWet() bool {
	switch o {
	case Move, MoveAbs, Input, Output, Mix, Incubate, Concentrate,
		SeparateCE, SeparateSize, SeparateAF, SeparateLC, SenseOD, SenseFL:
		return true
	}
	return false
}

// IsSeparate reports whether the opcode is a separation flavor.
func (o Opcode) IsSeparate() bool {
	switch o {
	case SeparateCE, SeparateSize, SeparateAF, SeparateLC:
		return true
	}
	return false
}

// OperandKind classifies operands.
type OperandKind int

const (
	// NoOperand is an empty operand slot.
	NoOperand OperandKind = iota
	// Reservoir is a storage reservoir s<N>.
	Reservoir
	// Unit is a functional unit (mixer1, heater1, separator1, sensor1),
	// optionally with a sub-port (separator1.matrix/.pusher/.out1/.out2).
	Unit
	// InPort is an input port ip<N>.
	InPort
	// OutPort is an output port op<N>.
	OutPort
	// DryReg is an electronic-control register/variable.
	DryReg
	// Imm is a numeric immediate.
	Imm
	// Label is a jump target.
	Label
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	// Name is the textual base name (s3, mixer1, r0, ip2, loop_end).
	Name string
	// Sub is a unit sub-port (matrix, pusher, out1, out2).
	Sub string
	// Value is the immediate value.
	Value float64
}

// Res builds a reservoir operand.
func Res(n int) Operand { return Operand{Kind: Reservoir, Name: fmt.Sprintf("s%d", n)} }

// FU builds a functional-unit operand.
func FU(name string) Operand { return Operand{Kind: Unit, Name: name} }

// FUPort builds a unit sub-port operand.
func FUPort(name, sub string) Operand { return Operand{Kind: Unit, Name: name, Sub: sub} }

// IP builds an input-port operand.
func IP(n int) Operand { return Operand{Kind: InPort, Name: fmt.Sprintf("ip%d", n)} }

// OP builds an output-port operand.
func OP(n int) Operand { return Operand{Kind: OutPort, Name: fmt.Sprintf("op%d", n)} }

// Reg builds a dry-register operand.
func Reg(name string) Operand { return Operand{Kind: DryReg, Name: name} }

// Num builds an immediate operand.
func Num(v float64) Operand { return Operand{Kind: Imm, Value: v} }

// Lbl builds a label operand.
func Lbl(name string) Operand { return Operand{Kind: Label, Name: name} }

func (o Operand) String() string {
	switch o.Kind {
	case NoOperand:
		return "_"
	case Imm:
		return trimNum(o.Value)
	case Unit:
		if o.Sub != "" {
			return o.Name + "." + o.Sub
		}
		return o.Name
	default:
		return o.Name
	}
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.6f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	return s
}

// Instr is one AIS instruction.
type Instr struct {
	Op       Opcode
	Operands []Operand
	// Edge annotates wet moves with the volume-DAG edge they realize
	// (-1 when none, e.g. auxiliary loads). Used by the runtime volume
	// manager; not part of the textual ISA.
	Edge int
	// Node annotates operation-completing instructions (mix, incubate,
	// separate.*, sense.*) with the DAG node they realize (-1 otherwise).
	Node int
	// Comment is emitted after ';' in the listing.
	Comment string
	// Line is the 1-based source line the instruction was assembled from
	// (0 for programs built programmatically, e.g. by codegen). It anchors
	// assembler and verifier diagnostics; it is not part of the textual
	// ISA and does not round-trip.
	Line int
}

// String renders the instruction in the paper's listing syntax.
func (i Instr) String() string {
	var b strings.Builder
	b.WriteString(i.Op.String())
	for j, op := range i.Operands {
		if j == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(op.String())
	}
	if i.Comment != "" {
		fmt.Fprintf(&b, " ;%s", i.Comment)
	}
	return b.String()
}

// Program is an assembled AIS program.
type Program struct {
	Name   string
	Instrs []Instr
	// Labels maps label names to instruction indices.
	Labels map[string]int
}

// String renders the full listing, with labels on their own lines.
func (p *Program) String() string {
	byIndex := map[int][]string{}
	for name, ix := range p.Labels {
		byIndex[ix] = append(byIndex[ix], name)
	}
	for _, names := range byIndex {
		sort.Strings(names)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s{\n", p.Name)
	for i, in := range p.Instrs {
		for _, l := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %s\n", in)
	}
	// Labels bound one past the last instruction (end-of-program jump
	// targets) are legal and must survive the round trip.
	for _, l := range byIndex[len(p.Instrs)] {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	b.WriteString("}\n")
	return b.String()
}
