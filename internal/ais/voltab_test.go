package ais

import (
	"strings"
	"testing"
)

func TestVolumeTableRoundTrip(t *testing.T) {
	tab := VolumeTable{3: 14.9006623, 0: 100, 17: 0.1}
	text := tab.String()
	if !strings.HasPrefix(text, "aquavol-voltab v1\n") {
		t.Fatalf("missing header:\n%s", text)
	}
	back, err := ParseVolumeTable(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("entries = %d, want 3", len(back))
	}
	for k, v := range tab {
		if got := back[k]; got < v*(1-1e-8) || got > v*(1+1e-8) {
			t.Errorf("entry %d = %v, want %v", k, got, v)
		}
	}
	// Index order in the output is sorted.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if !strings.HasPrefix(lines[1], "0 ") || !strings.HasPrefix(lines[2], "3 ") {
		t.Errorf("entries not sorted:\n%s", text)
	}
}

func TestVolumeTableParseErrors(t *testing.T) {
	cases := []string{
		"",                            // no header
		"wrong header\n1 2",           // bad header
		"aquavol-voltab v1\nx 2",      // bad index
		"aquavol-voltab v1\n-1 2",     // negative index
		"aquavol-voltab v1\n1 abc",    // bad volume
		"aquavol-voltab v1\n1 -5",     // negative volume
		"aquavol-voltab v1\n1 2\n1 3", // duplicate
		"aquavol-voltab v1\n1 2 3",    // wrong arity
	}
	for _, src := range cases {
		if _, err := ParseVolumeTable(src); err == nil {
			t.Errorf("ParseVolumeTable(%q) should fail", src)
		}
	}
}

func TestVolumeTableCommentsAndBlanks(t *testing.T) {
	tab, err := ParseVolumeTable("aquavol-voltab v1\n# comment\n\n2 7.5\n")
	if err != nil {
		t.Fatal(err)
	}
	if tab[2] != 7.5 {
		t.Fatalf("tab = %v", tab)
	}
}
