package ais

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// VolumeTable maps instruction indices to the absolute volume (in
// nanoliters) their move should transfer. It is the serialized form of a
// volume plan: together with the textual AIS listing it makes a compiled
// assay executable without recompilation (the listing's relative volumes
// plus the table's absolute translation — the compiler/runtime split of
// §2.1).
type VolumeTable map[int]float64

// String serializes the table ("aquavol-voltab v1" header, then
// "index volume" lines in index order).
func (t VolumeTable) String() string {
	idx := make([]int, 0, len(t))
	for i := range t {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var b strings.Builder
	b.WriteString("aquavol-voltab v1\n")
	for _, i := range idx {
		fmt.Fprintf(&b, "%d %.9g\n", i, t[i])
	}
	return b.String()
}

// ParseVolumeTable parses the String format.
func ParseVolumeTable(src string) (VolumeTable, error) {
	lines := strings.Split(strings.TrimSpace(src), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "aquavol-voltab v1" {
		return nil, fmt.Errorf("ais: not a volume table (missing header)")
	}
	t := VolumeTable{}
	for ln, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("ais: voltab line %d: want 'index volume', got %q", ln+2, line)
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("ais: voltab line %d: bad index %q", ln+2, fields[0])
		}
		vol, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || vol < 0 {
			return nil, fmt.Errorf("ais: voltab line %d: bad volume %q", ln+2, fields[1])
		}
		if _, dup := t[idx]; dup {
			return nil, fmt.Errorf("ais: voltab line %d: duplicate index %d", ln+2, idx)
		}
		t[idx] = vol
	}
	return t, nil
}
