package ais_test

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/lang"
)

// roundTrip asserts that re-assembling a program's textual listing
// reproduces the listing exactly — the property that makes the .ais file
// a faithful shipping format.
func roundTrip(t *testing.T, prog *ais.Program) {
	t.Helper()
	text := prog.String()
	again, err := ais.Assemble(text)
	if err != nil {
		t.Fatalf("listing did not re-assemble: %v\n%s", err, text)
	}
	if got := again.String(); got != text {
		t.Fatalf("round trip changed the listing:\n--- first\n%s\n--- second\n%s", text, got)
	}
}

func TestRoundTripExampleAssays(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"glucose", assays.GlucoseSource},
		{"glycomics", assays.GlycomicsSource},
		{"enzyme2", assays.EnzymeSource(2)},
		{"enzyme4", assays.EnzymeSource(4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ep, err := lang.Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, cg.Prog)
		})
	}
}

// TestRoundTripFuzzCorpus replays the seeded fuzz corpus as a regular
// test, so `go test` exercises the corpus even without -fuzz.
func TestRoundTripFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzAssemble")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	for _, e := range entries {
		t.Run(e.Name(), func(t *testing.T) {
			src := readCorpusSeed(t, filepath.Join(dir, e.Name()))
			prog, err := ais.Assemble(src)
			if err != nil {
				t.Fatalf("seed does not assemble: %v", err)
			}
			roundTrip(t, prog)
		})
	}
}

// readCorpusSeed parses the "go test fuzz v1" corpus file format: a
// version header followed by one Go-quoted string literal per argument.
func readCorpusSeed(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(strings.TrimSpace(string(data)), "\n", 2)
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		t.Fatalf("%s: not a go fuzz corpus file", path)
	}
	lit := strings.TrimSpace(lines[1])
	lit = strings.TrimSuffix(strings.TrimPrefix(lit, "string("), ")")
	src, err := strconv.Unquote(lit)
	if err != nil {
		t.Fatalf("%s: bad string literal: %v", path, err)
	}
	return src
}
