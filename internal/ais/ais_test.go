package ais

import (
	"testing"
)

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Move, Operands: []Operand{FU("mixer1"), Res(2), Num(4)}}, "move mixer1, s2, 4"},
		{Instr{Op: Input, Operands: []Operand{Res(1), IP(1)}, Comment: "Glucose"}, "input s1, ip1 ;Glucose"},
		{Instr{Op: SenseOD, Operands: []Operand{FU("sensor2"), Reg("Result[1]")}}, "sense.OD sensor2, Result[1]"},
		{Instr{Op: SeparateLC, Operands: []Operand{FU("separator2"), Num(2400)}}, "separate.LC separator2, 2400"},
		{Instr{Op: Move, Operands: []Operand{FUPort("separator2", "matrix"), Res(7)}}, "move separator2.matrix, s7"},
		{Instr{Op: DryMov, Operands: []Operand{Reg("temp"), Num(1)}}, "dry-mov temp, 1"},
		{Instr{Op: DryJZ, Operands: []Operand{Reg("t1"), Lbl("skip_1")}}, "dry-jz t1, skip_1"},
		{Instr{Op: Incubate, Operands: []Operand{FU("heater1"), Num(37), Num(300)}}, "incubate heater1, 37, 300"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `glucose{
  input s1, ip1 ;Glucose
  input s2, ip2 ;Reagent
  move mixer1, s1, 1
  move mixer1, s2, 1
  mix mixer1, 10
  move sensor2, mixer1
  sense.OD sensor2, Result[1]
loop_top:
  dry-mov temp, 1
  dry-mul temp, 10
  dry-jz temp, loop_top
  halt
}`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "glucose" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Instrs) != 11 {
		t.Fatalf("instrs = %d, want 11", len(p.Instrs))
	}
	if p.Labels["loop_top"] != 7 {
		t.Fatalf("label index = %d, want 7", p.Labels["loop_top"])
	}
	// Round trip: formatting and re-assembling is stable.
	again, err := Assemble(p.String())
	if err != nil {
		t.Fatalf("reassemble: %v", err)
	}
	if len(again.Instrs) != len(p.Instrs) {
		t.Fatalf("round trip changed instruction count: %d vs %d", len(again.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i].String() != again.Instrs[i].String() {
			t.Fatalf("instr %d: %q vs %q", i, p.Instrs[i], again.Instrs[i])
		}
	}
}

func TestAssembleOperandKinds(t *testing.T) {
	p, err := Assemble("move separator2.pusher, s8\nsense.FL sensor1, vals\noutput op1, s3\ndry-jz r0, end\nend:\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Instrs[0]
	if in.Operands[0].Kind != Unit || in.Operands[0].Sub != "pusher" {
		t.Fatalf("unit sub-port parsed wrong: %+v", in.Operands[0])
	}
	if p.Instrs[1].Operands[1].Kind != DryReg {
		t.Fatalf("sense target should be DryReg: %+v", p.Instrs[1].Operands[1])
	}
	if p.Instrs[2].Operands[0].Kind != OutPort {
		t.Fatalf("op1 should be OutPort: %+v", p.Instrs[2].Operands[0])
	}
	jz := p.Instrs[3]
	if jz.Operands[0].Kind != DryReg || jz.Operands[1].Kind != Label {
		t.Fatalf("dry-jz operands wrong: %+v", jz.Operands)
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"bogus s1, s2",
		"dry-jz r0, missing_label",
		"dup:\ndup:\nhalt",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestIsWet(t *testing.T) {
	if !Move.IsWet() || !SenseOD.IsWet() || !SeparateLC.IsWet() {
		t.Fatal("wet opcodes misclassified")
	}
	if DryMov.IsWet() || DryJZ.IsWet() || Halt.IsWet() {
		t.Fatal("dry opcodes misclassified")
	}
	if !SeparateCE.IsSeparate() || Mix.IsSeparate() {
		t.Fatal("IsSeparate misclassified")
	}
}
