package ais

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Assemble parses AIS listing text (the format produced by
// Program.String) back into a Program. It exists for the fluidvm CLI and
// for round-trip testing of the instruction encoding. Edge/Node
// annotations are not part of the textual ISA and come back as -1.
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Program header/footer from String().
		if strings.HasSuffix(line, "{") {
			p.Name = strings.TrimSpace(strings.TrimSuffix(line, "{"))
			continue
		}
		if line == "}" {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t,") {
			label := strings.TrimSuffix(line, ":")
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("ais: line %d: duplicate label %q", ln+1, label)
			}
			p.Labels[label] = len(p.Instrs)
			continue
		}
		in, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("ais: line %d: %w", ln+1, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	// Validate label references.
	for i, in := range p.Instrs {
		for _, op := range in.Operands {
			if op.Kind == Label {
				if _, ok := p.Labels[op.Name]; !ok {
					return nil, fmt.Errorf("ais: instruction %d references undefined label %q", i, op.Name)
				}
			}
		}
	}
	return p, nil
}

var (
	reReservoir = regexp.MustCompile(`^s(\d+)$`)
	reInPort    = regexp.MustCompile(`^ip(\d+)$`)
	reOutPort   = regexp.MustCompile(`^op(\d+)$`)
	reUnit      = regexp.MustCompile(`^(mixer|heater|separator|sensor|concentrator)(\d+)(?:\.(\w+))?$`)
)

func parseInstr(line string) (Instr, error) {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, ok := opcodeByName[mnemonic]
	if !ok {
		return Instr{}, fmt.Errorf("unknown opcode %q", mnemonic)
	}
	in := Instr{Op: op, Edge: -1, Node: -1}
	if rest != "" {
		for _, f := range strings.Split(rest, ",") {
			o, err := parseOperand(strings.TrimSpace(f))
			if err != nil {
				return Instr{}, err
			}
			in.Operands = append(in.Operands, o)
		}
	}
	// Jump instructions take their target label as the final operand;
	// symbolic operands otherwise parse as dry registers.
	if (op == DryJZ || op == DryJump) && len(in.Operands) > 0 {
		last := &in.Operands[len(in.Operands)-1]
		if last.Kind == DryReg {
			last.Kind = Label
		}
	}
	return in, nil
}

func parseOperand(s string) (Operand, error) {
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return Num(v), nil
	}
	if reReservoir.MatchString(s) {
		return Operand{Kind: Reservoir, Name: s}, nil
	}
	if reInPort.MatchString(s) {
		return Operand{Kind: InPort, Name: s}, nil
	}
	if reOutPort.MatchString(s) {
		return Operand{Kind: OutPort, Name: s}, nil
	}
	if m := reUnit.FindStringSubmatch(s); m != nil {
		return Operand{Kind: Unit, Name: m[1] + m[2], Sub: m[3]}, nil
	}
	// Everything else symbolic is a dry register/variable; jump targets
	// are re-tagged by parseInstr.
	return Reg(s), nil
}
