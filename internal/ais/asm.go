package ais

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"aquavol/internal/diag"
	"aquavol/internal/lang/token"
)

// Assembler diagnostic codes, minted through the internal/diag registry
// and documented in the README's AIS verification section alongside the
// AIS0xx verifier codes. All assembler findings are errors: a listing
// that fails to assemble has no partial meaning.
var (
	// CodeUnknownOpcode flags an unrecognized mnemonic.
	CodeUnknownOpcode = diag.MustRegister("ASM001", diag.Error,
		"unrecognized mnemonic", "README.md#ais-verification-aisverify")
	// CodeBadOperand flags an operand that does not parse.
	CodeBadOperand = diag.MustRegister("ASM002", diag.Error,
		"operand does not parse", "README.md#ais-verification-aisverify")
	// CodeDuplicateLabel flags a label defined twice.
	CodeDuplicateLabel = diag.MustRegister("ASM003", diag.Error,
		"label defined twice", "README.md#ais-verification-aisverify")
	// CodeUndefinedLabel flags a jump to a label that is never defined.
	CodeUndefinedLabel = diag.MustRegister("ASM004", diag.Error,
		"jump to a label that is never defined", "README.md#ais-verification-aisverify")
)

// Assemble parses AIS listing text (the format produced by
// Program.String) back into a Program. It exists for the fluidvm and
// aisverify CLIs and for round-trip testing of the instruction encoding.
// Edge/Node annotations are not part of the textual ISA and come back as
// -1; Instr.Line records the 1-based source line of each instruction.
//
// On failure the returned error is a diag.List of positioned diagnostics
// with stable ASM0xx codes; assembly continues past recoverable errors so
// one pass reports every problem in the listing.
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}}
	var errs diag.List
	errf := func(line, col int, code diag.Code, format string, args ...any) {
		errs = append(errs, code.New(token.Pos{Line: line, Col: col}, format, args...))
	}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		comment := ""
		if i := strings.Index(line, ";"); i >= 0 {
			comment = line[i+1:] // preserved verbatim so listings round-trip
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		col := 1 + strings.Index(line, trimmed[:1]) // column of first token
		// Program header/footer from String().
		if strings.HasSuffix(trimmed, "{") {
			p.Name = strings.TrimSpace(strings.TrimSuffix(trimmed, "{"))
			continue
		}
		if trimmed == "}" {
			continue
		}
		if strings.HasSuffix(trimmed, ":") && !strings.ContainsAny(trimmed, " \t,") {
			label := strings.TrimSuffix(trimmed, ":")
			if _, dup := p.Labels[label]; dup {
				errf(ln+1, col, CodeDuplicateLabel, "duplicate label %q", label)
				continue
			}
			p.Labels[label] = len(p.Instrs)
			continue
		}
		in, ok := parseInstr(trimmed, ln+1, col, errf)
		if !ok {
			continue
		}
		in.Comment = comment
		p.Instrs = append(p.Instrs, in)
	}
	// Validate label references.
	for _, in := range p.Instrs {
		for _, op := range in.Operands {
			if op.Kind == Label {
				if _, ok := p.Labels[op.Name]; !ok {
					errf(in.Line, 1, CodeUndefinedLabel,
						"%s references undefined label %q", in.Op, op.Name)
				}
			}
		}
	}
	if len(errs) > 0 {
		errs.Sort()
		return nil, errs
	}
	return p, nil
}

var (
	reReservoir = regexp.MustCompile(`^s(\d+)$`)
	reInPort    = regexp.MustCompile(`^ip(\d+)$`)
	reOutPort   = regexp.MustCompile(`^op(\d+)$`)
	reUnit      = regexp.MustCompile(`^(mixer|heater|separator|sensor|concentrator)(\d+)(?:\.(\w+))?$`)
)

// parseInstr parses one instruction line. line/col anchor diagnostics;
// errf collects them. ok is false when the instruction is unusable.
func parseInstr(text string, line, col int, errf func(line, col int, code diag.Code, format string, args ...any)) (Instr, bool) {
	mnemonic := text
	rest := ""
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		mnemonic, rest = text[:i], strings.TrimSpace(text[i+1:])
	}
	op, okOp := opcodeByName[mnemonic]
	if !okOp {
		errf(line, col, CodeUnknownOpcode, "unknown opcode %q", mnemonic)
		return Instr{}, false
	}
	in := Instr{Op: op, Edge: -1, Node: -1, Line: line}
	ok := true
	if rest != "" {
		// Track each operand's column within the original line.
		base := col + strings.Index(text, rest)
		offset := 0
		for _, f := range strings.Split(rest, ",") {
			fTrim := strings.TrimSpace(f)
			opCol := base + offset
			if fTrim != "" {
				opCol += strings.Index(f, fTrim[:1])
			}
			o, err := parseOperand(fTrim)
			if err != nil {
				errf(line, opCol, CodeBadOperand, "%s: %v", mnemonic, err)
				ok = false
			}
			in.Operands = append(in.Operands, o)
			offset += len(f) + 1
		}
	}
	// Jump instructions take their target label as the final operand;
	// symbolic operands otherwise parse as dry registers.
	if (op == DryJZ || op == DryJump) && len(in.Operands) > 0 {
		last := &in.Operands[len(in.Operands)-1]
		if last.Kind == DryReg {
			last.Kind = Label
		}
	}
	return in, ok
}

func parseOperand(s string) (Operand, error) {
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return Num(v), nil
	}
	if reReservoir.MatchString(s) {
		return Operand{Kind: Reservoir, Name: s}, nil
	}
	if reInPort.MatchString(s) {
		return Operand{Kind: InPort, Name: s}, nil
	}
	if reOutPort.MatchString(s) {
		return Operand{Kind: OutPort, Name: s}, nil
	}
	if m := reUnit.FindStringSubmatch(s); m != nil {
		return Operand{Kind: Unit, Name: m[1] + m[2], Sub: m[3]}, nil
	}
	// Everything else symbolic is a dry register/variable; jump targets
	// are re-tagged by parseInstr.
	return Reg(s), nil
}
