package ais

import (
	"errors"
	"strings"
	"testing"

	"aquavol/internal/diag"
)

// findCode returns the diagnostics in err carrying the given ASM0xx code.
func findCode(t *testing.T, err error, code diag.Code) []diag.Diagnostic {
	t.Helper()
	var list diag.List
	if !errors.As(err, &list) {
		t.Fatalf("error is %T, want diag.List: %v", err, err)
	}
	var out []diag.Diagnostic
	for _, d := range list {
		if d.Code == code.ID {
			out = append(out, d)
		}
	}
	return out
}

func TestAssembleUnknownOpcodeDiagnostic(t *testing.T) {
	_, err := Assemble("nop\nfrobnicate s1, s2\nhalt")
	ds := findCode(t, err, CodeUnknownOpcode)
	if len(ds) != 1 {
		t.Fatalf("want one ASM001, got %v", err)
	}
	if ds[0].Pos.Line != 2 || ds[0].Pos.Col != 1 {
		t.Errorf("pos = %v, want 2:1", ds[0].Pos)
	}
	if !strings.Contains(ds[0].Msg, "frobnicate") {
		t.Errorf("msg = %q, want the bad mnemonic", ds[0].Msg)
	}
}

func TestAssembleBadOperandDiagnostic(t *testing.T) {
	_, err := Assemble("move s1, , 3")
	ds := findCode(t, err, CodeBadOperand)
	if len(ds) != 1 {
		t.Fatalf("want one ASM002, got %v", err)
	}
	if ds[0].Pos.Line != 1 {
		t.Errorf("line = %d, want 1", ds[0].Pos.Line)
	}
}

func TestAssembleDuplicateLabelDiagnostic(t *testing.T) {
	_, err := Assemble("top:\nnop\ntop:\nhalt")
	ds := findCode(t, err, CodeDuplicateLabel)
	if len(ds) != 1 {
		t.Fatalf("want one ASM003, got %v", err)
	}
	if ds[0].Pos.Line != 3 {
		t.Errorf("line = %d, want 3", ds[0].Pos.Line)
	}
}

func TestAssembleUndefinedLabelDiagnostic(t *testing.T) {
	_, err := Assemble("nop\ndry-jmp nowhere\nhalt")
	ds := findCode(t, err, CodeUndefinedLabel)
	if len(ds) != 1 {
		t.Fatalf("want one ASM004, got %v", err)
	}
	if ds[0].Pos.Line != 2 {
		t.Errorf("line = %d, want 2", ds[0].Pos.Line)
	}
}

// One pass reports every problem, not just the first.
func TestAssembleCollectsMultipleErrors(t *testing.T) {
	_, err := Assemble("bogus1 x\nbogus2 y\ndry-jz r0, gone\nhalt")
	var list diag.List
	if !errors.As(err, &list) {
		t.Fatalf("error is %T, want diag.List", err)
	}
	if len(list) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(list), list)
	}
}

func TestAssembleRecordsSourceLines(t *testing.T) {
	p, err := Assemble("glucose{\n  input s1, ip1\n\n  move mixer1, s1\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 2 {
		t.Fatalf("got %d instrs", len(p.Instrs))
	}
	if p.Instrs[0].Line != 2 || p.Instrs[1].Line != 4 {
		t.Errorf("lines = %d, %d; want 2, 4", p.Instrs[0].Line, p.Instrs[1].Line)
	}
}
