// Package journal is the write-ahead log that makes assay runs durable:
// a length-prefixed, CRC32-framed record stream of execution events
// (instruction-boundary steps, planned transfers, recovery actions)
// interleaved with periodic full machine snapshots, written as execution
// proceeds so a crashed run can resume from its last good state instead
// of re-running from scratch and wasting the reagents already consumed.
//
// # File format
//
// A journal file is an 8-byte magic header ("AQJRNL1\n") followed by
// records. Each record is framed as
//
//	uint32 LE payload length | uint32 LE IEEE-CRC32(payload) | payload
//
// and the payload is the JSON encoding of a Record envelope. The frame
// makes the two crash failure modes distinguishable on read-back:
//
//   - a torn write — the process died mid-append, the file ends inside a
//     frame — surfaces as ErrTornWrite;
//   - corruption — the frame is complete but the CRC or JSON does not
//     check out — surfaces as ErrCorrupt.
//
// Both are recoverable: the reader returns every record up to the last
// good one and reports where and why it stopped, and OpenAppend truncates
// the bad tail so the resumed run appends from a clean boundary. A reader
// over arbitrary bytes never panics (fuzzed).
//
// # Resume semantics
//
// The journal's snapshot records carry the complete machine state
// (aquacore.Snapshot, fault-PRNG position included) plus the recovery
// runtime's counters. Because execution is deterministic in (listing,
// plan, seed, profile), resuming = restore the last snapshot and
// re-execute; the step records after it are advisory (they let tools
// report how far the dead run got, and carry the PRNG position for
// consistency checks). A run killed at any instruction boundary therefore
// finishes with final vessel volumes and an event log bit-identical to an
// uninterrupted run.
package journal

import (
	"errors"
	"fmt"

	"aquavol/internal/aquacore"
	"aquavol/internal/faults"
)

// Sentinel errors for journal read-back. Wrapped with %w at every raise
// site so errors.Is works while the offset/context stays attached.
var (
	// ErrCorrupt is a structurally-complete record that fails validation:
	// CRC mismatch, bad JSON, unknown kind, or a bad file header.
	ErrCorrupt = errors.New("journal: corrupt record")
	// ErrTornWrite is a file ending mid-frame: the writing process died
	// between starting and finishing an append.
	ErrTornWrite = errors.New("journal: torn write at tail")
)

// Kind discriminates record payloads.
type Kind string

const (
	// KindBegin opens a journal: the run's identity and configuration.
	KindBegin Kind = "begin"
	// KindStep marks one completed instruction boundary.
	KindStep Kind = "step"
	// KindSnapshot is a full machine + recovery-state snapshot.
	KindSnapshot Kind = "snapshot"
	// KindTransfer records a planned transfer before it executes.
	KindTransfer Kind = "transfer"
	// KindRecovery records a repair action (retry, regeneration).
	KindRecovery Kind = "recovery"
	// KindReplan records an adaptive replan: the residual DAG was
	// re-solved around live volumes and the patch set installed.
	KindReplan Kind = "replan"
	// KindOutcome closes a journal: the run's terminal status.
	KindOutcome Kind = "outcome"
)

// Record is the envelope every journal entry is encoded as: a kind tag
// plus exactly one non-nil body matching it.
type Record struct {
	Kind     Kind            `json:"kind"`
	Begin    *Begin          `json:"begin,omitempty"`
	Step     *Step           `json:"step,omitempty"`
	Snapshot *Snapshot       `json:"snapshot,omitempty"`
	Transfer *Transfer       `json:"transfer,omitempty"`
	Recovery *RecoveryAction `json:"recovery,omitempty"`
	Replan   *Replan         `json:"replan,omitempty"`
	Outcome  *Outcome        `json:"outcome,omitempty"`
}

// validate checks the envelope is self-consistent: a known kind whose
// matching body (and only it) is present.
func (r *Record) validate() error {
	bodies := map[Kind]bool{
		KindBegin:    r.Begin != nil,
		KindStep:     r.Step != nil,
		KindSnapshot: r.Snapshot != nil,
		KindTransfer: r.Transfer != nil,
		KindRecovery: r.Recovery != nil,
		KindReplan:   r.Replan != nil,
		KindOutcome:  r.Outcome != nil,
	}
	present, ok := bodies[r.Kind]
	if !ok {
		return fmt.Errorf("%w: unknown record kind %q", ErrCorrupt, r.Kind)
	}
	if !present {
		return fmt.Errorf("%w: %s record without a %s body", ErrCorrupt, r.Kind, r.Kind)
	}
	n := 0
	for _, p := range bodies {
		if p {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("%w: %s record with %d bodies", ErrCorrupt, r.Kind, n)
	}
	return nil
}

// Begin is the journal's opening record: everything needed to rebuild
// the run — recompile the assay, reconstruct the machine and injector —
// exactly as the original invocation did. Resume takes its configuration
// from here, not from command-line flags.
type Begin struct {
	// Program is the program name (the assay's, or the listing file's).
	Program string `json:"program"`
	// Hash is the IEEE CRC32 of the canonical AIS listing text; resume
	// refuses a source whose compiled listing hashes differently.
	Hash uint32 `json:"hash"`
	// Instrs is the listing's instruction count (a cheap second check).
	Instrs int `json:"instrs"`
	// Profile and Seed reconstruct the fault injector.
	Profile faults.Profile `json:"profile"`
	Seed    int64          `json:"seed"`
	// Margin and Yield reproduce the compile/machine configuration.
	Margin float64 `json:"margin,omitempty"`
	Yield  float64 `json:"yield,omitempty"`
	// Retries is the per-instruction retry budget of the recovery runtime.
	Retries int `json:"retries,omitempty"`
	// SnapshotEvery is the snapshot cadence in instruction boundaries.
	SnapshotEvery int `json:"snapshotEvery,omitempty"`
	// Replan records whether adaptive replanning was enabled: a resume
	// must re-derive the same repair decisions the original run made.
	Replan bool `json:"replan,omitempty"`
	// CertHash is the certificate hash (certify.PlanHash) of the
	// statically-solved plan the run was certified against. Resume
	// recomputes it from the re-derived plan and refuses to touch the
	// machine on a mismatch: the journal's plan is not the plan that was
	// certified. Zero when the assay has no static plan (staged assays
	// certify part by part at solve time) or certification was disabled.
	CertHash uint32 `json:"certHash,omitempty"`
}

// Step marks one completed instruction boundary of the recovery loop.
type Step struct {
	// Boundary is the 0-based boundary ordinal (main-loop instructions
	// completed before this one are 0..Boundary-1).
	Boundary int `json:"boundary"`
	// PC is the executed instruction; Next is where control goes.
	PC   int `json:"pc"`
	Next int `json:"next"`
	// Halted marks program completion at this boundary.
	Halted bool `json:"halted,omitempty"`
	// Events is the cumulative machine event count after this boundary.
	Events int `json:"events"`
	// Draws is the fault-PRNG stream position after this boundary (0 when
	// faults are off) — the journaled trace of fault draws.
	Draws uint64 `json:"draws,omitempty"`
}

// Snapshot is a full checkpoint: restoring Machine onto a fresh machine
// and re-entering the recovery loop at (PC, Boundary) with the Recovery
// counters continues the run exactly.
type Snapshot struct {
	// Boundary is the next boundary ordinal to execute.
	Boundary int `json:"boundary"`
	// PC is the next instruction to execute.
	PC int `json:"pc"`
	// Machine is the complete machine state at this boundary.
	Machine *aquacore.Snapshot `json:"machine"`
	// Recovery carries the recovery runtime's accumulated counters.
	Recovery *RecoveryState `json:"recovery,omitempty"`
}

// RecoveryState is the recovery runtime's journaled accounting (mirrors
// recover.Outcome's counters; defined here because the recovery package
// imports this one).
type RecoveryState struct {
	Retries        int     `json:"retries"`
	Regens         int     `json:"regens"`
	RegenInstrs    int     `json:"regenInstrs"`
	Replans        int     `json:"replans,omitempty"`
	ReplanInstrs   int     `json:"replanInstrs,omitempty"`
	BackoffSeconds float64 `json:"backoffSeconds"`
	// ReplanBoundaries lists the boundaries replans were applied at.
	ReplanBoundaries []int      `json:"replanBoundaries,omitempty"`
	Incidents        []Incident `json:"incidents,omitempty"`
}

// Incident is one unrepaired fault (recover.Incident flattened for
// serialization).
type Incident struct {
	Kind    int    `json:"kind"` // aquacore.EventKind
	PC      int    `json:"pc"`
	Instr   string `json:"instr"`
	Detail  string `json:"detail"`
	Retries int    `json:"retries,omitempty"`
}

// Transfer records a planned (pre-fault) transfer about to execute.
type Transfer struct {
	Boundary int     `json:"boundary"`
	PC       int     `json:"pc"`
	Source   string  `json:"source"`
	Volume   float64 `json:"volume"`
}

// RecoveryAction records one repair the recovery runtime performed.
type RecoveryAction struct {
	// Action is "retry" or "regen".
	Action   string `json:"action"`
	Boundary int    `json:"boundary"`
	PC       int    `json:"pc"`
	// Attempt is the retry ordinal (retries only).
	Attempt int `json:"attempt,omitempty"`
	// Detail carries the human-readable event detail.
	Detail string `json:"detail,omitempty"`
}

// Replan records one adaptive replanning action: the residual DAG
// around the live vessel volumes was re-solved and the rescaled
// volumes were patched into the remaining instructions. Resume never
// replays it directly — snapshots carry the machine's patch overlay,
// and a resume from an earlier snapshot re-derives the identical replan
// deterministically — but the record makes the repair auditable and
// lets tools reconstruct the patched plan without re-execution.
type Replan struct {
	Boundary int `json:"boundary"`
	PC       int `json:"pc"`
	// Source/Need/Have describe the stalled transfer that triggered the
	// replan: the padded planned draw versus the source's live volume.
	Source string  `json:"source"`
	Need   float64 `json:"need"`
	Have   float64 `json:"have"`
	// Method is the residual solver that produced the patch set
	// ("dagsolve" or "lp"); Scale is DAGSolve's dispensing scale.
	Method string  `json:"method"`
	Scale  float64 `json:"scale,omitempty"`
	// Patches maps instruction pcs to their rescaled absolute volumes.
	Patches map[int]float64 `json:"patches"`
	// CertHash is the certificate hash (certify.ReplanHash) of the
	// residual plan plus its patch set, recorded after the repair passed
	// certification — auditors recompute it to pin the journaled patches
	// to the certified replan.
	CertHash uint32 `json:"certHash,omitempty"`
}

// Outcome closes a journal: the run reached a terminal state in-process
// (completed, completed-degraded, or aborted — not a crash, which by
// nature writes nothing).
type Outcome struct {
	// Status is recover.Status's string form.
	Status string `json:"status"`
	// Err is the abort error text, if any.
	Err string `json:"err,omitempty"`
	// Boundaries is the total number of instruction boundaries executed.
	Boundaries int `json:"boundaries"`
}
