package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"aquavol/internal/vfs"
)

// Reader decodes a journal stream, stopping at the first bad frame. It
// never panics on arbitrary input: every malformed byte sequence maps to
// ErrTornWrite (file ends mid-frame) or ErrCorrupt (complete but
// invalid frame).
type Reader struct {
	r          io.Reader
	headerDone bool
	// good is the offset just past the last fully-decoded record (the
	// truncation point for append-after-crash).
	good int64
	// read is the offset consumed so far.
	read int64
	err  error
}

// NewReader starts decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// GoodBytes returns the offset just past the last successfully decoded
// record (including the file header). A crashed journal is truncated
// here before appending resumes.
func (jr *Reader) GoodBytes() int64 { return jr.good }

// Next returns the next record. io.EOF marks a clean end; ErrTornWrite
// and ErrCorrupt (wrapped with context) mark a recoverable bad tail. All
// errors are sticky.
func (jr *Reader) Next() (*Record, error) {
	if jr.err != nil {
		return nil, jr.err
	}
	rec, err := jr.next()
	if err != nil {
		jr.err = err
		return nil, err
	}
	jr.good = jr.read
	return rec, nil
}

func (jr *Reader) next() (*Record, error) {
	if !jr.headerDone {
		var hdr [len(magic)]byte
		n, err := io.ReadFull(jr.r, hdr[:])
		jr.read += int64(n)
		switch {
		case err == io.EOF && n == 0:
			return nil, fmt.Errorf("%w: empty journal (no header)", ErrTornWrite)
		case err != nil && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)):
			return nil, fmt.Errorf("%w: short header (%d of %d bytes)", ErrTornWrite, n, len(magic))
		case err != nil:
			return nil, fmt.Errorf("journal: reading header: %w", err)
		case string(hdr[:]) != magic:
			return nil, fmt.Errorf("%w: bad header %q (not a journal, or unsupported version)", ErrCorrupt, hdr)
		}
		jr.headerDone = true
		jr.good = jr.read
	}
	var frame [8]byte
	n, err := io.ReadFull(jr.r, frame[:])
	jr.read += int64(n)
	switch {
	case err == io.EOF && n == 0:
		return nil, io.EOF // clean end at a record boundary
	case err != nil && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)):
		return nil, fmt.Errorf("%w: short frame header at offset %d (%d of 8 bytes)", ErrTornWrite, jr.good, n)
	case err != nil:
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if length > maxRecord {
		return nil, fmt.Errorf("%w: frame at offset %d claims %d-byte payload (limit %d)", ErrCorrupt, jr.good, length, maxRecord)
	}
	payload := make([]byte, length)
	n, err = io.ReadFull(jr.r, payload)
	jr.read += int64(n)
	switch {
	case err != nil && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)):
		return nil, fmt.Errorf("%w: payload at offset %d truncated (%d of %d bytes)", ErrTornWrite, jr.good, n, length)
	case err != nil:
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: CRC mismatch at offset %d (stored %08x, computed %08x)", ErrCorrupt, jr.good, sum, got)
	}
	rec := &Record{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, fmt.Errorf("%w: undecodable payload at offset %d: %w", ErrCorrupt, jr.good, err)
	}
	if err := rec.validate(); err != nil {
		return nil, fmt.Errorf("%w (at offset %d)", err, jr.good)
	}
	return rec, nil
}

// ReadAll decodes every record up to the first bad frame. The returned
// error is nil for a clean journal, or the terminal ErrTornWrite /
// ErrCorrupt-wrapped condition; the good prefix is returned either way.
func ReadAll(r io.Reader) ([]*Record, error) {
	jr := NewReader(r)
	var recs []*Record
	for {
		rec, err := jr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// Tail describes how a journal read-back ended.
type Tail struct {
	// Truncated reports whether a bad tail was dropped.
	Truncated bool
	// Reason is the terminal condition (wraps ErrTornWrite or ErrCorrupt;
	// nil when the journal was clean).
	Reason error
	// GoodBytes is the offset just past the last good record.
	GoodBytes int64
}

// Recover reads a journal file, salvaging the good prefix. Unlike
// ReadAll's error, a bad tail is not an error here — it is the expected
// state of a crashed run's journal — so err is non-nil only when the
// file cannot be read at all.
func Recover(fsys vfs.FS, path string) ([]*Record, Tail, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, Tail{}, fmt.Errorf("journal: %w", err)
	}
	defer f.Close() //fluidvet:allow syncerr read-only open; no buffered writes can be lost
	return recoverFrom(f)
}

func recoverFrom(r io.Reader) ([]*Record, Tail, error) {
	jr := NewReader(r)
	var recs []*Record
	for {
		rec, err := jr.Next()
		if err == io.EOF {
			return recs, Tail{GoodBytes: jr.GoodBytes()}, nil
		}
		if errors.Is(err, ErrTornWrite) || errors.Is(err, ErrCorrupt) {
			return recs, Tail{Truncated: true, Reason: err, GoodBytes: jr.GoodBytes()}, nil
		}
		if err != nil {
			return recs, Tail{GoodBytes: jr.GoodBytes()}, err
		}
		recs = append(recs, rec)
	}
}

// OpenAppend reopens a journal for resumption: it salvages the good
// prefix, truncates any bad tail, and returns a Writer positioned to
// append after the last good record. The caller owns closing the file.
func OpenAppend(fsys vfs.FS, path string) ([]*Record, Tail, *Writer, vfs.File, error) {
	f, err := fsys.OpenReadWrite(path)
	if err != nil {
		return nil, Tail{}, nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, tail, err := recoverFrom(f)
	if err != nil {
		f.Close() //fluidvet:allow syncerr error path; the read failure being returned supersedes any close error
		return nil, Tail{}, nil, nil, err
	}
	if len(recs) == 0 {
		f.Close() //fluidvet:allow syncerr error path; nothing was written, the salvage failure is the error

		reason := tail.Reason
		if reason == nil {
			reason = fmt.Errorf("%w: no records", ErrTornWrite)
		}
		return nil, tail, nil, nil, fmt.Errorf("journal: nothing salvageable in %s: %w", path, reason)
	}
	if err := f.Truncate(tail.GoodBytes); err != nil {
		f.Close() //fluidvet:allow syncerr error path; the truncate failure being returned supersedes any close error

		return nil, Tail{}, nil, nil, fmt.Errorf("journal: truncating bad tail: %w", err)
	}
	if _, err := f.Seek(tail.GoodBytes, io.SeekStart); err != nil {
		f.Close() //fluidvet:allow syncerr error path; the seek failure being returned supersedes any close error

		return nil, Tail{}, nil, nil, fmt.Errorf("journal: %w", err)
	}
	jw := &Writer{w: f, sync: f.Sync}
	return recs, tail, jw, f, nil
}
