package journal_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	"aquavol/internal/vfs"
)

// sampleRecords builds a representative record sequence: begin, a few
// steps, a snapshot with machine state, a transfer, a recovery action,
// and an outcome.
func sampleRecords() []*journal.Record {
	prof, _ := faults.Preset("moderate")
	return []*journal.Record{
		{Kind: journal.KindBegin, Begin: &journal.Begin{
			Program: "glucose", Hash: 0xdeadbeef, Instrs: 42,
			Profile: prof, Seed: 7, SnapshotEvery: 8,
		}},
		{Kind: journal.KindSnapshot, Snapshot: &journal.Snapshot{
			Boundary: 0, PC: 0,
			Machine: &aquacore.Snapshot{
				Vessels: map[string]aquacore.VesselState{
					"s1": {Volume: 100.25, Composition: map[string]float64{"stock": 100.25}},
				},
				Regs:  map[string]float64{"r1": 3},
				Known: []string{"r1"},
				Faults: &aquacore.FaultState{
					Profile: prof, Seed: 7, Draws: 0,
				},
			},
			Recovery: &journal.RecoveryState{},
		}},
		{Kind: journal.KindTransfer, Transfer: &journal.Transfer{Boundary: 1, PC: 1, Source: "s1", Volume: 30}},
		{Kind: journal.KindStep, Step: &journal.Step{Boundary: 1, PC: 1, Next: 2, Events: 0, Draws: 2}},
		{Kind: journal.KindRecovery, Recovery: &journal.RecoveryAction{Action: "retry", Boundary: 2, PC: 2, Attempt: 1}},
		{Kind: journal.KindReplan, Replan: &journal.Replan{
			Boundary: 2, PC: 2, Source: "s1", Need: 30.5, Have: 27.25,
			Method: "dagsolve", Scale: 0.875,
			Patches: map[int]float64{2: 26.6875, 5: 13.34375},
		}},
		{Kind: journal.KindStep, Step: &journal.Step{Boundary: 2, PC: 2, Next: 3, Halted: true, Events: 1, Draws: 5}},
		{Kind: journal.KindOutcome, Outcome: &journal.Outcome{Status: "completed", Boundaries: 3}},
	}
}

func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	jw, err := journal.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := jw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := writeSample(t)
	recs, err := journal.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("clean journal returned error: %v", err)
	}
	want := sampleRecords()
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Kind != want[i].Kind {
			t.Errorf("record %d kind = %s, want %s", i, rec.Kind, want[i].Kind)
		}
	}
	snap := recs[1].Snapshot
	if snap == nil || snap.Machine == nil {
		t.Fatal("snapshot record lost its machine state")
	}
	if got := snap.Machine.Vessels["s1"].Volume; got != 100.25 {
		t.Errorf("vessel volume round-trip: got %v, want 100.25", got)
	}
	if snap.Machine.Faults == nil || snap.Machine.Faults.Seed != 7 {
		t.Error("fault state lost in round trip")
	}
	rp := recs[5].Replan
	if rp == nil {
		t.Fatal("replan record lost its body")
	}
	if rp.Source != "s1" || rp.Method != "dagsolve" || rp.Scale != 0.875 {
		t.Errorf("replan round-trip: got %+v", rp)
	}
	// The patch map's int keys and exact float64 values must survive the
	// JSON encoding: resume reconstructs the patched plan from them.
	if len(rp.Patches) != 2 || rp.Patches[2] != 26.6875 || rp.Patches[5] != 13.34375 {
		t.Errorf("replan patches round-trip: got %v", rp.Patches)
	}
	if recs[7].Outcome.Status != "completed" {
		t.Errorf("outcome status = %q", recs[7].Outcome.Status)
	}
}

// Every truncation point of a valid journal must decode a good prefix
// and report either a clean end (boundary cuts) or a torn write — never
// a panic, never ErrCorrupt (no bytes were altered).
func TestTruncationAlwaysRecovers(t *testing.T) {
	data := writeSample(t)
	full, err := journal.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		recs, err := journal.ReadAll(bytes.NewReader(data[:cut]))
		if err != nil && !errors.Is(err, journal.ErrTornWrite) {
			t.Fatalf("cut at %d: error %v, want nil or ErrTornWrite", cut, err)
		}
		if len(recs) > len(full) {
			t.Fatalf("cut at %d: decoded %d records from a prefix of %d", cut, len(recs), len(full))
		}
		// A good prefix must agree with the full decode.
		for i, rec := range recs {
			if rec.Kind != full[i].Kind {
				t.Fatalf("cut at %d: record %d kind %s, want %s", cut, i, rec.Kind, full[i].Kind)
			}
		}
	}
}

// A bit flip anywhere in a record's frame or payload must surface as
// ErrCorrupt (or, if it inflates the length prefix past the file end,
// ErrTornWrite) with the preceding records intact.
func TestBitFlipDetected(t *testing.T) {
	data := writeSample(t)
	for _, off := range []int{9, 20, 60, len(data) - 3} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		recs, err := journal.ReadAll(bytes.NewReader(mut))
		if err == nil {
			// The flip may land in a later record; at least one must fail,
			// unless it produced an identical CRC (impossible for 1 bit).
			t.Fatalf("bit flip at %d went undetected (%d records)", off, len(recs))
		}
		if !errors.Is(err, journal.ErrCorrupt) && !errors.Is(err, journal.ErrTornWrite) {
			t.Fatalf("bit flip at %d: error %v, want ErrCorrupt or ErrTornWrite", off, err)
		}
	}
	// Flip in the header specifically → ErrCorrupt.
	mut := append([]byte(nil), data...)
	mut[0] ^= 1
	if _, err := journal.ReadAll(bytes.NewReader(mut)); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("header flip: error %v, want ErrCorrupt", err)
	}
}

func TestRecoverAndOpenAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jrnl")
	data := writeSample(t)
	// Tear the tail mid-record.
	torn := data[:len(data)-5]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, tail, err := journal.Recover(vfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if !tail.Truncated || !errors.Is(tail.Reason, journal.ErrTornWrite) {
		t.Fatalf("tail = %+v, want truncated torn write", tail)
	}
	if len(recs) != len(sampleRecords())-1 {
		t.Fatalf("recovered %d records, want %d", len(recs), len(sampleRecords())-1)
	}

	// OpenAppend truncates the tail and appends cleanly.
	recs2, _, jw, f, err := journal.OpenAppend(vfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("OpenAppend salvaged %d records, want %d", len(recs2), len(recs))
	}
	if err := jw.Append(&journal.Record{Kind: journal.KindOutcome,
		Outcome: &journal.Outcome{Status: "completed", Boundaries: 3}}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	final, tail, err := journal.Recover(vfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Truncated {
		t.Fatalf("journal still dirty after OpenAppend repair: %+v", tail)
	}
	if got := final[len(final)-1]; got.Kind != journal.KindOutcome {
		t.Fatalf("appended record kind = %s, want outcome", got.Kind)
	}
}

func TestOpenAppendRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jrnl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := journal.OpenAppend(vfs.OS{}, path); err == nil {
		t.Fatal("OpenAppend accepted an empty file")
	}
}

func TestAppendValidates(t *testing.T) {
	jw, err := journal.NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Append(&journal.Record{Kind: journal.KindStep}); err == nil {
		t.Error("step record without body accepted")
	}
	if err := jw.Append(&journal.Record{Kind: "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if jw.Err() != nil {
		t.Errorf("validation failures must not poison the writer: %v", jw.Err())
	}
}

func TestCreateWritesHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.jrnl")
	jw, f, err := journal.Create(vfs.OS{}, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Append(&journal.Record{Kind: journal.KindBegin, Begin: &journal.Begin{Program: "p"}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, tail, err := journal.Recover(vfs.OS{}, path)
	if err != nil || tail.Truncated || len(recs) != 1 {
		t.Fatalf("recover: recs=%d tail=%+v err=%v", len(recs), tail, err)
	}
}

// Create must refuse to clobber an existing non-empty journal (it may be
// the only crash evidence of a previous run) unless forced; an empty
// leftover file is always replaceable.
func TestCreateNoClobber(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jrnl")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := journal.Create(vfs.OS{}, path, false); !errors.Is(err, journal.ErrExists) {
		t.Fatalf("Create over non-empty file: %v, want ErrExists", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "precious" {
		t.Fatalf("refused Create still modified the file: %q", b)
	}
	// force overrides.
	jw, f, err := journal.Create(vfs.OS{}, path, true)
	if err != nil {
		t.Fatalf("forced Create: %v", err)
	}
	if err := jw.Append(&journal.Record{Kind: journal.KindBegin, Begin: &journal.Begin{Program: "p"}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// An empty file (a create that died between rename and first append)
	// is replaceable without force.
	empty := filepath.Join(dir, "empty.jrnl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, f2, err := journal.Create(vfs.OS{}, empty, false); err != nil {
		t.Fatalf("Create over empty file: %v", err)
	} else {
		f2.Close()
	}
}

// Create is atomic: a failure at any site before rename leaves neither
// the target nor the temp file behind.
func TestCreateAtomic(t *testing.T) {
	for _, strike := range []vfs.Strike{
		{Op: vfs.OpWrite, N: 0},                  // header write fails
		{Op: vfs.OpSync, N: 0},                   // header sync fails
		{Op: vfs.OpRename, N: 0, Err: vfs.ErrIO}, // rename fails
		{Op: vfs.OpCreate, N: 0, Err: vfs.ErrNoSpace},
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "run.jrnl")
		fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{strike}, nil)
		if _, _, err := journal.Create(fsys, path, false); err == nil {
			t.Fatalf("strike %s: Create succeeded", strike)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("strike %s: failed Create left %q behind", strike, ents[0].Name())
		}
	}
}

// After the first fsync failure the writer is poisoned: no further bytes
// reach the sink, and every Append reports the original failure. This is
// the fail-stop rule — a post-fsync-failure retry can persist a journal
// with a silent hole.
func TestFailStopAfterSyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jrnl")
	// Sync #0 covers the header inside Create; sync #1 (first Append) lies.
	fsys := vfs.NewFaulty(vfs.OS{}, []vfs.Strike{{Op: vfs.OpSync, N: 1, Lying: true}}, nil)
	jw, f, err := journal.Create(fsys, path, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := &journal.Record{Kind: journal.KindBegin, Begin: &journal.Begin{Program: "p"}}
	first := jw.Append(rec)
	if !errors.Is(first, vfs.ErrIO) {
		t.Fatalf("append over lying fsync: %v, want ErrIO", first)
	}
	writesBefore := fsys.Count(vfs.OpWrite)
	for i := 0; i < 3; i++ {
		if err := jw.Append(rec); !errors.Is(err, vfs.ErrIO) || err.Error() != first.Error() {
			t.Fatalf("poisoned append %d: %v, want the original sticky %v", i, err, first)
		}
	}
	if got := fsys.Count(vfs.OpWrite); got != writesBefore {
		t.Fatalf("poisoned writer still wrote to the sink (%d -> %d writes)", writesBefore, got)
	}
	f.Close()
	// The on-disk journal holds only what was synced: the header. The
	// salvaged prefix is exactly zero records, not a torn half-record.
	recs, _, err := journal.Recover(vfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d records from a journal whose every append failed", len(recs))
	}
}
