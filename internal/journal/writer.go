package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// magic is the journal file header. The trailing newline makes a
// truncated-at-byte-0..7 file distinguishable from a text file at a
// glance; the version digit gates future format changes.
const magic = "AQJRNL1\n"

// maxRecord bounds one record's payload (16 MiB). Snapshots of real
// assays are kilobytes; the bound exists so a corrupt length prefix
// cannot make the reader allocate gigabytes.
const maxRecord = 16 << 20

// Writer appends framed records to a journal. It is not safe for
// concurrent use; one run owns its journal.
type Writer struct {
	w io.Writer
	// sync is called after every append when the sink supports it
	// (os.File): a write-ahead log that lingers in page cache does not
	// survive the crashes it exists for.
	sync func() error
	err  error
}

// NewWriter starts a journal on w, writing the file header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	jw := &Writer{w: w}
	if f, ok := w.(*os.File); ok {
		jw.sync = f.Sync
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	return jw, nil
}

// Create creates (or truncates) a journal file and writes its header.
func Create(path string) (*Writer, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	jw, err := NewWriter(f)
	if err != nil {
		f.Close() //fluidvet:allow syncerr error path; the header-write failure being returned supersedes any close error
		return nil, nil, err
	}
	return jw, f, nil
}

// Append frames and writes one record. The first error is sticky: once
// an append fails the journal is no longer a faithful log and every
// subsequent call reports the same failure.
func (jw *Writer) Append(rec *Record) error {
	if jw.err != nil {
		return jw.err
	}
	if err := rec.validate(); err != nil {
		return err // caller bug, not a sink failure: not sticky
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding %s record: %w", rec.Kind, err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: %s record payload %d bytes exceeds limit %d", rec.Kind, len(payload), maxRecord)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := jw.w.Write(frame[:]); err == nil {
		_, err = jw.w.Write(payload)
		if err == nil && jw.sync != nil {
			err = jw.sync()
		}
		if err != nil {
			jw.err = fmt.Errorf("journal: append: %w", err)
		}
	} else {
		jw.err = fmt.Errorf("journal: append: %w", err)
	}
	return jw.err
}

// Err returns the sticky write error, if any.
func (jw *Writer) Err() error { return jw.err }
