package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"aquavol/internal/vfs"
)

// magic is the journal file header. The trailing newline makes a
// truncated-at-byte-0..7 file distinguishable from a text file at a
// glance; the version digit gates future format changes.
const magic = "AQJRNL1\n"

// HeaderSize is the on-disk size of a complete empty journal (the header
// alone): what an interrupted-but-atomic creation may leave behind.
const HeaderSize = int64(len(magic))

// maxRecord bounds one record's payload (16 MiB). Snapshots of real
// assays are kilobytes; the bound exists so a corrupt length prefix
// cannot make the reader allocate gigabytes.
const maxRecord = 16 << 20

// ErrExists is returned by Create when the target is an existing
// non-empty file: a journal is a run's only crash evidence, and
// truncating one by accident destroys exactly the state a resume needs.
// Callers that really mean it pass force (fluidvm -force-journal).
var ErrExists = errors.New("journal: refusing to clobber existing non-empty journal")

// syncer is the optional flush capability of a Writer's sink. Both
// *os.File and vfs.File provide it; in-memory test buffers do not.
type syncer interface{ Sync() error }

// Writer appends framed records to a journal. It is not safe for
// concurrent use; one run owns its journal.
//
// The writer is fail-stop: the first failed write or fsync permanently
// poisons it, and every later Append returns the same error without
// touching the sink. This is deliberate — after a failed fsync the OS
// may have dropped the unflushed pages, so retrying the fsync (or
// appending past the failure) can silently persist a journal with a
// hole in it. The only safe continuation is a new journal.
type Writer struct {
	w io.Writer
	// sync is called after every append when the sink supports it: a
	// write-ahead log that lingers in page cache does not survive the
	// crashes it exists for.
	sync func() error
	err  error
}

// NewWriter starts a journal on w, writing the file header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	jw := &Writer{w: w}
	if s, ok := w.(syncer); ok {
		jw.sync = s.Sync
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	return jw, nil
}

// Create creates a journal file atomically and durably: the header is
// written to a temp file, synced, renamed into place, and the parent
// directory synced — so a crash during creation leaves either no journal
// or a complete empty one, never a half-written header, and the new name
// itself survives the crash. An existing non-empty file at path is
// refused with ErrExists unless force is set (see fluidvm
// -force-journal); an existing empty file — a previous creation that
// died between rename and first append — is always safe to replace.
//
// The returned file is positioned after the header, ready for Append;
// the caller owns closing it.
func Create(fsys vfs.FS, path string, force bool) (*Writer, vfs.File, error) {
	if st, err := fsys.Stat(path); err == nil && st.Size() > 0 && !force {
		return nil, nil, fmt.Errorf("%w: %s (%d bytes)", ErrExists, path, st.Size())
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// On any failure, abandon the temp file: creation either completes in
	// full or leaves nothing at path.
	cleanup := func() {
		f.Close()        //fluidvet:allow syncerr error path; the creation failure being returned supersedes any close error
		fsys.Remove(tmp) //fluidvet:allow syncerr best-effort cleanup of the abandoned temp file
	}
	jw, err := NewWriter(f)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return nil, nil, fmt.Errorf("journal: syncing header: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		cleanup()
		return nil, nil, fmt.Errorf("journal: installing %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close() //fluidvet:allow syncerr error path; the directory-sync failure being returned supersedes any close error
		return nil, nil, fmt.Errorf("journal: syncing parent directory of %s: %w", path, err)
	}
	return jw, f, nil
}

// Append frames and writes one record. The first sink error is sticky
// (see the fail-stop note on Writer): once an append or its fsync fails
// the journal is no longer a faithful log, no further bytes are written,
// and every subsequent call reports the same failure.
func (jw *Writer) Append(rec *Record) error {
	if jw.err != nil {
		return jw.err
	}
	if err := rec.validate(); err != nil {
		return err // caller bug, not a sink failure: not sticky
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding %s record: %w", rec.Kind, err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: %s record payload %d bytes exceeds limit %d", rec.Kind, len(payload), maxRecord)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := jw.w.Write(frame[:]); err == nil {
		_, err = jw.w.Write(payload)
		if err == nil && jw.sync != nil {
			err = jw.sync()
		}
		if err != nil {
			jw.err = fmt.Errorf("journal: append: %w", err)
		}
	} else {
		jw.err = fmt.Errorf("journal: append: %w", err)
	}
	return jw.err
}

// Err returns the sticky write error, if any.
func (jw *Writer) Err() error { return jw.err }
