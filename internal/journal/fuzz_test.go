package journal_test

import (
	"bytes"
	"errors"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/journal"
)

// FuzzDecode hardens the journal decoder against arbitrary bytes: it
// must never panic, and every input either decodes cleanly or fails with
// a sentinel the resume path knows how to recover from (ErrTornWrite or
// ErrCorrupt). This is the crash-safety contract: a journal left behind
// by a dying process is adversarial input.
func FuzzDecode(f *testing.F) {
	valid := func() []byte {
		var buf bytes.Buffer
		jw, err := journal.NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		for _, rec := range []*journal.Record{
			{Kind: journal.KindBegin, Begin: &journal.Begin{Program: "p", Hash: 1, Instrs: 2, Replan: true}},
			{Kind: journal.KindStep, Step: &journal.Step{Boundary: 0, PC: 0, Next: 1}},
			{Kind: journal.KindReplan, Replan: &journal.Replan{
				Boundary: 1, PC: 1, Source: "s1", Need: 3, Have: 2,
				Method: "dagsolve", Scale: 0.5, Patches: map[int]float64{1: 1.5},
			}},
			{Kind: journal.KindSnapshot, Snapshot: &journal.Snapshot{
				Boundary: 2, PC: 2,
				Machine: &aquacore.Snapshot{
					Vessels: map[string]aquacore.VesselState{
						"s1": {Volume: 12.5, Composition: map[string]float64{"stock": 12.5}},
					},
					Steps: 2, Budget: 100,
					Faults: &aquacore.FaultState{Seed: 7, Draws: 4},
				},
				Recovery: &journal.RecoveryState{Retries: 1},
			}},
			{Kind: journal.KindOutcome, Outcome: &journal.Outcome{Status: "completed"}},
		} {
			if err := jw.Append(rec); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}()
	f.Add([]byte{})
	f.Add([]byte("AQJRNL1\n"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[12] ^= 0xff
	f.Add(flipped)
	f.Add([]byte("AQJRNL1\n\xff\xff\xff\xff\x00\x00\x00\x00"))
	// Mutated-snapshot seeds: cuts and flips landing inside the snapshot
	// record's machine payload, steering the fuzzer toward the
	// Restore-facing decode surface.
	f.Add(valid[:len(valid)*3/4])
	for _, off := range []int{len(valid) / 2, len(valid)*2/3 + 1, len(valid) - 20} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x20
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := journal.ReadAll(bytes.NewReader(data))
		if err != nil && !errors.Is(err, journal.ErrTornWrite) && !errors.Is(err, journal.ErrCorrupt) {
			t.Fatalf("non-sentinel error from decoder: %v", err)
		}
		// Whatever decoded must be internally valid enough to re-encode.
		var buf bytes.Buffer
		jw, werr := journal.NewWriter(&buf)
		if werr != nil {
			t.Fatal(werr)
		}
		for _, rec := range recs {
			if aerr := jw.Append(rec); aerr != nil {
				t.Fatalf("decoded record does not re-encode: %v", aerr)
			}
		}
	})
}
