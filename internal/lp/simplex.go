package lp

import (
	"errors"
	"fmt"
	"math"

	"aquavol/internal/budget"
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// IterationLimit means the solver hit Options.MaxIterations.
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tunes the simplex solver. The zero value selects sensible
// defaults for every field.
type Options struct {
	// MaxIterations bounds the total pivots across both phases.
	// 0 selects 200*(rows+cols)+1000.
	MaxIterations int
	// Tol is the pivot/reduced-cost tolerance. 0 selects 1e-9.
	Tol float64
	// FeasTol is the phase-1 feasibility tolerance. 0 selects 1e-7.
	FeasTol float64
	// Budget, when non-nil, is charged one work unit per simplex pivot
	// and can stop the solve cooperatively. Unlike MaxIterations (which
	// terminates with Status IterationLimit), a budget stop is returned
	// as a typed error wrapping one of the budget sentinels, so callers
	// can tell bounded truncation from caller cancellation.
	Budget *budget.Meter
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 200*(m+n) + 1000
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.FeasTol == 0 {
		o.FeasTol = DefaultFeasTol
	}
	return o
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports how the solve terminated. X and Objective are only
	// meaningful when Status is Optimal.
	Status Status
	// Objective is the objective value at X, in the problem's original
	// direction (i.e. not negated for maximization).
	Objective float64
	// X holds one value per problem variable, indexed by VarID.
	X []float64
	// Y holds one dual value (shadow price) per problem constraint,
	// indexed by ConID, in the problem's original orientation: Y[i] is
	// ∂Objective/∂rhs_i at the optimum. Filled only when Status is
	// Optimal; nil otherwise (and always nil from SolveExact, which
	// reports no basis). Duals are not unique on degenerate problems
	// (e.g. redundant constraints); the basis the solver lands on picks
	// one valid certificate.
	Y []float64
	// ReducedCost holds one reduced cost per problem variable, indexed by
	// VarID: ReducedCost[j] = obj_j − Σ_i Y[i]·a_ij over the problem's
	// constraints. Together with Y it forms the optimality certificate
	// verified by internal/certify. Filled only when Status is Optimal.
	ReducedCost []float64
	// Iterations is the total simplex pivots performed across both phases.
	Iterations int
}

// Value returns the solution value of variable v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// ErrBadProblem reports a structurally invalid problem (e.g. NaN inputs).
var ErrBadProblem = errors.New("lp: invalid problem")

// column maps a simplex column back to a problem variable.
type column struct {
	orig VarID   // originating variable
	sign float64 // +1 for x⁺ part, -1 for x⁻ part
}

// Solve runs two-phase primal simplex and returns the solution. An error is
// returned only for structurally invalid problems or a tripped
// Options.Budget (a typed budget stop; match with budget.IsStop);
// infeasibility and unboundedness are reported through Solution.Status.
//
// Solve is certified parallel-safe: distinct Problems may be solved
// concurrently. (Solving one Problem from two goroutines still races on
// the receiver itself, as with any mutable value.)
//
//fluidvet:parallelsafe
func (p *Problem) Solve(opts Options) (*Solution, error) {
	for _, v := range p.vars {
		if math.IsNaN(v.lo) || math.IsNaN(v.hi) || math.IsNaN(v.obj) {
			return nil, fmt.Errorf("%w: NaN in variable %q", ErrBadProblem, v.name)
		}
	}
	for _, c := range p.cons {
		if math.IsNaN(c.rhs) {
			return nil, fmt.Errorf("%w: NaN rhs in constraint %q", ErrBadProblem, c.name)
		}
		for _, t := range c.terms {
			if math.IsNaN(t.Coef) {
				return nil, fmt.Errorf("%w: NaN coefficient in constraint %q", ErrBadProblem, c.name)
			}
		}
	}

	// Build structural columns. Each variable with a finite lower bound is
	// shifted (x = lo + x'); free variables split into two columns.
	var cols []column
	colOf := make([]int, len(p.vars)) // first column of each variable
	shift := make([]float64, len(p.vars))
	for j, v := range p.vars {
		colOf[j] = len(cols)
		if math.IsInf(v.lo, -1) {
			cols = append(cols, column{VarID(j), 1}, column{VarID(j), -1})
		} else {
			shift[j] = v.lo
			cols = append(cols, column{VarID(j), 1})
		}
	}
	nStruct := len(cols)

	// Rows: user constraints plus internal upper-bound rows.
	type row struct {
		coefs []float64 // dense over structural columns
		sense Sense
		rhs   float64
	}
	var rows []row
	for _, c := range p.cons {
		r := row{coefs: make([]float64, nStruct), sense: c.sense, rhs: c.rhs}
		for _, t := range c.terms {
			j := t.Var
			ci := colOf[j]
			r.coefs[ci] += t.Coef
			if math.IsInf(p.vars[j].lo, -1) {
				r.coefs[ci+1] -= t.Coef
			} else {
				r.rhs -= t.Coef * shift[j]
			}
		}
		rows = append(rows, r)
	}
	for j, v := range p.vars {
		if math.IsInf(v.hi, 1) {
			continue
		}
		r := row{coefs: make([]float64, nStruct), sense: LE}
		ci := colOf[j]
		r.coefs[ci] = 1
		if math.IsInf(v.lo, -1) {
			r.coefs[ci+1] = -1
			r.rhs = v.hi
		} else {
			r.rhs = v.hi - v.lo
		}
		rows = append(rows, r)
	}

	m := len(rows)
	opt := opts.withDefaults(m, nStruct)

	// Normalize to b ≥ 0 and count auxiliary columns. flip remembers which
	// rows were negated so dual values can be mapped back to the original
	// row orientation after the solve.
	flip := make([]bool, m)
	nSlack, nArt := 0, 0
	for i := range rows {
		if rows[i].rhs < 0 {
			flip[i] = true
			for k := range rows[i].coefs {
				rows[i].coefs[k] = -rows[i].coefs[k]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
		switch rows[i].sense {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	n := nStruct + nSlack + nArt // total columns (rhs stored separately)
	t := &tableau{
		m:      m,
		n:      n,
		artLo:  n - nArt,
		stride: n + 1,
		a:      make([]float64, m*(n+1)),
		basis:  make([]int, m),
		cost:   make([]float64, n+1),
		tol:    opt.Tol,
	}
	// idCol[i] is the identity column of row i — the auxiliary column
	// (slack for LE, artificial for GE/EQ) whose only nonzero entry is a
	// +1 in row i and whose phase-2 objective coefficient is zero. At
	// phase-2 optimality, -cost[idCol[i]] is therefore exactly the
	// internal dual value of row i.
	idCol := make([]int, m)
	slackAt, artAt := nStruct, nStruct+nSlack
	for i, r := range rows {
		base := i * t.stride
		copy(t.a[base:base+nStruct], r.coefs)
		t.a[base+n] = r.rhs
		switch r.sense {
		case LE:
			t.a[base+slackAt] = 1
			t.basis[i] = slackAt
			idCol[i] = slackAt
			slackAt++
		case GE:
			t.a[base+slackAt] = -1
			slackAt++
			t.a[base+artAt] = 1
			t.basis[i] = artAt
			idCol[i] = artAt
			artAt++
		case EQ:
			t.a[base+artAt] = 1
			t.basis[i] = artAt
			idCol[i] = artAt
			artAt++
		}
	}

	sol := &Solution{X: make([]float64, len(p.vars))}

	// Phase 1: minimize the sum of artificial variables.
	if nArt > 0 {
		for j := 0; j <= n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				if t.basis[i] >= t.artLo {
					s += t.a[i*t.stride+j]
				}
			}
			t.cost[j] = -s
		}
		// Artificial columns themselves have phase-1 cost 1; their reduced
		// cost is 1 - (column sum over artificial-basic rows). For the
		// identity artificial columns this is exactly 0.
		for j := t.artLo; j < n; j++ {
			t.cost[j] += 1
		}
		st, err := t.iterate(&sol.Iterations, opt, true)
		if err != nil {
			return nil, err
		}
		if st == IterationLimit {
			sol.Status = IterationLimit
			return sol, nil
		}
		if -t.cost[n] > opt.FeasTol { // phase-1 objective = -cost[n]
			sol.Status = Infeasible
			return sol, nil
		}
		t.expelArtificials()
	}

	// Phase 2: original objective. Build reduced costs from the current
	// basis: cost[j] = c_j − Σ_i c_{basis(i)}·T[i][j].
	sign := 1.0
	if p.dir == Maximize {
		sign = -1
	}
	structCost := func(j int) float64 {
		if j >= nStruct {
			return 0
		}
		return sign * p.vars[cols[j].orig].obj * cols[j].sign
	}
	for j := 0; j <= n; j++ {
		c := 0.0
		if j < n {
			c = structCost(j)
		}
		for i := 0; i < m; i++ {
			if cb := structCost(t.basis[i]); cb != 0 {
				c -= cb * t.a[i*t.stride+j]
			}
		}
		t.cost[j] = c
	}

	st, err := t.iterate(&sol.Iterations, opt, false)
	if err != nil {
		return nil, err
	}
	switch st {
	case IterationLimit, Unbounded:
		sol.Status = st
		return sol, nil
	}

	// Extract the solution, mapping columns back through shifts and splits.
	colVal := make([]float64, n)
	for i := 0; i < m; i++ {
		v := t.a[i*t.stride+n]
		if v < 0 && v > -opt.FeasTol {
			v = 0
		}
		colVal[t.basis[i]] = v
	}
	for j := range p.vars {
		x := shift[j]
		ci := colOf[j]
		x += colVal[ci]
		if math.IsInf(p.vars[j].lo, -1) {
			x -= colVal[ci+1]
			x -= shift[j] // no shift applied for free vars
		}
		sol.X[j] = x
	}
	obj := 0.0
	for j, v := range p.vars {
		obj += v.obj * sol.X[j]
	}
	sol.Objective = obj
	sol.Status = Optimal
	// Dual extraction. After phase 2, cost[idCol[i]] is the reduced cost
	// of row i's identity column; since that column is a unit vector with
	// zero objective coefficient, its reduced cost is −ŷ_i, the internal
	// (minimization-form, b≥0-normalized) dual of row i. Map back to the
	// problem's orientation: undo the row flip (σ = −1 if the row was
	// negated) and the min/max sign. Only the first len(p.cons) rows are
	// user constraints — the trailing upper-bound rows stay internal.
	//
	// This holds for EVERY row, including rows zeroed as redundant by
	// expelArtificials: pivots keep the whole cost row of the form
	// cost[j] = c_j − φ(A_j) for one linear functional φ, so reading φ at
	// the identity columns recovers a dual vector that satisfies the same
	// identities the simplex exit test guarantees for structural columns.
	// A numerically-redundant row can carry a genuinely nonzero dual
	// weight this way (the basis may express an active row's multiplier
	// through the dependent one); forcing it to 0 would break the
	// reduced-cost identity on instances with near-dependent rows.
	sol.Y = make([]float64, len(p.cons))
	for i := range p.cons {
		yhat := -t.cost[idCol[i]]
		if flip[i] {
			yhat = -yhat
		}
		sol.Y[i] = sign * yhat
	}
	sol.ReducedCost = make([]float64, len(p.vars))
	for j, v := range p.vars {
		sol.ReducedCost[j] = v.obj
	}
	for i, c := range p.cons {
		y := sol.Y[i]
		if y == 0 {
			continue
		}
		for _, tm := range c.terms {
			sol.ReducedCost[tm.Var] -= y * tm.Coef
		}
	}
	return sol, nil
}

// tableau is a dense simplex tableau. Row i occupies
// a[i*stride : i*stride+n+1] with the rhs in the final slot; cost is the
// reduced-cost row with the negated objective value in cost[n].
type tableau struct {
	m, n   int
	artLo  int // columns ≥ artLo are artificial
	stride int
	a      []float64
	basis  []int
	cost   []float64
	tol    float64
}

// iterate pivots until optimality, unboundedness, the iteration budget is
// exhausted, or opt.Budget trips (returned as the error). phase1 permits
// artificial columns to enter (they never improve phase-1 cost, but keeping
// the rule uniform is harmless); in phase 2 they are barred. Dantzig's rule
// is used until the objective stalls for 2*(m+n)+20 consecutive pivots,
// after which Bland's rule guarantees termination.
func (t *tableau) iterate(iters *int, opt Options, phase1 bool) (Status, error) {
	stallLimit := 2*(t.m+t.n) + 20
	stall := 0
	lastObj := math.Inf(1)
	bland := false
	enterLimit := t.n
	if !phase1 {
		enterLimit = t.artLo
	}
	for {
		if *iters >= opt.MaxIterations {
			return IterationLimit, nil
		}
		if err := opt.Budget.Charge(1); err != nil {
			return IterationLimit, err
		}
		// Entering column.
		enter := -1
		if bland {
			for j := 0; j < enterLimit; j++ {
				if t.cost[j] < -t.tol {
					enter = j
					break
				}
			}
		} else {
			best := -t.tol
			for j := 0; j < enterLimit; j++ {
				if t.cost[j] < best {
					best = t.cost[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test; ties broken by smallest basis index (lexicographic-ish
		// anti-cycling helper).
		leave := -1
		var minRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i*t.stride+enter]
			if aij <= t.tol {
				continue
			}
			r := t.a[i*t.stride+t.n] / aij
			if leave < 0 || r < minRatio-t.tol ||
				(r < minRatio+t.tol && t.basis[i] < t.basis[leave]) {
				leave = i
				minRatio = r
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
		*iters++

		obj := -t.cost[t.n]
		if obj < lastObj-t.tol {
			lastObj = obj
			stall = 0
		} else {
			stall++
			if stall > stallLimit {
				bland = true
			}
		}
	}
}

// pivot makes column enter basic in row leave by Gauss–Jordan elimination.
func (t *tableau) pivot(leave, enter int) {
	base := leave * t.stride
	pv := t.a[base+enter]
	inv := 1 / pv
	prow := t.a[base : base+t.n+1]
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		rbase := i * t.stride
		f := t.a[rbase+enter]
		if f == 0 {
			continue
		}
		row := t.a[rbase : rbase+t.n+1]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
	}
	f := t.cost[enter]
	if f != 0 {
		for j := range t.cost {
			t.cost[j] -= f * prow[j]
		}
		t.cost[enter] = 0
	}
	t.basis[leave] = enter
}

// expelArtificials pivots basic artificial variables out of the basis after
// phase 1. Rows where no non-artificial pivot exists are redundant and are
// zeroed so they can never bind again.
func (t *tableau) expelArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artLo {
			continue
		}
		base := i * t.stride
		pivotCol := -1
		for j := 0; j < t.artLo; j++ {
			if math.Abs(t.a[base+j]) > t.tol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
			continue
		}
		// Redundant row (the artificial is basic at value ~0 and the row is
		// numerically zero over real columns): clear it.
		for j := 0; j <= t.n; j++ {
			t.a[base+j] = 0
		}
		// Keep the artificial basic in the zero row; since artificial
		// columns are barred from entering in phase 2 and the row is zero,
		// it never affects ratio tests.
	}
}
