package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Badly-scaled problems (coefficients spanning 6 orders of magnitude, as
// volume problems in pl..µl units would) still solve to the correct
// optimum.
func TestScalingRobustness(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1e-3)
	p.SetObjective(y, 1e3)
	p.AddConstraint("c1", []Term{{x, 1e-4}, {y, 1e2}}, LE, 1e3)
	p.AddConstraint("c2", []Term{{x, 1}}, LE, 1e6)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	// Two optimal vertices tie at objective 10000: (x=1e6, y=9) and
	// (x=0, y=10). Either is correct.
	if !approx(s.Objective, 10000) {
		t.Fatalf("objective = %v (x=%v y=%v), want 10000", s.Objective, s.Value(x), s.Value(y))
	}
}

// Duplicate and contradictory-looking redundant rows don't confuse the
// solver.
func TestManyRedundantRows(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	for i := 0; i < 50; i++ {
		p.AddConstraint("", []Term{{x, 1}}, LE, 10)
		p.AddConstraint("", []Term{{x, 2}}, LE, 20)
	}
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Value(x), 10) {
		t.Fatalf("got %v x=%v, want optimal 10", s.Status, s.Value(x))
	}
}

// A degenerate vertex (many constraints meeting at one point) terminates
// and answers correctly.
func TestHighlyDegenerate(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	// All constraints pass through (5,5).
	for i := 1; i <= 20; i++ {
		a := float64(i)
		p.AddConstraint("", []Term{{x, a}, {y, 10 - a}}, LE, a*5+(10-a)*5)
	}
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Objective, 10) {
		t.Fatalf("got %v obj=%v, want optimal 10", s.Status, s.Objective)
	}
}

// The exact solver agrees with the float solver on equality-constrained
// transportation-style problems.
func TestExactTransportation(t *testing.T) {
	p := NewProblem(Minimize)
	// 2 sources (supply 30, 20), 2 sinks (demand 25, 25).
	xs := make([]VarID, 4)
	costs := []float64{4, 6, 5, 3}
	for i := range xs {
		xs[i] = p.AddVariable("")
		p.SetObjective(xs[i], costs[i])
	}
	p.AddConstraint("s1", []Term{{xs[0], 1}, {xs[1], 1}}, EQ, 30)
	p.AddConstraint("s2", []Term{{xs[2], 1}, {xs[3], 1}}, EQ, 20)
	p.AddConstraint("d1", []Term{{xs[0], 1}, {xs[2], 1}}, EQ, 25)
	p.AddConstraint("d2", []Term{{xs[1], 1}, {xs[3], 1}}, EQ, 25)
	sf := solveOrFatal(t, p)
	se, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: x11=25, x12=5, x22=20 → 25·4+5·6+20·3 = 190.
	if !approx(sf.Objective, 190) || !approx(se.Objective, 190) {
		t.Fatalf("float %v, exact %v, want 190", sf.Objective, se.Objective)
	}
}

func TestExactUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	p.AddConstraint("", []Term{{x, -1}}, LE, 5)
	s, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

// Property: the optimum is invariant under row scaling.
func TestQuickRowScalingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1, _ := randomProblemEQ(r, 2+r.Intn(4), 1+r.Intn(5), false)
		// Rebuild with every row scaled by a random positive factor.
		p2 := NewProblem(Maximize)
		for j := 0; j < p1.NumVariables(); j++ {
			v := p2.AddVariable("")
			lo, hi := p1.Bounds(VarID(j))
			p2.SetBounds(v, lo, hi)
			p2.SetObjective(v, p1.vars[j].obj)
		}
		for _, c := range p1.cons {
			k := math.Pow(10, 3*r.Float64()-1.5)
			terms := make([]Term, len(c.terms))
			for i, t := range c.terms {
				terms[i] = Term{t.Var, t.Coef * k}
			}
			p2.AddConstraint("", terms, c.sense, c.rhs*k)
		}
		s1, err1 := p1.Solve(Options{})
		s2, err2 := p2.Solve(Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if s1.Status != s2.Status {
			return false
		}
		if s1.Status != Optimal {
			return true
		}
		return math.Abs(s1.Objective-s2.Objective) <= ObjectiveRelTol*(1+math.Abs(s1.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
