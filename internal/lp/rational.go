package lp

import (
	"fmt"
	"math"
	"math/big"
)

// SolveExact solves the problem with an exact simplex over math/big.Rat
// using Bland's rule throughout. It is immune to floating-point error and to
// cycling, at the cost of speed, and exists to cross-validate the float64
// solver in tests and to provide a trustworthy referee for small problems.
//
// Coefficients are converted from float64 exactly (every finite float64 is a
// rational). Infinite bounds are handled structurally, as in Solve.
func (p *Problem) SolveExact() (*Solution, error) {
	for _, v := range p.vars {
		if math.IsNaN(v.lo) || math.IsNaN(v.hi) || math.IsNaN(v.obj) {
			return nil, fmt.Errorf("%w: NaN in variable %q", ErrBadProblem, v.name)
		}
	}
	// Constraint NaNs must be rejected here, not just in Solve:
	// big.Rat.SetFloat64(NaN) is a silent no-op, so an unchecked NaN rhs
	// or coefficient would be treated as 0 rather than poisoning the
	// arithmetic the way it does in float64.
	for _, c := range p.cons {
		if math.IsNaN(c.rhs) {
			return nil, fmt.Errorf("%w: NaN rhs in constraint %q", ErrBadProblem, c.name)
		}
		for _, t := range c.terms {
			if math.IsNaN(t.Coef) {
				return nil, fmt.Errorf("%w: NaN coefficient in constraint %q", ErrBadProblem, c.name)
			}
		}
	}

	var cols []column
	colOf := make([]int, len(p.vars))
	shift := make([]*big.Rat, len(p.vars))
	for j, v := range p.vars {
		colOf[j] = len(cols)
		if math.IsInf(v.lo, -1) {
			shift[j] = new(big.Rat)
			cols = append(cols, column{VarID(j), 1}, column{VarID(j), -1})
		} else {
			shift[j] = new(big.Rat).SetFloat64(v.lo)
			cols = append(cols, column{VarID(j), 1})
		}
	}
	nStruct := len(cols)

	type rrow struct {
		coefs []*big.Rat
		sense Sense
		rhs   *big.Rat
	}
	newRow := func() rrow {
		r := rrow{coefs: make([]*big.Rat, nStruct), rhs: new(big.Rat)}
		for k := range r.coefs {
			r.coefs[k] = new(big.Rat)
		}
		return r
	}
	var rows []rrow
	for _, c := range p.cons {
		r := newRow()
		r.sense = c.sense
		r.rhs.SetFloat64(c.rhs)
		for _, t := range c.terms {
			j := t.Var
			ci := colOf[j]
			coef := new(big.Rat).SetFloat64(t.Coef)
			r.coefs[ci].Add(r.coefs[ci], coef)
			if math.IsInf(p.vars[j].lo, -1) {
				r.coefs[ci+1].Sub(r.coefs[ci+1], coef)
			} else {
				r.rhs.Sub(r.rhs, new(big.Rat).Mul(coef, shift[j]))
			}
		}
		rows = append(rows, r)
	}
	for j, v := range p.vars {
		if math.IsInf(v.hi, 1) {
			continue
		}
		r := newRow()
		r.sense = LE
		ci := colOf[j]
		r.coefs[ci].SetInt64(1)
		hi := new(big.Rat).SetFloat64(v.hi)
		if math.IsInf(v.lo, -1) {
			r.coefs[ci+1].SetInt64(-1)
			r.rhs.Set(hi)
		} else {
			r.rhs.Sub(hi, shift[j])
		}
		rows = append(rows, r)
	}

	m := len(rows)
	nSlack, nArt := 0, 0
	zero := new(big.Rat)
	for i := range rows {
		if rows[i].rhs.Cmp(zero) < 0 {
			for k := range rows[i].coefs {
				rows[i].coefs[k].Neg(rows[i].coefs[k])
			}
			rows[i].rhs.Neg(rows[i].rhs)
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
		switch rows[i].sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := nStruct + nSlack + nArt
	artLo := n - nArt

	// Dense rational tableau: a[i][j], rhs at column n.
	a := make([][]*big.Rat, m)
	basis := make([]int, m)
	for i := range a {
		a[i] = make([]*big.Rat, n+1)
		for j := range a[i] {
			a[i][j] = new(big.Rat)
		}
	}
	slackAt, artAt := nStruct, nStruct+nSlack
	for i, r := range rows {
		for j := 0; j < nStruct; j++ {
			a[i][j].Set(r.coefs[j])
		}
		a[i][n].Set(r.rhs)
		switch r.sense {
		case LE:
			a[i][slackAt].SetInt64(1)
			basis[i] = slackAt
			slackAt++
		case GE:
			a[i][slackAt].SetInt64(-1)
			slackAt++
			a[i][artAt].SetInt64(1)
			basis[i] = artAt
			artAt++
		case EQ:
			a[i][artAt].SetInt64(1)
			basis[i] = artAt
			artAt++
		}
	}

	cost := make([]*big.Rat, n+1)
	for j := range cost {
		cost[j] = new(big.Rat)
	}

	pivot := func(leave, enter int) {
		inv := new(big.Rat).Inv(a[leave][enter])
		for j := 0; j <= n; j++ {
			a[leave][j].Mul(a[leave][j], inv)
		}
		tmp := new(big.Rat)
		for i := 0; i < m; i++ {
			if i == leave || a[i][enter].Cmp(zero) == 0 {
				continue
			}
			f := new(big.Rat).Set(a[i][enter])
			for j := 0; j <= n; j++ {
				tmp.Mul(f, a[leave][j])
				a[i][j].Sub(a[i][j], tmp)
			}
		}
		if cost[enter].Cmp(zero) != 0 {
			f := new(big.Rat).Set(cost[enter])
			tmp := new(big.Rat)
			for j := 0; j <= n; j++ {
				tmp.Mul(f, a[leave][j])
				cost[j].Sub(cost[j], tmp)
			}
		}
		basis[leave] = enter
	}

	// iterate runs Bland's-rule simplex to optimality or unboundedness.
	iterate := func(enterLimit int) Status {
		for {
			enter := -1
			for j := 0; j < enterLimit; j++ {
				if cost[j].Cmp(zero) < 0 {
					enter = j
					break
				}
			}
			if enter < 0 {
				return Optimal
			}
			leave := -1
			ratio := new(big.Rat)
			r := new(big.Rat)
			for i := 0; i < m; i++ {
				if a[i][enter].Cmp(zero) <= 0 {
					continue
				}
				r.Quo(a[i][n], a[i][enter])
				if leave < 0 || r.Cmp(ratio) < 0 ||
					(r.Cmp(ratio) == 0 && basis[i] < basis[leave]) {
					leave = i
					ratio.Set(r)
				}
			}
			if leave < 0 {
				return Unbounded
			}
			pivot(leave, enter)
		}
	}

	sol := &Solution{X: make([]float64, len(p.vars))}

	if nArt > 0 {
		for j := 0; j <= n; j++ {
			s := new(big.Rat)
			for i := 0; i < m; i++ {
				if basis[i] >= artLo {
					s.Add(s, a[i][j])
				}
			}
			cost[j].Neg(s)
		}
		one := big.NewRat(1, 1)
		for j := artLo; j < n; j++ {
			cost[j].Add(cost[j], one)
		}
		iterate(n) // phase 1 cannot be unbounded
		obj := new(big.Rat).Neg(cost[n])
		if obj.Cmp(zero) > 0 {
			sol.Status = Infeasible
			return sol, nil
		}
		// Expel basic artificials.
		for i := 0; i < m; i++ {
			if basis[i] < artLo {
				continue
			}
			done := false
			for j := 0; j < artLo && !done; j++ {
				if a[i][j].Cmp(zero) != 0 {
					pivot(i, j)
					done = true
				}
			}
			if !done {
				for j := 0; j <= n; j++ {
					a[i][j].SetInt64(0)
				}
			}
		}
	}

	sign := int64(1)
	if p.dir == Maximize {
		sign = -1
	}
	structCost := func(j int) *big.Rat {
		if j >= nStruct {
			return zero
		}
		c := new(big.Rat).SetFloat64(p.vars[cols[j].orig].obj * cols[j].sign)
		return c.Mul(c, big.NewRat(sign, 1))
	}
	tmp := new(big.Rat)
	for j := 0; j <= n; j++ {
		c := new(big.Rat)
		if j < n {
			c.Set(structCost(j))
		}
		for i := 0; i < m; i++ {
			cb := structCost(basis[i])
			if cb.Cmp(zero) != 0 {
				tmp.Mul(cb, a[i][j])
				c.Sub(c, tmp)
			}
		}
		cost[j].Set(c)
	}
	if st := iterate(artLo); st == Unbounded {
		sol.Status = Unbounded
		return sol, nil
	}

	colVal := make([]*big.Rat, n)
	for j := range colVal {
		colVal[j] = new(big.Rat)
	}
	for i := 0; i < m; i++ {
		colVal[basis[i]].Set(a[i][n])
	}
	for j := range p.vars {
		x := new(big.Rat).Set(shift[j])
		ci := colOf[j]
		x.Add(x, colVal[ci])
		if math.IsInf(p.vars[j].lo, -1) {
			x.Sub(x, colVal[ci+1])
		}
		sol.X[j], _ = x.Float64()
	}
	obj := 0.0
	for j, v := range p.vars {
		obj += v.obj * sol.X[j]
	}
	sol.Objective = obj
	sol.Status = Optimal
	return sol, nil
}
