package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// eps aliases the exported solution-value tolerance so every comparison in
// this file follows the documented tolerance ladder in tol.go.
const eps = SolutionTol

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func solveOrFatal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

// Classic 2-variable maximization with a known optimum.
func TestMaximizeBasic(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 3)
	p.SetObjective(y, 5)
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !approx(s.Objective, 36) || !approx(s.Value(x), 2) || !approx(s.Value(y), 6) {
		t.Fatalf("got obj=%v x=%v y=%v, want 36, 2, 6", s.Objective, s.Value(x), s.Value(y))
	}
}

// Minimization with ≥ constraints exercises phase 1.
func TestMinimizeWithGE(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 12)
	p.SetObjective(y, 16)
	p.AddConstraint("c1", []Term{{x, 1}, {y, 2}}, GE, 40)
	p.AddConstraint("c2", []Term{{x, 1}, {y, 1}}, GE, 30)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	// Optimum at x=20, y=10: 12*20+16*10 = 400.
	if !approx(s.Objective, 400) {
		t.Fatalf("objective = %v, want 400", s.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	z := p.AddVariable("z")
	p.SetObjective(x, 1)
	p.SetObjective(y, 2)
	p.SetObjective(z, 3)
	p.AddConstraint("sum", []Term{{x, 1}, {y, 1}, {z, 1}}, EQ, 10)
	p.AddConstraint("cap", []Term{{z, 1}}, LE, 4)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	// Best: z=4, y=6, x=0 → 0+12+12 = 24.
	if !approx(s.Objective, 24) {
		t.Fatalf("objective = %v, want 24", s.Objective)
	}
	if !approx(s.Value(x)+s.Value(y)+s.Value(z), 10) {
		t.Fatalf("equality violated: %v + %v + %v != 10", s.Value(x), s.Value(y), s.Value(z))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 5)
	p.AddConstraint("hi", []Term{{x, 1}}, LE, 3)
	s := solveOrFatal(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 1)
	s := solveOrFatal(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestUnboundedNoConstraints(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 2)
	s := solveOrFatal(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestVariableBoundsShift(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetBounds(x, 2, 7)
	p.SetBounds(y, 1, math.Inf(1))
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 5)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !approx(s.Objective, 5) {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
	if s.Value(x) < 2-eps || s.Value(x) > 7+eps || s.Value(y) < 1-eps {
		t.Fatalf("bounds violated: x=%v y=%v", s.Value(x), s.Value(y))
	}
}

func TestUpperBoundBinds(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetBounds(x, 0, 3.5)
	p.SetObjective(x, 1)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Value(x), 3.5) {
		t.Fatalf("got %v x=%v, want optimal x=3.5", s.Status, s.Value(x))
	}
}

func TestFreeVariable(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.SetBounds(x, math.Inf(-1), math.Inf(1))
	p.SetObjective(x, 1)
	p.AddConstraint("lo", []Term{{x, 1}}, GE, -4)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Value(x), -4) {
		t.Fatalf("got %v x=%v, want optimal x=-4", s.Status, s.Value(x))
	}
}

func TestNegativeLowerBound(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.SetBounds(x, -10, 10)
	p.SetObjective(x, 3)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Value(x), -10) {
		t.Fatalf("got %v x=%v, want optimal x=-10", s.Status, s.Value(x))
	}
}

// Beale's classic cycling example must terminate (Bland fallback).
func TestBealeCyclingTerminates(t *testing.T) {
	p := NewProblem(Minimize)
	x1 := p.AddVariable("x1")
	x2 := p.AddVariable("x2")
	x3 := p.AddVariable("x3")
	x4 := p.AddVariable("x4")
	p.SetObjective(x1, -0.75)
	p.SetObjective(x2, 150)
	p.SetObjective(x3, -0.02)
	p.SetObjective(x4, 6)
	p.AddConstraint("c1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint("c2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint("c3", []Term{{x3, 1}}, LE, 1)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !approx(s.Objective, -0.05) {
		t.Fatalf("objective = %v, want -0.05", s.Objective)
	}
}

// Degenerate constraints (redundant equalities) should not break phase 1's
// artificial expulsion.
func TestRedundantEqualities(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint("e2", []Term{{x, 2}, {y, 2}}, EQ, 8) // same hyperplane
	p.AddConstraint("cap", []Term{{x, 1}}, LE, 3)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Objective, 4) {
		t.Fatalf("got %v obj=%v, want optimal 4", s.Status, s.Objective)
	}
}

func TestZeroObjectiveFeasibilityOnly(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, EQ, 2)
	p.AddConstraint("c2", []Term{{x, 1}, {y, -1}}, EQ, 0)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !approx(s.Value(x), 1) || !approx(s.Value(y), 1) {
		t.Fatalf("x=%v y=%v, want 1,1", s.Value(x), s.Value(y))
	}
}

func TestNaNRejected(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.AddConstraint("c", []Term{{x, math.NaN()}}, LE, 1)
	if _, err := p.Solve(Options{}); err == nil {
		t.Fatal("expected error for NaN coefficient")
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(Maximize)
	vars := make([]VarID, 12)
	for i := range vars {
		vars[i] = p.AddVariable("")
		p.SetObjective(vars[i], float64(i+1))
	}
	for i := range vars {
		p.AddConstraint("", []Term{{vars[i], 1}}, LE, float64(i+1))
	}
	s, err := p.Solve(Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != IterationLimit {
		t.Fatalf("status = %v, want iteration-limit", s.Status)
	}
}

// Klee–Minty cube in 4 dimensions: worst case for Dantzig pivoting but must
// still reach the known optimum.
func TestKleeMinty(t *testing.T) {
	const d = 4
	p := NewProblem(Maximize)
	vars := make([]VarID, d)
	for i := 0; i < d; i++ {
		vars[i] = p.AddVariable("")
	}
	for i := 0; i < d; i++ {
		p.SetObjective(vars[i], math.Pow(2, float64(d-1-i)))
	}
	for i := 0; i < d; i++ {
		terms := []Term{{vars[i], 1}}
		for j := 0; j < i; j++ {
			terms = append(terms, Term{vars[j], math.Pow(2, float64(i-j+1))})
		}
		p.AddConstraint("", terms, LE, math.Pow(5, float64(i+1)))
	}
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Objective, math.Pow(5, d)) {
		t.Fatalf("got %v obj=%v, want optimal %v", s.Status, s.Objective, math.Pow(5, d))
	}
}

func TestExactMatchesFloatBasic(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 3)
	p.SetObjective(y, 5)
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sf := solveOrFatal(t, p)
	se, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if se.Status != Optimal || !approx(se.Objective, sf.Objective) {
		t.Fatalf("exact: %v obj=%v, float obj=%v", se.Status, se.Objective, sf.Objective)
	}
}

func TestExactInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 5)
	p.AddConstraint("hi", []Term{{x, 1}}, LE, 3)
	s, err := p.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

// randomProblem builds a random LP guaranteed feasible by construction:
// generate a random point x0 ≥ 0 and random rows a, then set rhs so that
// a·x0 satisfies each constraint with slack. Objective is maximization of a
// random nonnegative cost over LE rows plus box bounds, so it is bounded.
func randomProblem(r *rand.Rand, nv, nc int) (*Problem, []float64) {
	return randomProblemEQ(r, nv, nc, true)
}

// randomProblemEQ is randomProblem with equality constraints optionally
// disabled. Exact-vs-float comparison tests disable them: two equalities
// derived from the same seed point are consistent only up to float64
// rounding, which the exact solver legitimately reports as infeasible.
func randomProblemEQ(r *rand.Rand, nv, nc int, allowEQ bool) (*Problem, []float64) {
	p := NewProblem(Maximize)
	x0 := make([]float64, nv)
	vars := make([]VarID, nv)
	for j := 0; j < nv; j++ {
		vars[j] = p.AddVariable("")
		x0[j] = 10 * r.Float64()
		p.SetBounds(vars[j], 0, 50)
		p.SetObjective(vars[j], r.Float64())
	}
	for i := 0; i < nc; i++ {
		terms := make([]Term, 0, nv)
		dot := 0.0
		for j := 0; j < nv; j++ {
			if r.Float64() < 0.4 {
				continue
			}
			c := 2*r.Float64() - 0.5 // mostly positive, some negative
			terms = append(terms, Term{vars[j], c})
			dot += c * x0[j]
		}
		if len(terms) == 0 {
			continue
		}
		kind := r.Intn(3)
		if !allowEQ && kind == 2 {
			kind = r.Intn(2)
		}
		switch kind {
		case 0:
			p.AddConstraint("", terms, LE, dot+r.Float64()*5)
		case 1:
			p.AddConstraint("", terms, GE, dot-r.Float64()*5)
		case 2:
			p.AddConstraint("", terms, EQ, dot)
		}
	}
	return p, x0
}

// feasibleAt verifies that x satisfies every constraint and bound of p to
// within tolerance.
func feasibleAt(p *Problem, x []float64, tol float64) bool {
	for j, v := range p.vars {
		if x[j] < v.lo-tol || x[j] > v.hi+tol {
			return false
		}
	}
	for _, c := range p.cons {
		dot := 0.0
		for _, t := range c.terms {
			dot += t.Coef * x[t.Var]
		}
		switch c.sense {
		case LE:
			if dot > c.rhs+tol {
				return false
			}
		case GE:
			if dot < c.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(dot-c.rhs) > tol {
				return false
			}
		}
	}
	return true
}

// Property: on random feasible bounded LPs the solver returns a feasible
// point whose objective is at least as good as the seed point's.
func TestQuickRandomFeasible(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(6)
		nc := 1 + r.Intn(8)
		p, x0 := randomProblem(r, nv, nc)
		s, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			// By construction x0 is feasible and bounds cap the objective.
			return false
		}
		if !feasibleAt(p, s.X, FeasCheckTol) {
			return false
		}
		obj0 := 0.0
		for j := range x0 {
			obj0 += p.vars[j].obj * x0[j]
		}
		return s.Objective >= obj0-SolutionTol
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: float64 simplex and exact rational simplex agree on objective
// value for random small problems.
func TestQuickExactAgreement(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(4)
		nc := 1 + r.Intn(5)
		p, _ := randomProblemEQ(r, nv, nc, false)
		sf, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		se, err := p.SolveExact()
		if err != nil {
			return false
		}
		if sf.Status != se.Status {
			return false
		}
		if sf.Status != Optimal {
			return true
		}
		return approx(sf.Objective, se.Objective)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProblemString(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 2)
	p.SetBounds(x, 1, 5)
	p.AddConstraint("cap", []Term{{x, 1}}, LE, 4)
	s := p.String()
	for _, want := range []string{"max", "cap:", "<= 4", "1 <= x <= 5"} {
		if !contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestMergeTermsDuplicates(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	p.AddConstraint("c", []Term{{x, 1}, {x, 2}}, GE, 6)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Value(x), 2) {
		t.Fatalf("got %v x=%v, want optimal x=2 (3x >= 6)", s.Status, s.Value(x))
	}
}

func TestBoundsPanicOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.SetBounds(x, 5, 1)
}
