package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Dual values on the classic TestMaximizeBasic instance: at the optimum
// (x=2, y=6) constraint c1 is slack and c2, c3 bind with shadow prices
// 1.5 and 1 (raising c2's rhs by 1 buys half a unit of y at profit 5/2;
// raising c3's buys a third of a unit of x at profit 1).
func TestDualsMaximizeBasic(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 3)
	p.SetObjective(y, 5)
	c1 := p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	c2 := p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	c3 := p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	want := map[ConID]float64{c1: 0, c2: 1.5, c3: 1}
	for c, w := range want {
		if !approx(s.Y[c], w) {
			t.Errorf("Y[%s] = %v, want %v", p.ConstraintName(c), s.Y[c], w)
		}
	}
	// Both variables are strictly interior, so their reduced costs vanish.
	if !approx(s.ReducedCost[x], 0) || !approx(s.ReducedCost[y], 0) {
		t.Errorf("reduced costs = %v, %v, want 0, 0", s.ReducedCost[x], s.ReducedCost[y])
	}
}

// A single binding LE row: max 3x s.t. x ≤ 4 has shadow price 3.
func TestDualSingleLE(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 3)
	c := p.AddConstraint("cap", []Term{{x, 1}}, LE, 4)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Y[c], 3) {
		t.Fatalf("got %v Y=%v, want optimal Y=3", s.Status, s.Y)
	}
}

// A binding GE row routes the dual through an artificial column:
// min 2x s.t. x ≥ 3 has shadow price 2 (∂obj/∂rhs in the original
// orientation, so positive: raising the floor raises the cost).
func TestDualSingleGE(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.SetObjective(x, 2)
	c := p.AddConstraint("floor", []Term{{x, 1}}, GE, 3)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Y[c], 2) {
		t.Fatalf("got %v Y=%v, want optimal Y=2", s.Status, s.Y)
	}
}

// Equality rows get signed duals: min x+2y s.t. x+y = 10, x ≤ 4 optimizes
// at (4, 6). Relaxing the equality to 11 costs +2 (one more unit of y);
// relaxing the cap to 5 saves 1 (swap a y for an x), so its dual is -1.
func TestDualEqualityAndNegative(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 2)
	eq := p.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, EQ, 10)
	cap := p.AddConstraint("cap", []Term{{x, 1}}, LE, 4)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || !approx(s.Objective, 16) {
		t.Fatalf("got %v obj=%v, want optimal 16", s.Status, s.Objective)
	}
	if !approx(s.Y[eq], 2) || !approx(s.Y[cap], -1) {
		t.Fatalf("Y = %v, want [2, -1]", s.Y)
	}
}

// Redundant constraints (zeroed during phase 1's artificial expulsion)
// carry dual 0 by convention rather than garbage.
func TestDualRedundantRowIsZero(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	e2 := p.AddConstraint("e2", []Term{{x, 2}, {y, 2}}, EQ, 8) // same hyperplane
	p.AddConstraint("cap", []Term{{x, 1}}, LE, 3)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !approx(s.Y[e2], 0) {
		t.Fatalf("Y[e2] = %v, want 0 for the redundant row", s.Y[e2])
	}
}

// Property: on random feasible bounded LPs the returned (Y, ReducedCost)
// pair is a valid optimality certificate — the same KKT conditions
// internal/certify enforces on production plans. For the maximization
// problems randomProblem builds (bounds [0, 50], LE/GE/EQ rows):
//   - dual sign feasibility: LE rows have Y ≥ 0, GE rows Y ≤ 0;
//   - complementary slackness: a slack row has Y = 0, and a variable
//     strictly between its bounds has reduced cost 0;
//   - zero duality gap: obj = Σ Y·rhs + Σ max(rc, 0)·hi (lo = 0 here).
func TestQuickDualCertificate(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(6)
		nc := 1 + r.Intn(8)
		p, _ := randomProblem(r, nv, nc)
		s, err := p.Solve(Options{})
		if err != nil || s.Status != Optimal {
			return false
		}
		tol := FeasCheckTol * 50 // row activities scale with the box bound
		for i, c := range p.cons {
			dot := 0.0
			for _, tm := range c.terms {
				dot += tm.Coef * s.X[tm.Var]
			}
			switch c.sense {
			case LE:
				if s.Y[i] < -tol {
					return false
				}
				if c.rhs-dot > tol && math.Abs(s.Y[i]) > tol { // slack row must have Y=0
					return false
				}
			case GE:
				if s.Y[i] > tol {
					return false
				}
				if dot-c.rhs > tol && math.Abs(s.Y[i]) > tol {
					return false
				}
			}
		}
		bound := 0.0
		for i, c := range p.cons {
			bound += s.Y[i] * c.rhs
		}
		for j, v := range p.vars {
			rc := s.ReducedCost[j]
			if s.X[j] > v.lo+tol && s.X[j] < v.hi-tol && math.Abs(rc) > tol {
				return false
			}
			if rc > 0 {
				bound += rc * v.hi
			} // rc < 0 pairs with lo = 0: contributes nothing
		}
		return math.Abs(s.Objective-bound) <= ObjectiveRelTol*(1+math.Abs(s.Objective))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Non-optimal terminations carry no certificate.
func TestDualsNilWhenNotOptimal(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	s := solveOrFatal(t, p) // unbounded
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
	if s.Y != nil || s.ReducedCost != nil {
		t.Fatalf("Y=%v ReducedCost=%v, want nil for non-optimal status", s.Y, s.ReducedCost)
	}
}

// --- SolveExact error paths (satellite: previously exercised only as a
// cross-check referee on feasible instances; unbounded is covered by
// robustness_test.go's TestExactUnbounded) ---

func TestExactNaNVariableRejected(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.SetObjective(x, math.NaN())
	if _, err := p.SolveExact(); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem for NaN objective", err)
	}
}

// big.Rat.SetFloat64(NaN) is a silent no-op, so without explicit
// validation a NaN rhs would be read as 0 instead of failing.
func TestExactNaNConstraintRejected(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x")
	p.SetObjective(x, 1)
	p.AddConstraint("rhs", []Term{{x, 1}}, GE, math.NaN())
	if _, err := p.SolveExact(); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem for NaN rhs", err)
	}

	p2 := NewProblem(Minimize)
	x2 := p2.AddVariable("x")
	p2.SetObjective(x2, 1)
	p2.AddConstraint("coef", []Term{{x2, math.NaN()}}, GE, 1)
	if _, err := p2.SolveExact(); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem for NaN coefficient", err)
	}
}
