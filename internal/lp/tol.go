package lp

// Tolerance policy for the whole volume-management stack, in one place.
//
// Every float comparison against an LP solution — inside the solver, in
// the lp tests, and in the independent certificate checker
// (internal/certify) — uses one of these named constants. The values form
// a deliberate ladder: each tier is looser than the one below it because
// it accumulates more rounding (pivots → extracted values → cross-solver
// comparisons), and a check at tier k must tolerate everything tiers < k
// legitimately let through.
const (
	// DefaultTol is the pivot / reduced-cost tolerance used inside the
	// simplex iterations (Options.Tol's default). Entries smaller than
	// this are treated as zero during pivoting.
	DefaultTol = 1e-9

	// DefaultFeasTol is the phase-1 feasibility tolerance
	// (Options.FeasTol's default): a phase-1 objective below this means
	// the problem is feasible.
	DefaultFeasTol = 1e-7

	// SolutionTol compares individual solution values (variable values,
	// duals, reduced costs) against exact or independently recomputed
	// references. It is looser than DefaultTol because extraction
	// accumulates one rounding per basic row.
	SolutionTol = 1e-6

	// FeasCheckTol re-checks a finished solution against the original
	// constraints (Σ a_ij·x_j vs b_i). Residuals accumulate one rounding
	// per term, so this sits above SolutionTol.
	FeasCheckTol = 1e-5

	// ObjectiveRelTol compares objective values across solvers or across
	// reformulations of the same problem, relative to 1+|objective|.
	// The loosest tier: it absorbs two independent solves' error.
	ObjectiveRelTol = 1e-4
)
