package lp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Direction selects whether the objective is minimized or maximized.
type Direction int

const (
	// Minimize the objective function.
	Minimize Direction = iota
	// Maximize the objective function.
	Maximize
)

func (d Direction) String() string {
	switch d {
	case Minimize:
		return "min"
	case Maximize:
		return "max"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Sense is the relational operator of a constraint.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an = constraint.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// VarID identifies a variable within a Problem.
type VarID int

// ConID identifies a constraint within a Problem.
type ConID int

// Term is one coefficient–variable product in a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

type variable struct {
	name string
	lo   float64 // lower bound, may be -Inf
	hi   float64 // upper bound, may be +Inf
	obj  float64 // objective coefficient
}

type constraint struct {
	name  string
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
//
// Problems are append-only: variables and constraints may be added but not
// removed. Solve leaves the Problem unchanged, so one Problem may be solved
// repeatedly (e.g. from benchmarks) or with different Options.
type Problem struct {
	dir  Direction
	vars []variable
	cons []constraint
}

// NewProblem returns an empty problem with the given objective direction.
func NewProblem(dir Direction) *Problem {
	return &Problem{dir: dir}
}

// Direction reports the objective direction of the problem.
func (p *Problem) Direction() Direction { return p.dir }

// NumVariables reports the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVariable adds a variable named name with default bounds [0, +Inf) and
// zero objective coefficient, returning its id.
func (p *Problem) AddVariable(name string) VarID {
	p.vars = append(p.vars, variable{name: name, lo: 0, hi: math.Inf(1)})
	return VarID(len(p.vars) - 1)
}

// SetBounds sets the variable's inclusive bounds. lo may be -Inf and hi may
// be +Inf. SetBounds panics if v is out of range or lo > hi.
func (p *Problem) SetBounds(v VarID, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %s bounds inverted: [%g, %g]", p.vars[v].name, lo, hi))
	}
	p.vars[v].lo = lo
	p.vars[v].hi = hi
}

// Bounds reports the variable's bounds.
func (p *Problem) Bounds(v VarID) (lo, hi float64) {
	return p.vars[v].lo, p.vars[v].hi
}

// SetObjective sets the variable's objective coefficient, replacing any
// previous value.
func (p *Problem) SetObjective(v VarID, coef float64) {
	p.vars[v].obj = coef
}

// VariableName reports the name a variable was created with.
func (p *Problem) VariableName(v VarID) string { return p.vars[v].name }

// AddConstraint adds the constraint Σ terms  sense  rhs and returns its id.
// Terms referring to the same variable are summed. AddConstraint panics if a
// term references an unknown variable.
func (p *Problem) AddConstraint(name string, terms []Term, sense Sense, rhs float64) ConID {
	merged := mergeTerms(terms, len(p.vars))
	p.cons = append(p.cons, constraint{name: name, terms: merged, sense: sense, rhs: rhs})
	return ConID(len(p.cons) - 1)
}

// ConstraintName reports the name a constraint was created with.
func (p *Problem) ConstraintName(c ConID) string { return p.cons[c].name }

// Objective reports the variable's objective coefficient.
func (p *Problem) Objective(v VarID) float64 { return p.vars[v].obj }

// Constraint reports constraint c's merged terms, sense, and rhs. The
// returned slice aliases the problem's storage and must not be modified;
// it is sorted by variable id.
func (p *Problem) Constraint(c ConID) (terms []Term, sense Sense, rhs float64) {
	con := &p.cons[c]
	return con.terms, con.sense, con.rhs
}

// mergeTerms sums duplicate variables, drops zero coefficients, and checks
// variable ids. The result is sorted by variable id for determinism.
func mergeTerms(terms []Term, nvars int) []Term {
	acc := make(map[VarID]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || int(t.Var) >= nvars {
			panic(fmt.Sprintf("lp: term references unknown variable %d (have %d)", t.Var, nvars))
		}
		acc[t.Var] += t.Coef
	}
	out := make([]Term, 0, len(acc))
	for v, c := range acc {
		if c != 0 {
			out = append(out, Term{Var: v, Coef: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// String renders the problem in a compact human-readable LP format, useful
// in test failures and debug logs.
func (p *Problem) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ", p.dir)
	first := true
	for i, v := range p.vars {
		if v.obj == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g %s", v.obj, p.varLabel(VarID(i)))
		first = false
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\nsubject to\n")
	for _, c := range p.cons {
		b.WriteString("  ")
		if c.name != "" {
			fmt.Fprintf(&b, "%s: ", c.name)
		}
		for i, t := range c.terms {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%g %s", t.Coef, p.varLabel(t.Var))
		}
		fmt.Fprintf(&b, " %s %g\n", c.sense, c.rhs)
	}
	b.WriteString("bounds\n")
	for i, v := range p.vars {
		if v.lo == 0 && math.IsInf(v.hi, 1) {
			continue
		}
		fmt.Fprintf(&b, "  %g <= %s <= %g\n", v.lo, p.varLabel(VarID(i)), v.hi)
	}
	return b.String()
}

func (p *Problem) varLabel(v VarID) string {
	if n := p.vars[v].name; n != "" {
		return n
	}
	return fmt.Sprintf("x%d", int(v))
}
