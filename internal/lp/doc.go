// Package lp implements a self-contained linear-programming solver.
//
// The paper "Automatic Volume Management for Programmable Microfluidics"
// (PLDI 2008) solves its Rational Volume Management (RVol) formulation with
// Matlab's linprog (LIPSOL). This repository is stdlib-only, so this package
// provides the substitute: a dense two-phase primal simplex over float64,
// plus an exact mirror over math/big.Rat used to cross-validate the floating
// point path in tests.
//
// The solver handles problems of the form
//
//	min (or max)  cᵀx
//	subject to    aᵢᵀx  {≤, ≥, =}  bᵢ      for each constraint i
//	              lo_j ≤ x_j ≤ hi_j        for each variable j
//
// Finite lower bounds are eliminated by shifting, finite upper bounds become
// internal rows, and free variables are split into positive and negative
// parts, so the core simplex only ever sees x ≥ 0.
//
// Determinism: given the same Problem, Solve always performs the same pivot
// sequence (Dantzig's rule with a Bland's-rule anti-cycling fallback), so
// results are reproducible across runs.
//
// The package is intentionally dense (a flat tableau), which is the right
// trade-off for the paper's problem sizes: the glucose assay generates ~50
// constraints, the enzyme assay ~900, and the scaled Enzyme10 stress test
// ~13k. The largest of these fits in a dense tableau in well under a
// gigabyte and is exercised only by opt-in long benchmarks, mirroring the
// paper's own observation that LP becomes impractically slow at that scale.
package lp
