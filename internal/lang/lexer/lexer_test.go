package lexer

import (
	"testing"

	"aquavol/internal/lang/token"
)

func kinds(src string) []token.Kind {
	var out []token.Kind
	for _, t := range Tokenize(src) {
		out = append(out, t.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds("a = MIX x AND y IN RATIOS 1 : 2 FOR 10;")
	want := []token.Kind{
		token.IDENT, token.ASSIGN, token.MIX, token.IDENT, token.AND,
		token.IDENT, token.IN, token.RATIOS, token.NUMBER, token.COLON,
		token.NUMBER, token.FOR, token.NUMBER, token.SEMI, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (in %v)", i, got[i], want[i], got)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"mix", "Mix", "MIX", "mIx"} {
		toks := Tokenize(src)
		if toks[0].Kind != token.MIX {
			t.Fatalf("%q lexed as %v, want MIX", src, toks[0])
		}
	}
	// `it` is a keyword too.
	if Tokenize("it")[0].Kind != token.IT {
		t.Fatal("it should lex as IT")
	}
	// Identifiers with keyword prefixes stay identifiers.
	if Tokenize("mixer1")[0].Kind != token.IDENT {
		t.Fatal("mixer1 should lex as IDENT")
	}
}

func TestComments(t *testing.T) {
	toks := Tokenize("x -- a comment\ny")
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("comment not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Fatalf("line tracking wrong: %v", toks[1].Pos)
	}
}

func TestNumbers(t *testing.T) {
	toks := Tokenize("10 2.5 0.125")
	for i, want := range []string{"10", "2.5", "0.125"} {
		if toks[i].Kind != token.NUMBER || toks[i].Text != want {
			t.Fatalf("token %d = %v, want NUMBER(%s)", i, toks[i], want)
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds("<= >= == != < > = + - * / %")
	want := []token.Kind{
		token.LE, token.GE, token.EQ, token.NE, token.LT, token.GT,
		token.ASSIGN, token.PLUS, token.MINUS, token.STAR, token.SLASH,
		token.PERCENT, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIllegal(t *testing.T) {
	toks := Tokenize("a @ b")
	if toks[1].Kind != token.ILLEGAL {
		t.Fatalf("@ should be ILLEGAL, got %v", toks[1])
	}
}

func TestPositions(t *testing.T) {
	toks := Tokenize("ab cd\nef")
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) ||
		toks[1].Pos != (token.Pos{Line: 1, Col: 4}) ||
		toks[2].Pos != (token.Pos{Line: 2, Col: 1}) {
		t.Fatalf("positions wrong: %v %v %v", toks[0].Pos, toks[1].Pos, toks[2].Pos)
	}
}
