// Package lexer tokenizes assay-language source text. Keywords are
// case-insensitive (the paper's listings mix `fluid` with `MIX`); `--`
// begins a comment running to end of line.
package lexer

import (
	"fmt"
	"strings"
	"unicode"

	"aquavol/internal/lang/token"
)

// Lexer scans assay source text into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens ending with EOF.
// Illegal characters yield ILLEGAL tokens rather than errors so the parser
// can report them with position context.
func Tokenize(src string) []token.Token {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) here() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return token.Token{Kind: token.EOF, Pos: l.here()}

scan:
	pos := l.here()
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for l.pos < len(l.src) {
			r := l.peek()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			b.WriteRune(l.advance())
		}
		text := b.String()
		if k, ok := token.Keywords[strings.ToUpper(text)]; ok {
			return token.Token{Kind: k, Text: text, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Text: text, Pos: pos}
	case unicode.IsDigit(r):
		var b strings.Builder
		seenDot := false
		for l.pos < len(l.src) {
			r := l.peek()
			if r == '.' && !seenDot && unicode.IsDigit(l.peek2()) {
				seenDot = true
				b.WriteRune(l.advance())
				continue
			}
			if !unicode.IsDigit(r) {
				break
			}
			b.WriteRune(l.advance())
		}
		return token.Token{Kind: token.NUMBER, Text: b.String(), Pos: pos}
	}
	l.advance()
	two := func(next rune, with, without token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: with, Pos: pos}
		}
		return token.Token{Kind: without, Pos: pos}
	}
	switch r {
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '<':
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case '!':
		return two('=', token.NE, token.ILLEGAL)
	}
	return token.Token{Kind: token.ILLEGAL, Text: fmt.Sprintf("%c", r), Pos: pos}
}
