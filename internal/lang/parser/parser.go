// Package parser turns assay-language source into an AST by recursive
// descent. Errors carry source positions; after an error the parser
// resynchronizes at the next statement boundary so multiple diagnostics
// can be reported from one run.
package parser

import (
	"errors"
	"strconv"

	"aquavol/internal/diag"
	"aquavol/internal/lang/ast"
	"aquavol/internal/lang/lexer"
	"aquavol/internal/lang/token"
)

// Error is one syntax diagnostic, shared with the rest of the compiler via
// internal/diag.
type Error = diag.Diagnostic

// ErrorList collects diagnostics.
type ErrorList = diag.List

// Parse parses an assay program. On failure it returns the accumulated
// ErrorList (and whatever partial AST exists).
func Parse(src string) (*ast.Program, error) {
	p := &parser{toks: lexer.Tokenize(src)}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

// bailout aborts the current statement for resynchronization.
var bailout = errors.New("parser: resync")

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	panic(bailout)
}

func (p *parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, diag.Errorf(p.cur().Pos, format, args...))
}

// sync skips to just past the next semicolon (or to a block keyword).
func (p *parser) sync() {
	for {
		switch p.cur().Kind {
		case token.EOF, token.END, token.ENDFOR, token.ENDIF, token.ENDWHILE, token.ELSE:
			return
		case token.SEMI:
			p.next()
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{Pos: p.cur().Pos}
	defer func() {
		if r := recover(); r != nil && r != bailout { //nolint:errorlint
			panic(r)
		}
	}()
	p.expect(token.ASSAY)
	prog.Name = p.expect(token.IDENT).Text
	p.expect(token.START)
	for p.at(token.FLUID) || p.at(token.VAR) || p.at(token.NOEXCESS) {
		if d := p.parseDecl(); d != nil {
			prog.Decls = append(prog.Decls, d)
		}
	}
	prog.Body = p.parseStmts(token.END)
	p.expect(token.END)
	if !p.at(token.EOF) {
		p.errorf("unexpected %s after END", p.cur())
	}
	return prog
}

func (p *parser) parseDecl() *ast.Decl {
	defer p.recoverStmt()
	d := &ast.Decl{Pos: p.cur().Pos}
	if p.accept(token.NOEXCESS) {
		d.NoExcess = true
	}
	switch {
	case p.accept(token.FLUID):
		d.Kind = ast.FluidDecl
	case p.accept(token.VAR):
		if d.NoExcess {
			p.errorf("NOEXCESS applies only to fluid declarations")
		}
		d.Kind = ast.VarDecl
	default:
		p.errorf("expected fluid or VAR, found %s", p.cur())
		panic(bailout)
	}
	for {
		name := p.expect(token.IDENT)
		dn := ast.DeclName{Name: name.Text, Pos: name.Pos}
		for p.accept(token.LBRACKET) {
			n := p.expect(token.NUMBER)
			dim, err := strconv.Atoi(n.Text)
			if err != nil || dim < 1 {
				p.errorf("array dimension must be a positive integer, got %q", n.Text)
				dim = 1
			}
			dn.Dims = append(dn.Dims, dim)
			p.expect(token.RBRACKET)
		}
		d.Names = append(d.Names, dn)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	return d
}

// recoverStmt converts a bailout panic into statement-level resync.
func (p *parser) recoverStmt() {
	if r := recover(); r != nil {
		if r != bailout { //nolint:errorlint
			panic(r)
		}
		p.sync()
	}
}

func (p *parser) parseStmts(terminators ...token.Kind) []ast.Stmt {
	var out []ast.Stmt
	isTerm := func() bool {
		k := p.cur().Kind
		if k == token.EOF {
			return true
		}
		for _, t := range terminators {
			if k == t {
				return true
			}
		}
		return false
	}
	for !isTerm() {
		before := p.pos
		if s := p.parseStmt(); s != nil {
			out = append(out, s)
		}
		if p.pos == before {
			// A failed statement that also resynchronized without
			// consuming anything (e.g. a stray ENDWHILE) would loop
			// forever; force progress.
			p.next()
		}
	}
	return out
}

func (p *parser) parseStmt() (s ast.Stmt) {
	defer p.recoverStmt()
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.SEMI:
		p.next()
		return nil
	case token.MIX, token.INCUBATE, token.CONCENTRATE,
		token.SEPARATE, token.LCSEPARATE, token.CESEPARATE, token.SIZESEPARATE:
		op := p.parseFluidOp()
		p.stmtEnd()
		return &ast.AssignStmt{Op: op, Pos: pos}
	case token.SENSE:
		return p.parseSense()
	case token.OUTPUT:
		p.next()
		arg := p.parseFluidRef()
		p.stmtEnd()
		return &ast.OutputStmt{Arg: arg, Pos: pos}
	case token.FOR:
		return p.parseFor()
	case token.WHILE:
		return p.parseWhile()
	case token.IF:
		return p.parseIf()
	case token.IDENT:
		lhs := p.parseLValue()
		p.expect(token.ASSIGN)
		switch p.cur().Kind {
		case token.MIX, token.INCUBATE, token.CONCENTRATE,
			token.SEPARATE, token.LCSEPARATE, token.CESEPARATE, token.SIZESEPARATE:
			op := p.parseFluidOp()
			p.stmtEnd()
			return &ast.AssignStmt{LHS: lhs, Op: op, Pos: pos}
		default:
			e := p.parseExpr()
			p.stmtEnd()
			return &ast.AssignStmt{LHS: lhs, Expr: e, Pos: pos}
		}
	default:
		p.errorf("unexpected %s at statement start", p.cur())
		panic(bailout)
	}
}

// stmtEnd consumes a semicolon; the final statement before a block
// terminator may omit it (as the paper's listings do).
func (p *parser) stmtEnd() {
	if p.accept(token.SEMI) {
		return
	}
	switch p.cur().Kind {
	case token.END, token.ENDFOR, token.ENDIF, token.ENDWHILE, token.ELSE, token.EOF:
		return
	}
	p.errorf("expected ; found %s", p.cur())
	panic(bailout)
}

func (p *parser) parseFluidOp() ast.FluidOp {
	pos := p.cur().Pos
	switch k := p.next().Kind; k {
	case token.MIX:
		op := &ast.MixOp{Pos: pos}
		op.Args = append(op.Args, p.parseFluidRef())
		for p.accept(token.AND) {
			op.Args = append(op.Args, p.parseFluidRef())
		}
		if p.accept(token.IN) {
			p.expect(token.RATIOS)
			op.Ratios = append(op.Ratios, p.parseExpr())
			for p.accept(token.COLON) {
				op.Ratios = append(op.Ratios, p.parseExpr())
			}
			if len(op.Ratios) != len(op.Args) {
				p.errorf("mix has %d fluids but %d ratios", len(op.Args), len(op.Ratios))
			}
		}
		p.expect(token.FOR)
		op.Time = p.parseExpr()
		return op
	case token.INCUBATE:
		op := &ast.IncubateOp{Pos: pos}
		op.Arg = p.parseFluidRef()
		p.expect(token.AT)
		op.Temp = p.parseExpr()
		p.expect(token.FOR)
		op.Time = p.parseExpr()
		return op
	case token.CONCENTRATE:
		op := &ast.ConcentrateOp{Pos: pos}
		op.Arg = p.parseFluidRef()
		p.expect(token.AT)
		op.Temp = p.parseExpr()
		p.expect(token.FOR)
		op.Time = p.parseExpr()
		return op
	case token.SEPARATE, token.LCSEPARATE, token.CESEPARATE, token.SIZESEPARATE:
		op := &ast.SeparateOp{Pos: pos}
		switch k {
		case token.SEPARATE:
			op.Kind = ast.SepAffinity
		case token.LCSEPARATE:
			op.Kind = ast.SepLC
		case token.CESEPARATE:
			op.Kind = ast.SepCE
		case token.SIZESEPARATE:
			op.Kind = ast.SepSize
		}
		op.Arg = p.parseFluidRef()
		if p.accept(token.MATRIX) {
			op.Matrix = p.parseLValue()
		}
		if p.accept(token.USING) {
			op.Using = p.parseLValue()
		}
		p.expect(token.FOR)
		op.Time = p.parseExpr()
		p.expect(token.INTO)
		op.Eff = p.parseLValue()
		p.expect(token.AND)
		op.Waste = p.parseLValue()
		if p.accept(token.YIELD) {
			op.Yield = p.parseExpr()
		}
		return op
	default:
		p.errorf("expected fluid operation")
		panic(bailout)
	}
}

func (p *parser) parseSense() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.SENSE)
	s := &ast.SenseStmt{Pos: pos}
	switch {
	case p.accept(token.OPTICAL):
		s.Mode = ast.SenseOptical
	case p.accept(token.FLUORESCENCE):
		s.Mode = ast.SenseFluorescence
	default:
		p.errorf("expected OPTICAL or FLUORESCENCE, found %s", p.cur())
		panic(bailout)
	}
	s.Arg = p.parseFluidRef()
	p.expect(token.INTO)
	s.Into = p.parseLValue()
	p.stmtEnd()
	return s
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.FOR)
	name := p.expect(token.IDENT).Text
	p.expect(token.FROM)
	from := p.parseExpr()
	p.expect(token.TO)
	to := p.parseExpr()
	p.expect(token.START)
	body := p.parseStmts(token.ENDFOR)
	p.expect(token.ENDFOR)
	return &ast.ForStmt{Var: name, From: from, To: to, Body: body, Pos: pos}
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.WHILE)
	cond := p.parseCond()
	p.expect(token.MAXITER)
	max := p.parseExpr()
	p.expect(token.START)
	body := p.parseStmts(token.ENDWHILE)
	p.expect(token.ENDWHILE)
	return &ast.WhileStmt{Cond: cond, MaxIter: max, Body: body, Pos: pos}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.IF)
	cond := p.parseCond()
	p.expect(token.START)
	then := p.parseStmts(token.ELSE, token.ENDIF)
	var els []ast.Stmt
	if p.accept(token.ELSE) {
		els = p.parseStmts(token.ENDIF)
	}
	p.expect(token.ENDIF)
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}
}

func (p *parser) parseFluidRef() *ast.FluidRef {
	pos := p.cur().Pos
	if p.accept(token.IT) {
		return &ast.FluidRef{It: true, Pos: pos}
	}
	return &ast.FluidRef{Ref: p.parseLValue(), Pos: pos}
}

func (p *parser) parseLValue() *ast.LValue {
	name := p.expect(token.IDENT)
	lv := &ast.LValue{Name: name.Text, Pos: name.Pos}
	for p.accept(token.LBRACKET) {
		lv.Indices = append(lv.Indices, p.parseExpr())
		p.expect(token.RBRACKET)
	}
	return lv
}

// parseCond parses a comparison between dry expressions.
func (p *parser) parseCond() ast.Expr {
	pos := p.cur().Pos
	l := p.parseExpr()
	switch k := p.cur().Kind; k {
	case token.LT, token.GT, token.LE, token.GE, token.EQ, token.NE:
		p.next()
		r := p.parseExpr()
		return &ast.BinaryExpr{Op: k, L: l, R: r, Pos: pos}
	default:
		p.errorf("expected comparison operator, found %s", p.cur())
		panic(bailout)
	}
}

// parseExpr parses + and - over terms.
func (p *parser) parseExpr() ast.Expr {
	e := p.parseTerm()
	for {
		k := p.cur().Kind
		if k != token.PLUS && k != token.MINUS {
			return e
		}
		pos := p.next().Pos
		r := p.parseTerm()
		e = &ast.BinaryExpr{Op: k, L: e, R: r, Pos: pos}
	}
}

func (p *parser) parseTerm() ast.Expr {
	e := p.parseFactor()
	for {
		k := p.cur().Kind
		if k != token.STAR && k != token.SLASH && k != token.PERCENT {
			return e
		}
		pos := p.next().Pos
		r := p.parseFactor()
		e = &ast.BinaryExpr{Op: k, L: e, R: r, Pos: pos}
	}
}

func (p *parser) parseFactor() ast.Expr {
	switch p.cur().Kind {
	case token.NUMBER:
		t := p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf("bad number %q", t.Text)
		}
		return &ast.NumberLit{Value: v, Pos: t.Pos}
	case token.MINUS:
		pos := p.next().Pos
		return &ast.UnaryExpr{Op: token.MINUS, X: p.parseFactor(), Pos: pos}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.IDENT:
		return p.parseLValue()
	default:
		p.errorf("expected expression, found %s", p.cur())
		panic(bailout)
	}
}
