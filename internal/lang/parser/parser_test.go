package parser

import (
	"strings"
	"testing"

	"aquavol/internal/lang/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseMinimal(t *testing.T) {
	p := parseOK(t, `ASSAY tiny START
fluid a, b;
MIX a AND b FOR 10;
END`)
	if p.Name != "tiny" || len(p.Decls) != 1 || len(p.Body) != 1 {
		t.Fatalf("unexpected program shape: %+v", p)
	}
	as, ok := p.Body[0].(*ast.AssignStmt)
	if !ok || as.LHS != nil {
		t.Fatalf("want bare fluid op, got %T", p.Body[0])
	}
	mix, ok := as.Op.(*ast.MixOp)
	if !ok || len(mix.Args) != 2 || mix.Ratios != nil {
		t.Fatalf("mix shape wrong: %+v", as.Op)
	}
}

func TestParseMixRatios(t *testing.T) {
	p := parseOK(t, `ASSAY r START
fluid x, y, z, w;
w = MIX x AND y AND z IN RATIOS 1:100:1 FOR 30;
END`)
	mix := p.Body[0].(*ast.AssignStmt).Op.(*ast.MixOp)
	if len(mix.Args) != 3 || len(mix.Ratios) != 3 {
		t.Fatalf("want 3 args and ratios, got %d/%d", len(mix.Args), len(mix.Ratios))
	}
}

func TestParseSeparate(t *testing.T) {
	p := parseOK(t, `ASSAY s START
fluid a, m, u, e, w;
SEPARATE a MATRIX m USING u FOR 30 INTO e AND w;
LCSEPARATE a FOR 2400 INTO e AND w YIELD 40;
END`)
	s1 := p.Body[0].(*ast.AssignStmt).Op.(*ast.SeparateOp)
	if s1.Kind != ast.SepAffinity || s1.Matrix == nil || s1.Using == nil || s1.Yield != nil {
		t.Fatalf("separate 1 wrong: %+v", s1)
	}
	s2 := p.Body[1].(*ast.AssignStmt).Op.(*ast.SeparateOp)
	if s2.Kind != ast.SepLC || s2.Matrix != nil || s2.Yield == nil {
		t.Fatalf("separate 2 wrong: %+v", s2)
	}
}

func TestParseControlFlow(t *testing.T) {
	p := parseOK(t, `ASSAY cf START
fluid a, b; VAR i, x;
FOR i FROM 1 TO 4 START
  MIX a AND b FOR 10;
ENDFOR
IF x < 3 START
  MIX a AND b FOR 10;
ELSE
  MIX b AND a FOR 20;
ENDIF
WHILE x > 0 MAXITER 5 START
  x = x - 1;
ENDWHILE
END`)
	if _, ok := p.Body[0].(*ast.ForStmt); !ok {
		t.Fatalf("want ForStmt, got %T", p.Body[0])
	}
	ifs, ok := p.Body[1].(*ast.IfStmt)
	if !ok || len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatalf("if shape wrong: %T %+v", p.Body[1], ifs)
	}
	ws, ok := p.Body[2].(*ast.WhileStmt)
	if !ok || ws.MaxIter == nil {
		t.Fatalf("while shape wrong: %T", p.Body[2])
	}
}

func TestParseArraysAndExprs(t *testing.T) {
	p := parseOK(t, `ASSAY arr START
fluid F[4]; VAR R[4][4], i, t;
t = (t + 1) * 10 - 3 / 2;
F[i] = MIX F[i] AND F[i+1] IN RATIOS 1:t FOR 10;
SENSE OPTICAL it INTO R[i][i];
END`)
	if len(p.Body) != 3 {
		t.Fatalf("want 3 statements, got %d", len(p.Body))
	}
	sense := p.Body[2].(*ast.SenseStmt)
	if len(sense.Into.Indices) != 2 {
		t.Fatalf("sense INTO indices = %d, want 2", len(sense.Into.Indices))
	}
}

func TestParseOptionalTrailingSemicolon(t *testing.T) {
	// The paper's Fig. 10 listing omits the final semicolon before END.
	parseOK(t, `ASSAY g START
fluid a, b;
MIX a AND b FOR 30
END`)
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse(`ASSAY bad START
fluid a;
MIX a FOR;
END`)
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Fatalf("error should carry line 3 position: %v", err)
	}
}

func TestParseMultipleErrors(t *testing.T) {
	_, err := Parse(`ASSAY bad START
fluid a;
MIX a FOR;
MIX FOR 10;
END`)
	if err == nil {
		t.Fatal("expected parse errors")
	}
	el, ok := err.(ErrorList)
	if !ok || len(el) < 2 {
		t.Fatalf("want ≥2 collected errors, got %v", err)
	}
}

func TestParseRatioArityMismatch(t *testing.T) {
	_, err := Parse(`ASSAY bad START
fluid a, b;
MIX a AND b IN RATIOS 1:2:3 FOR 10;
END`)
	if err == nil || !strings.Contains(err.Error(), "ratios") {
		t.Fatalf("want ratio-arity error, got %v", err)
	}
}

// Regression: a stray block terminator must not hang the parser (sync()
// stops at block keywords without consuming; parseStmts must force
// progress).
func TestParseStrayBlockEndTerminates(t *testing.T) {
	for _, src := range []string{
		"ASSAY x START\nfluid a, b;\nENDWHILE\nMIX a AND b FOR 1;\nEND",
		"ASSAY x START\nfluid a;\nELSE ELSE ENDIF ENDFOR\nEND",
		"ASSAY x START\nfluid a, b;\nWHILE (x > 0) MAXITER 2 START MIX a AND b FOR 1; ENDWHILE\nEND",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should report errors", src)
		}
	}
}

func TestParseNoExcessDecl(t *testing.T) {
	p := parseOK(t, `ASSAY ne START
NOEXCESS fluid precious;
fluid other;
MIX precious AND other FOR 5;
END`)
	if !p.Decls[0].NoExcess || p.Decls[1].NoExcess {
		t.Fatal("NOEXCESS flag not parsed correctly")
	}
}
