package parser

import (
	"testing"

	"aquavol/internal/lang/ast"
)

// Format∘Parse is idempotent: formatting, re-parsing, and re-formatting
// yields identical text. Exercised on all three paper assays plus the
// control-flow extensions.
func TestFormatRoundTrip(t *testing.T) {
	sources := []string{
		`ASSAY glucose START
fluid Glucose, Reagent;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1:1 FOR 10;
SENSE OPTICAL it INTO Result[1];
END`,
		`ASSAY g START
fluid a, m, u, e, w;
SEPARATE a MATRIX m USING u FOR 30 INTO e AND w;
LCSEPARATE a FOR 2400 INTO e AND w YIELD 40;
END`,
		`ASSAY cf START
fluid a, b; VAR i, x;
FOR i FROM 1 TO 4 START
  MIX a AND b FOR 10;
ENDFOR
IF x < 3 START
  MIX a AND b FOR 10;
ELSE
  MIX b AND a FOR 20;
ENDIF
WHILE x > 0 MAXITER 5 START
  x = x - 1;
ENDWHILE
OUTPUT a;
END`,
		`ASSAY ne START
NOEXCESS fluid precious;
fluid other;
CONCENTRATE precious AT 60 FOR 100;
MIX it AND other IN RATIOS 2:3 FOR 5;
END`,
	}
	for _, src := range sources {
		// The declarations in the test sources sometimes share a line;
		// the formatter normalizes them, so compare format(parse(format))
		// against format(parse(src)).
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		f1 := ast.Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("re-parse of formatted source failed: %v\n%s", err, f1)
		}
		f2 := ast.Format(p2)
		if f1 != f2 {
			t.Fatalf("format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", f1, f2)
		}
	}
}

// FuzzParse: the parser must never panic, whatever the input.
func FuzzParse(f *testing.F) {
	f.Add("ASSAY x START fluid a, b; MIX a AND b FOR 1; END")
	f.Add("ASSAY x START fluid a; SEPARATE a FOR 1 INTO b AND c; END")
	f.Add("ASSAY ; := [[ 1..2 ENDFOR END END")
	f.Add("")
	f.Add("ASSAY x START VAR v[3]; v[1] = 1 + 2 * (3 - 4); END")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog != nil {
			// Formatting a valid parse must also not panic, and must
			// re-parse.
			text := ast.Format(prog)
			if _, err := Parse(text); err != nil {
				t.Skipf("formatted source did not re-parse (acceptable for exotic idents): %v", err)
			}
		}
	})
}
