// Package token defines the lexical tokens of the assay language — the
// "simple high-level language" of §4.1, whose syntax mirrors conventional
// assay-specification format (Figs. 9-11 of the paper), extended with the
// control-flow and hint constructs of §3.5.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

const (
	// Special.
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // buffer1a, Diluted_Inhibitor
	NUMBER // 10, 2.5

	// Punctuation and operators.
	SEMI     // ;
	COLON    // :
	COMMA    // ,
	ASSIGN   // =
	LBRACKET // [
	RBRACKET // ]
	LPAREN   // (
	RPAREN   // )
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQ       // ==
	NE       // !=

	// Keywords (case-insensitive in source).
	ASSAY
	START
	END
	FLUID
	VAR
	MIX
	AND
	IN
	RATIOS
	FOR
	INCUBATE
	AT
	SENSE
	OPTICAL
	FLUORESCENCE
	INTO
	SEPARATE
	LCSEPARATE
	CESEPARATE
	SIZESEPARATE
	MATRIX
	USING
	CONCENTRATE
	FROM
	TO
	ENDFOR
	IF
	ELSE
	ENDIF
	WHILE
	ENDWHILE
	MAXITER
	YIELD
	NOEXCESS
	OUTPUT
	IT
)

var names = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", IDENT: "identifier", NUMBER: "number",
	SEMI: ";", COLON: ":", COMMA: ",", ASSIGN: "=",
	LBRACKET: "[", RBRACKET: "]", LPAREN: "(", RPAREN: ")",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	LT: "<", GT: ">", LE: "<=", GE: ">=", EQ: "==", NE: "!=",
	ASSAY: "ASSAY", START: "START", END: "END", FLUID: "fluid", VAR: "VAR",
	MIX: "MIX", AND: "AND", IN: "IN", RATIOS: "RATIOS", FOR: "FOR",
	INCUBATE: "INCUBATE", AT: "AT", SENSE: "SENSE", OPTICAL: "OPTICAL",
	FLUORESCENCE: "FLUORESCENCE", INTO: "INTO", SEPARATE: "SEPARATE",
	LCSEPARATE: "LCSEPARATE", CESEPARATE: "CESEPARATE", SIZESEPARATE: "SIZESEPARATE",
	MATRIX: "MATRIX", USING: "USING", CONCENTRATE: "CONCENTRATE",
	FROM: "FROM", TO: "TO", ENDFOR: "ENDFOR",
	IF: "IF", ELSE: "ELSE", ENDIF: "ENDIF",
	WHILE: "WHILE", ENDWHILE: "ENDWHILE", MAXITER: "MAXITER",
	YIELD: "YIELD", NOEXCESS: "NOEXCESS", OUTPUT: "OUTPUT", IT: "it",
}

func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps upper-cased spellings to keyword kinds.
var Keywords = map[string]Kind{
	"ASSAY": ASSAY, "START": START, "END": END, "FLUID": FLUID, "VAR": VAR,
	"MIX": MIX, "AND": AND, "IN": IN, "RATIOS": RATIOS, "FOR": FOR,
	"INCUBATE": INCUBATE, "AT": AT, "SENSE": SENSE, "OPTICAL": OPTICAL,
	"FLUORESCENCE": FLUORESCENCE, "INTO": INTO, "SEPARATE": SEPARATE,
	"LCSEPARATE": LCSEPARATE, "CESEPARATE": CESEPARATE, "SIZESEPARATE": SIZESEPARATE,
	"MATRIX": MATRIX, "USING": USING, "CONCENTRATE": CONCENTRATE,
	"FROM": FROM, "TO": TO, "ENDFOR": ENDFOR,
	"IF": IF, "ELSE": ELSE, "ENDIF": ENDIF,
	"WHILE": WHILE, "ENDWHILE": ENDWHILE, "MAXITER": MAXITER,
	"YIELD": YIELD, "NOEXCESS": NOEXCESS, "OUTPUT": OUTPUT, "IT": IT,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position is set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	// Text is the literal source text for IDENT and NUMBER tokens.
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
