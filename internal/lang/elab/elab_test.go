package elab_test

import (
	"math"
	"strings"
	"testing"

	"aquavol/internal/dag"
	"aquavol/internal/lang"
	"aquavol/internal/lang/elab"
)

func compile(t *testing.T, src string) *elab.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func wantCompileErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := lang.Compile(src)
	if err == nil {
		t.Fatalf("expected error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestElabSimpleMix(t *testing.T) {
	p := compile(t, `ASSAY m START
fluid a, b, c;
VAR r;
c = MIX a AND b IN RATIOS 1:4 FOR 10;
SENSE OPTICAL c INTO r;
END`)
	_ = p
	if len(p.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(p.Ops))
	}
	mix := p.Ops[0]
	if mix.Kind != elab.OpMix || mix.TimeSec != 10 {
		t.Fatalf("mix op wrong: %+v", mix)
	}
	if math.Abs(mix.Ratios[0]-0.2) > 1e-9 || math.Abs(mix.Ratios[1]-0.8) > 1e-9 {
		t.Fatalf("fractions = %v, want [0.2 0.8]", mix.Ratios)
	}
	if len(p.Inputs) != 2 {
		t.Fatalf("inputs = %v, want a and b", p.Inputs)
	}
	if p.Graph.NumNodes() != 4 || p.Graph.NumEdges() != 3 {
		t.Fatalf("graph = %d nodes %d edges, want 4/3", p.Graph.NumNodes(), p.Graph.NumEdges())
	}
}

// Sense INTO an undeclared scalar: sema auto-declares loop vars only, so
// this must fail.
func TestElabSenseUndeclared(t *testing.T) {
	wantCompileErr(t, `ASSAY m START
fluid a, b;
MIX a AND b FOR 10;
SENSE OPTICAL it INTO nothere;
END`, "undeclared")
}

func TestElabItChaining(t *testing.T) {
	p := compile(t, `ASSAY chain START
fluid a, b, c;
MIX a AND b FOR 10;
MIX it AND c FOR 5;
INCUBATE it AT 37 FOR 30;
END`)
	if len(p.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(p.Ops))
	}
	// Second mix consumes the first mix's node.
	if p.Ops[1].Args[0] != p.Ops[0].Node {
		t.Fatal("`it` did not chain to previous op")
	}
	if p.Ops[2].Kind != elab.OpIncubate || p.Ops[2].TempC != 37 {
		t.Fatalf("incubate wrong: %+v", p.Ops[2])
	}
}

func TestElabItBeforeAnyOp(t *testing.T) {
	wantCompileErr(t, `ASSAY bad START
fluid a;
MIX it AND a FOR 10;
END`, "`it` used before")
}

func TestElabLoopUnrollingWithDryArithmetic(t *testing.T) {
	// The enzyme idiom: ratios computed by dry code across iterations.
	p := compile(t, `ASSAY dil START
fluid reagent, diluent, D[3];
VAR i, temp, d;
d = 1;
temp = 1;
FOR i FROM 1 TO 3 START
  D[i] = MIX reagent AND diluent IN RATIOS 1:d FOR 30;
  temp = temp * 10;
  d = temp - 1;
ENDFOR
END`)
	if len(p.Ops) != 3 {
		t.Fatalf("ops = %d, want 3 (unrolled)", len(p.Ops))
	}
	wantMinor := []float64{1.0 / 2, 1.0 / 10, 1.0 / 100}
	for i, op := range p.Ops {
		if math.Abs(op.Ratios[0]-wantMinor[i]) > 1e-9 {
			t.Fatalf("iteration %d minor fraction = %v, want %v", i, op.Ratios[0], wantMinor[i])
		}
	}
}

func TestElabNestedLoops(t *testing.T) {
	p := compile(t, `ASSAY nest START
fluid F[2], G[2];
VAR i, j, R[2][2];
FOR i FROM 1 TO 2 START
  FOR j FROM 1 TO 2 START
    MIX F[i] AND G[j] FOR 10;
    SENSE OPTICAL it INTO R[i][j];
  ENDFOR
ENDFOR
END`)
	mixes := 0
	senses := 0
	for _, op := range p.Ops {
		switch op.Kind {
		case elab.OpMix:
			mixes++
		case elab.OpSense:
			senses++
		}
	}
	if mixes != 4 || senses != 4 {
		t.Fatalf("mixes=%d senses=%d, want 4/4", mixes, senses)
	}
	// Four distinct result slots.
	slots := map[int]bool{}
	for _, op := range p.Ops {
		if op.Kind == elab.OpSense {
			slots[op.ResultSlot] = true
		}
	}
	if len(slots) != 4 {
		t.Fatalf("distinct sense slots = %d, want 4", len(slots))
	}
}

func TestElabStaticIfFolds(t *testing.T) {
	p := compile(t, `ASSAY sif START
fluid a, b;
VAR x;
x = 2;
IF x < 3 START
  MIX a AND b FOR 10;
ELSE
  MIX a AND b FOR 99;
ENDIF
END`)
	if len(p.Ops) != 1 || p.Ops[0].TimeSec != 10 {
		t.Fatalf("static if should fold to then-branch: %+v", p.Ops)
	}
	if len(p.Ops[0].Guards) != 0 {
		t.Fatal("folded branch must be unguarded")
	}
}

func TestElabRuntimeIfBothBranchesPlanned(t *testing.T) {
	p := compile(t, `ASSAY rif START
fluid a, b;
VAR x;
MIX a AND b FOR 1;
SENSE OPTICAL it INTO x;
IF x < 3 START
  MIX a AND b FOR 10;
ELSE
  MIX a AND b FOR 99;
ENDIF
END`)
	var guarded []elab.Op
	for _, op := range p.Ops {
		if len(op.Guards) > 0 {
			guarded = append(guarded, op)
		}
	}
	if len(guarded) != 2 {
		t.Fatalf("guarded ops = %d, want 2 (both branches)", len(guarded))
	}
	if !guarded[1].Guards[0].Negate {
		t.Fatal("else branch must carry a negated guard")
	}
	// Both branches appear in the DAG (conservative planning, §3.5).
	mixNodes := 0
	for _, n := range p.Graph.Nodes() {
		if n.Kind == dag.Mix {
			mixNodes++
		}
	}
	if mixNodes != 3 {
		t.Fatalf("DAG mix nodes = %d, want 3 (setup + both branches)", mixNodes)
	}
	// Guard evaluation: x = 2 → then-branch runs, else doesn't.
	env := elab.NewDryEnv(len(p.Slots))
	for slot, v := range p.Init {
		env.Set(slot, v)
	}
	env.Set(p.SlotIndex["x"], 2)
	run0, err := guarded[0].Runs(env)
	if err != nil || !run0 {
		t.Fatalf("then-branch should run: %v %v", run0, err)
	}
	run1, err := guarded[1].Runs(env)
	if err != nil || run1 {
		t.Fatalf("else-branch should not run: %v %v", run1, err)
	}
}

func TestElabFluidPoisonedAfterRuntimeIf(t *testing.T) {
	wantCompileErr(t, `ASSAY poison START
fluid a, b, c;
VAR x;
MIX a AND b FOR 1;
SENSE OPTICAL it INTO x;
IF x < 3 START
  c = MIX a AND b FOR 10;
ENDIF
MIX c AND a FOR 5;
END`, "run-time condition")
}

func TestElabWhileStaticallyBounded(t *testing.T) {
	p := compile(t, `ASSAY w START
fluid a, b;
VAR n;
n = 3;
WHILE n > 0 MAXITER 10 START
  MIX a AND b FOR 10;
  n = n - 1;
ENDWHILE
END`)
	if len(p.Ops) != 3 {
		t.Fatalf("static while should run exactly 3 iterations, got %d ops", len(p.Ops))
	}
}

func TestElabWhileRuntimeGuarded(t *testing.T) {
	p := compile(t, `ASSAY w START
fluid a, b;
VAR n;
MIX a AND b FOR 1;
SENSE OPTICAL it INTO n;
WHILE n > 0 MAXITER 3 START
  MIX a AND b FOR 10;
ENDWHILE
END`)
	guarded := 0
	dryOps := 0
	for _, op := range p.Ops {
		if op.Kind == elab.OpDry {
			dryOps++
		}
		if op.Kind == elab.OpMix && len(op.Guards) > 0 {
			guarded++
		}
	}
	if guarded != 3 {
		t.Fatalf("guarded mixes = %d, want 3 (MAXITER)", guarded)
	}
	if dryOps != 3 {
		t.Fatalf("latch dry ops = %d, want 3", dryOps)
	}
}

func TestElabSeparateBindsPorts(t *testing.T) {
	p := compile(t, `ASSAY sep START
fluid a, m, u, e, w, out;
SEPARATE a MATRIX m USING u FOR 30 INTO e AND w;
out = MIX e AND a FOR 10;
END`)
	sepOp := p.Ops[0]
	if sepOp.Kind != elab.OpSeparate || sepOp.Matrix != "m" || sepOp.Pusher != "u" {
		t.Fatalf("separate op wrong: %+v", sepOp)
	}
	sepNode := p.Graph.Node(sepOp.Node)
	if !sepNode.Unknown {
		t.Fatal("separate without YIELD must be unknown-volume")
	}
	// The mix consumes the effluent port.
	mixOp := p.Ops[1]
	if mixOp.ArgPorts[0] != dag.PortEffluent {
		t.Fatalf("mix should draw from effluent port, got %q", mixOp.ArgPorts[0])
	}
	// Matrix/pusher are auxiliary, not DAG inputs.
	if _, ok := p.Inputs["m"]; ok {
		t.Fatal("matrix fluid must not be a volume-managed input")
	}
	if len(p.AuxInputs) != 2 {
		t.Fatalf("aux inputs = %v, want [m u]", p.AuxInputs)
	}
}

func TestElabSeparateYieldHint(t *testing.T) {
	p := compile(t, `ASSAY sep START
fluid a, e, w, out;
LCSEPARATE a FOR 30 INTO e AND w YIELD 40;
out = MIX e AND a FOR 10;
END`)
	sepNode := p.Graph.Node(p.Ops[0].Node)
	if sepNode.Unknown {
		t.Fatal("YIELD hint should make the separation statically known")
	}
	if math.Abs(sepNode.OutFrac-0.4) > 1e-9 {
		t.Fatalf("OutFrac = %v, want 0.4", sepNode.OutFrac)
	}
}

func TestElabConcentrateUnknown(t *testing.T) {
	p := compile(t, `ASSAY c START
fluid a, out;
CONCENTRATE a AT 60 FOR 100;
out = MIX it AND a FOR 10;
END`)
	if !p.Graph.Node(p.Ops[0].Node).Unknown {
		t.Fatal("concentrate without hint must be unknown-volume")
	}
}

func TestElabIndexOutOfRange(t *testing.T) {
	wantCompileErr(t, `ASSAY oob START
fluid F[3], a;
MIX F[4] AND a FOR 10;
END`, "out of range")
}

func TestElabRatioMustBeKnown(t *testing.T) {
	wantCompileErr(t, `ASSAY rk START
fluid a, b;
VAR x;
MIX a AND b FOR 1;
SENSE OPTICAL it INTO x;
MIX a AND b IN RATIOS 1:x FOR 10;
END`, "compile-time known")
}

func TestElabLoopBoundsMustBeIntegers(t *testing.T) {
	wantCompileErr(t, `ASSAY lb START
fluid a, b;
FOR i FROM 1 TO 2.5 START
  MIX a AND b FOR 10;
ENDFOR
END`, "integers")
}

func TestElabOutputStmt(t *testing.T) {
	p := compile(t, `ASSAY o START
fluid a, b;
MIX a AND b FOR 10;
OUTPUT it;
END`)
	last := p.Ops[len(p.Ops)-1]
	if last.Kind != elab.OpOutput {
		t.Fatalf("last op = %v, want output", last.Kind)
	}
	if p.Graph.Node(last.Node).Kind != dag.Output {
		t.Fatal("output node kind wrong")
	}
}

func TestElabNoExcessPropagates(t *testing.T) {
	p := compile(t, `ASSAY ne START
NOEXCESS fluid precious;
fluid other;
MIX precious AND other FOR 5;
END`)
	n := p.Graph.Node(p.Inputs["precious"])
	if !n.NoExcess {
		t.Fatal("NoExcess not propagated to input node")
	}
}

func TestElabDryDivisionByZero(t *testing.T) {
	wantCompileErr(t, `ASSAY dz START
fluid a, b;
VAR x, y;
x = 0;
y = 1 / x;
MIX a AND b IN RATIOS 1:y FOR 10;
END`, "compile-time known")
}
