package elab

import (
	"fmt"
	"strings"

	"aquavol/internal/dag"
	"aquavol/internal/diag"
	"aquavol/internal/lang/ast"
	"aquavol/internal/lang/sema"
	"aquavol/internal/lang/token"
)

// FluidDecl records one declared fluid symbol, for analyses that need to
// relate DAG-level facts back to source declarations (unused-input lint).
type FluidDecl struct {
	Name string
	Pos  token.Pos
	// NoExcess marks fluids for which excess production is forbidden.
	NoExcess bool
}

// Program is a fully elaborated assay.
type Program struct {
	Name string
	// Graph is the volume-management DAG (both branches of run-time
	// conditionals included, loops unrolled).
	Graph *dag.Graph
	// Ops is the straight-line (guarded) operation list in program order.
	Ops []Op
	// Slots names every dry slot; SlotIndex inverts it.
	Slots     []string
	SlotIndex map[string]int
	// Init holds compile-time-known initial dry values, applied to the
	// runtime environment before execution.
	Init map[int]float64
	// Inputs maps assay input fluid names (fluids read before any
	// assignment) to their Input node ids.
	Inputs map[string]int
	// AuxInputs lists auxiliary separator fluids (matrix/pusher), which
	// occupy reservoirs but are not volume-managed.
	AuxInputs []string
	// FluidDecls lists the declared fluid symbols in declaration order.
	FluidDecls []FluidDecl
	// UsedFluids records, by declared (base) name, every fluid symbol the
	// program references — read, assigned, or used as an auxiliary
	// separator fluid.
	UsedFluids map[string]bool
}

// Error is one elaboration diagnostic, shared with the rest of the
// compiler via internal/diag.
type Error = diag.Diagnostic

// fluidVal is a bound fluid: a DAG node and the producer port to draw
// from.
type fluidVal struct {
	node *dag.Node
	port string
}

type elaborator struct {
	info *sema.Info
	prog *Program
	g    *dag.Graph

	// Compile-time dry environment; known=false means run-time-only.
	dry *DryEnv
	// slotBase maps a symbol to its first slot.
	slotBase map[string]int
	// fluids maps flattened fluid slot names to bindings.
	fluids map[string]*fluidVal
	// poisoned marks fluid slots assigned under a run-time guard and
	// therefore unusable after the conditional (no fluid φ-nodes).
	poisoned map[string]token.Pos
	// it is the previous operation's result.
	it *fluidVal
	// guards is the active run-time guard stack.
	guards []Guard
	// aux records auxiliary fluids already registered.
	aux map[string]bool
	// iterations counts total loop iterations, bounding elaboration work
	// on hostile input (a FOR loop to 10^9 would otherwise hang the
	// compiler during unrolling).
	iterations int
}

// maxIterations bounds total unrolled loop iterations per elaboration. The
// paper's largest benchmark (Enzyme10) needs 1030; the bound only rejects
// degenerate programs.
const maxIterations = 1 << 20

// Elaborate lowers a checked assay.
func Elaborate(info *sema.Info) (*Program, error) {
	e := &elaborator{
		info: info,
		g:    dag.New(),
		prog: &Program{
			Name:       info.Program.Name,
			SlotIndex:  map[string]int{},
			Init:       map[int]float64{},
			Inputs:     map[string]int{},
			UsedFluids: map[string]bool{},
		},
		slotBase: map[string]int{},
		fluids:   map[string]*fluidVal{},
		poisoned: map[string]token.Pos{},
		aux:      map[string]bool{},
	}
	e.prog.Graph = e.g

	// Record declared fluids for downstream analyses, and allocate dry
	// slots for every VAR symbol (and loop variables).
	for _, sym := range sortedSymbols(info) {
		if sym.Kind == sema.SymFluid {
			e.prog.FluidDecls = append(e.prog.FluidDecls, FluidDecl{
				Name: sym.Name, Pos: sym.Pos, NoExcess: sym.NoExcess,
			})
			continue
		}
		if sym.Kind != sema.SymVar {
			continue
		}
		e.slotBase[sym.Name] = len(e.prog.Slots)
		if len(sym.Dims) == 0 {
			e.prog.SlotIndex[sym.Name] = len(e.prog.Slots)
			e.prog.Slots = append(e.prog.Slots, sym.Name)
			continue
		}
		total := sym.Size()
		for i := 0; i < total; i++ {
			name := fmt.Sprintf("%s%s", sym.Name, indexSuffix(sym.Dims, i))
			e.prog.SlotIndex[name] = len(e.prog.Slots)
			e.prog.Slots = append(e.prog.Slots, name)
		}
	}
	e.dry = NewDryEnv(len(e.prog.Slots))

	if err := e.stmts(info.Program.Body); err != nil {
		return nil, err
	}
	// Record compile-time-known dry values for the runtime.
	for i, known := range e.dry.Known {
		if known {
			e.prog.Init[i] = e.dry.Values[i]
		}
	}
	if err := e.g.Validate(); err != nil {
		return nil, fmt.Errorf("elab: produced invalid DAG: %w", err)
	}
	return e.prog, nil
}

func sortedSymbols(info *sema.Info) []*sema.Symbol {
	// Deterministic order: by declaration position, then name.
	var out []*sema.Symbol
	for _, s := range info.Symbols {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b *sema.Symbol) bool {
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Col != b.Pos.Col {
		return a.Pos.Col < b.Pos.Col
	}
	return a.Name < b.Name
}

func indexSuffix(dims []int, flat int) string {
	idx := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		idx[i] = flat % dims[i]
		flat /= dims[i]
	}
	var b strings.Builder
	for _, ix := range idx {
		fmt.Fprintf(&b, "[%d]", ix+1) // 1-based, as in source
	}
	return b.String()
}

func (e *elaborator) errf(pos token.Pos, format string, args ...any) error {
	return Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (e *elaborator) underGuard() bool { return len(e.guards) > 0 }

func (e *elaborator) stmts(list []ast.Stmt) error {
	for _, s := range list {
		if err := e.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (e *elaborator) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Op != nil {
			return e.fluidAssign(s)
		}
		return e.dryAssign(s)
	case *ast.SenseStmt:
		return e.sense(s)
	case *ast.OutputStmt:
		return e.output(s)
	case *ast.ForStmt:
		return e.forLoop(s)
	case *ast.WhileStmt:
		return e.whileLoop(s)
	case *ast.IfStmt:
		return e.ifStmt(s)
	default:
		return e.errf(s.Position(), "elab: unsupported statement %T", s)
	}
}

// lowerExpr converts a dry expression to IR and, when possible, a constant
// value.
func (e *elaborator) lowerExpr(x ast.Expr) (ExprIR, error) {
	switch x := x.(type) {
	case *ast.NumberLit:
		return ConstIR(x.Value), nil
	case *ast.UnaryExpr:
		inner, err := e.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		return BinIR{Op: token.MINUS, L: ConstIR(0), R: inner}, nil
	case *ast.BinaryExpr:
		l, err := e.lowerExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.lowerExpr(x.R)
		if err != nil {
			return nil, err
		}
		return BinIR{Op: x.Op, L: l, R: r}, nil
	case *ast.LValue:
		slot, err := e.drySlot(x)
		if err != nil {
			return nil, err
		}
		return SlotIR(slot), nil
	default:
		return nil, e.errf(x.Position(), "elab: unsupported expression %T", x)
	}
}

// constExpr evaluates a dry expression that must be compile-time known
// (ratios, loop bounds, indices, times).
func (e *elaborator) constExpr(x ast.Expr, what string) (float64, error) {
	ir, err := e.lowerExpr(x)
	if err != nil {
		return 0, err
	}
	v, ok := ir.Eval(e.dry)
	if !ok {
		return 0, e.errf(x.Position(), "elab: %s must be compile-time known", what)
	}
	return v, nil
}

// drySlot resolves a dry lvalue to its flattened slot.
func (e *elaborator) drySlot(lv *ast.LValue) (int, error) {
	sym := e.info.Symbols[lv.Name]
	base := e.slotBase[lv.Name]
	if len(sym.Dims) == 0 {
		return base, nil
	}
	flat := 0
	for d, ixExpr := range lv.Indices {
		v, err := e.constExpr(ixExpr, "array index")
		if err != nil {
			return 0, err
		}
		ix := int(v)
		if float64(ix) != v || ix < 1 || ix > sym.Dims[d] {
			return 0, e.errf(lv.Pos, "elab: index %v out of range [1,%d] for %s", v, sym.Dims[d], lv.Name)
		}
		flat = flat*sym.Dims[d] + (ix - 1)
	}
	return base + flat, nil
}

// fluidSlotName flattens a fluid lvalue to its slot name, evaluating
// indices.
func (e *elaborator) fluidSlotName(lv *ast.LValue) (string, error) {
	sym := e.info.Symbols[lv.Name]
	if len(sym.Dims) == 0 {
		return lv.Name, nil
	}
	var b strings.Builder
	b.WriteString(lv.Name)
	for d, ixExpr := range lv.Indices {
		v, err := e.constExpr(ixExpr, "fluid index")
		if err != nil {
			return "", err
		}
		ix := int(v)
		if float64(ix) != v || ix < 1 || ix > sym.Dims[d] {
			return "", e.errf(lv.Pos, "elab: index %v out of range [1,%d] for %s", v, sym.Dims[d], lv.Name)
		}
		fmt.Fprintf(&b, "[%d]", ix)
	}
	return b.String(), nil
}

// readFluid resolves a fluid operand, creating an Input node on first
// unbound use.
func (e *elaborator) readFluid(r *ast.FluidRef) (*fluidVal, error) {
	if r.It {
		if e.it == nil {
			return nil, e.errf(r.Pos, "elab: `it` used before any fluid operation")
		}
		return e.it, nil
	}
	name, err := e.fluidSlotName(r.Ref)
	if err != nil {
		return nil, err
	}
	e.prog.UsedFluids[r.Ref.Name] = true
	if pos, bad := e.poisoned[name]; bad {
		return nil, e.errf(r.Pos,
			"elab: fluid %s was assigned under a run-time condition (at %s) and cannot be used afterwards", name, pos)
	}
	if fv, ok := e.fluids[name]; ok {
		return fv, nil
	}
	n := e.g.AddInput(name)
	n.NoExcess = e.info.Symbols[r.Ref.Name].NoExcess
	fv := &fluidVal{node: n}
	e.fluids[name] = fv
	e.prog.Inputs[name] = n.ID()
	return fv, nil
}

// bindFluid assigns a fluid slot, handling run-time-guard poisoning.
func (e *elaborator) bindFluid(lv *ast.LValue, fv *fluidVal) error {
	name, err := e.fluidSlotName(lv)
	if err != nil {
		return err
	}
	e.prog.UsedFluids[lv.Name] = true
	if e.underGuard() {
		e.poisoned[name] = lv.Pos
	} else {
		delete(e.poisoned, name)
	}
	e.fluids[name] = fv
	return nil
}

func (e *elaborator) emit(op Op) {
	op.Guards = append([]Guard(nil), e.guards...)
	if op.Node >= 0 {
		// Link the DAG node back to its op so code generation can recover
		// operation metadata after DAG transforms (which copy Ref).
		e.g.Node(op.Node).Ref = len(e.prog.Ops)
	}
	e.prog.Ops = append(e.prog.Ops, op)
}

func (e *elaborator) fluidAssign(s *ast.AssignStmt) error {
	fv, err := e.fluidOp(s.Op, s.LHS)
	if err != nil {
		return err
	}
	if s.LHS != nil {
		if err := e.bindFluid(s.LHS, fv); err != nil {
			return err
		}
	}
	// `it` refers to this op for subsequent statements; ifStmt/whileLoop
	// clear it when a guarded region closes, since the op may not have
	// executed.
	e.it = fv
	return nil
}

func (e *elaborator) fluidOp(op ast.FluidOp, lhs *ast.LValue) (*fluidVal, error) {
	label := ""
	if lhs != nil {
		var err error
		label, err = e.fluidSlotName(lhs)
		if err != nil {
			return nil, err
		}
	}
	switch op := op.(type) {
	case *ast.MixOp:
		return e.mix(op, label)
	case *ast.IncubateOp:
		return e.unary(dag.Incubate, OpIncubate, op.Arg, op.Temp, op.Time, label, op.Pos)
	case *ast.ConcentrateOp:
		return e.concentrate(op, label)
	case *ast.SeparateOp:
		return e.separate(op, label)
	default:
		return nil, e.errf(op.Position(), "elab: unsupported fluid op %T", op)
	}
}

func (e *elaborator) mix(op *ast.MixOp, label string) (*fluidVal, error) {
	timeSec, err := e.constExpr(op.Time, "mix time")
	if err != nil {
		return nil, err
	}
	ratios := make([]float64, len(op.Args))
	if op.Ratios == nil {
		for i := range ratios {
			ratios[i] = 1
		}
	} else {
		for i, rx := range op.Ratios {
			v, err := e.constExpr(rx, "mix ratio")
			if err != nil {
				return nil, err
			}
			if v <= 0 {
				return nil, e.errf(rx.Position(), "elab: mix ratio must be positive, got %v", v)
			}
			ratios[i] = v
		}
	}
	if label == "" {
		label = fmt.Sprintf("mix@%s", op.Pos)
	}
	node := e.g.AddNode(dag.Mix, label)
	total := 0.0
	for _, r := range ratios {
		total += r
	}
	var args []int
	var ports []string
	fracs := make([]float64, len(op.Args))
	for i, a := range op.Args {
		fv, err := e.readFluid(a)
		if err != nil {
			return nil, err
		}
		e.g.AddPortEdge(fv.node, node, ratios[i]/total, fv.port)
		args = append(args, fv.node.ID())
		ports = append(ports, fv.port)
		fracs[i] = ratios[i] / total
	}
	e.emit(Op{
		Kind: OpMix, Node: node.ID(), Args: args, ArgPorts: ports,
		Ratios: fracs, TimeSec: timeSec, ResultSlot: -1, Label: label, Pos: op.Pos,
	})
	return &fluidVal{node: node}, nil
}

func (e *elaborator) unary(kind dag.Kind, ok OpKind, arg *ast.FluidRef, temp, tm ast.Expr, label string, pos token.Pos) (*fluidVal, error) {
	tempC, err := e.constExpr(temp, "temperature")
	if err != nil {
		return nil, err
	}
	timeSec, err := e.constExpr(tm, "time")
	if err != nil {
		return nil, err
	}
	fv, err := e.readFluid(arg)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = fmt.Sprintf("%s@%s", ok, pos)
	}
	node := e.g.AddNode(kind, label)
	e.g.AddPortEdge(fv.node, node, 1, fv.port)
	e.emit(Op{
		Kind: ok, Node: node.ID(), Args: []int{fv.node.ID()}, ArgPorts: []string{fv.port},
		TimeSec: timeSec, TempC: tempC, ResultSlot: -1, Label: label, Pos: pos,
	})
	return &fluidVal{node: node}, nil
}

func (e *elaborator) concentrate(op *ast.ConcentrateOp, label string) (*fluidVal, error) {
	fv, err := e.unary(dag.Concentrate, OpConcentrate, op.Arg, op.Temp, op.Time, label, op.Pos)
	if err != nil {
		return nil, err
	}
	// Concentration reduces volume by an amount only the run-time can
	// measure; without a YIELD-style hint the node is unknown-volume.
	fv.node.Unknown = true
	return fv, nil
}

func (e *elaborator) separate(op *ast.SeparateOp, label string) (*fluidVal, error) {
	timeSec, err := e.constExpr(op.Time, "separation time")
	if err != nil {
		return nil, err
	}
	fv, err := e.readFluid(op.Arg)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = fmt.Sprintf("sep@%s", op.Pos)
	}
	node := e.g.AddNode(dag.Separate, label)
	e.g.AddPortEdge(fv.node, node, 1, fv.port)

	o := Op{
		Kind: OpSeparate, Node: node.ID(), Args: []int{fv.node.ID()},
		ArgPorts: []string{fv.port}, TimeSec: timeSec, Sep: op.Kind,
		ResultSlot: -1, Label: label, Pos: op.Pos,
	}
	if op.Matrix != nil {
		o.Matrix = op.Matrix.Name
		e.registerAux(op.Matrix.Name)
	}
	if op.Using != nil {
		o.Pusher = op.Using.Name
		e.registerAux(op.Using.Name)
	}
	if op.Yield != nil {
		y, err := e.constExpr(op.Yield, "separation yield")
		if err != nil {
			return nil, err
		}
		if y <= 0 || y >= 100 {
			return nil, e.errf(op.Yield.Position(), "elab: yield must be in (0,100) percent, got %v", y)
		}
		node.OutFrac = y / 100
		o.Yield = y / 100
	} else {
		node.Unknown = true
	}
	e.emit(o)

	if err := e.bindFluid(op.Eff, &fluidVal{node: node, port: dag.PortEffluent}); err != nil {
		return nil, err
	}
	if err := e.bindFluid(op.Waste, &fluidVal{node: node, port: dag.PortWaste}); err != nil {
		return nil, err
	}
	return &fluidVal{node: node, port: dag.PortEffluent}, nil
}

func (e *elaborator) registerAux(name string) {
	e.prog.UsedFluids[name] = true
	if !e.aux[name] {
		e.aux[name] = true
		e.prog.AuxInputs = append(e.prog.AuxInputs, name)
	}
}

func (e *elaborator) sense(s *ast.SenseStmt) error {
	fv, err := e.readFluid(s.Arg)
	if err != nil {
		return err
	}
	slot, err := e.drySlot(s.Into)
	if err != nil {
		return err
	}
	label := fmt.Sprintf("sense(%s)", e.prog.Slots[slot])
	node := e.g.AddNode(dag.Sense, label)
	e.g.AddPortEdge(fv.node, node, 1, fv.port)
	e.emit(Op{
		Kind: OpSense, Node: node.ID(), Args: []int{fv.node.ID()},
		ArgPorts: []string{fv.port}, SenseMode: s.Mode, ResultSlot: slot,
		Label: label, Pos: s.Pos,
	})
	// The sensed value exists only at run time.
	e.dry.Known[slot] = false
	return nil
}

func (e *elaborator) output(s *ast.OutputStmt) error {
	fv, err := e.readFluid(s.Arg)
	if err != nil {
		return err
	}
	label := fmt.Sprintf("output(%s)", s.Arg)
	node := e.g.AddNode(dag.Output, label)
	e.g.AddPortEdge(fv.node, node, 1, fv.port)
	e.emit(Op{
		Kind: OpOutput, Node: node.ID(), Args: []int{fv.node.ID()},
		ArgPorts: []string{fv.port}, ResultSlot: -1, Label: label, Pos: s.Pos,
	})
	return nil
}

func (e *elaborator) dryAssign(s *ast.AssignStmt) error {
	slot, err := e.drySlot(s.LHS)
	if err != nil {
		return err
	}
	ir, err := e.lowerExpr(s.Expr)
	if err != nil {
		return err
	}
	if v, ok := ir.Eval(e.dry); ok && !e.underGuard() {
		// Compile-time fold.
		e.dry.Set(slot, v)
		return nil
	}
	// Run-time computation (sensed-dependent or conditionally executed).
	e.emit(Op{Kind: OpDry, Node: -1, ResultSlot: slot, DryExpr: ir, Pos: s.Pos,
		Label: e.prog.Slots[slot]})
	e.dry.Known[slot] = false
	return nil
}

func (e *elaborator) forLoop(s *ast.ForStmt) error {
	from, err := e.constExpr(s.From, "loop lower bound")
	if err != nil {
		return err
	}
	to, err := e.constExpr(s.To, "loop upper bound")
	if err != nil {
		return err
	}
	lo, hi := int(from), int(to)
	if float64(lo) != from || float64(hi) != to {
		return e.errf(s.Pos, "elab: loop bounds must be integers, got %v..%v", from, to)
	}
	slot := e.slotBase[s.Var]
	for i := lo; i <= hi; i++ {
		if err := e.spendIteration(s.Pos); err != nil {
			return err
		}
		e.dry.Set(slot, float64(i))
		if err := e.stmts(s.Body); err != nil {
			return err
		}
	}
	return nil
}

// spendIteration charges one unrolled loop iteration against the
// elaboration budget.
func (e *elaborator) spendIteration(pos token.Pos) error {
	e.iterations++
	if e.iterations > maxIterations {
		return e.errf(pos, "elab: loop unrolling exceeds %d total iterations", maxIterations)
	}
	return nil
}

func (e *elaborator) whileLoop(s *ast.WhileStmt) error {
	maxIter, err := e.constExpr(s.MaxIter, "MAXITER bound")
	if err != nil {
		return err
	}
	n := int(maxIter)
	if float64(n) != maxIter || n < 1 {
		return e.errf(s.Pos, "elab: MAXITER must be a positive integer, got %v", maxIter)
	}
	condIR, err := e.lowerExpr(s.Cond)
	if err != nil {
		return err
	}
	if _, known := condIR.Eval(e.dry); known && !e.underGuard() {
		// Compile-time loop: iterate directly, re-evaluating the
		// condition, up to the bound.
		for i := 0; i < n; i++ {
			if err := e.spendIteration(s.Pos); err != nil {
				return err
			}
			v, ok := condIR.Eval(e.dry)
			if !ok {
				// The body made the condition run-time (e.g. sensed); fall
				// through to guarded unrolling for the remaining
				// iterations.
				return e.guardedWhile(s, condIR, n-i)
			}
			if v == 0 {
				return nil
			}
			if err := e.stmts(s.Body); err != nil {
				return err
			}
		}
		return nil
	}
	return e.guardedWhile(s, condIR, n)
}

// guardedWhile unrolls a run-time while loop to n guarded iterations. Each
// iteration i is latched on `latch_{i-1} * cond`, so once the condition
// fails no later iteration can run.
func (e *elaborator) guardedWhile(s *ast.WhileStmt, condIR ExprIR, n int) error {
	prevLatch := ExprIR(ConstIR(1))
	for i := 0; i < n; i++ {
		if err := e.spendIteration(s.Pos); err != nil {
			return err
		}
		latchSlot := len(e.prog.Slots)
		name := fmt.Sprintf("%%latch@%s#%d", s.Pos, i)
		e.prog.Slots = append(e.prog.Slots, name)
		e.prog.SlotIndex[name] = latchSlot
		e.dry.Values = append(e.dry.Values, 0)
		e.dry.Known = append(e.dry.Known, false)
		e.emit(Op{Kind: OpDry, Node: -1, ResultSlot: latchSlot,
			DryExpr: BinIR{Op: token.STAR, L: prevLatch, R: condIR},
			Pos:     s.Pos, Label: name})
		e.guards = append(e.guards, Guard{Cond: SlotIR(latchSlot)})
		err := e.stmts(s.Body)
		e.guards = e.guards[:len(e.guards)-1]
		if err != nil {
			return err
		}
		prevLatch = SlotIR(latchSlot)
	}
	e.it = nil
	return nil
}

func (e *elaborator) ifStmt(s *ast.IfStmt) error {
	condIR, err := e.lowerExpr(s.Cond)
	if err != nil {
		return err
	}
	if v, ok := condIR.Eval(e.dry); ok && !e.underGuard() {
		if v != 0 {
			return e.stmts(s.Then)
		}
		return e.stmts(s.Else)
	}
	// Run-time condition: both branches planned, ops guarded (§3.5).
	e.guards = append(e.guards, Guard{Cond: condIR})
	err = e.stmts(s.Then)
	e.guards = e.guards[:len(e.guards)-1]
	if err != nil {
		return err
	}
	if len(s.Else) > 0 {
		e.guards = append(e.guards, Guard{Cond: condIR, Negate: true})
		err = e.stmts(s.Else)
		e.guards = e.guards[:len(e.guards)-1]
		if err != nil {
			return err
		}
	}
	e.it = nil
	return nil
}
