// Package elab elaborates a checked assay AST into (a) a straight-line
// operation list for code generation and simulation and (b) the assay DAG
// for volume management.
//
// Elaboration fully unrolls counted loops (§3.5), interpreting the dry
// (scalar) arithmetic that drives ratio computations (the enzyme assay's
// `temp = temp * 10; diluent = temp - 1` idiom). Conditionals with
// compile-time-constant conditions are folded; run-time conditions (those
// depending on sensed values) contribute BOTH branches to the DAG — the
// paper's conservative treatment — and compile to guarded operations that
// the runtime evaluates. WHILE loops carry the programmer's MAXITER bound
// and unroll to guarded iterations latched on the loop condition.
package elab

import (
	"fmt"

	"aquavol/internal/lang/ast"
	"aquavol/internal/lang/token"
)

// ExprIR is a dry expression lowered onto runtime slots. Comparison
// operators evaluate to 1 or 0.
type ExprIR interface {
	// Eval computes the expression over the runtime dry environment.
	// ok is false if any referenced slot is unset.
	Eval(env *DryEnv) (v float64, ok bool)
}

// ConstIR is a constant.
type ConstIR float64

// Eval implements ExprIR.
func (c ConstIR) Eval(*DryEnv) (float64, bool) { return float64(c), true }

// SlotIR reads a dry slot.
type SlotIR int

// Eval implements ExprIR.
func (s SlotIR) Eval(env *DryEnv) (float64, bool) {
	if !env.Known[s] {
		return 0, false
	}
	return env.Values[s], true
}

// BinIR applies an arithmetic or comparison operator.
type BinIR struct {
	Op   token.Kind
	L, R ExprIR
}

// Eval implements ExprIR.
func (b BinIR) Eval(env *DryEnv) (float64, bool) {
	l, ok := b.L.Eval(env)
	if !ok {
		return 0, false
	}
	r, ok := b.R.Eval(env)
	if !ok {
		return 0, false
	}
	return applyOp(b.Op, l, r)
}

func applyOp(op token.Kind, l, r float64) (float64, bool) {
	switch op {
	case token.PLUS:
		return l + r, true
	case token.MINUS:
		return l - r, true
	case token.STAR:
		return l * r, true
	case token.SLASH:
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case token.PERCENT:
		if r == 0 {
			return 0, false
		}
		return float64(int64(l) % int64(r)), true
	case token.LT:
		return b2f(l < r), true
	case token.GT:
		return b2f(l > r), true
	case token.LE:
		return b2f(l <= r), true
	case token.GE:
		return b2f(l >= r), true
	case token.EQ:
		return b2f(l == r), true
	case token.NE:
		return b2f(l != r), true
	default:
		return 0, false
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// DryEnv is the runtime dry-variable store: one slot per declared scalar
// or array element, plus synthesized loop latches.
type DryEnv struct {
	Values []float64
	Known  []bool
}

// NewDryEnv creates an environment of n unset slots.
func NewDryEnv(n int) *DryEnv {
	return &DryEnv{Values: make([]float64, n), Known: make([]bool, n)}
}

// Set stores a value.
func (e *DryEnv) Set(slot int, v float64) {
	e.Values[slot] = v
	e.Known[slot] = true
}

// Guard gates an operation on a runtime condition. The guard holds when
// Cond evaluates nonzero, xor Negate.
type Guard struct {
	Cond   ExprIR
	Negate bool
}

// Holds evaluates the guard; unknown conditions report an error.
func (g Guard) Holds(env *DryEnv) (bool, error) {
	v, ok := g.Cond.Eval(env)
	if !ok {
		return false, fmt.Errorf("elab: guard condition references unset dry value")
	}
	return (v != 0) != g.Negate, nil
}

// OpKind enumerates elaborated operations.
type OpKind int

const (
	// OpMix combines fluids.
	OpMix OpKind = iota
	// OpIncubate heats a fluid.
	OpIncubate
	// OpConcentrate concentrates a fluid.
	OpConcentrate
	// OpSeparate splits a fluid into effluent and waste.
	OpSeparate
	// OpSense reads a sensor into a dry slot.
	OpSense
	// OpOutput sends a fluid to an output port.
	OpOutput
	// OpDry computes a dry value at run time (sensed-dependent
	// arithmetic; the AIS dry-* instructions).
	OpDry
)

var opKindNames = map[OpKind]string{
	OpMix: "mix", OpIncubate: "incubate", OpConcentrate: "concentrate",
	OpSeparate: "separate", OpSense: "sense", OpOutput: "output", OpDry: "dry",
}

func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one elaborated operation. Fluid operands are identified by their
// DAG node ids.
type Op struct {
	Kind OpKind
	// Node is the DAG node this operation produces (-1 for OpDry).
	Node int
	// Args lists consumed fluids' DAG node ids, in operand order.
	Args []int
	// ArgPorts gives the producer port for each arg ("" or
	// effluent/waste).
	ArgPorts []string
	// Ratios are the normalized mix fractions (parallel to Args; nil for
	// non-mix ops).
	Ratios []float64
	// TimeSec and TempC are operation parameters.
	TimeSec, TempC float64
	// Sep is the separation flavor for OpSeparate.
	Sep ast.SepKind
	// Matrix and Pusher name auxiliary separator fluids ("" if none).
	Matrix, Pusher string
	// Yield is the known output-to-input fraction for
	// separate/concentrate (0 when statically unknown).
	Yield float64
	// SenseMode selects the sensor for OpSense.
	SenseMode ast.SenseMode
	// ResultSlot is the dry slot written by OpSense/OpDry (-1 otherwise).
	ResultSlot int
	// DryExpr is the expression computed by OpDry.
	DryExpr ExprIR
	// Guards must all hold for the operation to execute.
	Guards []Guard
	// Label names the produced fluid for diagnostics.
	Label string
	Pos   token.Pos
}

// Runs reports whether the op's guards all hold under env.
func (o *Op) Runs(env *DryEnv) (bool, error) {
	for _, g := range o.Guards {
		ok, err := g.Holds(env)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}
