// Package ast defines the abstract syntax tree of the assay language.
package ast

import (
	"fmt"
	"strings"

	"aquavol/internal/lang/token"
)

// Program is a parsed assay.
type Program struct {
	Name  string
	Decls []*Decl
	Body  []Stmt
	Pos   token.Pos
}

// DeclKind distinguishes fluid from dry (VAR) declarations.
type DeclKind int

const (
	// FluidDecl declares fluids (wet variables).
	FluidDecl DeclKind = iota
	// VarDecl declares dry scalar/array variables.
	VarDecl
)

func (k DeclKind) String() string {
	if k == FluidDecl {
		return "fluid"
	}
	return "VAR"
}

// DeclName is one declared name with optional array dimensions.
type DeclName struct {
	Name string
	Dims []int
	Pos  token.Pos
}

// Decl is a fluid or VAR declaration.
type Decl struct {
	Kind DeclKind
	// NoExcess marks every fluid in the declaration as excess-forbidden
	// (§3.4.1: no cascading through these fluids).
	NoExcess bool
	Names    []DeclName
	Pos      token.Pos
}

// Stmt is any statement.
type Stmt interface {
	stmt()
	Position() token.Pos
}

// Expr is any dry (arithmetic) expression.
type Expr interface {
	expr()
	Position() token.Pos
}

// FluidOp is a fluid-producing operation (the RHS of a fluid assignment or
// a bare operation statement).
type FluidOp interface {
	fluidOp()
	Position() token.Pos
}

// LValue is a scalar/array/fluid reference, possibly indexed.
type LValue struct {
	Name    string
	Indices []Expr
	Pos     token.Pos
}

func (l *LValue) Position() token.Pos { return l.Pos }
func (l *LValue) expr()               {}

func (l *LValue) String() string {
	var b strings.Builder
	b.WriteString(l.Name)
	for _, ix := range l.Indices {
		fmt.Fprintf(&b, "[%s]", ExprString(ix))
	}
	return b.String()
}

// FluidRef names a fluid operand: either `it` (the previous operation's
// result) or a possibly-indexed fluid variable.
type FluidRef struct {
	It  bool
	Ref *LValue // nil when It
	Pos token.Pos
}

func (f *FluidRef) String() string {
	if f.It {
		return "it"
	}
	return f.Ref.String()
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	Pos   token.Pos
}

func (n *NumberLit) expr()               {}
func (n *NumberLit) Position() token.Pos { return n.Pos }

// BinaryExpr is a dry arithmetic or comparison expression.
type BinaryExpr struct {
	Op   token.Kind // PLUS MINUS STAR SLASH PERCENT LT GT LE GE EQ NE
	L, R Expr
	Pos  token.Pos
}

func (b *BinaryExpr) expr()               {}
func (b *BinaryExpr) Position() token.Pos { return b.Pos }

// UnaryExpr is a negation.
type UnaryExpr struct {
	Op  token.Kind // MINUS
	X   Expr
	Pos token.Pos
}

func (u *UnaryExpr) expr()               {}
func (u *UnaryExpr) Position() token.Pos { return u.Pos }

// AssignStmt assigns a dry expression or fluid operation. LHS is nil for a
// bare fluid operation statement whose result is referenced via `it`.
type AssignStmt struct {
	LHS *LValue
	// Exactly one of Expr and Op is set.
	Expr Expr
	Op   FluidOp
	Pos  token.Pos
}

func (*AssignStmt) stmt()                 {}
func (s *AssignStmt) Position() token.Pos { return s.Pos }

// SenseMode selects the sensor.
type SenseMode int

const (
	// SenseOptical measures optical density (sense.OD).
	SenseOptical SenseMode = iota
	// SenseFluorescence measures fluorescence (sense.FL).
	SenseFluorescence
)

func (m SenseMode) String() string {
	if m == SenseOptical {
		return "OPTICAL"
	}
	return "FLUORESCENCE"
}

// SenseStmt consumes a fluid and stores the reading into a dry variable.
type SenseStmt struct {
	Mode SenseMode
	Arg  *FluidRef
	Into *LValue
	Pos  token.Pos
}

func (*SenseStmt) stmt()                 {}
func (s *SenseStmt) Position() token.Pos { return s.Pos }

// OutputStmt sends a fluid to an output port.
type OutputStmt struct {
	Arg *FluidRef
	Pos token.Pos
}

func (*OutputStmt) stmt()                 {}
func (s *OutputStmt) Position() token.Pos { return s.Pos }

// ForStmt is a counted loop, fully unrolled at compile time (§3.5).
type ForStmt struct {
	Var      string
	From, To Expr
	Body     []Stmt
	Pos      token.Pos
}

func (*ForStmt) stmt()                 {}
func (s *ForStmt) Position() token.Pos { return s.Pos }

// WhileStmt is a condition-controlled loop. MaxIter is the programmer's
// §3.5 upper-bound hint, required for volume planning: the body is planned
// MaxIter times and execution stops early when the condition fails.
type WhileStmt struct {
	Cond    Expr
	MaxIter Expr
	Body    []Stmt
	Pos     token.Pos
}

func (*WhileStmt) stmt()                 {}
func (s *WhileStmt) Position() token.Pos { return s.Pos }

// IfStmt is a conditional; when the condition is not compile-time constant
// both branches contribute to the volume-planning DAG (§3.5).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  token.Pos
}

func (*IfStmt) stmt()                 {}
func (s *IfStmt) Position() token.Pos { return s.Pos }

// MixOp mixes fluids in the given ratios (equal parts when Ratios is nil)
// for Time seconds.
type MixOp struct {
	Args   []*FluidRef
	Ratios []Expr
	Time   Expr
	Pos    token.Pos
}

func (*MixOp) fluidOp()              {}
func (o *MixOp) Position() token.Pos { return o.Pos }

// IncubateOp heats a fluid at Temp for Time.
type IncubateOp struct {
	Arg  *FluidRef
	Temp Expr
	Time Expr
	Pos  token.Pos
}

func (*IncubateOp) fluidOp()              {}
func (o *IncubateOp) Position() token.Pos { return o.Pos }

// ConcentrateOp concentrates a fluid at Temp for Time.
type ConcentrateOp struct {
	Arg  *FluidRef
	Temp Expr
	Time Expr
	Pos  token.Pos
}

func (*ConcentrateOp) fluidOp()              {}
func (o *ConcentrateOp) Position() token.Pos { return o.Pos }

// SepKind selects the separation mechanism (the AIS separate.* flavors).
type SepKind int

const (
	// SepAffinity is affinity separation (separate.AF).
	SepAffinity SepKind = iota
	// SepLC is liquid chromatography (separate.LC).
	SepLC
	// SepCE is capillary-electrophoresis separation (separate.CE).
	SepCE
	// SepSize is separation by size (separate.SIZE).
	SepSize
)

func (k SepKind) String() string {
	switch k {
	case SepAffinity:
		return "SEPARATE"
	case SepLC:
		return "LCSEPARATE"
	case SepCE:
		return "CESEPARATE"
	case SepSize:
		return "SIZESEPARATE"
	default:
		return fmt.Sprintf("SepKind(%d)", int(k))
	}
}

// SeparateOp separates a fluid into effluent and waste. Matrix and Using
// name auxiliary fluids (affinity matrix, pusher buffer) that are loaded
// into the separator but are not volume-managed (see package assays).
// Yield, when non-nil, is the §3.5 programmer hint for the effluent
// fraction in percent; without it the output volume is statically unknown.
type SeparateOp struct {
	Kind   SepKind
	Arg    *FluidRef
	Matrix *LValue // may be nil
	Using  *LValue // may be nil
	Time   Expr
	Eff    *LValue
	Waste  *LValue
	Yield  Expr
	Pos    token.Pos
}

func (*SeparateOp) fluidOp()              {}
func (o *SeparateOp) Position() token.Pos { return o.Pos }

// ExprString renders a dry expression. Arithmetic sub-expressions are
// parenthesized to preserve structure; comparisons (which only appear as
// conditions, where the grammar forbids outer parentheses) are not.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *NumberLit:
		return trimFloat(e.Value)
	case *LValue:
		return e.String()
	case *UnaryExpr:
		return "-" + ExprString(e.X)
	case *BinaryExpr:
		if isComparison(e.Op) {
			return fmt.Sprintf("%s %s %s", ExprString(e.L), e.Op, ExprString(e.R))
		}
		return fmt.Sprintf("(%s %s %s)", ExprString(e.L), e.Op, ExprString(e.R))
	default:
		return fmt.Sprintf("%T", e)
	}
}

func isComparison(k token.Kind) bool {
	switch k {
	case token.LT, token.GT, token.LE, token.GE, token.EQ, token.NE:
		return true
	}
	return false
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
