package ast

import (
	"fmt"
	"strings"
)

// Format renders a program back to canonical assay-language source. The
// output parses to a structurally identical AST (see the round-trip tests
// in the parser package), making Format a formatter for assay files.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ASSAY %s START\n", p.Name)
	for _, d := range p.Decls {
		if d.NoExcess {
			b.WriteString("NOEXCESS ")
		}
		fmt.Fprintf(&b, "%s ", d.Kind)
		for i, n := range d.Names {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(n.Name)
			for _, dim := range n.Dims {
				fmt.Fprintf(&b, "[%d]", dim)
			}
		}
		b.WriteString(";\n")
	}
	formatStmts(&b, p.Body, 0)
	b.WriteString("END\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		formatStmt(b, s, depth)
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch s := s.(type) {
	case *AssignStmt:
		if s.LHS != nil {
			fmt.Fprintf(b, "%s = ", s.LHS)
		}
		if s.Op != nil {
			b.WriteString(formatOp(s.Op))
		} else {
			b.WriteString(ExprString(s.Expr))
		}
		b.WriteString(";\n")
	case *SenseStmt:
		fmt.Fprintf(b, "SENSE %s %s INTO %s;\n", s.Mode, s.Arg, s.Into)
	case *OutputStmt:
		fmt.Fprintf(b, "OUTPUT %s;\n", s.Arg)
	case *ForStmt:
		fmt.Fprintf(b, "FOR %s FROM %s TO %s START\n", s.Var, ExprString(s.From), ExprString(s.To))
		formatStmts(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("ENDFOR\n")
	case *WhileStmt:
		fmt.Fprintf(b, "WHILE %s MAXITER %s START\n", ExprString(s.Cond), ExprString(s.MaxIter))
		formatStmts(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("ENDWHILE\n")
	case *IfStmt:
		fmt.Fprintf(b, "IF %s START\n", ExprString(s.Cond))
		formatStmts(b, s.Then, depth+1)
		if len(s.Else) > 0 {
			indent(b, depth)
			b.WriteString("ELSE\n")
			formatStmts(b, s.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("ENDIF\n")
	default:
		fmt.Fprintf(b, "-- unknown statement %T\n", s)
	}
}

func formatOp(op FluidOp) string {
	switch op := op.(type) {
	case *MixOp:
		var b strings.Builder
		b.WriteString("MIX ")
		for i, a := range op.Args {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(a.String())
		}
		if op.Ratios != nil {
			b.WriteString(" IN RATIOS ")
			for i, r := range op.Ratios {
				if i > 0 {
					b.WriteString(":")
				}
				b.WriteString(ExprString(r))
			}
		}
		return b.String() + " FOR " + ExprString(op.Time)
	case *IncubateOp:
		return fmt.Sprintf("INCUBATE %s AT %s FOR %s", op.Arg, ExprString(op.Temp), ExprString(op.Time))
	case *ConcentrateOp:
		return fmt.Sprintf("CONCENTRATE %s AT %s FOR %s", op.Arg, ExprString(op.Temp), ExprString(op.Time))
	case *SeparateOp:
		var b strings.Builder
		fmt.Fprintf(&b, "%s %s", op.Kind, op.Arg)
		if op.Matrix != nil {
			fmt.Fprintf(&b, " MATRIX %s", op.Matrix)
		}
		if op.Using != nil {
			fmt.Fprintf(&b, " USING %s", op.Using)
		}
		fmt.Fprintf(&b, " FOR %s INTO %s AND %s", ExprString(op.Time), op.Eff, op.Waste)
		if op.Yield != nil {
			fmt.Fprintf(&b, " YIELD %s", ExprString(op.Yield))
		}
		return b.String()
	default:
		return fmt.Sprintf("-- unknown op %T", op)
	}
}
