// Package lang is the assay-language front end façade: it wires the
// lexer, parser, semantic checker, and elaborator into a single Compile
// entry point.
package lang

import (
	"aquavol/internal/lang/elab"
	"aquavol/internal/lang/parser"
	"aquavol/internal/lang/sema"
)

// Compile parses, checks, and elaborates assay source text into an
// elaborated program: the straight-line operation list plus the
// volume-management DAG.
func Compile(src string) (*elab.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	return elab.Elaborate(info)
}
