// Package sema performs name resolution and kind checking for parsed
// assays: every identifier must be declared (loop variables are declared
// implicitly), fluid operations must name fluids, dry expressions must
// reference dry (VAR) variables, and index arities must match declared
// dimensions.
package sema

import (
	"fmt"

	"aquavol/internal/diag"
	"aquavol/internal/lang/ast"
	"aquavol/internal/lang/token"
)

// SymKind distinguishes wet from dry symbols.
type SymKind int

const (
	// SymFluid is a wet (fluid) variable.
	SymFluid SymKind = iota
	// SymVar is a dry scalar or array variable.
	SymVar
)

func (k SymKind) String() string {
	if k == SymFluid {
		return "fluid"
	}
	return "VAR"
}

// Symbol is one declared name.
type Symbol struct {
	Name string
	Kind SymKind
	// Dims are array dimensions; empty means scalar.
	Dims []int
	// NoExcess marks fluids for which excess production is forbidden.
	NoExcess bool
	Pos      token.Pos
	// LoopVar records implicit declaration by a FOR statement.
	LoopVar bool
}

// Size is the flattened element count (1 for scalars).
func (s *Symbol) Size() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// Info is the result of a successful Check.
type Info struct {
	Program *ast.Program
	Symbols map[string]*Symbol
}

// Error is one semantic diagnostic, shared with the rest of the compiler
// via internal/diag so that semantic errors and lint findings print and
// sort identically.
type Error = diag.Diagnostic

// ErrorList collects diagnostics.
type ErrorList = diag.List

type checker struct {
	syms map[string]*Symbol
	errs ErrorList
}

// Check resolves and kind-checks prog.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{syms: map[string]*Symbol{}}
	for _, d := range prog.Decls {
		kind := SymFluid
		if d.Kind == ast.VarDecl {
			kind = SymVar
		}
		for _, n := range d.Names {
			if old, ok := c.syms[n.Name]; ok {
				c.errorf(n.Pos, "%s redeclared (previous declaration at %s)", n.Name, old.Pos)
				continue
			}
			c.syms[n.Name] = &Symbol{
				Name: n.Name, Kind: kind, Dims: n.Dims,
				NoExcess: d.NoExcess && kind == SymFluid, Pos: n.Pos,
			}
		}
	}
	c.stmts(prog.Body)
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return &Info{Program: prog, Symbols: c.syms}, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, diag.Errorf(pos, format, args...))
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Op != nil {
			c.fluidOp(s.Op)
			if s.LHS != nil {
				c.lvalue(s.LHS, SymFluid)
			}
			return
		}
		c.lvalue(s.LHS, SymVar)
		c.dryExpr(s.Expr)
	case *ast.SenseStmt:
		c.fluidRef(s.Arg)
		c.lvalue(s.Into, SymVar)
	case *ast.OutputStmt:
		c.fluidRef(s.Arg)
	case *ast.ForStmt:
		if sym, ok := c.syms[s.Var]; ok {
			if sym.Kind != SymVar || len(sym.Dims) > 0 {
				c.errorf(s.Pos, "loop variable %s must be a dry scalar", s.Var)
			}
		} else {
			c.syms[s.Var] = &Symbol{Name: s.Var, Kind: SymVar, Pos: s.Pos, LoopVar: true}
		}
		c.dryExpr(s.From)
		c.dryExpr(s.To)
		c.stmts(s.Body)
	case *ast.WhileStmt:
		c.dryExpr(s.Cond)
		c.dryExpr(s.MaxIter)
		c.stmts(s.Body)
	case *ast.IfStmt:
		c.dryExpr(s.Cond)
		c.stmts(s.Then)
		c.stmts(s.Else)
	default:
		panic(fmt.Sprintf("sema: unknown statement %T", s))
	}
}

func (c *checker) fluidOp(op ast.FluidOp) {
	switch op := op.(type) {
	case *ast.MixOp:
		if len(op.Args) < 2 {
			c.errorf(op.Pos, "mix needs at least two fluids")
		}
		for _, a := range op.Args {
			c.fluidRef(a)
		}
		for _, r := range op.Ratios {
			c.dryExpr(r)
		}
		c.dryExpr(op.Time)
	case *ast.IncubateOp:
		c.fluidRef(op.Arg)
		c.dryExpr(op.Temp)
		c.dryExpr(op.Time)
	case *ast.ConcentrateOp:
		c.fluidRef(op.Arg)
		c.dryExpr(op.Temp)
		c.dryExpr(op.Time)
	case *ast.SeparateOp:
		c.fluidRef(op.Arg)
		if op.Matrix != nil {
			c.lvalue(op.Matrix, SymFluid)
		}
		if op.Using != nil {
			c.lvalue(op.Using, SymFluid)
		}
		c.dryExpr(op.Time)
		c.lvalue(op.Eff, SymFluid)
		c.lvalue(op.Waste, SymFluid)
		if op.Yield != nil {
			c.dryExpr(op.Yield)
		}
	default:
		panic(fmt.Sprintf("sema: unknown fluid op %T", op))
	}
}

func (c *checker) fluidRef(r *ast.FluidRef) {
	if r.It {
		return
	}
	c.lvalue(r.Ref, SymFluid)
}

// lvalue checks a reference against the expected symbol kind and its index
// arity against the declaration.
func (c *checker) lvalue(lv *ast.LValue, want SymKind) {
	sym, ok := c.syms[lv.Name]
	if !ok {
		c.errorf(lv.Pos, "undeclared identifier %s", lv.Name)
		return
	}
	if sym.Kind != want {
		c.errorf(lv.Pos, "%s is a %s, expected %s", lv.Name, sym.Kind, want)
		return
	}
	if len(lv.Indices) != len(sym.Dims) {
		c.errorf(lv.Pos, "%s has %d dimension(s), got %d index(es)", lv.Name, len(sym.Dims), len(lv.Indices))
	}
	for _, ix := range lv.Indices {
		c.dryExpr(ix)
	}
}

func (c *checker) dryExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.NumberLit:
	case *ast.UnaryExpr:
		c.dryExpr(e.X)
	case *ast.BinaryExpr:
		c.dryExpr(e.L)
		c.dryExpr(e.R)
	case *ast.LValue:
		c.lvalue(e, SymVar)
	default:
		panic(fmt.Sprintf("sema: unknown expression %T", e))
	}
}
