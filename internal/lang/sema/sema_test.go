package sema

import (
	"strings"
	"testing"

	"aquavol/internal/lang/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestCheckOK(t *testing.T) {
	info := mustCheck(t, `ASSAY ok START
fluid a, b, c;
VAR x, R[3];
c = MIX a AND b IN RATIOS 1:x FOR 10;
SENSE OPTICAL c INTO R[1];
END`)
	if info.Symbols["a"].Kind != SymFluid || info.Symbols["x"].Kind != SymVar {
		t.Fatal("symbol kinds wrong")
	}
	if info.Symbols["R"].Size() != 3 {
		t.Fatal("array size wrong")
	}
}

func TestUndeclared(t *testing.T) {
	wantErr(t, `ASSAY bad START
fluid a;
MIX a AND ghost FOR 10;
END`, "undeclared identifier ghost")
}

func TestRedeclared(t *testing.T) {
	wantErr(t, `ASSAY bad START
fluid a;
VAR a;
MIX a AND a FOR 10;
END`, "redeclared")
}

func TestKindMismatchFluidAsVar(t *testing.T) {
	wantErr(t, `ASSAY bad START
fluid a, b;
a = b + 1;
END`, "expected VAR")
}

func TestKindMismatchVarAsFluid(t *testing.T) {
	wantErr(t, `ASSAY bad START
fluid a; VAR x;
MIX a AND x FOR 10;
END`, "expected fluid")
}

func TestIndexArity(t *testing.T) {
	wantErr(t, `ASSAY bad START
fluid F[3]; VAR i;
MIX F[1][2] AND F[1] FOR 10;
END`, "dimension")
}

func TestSenseIntoMustBeVar(t *testing.T) {
	wantErr(t, `ASSAY bad START
fluid a, b;
SENSE OPTICAL a INTO b;
END`, "expected VAR")
}

func TestLoopVarAutoDeclared(t *testing.T) {
	info := mustCheck(t, `ASSAY loop START
fluid a, b;
FOR n FROM 1 TO 3 START
  MIX a AND b IN RATIOS 1:n FOR 10;
ENDFOR
END`)
	sym := info.Symbols["n"]
	if sym == nil || !sym.LoopVar {
		t.Fatal("loop variable not auto-declared")
	}
}

func TestLoopVarMustBeScalar(t *testing.T) {
	wantErr(t, `ASSAY bad START
fluid a, b; VAR R[3];
FOR R FROM 1 TO 3 START
  MIX a AND b FOR 10;
ENDFOR
END`, "dry scalar")
}

func TestNoExcessOnlyOnFluids(t *testing.T) {
	// The parser rejects NOEXCESS on VAR declarations.
	_, err := parser.Parse(`ASSAY bad START
NOEXCESS VAR x;
fluid a, b;
MIX a AND b FOR 1;
END`)
	if err == nil || !strings.Contains(err.Error(), "NOEXCESS") {
		t.Fatalf("want NOEXCESS error from parser, got %v", err)
	}
}

func TestNoExcessRecorded(t *testing.T) {
	info := mustCheck(t, `ASSAY ne START
NOEXCESS fluid precious;
fluid other;
MIX precious AND other FOR 5;
END`)
	if !info.Symbols["precious"].NoExcess || info.Symbols["other"].NoExcess {
		t.Fatal("NoExcess flags wrong")
	}
}
