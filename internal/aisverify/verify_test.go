package aisverify

import (
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/diag"
)

// verifySrc assembles src and verifies it with opts.
func verifySrc(t *testing.T, src string, opts Options) diag.List {
	t.Helper()
	prog, err := ais.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Verify(prog, opts)
}

func codesOf(l diag.List) map[string]diag.Severity {
	m := map[string]diag.Severity{}
	for _, d := range l {
		if _, seen := m[d.Code]; !seen {
			m[d.Code] = d.Severity
		}
	}
	return m
}

func wantCode(t *testing.T, l diag.List, code diag.Code, sev diag.Severity) {
	t.Helper()
	for _, d := range l {
		if d.Code == code.ID {
			if d.Severity != sev {
				t.Errorf("%s severity = %v, want %v (%v)", code.ID, d.Severity, sev, d)
			}
			return
		}
	}
	t.Errorf("missing %s in findings: %v", code.ID, l)
}

func TestVerifyCleanProgram(t *testing.T) {
	l := verifySrc(t, `input s1, ip1
move-abs mixer1, s1, 500
mix mixer1, 10
move sensor1, mixer1
sense.OD sensor1, r
halt`, Options{})
	if len(l) != 0 {
		t.Fatalf("clean program has findings: %v", l)
	}
}

func TestVerifyRanOutFromEmpty(t *testing.T) {
	l := verifySrc(t, `input s1, ip1
move-abs mixer1, s2, 10
halt`, Options{})
	wantCode(t, l, CodeRanOut, diag.Error)
}

func TestVerifyMaybeRanOutAtMerge(t *testing.T) {
	// One path drains 60 nl from s1, the other leaves it full; the
	// post-merge 60 nl draw fits the full path but not the drained one.
	l := verifySrc(t, `input s1, ip1
dry-mov r0, 1
dry-jz r0, skip
move-abs mixer1, s1, 600
skip:
move-abs sensor1, s1, 600
halt`, Options{})
	wantCode(t, l, CodeMaybeRanOut, diag.Warning)
	if _, hard := codesOf(l)[CodeRanOut.ID]; hard {
		t.Errorf("merge draw reported as definite ran-out: %v", l)
	}
}

func TestVerifyDefiniteOverflow(t *testing.T) {
	l := verifySrc(t, `input s1, ip1
move-abs mixer1, s1, 600
input s1, ip1
move-abs mixer1, s1, 600
halt`, Options{})
	wantCode(t, l, CodeOverflow, diag.Error)
}

func TestVerifyPossibleOverflowAtMerge(t *testing.T) {
	l := verifySrc(t, `input s1, ip1
dry-mov r0, 1
dry-jz r0, skip
move-abs mixer1, s1, 600
skip:
input s2, ip2
move-abs mixer1, s2, 600
halt`, Options{})
	wantCode(t, l, CodeMaybeOverflow, diag.Warning)
	if _, hard := codesOf(l)[CodeOverflow.ID]; hard {
		t.Errorf("merge overflow reported as definite: %v", l)
	}
}

func TestVerifyLeastCountViolations(t *testing.T) {
	// Sub-unit and non-integral move-abs volumes.
	for _, units := range []string{"0.5", "1.5"} {
		l := verifySrc(t, "input s1, ip1\nmove-abs mixer1, s1, "+units+"\nhalt", Options{})
		wantCode(t, l, CodeLeastCount, diag.Error)
	}
	// A planned table volume below the least count.
	prog, err := ais.Assemble("input s1, ip1\nmove mixer1, s1, 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	l := Verify(prog, Options{Volumes: ais.VolumeTable{1: 0.05}})
	wantCode(t, l, CodeLeastCount, diag.Error)
}

func TestVerifyOccupiedOutputPort(t *testing.T) {
	l := verifySrc(t, `input s1, ip1
move-abs separator1.out1, s1, 300
move-abs separator1.out1, s1, 300
halt`, Options{})
	wantCode(t, l, CodeOccupiedPort, diag.Error)
}

func TestVerifyUseBeforeDef(t *testing.T) {
	l := verifySrc(t, "dry-add r0, 1\nhalt", Options{})
	wantCode(t, l, CodeUseBeforeDef, diag.Error)
	// Presetting the register (the runtime's SetDry) silences it.
	l = verifySrc(t, "dry-add r0, 1\nhalt", Options{DefinedRegs: []string{"r0"}})
	if len(l) != 0 {
		t.Errorf("preset register still flagged: %v", l)
	}
}

func TestVerifyMaybeUndefinedAtMerge(t *testing.T) {
	l := verifySrc(t, `dry-mov c, 0
dry-jz c, skip
dry-mov x, 1
skip:
dry-mov y, x
halt`, Options{})
	wantCode(t, l, CodeMaybeUndef, diag.Warning)
	if _, hard := codesOf(l)[CodeUseBeforeDef.ID]; hard {
		t.Errorf("partially-defined register reported as never-defined: %v", l)
	}
}

func TestVerifyUnreachable(t *testing.T) {
	l := verifySrc(t, "halt\nnop\nnop\nhalt", Options{})
	wantCode(t, l, CodeUnreachable, diag.Warning)
	n := 0
	for _, d := range l {
		if d.Code == CodeUnreachable.ID {
			n++
		}
	}
	if n != 1 {
		t.Errorf("contiguous unreachable run reported %d times, want once: %v", n, l)
	}
}

func TestVerifySeparationWithoutMatrix(t *testing.T) {
	l := verifySrc(t, `input s1, ip1
move separator1, s1
separate.AF separator1, 30
halt`, Options{})
	wantCode(t, l, CodeNoMatrix, diag.Warning)
	// Loading the matrix first silences it.
	l = verifySrc(t, `input s1, ip1
input s2, ip2
move separator1.matrix, s2
move separator1, s1
separate.AF separator1, 30
halt`, Options{})
	if _, found := codesOf(l)[CodeNoMatrix.ID]; found {
		t.Errorf("loaded matrix still flagged: %v", l)
	}
}

func TestVerifyEmptySense(t *testing.T) {
	l := verifySrc(t, "sense.OD sensor1, r0\nhalt", Options{})
	wantCode(t, l, CodeEmptySense, diag.Warning)
}

func TestVerifyMalformed(t *testing.T) {
	for _, src := range []string{
		"mix mixer1\nhalt",          // missing mix time
		"move s1, r0\nhalt",         // register as move source
		"input s1, s2\nhalt",        // reservoir as input port
		"sense.OD sensor1, 3\nhalt", // immediate as sense target
	} {
		l := verifySrc(t, src, Options{})
		wantCode(t, l, CodeMalformed, diag.Error)
	}
}

// A dry loop that repeatedly tops up a reservoir must reach a fixpoint
// and not report spurious definite errors.
func TestVerifyLoopTerminates(t *testing.T) {
	l := verifySrc(t, `dry-mov i, 3
top:
input s1, ip1
move-abs mixer1, s1, 100
output op1, mixer1
dry-sub i, 1
dry-jz i, done
dry-jmp top
done:
halt`, Options{})
	for _, d := range l {
		if d.Severity == diag.Error {
			t.Fatalf("loop program has definite error: %v", d)
		}
	}
}

// The separation model follows the machine's deterministic yield: the
// effluent of a full separation is exactly yield × load.
func TestVerifySeparationYieldModel(t *testing.T) {
	// 100 nl in, 0.4 yield → out1 = 40 nl; drawing 40 nl is clean,
	// drawing 50 nl definitely runs out.
	prog, err := ais.Assemble(`input s1, ip1
move separator1, s1
separate.SIZE separator1, 10
move-abs mixer1, separator1.out1, 400
halt`)
	if err != nil {
		t.Fatal(err)
	}
	if l := Verify(prog, Options{}); len(l) != 0 {
		t.Fatalf("exact-yield draw flagged: %v", l)
	}
	prog, err = ais.Assemble(`input s1, ip1
move separator1, s1
separate.SIZE separator1, 10
move-abs mixer1, separator1.out1, 500
halt`)
	if err != nil {
		t.Fatal(err)
	}
	wantCode(t, Verify(prog, Options{}), CodeRanOut, diag.Error)
}

// UnknownVolumes (staged §3.5 assays) suppresses the possible-severity
// checks for runtime-resolved volumes: a verifier for artifacts whose
// volumes arrive at run time cannot cry wolf on every move.
func TestVerifyUnknownVolumesQuiet(t *testing.T) {
	prog := &ais.Program{Labels: map[string]int{}, Instrs: []ais.Instr{
		{Op: ais.Input, Operands: []ais.Operand{ais.Res(1), ais.IP(1)}, Edge: -1, Node: 3},
		{Op: ais.Move, Operands: []ais.Operand{ais.FU("mixer1"), ais.Res(1), ais.Num(0.5)}, Edge: 7, Node: -1},
		{Op: ais.Mix, Operands: []ais.Operand{ais.FU("mixer1"), ais.Num(10)}, Edge: -1, Node: -1},
		{Op: ais.Halt, Edge: -1, Node: -1},
	}}
	if l := Verify(prog, Options{UnknownVolumes: true}); len(l) != 0 {
		t.Fatalf("unknown-volume program has findings: %v", l)
	}
}
