package aisverify_test

import (
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/aisverify"
	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/diag"
	"aquavol/internal/lang"
)

// The differential contract of the verifier, direction one: a program the
// verifier passes must simulate event-free. Every example assay compiles,
// verifies with zero findings, and runs on the machine with zero volume
// events.
func TestVerifierCleanProgramsSimulateClean(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"glucose", assays.GlucoseSource},
		{"glycomics", assays.GlycomicsSource},
		{"enzyme2", assays.EnzymeSource(2)},
		{"enzyme4", assays.EnzymeSource(4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ep, err := lang.Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig()
			opts := aisverify.Options{}
			for name := range codegen.DryInit(ep) {
				opts.DefinedRegs = append(opts.DefinedRegs, name)
			}

			g := ep.Graph
			hasUnknown := false
			for _, n := range g.Nodes() {
				if n != nil && n.Unknown && !n.IsLeaf() {
					hasUnknown = true
				}
			}
			var source aquacore.VolumeSource
			usedLP := false
			if hasUnknown {
				sp, err := core.NewStagedPlan(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				source, err = aquacore.NewStagedSource(sp, nil)
				if err != nil {
					t.Fatal(err)
				}
				opts.UnknownVolumes = true
				usedLP = true
			} else {
				res, err := core.Manage(g, cfg, core.ManageOptions{SkipLP: true})
				if err != nil {
					t.Fatal(err)
				}
				g = res.Graph
				ps := aquacore.PlanSource{Plan: res.Plan}
				source = ps
				opts.NodeVolume = ps.NodeVolume
				usedLP = res.UsedLP
			}

			cg, err := codegen.Generate(ep, g, codegen.Config{NoForwarding: usedLP})
			if err != nil {
				t.Fatal(err)
			}
			if !hasUnknown {
				ps := source.(aquacore.PlanSource)
				opts.Volumes, err = cg.VolumeTable(ps.EdgeVolume)
				if err != nil {
					t.Fatal(err)
				}
			}

			if findings := aisverify.Verify(cg.Prog, opts); len(findings) != 0 {
				t.Fatalf("verifier findings on %s:\n%v", tc.name, findings)
			}

			m := aquacore.New(aquacore.Config{}, g, source)
			m.SetDry(codegen.DryInit(ep))
			res, err := m.Run(cg.Prog)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Clean() {
				t.Fatalf("simulation events (%d): first %v", len(res.Events), res.Events[0])
			}
		})
	}
}

// Direction two: every error-severity AIS0xx code has a witness program
// that the verifier flags and whose simulation actually faults (a volume
// event or a machine error). Warning codes flag conditions the machine
// tolerates and so have no fault obligation.
func TestErrorCodesHaveFaultingWitnesses(t *testing.T) {
	witnesses := []struct {
		code diag.Code
		src  string
		tab  ais.VolumeTable
	}{
		{aisverify.CodeRanOut, // draw from a never-filled reservoir
			"input s1, ip1\nmove-abs mixer1, s2, 10\nhalt", nil},
		{aisverify.CodeOverflow, // 60 nl + 60 nl into one 100 nl mixer
			"input s1, ip1\nmove-abs mixer1, s1, 600\ninput s1, ip1\nmove-abs mixer1, s1, 600\nhalt", nil},
		{aisverify.CodeLeastCount, // half a least-count unit
			"input s1, ip1\nmove-abs mixer1, s1, 0.5\nhalt", nil},
		{aisverify.CodeOccupiedPort, // refill an output port that still holds fluid
			"input s1, ip1\nmove-abs separator1.out1, s1, 600\nmove-abs separator1.out1, s1, 600\nhalt", nil},
		{aisverify.CodeUseBeforeDef, // dry arithmetic on an unset register
			"dry-add r0, 1\nhalt", nil},
		{aisverify.CodeMalformed, // a register where a vessel belongs
			"move s1, r0\nhalt", nil},
	}
	for _, w := range witnesses {
		t.Run(w.code.ID, func(t *testing.T) {
			prog, err := ais.Assemble(w.src)
			if err != nil {
				t.Fatal(err)
			}
			flagged := false
			for _, d := range aisverify.Verify(prog, aisverify.Options{Volumes: w.tab}) {
				if d.Code == w.code.ID && d.Severity == diag.Error {
					flagged = true
				}
			}
			if !flagged {
				t.Fatalf("verifier does not flag %s on its witness", w.code)
			}

			m := aquacore.New(aquacore.Config{}, nil, nil)
			if w.tab != nil {
				m.SetVolumeTable(w.tab)
			}
			res, err := m.Run(prog)
			if err == nil && res.Clean() {
				t.Fatalf("witness for %s simulates clean — no fault to predict", w.code)
			}
		})
	}
}
