package aisverify

// itv is a closed volume interval [lo, hi] in nanoliters. The zero value
// is the definitely-empty vessel.
type itv struct {
	lo, hi float64
}

func exact(v float64) itv { return itv{v, v} }

// state is the abstract AquaCore machine state at one program point:
// per-vessel volume intervals plus the definedness of dry registers.
// Vessels absent from the map are definitely empty (the machine's
// initial condition).
type state struct {
	vessels map[string]itv
	// must holds registers defined on every path here; may holds
	// registers defined on at least one path. must ⊆ may.
	must, may map[string]bool
}

func newState() *state {
	return &state{
		vessels: map[string]itv{},
		must:    map[string]bool{},
		may:     map[string]bool{},
	}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.vessels {
		c.vessels[k] = v
	}
	for k := range s.must {
		c.must[k] = true
	}
	for k := range s.may {
		c.may[k] = true
	}
	return c
}

func (s *state) get(name string) itv { return s.vessels[name] }

func (s *state) set(name string, v itv) {
	if v.lo < 0 {
		v.lo = 0
	}
	if v.hi < v.lo {
		v.hi = v.lo
	}
	s.vessels[name] = v
}

func (s *state) define(reg string) {
	s.must[reg] = true
	s.may[reg] = true
}

// join widens s to cover other (interval hull, must-intersection,
// may-union), reporting whether s changed.
func (s *state) join(other *state) bool {
	changed := false
	for k, ov := range other.vessels {
		v, ok := s.vessels[k]
		if !ok {
			v = itv{} // absent = definitely empty
		}
		if ov.lo < v.lo {
			v.lo = ov.lo
			changed = true
		}
		if ov.hi > v.hi {
			v.hi = ov.hi
			changed = true
		}
		if !ok {
			changed = changed || v != (itv{})
		}
		s.vessels[k] = v
	}
	// Vessels known here but absent in other join with definitely-empty.
	for k, v := range s.vessels {
		if _, ok := other.vessels[k]; !ok && v.lo > 0 {
			v.lo = 0
			s.vessels[k] = v
			changed = true
		}
	}
	for k := range s.must {
		if !other.must[k] {
			delete(s.must, k)
			changed = true
		}
	}
	for k := range other.may {
		if !s.may[k] {
			s.may[k] = true
			changed = true
		}
	}
	return changed
}

// widen pushes every vessel interval to its extreme bounds, guaranteeing
// the fixpoint terminates on volume-accumulating loops. capLimit bounds
// the hi side (anything above machine capacity is already an overflow).
func (s *state) widen(capLimit float64) {
	for k, v := range s.vessels {
		v.lo = 0
		if v.hi > 0 {
			v.hi = capLimit
		}
		s.vessels[k] = v
	}
}
