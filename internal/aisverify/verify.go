// Package aisverify is an instruction-level volume-safety verifier for
// compiled AIS programs — the bytecode-verifier counterpart of the
// source-level analyzer in internal/analysis. It builds a control-flow
// graph over the program (labels, dry-jz, fallthrough), then runs a
// forward abstract interpretation of AquaCore machine state to a
// fixpoint: per-vessel volume intervals in nanoliters, joined at merge
// points, plus the definedness of dry registers and the functional-unit
// port protocol (separate.AF needs a loaded matrix, sense.* a non-empty
// chamber).
//
// A program hand-written, assembled from text, or emitted by
// internal/codegen can move from an empty reservoir, overflow a vessel
// past MaxCapacity, or dispense below the least count — failures the
// run-time volume table only catches during execution (§2.1 of the
// paper). The verifier reports them as internal/diag diagnostics with
// stable AIS0xx codes before any fluid moves.
package aisverify

import (
	"fmt"
	"math"

	"aquavol/internal/ais"
	"aquavol/internal/core"
	"aquavol/internal/diag"
	"aquavol/internal/lang/token"
)

// Verifier diagnostic codes, minted through the internal/diag registry.
// Error codes (AIS001, 003, 005, 006, 007, 012) each have a
// differential-test witness program whose simulation faults; warning
// codes flag conditions the machine tolerates. Every emit site uses the
// registered default severity.
var (
	// CodeRanOut: a move definitely draws more than its source can hold
	// (including any positive draw from a definitely-empty vessel).
	CodeRanOut = diag.MustRegister("AIS001", diag.Error,
		"move definitely draws more than its source holds", "README.md#ais-verification-aisverify")
	// CodeMaybeRanOut: a move may draw more than its source holds.
	CodeMaybeRanOut = diag.MustRegister("AIS002", diag.Warning,
		"move may draw more than its source holds", "README.md#ais-verification-aisverify")
	// CodeOverflow: a destination vessel definitely exceeds MaxCapacity.
	CodeOverflow = diag.MustRegister("AIS003", diag.Error,
		"destination vessel definitely exceeds MaxCapacity", "README.md#ais-verification-aisverify")
	// CodeMaybeOverflow: a destination vessel may exceed MaxCapacity.
	CodeMaybeOverflow = diag.MustRegister("AIS004", diag.Warning,
		"destination vessel may exceed MaxCapacity", "README.md#ais-verification-aisverify")
	// CodeLeastCount: a dispensed volume violates the least-count
	// resolution (unaligned or sub-least-count move-abs, or a volume
	// table entry below the least count).
	CodeLeastCount = diag.MustRegister("AIS005", diag.Error,
		"dispensed volume violates the least-count resolution", "README.md#ais-verification-aisverify")
	// CodeOccupiedPort: a wet write to a separator output port that
	// still holds fluid from a previous operation.
	CodeOccupiedPort = diag.MustRegister("AIS006", diag.Error,
		"wet write to a separator output port that still holds fluid", "README.md#ais-verification-aisverify")
	// CodeUseBeforeDef: a dry register read with no prior definition on
	// any path.
	CodeUseBeforeDef = diag.MustRegister("AIS007", diag.Error,
		"dry register read with no prior definition on any path", "README.md#ais-verification-aisverify")
	// CodeMaybeUndef: a dry register read that is undefined on some path.
	CodeMaybeUndef = diag.MustRegister("AIS008", diag.Warning,
		"dry register read undefined on some path", "README.md#ais-verification-aisverify")
	// CodeUnreachable: instructions no control-flow path reaches.
	CodeUnreachable = diag.MustRegister("AIS009", diag.Warning,
		"instruction is unreachable", "README.md#ais-verification-aisverify")
	// CodeNoMatrix: an affinity/LC separation whose matrix port is
	// definitely empty.
	CodeNoMatrix = diag.MustRegister("AIS010", diag.Warning,
		"separation whose matrix port is definitely empty", "README.md#ais-verification-aisverify")
	// CodeEmptySense: a sense on a definitely-empty sensor chamber.
	CodeEmptySense = diag.MustRegister("AIS011", diag.Warning,
		"sense on a definitely-empty sensor chamber", "README.md#ais-verification-aisverify")
	// CodeMalformed: an instruction whose operands do not fit its opcode
	// (wrong count or kind, undefined label).
	CodeMalformed = diag.MustRegister("AIS012", diag.Error,
		"instruction operands do not fit its opcode", "README.md#ais-verification-aisverify")
)

// Options configures verification. The zero value verifies a standalone
// listing exactly as `aquacore` executes one with no DAG or volume
// source attached.
type Options struct {
	// Config supplies MaxCapacity and LeastCount. Zero selects
	// core.DefaultConfig().
	Config core.Config
	// Volumes is the per-instruction absolute volume table (the shipped
	// companion of a listing, or one built from a static plan). Entries
	// take precedence over edge annotations, mirroring the machine.
	Volumes ais.VolumeTable
	// NodeVolume resolves the planned load volume of node-annotated
	// input instructions (plan.NodeVolume). Nil means inputs load full
	// capacity, the machine's sourceless behavior.
	NodeVolume func(nodeID int) (float64, bool)
	// UnknownVolumes marks programs whose volumes are assigned at run
	// time (§3.5 staged assays): edge-annotated moves and input loads
	// become unknown intervals and the possible-severity checks are
	// suppressed for them.
	UnknownVolumes bool
	// DefinedRegs lists dry registers defined before entry (the
	// compile-time Init values the runtime presets via SetDry).
	DefinedRegs []string
	// SeparationYield is the effluent fraction the machine's separations
	// produce. 0 selects the machine default 0.4.
	SeparationYield float64
	// ConcentrateYield is the volume fraction surviving concentration.
	// 0 selects the machine default 0.5.
	ConcentrateYield float64
}

// eps matches the machine's volume tolerance (volTol in aquacore).
const eps = 1e-6

type verifier struct {
	prog  *ais.Program
	opts  Options
	cap   float64
	lc    float64
	limit float64 // interval ceiling, > cap so overflow stays visible
	out   diag.List
}

// Verify checks p and returns its findings in program order: structural
// errors first (which, when present, suppress the dataflow passes), then
// dataflow findings by instruction index, then unreachable-code runs.
//
// Verify is certified parallel-safe: concurrent verifications are
// race-free provided any caller-supplied Options.NodeVolume callback is.
//
//fluidvet:parallelsafe
func Verify(p *ais.Program, opts Options) diag.List {
	if opts.Config.MaxCapacity == 0 {
		opts.Config = core.DefaultConfig()
	}
	if opts.SeparationYield == 0 {
		opts.SeparationYield = 0.4
	}
	if opts.ConcentrateYield == 0 {
		opts.ConcentrateYield = 0.5
	}
	v := &verifier{
		prog:  p,
		opts:  opts,
		cap:   opts.Config.MaxCapacity,
		lc:    opts.Config.LeastCount,
		limit: 4 * opts.Config.MaxCapacity,
	}
	if !v.structural() {
		return v.out
	}
	if len(p.Instrs) == 0 {
		return v.out
	}
	states := v.fixpoint()
	for pc := range p.Instrs {
		if states[pc] == nil {
			continue
		}
		v.transfer(pc, states[pc].clone(), v.emit)
	}
	v.unreachable(states)
	return v.out
}

// emit records a finding anchored to the instruction at pc, at the
// code's registered default severity.
func (v *verifier) emit(pc int, code diag.Code, format string, args ...any) {
	in := v.prog.Instrs[pc]
	pos := token.Pos{}
	if in.Line > 0 {
		pos = token.Pos{Line: in.Line, Col: 1}
	}
	v.out = append(v.out, code.New(pos,
		"pc %d (%s): %s", pc, in, fmt.Sprintf(format, args...)))
}

type emitFn func(pc int, code diag.Code, format string, args ...any)

func nop(int, diag.Code, string, ...any) {}

// vesselKind reports whether an operand names a fluid container.
func vesselKind(o ais.Operand) bool {
	return o.Kind == ais.Reservoir || o.Kind == ais.Unit
}

func vesselName(o ais.Operand) string {
	if o.Sub != "" {
		return o.Name + "." + o.Sub
	}
	return o.Name
}

// structural validates operand shapes and label references (AIS012),
// returning false when the program is too malformed to interpret.
func (v *verifier) structural() bool {
	ok := true
	bad := func(pc int, format string, args ...any) {
		v.emit(pc, CodeMalformed, format, args...)
		ok = false
	}
	label := func(pc int, o ais.Operand) {
		if o.Kind != ais.Label {
			bad(pc, "operand %s is not a label", o)
			return
		}
		if _, defined := v.prog.Labels[o.Name]; !defined {
			bad(pc, "undefined label %q", o.Name)
		}
	}
	for pc, in := range v.prog.Instrs {
		ops := in.Operands
		want := func(n int) bool {
			if len(ops) != n {
				bad(pc, "%s takes %d operands, got %d", in.Op, n, len(ops))
				return false
			}
			return true
		}
		vessel := func(i int) {
			if !vesselKind(ops[i]) {
				bad(pc, "operand %s is not a vessel", ops[i])
			}
		}
		reg := func(i int) {
			if ops[i].Kind != ais.DryReg {
				bad(pc, "operand %s is not a dry register", ops[i])
			}
		}
		num := func(i int) {
			if ops[i].Kind != ais.Imm {
				bad(pc, "operand %s is not a number", ops[i])
			}
		}
		switch in.Op {
		case ais.Nop, ais.Halt:
			want(0)
		case ais.Move:
			if len(ops) != 2 && len(ops) != 3 {
				bad(pc, "move takes 2 or 3 operands, got %d", len(ops))
				continue
			}
			vessel(0)
			vessel(1)
			if len(ops) == 3 {
				num(2)
			}
		case ais.MoveAbs:
			if want(3) {
				vessel(0)
				vessel(1)
				num(2)
			}
		case ais.Input:
			if want(2) {
				vessel(0)
				if ops[1].Kind != ais.InPort {
					bad(pc, "operand %s is not an input port", ops[1])
				}
			}
		case ais.Output:
			if want(2) {
				if ops[0].Kind != ais.OutPort {
					bad(pc, "operand %s is not an output port", ops[0])
				}
				vessel(1)
			}
		case ais.Mix:
			if want(2) {
				vessel(0)
				num(1)
			}
		case ais.Incubate, ais.Concentrate:
			if want(3) {
				vessel(0)
				num(1)
				num(2)
			}
		case ais.SeparateCE, ais.SeparateSize, ais.SeparateAF, ais.SeparateLC:
			if want(2) {
				if ops[0].Kind != ais.Unit || ops[0].Sub != "" {
					bad(pc, "operand %s is not a separator unit", ops[0])
				}
				num(1)
			}
		case ais.SenseOD, ais.SenseFL:
			if want(2) {
				vessel(0)
				reg(1)
			}
		case ais.DryMov, ais.DryAdd, ais.DrySub, ais.DryMul, ais.DryDiv,
			ais.DryMod, ais.DryLT, ais.DryLE, ais.DryEQ:
			if want(2) {
				reg(0)
				if ops[1].Kind != ais.DryReg && ops[1].Kind != ais.Imm {
					bad(pc, "operand %s is not a register or immediate", ops[1])
				}
			}
		case ais.DryNot:
			if want(1) {
				reg(0)
			}
		case ais.DryJZ:
			if want(2) {
				reg(0)
				label(pc, ops[1])
			}
		case ais.DryJump:
			if want(1) {
				label(pc, ops[0])
			}
		default:
			bad(pc, "unknown opcode %v", in.Op)
		}
	}
	return ok
}

// fixpoint computes the abstract in-state of every reachable pc.
func (v *verifier) fixpoint() []*state {
	n := len(v.prog.Instrs)
	states := make([]*state, n)
	joins := make([]int, n)
	entry := newState()
	for _, r := range v.opts.DefinedRegs {
		entry.define(r)
	}
	states[0] = entry
	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		inWork[pc] = false
		st := states[pc].clone()
		v.transfer(pc, st, nop)
		for _, s := range succs(v.prog, pc) {
			var changed bool
			if states[s] == nil {
				states[s] = st.clone()
				changed = true
			} else {
				changed = states[s].join(st)
				if changed {
					joins[s]++
					// Widen volume-accumulating loops so the fixpoint
					// terminates; 64 joins is far beyond any precise
					// convergence the examples need.
					if joins[s] > 64 {
						states[s].widen(v.limit)
					}
				}
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return states
}

// transfer interprets the instruction at pc over st, reporting findings
// through emit. It mirrors aquacore's concrete semantics: same volume
// resolution order, same clamping, same tolerances.
func (v *verifier) transfer(pc int, st *state, emit emitFn) {
	in := v.prog.Instrs[pc]
	switch in.Op {
	case ais.Nop, ais.Halt, ais.Mix, ais.Incubate,
		ais.DryJump:
		// No volume or register effects (mix/incubate act in place).
	case ais.Input:
		dst := vesselName(in.Operands[0])
		load := exact(v.cap)
		switch {
		case v.opts.UnknownVolumes:
			load = itv{0, v.cap}
		case in.Node >= 0 && v.opts.NodeVolume != nil:
			if nv, ok := v.opts.NodeVolume(in.Node); ok {
				load = exact(math.Min(nv, v.cap))
			}
		}
		st.set(dst, load) // the machine clears, then fills
	case ais.Move, ais.MoveAbs:
		v.move(pc, in, st, emit)
	case ais.Output:
		src := vesselName(in.Operands[1])
		cur := st.get(src)
		if tab, ok := v.opts.Volumes[pc]; ok {
			st.set(src, itv{cur.lo - tab, cur.hi - tab})
		} else if in.Edge >= 0 {
			st.set(src, itv{0, cur.hi}) // runtime-resolved draw
		} else {
			st.set(src, itv{}) // whole-vessel drain
		}
	case ais.Concentrate:
		unit := vesselName(in.Operands[0])
		cur := st.get(unit)
		st.set(unit, itv{cur.lo * v.opts.ConcentrateYield, cur.hi * v.opts.ConcentrateYield})
	case ais.SeparateCE, ais.SeparateSize, ais.SeparateAF, ais.SeparateLC:
		unit := in.Operands[0].Name
		if in.Op == ais.SeparateAF || in.Op == ais.SeparateLC {
			if m := st.get(unit + ".matrix"); m.hi <= eps {
				emit(pc, CodeNoMatrix,
					"%s requires a loaded matrix but %s.matrix is empty", in.Op, unit)
			}
		}
		cur := st.get(unit)
		y := v.opts.SeparationYield
		st.set(unit+".out1", itv{cur.lo * y, cur.hi * y})
		st.set(unit+".out2", itv{cur.lo * (1 - y), cur.hi * (1 - y)})
		st.set(unit, itv{})
		st.set(unit+".matrix", itv{})
		st.set(unit+".pusher", itv{})
	case ais.SenseOD, ais.SenseFL:
		unit := vesselName(in.Operands[0])
		if c := st.get(unit); c.hi <= eps {
			emit(pc, CodeEmptySense,
				"%s reads a definitely-empty chamber %s", in.Op, unit)
		}
		st.define(in.Operands[1].Name)
		st.set(unit, itv{}) // sensing consumes the sample
	case ais.DryMov:
		v.read(pc, in.Operands[1], st, emit)
		st.define(in.Operands[0].Name)
	case ais.DryAdd, ais.DrySub, ais.DryMul, ais.DryDiv,
		ais.DryMod, ais.DryLT, ais.DryLE, ais.DryEQ:
		v.read(pc, in.Operands[1], st, emit)
		v.read(pc, in.Operands[0], st, emit)
		st.define(in.Operands[0].Name)
	case ais.DryNot:
		v.read(pc, in.Operands[0], st, emit)
	case ais.DryJZ:
		v.read(pc, in.Operands[0], st, emit)
	}
}

// read checks a dry-register read against the definedness lattice.
func (v *verifier) read(pc int, o ais.Operand, st *state, emit emitFn) {
	if o.Kind != ais.DryReg {
		return
	}
	switch {
	case !st.may[o.Name]:
		emit(pc, CodeUseBeforeDef,
			"dry register %q is read but never defined before this point", o.Name)
		// Define it so one missing definition reports once, not at
		// every subsequent use.
		st.define(o.Name)
	case !st.must[o.Name]:
		emit(pc, CodeMaybeUndef,
			"dry register %q may be undefined on some path", o.Name)
		st.define(o.Name)
	}
}

// move interprets move/move-abs: resolve the transported volume the way
// the machine does, check it against source contents, least count,
// destination capacity, and the output-port protocol, then update both
// vessel intervals.
func (v *verifier) move(pc int, in ais.Instr, st *state, emit emitFn) {
	dstName := vesselName(in.Operands[0])
	srcName := vesselName(in.Operands[1])
	if dstName == srcName {
		return // self-move: the machine draws and re-adds, net zero
	}
	src := st.get(srcName)
	var vol itv
	// known marks a statically-determined transfer volume. Under
	// UnknownVolumes every vessel's contents are transitively tainted by
	// runtime-resolved loads, so the possible-severity (hi-bound) checks
	// are suppressed wholesale; the definite (lo-bound) checks stay sound.
	known := !v.opts.UnknownVolumes
	whole := false
	tab, hasTab := v.opts.Volumes[pc]
	switch {
	case in.Op == ais.MoveAbs:
		units := in.Operands[2].Value
		if units < 0 {
			emit(pc, CodeLeastCount, "negative move-abs volume %g", units)
			units = 0
		} else if units > eps && (units < 1-eps || math.Abs(units-math.Round(units)) > 1e-9) {
			emit(pc, CodeLeastCount,
				"move-abs of %g least-count units is not a positive integral multiple of the %.4g nl least count",
				units, v.lc)
		}
		vol = exact(units * v.lc)
	case hasTab:
		if tab > eps && tab < v.lc-1e-9 {
			emit(pc, CodeLeastCount,
				"planned volume %.4g nl is below the %.4g nl least count", tab, v.lc)
		}
		vol = exact(tab)
	case in.Edge >= 0:
		// Runtime-resolved volume (a plan or staged source supplies it).
		vol = itv{0, v.cap}
		known = false
	default:
		vol = src
		whole = true
	}

	if !whole {
		if vol.lo > src.hi+eps {
			emit(pc, CodeRanOut,
				"move needs %.4g nl but %s holds at most %.4g nl", vol.lo, srcName, src.hi)
		} else if known && vol.hi > src.lo+eps {
			emit(pc, CodeMaybeRanOut,
				"move of %.4g nl may exceed %s's contents (as little as %.4g nl)", vol.hi, srcName, src.lo)
		}
	} else if src.lo > eps && src.hi < v.lc-1e-9 {
		emit(pc, CodeLeastCount,
			"whole-vessel move of %s dispenses at most %.4g nl, below the %.4g nl least count",
			srcName, src.hi, v.lc)
	}

	if o := in.Operands[0]; o.Kind == ais.Unit && (o.Sub == "out1" || o.Sub == "out2") {
		if dst := st.get(dstName); dst.lo > eps {
			emit(pc, CodeOccupiedPort,
				"write to output port %s which still holds at least %.4g nl", dstName, dst.lo)
		}
	}

	moved := itv{math.Min(vol.lo, src.lo), math.Min(vol.hi, src.hi)}
	dst := st.get(dstName)
	after := itv{dst.lo + moved.lo, dst.hi + moved.hi}
	if after.lo > v.cap+eps {
		emit(pc, CodeOverflow,
			"%s reaches at least %.4g nl, exceeding capacity %.4g nl", dstName, after.lo, v.cap)
	} else if (known || (whole && !v.opts.UnknownVolumes)) && after.hi > v.cap+eps {
		emit(pc, CodeMaybeOverflow,
			"%s may reach %.4g nl, exceeding capacity %.4g nl", dstName, after.hi, v.cap)
	}
	if after.hi > v.limit {
		after.hi = v.limit
	}
	st.set(dstName, after)
	st.set(srcName, itv{src.lo - moved.hi, src.hi - moved.lo})
}

// unreachable reports contiguous runs of instructions the CFG never
// reaches (AIS009).
func (v *verifier) unreachable(states []*state) {
	for pc := 0; pc < len(states); pc++ {
		if states[pc] != nil {
			continue
		}
		end := pc
		for end+1 < len(states) && states[end+1] == nil {
			end++
		}
		if end > pc {
			v.emit(pc, CodeUnreachable,
				"unreachable instructions (pc %d through %d)", pc, end)
		} else {
			v.emit(pc, CodeUnreachable, "unreachable instruction")
		}
		pc = end
	}
}
