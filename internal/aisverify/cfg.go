package aisverify

import "aquavol/internal/ais"

// succs returns the control-flow successors of pc, already filtered to
// in-range instruction indices (labels at len(instrs) and fallthrough off
// the end are the program exit). The program must have passed the
// structural pass, so jump labels are known to resolve.
func succs(p *ais.Program, pc int) []int {
	in := p.Instrs[pc]
	var out []int
	add := func(target int) {
		if target >= 0 && target < len(p.Instrs) {
			out = append(out, target)
		}
	}
	switch in.Op {
	case ais.Halt:
	case ais.DryJump:
		add(p.Labels[in.Operands[0].Name])
	case ais.DryJZ:
		add(pc + 1)
		add(p.Labels[in.Operands[1].Name])
	default:
		add(pc + 1)
	}
	return out
}
