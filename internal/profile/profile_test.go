package profile_test

import (
	"math"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
	"aquavol/internal/profile"
)

// A profiling run on the glycomics assay recovers the simulated
// separation yield for all three unknown separations.
func TestProfileRecoversYields(t *testing.T) {
	ep, err := lang.Compile(assays.GlycomicsSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	y, err := profile.Run(ep, cfg, aquacore.Config{SeparationYield: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 3 {
		t.Fatalf("profiled yields = %d, want 3 separations: %v", len(y), y)
	}
	for id, frac := range y {
		if math.Abs(frac-0.35) > 1e-6 {
			t.Errorf("node %d yield = %v, want 0.35", id, frac)
		}
	}
}

// Applying profiled hints removes the unknowns, so the assay plans fully
// at compile time (no partitioning). A side-finding this test documents:
// the END-TO-END dynamic range of glycomics (three 0.5-yield separations
// chained with 1:10 and 1:100 dilutions) exceeds maxCap/leastCount at the
// paper's 0.1 nl resolution, so whole-DAG planning underflows where the
// staged scheme — which re-normalizes to a fresh 100 nl at every measured
// boundary — succeeded. At a 10 pl least count the hinted static plan is
// feasible and executes cleanly against matching hardware.
func TestProfileHintsMakeAssayStatic(t *testing.T) {
	ep, err := lang.Compile(assays.GlycomicsSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	y, err := profile.Run(ep, cfg, aquacore.Config{SeparationYield: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := profile.Apply(ep.Graph, y)
	if err != nil {
		t.Fatal(err)
	}
	// No unknowns left → direct DAGSolve works (no ErrNeedsPartition)...
	plan, err := core.DAGSolve(hinted, cfg, nil)
	if err != nil {
		t.Fatalf("hinted assay should solve without partitioning: %v", err)
	}
	// ...but at 0.1 nl resolution the chained yields underflow:
	if plan.Feasible() {
		t.Log("note: hinted plan feasible at 0.1 nl (unexpected but fine)")
	}

	// At 10 pl least count the static plan is feasible end to end.
	fine := cfg
	fine.LeastCount = 0.01
	plan, err = core.DAGSolve(hinted, fine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("hinted plan infeasible even at 10 pl: %v", plan.Underflows)
	}
	cg, err := codegen.Generate(ep, hinted, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mc := aquacore.Config{SeparationYield: 0.5}
	mc.Volume = fine
	m := aquacore.New(mc, hinted, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("events: %v", res.Events)
	}
}

// If the real hardware under-yields relative to the profile, the static
// plan's draws exceed what the separations produce: the run reports
// ran-out events — the risk the paper's conservative run-time scheme
// avoids.
func TestProfileMismatchCausesRanOut(t *testing.T) {
	ep, err := lang.Compile(assays.GlycomicsSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	y, err := profile.Run(ep, cfg, aquacore.Config{SeparationYield: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := profile.Apply(ep.Graph, y)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(hinted, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, hinted, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{SeparationYield: 0.3}, hinted, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	ranOut := 0
	for _, e := range res.Events {
		if e.Kind == aquacore.EventRanOut {
			ranOut++
		}
	}
	if ranOut == 0 {
		t.Fatal("expected ran-out events when hardware under-yields vs the profile")
	}
}

func TestApplyValidation(t *testing.T) {
	g := assays.GlycomicsDAG()
	if _, err := profile.Apply(g, profile.Yields{9999: 0.5}); err == nil {
		t.Error("want error for missing node")
	}
	sep := g.NodeByName("sep1")
	if _, err := profile.Apply(g, profile.Yields{sep.ID(): 1.5}); err == nil {
		t.Error("want error for yield outside (0,1)")
	}
	// Apply must not mutate the input graph.
	if _, err := profile.Apply(g, profile.Yields{sep.ID(): 0.4}); err != nil {
		t.Fatal(err)
	}
	if !g.NodeByName("sep1").Unknown {
		t.Error("Apply mutated the original graph")
	}
}
