// Package profile closes the §3.5 hint loop: the paper notes that
// programmer hints about unknown output volumes can come "from any source
// including, but not limited to, human expertise, profiling runs and
// prediction." This package implements the profiling-run source: execute
// the assay once on the simulator, record the measured output-to-input
// fraction of every unknown-volume operation, and apply those fractions
// as static hints — after which the whole assay plans at compile time
// (partitioning disappears), at the cost of trusting the profile.
package profile

import (
	"fmt"

	"aquavol/internal/aquacore"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/lang/elab"
)

// Yields maps unknown-volume node ids to their measured output/input
// fractions.
type Yields map[int]float64

// recorder wraps a StagedSource and records per-node yields as the
// machine reports measurements.
type recorder struct {
	inner  aquacore.VolumeSource
	g      *dag.Graph
	inputs map[int]float64 // planned input volume per node
	yields Yields
}

func (r *recorder) EdgeVolume(edgeID int) (float64, bool) { return r.inner.EdgeVolume(edgeID) }
func (r *recorder) NodeVolume(nodeID int) (float64, bool) { return r.inner.NodeVolume(nodeID) }

func (r *recorder) Measured(nodeID int, port string, volume float64) {
	if port == dag.PortEffluent || (port == dag.PortDefault && r.g.Node(nodeID).Kind == dag.Concentrate) {
		if in, ok := r.inputs[nodeID]; ok && in > 0 {
			r.yields[nodeID] = volume / in
		}
	}
	r.inner.Measured(nodeID, port, volume)
}

// Run executes the elaborated assay once on the simulator with staged
// run-time volume management and returns the measured yield of every
// unknown-volume node. simCfg controls the simulated hardware (its
// SeparationYield is what a real profiling run would discover).
func Run(ep *elab.Program, cfg core.Config, simCfg aquacore.Config) (Yields, error) {
	sp, err := core.NewStagedPlan(ep.Graph, cfg)
	if err != nil {
		return nil, err
	}
	src, err := aquacore.NewStagedSource(sp, nil)
	if err != nil {
		return nil, err
	}
	rec := &recorder{inner: src, g: ep.Graph, inputs: map[int]float64{}, yields: Yields{}}

	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{NoForwarding: true})
	if err != nil {
		return nil, err
	}
	// Planned input volumes of unknown nodes become known part by part;
	// resolve them lazily through a wrapper that asks the staged source.
	m := aquacore.New(simCfg, ep.Graph, &inputTracking{rec: rec, src: src, part: sp})
	dry := map[string]float64{}
	for slot, v := range ep.Init {
		dry[ep.Slots[slot]] = v
	}
	m.SetDry(dry)
	if _, err := m.Run(cg.Prog); err != nil {
		return nil, err
	}
	return rec.yields, nil
}

// inputTracking snapshots each unknown node's planned input volume the
// moment the plan covering it becomes available, so the recorder can
// compute yield = measured / input.
type inputTracking struct {
	rec  *recorder
	src  *aquacore.StagedSource
	part *core.StagedPlan
}

func (t *inputTracking) EdgeVolume(edgeID int) (float64, bool) { return t.src.EdgeVolume(edgeID) }
func (t *inputTracking) NodeVolume(nodeID int) (float64, bool) { return t.src.NodeVolume(nodeID) }

func (t *inputTracking) Measured(nodeID int, port string, volume float64) {
	if _, ok := t.rec.inputs[nodeID]; !ok {
		if in, ok := t.src.NodeVolume(nodeID); ok {
			t.rec.inputs[nodeID] = in
		}
	}
	t.rec.Measured(nodeID, port, volume)
}

// Apply returns a clone of g with the profiled yields installed as static
// hints: each profiled node gets OutFrac = yield and is no longer
// unknown-volume. Planning the result needs no partitioning.
func Apply(g *dag.Graph, y Yields) (*dag.Graph, error) {
	ng := g.Clone()
	for id, frac := range y {
		n := ng.Node(id)
		if n == nil {
			return nil, fmt.Errorf("profile: yield for missing node %d", id)
		}
		if !(frac > 0) || frac >= 1 {
			return nil, fmt.Errorf("profile: node %v yield %v outside (0,1)", n, frac)
		}
		n.OutFrac = frac
		n.Unknown = false
	}
	// Any unknown node the profile missed stays unknown; the caller can
	// still partition.
	return ng, nil
}
