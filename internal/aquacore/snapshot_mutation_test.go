package aquacore_test

import (
	"encoding/json"
	"math/rand"
	"testing"

	"aquavol/internal/aquacore"
)

// midRunSnapshotJSON captures a real mid-run snapshot as the journal
// would store it: the base material every mutation test corrupts.
func midRunSnapshotJSON(t *testing.T) []byte {
	t.Helper()
	m, cg := newFaultyGlucose(t, 5)
	pc := 0
	for i := 0; i < 7; i++ {
		next, halted, err := m.ExecOne(cg.Prog, pc)
		if err != nil || halted {
			t.Fatalf("halted=%v err=%v", halted, err)
		}
		pc = next
	}
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Restore is the last line of defense behind the journal's CRC: a
// corrupt snapshot that still decodes as JSON must never panic (or spin
// in the PRNG fast-forward) — it either restores coherent state or
// errors, and an error is what lets the resume ladder fall back to an
// earlier snapshot. This property test throws truncated, bit-flipped,
// and field-dropped snapshot JSON at it.
func TestRestoreSurvivesMutatedSnapshots(t *testing.T) {
	base := midRunSnapshotJSON(t)
	tryRestore := func(data []byte) {
		var snap aquacore.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return // the journal's frame CRC and decoder reject these earlier
		}
		fresh, _ := newFaultyGlucose(t, 5)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Restore panicked on mutant %q: %v", data, r)
			}
		}()
		_ = fresh.Restore(&snap) // may error; must not panic
	}
	for cut := 0; cut <= len(base); cut += 7 {
		tryRestore(base[:cut])
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		mut := append([]byte(nil), base...)
		mut[rng.Intn(len(mut))] ^= byte(1) << rng.Intn(8)
		tryRestore(mut)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(base, &obj); err != nil {
		t.Fatal(err)
	}
	for drop := range obj {
		clone := make(map[string]json.RawMessage, len(obj))
		for k, v := range obj {
			if k != drop {
				clone[k] = v
			}
		}
		b, err := json.Marshal(clone)
		if err != nil {
			t.Fatal(err)
		}
		tryRestore(b)
	}
}

// Specific poisons — the decoded shapes a damaged journal realistically
// produces — must be refused with an error, not installed: the resume
// ladder only triggers when Restore says no.
func TestRestoreRejectsPoisonedSnapshots(t *testing.T) {
	base := midRunSnapshotJSON(t)
	poisons := []struct {
		name   string
		mutate func(s *aquacore.Snapshot)
	}{
		{"dropped vessel table", func(s *aquacore.Snapshot) { s.Vessels = nil }},
		{"negative step counter", func(s *aquacore.Snapshot) { s.Steps = -3 }},
		{"negative budget", func(s *aquacore.Snapshot) { s.Budget = -1 }},
		{"negative wet clock", func(s *aquacore.Snapshot) { s.WetSeconds = -0.5 }},
		{"negative vessel volume", func(s *aquacore.Snapshot) {
			for name, vs := range s.Vessels {
				vs.Volume = -40
				s.Vessels[name] = vs
				break
			}
		}},
		{"negative patch pc", func(s *aquacore.Snapshot) { s.Patches = map[int]float64{-2: 1} }},
		{"negative measurement node", func(s *aquacore.Snapshot) {
			s.Measurements = append(s.Measurements, aquacore.Measurement{Node: -1, Port: "o", Volume: 1})
		}},
		// A bit-flipped draw count would otherwise spin AdvanceTo for
		// geological time: the cap turns the hang into an error.
		{"absurd PRNG draw count", func(s *aquacore.Snapshot) { s.Faults.Draws = 1 << 40 }},
	}
	for _, p := range poisons {
		var snap aquacore.Snapshot
		if err := json.Unmarshal(base, &snap); err != nil {
			t.Fatal(err)
		}
		p.mutate(&snap)
		fresh, _ := newFaultyGlucose(t, 5)
		if err := fresh.Restore(&snap); err == nil {
			t.Errorf("%s: Restore accepted the poisoned snapshot", p.name)
		}
	}
}
