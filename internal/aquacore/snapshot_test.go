package aquacore_test

import (
	"encoding/json"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/faults"
)

// fingerprint marshals a machine snapshot; equal states must produce
// equal bytes (JSON sorts map keys and round-trips float64 exactly).
func fingerprint(t *testing.T, m *aquacore.Machine) string {
	t.Helper()
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newFaultyGlucose builds a fresh glucose machine with moderate faults.
func newFaultyGlucose(t *testing.T, seed int64) (*aquacore.Machine, *codegen.Result) {
	t.Helper()
	ep, plan, cg := compileAndPlan(t, assays.GlucoseSource)
	p, _ := faults.Preset("moderate")
	m := aquacore.New(aquacore.Config{Faults: faults.New(p, seed)}, ep.Graph, aquacore.PlanSource{Plan: plan})
	m.SetDry(codegen.DryInit(ep))
	return m, cg
}

// Snapshot at an instruction boundary, restore onto a fresh machine,
// finish both — the final states must be bit-identical, fault PRNG
// stream included.
func TestSnapshotRestoreMidRun(t *testing.T) {
	for _, cut := range []int{0, 1, 5, 11} {
		ref, cg := newFaultyGlucose(t, 42)
		prog := cg.Prog

		// Reference: run straight through.
		if _, err := ref.Run(prog); err != nil {
			t.Fatal(err)
		}
		want := fingerprint(t, ref)

		// Interrupted: execute cut instructions, snapshot, restore onto a
		// fresh machine, continue to completion.
		first, _ := newFaultyGlucose(t, 42)
		pc := 0
		for i := 0; i < cut; i++ {
			next, halted, err := first.ExecOne(prog, pc)
			if err != nil {
				t.Fatal(err)
			}
			if halted {
				t.Fatalf("program halted before cut %d", cut)
			}
			pc = next
		}
		snap := first.Snapshot()

		second, _ := newFaultyGlucose(t, 42)
		if err := second.Restore(snap); err != nil {
			t.Fatal(err)
		}
		for pc < len(prog.Instrs) {
			next, halted, err := second.ExecOne(prog, pc)
			if err != nil {
				t.Fatal(err)
			}
			if halted {
				break
			}
			pc = next
		}
		second.Finalize()
		if got := fingerprint(t, second); got != want {
			t.Errorf("cut %d: resumed final state differs from uninterrupted run\n got: %s\nwant: %s", cut, got, want)
		}
	}
}

// The snapshot itself must survive JSON serialization bit-exactly: the
// journal stores snapshots as JSON.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	m, cg := newFaultyGlucose(t, 9)
	pc := 0
	for i := 0; i < 7; i++ {
		next, halted, err := m.ExecOne(cg.Prog, pc)
		if err != nil || halted {
			t.Fatalf("halted=%v err=%v", halted, err)
		}
		pc = next
	}
	snap := m.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back aquacore.Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("snapshot JSON not stable across round trip:\n %s\n %s", b, b2)
	}
}

// Restore must reject mismatched fault configurations and used machines.
func TestRestoreValidation(t *testing.T) {
	m, cg := newFaultyGlucose(t, 1)
	snap := m.Snapshot()

	// Fresh machine with no injector cannot take a faulted snapshot.
	ep, plan, _ := compileAndPlan(t, assays.GlucoseSource)
	plain := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	if err := plain.Restore(snap); err == nil {
		t.Error("restore with missing injector accepted")
	}

	// Wrong seed.
	p, _ := faults.Preset("moderate")
	wrongSeed := aquacore.New(aquacore.Config{Faults: faults.New(p, 2)}, ep.Graph, aquacore.PlanSource{Plan: plan})
	if err := wrongSeed.Restore(snap); err == nil {
		t.Error("restore with mismatched seed accepted")
	}

	// Used machine.
	if _, _, err := m.ExecOne(cg.Prog, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err == nil {
		t.Error("restore onto a used machine accepted")
	}
}

// Staged assays: the measurement log must replay into a fresh staged
// source so per-part plans solved before the snapshot are available
// after restore.
func TestSnapshotRestoreStaged(t *testing.T) {
	build := func() (*aquacore.Machine, *codegen.Result) {
		ep, _, src := stagedGlycomics(t)
		cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{NoForwarding: true})
		if err != nil {
			t.Fatal(err)
		}
		m := aquacore.New(aquacore.Config{}, ep.Graph, src)
		m.SetDry(codegen.DryInit(ep))
		return m, cg
	}

	ref, cg := build()
	if _, err := ref.Run(cg.Prog); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, ref)

	// Run until at least one measurement has been reported, snapshot, and
	// resume on a completely fresh machine+source.
	first, _ := build()
	pc, cut := 0, 0
	for len(first.Snapshot().Measurements) == 0 {
		next, halted, err := first.ExecOne(cg.Prog, pc)
		if err != nil {
			t.Fatal(err)
		}
		if halted {
			t.Fatal("halted before any measurement")
		}
		pc = next
		cut++
	}
	snap := first.Snapshot()
	if len(snap.Measurements) == 0 {
		t.Fatal("no measurements captured")
	}

	second, _ := build()
	if err := second.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for pc < len(cg.Prog.Instrs) {
		next, halted, err := second.ExecOne(cg.Prog, pc)
		if err != nil {
			t.Fatal(err)
		}
		if halted {
			break
		}
		pc = next
	}
	second.Finalize()
	if got := fingerprint(t, second); got != want {
		t.Errorf("staged resume (cut %d) differs from uninterrupted run\n got: %s\nwant: %s", cut, got, want)
	}
}
