package aquacore

import (
	"fmt"

	"aquavol/internal/core"
)

// PlanSource adapts a statically-solved volume plan (DAGSolve or LP) as
// the machine's runtime volume manager. Measurements are ignored — nothing
// in a static plan depends on them.
type PlanSource struct {
	Plan *core.Plan
}

// EdgeVolume implements VolumeSource.
func (s PlanSource) EdgeVolume(edgeID int) (float64, bool) {
	if edgeID < 0 || edgeID >= len(s.Plan.EdgeVolume) {
		return 0, false
	}
	return s.Plan.EdgeVolume[edgeID], true
}

// NodeVolume implements VolumeSource.
func (s PlanSource) NodeVolume(nodeID int) (float64, bool) {
	if nodeID < 0 || nodeID >= len(s.Plan.NodeVolume) {
		return 0, false
	}
	return s.Plan.NodeVolume[nodeID], true
}

// Measured implements VolumeSource.
func (PlanSource) Measured(int, string, float64) {}

// IntPlanSource is PlanSource over an IVol-rounded plan: volumes are exact
// integer multiples of the least count.
type IntPlanSource struct {
	Plan *core.IntPlan
	Cfg  core.Config
}

// EdgeVolume implements VolumeSource.
func (s IntPlanSource) EdgeVolume(edgeID int) (float64, bool) {
	if edgeID < 0 || edgeID >= len(s.Plan.EdgeUnits) {
		return 0, false
	}
	return float64(s.Plan.EdgeUnits[edgeID]) * s.Cfg.LeastCount, true
}

// NodeVolume implements VolumeSource.
func (s IntPlanSource) NodeVolume(nodeID int) (float64, bool) {
	if nodeID < 0 || nodeID >= len(s.Plan.NodeUnits) {
		return 0, false
	}
	return float64(s.Plan.NodeUnits[nodeID]) * s.Cfg.LeastCount, true
}

// Measured implements VolumeSource.
func (IntPlanSource) Measured(int, string, float64) {}

// StagedSource adapts a core.StagedPlan as the runtime volume manager for
// assays with statically-unknown volumes: as the machine reports measured
// separation outputs, successive partitions are solved and their absolute
// volumes become available (§3.5).
type StagedSource struct {
	sp       *core.StagedPlan
	measured map[[2]any]float64
	localOf  map[int][2]int // orig node id -> (part, local id)
	// solveErrs records SolvePart failures in arrival order. The machine
	// surfaces them as EventSolveFailed events and appends the latest to
	// any "missing volume" error, so the root cause is never masked.
	solveErrs []error
	// check, when non-nil, certifies every feasible partition plan
	// before its volumes are served (see CertifyPart). condemned marks
	// partitions whose plan failed certification: their volumes are
	// withheld, so execution fail-stops at the first draw instead of
	// running an uncertified plan.
	check     CertifyPart
	condemned map[int]bool
}

// CertifyPart is the per-partition certification hook of a
// StagedSource: it receives each newly-solved feasible partition plan
// together with the availability limits the solve ran against, and a
// non-nil return condemns the partition. Wired to
// certify.CheckPlan by fluidvm (defense-in-depth: solved-at-runtime
// plans get the same independent check as compile-time ones); nil
// skips certification.
type CertifyPart func(part int, plan *core.Plan, avail core.Availability) error

// SolveErrors returns the runtime solve errors recorded so far, oldest
// first.
func (s *StagedSource) SolveErrors() []error { return s.solveErrs }

// NewStagedSource wraps sp, solving every measurement-independent
// partition up front (the compile-time share of the work). A non-nil
// check certifies each feasible plan as it is solved: a static
// partition failing certification fails construction outright, and a
// runtime-solved one is condemned (its volumes withheld) so the run
// fail-stops before executing it.
func NewStagedSource(sp *core.StagedPlan, check CertifyPart) (*StagedSource, error) {
	s := &StagedSource{
		sp:        sp,
		measured:  map[[2]any]float64{},
		localOf:   map[int][2]int{},
		check:     check,
		condemned: map[int]bool{},
	}
	for pi, m := range sp.Partition.OrigOf {
		for local, orig := range m {
			s.localOf[orig] = [2]int{pi, local}
		}
	}
	done, err := sp.SolveStatic()
	if err != nil {
		return nil, err
	}
	if check != nil {
		for _, i := range done {
			if p := sp.Plans[i]; p != nil && p.Feasible() {
				if err := check(i, p, sp.PartAvailability(i, nil)); err != nil {
					return nil, fmt.Errorf("partition %d plan rejected: %w", i, err)
				}
			}
		}
	}
	return s, nil
}

// Plans exposes the per-part plans solved so far (nil entries pending).
func (s *StagedSource) Plans() []*core.Plan { return s.sp.Plans }

// EdgeVolume implements VolumeSource.
func (s *StagedSource) EdgeVolume(edgeID int) (float64, bool) {
	loc, ok := s.sp.Partition.EdgeOf[edgeID]
	if !ok || s.condemned[loc[0]] {
		return 0, false
	}
	plan := s.sp.Plans[loc[0]]
	if plan == nil {
		return 0, false
	}
	return plan.EdgeVolume[loc[1]], true
}

// NodeVolume implements VolumeSource.
func (s *StagedSource) NodeVolume(nodeID int) (float64, bool) {
	loc, ok := s.localOf[nodeID]
	if !ok || s.condemned[loc[0]] {
		return 0, false // e.g. a split natural input: load full capacity
	}
	plan := s.sp.Plans[loc[0]]
	if plan == nil {
		return 0, false
	}
	return plan.NodeVolume[loc[1]], true
}

// Measured implements VolumeSource: records the measurement and solves
// every partition whose inputs have become available.
func (s *StagedSource) Measured(nodeID int, port string, volume float64) {
	s.measured[[2]any{nodeID, port}] = volume
	measure := func(orig int, p string) (float64, bool) {
		v, ok := s.measured[[2]any{orig, p}]
		return v, ok
	}
	for i := 0; i < s.sp.NumParts(); i++ {
		if s.sp.Plans[i] != nil {
			continue
		}
		ready := true
		for _, b := range s.sp.Partition.Bindings {
			if b.Part != i {
				continue
			}
			switch {
			case b.SourceUnknown:
				if _, ok := measure(b.SourceID, b.SourcePort); !ok {
					ready = false
				}
			case b.SourcePart >= 0:
				// A cut known-volume source: defer until its part solved.
				if _, ok := s.sp.Produced(b.SourceID); !ok {
					ready = false
				}
			}
			if !ready {
				break
			}
		}
		if !ready {
			continue
		}
		plan, err := s.sp.SolvePart(i, measure)
		if err != nil {
			// Record the failure instead of silently leaving the part
			// pending: a later "missing volume" would mask the root cause.
			s.solveErrs = append(s.solveErrs, fmt.Errorf("part %d: %w", i, err))
			continue
		}
		if s.check != nil && plan != nil && plan.Feasible() {
			if cerr := s.check(i, plan, s.sp.PartAvailability(i, measure)); cerr != nil {
				// Condemn the partition: withholding its volumes makes the
				// first draw fail-stop with this root cause attached, which
				// beats executing a plan the checker rejected.
				s.condemned[i] = true
				s.solveErrs = append(s.solveErrs, fmt.Errorf("part %d plan rejected: %w", i, cerr))
			}
		}
	}
}

// ensure interface compliance.
var (
	_ VolumeSource = PlanSource{}
	_ VolumeSource = IntPlanSource{}
	_ VolumeSource = (*StagedSource)(nil)
)
