package aquacore_test

import (
	"math"
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
)

// The shipped-artifact path: serialize the listing and the volume table to
// text, parse both back, and execute with no DAG or source available. The
// run must match the in-memory execution.
func TestShippedListingExecution(t *testing.T) {
	ep, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := cg.VolumeTable(func(edge int) (float64, bool) {
		return plan.EdgeVolume[edge], true
	})
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip both artifacts through their textual forms.
	prog, err := ais.Assemble(cg.Prog.String())
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := ais.ParseVolumeTable(tab.String())
	if err != nil {
		t.Fatal(err)
	}

	m := aquacore.New(aquacore.Config{}, nil, nil)
	m.SetVolumeTable(tab2)
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("shipped run events: %v", res.Events)
	}

	// Reference: in-memory run with the plan source.
	m2 := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	ref, err := m2.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range ref.Dry {
		if got := res.Dry[k]; math.Abs(got-v) > 1e-5 {
			t.Errorf("%s = %v shipped vs %v in-memory", k, got, v)
		}
	}
	if res.WetInstrs != ref.WetInstrs {
		t.Errorf("wet instrs %d vs %d", res.WetInstrs, ref.WetInstrs)
	}
}

// A move with an edge annotation but no volume source/table must fail
// loudly rather than guess.
func TestEdgeMoveWithoutVolumesErrors(t *testing.T) {
	ep, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, ep.Graph, nil)
	if _, err := m.Run(cg.Prog); err == nil {
		t.Fatal("expected error for edge-annotated move without volumes")
	}
}

// The volume table covers every edge-annotated instruction.
func TestVolumeTableCoverage(t *testing.T) {
	ep, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := cg.VolumeTable(func(edge int) (float64, bool) {
		return plan.EdgeVolume[edge], true
	})
	if err != nil {
		t.Fatal(err)
	}
	for pc, in := range cg.Prog.Instrs {
		_, has := tab[pc]
		if (in.Edge >= 0) != has {
			t.Errorf("pc %d (%s): edge=%d but table entry present=%v", pc, in, in.Edge, has)
		}
	}
	// An unresolvable edge is an error.
	if _, err := cg.VolumeTable(func(int) (float64, bool) { return 0, false }); err == nil {
		t.Fatal("expected error for unresolvable edges")
	}
}
