package aquacore

import (
	"strings"
	"testing"

	"aquavol/internal/ais"
)

func TestTraceReportsVesselDeltas(t *testing.T) {
	prog, err := ais.Assemble(`input s1, ip1
move-abs mixer1, s1, 300
halt`)
	if err != nil {
		t.Fatal(err)
	}
	var entries []TraceEntry
	m := New(Config{Trace: func(e TraceEntry) { entries = append(entries, e) }}, nil, nil)
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("events: %v", res.Events)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d trace entries, want 3: %v", len(entries), entries)
	}
	for i, e := range entries {
		if e.Step != i || e.PC != i {
			t.Errorf("entry %d: step=%d pc=%d", i, e.Step, e.PC)
		}
	}
	// The move draws 30 nl from a full 100 nl reservoir.
	mv := entries[1]
	deltas := map[string][2]float64{}
	for _, d := range mv.Vessels {
		deltas[d.Name] = [2]float64{d.Pre, d.Post}
	}
	if got := deltas["s1"]; got != [2]float64{100, 70} {
		t.Errorf("s1 delta = %v, want [100 70]", got)
	}
	if got := deltas["mixer1"]; got != [2]float64{0, 30} {
		t.Errorf("mixer1 delta = %v, want [0 30]", got)
	}
}

func TestTraceCoversSeparationPorts(t *testing.T) {
	prog, err := ais.Assemble(`input s1, ip1
move separator1, s1
separate.SIZE separator1, 10
halt`)
	if err != nil {
		t.Fatal(err)
	}
	var sep *TraceEntry
	m := New(Config{Trace: func(e TraceEntry) {
		if e.Instr.Op == ais.SeparateSize {
			cp := e
			sep = &cp
		}
	}}, nil, nil)
	if _, err := m.Run(prog); err != nil {
		t.Fatal(err)
	}
	if sep == nil {
		t.Fatal("separation not traced")
	}
	names := map[string]bool{}
	for _, d := range sep.Vessels {
		names[d.Name] = true
	}
	for _, want := range []string{"separator1", "separator1.out1", "separator1.out2"} {
		if !names[want] {
			t.Errorf("separation trace missing %s (have %v)", want, sep.Vessels)
		}
	}
}

func TestMalformedInstructionFaults(t *testing.T) {
	prog := &ais.Program{Labels: map[string]int{}, Instrs: []ais.Instr{
		{Op: ais.Mix, Edge: -1, Node: -1}, // mix with no operands
	}}
	m := New(Config{}, nil, nil)
	_, err := m.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "malformed instruction") {
		t.Fatalf("err = %v, want malformed-instruction fault", err)
	}
}
