package aquacore_test

import (
	"math"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
)

// UnitSeconds attributes every fluidic second: transport + per-unit op
// time sums to the total, and the mixer dominates the glucose assay.
func TestUnitUtilization(t *testing.T) {
	ep, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range res.UnitSeconds {
		sum += s
	}
	if math.Abs(sum-res.WetSeconds) > 1e-9 {
		t.Fatalf("unit seconds sum %v != wet seconds %v (%v)", sum, res.WetSeconds, res.UnitSeconds)
	}
	// 5 mixes × 10 s.
	if res.UnitSeconds["mixer1"] != 50 {
		t.Errorf("mixer1 = %v s, want 50", res.UnitSeconds["mixer1"])
	}
	// 5 senses × 1 s.
	if res.UnitSeconds["sensor1"] != 5 {
		t.Errorf("sensor1 = %v s, want 5", res.UnitSeconds["sensor1"])
	}
	// Transport: 3 inputs + 15 gather moves + 5 sensor forwards... the
	// forwards are gather moves already; inputs(3) + moves(15) + mix
	// transport(5).
	if res.UnitSeconds["transport"] != res.WetSeconds-55 {
		t.Errorf("transport = %v s, want %v", res.UnitSeconds["transport"], res.WetSeconds-55)
	}
}
