package aquacore

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"aquavol/internal/faults"
)

// sortedKeys returns m's keys in ascending order: validation walks every
// map deterministically so the reported entry is stable run to run.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Measurement is one run-time measurement reported to the volume source
// (a separation or concentration output). Snapshots carry the full
// measurement log so a restored machine can replay it into a fresh
// source, reconstructing the source's solved-plan state deterministically
// instead of serializing the source itself.
type Measurement struct {
	Node   int     `json:"node"`
	Port   string  `json:"port"`
	Volume float64 `json:"volume"`
}

// VesselState is one vessel's serialized contents.
type VesselState struct {
	Volume float64 `json:"vol"`
	// Composition maps fluid names to their absolute volumes. Zero entries
	// are kept: bit-identical resume requires the exact map contents, not
	// a physically-equivalent one.
	Composition map[string]float64 `json:"comp,omitempty"`
}

// FaultState is the fault injector's serialized state: its construction
// parameters plus the PRNG stream position. A resumed run reconstructs
// the injector from (Profile, Seed) and fast-forwards it Draws draws, so
// the remaining randomness is exactly what the interrupted run would have
// seen.
type FaultState struct {
	Profile faults.Profile `json:"profile"`
	Seed    int64          `json:"seed"`
	Draws   uint64         `json:"draws"`
}

// Snapshot is a full serialization of the machine's mutable state at an
// instruction boundary. Everything affecting subsequent execution is
// included — vessels with exact compositions, the dry register file,
// accumulated result state (times, events, outputs, drift), the
// instruction budget and step ordinal, the measurement log, and the fault
// injector's PRNG position — so restoring it onto a freshly-constructed
// machine and re-executing yields results bit-identical to a run that was
// never interrupted. JSON encoding round-trips every float64 exactly
// (shortest-representation encoding) and sorts map keys, so equal states
// marshal to equal bytes.
type Snapshot struct {
	Vessels map[string]VesselState `json:"vessels"`
	Regs    map[string]float64     `json:"regs,omitempty"`
	// Known lists the defined dry registers, sorted.
	Known []string `json:"known,omitempty"`

	WetSeconds  float64            `json:"wetSeconds"`
	DrySeconds  float64            `json:"drySeconds"`
	WetInstrs   int                `json:"wetInstrs"`
	DryInstrs   int                `json:"dryInstrs"`
	InputNl     float64            `json:"inputNl,omitempty"`
	Events      []Event            `json:"events,omitempty"`
	Dry         map[string]float64 `json:"dry,omitempty"`
	Outputs     []Output           `json:"outputs,omitempty"`
	UnitSeconds map[string]float64 `json:"unitSeconds,omitempty"`
	Drift       map[string]float64 `json:"drift,omitempty"`

	Steps         int `json:"steps"`
	Budget        int `json:"budget"`
	SolveErrsSeen int `json:"solveErrsSeen"`

	// Patches is the replan overlay: per-instruction absolute volumes
	// installed by adaptive replanning. A resume restored from a
	// post-replan snapshot must execute the patched plan, not the
	// compiled one.
	Patches map[int]float64 `json:"patches,omitempty"`

	Measurements []Measurement `json:"measurements,omitempty"`
	Faults       *FaultState   `json:"faults,omitempty"`
}

// Snapshot serializes the machine's mutable state. The machine is not
// consumed; execution can continue (periodic journal snapshots do
// exactly that).
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		Vessels:       make(map[string]VesselState, len(m.vessels)),
		WetSeconds:    m.res.WetSeconds,
		DrySeconds:    m.res.DrySeconds,
		WetInstrs:     m.res.WetInstrs,
		DryInstrs:     m.res.DryInstrs,
		InputNl:       m.res.InputNl,
		Steps:         m.steps,
		Budget:        m.budget,
		SolveErrsSeen: m.solveErrsSeen,
		Patches:       m.Patches(),
	}
	for name, v := range m.vessels {
		s.Vessels[name] = VesselState{Volume: v.vol, Composition: copyMap(v.comp)}
	}
	s.Regs = copyMap(m.regs)
	for name, known := range m.known {
		if known {
			s.Known = append(s.Known, name)
		}
	}
	sort.Strings(s.Known)
	s.Events = append([]Event(nil), m.res.Events...)
	s.Dry = copyMap(m.res.Dry)
	for _, o := range m.res.Outputs {
		s.Outputs = append(s.Outputs, Output{Port: o.Port, Volume: o.Volume, Composition: copyMap(o.Composition)})
	}
	s.UnitSeconds = copyMap(m.res.UnitSeconds)
	s.Drift = copyMap(m.drift)
	s.Measurements = append([]Measurement(nil), m.measLog...)
	if m.flt != nil {
		s.Faults = &FaultState{Profile: m.flt.Profile(), Seed: m.flt.Seed(), Draws: m.flt.Draws()}
	}
	return s
}

// maxDrawAdvance bounds the fault-PRNG fast-forward a snapshot may
// request. AdvanceTo replays the stream draw by draw, so a corrupt Draws
// field (a bit-flipped uint64 can claim 2^63 draws) would otherwise turn
// Restore into an unbounded loop. Real runs draw a handful of times per
// wet instruction; 2^26 covers programs four orders of magnitude larger
// than anything the compiler emits while keeping the worst-case
// fast-forward well under a second.
const maxDrawAdvance = 1 << 26

// validate rejects structurally-broken snapshots — the decoded form of a
// truncated, bit-flipped, or field-dropped record that still parsed as
// JSON. Restore refuses them with an error instead of installing
// poisoned state (or hanging in the PRNG fast-forward), which is what
// lets a resume fall back to an earlier snapshot.
func (s *Snapshot) validate() error {
	if s.Vessels == nil {
		return fmt.Errorf("aquacore: snapshot has no vessel table")
	}
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	// Which broken entry gets reported lands in resume diagnostics, so
	// every map walks in sorted order.
	for _, name := range sortedKeys(s.Vessels) {
		vs := s.Vessels[name]
		if bad(vs.Volume) || vs.Volume < -1e-6 {
			return fmt.Errorf("aquacore: snapshot vessel %q has impossible volume %v", name, vs.Volume)
		}
		for _, fluid := range sortedKeys(vs.Composition) {
			if v := vs.Composition[fluid]; bad(v) {
				return fmt.Errorf("aquacore: snapshot vessel %q composition %q is %v", name, fluid, v)
			}
		}
	}
	for _, name := range sortedKeys(s.Regs) {
		if v := s.Regs[name]; bad(v) {
			return fmt.Errorf("aquacore: snapshot register %q is %v", name, v)
		}
	}
	if s.Steps < 0 || s.Budget < 0 || s.WetInstrs < 0 || s.DryInstrs < 0 || s.SolveErrsSeen < 0 {
		return fmt.Errorf("aquacore: snapshot has negative counters (steps %d, budget %d, wet %d, dry %d, solveErrs %d)",
			s.Steps, s.Budget, s.WetInstrs, s.DryInstrs, s.SolveErrsSeen)
	}
	if bad(s.WetSeconds) || s.WetSeconds < 0 || bad(s.DrySeconds) || s.DrySeconds < 0 {
		return fmt.Errorf("aquacore: snapshot has impossible clock state (wet %v, dry %v)", s.WetSeconds, s.DrySeconds)
	}
	for _, pc := range sortedKeys(s.Patches) {
		if v := s.Patches[pc]; pc < 0 || bad(v) || v < 0 {
			return fmt.Errorf("aquacore: snapshot patch pc %d = %v is impossible", pc, v)
		}
	}
	for i, meas := range s.Measurements {
		if meas.Node < 0 || bad(meas.Volume) || meas.Volume < 0 {
			return fmt.Errorf("aquacore: snapshot measurement %d (node %d, %q, %v) is impossible", i, meas.Node, meas.Port, meas.Volume)
		}
	}
	if s.Faults != nil && s.Faults.Draws > maxDrawAdvance {
		return fmt.Errorf("aquacore: snapshot claims %d fault-PRNG draws (limit %d): corrupt", s.Faults.Draws, maxDrawAdvance)
	}
	return nil
}

// Restore loads a snapshot onto a freshly-constructed machine (same
// Config, graph, and volume source as the snapshotted one). It replays
// the measurement log into the source — reconstructing any staged-plan
// state — and fast-forwards the fault injector's PRNG stream, so
// execution resumed from the restored state is bit-identical to the
// uninterrupted run. Restoring onto a machine that has already executed
// instructions is an error, as is a snapshot that fails validation
// (corrupt records must surface as errors, not installed state).
func (m *Machine) Restore(s *Snapshot) error {
	if m.steps != 0 || len(m.res.Events) != 0 || len(m.measLog) != 0 {
		return fmt.Errorf("aquacore: Restore requires a fresh machine (already executed %d steps)", m.steps)
	}
	if err := s.validate(); err != nil {
		return err
	}
	// Fault-injector stream: same construction parameters, fast-forwarded.
	switch {
	case s.Faults != nil && m.flt == nil:
		return fmt.Errorf("aquacore: snapshot has fault state (%s seed %d) but machine has no injector",
			s.Faults.Profile, s.Faults.Seed)
	case s.Faults == nil && m.flt != nil:
		return fmt.Errorf("aquacore: machine has a fault injector but snapshot has no fault state")
	case s.Faults != nil:
		if m.flt.Profile() != s.Faults.Profile || m.flt.Seed() != s.Faults.Seed {
			return fmt.Errorf("aquacore: fault injector mismatch: machine (%s seed %d) vs snapshot (%s seed %d)",
				m.flt.Profile(), m.flt.Seed(), s.Faults.Profile, s.Faults.Seed)
		}
		if err := m.flt.AdvanceTo(s.Faults.Draws); err != nil {
			return err
		}
	}
	// Replay measurements into the source in arrival order; staged sources
	// re-solve their partitions exactly as the original run did. The
	// restored solveErrsSeen suppresses re-raising already-surfaced solve
	// events.
	if m.src != nil {
		for _, meas := range s.Measurements {
			m.src.Measured(meas.Node, meas.Port, meas.Volume)
		}
	}
	m.measLog = append([]Measurement(nil), s.Measurements...)
	m.solveErrsSeen = s.SolveErrsSeen

	m.vessels = make(map[string]*vessel, len(s.Vessels))
	for name, vs := range s.Vessels {
		comp := copyMap(vs.Composition)
		if comp == nil {
			comp = map[string]float64{}
		}
		m.vessels[name] = &vessel{vol: vs.Volume, comp: comp}
	}
	m.regs = copyMap(s.Regs)
	if m.regs == nil {
		m.regs = map[string]float64{}
	}
	m.known = make(map[string]bool, len(s.Known))
	for _, name := range s.Known {
		m.known[name] = true
	}
	m.res.WetSeconds = s.WetSeconds
	m.res.DrySeconds = s.DrySeconds
	m.res.WetInstrs = s.WetInstrs
	m.res.DryInstrs = s.DryInstrs
	m.res.InputNl = s.InputNl
	m.res.Events = append([]Event(nil), s.Events...)
	m.res.Dry = copyMap(s.Dry)
	if m.res.Dry == nil {
		m.res.Dry = map[string]float64{}
	}
	m.res.Outputs = nil
	for _, o := range s.Outputs {
		m.res.Outputs = append(m.res.Outputs, Output{Port: o.Port, Volume: o.Volume, Composition: copyMap(o.Composition)})
	}
	m.res.UnitSeconds = copyMap(s.UnitSeconds)
	if m.res.UnitSeconds == nil {
		m.res.UnitSeconds = map[string]float64{}
	}
	if s.Drift != nil {
		m.drift = copyMap(s.Drift)
	}
	m.patches = nil
	if len(s.Patches) > 0 {
		m.patches = make(map[int]float64, len(s.Patches))
		for pc, v := range s.Patches {
			m.patches[pc] = v
		}
	}
	m.steps = s.Steps
	m.budget = s.Budget
	return nil
}

// copyMap clones a string-keyed float map, preserving nil-ness.
func copyMap(src map[string]float64) map[string]float64 {
	if src == nil {
		return nil
	}
	dst := make(map[string]float64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
