package aquacore

import "errors"

// Sentinel errors classifying machine-level fault conditions. They are
// the stable identities callers (the recovery runtime, fluidvm's exit
// mapping, tests) match with errors.Is instead of string-matching event
// details; sites that surface them wrap with %w so the concrete context
// stays attached.
var (
	// ErrShortfall is an unrepaired volume shortfall: a draw needed more
	// fluid than its source vessel held (EventRanOut incidents).
	//
	//fluidvet:allow errwrap produced by internal/recover and cmd/fluidvm, which wrap it with %w when classifying incidents
	ErrShortfall = errors.New("aquacore: volume shortfall")
	// ErrFUUnavailable is a functional unit that stayed unavailable after
	// the retry budget was spent (EventFUFailure incidents).
	//
	//fluidvet:allow errwrap produced by internal/recover and cmd/fluidvm, which wrap it with %w when classifying incidents
	ErrFUUnavailable = errors.New("aquacore: functional unit unavailable")
)
