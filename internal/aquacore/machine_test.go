package aquacore_test

import (
	"math"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/lang"
	"aquavol/internal/lang/elab"
)

func compileAndPlan(t *testing.T, src string) (*elab.Program, *core.Plan, *codegen.Result) {
	t.Helper()
	ep, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ep, plan, cg
}

// Glucose end to end: compile → DAGSolve → codegen → simulate. The run
// must be clean and the sensed readings (default sensor = volume) must
// equal the planned mix volumes.
func TestGlucoseEndToEnd(t *testing.T) {
	ep, plan, cg := compileAndPlan(t, assays.GlucoseSource)
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	dry := map[string]float64{}
	for slot, v := range ep.Init {
		dry[ep.Slots[slot]] = v
	}
	m.SetDry(dry)
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("events: %v", res.Events)
	}
	// Sensed values = planned volumes of mixes a..e.
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		n := ep.Graph.NodeByName(name)
		want := plan.NodeVolume[n.ID()]
		got := res.Dry[ep.Slots[ep.SlotIndex[fmtResult(i+1)]]]
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("Result[%d] = %v, want planned volume %v of %s", i+1, got, want, name)
		}
	}
	// Wet time dominates dry time by orders of magnitude.
	if res.WetSeconds < 1000*res.DrySeconds {
		t.Errorf("wet %.3gs vs dry %.3gs: expected wet >> dry", res.WetSeconds, res.DrySeconds)
	}
}

func fmtResult(i int) string {
	return "Result" + "[" + string(rune('0'+i)) + "]"
}

// The rounded IVol plan also executes cleanly, and the achieved mix
// composition error stays within the paper's 2% bound.
func TestGlucoseRoundedPlanExecutes(t *testing.T) {
	ep, plan, cg := compileAndPlan(t, assays.GlucoseSource)
	cfg := core.DefaultConfig()
	ip := core.Round(plan, cfg)
	if !ip.Feasible() {
		t.Fatal("rounded plan infeasible")
	}
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.IntPlanSource{Plan: ip, Cfg: cfg})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("events: %v", res.Events)
	}
}

// Enzyme after automatic management (cascade + replication): the
// transformed graph executes cleanly.
func TestEnzymeManagedEndToEnd(t *testing.T) {
	ep, err := lang.Compile(assays.EnzymeSource(4))
	if err != nil {
		t.Fatal(err)
	}
	mres, err := core.Manage(ep.Graph, core.DefaultConfig(), core.ManageOptions{SkipLP: true})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, mres.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, mres.Graph, aquacore.PlanSource{Plan: mres.Plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("events (%d): first %v", len(res.Events), res.Events[0])
	}
	if res.WetInstrs < 400 {
		t.Errorf("wet instrs = %d, expected hundreds for the enzyme assay", res.WetInstrs)
	}
}

// The un-managed enzyme plan (with its 9.8 pl dispense) raises underflow
// events at run time — the failure volume management prevents.
func TestEnzymeUnmanagedUnderflows(t *testing.T) {
	ep, plan, cg := compileAndPlan(t, assays.EnzymeSource(4))
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	under := 0
	for _, e := range res.Events {
		if e.Kind == aquacore.EventUnderflow {
			under++
		}
	}
	if under == 0 {
		t.Fatal("expected underflow events from the unmanaged 1:999 dilutions")
	}
}

// Glycomics end to end with run-time volume assignment: partitions are
// solved as separations are measured; execution is clean.
func TestGlycomicsStagedEndToEnd(t *testing.T) {
	ep, err := lang.Compile(assays.GlycomicsSource)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.NewStagedPlan(ep.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := aquacore.NewStagedSource(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{SeparationYield: 0.5}, ep.Graph, src)
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("events: %v", res.Events)
	}
	// All four partitions got solved along the way.
	for i, p := range src.Plans() {
		if p == nil {
			t.Errorf("partition %d never solved", i)
		}
	}
}

// Guarded code: a run-time IF executes exactly one branch, driven by the
// sensed value.
func TestRuntimeBranchExecution(t *testing.T) {
	src := `ASSAY branch START
fluid a, b;
VAR x, y1, y2;
MIX a AND b FOR 1;
SENSE OPTICAL it INTO x;
IF x > 1000 START
  MIX a AND b FOR 10;
  SENSE OPTICAL it INTO y1;
ELSE
  MIX a AND b FOR 20;
  SENSE OPTICAL it INTO y2;
ENDIF
END`
	ep, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// Sensed volume is tens of nl, well below 1000: else-branch runs.
	if _, ok := res.Dry["y1"]; ok {
		t.Error("then-branch should have been skipped")
	}
	if _, ok := res.Dry["y2"]; !ok {
		t.Error("else-branch should have executed")
	}
}

// While loop: runs until its sensed condition fails, within MAXITER.
func TestRuntimeWhileExecution(t *testing.T) {
	// Condition is false immediately (volume reading is small), so zero
	// iterations run despite MAXITER 3.
	src := `ASSAY w START
fluid a, b;
VAR x;
MIX a AND b FOR 1;
SENSE OPTICAL it INTO x;
WHILE x > 1000 MAXITER 3 START
  MIX a AND b FOR 10;
  SENSE OPTICAL it INTO x;
ENDWHILE
END`
	ep, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// Setup only (2 inputs + 2 gather moves + mix + forward move + sense
	// = 7 wet instructions); the three guarded iterations were skipped.
	if res.WetInstrs != 7 {
		t.Errorf("wet instrs = %d, want 7; guarded loop iterations should be skipped", res.WetInstrs)
	}
}

// Composition tracking: the simulator preserves mix ratios. A 1:8
// glucose:reagent mix delivered to an output port carries those exact
// proportions.
func TestCompositionTracking(t *testing.T) {
	src := `ASSAY g START
fluid Glucose, Reagent, d;
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
OUTPUT d;
END`
	ep, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, ep.Graph, aquacore.PlanSource{Plan: plan})
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1", len(res.Outputs))
	}
	out := res.Outputs[0]
	g := out.Composition["Glucose"]
	r := out.Composition["Reagent"]
	if math.Abs(r/g-8) > 1e-6 {
		t.Errorf("reagent:glucose = %v, want 8", r/g)
	}
}
