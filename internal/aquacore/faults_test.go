package aquacore_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/faults"
	"aquavol/internal/lang"
	"aquavol/internal/lang/elab"
)

// stagedGlycomics compiles the glycomics assay and wraps its staged plan
// in a runtime source (partitions beyond the static ones stay pending).
func stagedGlycomics(t *testing.T) (*elab.Program, *core.StagedPlan, *aquacore.StagedSource) {
	t.Helper()
	ep, err := lang.Compile(assays.GlycomicsSource)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.NewStagedPlan(ep.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := aquacore.NewStagedSource(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ep, sp, src
}

func generate(t *testing.T, ep *elab.Program) *codegen.Result {
	t.Helper()
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// runGlucose executes the glucose assay under the given fault profile and
// returns the result together with a rendered trace.
func runGlucose(t *testing.T, p faults.Profile, seed int64) (*aquacore.Result, []string) {
	t.Helper()
	ep, plan, cg := compileAndPlan(t, assays.GlucoseSource)
	var trace []string
	cfg := aquacore.Config{Trace: func(e aquacore.TraceEntry) {
		trace = append(trace, fmt.Sprintf("%+v", e))
	}}
	if p.Enabled() {
		cfg.Faults = faults.New(p, seed)
	}
	m := aquacore.New(cfg, ep.Graph, aquacore.PlanSource{Plan: plan})
	dry := map[string]float64{}
	for slot, v := range ep.Init {
		dry[ep.Slots[slot]] = v
	}
	m.SetDry(dry)
	res, err := m.Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	return res, trace
}

// A disabled fault profile must leave execution bit-identical to a machine
// with no injector at all — the zero-overhead contract of Config.Faults.
func TestFaultsOffBitIdentical(t *testing.T) {
	resOff, traceOff := runGlucose(t, faults.Profile{}, 0)
	resZero, traceZero := runGlucose(t, faults.Profile{}, 99)
	if !reflect.DeepEqual(traceOff, traceZero) {
		t.Error("disabled-profile trace differs from no-injector trace")
	}
	if !reflect.DeepEqual(resOff, resZero) {
		t.Error("disabled-profile result differs from no-injector result")
	}
	if resOff.VolumeDrift != nil {
		t.Error("faults-off result must not carry a drift map")
	}
}

// Same profile and seed ⇒ identical trace and result; different seed ⇒
// different trace.
func TestFaultSeedDeterminism(t *testing.T) {
	prof, ok := faults.Preset("moderate")
	if !ok {
		t.Fatal("moderate preset missing")
	}
	res1, tr1 := runGlucose(t, prof, 5)
	res2, tr2 := runGlucose(t, prof, 5)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("same seed produced different traces")
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Error("same seed produced different results")
	}
	_, tr3 := runGlucose(t, prof, 6)
	if reflect.DeepEqual(tr1, tr3) {
		t.Error("different seeds produced identical traces")
	}
}

// Dead-volume loss must show up in the drift accounting, the FaultLoss
// total, and as fault-loss events.
func TestDeadVolumeDrift(t *testing.T) {
	res, _ := runGlucose(t, faults.Profile{DeadVolume: 0.3}, 0)
	if len(res.VolumeDrift) == 0 {
		t.Fatal("dead volume must produce per-vessel drift")
	}
	if res.FaultLoss() <= 0 {
		t.Errorf("FaultLoss() = %g, want > 0", res.FaultLoss())
	}
	found := false
	for _, e := range res.Events {
		if e.Kind == aquacore.EventFaultLoss {
			found = true
			if !strings.Contains(e.Detail, "dead volume") {
				t.Errorf("unexpected fault-loss detail: %s", e.Detail)
			}
		}
	}
	if !found {
		t.Error("no EventFaultLoss recorded")
	}
}

// A unit that always fails must emit FU-failure events without crashing
// the run.
func TestAlwaysFailingUnits(t *testing.T) {
	res, _ := runGlucose(t, faults.Profile{FailRate: 1}, 0)
	n := 0
	for _, e := range res.Events {
		if e.Kind == aquacore.EventFUFailure {
			n++
		}
	}
	if n == 0 {
		t.Error("FailRate 1 must emit FU-failure events")
	}
}

// Sensor noise perturbs the dry results (sensed readings) and nothing
// else.
func TestSenseNoise(t *testing.T) {
	clean, _ := runGlucose(t, faults.Profile{}, 0)
	noisy, _ := runGlucose(t, faults.Profile{SenseNoise: 0.2}, 3)
	if reflect.DeepEqual(clean.Dry, noisy.Dry) {
		t.Error("20% sensor noise left every reading unchanged")
	}
	if clean.WetSeconds != noisy.WetSeconds {
		t.Error("sensor noise must not change timing")
	}
}

// Evaporation drains every vessel over wet time, producing drift without
// any PRNG use.
func TestEvaporationDrift(t *testing.T) {
	res, _ := runGlucose(t, faults.Profile{EvapRate: 1e-3}, 0)
	if res.FaultLoss() <= 0 {
		t.Errorf("evaporation over the run must lose volume; FaultLoss() = %g", res.FaultLoss())
	}
	res2, _ := runGlucose(t, faults.Profile{EvapRate: 1e-3}, 12345)
	if res.FaultLoss() != res2.FaultLoss() {
		t.Error("evaporation must be seed-independent (deterministic)")
	}
}

// Out-of-range ids on the plan-backed sources answer !ok instead of
// panicking.
func TestPlanSourceRangeChecks(t *testing.T) {
	_, plan, _ := compileAndPlan(t, assays.GlucoseSource)
	src := aquacore.PlanSource{Plan: plan}
	for _, id := range []int{-1, 1 << 30} {
		if _, ok := src.EdgeVolume(id); ok {
			t.Errorf("EdgeVolume(%d) = ok", id)
		}
		if _, ok := src.NodeVolume(id); ok {
			t.Errorf("NodeVolume(%d) = ok", id)
		}
	}
	isrc := aquacore.IntPlanSource{Plan: core.Round(plan, core.DefaultConfig()), Cfg: core.DefaultConfig()}
	for _, id := range []int{-1, 1 << 30} {
		if _, ok := isrc.EdgeVolume(id); ok {
			t.Errorf("IntPlanSource.EdgeVolume(%d) = ok", id)
		}
		if _, ok := isrc.NodeVolume(id); ok {
			t.Errorf("IntPlanSource.NodeVolume(%d) = ok", id)
		}
	}
}

// Before any measurement arrives, queries against partitions that await
// run-time measurements answer !ok (pending), not stale data.
func TestStagedSourcePendingQueries(t *testing.T) {
	ep, sp, src := stagedGlycomics(t)
	pendingEdges, pendingNodes := 0, 0
	for _, e := range ep.Graph.Edges() {
		if _, ok := src.EdgeVolume(e.ID()); !ok {
			pendingEdges++
		}
	}
	for _, n := range ep.Graph.Nodes() {
		if n == nil {
			continue
		}
		if _, ok := src.NodeVolume(n.ID()); !ok {
			pendingNodes++
		}
	}
	if pendingEdges == 0 {
		t.Error("glycomics has measurement-dependent partitions; some edge must be pending")
	}
	if pendingNodes == 0 {
		t.Error("some node volume must be pending before measurements")
	}
	if _, ok := src.EdgeVolume(-1); ok {
		t.Error("EdgeVolume(-1) = ok")
	}
	if _, ok := src.NodeVolume(1 << 30); ok {
		t.Error("NodeVolume(huge) = ok")
	}
	if got := len(src.SolveErrors()); got != 0 {
		t.Errorf("fresh staged source has %d solve errors", got)
	}
	if sp.NumParts() < 2 {
		t.Errorf("glycomics should partition into multiple parts, got %d", sp.NumParts())
	}
}

// An unknown event kind renders its numeric value.
func TestEventKindUnknownString(t *testing.T) {
	if got := aquacore.EventKind(99).String(); got != "EventKind(99)" {
		t.Errorf("String() = %q", got)
	}
}

// errSource reports no volumes but carries recorded solve errors; the
// machine must surface the latest in its "no volume" error instead of
// masking the root cause.
type errSource struct{ errs []error }

func (errSource) EdgeVolume(int) (float64, bool) { return 0, false }
func (errSource) NodeVolume(int) (float64, bool) { return 0, false }
func (errSource) Measured(int, string, float64)  {}
func (s errSource) SolveErrors() []error         { return s.errs }

func TestSolveErrorSurfacedInMoveError(t *testing.T) {
	ep, _, cg := compileAndPlan(t, assays.GlucoseSource)
	src := errSource{errs: []error{errors.New("part 1: LP infeasible (synthetic)")}}
	m := aquacore.New(aquacore.Config{}, ep.Graph, src)
	_, err := m.Run(cg.Prog)
	if err == nil {
		t.Fatal("run must fail without volumes")
	}
	if !strings.Contains(err.Error(), "runtime solve failed earlier") ||
		!strings.Contains(err.Error(), "LP infeasible (synthetic)") {
		t.Errorf("error must carry the recorded solve failure, got: %v", err)
	}
}

// A clean staged glycomics run records no solve errors and every
// partition solves (the satellite's good-path assertion).
func TestStagedRunRecordsNoSolveErrors(t *testing.T) {
	ep, _, src := stagedGlycomics(t)
	cg := generate(t, ep)
	m := aquacore.New(aquacore.Config{SeparationYield: 0.5}, ep.Graph, src)
	if _, err := m.Run(cg.Prog); err != nil {
		t.Fatal(err)
	}
	if errs := src.SolveErrors(); len(errs) != 0 {
		t.Fatalf("clean run recorded solve errors: %v", errs)
	}
	for _, e := range m.Events() {
		if e.Kind == aquacore.EventSolveFailed {
			t.Errorf("clean run emitted %v", e)
		}
	}
}
