// Package aquacore simulates the AquaCore programmable lab-on-a-chip
// (Fig. 1 of the paper): a wet fluidic datapath — reservoirs, mixers,
// heaters, separators, sensors, and I/O ports connected by channels with
// peristaltic pumps that impose a least-count transport resolution — under
// an electronic control that interprets AIS instructions and is orders of
// magnitude faster than the fluidics.
//
// The simulator stands in for the paper's hardware: it enforces exactly
// the parameters volume management plans against (maximum capacity, least
// count), tracks the composition of every vessel so mix-ratio fidelity can
// be measured, models the wet/dry timing split, and surfaces
// run-time-measured separation volumes to the volume manager through the
// VolumeSource interface (§3.5's run-time volume assignment).
package aquacore

import (
	"fmt"
	"math"
	"sort"

	"aquavol/internal/ais"
	"aquavol/internal/budget"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/faults"
)

// Config parameterizes the machine.
type Config struct {
	// Volume carries the capacity and least-count parameters shared with
	// the volume manager.
	Volume core.Config
	// MoveSeconds is the fluid-transport time per wet move/input/output
	// instruction. 0 selects 1 s.
	MoveSeconds float64
	// SenseSeconds is the sensing time. 0 selects 1 s.
	SenseSeconds float64
	// DrySeconds is the electronic time per dry instruction. 0 selects
	// 1 µs (the paper's orders-of-magnitude-faster control).
	DrySeconds float64
	// SeparationYield is the effluent fraction separations produce at run
	// time (the quantity the paper's hardware measures). 0 selects 0.4.
	SeparationYield float64
	// ConcentrateYield is the volume fraction surviving concentration.
	// 0 selects 0.5.
	ConcentrateYield float64
	// Sense computes a sensor reading from vessel contents. nil selects
	// the total volume in nanoliters (deterministic and plan-checkable).
	Sense func(volume float64, composition map[string]float64, op ais.Opcode) float64
	// Trace, when non-nil, receives one entry per executed instruction
	// with the volumes of the instruction's vessels before and after the
	// step — the concrete replay channel for aisverify findings
	// (fluidvm -trace).
	Trace func(TraceEntry)
	// EventTrace, when non-nil, receives every recorded event (machine
	// faults and externally-recorded repair actions alike) as it happens,
	// so drivers can stream the causal chain live instead of reading the
	// result's event log afterwards (fluidvm -trace).
	EventTrace func(Event)
	// Faults, when non-nil and enabled, injects imperfect fluidics at the
	// same choke points Trace observes: metering jitter and dead-volume
	// loss on transports, evaporation over wet time, sensor noise, and
	// transient FU failures. nil (or a disabled profile) leaves execution
	// bit-identical to the ideal-physics machine. One injector serves
	// exactly one run; its PRNG stream position is machine state.
	Faults *faults.Injector
	// Budget, when non-nil, is charged one work unit per executed
	// instruction, BEFORE the instruction runs: a tripped meter stops
	// execution exactly at an instruction boundary with the machine state
	// untouched by the unexecuted instruction. The meter is config, not
	// machine state — it is never snapshotted, so a journaled run
	// cancelled mid-flight resumes under a fresh meter and completes
	// bit-identically to an uninterrupted run.
	Budget *budget.Meter
}

// TraceEntry reports one executed instruction to Config.Trace.
type TraceEntry struct {
	// Step is the execution-step ordinal (distinct from PC under jumps).
	Step int
	// PC is the instruction index executed.
	PC int
	// Instr is the executed instruction.
	Instr ais.Instr
	// Vessels lists the instruction's vessels (operands plus, for
	// separations, the unit's out/matrix/pusher ports) with their volumes
	// before and after the step.
	Vessels []VesselDelta
}

// VesselDelta is one vessel's volume change across a traced step.
type VesselDelta struct {
	Name      string
	Pre, Post float64
}

func (c Config) withDefaults() Config {
	if c.Volume.MaxCapacity == 0 {
		c.Volume = core.DefaultConfig()
	}
	if c.MoveSeconds == 0 {
		c.MoveSeconds = 1
	}
	if c.SenseSeconds == 0 {
		c.SenseSeconds = 1
	}
	if c.DrySeconds == 0 {
		c.DrySeconds = 1e-6
	}
	if c.SeparationYield == 0 {
		c.SeparationYield = 0.4
	}
	if c.ConcentrateYield == 0 {
		c.ConcentrateYield = 0.5
	}
	return c
}

// VolumeSource is the runtime volume manager the machine consults to
// translate relative volumes into absolute ones, and informs of measured
// volumes (§3.5). Implementations: PlanSource (static assays) and
// StagedSource (run-time partitioned assays).
type VolumeSource interface {
	// EdgeVolume returns the absolute volume (nl) to move along a DAG
	// edge.
	EdgeVolume(edgeID int) (float64, bool)
	// NodeVolume returns the planned produced/loaded volume for a node
	// (used for input loads).
	NodeVolume(nodeID int) (float64, bool)
	// Measured informs the manager of a run-time-measured production.
	Measured(nodeID int, port string, volume float64)
}

// EventKind classifies runtime events.
type EventKind int

const (
	// EventUnderflow is a dispense below the least count.
	EventUnderflow EventKind = iota
	// EventOverflow is a vessel filled beyond capacity.
	EventOverflow
	// EventRanOut is a draw exceeding the source's remaining volume —
	// the failure volume management exists to prevent.
	EventRanOut
	// EventFaultLoss is injected physics removing fluid (dead volume in a
	// transport channel), distinguishing chaos from plan bugs in traces.
	EventFaultLoss
	// EventFUFailure is an injected transient functional-unit failure: the
	// operation did nothing this attempt (the retry-able fault class).
	EventFUFailure
	// EventRetry marks a recovery-runtime re-attempt of a failed
	// instruction.
	EventRetry
	// EventRegen marks a recovery-runtime re-execution of a depleted
	// fluid's backward slice.
	EventRegen
	// EventSolveFailed surfaces a runtime volume-solve error recorded by
	// the volume source (e.g. StagedSource.SolvePart), so a later
	// "missing volume" cannot mask its root cause.
	EventSolveFailed
	// EventReplan marks a recovery-runtime adaptive replan: the residual
	// DAG was re-solved around live vessel volumes and the rescaled
	// volumes were patched into the remaining instructions.
	EventReplan
	// EventRegenFault marks a regeneration replay that itself faulted
	// (ran out or hit FU failures) — a repair that could not restore the
	// plan, classified distinctly from the shortfall it tried to fix.
	EventRegenFault
)

func (k EventKind) String() string {
	switch k {
	case EventUnderflow:
		return "underflow"
	case EventOverflow:
		return "overflow"
	case EventRanOut:
		return "ran-out"
	case EventFaultLoss:
		return "fault-loss"
	case EventFUFailure:
		return "fu-failure"
	case EventRetry:
		return "retry"
	case EventRegen:
		return "regen"
	case EventSolveFailed:
		return "solve-failed"
	case EventReplan:
		return "replan"
	case EventRegenFault:
		return "regen-fault"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one runtime violation.
type Event struct {
	Kind   EventKind
	PC     int
	Instr  string
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s at pc %d (%s): %s", e.Kind, e.PC, e.Instr, e.Detail)
}

// Output records fluid delivered to an output port.
type Output struct {
	Port        string
	Volume      float64
	Composition map[string]float64
}

// Result summarizes an execution.
type Result struct {
	// WetSeconds and DrySeconds split execution time between the fluidic
	// datapath and the electronic control.
	WetSeconds, DrySeconds float64
	// WetInstrs and DryInstrs count executed instructions per side.
	WetInstrs, DryInstrs int
	// Events lists underflows/overflows/ran-out violations.
	Events []Event
	// Dry holds the final dry-register file (sensed values included).
	Dry map[string]float64
	// Outputs lists fluids delivered to output ports.
	Outputs []Output
	// UnitSeconds attributes fluidic time to the functional unit (or the
	// transport channel, keyed "transport") that spent it, for
	// utilization analysis.
	UnitSeconds map[string]float64
	// InputNl is the total fluid (nl) drawn from input ports across the
	// run, regeneration replays included — the reagent-consumption metric
	// repair strategies are compared on (E13).
	InputNl float64
	// VolumeDrift maps vessel (and output-port) names to the cumulative
	// planned-minus-delivered volume (nl) caused by injected faults:
	// positive entries are fluid lost to jitter, dead volume, and
	// evaporation; negative entries are over-delivery from jitter. nil
	// when no faults were injected.
	VolumeDrift map[string]float64
}

// Clean reports whether execution raised no volume violations.
func (r *Result) Clean() bool { return len(r.Events) == 0 }

// FaultLoss sums the positive drift entries: the total volume injected
// faults removed from the run. Summation is in sorted vessel order so the
// float total is reproducible across runs.
func (r *Result) FaultLoss() float64 {
	names := make([]string, 0, len(r.VolumeDrift))
	for name := range r.VolumeDrift {
		names = append(names, name)
	}
	sort.Strings(names)
	var total float64
	for _, name := range names {
		if d := r.VolumeDrift[name]; d > 0 {
			total += d
		}
	}
	return total
}

// vessel is any fluid container: reservoir, functional unit, or unit
// output port.
type vessel struct {
	vol  float64
	comp map[string]float64
}

func (v *vessel) add(amount float64, comp map[string]float64) {
	if v.comp == nil {
		v.comp = map[string]float64{}
	}
	for k, c := range comp {
		v.comp[k] += c
	}
	v.vol += amount
}

// draw removes amount, returning its proportional composition.
func (v *vessel) draw(amount float64) map[string]float64 {
	if v.vol <= 0 {
		return map[string]float64{}
	}
	frac := amount / v.vol
	if frac > 1 {
		frac = 1
	}
	out := make(map[string]float64, len(v.comp))
	for k, c := range v.comp {
		take := c * frac
		out[k] = take
		v.comp[k] -= take
	}
	v.vol -= amount
	if v.vol < 1e-12 {
		v.vol = 0
	}
	return out
}

func (v *vessel) clear() {
	v.vol = 0
	v.comp = map[string]float64{}
}

// Machine executes AIS programs.
type Machine struct {
	cfg      Config
	g        *dag.Graph
	src      VolumeSource
	instrVol ais.VolumeTable
	// patches overlays per-instruction absolute volumes installed at run
	// time by adaptive replanning. Consulted before instrVol and before
	// edge-keyed source lookups: a patched plan overrides the compiled
	// one for the instructions it covers. Snapshot state (crash-resume
	// must reproduce the patched plan bit-identically).
	patches ais.VolumeTable
	vessels map[string]*vessel
	regs    map[string]float64
	known   map[string]bool
	res     *Result
	// flt is cfg.Faults when enabled, nil otherwise: the single gate every
	// fault hook checks, keeping the faults-off path bit-identical to the
	// ideal machine.
	flt   *faults.Injector
	drift map[string]float64
	// steps/budget carry the execution-step ordinal and instruction budget
	// across ExecOne calls so external drivers share Run's loop guard.
	steps, budget int
	// solveErrsSeen tracks how many source solve errors have already been
	// surfaced as events.
	solveErrsSeen int
	// measLog records every measurement reported to the volume source, in
	// arrival order. Snapshots carry it so Restore can replay the
	// measurements into a fresh source, reconstructing its solved-plan
	// state without serializing the source itself.
	measLog []Measurement
}

// New creates a machine for one program run. g is the volume DAG the
// program's Edge/Node annotations refer to; src translates volumes. Both
// may be nil when running an assembled listing with an attached
// per-instruction volume table (SetVolumeTable).
func New(cfg Config, g *dag.Graph, src VolumeSource) *Machine {
	m := &Machine{
		cfg:     cfg.withDefaults(),
		g:       g,
		src:     src,
		vessels: map[string]*vessel{},
		regs:    map[string]float64{},
		known:   map[string]bool{},
		res:     &Result{Dry: map[string]float64{}, UnitSeconds: map[string]float64{}},
	}
	if m.cfg.Faults.Enabled() {
		m.flt = m.cfg.Faults
		m.drift = map[string]float64{}
	}
	return m
}

// SetVolumeTable attaches per-instruction absolute volumes (the shipped
// companion of a textual AIS listing). Table entries take precedence over
// edge-keyed VolumeSource lookups.
func (m *Machine) SetVolumeTable(t ais.VolumeTable) { m.instrVol = t }

// SetDry presets dry registers (the compile-time-known initial values from
// elaboration).
func (m *Machine) SetDry(values map[string]float64) {
	for k, v := range values {
		m.regs[k] = v
		m.known[k] = true
	}
}

func (m *Machine) vessel(name string) *vessel {
	v, ok := m.vessels[name]
	if !ok {
		v = &vessel{comp: map[string]float64{}}
		m.vessels[name] = v
	}
	return v
}

func operandVessel(o ais.Operand) (string, bool) {
	switch o.Kind {
	case ais.Reservoir:
		return o.Name, true
	case ais.Unit:
		if o.Sub != "" {
			return o.Name + "." + o.Sub, true
		}
		return o.Name, true
	default:
		return "", false
	}
}

func (m *Machine) event(kind EventKind, pc int, in ais.Instr, format string, args ...any) {
	e := Event{Kind: kind, PC: pc, Instr: in.String(), Detail: fmt.Sprintf(format, args...)}
	m.res.Events = append(m.res.Events, e)
	if m.cfg.EventTrace != nil {
		m.cfg.EventTrace(e)
	}
}

// Patch overlays an absolute volume for the instruction at pc,
// overriding the compiled plan (volume table or edge-keyed source).
// Adaptive replanning installs the residual re-solve through it; the
// overlay rides in snapshots so resumed runs see the patched plan.
func (m *Machine) Patch(pc int, vol float64) {
	if m.patches == nil {
		m.patches = ais.VolumeTable{}
	}
	m.patches[pc] = vol
}

// Patches returns a copy of the installed patch overlay (nil when no
// instruction has been patched).
func (m *Machine) Patches() ais.VolumeTable {
	if m.patches == nil {
		return nil
	}
	out := make(ais.VolumeTable, len(m.patches))
	for pc, v := range m.patches {
		out[pc] = v
	}
	return out
}

// VolumeConfig reports the volume-management parameters the machine
// enforces (capacity, least count, safety margin) — the configuration a
// residual re-solve must plan against.
func (m *Machine) VolumeConfig() core.Config { return m.cfg.Volume }

// MoveSecondsPer reports the configured fluid-transport time per wet
// instruction, for repair-cost estimates.
func (m *Machine) MoveSecondsPer() float64 { return m.cfg.MoveSeconds }

// Run executes the program to completion (or the instruction budget) and
// returns the result.
func (m *Machine) Run(prog *ais.Program) (*Result, error) {
	pc := 0
	for pc < len(prog.Instrs) {
		next, halted, err := m.ExecOne(prog, pc)
		if err != nil {
			return nil, err
		}
		if halted {
			break
		}
		pc = next
	}
	return m.Finalize(), nil
}

// ExecOne executes the single instruction at pc and returns the next pc
// (after jumps) and whether the program halted. It is Run's loop body,
// exported so an external recovery runtime can interleave retries and
// backward-slice re-execution between instructions; the instruction
// budget and step ordinal are machine state shared with Run.
func (m *Machine) ExecOne(prog *ais.Program, pc int) (next int, halted bool, err error) {
	if m.budget == 0 {
		m.budget = 100*len(prog.Instrs) + 10000
	}
	if m.steps > m.budget {
		return 0, false, fmt.Errorf("aquacore: instruction budget exhausted (dry-code loop?)")
	}
	// Charge the cooperative budget before executing: a trip leaves the
	// machine exactly at this instruction boundary, the instruction at pc
	// unexecuted. (Distinct from m.budget above, the anti-runaway step
	// counter, which IS machine state and is snapshotted.)
	if err := m.cfg.Budget.Charge(1); err != nil {
		return 0, false, err
	}
	if pc < 0 || pc >= len(prog.Instrs) {
		return 0, false, fmt.Errorf("aquacore: pc %d out of range [0,%d)", pc, len(prog.Instrs))
	}
	in := prog.Instrs[pc]
	var traced []VesselDelta
	if m.cfg.Trace != nil {
		for _, name := range m.touched(in) {
			d := VesselDelta{Name: name}
			if v, ok := m.vessels[name]; ok {
				d.Pre = v.vol
			}
			traced = append(traced, d)
		}
	}
	next = pc
	wetBefore := m.res.WetSeconds
	jumped, err := m.step(pc, in, prog, &next)
	if err != nil {
		return 0, false, err
	}
	if m.flt != nil {
		m.evaporate(m.res.WetSeconds - wetBefore)
	}
	if m.cfg.Trace != nil {
		for i := range traced {
			if v, ok := m.vessels[traced[i].Name]; ok {
				traced[i].Post = v.vol
			}
		}
		m.cfg.Trace(TraceEntry{Step: m.steps, PC: pc, Instr: in, Vessels: traced})
	}
	m.steps++
	if in.Op == ais.Halt {
		return pc, true, nil
	}
	if !jumped {
		next = pc + 1
	}
	return next, false, nil
}

// Finalize snapshots the final register file into the result and returns
// it. Run calls it automatically; external drivers call it once after
// their own execution loop.
func (m *Machine) Finalize() *Result {
	for k, v := range m.regs {
		if m.known[k] {
			m.res.Dry[k] = v
		}
	}
	if m.drift != nil {
		m.res.VolumeDrift = m.drift
	}
	return m.res
}

// evaporate removes the injected evaporation fraction for dt seconds of
// wet time from every vessel. Deterministic (no PRNG draw), and each
// vessel's loss is computed from its own volume and recorded under its
// own drift key, so iteration order cannot perturb machine state.
func (m *Machine) evaporate(dt float64) {
	frac := m.flt.EvapFraction(dt)
	if frac <= 0 {
		return
	}
	//fluidvet:allow determinism per-vessel independent update: loss depends only on the vessel and lands in drift[name]
	for name, v := range m.vessels {
		if v.vol <= 0 {
			continue
		}
		loss := v.vol * frac
		v.draw(loss)
		m.drift[name] += loss
	}
}

// VesselVolume reports the current volume (nl) held by a named vessel
// (reservoir, unit, or unit port); unknown vessels hold 0. Recovery
// runtimes use it for pre-transfer shortfall checks.
func (m *Machine) VesselVolume(name string) float64 {
	if v, ok := m.vessels[name]; ok {
		return v.vol
	}
	return 0
}

// Faults returns the active fault injector (nil when faults are off).
// Recovery runtimes read its profile to pad shortfall checks by the
// worst-case metering jitter.
func (m *Machine) Faults() *faults.Injector { return m.flt }

// Events returns the events recorded so far (the live slice, not a
// copy); external drivers diff its length across ExecOne calls to detect
// per-instruction faults.
func (m *Machine) Events() []Event { return m.res.Events }

// RecordEvent appends an externally-generated event (retries,
// regenerations, and replans from a recovery runtime) so the causal
// chain lives in one place.
func (m *Machine) RecordEvent(e Event) {
	m.res.Events = append(m.res.Events, e)
	if m.cfg.EventTrace != nil {
		m.cfg.EventTrace(e)
	}
}

// Idle advances simulated wet time without executing an instruction —
// the recovery runtime's retry backoff. Evaporation (when injected)
// continues during the wait.
func (m *Machine) Idle(seconds float64) {
	if seconds <= 0 {
		return
	}
	m.res.WetSeconds += seconds
	m.res.UnitSeconds["idle"] += seconds
	if m.flt != nil {
		m.evaporate(seconds)
	}
}

// PlannedTransfer reports the planned (pre-fault) source vessel and
// volume of the transfer instruction at pc, resolving exactly as step
// would: absolute operand, volume table, then edge-keyed VolumeSource.
// ok is false for non-transfer instructions and for whole-vessel moves,
// whose draw amount is whatever the vessel holds.
func (m *Machine) PlannedTransfer(pc int, in ais.Instr) (src string, vol float64, ok bool) {
	switch in.Op {
	case ais.Move, ais.MoveAbs, ais.Output:
	default:
		return "", 0, false
	}
	if len(in.Operands) < 2 {
		return "", 0, false
	}
	src, ok = operandVessel(in.Operands[1])
	if !ok {
		return "", 0, false
	}
	if in.Op == ais.MoveAbs {
		if len(in.Operands) > 2 && in.Operands[2].Kind == ais.Imm {
			return src, in.Operands[2].Value * m.cfg.Volume.LeastCount, true
		}
		return "", 0, false
	}
	if v, has := m.patches[pc]; has {
		return src, v, true
	}
	if v, has := m.instrVol[pc]; has {
		return src, v, true
	}
	if in.Edge >= 0 && m.src != nil {
		if v, has := m.src.EdgeVolume(in.Edge); has {
			return src, v, true
		}
	}
	return "", 0, false
}

// PlannedLoad reports the planned (pre-fault) volume the Input
// instruction at pc would draw from its port, resolving exactly as step
// would: patch overlay, node-keyed VolumeSource, machine maximum.
// ok is false for non-Input instructions. Repair-cost estimates use it
// to price the fresh reagent a regeneration replay would consume.
func (m *Machine) PlannedLoad(pc int, in ais.Instr) (float64, bool) {
	if in.Op != ais.Input {
		return 0, false
	}
	if v, ok := m.patches[pc]; ok {
		return math.Min(v, m.cfg.Volume.MaxCapacity), true
	}
	if in.Node >= 0 && m.src != nil {
		if v, ok := m.src.NodeVolume(in.Node); ok {
			return math.Min(v, m.cfg.Volume.MaxCapacity), true
		}
	}
	return m.cfg.Volume.MaxCapacity, true
}

// measured reports one run-time measurement to the volume source and
// records it for snapshots.
func (m *Machine) measured(node int, port string, vol float64) {
	m.src.Measured(node, port, vol)
	m.measLog = append(m.measLog, Measurement{Node: node, Port: port, Volume: vol})
}

// noteSolveErrors surfaces any volume-solve errors the source recorded
// since the last check as EventSolveFailed events, anchored at the
// measuring instruction that triggered the solve.
func (m *Machine) noteSolveErrors(pc int, in ais.Instr) {
	errs := m.sourceSolveErrors()
	for ; m.solveErrsSeen < len(errs); m.solveErrsSeen++ {
		m.event(EventSolveFailed, pc, in, "runtime volume solve failed: %v", errs[m.solveErrsSeen])
	}
}

// touched lists the vessels a traced instruction can affect: its operand
// vessels plus, for separations, the unit's derived ports.
func (m *Machine) touched(in ais.Instr) []string {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, o := range in.Operands {
		if n, ok := operandVessel(o); ok {
			add(n)
		}
	}
	if in.Op.IsSeparate() && len(in.Operands) > 0 {
		u := in.Operands[0].Name
		for _, sub := range []string{"out1", "out2", "matrix", "pusher"} {
			add(u + "." + sub)
		}
	}
	return names
}

// minOperands is the operand count below which step would be unable to
// execute the opcode at all. Assembled listings can be malformed (the ISA
// text is hand-editable), so the machine reports a clean error instead of
// indexing out of range; the aisverify structural pass flags the same
// programs at compile time (AIS012).
func minOperands(op ais.Opcode) int {
	switch op {
	case ais.Nop, ais.Halt:
		return 0
	case ais.Mix, ais.Incubate, ais.Concentrate,
		ais.SeparateCE, ais.SeparateSize, ais.SeparateAF, ais.SeparateLC,
		ais.DryNot, ais.DryJump:
		return 1
	default:
		return 2
	}
}

func (m *Machine) step(pc int, in ais.Instr, prog *ais.Program, pcOut *int) (jumped bool, err error) {
	if len(in.Operands) < minOperands(in.Op) {
		return false, fmt.Errorf("aquacore: pc %d: malformed instruction %q: %s needs at least %d operands",
			pc, in, in.Op, minOperands(in.Op))
	}
	cfg := m.cfg
	wet := func(seconds float64) {
		m.res.WetInstrs++
		m.res.WetSeconds += seconds
	}
	attr := func(label string, seconds float64) {
		m.res.UnitSeconds[label] += seconds
	}
	dry := func() {
		m.res.DryInstrs++
		m.res.DrySeconds += cfg.DrySeconds
	}
	argNum := func(i int) float64 {
		if i < len(in.Operands) && in.Operands[i].Kind == ais.Imm {
			return in.Operands[i].Value
		}
		return 0
	}

	switch in.Op {
	case ais.Nop:
		dry()
	case ais.Halt:
	case ais.Input:
		wet(cfg.MoveSeconds)
		attr("transport", cfg.MoveSeconds)
		dstName, _ := operandVessel(in.Operands[0])
		vol := cfg.Volume.MaxCapacity
		if v, ok := m.patches[pc]; ok {
			vol = math.Min(v, cfg.Volume.MaxCapacity)
		} else if in.Node >= 0 && m.src != nil {
			if v, ok := m.src.NodeVolume(in.Node); ok {
				vol = math.Min(v, cfg.Volume.MaxCapacity)
			}
		}
		name := in.Comment
		if name == "" && in.Node >= 0 && m.g != nil {
			name = m.g.Node(in.Node).Name
		}
		if name == "" {
			name = dstName
		}
		if m.flt != nil {
			planned := vol
			vol = math.Min(m.flt.Meter(vol), cfg.Volume.MaxCapacity)
			m.drift[dstName] += planned - vol
		}
		dst := m.vessel(dstName)
		dst.clear()
		dst.add(vol, map[string]float64{name: vol})
		m.res.InputNl += vol
	case ais.Move, ais.MoveAbs:
		wet(cfg.MoveSeconds)
		attr("transport", cfg.MoveSeconds)
		dstName, ok := operandVessel(in.Operands[0])
		if !ok {
			return false, fmt.Errorf("aquacore: pc %d: bad move destination", pc)
		}
		srcName, ok := operandVessel(in.Operands[1])
		if !ok {
			return false, fmt.Errorf("aquacore: pc %d: bad move source", pc)
		}
		srcV := m.vessel(srcName)
		var vol float64
		metered := true
		patchVol, hasPatch := m.patches[pc]
		tabVol, hasTab := m.instrVol[pc]
		switch {
		case in.Op == ais.MoveAbs:
			vol = argNum(2) * cfg.Volume.LeastCount
		case hasPatch:
			vol = patchVol
		case hasTab:
			vol = tabVol
		case in.Edge >= 0 && m.src != nil:
			v, ok := m.src.EdgeVolume(in.Edge)
			if !ok {
				if errs := m.sourceSolveErrors(); len(errs) > 0 {
					return false, fmt.Errorf("aquacore: pc %d: no volume for edge %d: runtime solve failed earlier: %w",
						pc, in.Edge, errs[len(errs)-1])
				}
				return false, fmt.Errorf("aquacore: pc %d: no volume for edge %d (runtime plan not ready?)", pc, in.Edge)
			}
			vol = v
		case in.Edge >= 0:
			return false, fmt.Errorf("aquacore: pc %d: edge-annotated move but no volume source or table", pc)
		default:
			vol = srcV.vol // whole-vessel transfer
			metered = false
		}
		if vol < cfg.Volume.LeastCount-1e-9 && vol > 0 {
			m.event(EventUnderflow, pc, in, "move of %.4g nl below least count %.4g nl", vol, cfg.Volume.LeastCount)
		}
		planned := vol
		if m.flt != nil {
			// Fixed draw order: failure coin first, then metering jitter.
			// Whole-vessel drains are not metered, so no jitter there.
			if m.flt.Fails() {
				m.event(EventFUFailure, pc, in, "transient transport failure: nothing moved from %s to %s", srcName, dstName)
				break
			}
			if metered {
				vol = m.flt.Meter(vol)
			}
		}
		// volTol absorbs serialization rounding (volume tables round to 9
		// significant digits); it is 10⁵× below the least count.
		const volTol = 1e-6
		if vol > srcV.vol+volTol {
			m.event(EventRanOut, pc, in, "need %.4g nl but %s holds %.4g nl", vol, srcName, srcV.vol)
			vol = srcV.vol
		}
		comp := srcV.draw(vol)
		delivered := vol
		if m.flt != nil {
			if dead := math.Min(m.flt.Dead(), delivered); dead > 0 {
				scaleComp(comp, (delivered-dead)/delivered)
				delivered -= dead
				m.event(EventFaultLoss, pc, in, "dead volume: %.4g nl lost in the channel to %s", dead, dstName)
			}
			m.drift[dstName] += planned - delivered
		}
		dstV := m.vessel(dstName)
		dstV.add(delivered, comp)
		if dstV.vol > cfg.Volume.MaxCapacity+1e-6 {
			m.event(EventOverflow, pc, in, "%s at %.4g nl exceeds capacity %.4g nl", dstName, dstV.vol, cfg.Volume.MaxCapacity)
		}
	case ais.Output:
		wet(cfg.MoveSeconds)
		attr("transport", cfg.MoveSeconds)
		srcName, ok := operandVessel(in.Operands[1])
		if !ok {
			return false, fmt.Errorf("aquacore: pc %d: bad output source", pc)
		}
		srcV := m.vessel(srcName)
		vol := srcV.vol
		metered := false
		if v, ok := m.patches[pc]; ok {
			vol = v
			metered = true
		} else if v, ok := m.instrVol[pc]; ok {
			vol = v
			metered = true
		} else if in.Edge >= 0 && m.src != nil {
			if v, ok := m.src.EdgeVolume(in.Edge); ok {
				vol = v
				metered = true
			}
		}
		planned := vol
		port := in.Operands[0].Name
		if m.flt != nil {
			if m.flt.Fails() {
				m.event(EventFUFailure, pc, in, "transient transport failure: nothing delivered from %s to %s", srcName, port)
				break
			}
			if metered {
				vol = m.flt.Meter(vol)
			}
		}
		comp := srcV.draw(vol)
		delivered := vol
		if m.flt != nil {
			if dead := math.Min(m.flt.Dead(), delivered); dead > 0 {
				scaleComp(comp, (delivered-dead)/delivered)
				delivered -= dead
				m.event(EventFaultLoss, pc, in, "dead volume: %.4g nl lost in the channel to %s", dead, port)
			}
			m.drift[port] += planned - delivered
		}
		m.res.Outputs = append(m.res.Outputs, Output{
			Port: port, Volume: delivered, Composition: comp,
		})
	case ais.Mix:
		wet(cfg.MoveSeconds + argNum(1))
		attr("transport", cfg.MoveSeconds)
		attr(in.Operands[0].Name, argNum(1))
		if m.flt != nil && m.flt.Fails() {
			m.event(EventFUFailure, pc, in, "transient FU failure: %s did not run", in.Operands[0].Name)
		}
	case ais.Incubate:
		wet(cfg.MoveSeconds + argNum(2))
		attr("transport", cfg.MoveSeconds)
		attr(in.Operands[0].Name, argNum(2))
		if m.flt != nil && m.flt.Fails() {
			m.event(EventFUFailure, pc, in, "transient FU failure: %s did not run", in.Operands[0].Name)
		}
	case ais.Concentrate:
		wet(cfg.MoveSeconds + argNum(2))
		attr("transport", cfg.MoveSeconds)
		attr(in.Operands[0].Name, argNum(2))
		if m.flt != nil && m.flt.Fails() {
			// Nothing concentrated, nothing measured: the sample stays in
			// the unit for a retry.
			m.event(EventFUFailure, pc, in, "transient FU failure: %s did not run", in.Operands[0].Name)
			break
		}
		name, _ := operandVessel(in.Operands[0])
		v := m.vessel(name)
		kept := v.vol * cfg.ConcentrateYield
		v.draw(v.vol - kept)
		if in.Node >= 0 && m.src != nil {
			m.measured(in.Node, dag.PortDefault, v.vol)
			m.noteSolveErrors(pc, in)
		}
	case ais.SeparateAF, ais.SeparateLC, ais.SeparateCE, ais.SeparateSize:
		wet(cfg.MoveSeconds + argNum(1))
		attr("transport", cfg.MoveSeconds)
		attr(in.Operands[0].Name, argNum(1))
		unit := in.Operands[0].Name
		if m.flt != nil && m.flt.Fails() {
			// Nothing separated, nothing measured: the sample stays in the
			// unit and the staged partitions stay pending for a retry.
			m.event(EventFUFailure, pc, in, "transient FU failure: %s did not run", unit)
			break
		}
		v := m.vessel(unit)
		// Auxiliary matrix/pusher contents do not join the effluent; only
		// the sample separates. For simplicity the whole unit content
		// (sample + pusher) splits by yield, matching the volume DAG's
		// single-input model.
		eff := m.vessel(unit + ".out1")
		waste := m.vessel(unit + ".out2")
		eff.clear()
		waste.clear()
		total := v.vol
		effVol := total * cfg.SeparationYield
		comp := v.draw(effVol)
		eff.add(effVol, comp)
		rest := v.draw(v.vol)
		waste.add(total-effVol, rest)
		// Matrix/pusher vessels consumed.
		m.vessel(unit + ".matrix").clear()
		m.vessel(unit + ".pusher").clear()
		if in.Node >= 0 && m.src != nil {
			m.measured(in.Node, dag.PortEffluent, effVol)
			m.measured(in.Node, dag.PortWaste, total-effVol)
			m.noteSolveErrors(pc, in)
		}
	case ais.SenseOD, ais.SenseFL:
		wet(cfg.SenseSeconds)
		attr(in.Operands[0].Name, cfg.SenseSeconds)
		unitName, _ := operandVessel(in.Operands[0])
		v := m.vessel(unitName)
		var reading float64
		if cfg.Sense != nil {
			reading = cfg.Sense(v.vol, v.comp, in.Op)
		} else {
			reading = v.vol
		}
		if m.flt != nil {
			reading = m.flt.Sense(reading)
		}
		reg := in.Operands[1].Name
		m.regs[reg] = reading
		m.known[reg] = true
		v.clear() // sensing consumes the sample
	case ais.DryMov, ais.DryAdd, ais.DrySub, ais.DryMul, ais.DryDiv,
		ais.DryMod, ais.DryLT, ais.DryLE, ais.DryEQ:
		dry()
		dst := in.Operands[0].Name
		var src float64
		if in.Operands[1].Kind == ais.Imm {
			src = in.Operands[1].Value
		} else {
			name := in.Operands[1].Name
			if !m.known[name] {
				return false, fmt.Errorf("aquacore: pc %d: read of unset dry register %q", pc, name)
			}
			src = m.regs[name]
		}
		if in.Op == ais.DryMov {
			m.regs[dst] = src
			m.known[dst] = true
			break
		}
		if !m.known[dst] {
			return false, fmt.Errorf("aquacore: pc %d: read of unset dry register %q", pc, dst)
		}
		cur := m.regs[dst]
		switch in.Op {
		case ais.DryAdd:
			cur += src
		case ais.DrySub:
			cur -= src
		case ais.DryMul:
			cur *= src
		case ais.DryDiv:
			if src == 0 {
				return false, fmt.Errorf("aquacore: pc %d: dry division by zero", pc)
			}
			cur /= src
		case ais.DryMod:
			if int64(src) == 0 {
				return false, fmt.Errorf("aquacore: pc %d: dry modulo by zero", pc)
			}
			cur = float64(int64(cur) % int64(src))
		case ais.DryLT:
			cur = b2f(cur < src)
		case ais.DryLE:
			cur = b2f(cur <= src)
		case ais.DryEQ:
			cur = b2f(cur == src)
		}
		m.regs[dst] = cur
	case ais.DryNot:
		dry()
		dst := in.Operands[0].Name
		if !m.known[dst] {
			return false, fmt.Errorf("aquacore: pc %d: read of unset dry register %q", pc, dst)
		}
		m.regs[dst] = b2f(m.regs[dst] == 0)
	case ais.DryJZ:
		dry()
		reg := in.Operands[0].Name
		if !m.known[reg] {
			return false, fmt.Errorf("aquacore: pc %d: jump on unset register %q", pc, reg)
		}
		if m.regs[reg] == 0 {
			target, ok := prog.Labels[in.Operands[1].Name]
			if !ok {
				return false, fmt.Errorf("aquacore: pc %d: undefined label %q", pc, in.Operands[1].Name)
			}
			*pcOut = target
			return true, nil
		}
	case ais.DryJump:
		dry()
		target, ok := prog.Labels[in.Operands[0].Name]
		if !ok {
			return false, fmt.Errorf("aquacore: pc %d: undefined label %q", pc, in.Operands[0].Name)
		}
		*pcOut = target
		return true, nil
	default:
		return false, fmt.Errorf("aquacore: pc %d: unimplemented opcode %v", pc, in.Op)
	}
	return false, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// scaleComp scales a drawn composition in place (dead-volume loss).
func scaleComp(comp map[string]float64, f float64) {
	for k := range comp {
		comp[k] *= f
	}
}

// sourceSolveErrors returns the volume source's recorded solve errors,
// when it records any (StagedSource does).
func (m *Machine) sourceSolveErrors() []error {
	if se, ok := m.src.(interface{ SolveErrors() []error }); ok {
		return se.SolveErrors()
	}
	return nil
}

// Vessels returns a sorted snapshot of non-empty vessels, for tests and
// debugging.
func (m *Machine) Vessels() []string {
	var out []string
	for name, v := range m.vessels {
		if v.vol > 1e-9 {
			out = append(out, fmt.Sprintf("%s=%.3fnl", name, v.vol))
		}
	}
	sort.Strings(out)
	return out
}
