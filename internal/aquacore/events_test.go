package aquacore_test

import (
	"strings"
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
)

// Hand-written programs exercising the machine's event detection and dry
// control flow, independent of the compiler.

func runRaw(t *testing.T, src string, tab ais.VolumeTable) *aquacore.Result {
	t.Helper()
	prog, err := ais.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, nil, nil)
	if tab != nil {
		m.SetVolumeTable(tab)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMachineUnderflowEvent(t *testing.T) {
	// 0.05 nl is below the 0.1 nl least count.
	res := runRaw(t, `input s1, ip1
move mixer1, s1, 1
halt`, ais.VolumeTable{1: 0.05})
	if res.Clean() {
		t.Fatal("expected an underflow event")
	}
	if res.Events[0].Kind != aquacore.EventUnderflow {
		t.Fatalf("event = %v, want underflow", res.Events[0])
	}
}

func TestMachineRanOutEvent(t *testing.T) {
	res := runRaw(t, `input s1, ip1
move mixer1, s1, 1
move mixer1, s1, 1
halt`, ais.VolumeTable{1: 80, 2: 80})
	found := false
	for _, e := range res.Events {
		if e.Kind == aquacore.EventRanOut {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected ran-out (two 80 nl draws from 100 nl), got %v", res.Events)
	}
}

func TestMachineOverflowEvent(t *testing.T) {
	res := runRaw(t, `input s1, ip1
input s2, ip2
move mixer1, s1, 1
move mixer1, s2, 1
halt`, ais.VolumeTable{2: 60, 3: 60})
	found := false
	for _, e := range res.Events {
		if e.Kind == aquacore.EventOverflow {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected overflow (120 nl into a 100 nl mixer), got %v", res.Events)
	}
}

func TestMachineDryControlFlow(t *testing.T) {
	// Countdown loop: x = 3; while x != 0 { x--; sum += 2 }.
	res := runRaw(t, `dry-mov x, 3
dry-mov sum, 0
top:
dry-jz x, done
dry-sub x, 1
dry-add sum, 2
dry-jmp top
done:
halt`, nil)
	if res.Dry["sum"] != 6 || res.Dry["x"] != 0 {
		t.Fatalf("sum=%v x=%v, want 6, 0", res.Dry["sum"], res.Dry["x"])
	}
	if res.DryInstrs < 10 {
		t.Fatalf("dry instrs = %d, want the loop to have run", res.DryInstrs)
	}
}

func TestMachineDryComparisons(t *testing.T) {
	res := runRaw(t, `dry-mov a, 5
dry-lt a, 7
dry-mov b, 5
dry-le b, 5
dry-mov c, 5
dry-eq c, 6
dry-not c
halt`, nil)
	if res.Dry["a"] != 1 || res.Dry["b"] != 1 || res.Dry["c"] != 1 {
		t.Fatalf("a=%v b=%v c=%v, want 1,1,1", res.Dry["a"], res.Dry["b"], res.Dry["c"])
	}
}

func TestMachineUnsetRegisterError(t *testing.T) {
	prog, err := ais.Assemble("dry-add ghost, 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, nil, nil)
	if _, err := m.Run(prog); err == nil || !strings.Contains(err.Error(), "unset dry register") {
		t.Fatalf("err = %v, want unset-register error", err)
	}
}

func TestMachineDivisionByZeroError(t *testing.T) {
	prog, err := ais.Assemble("dry-mov a, 1\ndry-mov b, 0\ndry-div a, b\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, nil, nil)
	if _, err := m.Run(prog); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestMachineInfiniteLoopBudget(t *testing.T) {
	prog, err := ais.Assemble("top:\ndry-jmp top")
	if err != nil {
		t.Fatal(err)
	}
	m := aquacore.New(aquacore.Config{}, nil, nil)
	if _, err := m.Run(prog); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

func TestMachineMoveAbs(t *testing.T) {
	// move-abs volume operand is in least-count units: 50 units = 5 nl.
	res := runRaw(t, `input s1, ip1
move-abs mixer1, s1, 50
halt`, nil)
	if !res.Clean() {
		t.Fatalf("events: %v", res.Events)
	}
	if res.WetInstrs != 2 {
		t.Fatalf("wet instrs = %d", res.WetInstrs)
	}
}

func TestMachineTimingSplit(t *testing.T) {
	res := runRaw(t, `input s1, ip1
move mixer1, s1, 1
mix mixer1, 30
dry-mov x, 1
halt`, ais.VolumeTable{1: 10})
	// 3 wet instrs: input (1 s) + move (1 s) + mix (1 + 30 s).
	if res.WetSeconds != 33 {
		t.Fatalf("wet seconds = %v, want 33", res.WetSeconds)
	}
	if res.DrySeconds >= 1e-3 {
		t.Fatalf("dry seconds = %v, want microseconds", res.DrySeconds)
	}
}
