package regen

import (
	"math"

	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// Strategy selects how a depleted fluid is regenerated.
type Strategy int

const (
	// Lazy re-executes only the depleted producer, recursively drawing
	// its operands (which may trigger further regenerations on demand).
	Lazy Strategy = iota
	// EagerSlice re-executes the fluid's entire backward slice, as
	// BioStream's regeneration does: every producing ancestor runs again
	// whether or not it was empty. Fewer triggers, more re-executed
	// operations per trigger.
	EagerSlice
)

func (s Strategy) String() string {
	if s == EagerSlice {
		return "eager-slice"
	}
	return "lazy"
}

// ExecOptions tunes Execute.
type ExecOptions struct {
	// Strategy selects lazy or eager-slice regeneration.
	Strategy Strategy
	// UnknownYield is the assumed production fraction of unknown-volume
	// nodes. 0 selects 0.4.
	UnknownYield float64
	// OpSeconds estimates the fluidic time per wet operation, for the
	// overhead report. 0 selects 10 s (mix/incubate scale).
	OpSeconds float64
	// MaxRegens aborts pathological runs. 0 selects 1 << 20.
	MaxRegens int
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.UnknownYield == 0 {
		o.UnknownYield = 0.4
	}
	if o.OpSeconds == 0 {
		o.OpSeconds = 10
	}
	if o.MaxRegens == 0 {
		o.MaxRegens = 1 << 20
	}
	return o
}

// ExecReport quantifies a regeneration-repaired execution.
type ExecReport struct {
	// Triggers counts shortfall events (a use finding its fluid
	// depleted).
	Triggers int
	// ReExecutedOps counts wet operations re-run to repair shortfalls.
	ReExecutedOps int
	// BaselineOps counts the assay's own wet operations.
	BaselineOps int
	// ExtraFluidicSeconds estimates the fluidic time spent on
	// regeneration (ReExecutedOps × OpSeconds).
	ExtraFluidicSeconds float64
	// OverheadFraction is ReExecutedOps / BaselineOps.
	OverheadFraction float64
	// Completed is false if MaxRegens aborted the run.
	Completed bool
	// PerFluid breaks triggers down by depleted fluid name.
	PerFluid map[string]int
}

// Execute simulates running g with NO volume management — every operation
// fills its unit to capacity — repairing each shortfall by regeneration
// under the chosen strategy, and reports the overhead. This realizes the
// paper's argument for proactive volume management: regeneration
// re-executes instructions on the fluidic datapath, which is orders of
// magnitude slower than the electronic control (§1).
func Execute(g *dag.Graph, cfg core.Config, opts ExecOptions) *ExecReport {
	opt := opts.withDefaults()
	rep := &ExecReport{Completed: true, PerFluid: map[string]int{}}
	avail := map[*dag.Node]float64{}
	for _, n := range g.Nodes() {
		if n != nil && n.Kind == dag.Input {
			avail[n] = cfg.MaxCapacity
		}
	}
	production := func(n *dag.Node) float64 {
		if n.Kind == dag.Input || n.Kind == dag.ConstrainedInput {
			return cfg.MaxCapacity
		}
		out := n.OutFrac
		if n.Unknown {
			out = opt.UnknownYield
		}
		return cfg.MaxCapacity * out * (1 - n.Discard)
	}
	aborted := false

	// reExecute runs one producing op again (reload for inputs).
	var draw func(p *dag.Node, amt float64, depth int)
	reExecute := func(p *dag.Node, depth int) {
		rep.ReExecutedOps++
		if p.Kind == dag.Input || p.Kind == dag.ConstrainedInput {
			avail[p] = cfg.MaxCapacity
			return
		}
		for _, e := range p.In() {
			draw(e.From, e.Frac*cfg.MaxCapacity, depth+1)
		}
		avail[p] = math.Min(avail[p]+production(p), cfg.MaxCapacity)
	}
	regenerate := func(p *dag.Node, need float64, depth int) {
		rep.Triggers++
		rep.PerFluid[p.Name]++
		if rep.Triggers > opt.MaxRegens {
			aborted = true
			return
		}
		switch opt.Strategy {
		case Lazy:
			reExecute(p, depth)
		case EagerSlice:
			// Re-run the whole backward slice once; repeat the terminal
			// producer until the shortfall is covered.
			for _, s := range BackwardSlice(g, p) {
				reExecute(s, depth)
			}
		}
	}
	draw = func(p *dag.Node, amt float64, depth int) {
		if aborted || depth > 64 {
			return
		}
		for avail[p]+1e-9 < amt && !aborted {
			regenerate(p, amt-avail[p], depth)
		}
		avail[p] -= amt
	}

	for _, c := range g.TopoOrder() {
		if c.Kind == dag.Input || c.Kind == dag.ConstrainedInput || c.Kind == dag.Excess {
			continue
		}
		rep.BaselineOps++
		for _, e := range c.In() {
			draw(e.From, e.Frac*cfg.MaxCapacity, 0)
		}
		avail[c] = production(c)
		if aborted {
			break
		}
	}
	rep.Completed = !aborted
	rep.ExtraFluidicSeconds = float64(rep.ReExecutedOps) * opt.OpSeconds
	if rep.BaselineOps > 0 {
		rep.OverheadFraction = float64(rep.ReExecutedOps) / float64(rep.BaselineOps)
	}
	return rep
}
