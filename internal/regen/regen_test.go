package regen_test

import (
	"testing"

	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/regen"
)

func cfg() core.Config { return core.DefaultConfig() }

// Table 2 shape: glucose needs a handful of regenerations, enzyme tens,
// Enzyme10 thousands; the counts grow by more than an order of magnitude
// at each step (paper: 2 → 85 → 1313).
func TestNaiveCountsShape(t *testing.T) {
	glucose := regen.CountNaive(assays.GlucoseDAG(), cfg(), regen.Options{})
	enzyme := regen.CountNaive(assays.EnzymeDAG(4), cfg(), regen.Options{})
	enzyme10 := regen.CountNaive(assays.EnzymeDAG(10), cfg(), regen.Options{})
	t.Logf("regenerations: glucose=%d enzyme=%d enzyme10=%d",
		glucose.Regenerations, enzyme.Regenerations, enzyme10.Regenerations)

	if glucose.Regenerations < 1 || glucose.Regenerations > 10 {
		t.Errorf("glucose regens = %d, want a handful (paper: 2)", glucose.Regenerations)
	}
	if enzyme.Regenerations < 10*glucose.Regenerations {
		t.Errorf("enzyme regens = %d, want >> glucose's %d (paper: 85 vs 2)",
			enzyme.Regenerations, glucose.Regenerations)
	}
	if enzyme10.Regenerations < 5*enzyme.Regenerations {
		t.Errorf("enzyme10 regens = %d, want >> enzyme's %d (paper: 1313 vs 85)",
			enzyme10.Regenerations, enzyme.Regenerations)
	}
}

// The diluent and its dilutions dominate the enzyme assay's
// regenerations, as the paper's analysis implies.
func TestNaiveEnzymeBlame(t *testing.T) {
	rep := regen.CountNaive(assays.EnzymeDAG(4), cfg(), regen.Options{})
	dilutionRegens := 0
	for name, c := range rep.PerFluid {
		if name == "diluent" || len(name) > 4 && name[3] == '_' { // xxx_dilN
			dilutionRegens += c
		}
	}
	if dilutionRegens < rep.Regenerations/2 {
		t.Errorf("diluent+dilutions account for %d of %d regens; expected the majority",
			dilutionRegens, rep.Regenerations)
	}
}

// With a feasible DAGSolve plan there are zero regenerations (the paper:
// "With DAGSolve, there are no regenerations").
func TestPlannedZeroRegens(t *testing.T) {
	for _, g := range []*dag.Graph{assays.GlucoseDAG(), assays.Fig2DAG()} {
		plan, err := core.DAGSolve(g, cfg(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Feasible() {
			t.Fatal("plan infeasible")
		}
		rep := regen.CountPlanned(plan)
		if rep.Regenerations != 0 {
			t.Errorf("planned regens = %d, want 0", rep.Regenerations)
		}
	}
	// The managed (cascaded + replicated) enzyme assay too.
	res, err := core.Manage(assays.EnzymeDAG(4), cfg(), core.ManageOptions{SkipLP: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := regen.CountPlanned(res.Plan)
	if rep.Regenerations != 0 {
		t.Errorf("managed enzyme planned regens = %d, want 0", rep.Regenerations)
	}
}

func TestBackwardSlice(t *testing.T) {
	g := assays.Fig2DAG()
	m := g.NodeByName("M")
	slice := regen.BackwardSlice(g, m)
	names := map[string]bool{}
	for _, n := range slice {
		names[n.Name] = true
	}
	for _, want := range []string{"A", "B", "C", "K", "L", "M"} {
		if !names[want] {
			t.Errorf("slice missing %s", want)
		}
	}
	if names["N"] {
		t.Error("slice must not include N (not upstream of M)")
	}
	// Topological: M last.
	if slice[len(slice)-1] != m {
		t.Error("target must close its own backward slice")
	}
}

func TestBackwardSliceInput(t *testing.T) {
	g := assays.Fig2DAG()
	a := g.NodeByName("A")
	slice := regen.BackwardSlice(g, a)
	if len(slice) != 1 || slice[0] != a {
		t.Fatalf("input slice = %v, want just A", slice)
	}
}

// Determinism: the naive count is stable across runs.
func TestNaiveDeterministic(t *testing.T) {
	a := regen.CountNaive(assays.EnzymeDAG(4), cfg(), regen.Options{})
	b := regen.CountNaive(assays.EnzymeDAG(4), cfg(), regen.Options{})
	if a.Regenerations != b.Regenerations {
		t.Fatalf("nondeterministic counts: %d vs %d", a.Regenerations, b.Regenerations)
	}
}
