package regen_test

import (
	"testing"

	"aquavol/internal/assays"
	"aquavol/internal/regen"
)

func TestExecuteLazyMatchesCountNaive(t *testing.T) {
	g := assays.EnzymeDAG(4)
	count := regen.CountNaive(g, cfg(), regen.Options{})
	exec := regen.Execute(g, cfg(), regen.ExecOptions{Strategy: regen.Lazy})
	if !exec.Completed {
		t.Fatal("execution aborted")
	}
	// Lazy re-execution re-runs exactly one op per regeneration event.
	if exec.ReExecutedOps != count.Regenerations {
		t.Fatalf("lazy re-executed ops = %d, CountNaive regens = %d; should match",
			exec.ReExecutedOps, count.Regenerations)
	}
}

func TestExecuteEagerCostsMorePerTrigger(t *testing.T) {
	g := assays.EnzymeDAG(4)
	lazy := regen.Execute(g, cfg(), regen.ExecOptions{Strategy: regen.Lazy})
	eager := regen.Execute(g, cfg(), regen.ExecOptions{Strategy: regen.EagerSlice})
	if !lazy.Completed || !eager.Completed {
		t.Fatal("execution aborted")
	}
	// Eager repair re-runs whole slices: fewer or equal triggers, but
	// strictly more re-executed operations per trigger on this assay.
	if eager.Triggers > lazy.Triggers {
		t.Errorf("eager triggers %d > lazy %d; whole-slice repair should not trigger more often",
			eager.Triggers, lazy.Triggers)
	}
	lazyPer := float64(lazy.ReExecutedOps) / float64(lazy.Triggers)
	eagerPer := float64(eager.ReExecutedOps) / float64(eager.Triggers)
	if eagerPer <= lazyPer {
		t.Errorf("ops/trigger: eager %.2f <= lazy %.2f; slices should cost more each",
			eagerPer, lazyPer)
	}
	t.Logf("lazy: %d triggers, %d ops; eager: %d triggers, %d ops",
		lazy.Triggers, lazy.ReExecutedOps, eager.Triggers, eager.ReExecutedOps)
}

func TestExecuteOverheadMetrics(t *testing.T) {
	g := assays.EnzymeDAG(4)
	rep := regen.Execute(g, cfg(), regen.ExecOptions{OpSeconds: 10})
	if rep.BaselineOps != 12+64*3 {
		t.Fatalf("baseline ops = %d, want 204", rep.BaselineOps)
	}
	if rep.OverheadFraction <= 0.3 {
		t.Errorf("overhead fraction = %v; the unmanaged enzyme assay should lose a large fraction to regeneration", rep.OverheadFraction)
	}
	if rep.ExtraFluidicSeconds != float64(rep.ReExecutedOps)*10 {
		t.Error("fluidic overhead not OpSeconds × ops")
	}
}

func TestExecuteGlucoseSmallOverhead(t *testing.T) {
	g := assays.GlucoseDAG()
	rep := regen.Execute(g, cfg(), regen.ExecOptions{})
	if !rep.Completed {
		t.Fatal("aborted")
	}
	if rep.Triggers > 10 {
		t.Errorf("glucose triggers = %d, want a handful", rep.Triggers)
	}
}

func TestExecuteAbortGuard(t *testing.T) {
	g := assays.EnzymeDAG(4)
	rep := regen.Execute(g, cfg(), regen.ExecOptions{MaxRegens: 3})
	if rep.Completed {
		t.Fatal("run should abort with a 3-regeneration budget")
	}
}
