package regen

import (
	"fmt"
	"testing"

	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// deepChain builds input → n1 → … → n(length) with two sinks drawing from
// the tail. The second sink's draw finds the tail already consumed, and —
// because every stage produces exactly one full draw — the regeneration
// cascade recurses the whole chain depth with breadth one. That is the
// pathological shape the recursion-depth bound exists for.
func deepChain(length int) *dag.Graph {
	g := dag.New()
	prev := g.AddInput("in")
	for i := 0; i < length; i++ {
		prev = g.AddUnary(dag.Incubate, fmt.Sprintf("n%d", i+1), prev)
	}
	g.AddUnary(dag.Sense, "sinkA", prev)
	g.AddUnary(dag.Sense, "sinkB", prev)
	return g
}

// A cascade deeper than the 64-level recursion bound must be reported as
// truncated instead of silently under-counted.
func TestCountNaiveTruncated(t *testing.T) {
	rep := CountNaive(deepChain(80), core.DefaultConfig(), Options{})
	if !rep.Truncated {
		t.Fatalf("80-deep regeneration cascade must truncate; got %d regens, truncated=false",
			rep.Regenerations)
	}
	if rep.Regenerations == 0 {
		t.Error("truncation still counts the regenerations it did perform")
	}
}

// A shallow cascade stays exact.
func TestCountNaiveNotTruncatedWhenShallow(t *testing.T) {
	rep := CountNaive(deepChain(10), core.DefaultConfig(), Options{})
	if rep.Truncated {
		t.Error("10-deep cascade must not hit the recursion bound")
	}
	if rep.Regenerations == 0 {
		t.Error("second sink must trigger regenerations")
	}
}

// scheduleOrder must be a valid topological order (the property
// CountNaive/CountPlanned rely on) and deterministic across calls.
func TestScheduleOrderIsTopo(t *testing.T) {
	g := deepChain(20)
	order := scheduleOrder(g)
	pos := make(map[*dag.Node]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != len(pos) {
		t.Fatal("schedule order repeats nodes")
	}
	for _, n := range order {
		for _, e := range n.Out() {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("edge %s→%s violates topological order", e.From.Name, e.To.Name)
			}
		}
	}
	again := scheduleOrder(g)
	for i := range order {
		if order[i] != again[i] {
			t.Fatal("schedule order is not deterministic")
		}
	}
}
