// Package regen implements the reactive-regeneration baseline that the
// paper compares against (BioStream's approach [10], §1 and §4.3):
// execution proceeds with no volume planning, fluids run out, and each
// shortfall is repaired by re-executing the backward slice of the depleted
// fluid's producer.
//
// The paper's Table 2 reports how many regenerations this triggers
// "assuming no volume management" (Glucose 2, Enzyme 85, Enzyme10 1313)
// without specifying BioStream's naive consumption model. This package
// documents its model precisely:
//
//   - every operation fills its functional unit to the machine maximum,
//     drawing each operand in its mix fraction of that fill;
//   - input reservoirs start full; a depleted reservoir is re-loaded to
//     capacity from its input port, and a depleted intermediate fluid is
//     re-produced by re-executing its operation (recursively drawing its
//     own operands, which can cascade further regenerations);
//   - every such re-execution (reload or re-production) counts as one
//     regeneration.
//
// Absolute counts therefore differ from the paper's by a small model
// factor; the shape — near-zero for glucose, tens for enzyme, thousands
// for Enzyme10, and exactly zero under a DAGSolve/LP plan — is preserved,
// which is the claim the experiment supports.
package regen

import (
	"math"

	"aquavol/internal/core"
	"aquavol/internal/dag"
)

// Report summarizes a naive execution.
type Report struct {
	// Regenerations counts re-executions (reloads + re-productions).
	Regenerations int
	// PerFluid breaks the count down by the regenerated node's name.
	PerFluid map[string]int
	// TotalDrawn accumulates volume drawn per producer node name.
	TotalDrawn map[string]float64
	// Truncated reports that the regeneration cascade exceeded the
	// recursion-depth bound (pathological OutFrac chains) and the exact
	// accounting was cut off: Regenerations is then a lower bound, not an
	// exact count.
	Truncated bool
}

// Options tunes the naive model.
type Options struct {
	// UnknownYield is the production fraction assumed for unknown-volume
	// nodes. 0 selects 0.4.
	UnknownYield float64
}

func (o Options) withDefaults() Options {
	if o.UnknownYield == 0 {
		o.UnknownYield = 0.4
	}
	return o
}

// CountNaive simulates executing g with no volume management and reports
// the regenerations required. Consumers execute in deterministic
// topological (program) order.
func CountNaive(g *dag.Graph, cfg core.Config, opts Options) *Report {
	opt := opts.withDefaults()
	rep := &Report{PerFluid: map[string]int{}, TotalDrawn: map[string]float64{}}
	avail := map[*dag.Node]float64{}
	for _, n := range g.Nodes() {
		if n != nil && n.Kind == dag.Input {
			avail[n] = cfg.MaxCapacity // loaded once before execution
		}
	}
	production := func(n *dag.Node) float64 {
		if n.Kind == dag.Input || n.Kind == dag.ConstrainedInput {
			return cfg.MaxCapacity
		}
		out := n.OutFrac
		if n.Unknown {
			out = opt.UnknownYield
		}
		return cfg.MaxCapacity * out * (1 - n.Discard)
	}

	var draw func(p *dag.Node, amt float64, depth int)
	regenerate := func(p *dag.Node, depth int) {
		rep.Regenerations++
		rep.PerFluid[p.Name]++
		if p.Kind == dag.Input || p.Kind == dag.ConstrainedInput {
			avail[p] = cfg.MaxCapacity
			return
		}
		for _, e := range p.In() {
			draw(e.From, e.Frac*cfg.MaxCapacity, depth+1)
		}
		avail[p] = math.Min(avail[p]+production(p), cfg.MaxCapacity)
	}
	draw = func(p *dag.Node, amt float64, depth int) {
		rep.TotalDrawn[p.Name] += amt
		if depth > 64 {
			// Pathological OutFrac chains: give up on exact accounting and
			// say so, rather than silently under-counting.
			rep.Truncated = true
			return
		}
		for avail[p]+1e-9 < amt {
			regenerate(p, depth)
		}
		avail[p] -= amt
	}

	for _, c := range scheduleOrder(g) {
		if c.Kind == dag.Input || c.Kind == dag.ConstrainedInput {
			continue
		}
		for _, e := range c.In() {
			draw(e.From, e.Frac*cfg.MaxCapacity, 0)
		}
		avail[c] = production(c)
	}
	return rep
}

// CountPlanned replays consumption with the volumes of a feasible plan and
// reports the regenerations (zero, by construction of DAGSolve's flow
// conservation; this function exists to demonstrate it).
func CountPlanned(plan *core.Plan) *Report {
	g := plan.Graph
	rep := &Report{PerFluid: map[string]int{}, TotalDrawn: map[string]float64{}}
	avail := map[*dag.Node]float64{}
	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		if n.IsSource() {
			avail[n] = plan.NodeVolume[n.ID()]
		}
	}
	for _, c := range scheduleOrder(g) {
		if c.IsSource() {
			continue
		}
		for _, e := range c.In() {
			need := plan.EdgeVolume[e.ID()]
			rep.TotalDrawn[e.From.Name] += need
			if avail[e.From]+1e-6 < need {
				rep.Regenerations++
				rep.PerFluid[e.From.Name]++
				avail[e.From] += need // regenerate exactly the shortfall
			}
			avail[e.From] -= need
		}
		// Plan.Production is net of excess discard; the excess edge itself
		// is also drawn from the node, so stock the gross production.
		avail[c] = plan.Production[c.ID()] / (1 - c.Discard)
	}
	return rep
}

// scheduleOrder is the deterministic execution order: topological,
// breaking ties by node id (which matches front-end program order).
// TopoOrder already breaks ties by smallest id; TestScheduleOrderIsTopo
// asserts the properties this file relies on.
func scheduleOrder(g *dag.Graph) []*dag.Node {
	return g.TopoOrder()
}

// BackwardSlice returns the nodes whose re-execution regenerates target:
// the transitive producers of target, in topological order ending with
// target itself (the program slice of §3.4.2 / Tip's survey [11]).
func BackwardSlice(g *dag.Graph, target *dag.Node) []*dag.Node {
	need := map[*dag.Node]bool{target: true}
	var visit func(n *dag.Node)
	visit = func(n *dag.Node) {
		for _, e := range n.In() {
			if !need[e.From] {
				need[e.From] = true
				visit(e.From)
			}
		}
	}
	visit(target)
	var out []*dag.Node
	for _, n := range g.TopoOrder() {
		if need[n] {
			out = append(out, n)
		}
	}
	return out
}
