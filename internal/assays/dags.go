// Package assays provides the paper's benchmark assays (§4.1) in two
// forms: programmatic DAG builders used by tests and benchmarks, and
// high-level source texts compiled through the language front end.
//
// Modeling note: separators are fed auxiliary fluids (the affinity matrix
// and the pusher buffer, e.g. lectin and buffer1b in glycomics). Following
// the paper's Fig. 13 — whose partition Vnorms (X2 = 1/204) are only
// reproducible if separations contribute a single volume-managed input —
// auxiliary separator feeds are handled by code generation as implicit
// whole-reservoir moves and do not appear in the volume DAG.
package assays

import (
	"fmt"
	"math"

	"aquavol/internal/dag"
)

// GlucoseDAG builds the glucose-concentration assay of Fig. 9: four
// calibration dilutions of glucose against reagent (1:1, 1:2, 1:4, 1:8)
// plus the sample against reagent (1:1), each optically sensed.
func GlucoseDAG() *dag.Graph {
	g := dag.New()
	glucose := g.AddInput("Glucose")
	reagent := g.AddInput("Reagent")
	sample := g.AddInput("Sample")
	for i, ratio := range []float64{1, 2, 4, 8} {
		m := g.AddMix(fmt.Sprintf("%c", 'a'+i), dag.Part{Source: glucose, Ratio: 1}, dag.Part{Source: reagent, Ratio: ratio})
		g.AddUnary(dag.Sense, fmt.Sprintf("sense%d", i+1), m)
	}
	m := g.AddMix("e", dag.Part{Source: sample, Ratio: 1}, dag.Part{Source: reagent, Ratio: 1})
	g.AddUnary(dag.Sense, "sense5", m)
	return g
}

// EnzymeDAG builds the enzyme-kinetics assay of Fig. 11 generalized to n
// dilutions per reagent (n = 4 is the paper's Enzyme benchmark, n = 10 its
// Enzyme10 stress test). Each of inhibitor, enzyme and substrate is
// diluted n times against a shared diluent in ratios 1:1, 1:9, 1:99, ...,
// 1:(10^(n-1)-1); all n³ combinations are mixed 1:1:1, incubated and
// sensed.
func EnzymeDAG(n int) *dag.Graph {
	if n < 1 {
		panic("assays: EnzymeDAG needs n >= 1")
	}
	g := dag.New()
	inhibitor := g.AddInput("inhibitor")
	enzyme := g.AddInput("enzyme")
	substrate := g.AddInput("substrate")
	diluent := g.AddInput("diluent")

	dilute := func(reagent *dag.Node, tag string) []*dag.Node {
		out := make([]*dag.Node, n)
		for i := 0; i < n; i++ {
			d := math.Pow(10, float64(i)) // 1, 10, 100, ...
			ratio := d - 1
			if i == 0 {
				ratio = 1 // first dilution is 1:1
			}
			out[i] = g.AddMix(fmt.Sprintf("%s_dil%d", tag, i+1),
				dag.Part{Source: reagent, Ratio: 1},
				dag.Part{Source: diluent, Ratio: ratio})
		}
		return out
	}
	di := dilute(inhibitor, "inh")
	de := dilute(enzyme, "enz")
	ds := dilute(substrate, "sub")

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				m := g.AddMix(fmt.Sprintf("combo_%d_%d_%d", i+1, j+1, k+1),
					dag.Part{Source: di[i], Ratio: 1},
					dag.Part{Source: de[j], Ratio: 1},
					dag.Part{Source: ds[k], Ratio: 1})
				h := g.AddUnary(dag.Incubate, fmt.Sprintf("inc_%d_%d_%d", i+1, j+1, k+1), m)
				g.AddUnary(dag.Sense, fmt.Sprintf("sense_%d_%d_%d", i+1, j+1, k+1), h)
			}
		}
	}
	return g
}

// GlycomicsDAG builds the glycomics assay of Fig. 10: affinity separation
// of glycoproteins, enzymatic glycan cleavage, two liquid-chromatography
// separations, and permethylation. The three separations produce
// statically-unknown volumes, so the DAG partitions into the four regions
// of Fig. 13.
func GlycomicsDAG() *dag.Graph {
	g := dag.New()
	b1a := g.AddInput("buffer1a")
	sample := g.AddInput("sample")
	b2 := g.AddInput("buffer2")
	b3a := g.AddInput("buffer3a")
	b4 := g.AddInput("buffer4")
	naoh := g.AddInput("NaOH")
	b5 := g.AddInput("buffer5")

	m1 := g.AddMix("m1", dag.Part{Source: b1a, Ratio: 1}, dag.Part{Source: sample, Ratio: 1})
	sep1 := g.AddUnary(dag.Separate, "sep1", m1)
	sep1.Unknown = true

	m2 := g.AddNode(dag.Mix, "m2")
	g.AddPortEdge(sep1, m2, 0.5, dag.PortEffluent)
	g.AddEdge(b2, m2, 0.5)
	inc1 := g.AddUnary(dag.Incubate, "inc1", m2)
	m3 := g.AddMix("m3", dag.Part{Source: inc1, Ratio: 1}, dag.Part{Source: b3a, Ratio: 10})
	sep2 := g.AddUnary(dag.Separate, "sep2", m3)
	sep2.Unknown = true

	m4 := g.AddNode(dag.Mix, "m4")
	g.AddPortEdge(sep2, m4, 1.0/102, dag.PortEffluent)
	g.AddEdge(b4, m4, 100.0/102)
	g.AddEdge(naoh, m4, 1.0/102)
	m5 := g.AddMix("m5", dag.Part{Source: m4, Ratio: 1}, dag.Part{Source: b3a, Ratio: 1})
	sep3 := g.AddUnary(dag.Separate, "sep3", m5)
	sep3.Unknown = true

	m6 := g.AddNode(dag.Mix, "m6")
	g.AddPortEdge(sep3, m6, 0.5, dag.PortEffluent)
	g.AddEdge(b5, m6, 0.5)
	return g
}

// Fig2DAG builds the paper's running example (Fig. 2): K = A:B in 1:4,
// L = B:C in 2:1, M = K:L in 2:1, N = L:C in 2:3.
func Fig2DAG() *dag.Graph {
	g := dag.New()
	a := g.AddInput("A")
	b := g.AddInput("B")
	c := g.AddInput("C")
	k := g.AddMix("K", dag.Part{Source: a, Ratio: 1}, dag.Part{Source: b, Ratio: 4})
	l := g.AddMix("L", dag.Part{Source: b, Ratio: 2}, dag.Part{Source: c, Ratio: 1})
	g.AddMix("M", dag.Part{Source: k, Ratio: 2}, dag.Part{Source: l, Ratio: 1})
	g.AddMix("N", dag.Part{Source: l, Ratio: 2}, dag.Part{Source: c, Ratio: 3})
	return g
}
