package assays

import "fmt"

// GlucoseSource is the glucose assay of Fig. 9(a) in the paper's
// high-level assay language.
const GlucoseSource = `ASSAY glucose START
fluid Glucose, Reagent, Sample;
fluid a, b, c, d, e;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[1];
b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO Result[2];
c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[3];
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL it INTO Result[4];
e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[5];
END
`

// GlycomicsSource is the glycomics assay of Fig. 10(a): affinity
// separation, glycan cleavage, two LC separations, permethylation.
const GlycomicsSource = `ASSAY glycomics START
fluid buffer1a, buffer1b, buffer2; -- buffer2 has PNGan F
fluid buffer3a, buffer3b, buffer4, buffer5;
fluid sample, lectin, C_18, NaOH;
fluid effluent, effluent2, effluent3, waste, waste2, waste3;
MIX buffer1a AND sample FOR 30;
SEPARATE it MATRIX lectin USING buffer1b FOR 30 INTO effluent AND waste;
MIX effluent AND buffer2 FOR 30;
INCUBATE it AT 37 FOR 30;
MIX it AND buffer3a IN RATIOS 1:10 FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 30 INTO effluent2 AND waste2;
MIX effluent2 AND buffer4 AND NaOH IN RATIOS 1:100:1 FOR 30;
MIX it AND buffer3a FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 2400 INTO effluent3 AND waste3;
MIX effluent3 AND buffer5 FOR 30
END
`

// EnzymeSource returns the enzyme-kinetics assay of Fig. 11(a) with n
// dilutions per reagent (n = 4 reproduces the paper's listing; n = 10 is
// the Enzyme10 stress test of §4.3). Dilution ratios are computed by the
// assay's own dry arithmetic (1:1, 1:9, 1:99, ...), exercising the
// compiler's dry-expression interpreter during loop unrolling.
func EnzymeSource(n int) string {
	return fmt.Sprintf(`ASSAY enzyme_test START
VAR inhibitor_diluent, enzyme_diluent, substrate_diluent;
VAR i, j, k, temp, RESULT[%[1]d][%[1]d][%[1]d];
fluid Diluted_Inhibitor[%[1]d], Diluted_Enzyme[%[1]d];
fluid Diluted_Substrate[%[1]d];
fluid inhibitor, enzyme, diluent, substrate;
inhibitor_diluent = 1;
enzyme_diluent = 1;
substrate_diluent = 1;
temp = 1;
FOR i FROM 1 TO %[1]d START -- inhibitor
  Diluted_Inhibitor[i] = MIX inhibitor AND diluent IN RATIOS 1:inhibitor_diluent FOR 30;
  temp = temp * 10;
  inhibitor_diluent = temp - 1;
ENDFOR
temp = 1;
FOR j FROM 1 TO %[1]d START -- enzyme
  Diluted_Enzyme[j] = MIX enzyme AND diluent IN RATIOS 1:enzyme_diluent FOR 30;
  temp = temp * 10;
  enzyme_diluent = temp - 1;
ENDFOR
temp = 1;
FOR k FROM 1 TO %[1]d START -- substrate
  Diluted_Substrate[k] = MIX substrate AND diluent IN RATIOS 1:substrate_diluent FOR 30;
  temp = temp * 10;
  substrate_diluent = temp - 1;
ENDFOR
FOR i FROM 1 TO %[1]d START
  FOR j FROM 1 TO %[1]d START
    FOR k FROM 1 TO %[1]d START
      MIX Diluted_Inhibitor[i] AND Diluted_Enzyme[j] AND Diluted_Substrate[k] FOR 60;
      INCUBATE it AT 37 FOR 300;
      SENSE OPTICAL it INTO RESULT[i][j][k];
    ENDFOR
  ENDFOR
ENDFOR
END
`, n)
}
