package assays_test

import (
	"math"
	"testing"

	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/lang"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func counts(g *dag.Graph) (nodes, edges int, byKind map[dag.Kind]int) {
	byKind = map[dag.Kind]int{}
	for _, n := range g.Nodes() {
		if n != nil {
			nodes++
			byKind[n.Kind]++
		}
	}
	for _, e := range g.Edges() {
		if e != nil {
			edges++
		}
	}
	return
}

// The compiled glucose assay is structurally identical to the canonical
// builder and produces the same volume plan.
func TestGlucoseSourceMatchesDAG(t *testing.T) {
	prog, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	gc, ec, kindsC := counts(prog.Graph)
	gd, ed, kindsD := counts(assays.GlucoseDAG())
	if gc != gd || ec != ed {
		t.Fatalf("compiled %d/%d vs canonical %d/%d nodes/edges", gc, ec, gd, ed)
	}
	for k, v := range kindsD {
		if kindsC[k] != v {
			t.Fatalf("kind %v: compiled %d, canonical %d", k, kindsC[k], v)
		}
	}
	cfg := core.DefaultConfig()
	pc, err := core.DAGSolve(prog.Graph, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := core.DAGSolve(assays.GlucoseDAG(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, minC := pc.MinDispense()
	_, minD := pd.MinDispense()
	if !approx(minC, minD) {
		t.Fatalf("min dispense: compiled %v vs canonical %v", minC, minD)
	}
	if !approx(minC, 100.0/9/(151.0/45)) {
		t.Fatalf("min dispense %v, want ≈3.311 nl", minC)
	}
}

func TestEnzymeSourceMatchesDAG(t *testing.T) {
	prog, err := lang.Compile(assays.EnzymeSource(4))
	if err != nil {
		t.Fatal(err)
	}
	gc, ec, _ := counts(prog.Graph)
	gd, ed, _ := counts(assays.EnzymeDAG(4))
	if gc != gd || ec != ed {
		t.Fatalf("compiled %d/%d vs canonical %d/%d nodes/edges", gc, ec, gd, ed)
	}
	if gc != 208 || ec != 344 {
		t.Fatalf("enzyme graph = %d nodes %d edges, want 208/344", gc, ec)
	}
	cfg := core.DefaultConfig()
	pc, err := core.DAGSolve(prog.Graph, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same bottleneck and same failing dispense as the canonical DAG.
	dil := prog.Graph.Node(prog.Inputs["diluent"])
	if !approx(pc.NodeVnorm[dil.ID()], 16*(0.5+0.9+0.99+0.999)) {
		t.Fatalf("diluent Vnorm = %v, want ≈54.2", pc.NodeVnorm[dil.ID()])
	}
	_, min := pc.MinDispense()
	if math.Abs(min-0.009836) > 1e-4 {
		t.Fatalf("min dispense = %v, want ≈9.8 pl", min)
	}
}

func TestGlycomicsSourcePartitions(t *testing.T) {
	prog, err := lang.Compile(assays.GlycomicsSource)
	if err != nil {
		t.Fatal(err)
	}
	// Auxiliary separator fluids are not volume-managed.
	if _, ok := prog.Inputs["lectin"]; ok {
		t.Fatal("lectin should be auxiliary, not a DAG input")
	}
	if len(prog.AuxInputs) != 3 { // lectin, buffer1b, C_18/buffer3b shared
		// lectin, buffer1b, C_18, buffer3b → 4 distinct
		t.Logf("aux inputs: %v", prog.AuxInputs)
	}
	sp, err := core.NewStagedPlan(prog.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumParts() != 4 {
		t.Fatalf("parts = %d, want 4 (Fig. 13)", sp.NumParts())
	}
	// X2 Vnorm = 1/204 as in the canonical DAG.
	found := false
	for _, b := range sp.Partition.Bindings {
		src := prog.Graph.Node(b.SourceID)
		if src.Unknown && b.SourceUnknown {
			vn := sp.Vnorms[b.Part].Node[b.NodeID]
			if approx(vn, 1.0/204) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no constrained input with Vnorm 1/204 (paper Fig. 13 X2)")
	}
}

func TestEnzymeSourceScalesWithN(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		prog, err := lang.Compile(assays.EnzymeSource(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantNodes := 4 + 3*n + 3*n*n*n
		got, _, _ := counts(prog.Graph)
		if got != wantNodes {
			t.Fatalf("n=%d: nodes = %d, want %d", n, got, wantNodes)
		}
	}
}

func TestFig2DAGValidates(t *testing.T) {
	if err := assays.Fig2DAG().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := assays.GlucoseDAG().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := assays.GlycomicsDAG().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := assays.EnzymeDAG(4).Validate(); err != nil {
		t.Fatal(err)
	}
}
