package recovery_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/faults"
	recovery "aquavol/internal/recover"
)

// Adaptive replanning under a lossy profile rescales the remaining plan
// around the measured shortfall instead of re-brewing the producer: the
// run completes, replans fire, and the counters surface in the summary.
func TestReplanRescalesShortfalls(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	prof, _ := faults.Preset("moderate")
	m := newMachine(ep, plan, prof, 7, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{EnableReplan: true})
	if out.Status == recovery.Aborted {
		t.Fatalf("aborted: %v", out.Err)
	}
	if out.Replans == 0 || out.ReplanInstrs == 0 {
		t.Fatalf("moderate losses must trigger replans (%s)", out.Summary())
	}
	if len(out.ReplanBoundaries) != out.Replans {
		t.Errorf("boundaries (%v) disagree with replan count %d", out.ReplanBoundaries, out.Replans)
	}
	if !strings.Contains(out.Summary(), "replans") {
		t.Errorf("summary omits replan count: %s", out.Summary())
	}
	saw := false
	for _, e := range m.Events() {
		if e.Kind == aquacore.EventReplan {
			saw = true
		}
	}
	if !saw {
		t.Error("no EventReplan recorded on the machine")
	}
}

// A replan run is exactly reproducible: repair decisions derive only
// from seeded machine state, so same inputs give the same trace and an
// equal Outcome.
func TestReplanDeterministic(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	prof, _ := faults.Preset("moderate")
	run := func() (*recovery.Outcome, []string) {
		var trace []string
		m := newMachine(ep, plan, prof, 7, &trace)
		return recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
			recovery.Options{EnableReplan: true}), trace
	}
	out1, tr1 := run()
	out2, tr2 := run()
	if out1.Replans == 0 {
		t.Fatalf("fixture lost its replans (%s)", out1.Summary())
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("replan traces diverge between identical runs")
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("replan outcomes differ:\n  %s\n  %s", out1.Summary(), out2.Summary())
	}
}

// Replanning is strictly opt-in: default options must behave exactly as
// before the feature existed — zero replans, no replan events.
func TestReplanOptIn(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	prof, _ := faults.Preset("moderate")
	m := newMachine(ep, plan, prof, 7, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{})
	if out.Replans != 0 || out.ReplanInstrs != 0 || len(out.ReplanBoundaries) != 0 {
		t.Fatalf("default options must not replan (%s)", out.Summary())
	}
	for _, e := range m.Events() {
		if e.Kind == aquacore.EventReplan {
			t.Fatalf("EventReplan recorded without EnableReplan: %v", e)
		}
	}
}

// A regeneration whose replay itself faults is classified as its own
// incident cause (EventRegenFault / ErrRegenFailed), not folded into the
// generic failure stream. Dead volume forces regens; a high transient
// failure rate makes some replays fault. Seeds are swept so the test
// stays deterministic without hand-picking one.
func TestRegenFaultClassified(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	prof := faults.Profile{DeadVolume: 0.6, FailRate: 0.35}
	for seed := int64(0); seed < 40; seed++ {
		m := newMachine(ep, plan, prof, seed, nil)
		out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
			recovery.Options{})
		for _, inc := range out.Incidents {
			if inc.Event.Kind != aquacore.EventRegenFault {
				continue
			}
			if !errors.Is(inc.Err(), recovery.ErrRegenFailed) {
				t.Fatalf("regen-fault incident does not match ErrRegenFailed: %v", inc.Err())
			}
			if !strings.Contains(inc.Event.Detail, "regeneration") {
				t.Fatalf("regen-fault detail uninformative: %q", inc.Event.Detail)
			}
			return
		}
	}
	t.Fatal("no seed in 0..39 produced a faulting regeneration; widen the sweep or raise FailRate")
}
