package recovery_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	recovery "aquavol/internal/recover"
	"aquavol/internal/vfs"
)

// machineFingerprint marshals the machine's snapshot: deterministic
// bytes for deterministic state (JSON sorts keys, float64 round-trips
// exactly), so equality here is bit-identity of the whole machine.
func machineFingerprint(t *testing.T, m *aquacore.Machine) string {
	t.Helper()
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// lastSnapshot scans journal records for the most recent snapshot.
func lastSnapshot(recs []*journal.Record) *journal.Snapshot {
	var snap *journal.Snapshot
	for _, r := range recs {
		if r.Kind == journal.KindSnapshot {
			snap = r.Snapshot
		}
	}
	return snap
}

// The chaos contract: a journaled run killed at EVERY instruction
// boundary must, after resume from its last snapshot, finish with
// machine state and outcome bit-identical to the uninterrupted run.
func TestCrashAtEveryBoundaryResumesBitIdentical(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	profile, _ := faults.Preset("moderate")
	const seed = 42
	opts := recovery.Options{SnapshotEvery: 4}

	// Reference: uninterrupted journaled run.
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.aqj")
	jw, f, err := journal.Create(vfs.OS{}, refPath, false)
	if err != nil {
		t.Fatal(err)
	}
	refOpts := opts
	refOpts.Journal = jw
	ref := newMachine(ep, plan, profile, seed, nil)
	refOut := recovery.Run(ref, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, refOpts)
	f.Close()
	if refOut.Status == recovery.Aborted {
		t.Fatalf("reference run aborted: %v", refOut.Err)
	}
	want := machineFingerprint(t, ref)

	refRecs, tail, err := journal.Recover(vfs.OS{}, refPath)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Truncated {
		t.Fatalf("clean run left a bad tail: %s", tail.Reason)
	}
	boundaries := 0
	for _, r := range refRecs {
		if r.Kind == journal.KindStep {
			boundaries++
		}
	}
	if boundaries == 0 {
		t.Fatal("no step records journaled")
	}
	if last := refRecs[len(refRecs)-1]; last.Kind != journal.KindOutcome {
		t.Fatalf("clean journal must close with an outcome record, got %s", last.Kind)
	}

	for k := 0; k < boundaries; k++ {
		path := filepath.Join(dir, fmt.Sprintf("crash%d.aqj", k))
		jw, f, err := journal.Create(vfs.OS{}, path, true)
		if err != nil {
			t.Fatal(err)
		}
		crashOpts := opts
		crashOpts.Journal = jw
		crashOpts.Crash = faults.CrashAt(k)
		m1 := newMachine(ep, plan, profile, seed, nil)
		out1 := recovery.Run(m1, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, crashOpts)
		f.Close()
		if out1.Status != recovery.Aborted {
			t.Fatalf("crash at %d: status %s, want aborted", k, out1.Status)
		}
		if !errors.Is(out1.Err, recovery.ErrAborted) || !errors.Is(out1.Err, faults.ErrCrash) {
			t.Fatalf("crash at %d: error %v must wrap ErrAborted and ErrCrash", k, out1.Err)
		}

		recs, tail, w2, f2, err := journal.OpenAppend(vfs.OS{}, path)
		if err != nil {
			t.Fatalf("crash at %d: reopening journal: %v", k, err)
		}
		if tail.Truncated {
			t.Fatalf("crash at %d: between-append kill left a bad tail: %s", k, tail.Reason)
		}
		if last := recs[len(recs)-1]; last.Kind == journal.KindOutcome {
			t.Fatalf("crash at %d: crashed journal must not contain an outcome record", k)
		}
		snap := lastSnapshot(recs)
		if snap == nil {
			t.Fatalf("crash at %d: no snapshot to resume from", k)
		}
		if snap.Boundary > k {
			t.Fatalf("crash at %d: snapshot boundary %d is past the crash", k, snap.Boundary)
		}

		resumeOpts := opts
		resumeOpts.Journal = w2
		m2 := newMachine(ep, plan, profile, seed, nil)
		out2, err := recovery.Resume(m2, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, resumeOpts, snap)
		f2.Close()
		if err != nil {
			t.Fatalf("crash at %d: resume: %v", k, err)
		}
		if out2.Status != refOut.Status {
			t.Fatalf("crash at %d: resumed status %s, want %s", k, out2.Status, refOut.Status)
		}
		if got := machineFingerprint(t, m2); got != want {
			t.Errorf("crash at %d: resumed final state differs from uninterrupted run\n got: %s\nwant: %s", k, got, want)
		}
		if out2.Retries != refOut.Retries || out2.Regens != refOut.Regens ||
			out2.RegenInstrs != refOut.RegenInstrs || len(out2.Incidents) != len(refOut.Incidents) {
			t.Errorf("crash at %d: resumed accounting (%d retries, %d regens, %d replayed, %d incidents) differs from reference (%d, %d, %d, %d)",
				k, out2.Retries, out2.Regens, out2.RegenInstrs, len(out2.Incidents),
				refOut.Retries, refOut.Regens, refOut.RegenInstrs, len(refOut.Incidents))
		}

		// The continued journal must now close cleanly.
		final, tail, err := journal.Recover(vfs.OS{}, path)
		if err != nil || tail.Truncated {
			t.Fatalf("crash at %d: resumed journal unreadable: %v (%s)", k, err, tail.Reason)
		}
		if last := final[len(final)-1]; last.Kind != journal.KindOutcome {
			t.Fatalf("crash at %d: resumed journal must close with an outcome record, got %s", k, last.Kind)
		}
	}
}

// failAfter is an io.Writer that accepts n bytes then fails: a disk
// that fills up mid-run.
type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

// A journal append failure must abort the run (a WAL that silently
// stops logging is worse than none), wrapping ErrAborted.
func TestJournalWriteFailureAborts(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	jw, err := journal.NewWriter(&failAfter{n: 8}) // header fits, nothing else
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(ep, plan, faults.Profile{}, 0, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{Journal: jw})
	if out.Status != recovery.Aborted {
		t.Fatalf("status %s, want aborted", out.Status)
	}
	if !errors.Is(out.Err, recovery.ErrAborted) {
		t.Fatalf("abort error %v must wrap ErrAborted", out.Err)
	}
	if errors.Is(out.Err, faults.ErrCrash) {
		t.Fatal("a journal write failure is not a simulated crash")
	}
	if out.Result == nil {
		t.Fatal("aborted outcome must still carry the partial result")
	}
}

// Resume validates its snapshot before touching the machine.
func TestResumeValidation(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	m := newMachine(ep, plan, faults.Profile{}, 0, nil)
	if _, err := recovery.Resume(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{}, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := recovery.Resume(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{},
		&journal.Snapshot{Boundary: 0, PC: len(cg.Prog.Instrs) + 1, Machine: &aquacore.Snapshot{}}); err == nil {
		t.Error("out-of-range pc accepted")
	}
}

// Unrepaired incidents classify as sentinel error chains: exhausted
// retries are ErrFUUnavailable, unrepaired shortfalls ErrShortfall.
func TestIncidentErrTaxonomy(t *testing.T) {
	fu := recovery.Incident{Event: aquacore.Event{Kind: aquacore.EventFUFailure, Instr: "mix"}, Retries: 3}
	if !errors.Is(fu.Err(), aquacore.ErrFUUnavailable) {
		t.Errorf("FU-failure incident error %v must wrap ErrFUUnavailable", fu.Err())
	}
	ran := recovery.Incident{Event: aquacore.Event{Kind: aquacore.EventRanOut, Instr: "input"}}
	if !errors.Is(ran.Err(), aquacore.ErrShortfall) {
		t.Errorf("ran-out incident error %v must wrap ErrShortfall", ran.Err())
	}
	if errors.Is(ran.Err(), aquacore.ErrFUUnavailable) {
		t.Error("shortfall incident must not match ErrFUUnavailable")
	}
}

// Degradation path under a hostile profile: with every FU attempt
// failing and retries capped, the run must complete degraded — never
// abort — and record the exhausted-retry incidents.
func TestDegradedRunUnderHarshFaults(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	profile := faults.Profile{FailRate: 1} // every attempt fails
	m := newMachine(ep, plan, profile, 7, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{RetriesPerInstr: 2, TotalRetries: 8})
	if out.Status != recovery.CompletedDegraded {
		t.Fatalf("status %s, want completed-degraded", out.Status)
	}
	if len(out.Incidents) == 0 {
		t.Fatal("degraded run must record incidents")
	}
	for _, inc := range out.Incidents {
		if inc.Event.Kind == aquacore.EventFUFailure && !errors.Is(inc.Err(), aquacore.ErrFUUnavailable) {
			t.Errorf("incident %v must classify as ErrFUUnavailable", inc.Event)
		}
	}
	if out.Err != nil {
		t.Errorf("degraded (non-aborted) run must not set Err: %v", out.Err)
	}
	if out.Result == nil {
		t.Error("degraded run must still produce a result")
	}
}

var _ io.Writer = (*failAfter)(nil)
