package recovery

import "fmt"

// RepairKind enumerates the repair strategies the policy engine can
// choose between, ordered least-invasive first: rescaling remaining
// volumes touches no fluid, a retry re-runs one instruction,
// regeneration replays a whole backward slice with fresh reagent,
// degradation gives up on the repair, and abort gives up on the run.
// The ordering is the cost-tie break: between equally-priced viable
// candidates, the less invasive repair wins.
type RepairKind int

const (
	// RepairRescale re-solves the residual DAG around live volumes and
	// patches the rescaled volumes into the remaining instructions.
	RepairRescale RepairKind = iota
	// RepairRetry re-executes the failed instruction in place.
	RepairRetry
	// RepairRegen re-executes the backward slice of a depleted producer.
	RepairRegen
	// RepairDegrade performs no repair; the fault stands as an incident.
	RepairDegrade
	// RepairAbort stops the run.
	RepairAbort
)

func (k RepairKind) String() string {
	switch k {
	case RepairRescale:
		return "rescale"
	case RepairRetry:
		return "retry"
	case RepairRegen:
		return "regen"
	case RepairDegrade:
		return "degrade"
	case RepairAbort:
		return "abort"
	default:
		return fmt.Sprintf("RepairKind(%d)", int(k))
	}
}

// Candidate is one scored repair option for a single fault.
type Candidate struct {
	Kind RepairKind
	// Reagent is the fresh input fluid (nl) the repair would consume.
	Reagent float64
	// Seconds is the simulated time the repair would spend.
	Seconds float64
	// Viable marks the candidate as applicable: budget remaining, the
	// needed compile artifacts present, preconditions met.
	Viable bool
	// Why documents what the repair does (or why it is not viable).
	Why string
}

// CostModel prices candidate repairs in reagent-equivalent nanoliters.
// The zero value selects the defaults noted on each field.
type CostModel struct {
	// TimeWeight converts simulated seconds to nl-equivalents
	// (default 0.05: a minute of machine time ≈ 3 nl of reagent).
	TimeWeight float64
	// DegradePenalty prices an unrepaired fault (default 1e6): any
	// repair that consumes actual fluid and time still beats giving up.
	DegradePenalty float64
	// AbortPenalty prices killing the run (default 1e9): strictly worse
	// than completing degraded.
	AbortPenalty float64
}

func (c CostModel) withDefaults() CostModel {
	if c.TimeWeight == 0 {
		c.TimeWeight = 0.05
	}
	if c.DegradePenalty == 0 {
		c.DegradePenalty = 1e6
	}
	if c.AbortPenalty == 0 {
		c.AbortPenalty = 1e9
	}
	return c
}

// Cost scores one candidate: reagent plus time-weighted seconds, plus
// the give-up penalty for degrade/abort.
func (c CostModel) Cost(cand Candidate) float64 {
	cost := cand.Reagent + c.TimeWeight*cand.Seconds
	switch cand.Kind {
	case RepairDegrade:
		cost += c.DegradePenalty
	case RepairAbort:
		cost += c.AbortPenalty
	default:
		// Retry/rescale/regen/replan carry no fixed penalty beyond their
		// reagent and time terms.
	}
	return cost
}

// Choose picks the cheapest viable candidate; cost ties break toward
// the less invasive kind (the RepairKind ordering). The second return
// is false when no candidate is viable.
func (c CostModel) Choose(cands ...Candidate) (Candidate, bool) {
	best, found := Candidate{}, false
	var bestCost float64
	for _, cand := range cands {
		if !cand.Viable {
			continue
		}
		cost := c.Cost(cand)
		if !found || cost < bestCost || (cost == bestCost && cand.Kind < best.Kind) {
			best, bestCost, found = cand, cost, true
		}
	}
	return best, found
}
