package recovery

import (
	"fmt"
	"sort"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/certify"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/journal"
	"aquavol/internal/regen"
)

// replanViable reports whether the stalled transfer at pc can be
// repaired by rescaling: pc must be the first planned fluid movement of
// its cluster. Once any in-move or load of a cluster has executed, part
// of its mix is already realized at the old volumes, and rescaling only
// the remaining draws would corrupt the blend ratios.
func replanViable(prog *ais.Program, clusters map[int][2]int, pc int) bool {
	for _, start := range sortedClusterStarts(clusters) {
		cl := clusters[start]
		if pc < cl[0] || pc >= cl[1] {
			continue
		}
		for p := cl[0]; p < pc; p++ {
			if prog.Instrs[p].Edge >= 0 || prog.Instrs[p].Op == ais.Input {
				return false
			}
		}
		return true
	}
	return false
}

// regenEstimate prices one regeneration round for the policy engine:
// the fresh reagent the backward slice's input loads would draw, and
// the simulated time its wet instructions would spend.
func regenEstimate(m *aquacore.Machine, prog *ais.Program, c *Compiled, edge int) (reagent, seconds float64) {
	producer := c.Graph.Edges()[edge].From
	for _, n := range regen.BackwardSlice(c.Graph, producer) {
		cl, ok := c.Clusters[n.ID()]
		if !ok {
			continue
		}
		for p := cl[0]; p < cl[1]; p++ {
			in := prog.Instrs[p]
			if in.Op == ais.Input {
				if v, ok := m.PlannedLoad(p, in); ok {
					reagent += v
				}
			}
			if in.Op.IsWet() {
				seconds += m.MoveSecondsPer()
			}
		}
	}
	return reagent, seconds
}

// applyReplan performs the rescale repair for the stalled transfer at
// pc: extract the residual DAG at the executed/pending frontier,
// re-solve it with the live vessel volumes as fixed boundary
// conditions, and patch the rescaled volumes into the machine's volume
// overlay for every remaining instruction. Unless noCertify, the
// re-solved plan and its patch set must pass the independent checker
// (internal/certify) before a single volume is patched — a replan that
// fails certification is a failed repair, not a wrong one applied.
// Returns (false, nil) when the residual cannot be extracted, re-solved
// feasibly, or certified — the caller falls back to regeneration — and
// a non-nil error only for journal append failures, which abort the run.
func applyReplan(m *aquacore.Machine, prog *ais.Program, c *Compiled, pc, boundary int,
	src string, need, have, jitterPad float64, noCertify bool, jw *journal.Writer, out *Outcome) (bool, error) {
	infeasible := func(why error) (bool, error) {
		m.RecordEvent(aquacore.Event{
			Kind: aquacore.EventReplan, PC: pc, Instr: prog.Instrs[pc].String(),
			Detail: fmt.Sprintf("replan not applicable, falling back: %v", why),
		})
		return false, nil
	}
	// The frontier: a node has executed when its whole cluster lies
	// before pc. The stalled pc is inside its consumer's cluster, so the
	// consumer (and everything after it) is pending. Nodes with no
	// cluster of their own (dry or merged) count as executed; an Excess
	// sink follows its producer inside ExtractResidual.
	executed := func(n *dag.Node) bool {
		cl, ok := c.Clusters[n.ID()]
		if !ok {
			return true
		}
		return cl[1] <= pc
	}
	r, err := dag.ExtractResidual(c.Graph, executed)
	if err != nil {
		return infeasible(err)
	}
	// Live boundary volumes, discounted by the worst-case metering
	// jitter so the rescaled draws survive their own overshoot.
	live := func(sourceID int, port string) (float64, bool) {
		vessel, ok := c.VesselOf[dag.FluidKey(sourceID, port)]
		if !ok {
			return 0, false
		}
		return m.VesselVolume(vessel) / (1 + jitterPad), true
	}
	rp, err := core.SolveResidual(r, m.VolumeConfig(), live)
	if err != nil {
		return infeasible(err)
	}
	if !noCertify {
		if err := certify.CheckResidual(rp, m.VolumeConfig(), live); err != nil {
			return infeasible(fmt.Errorf("replan failed certification: %w", err))
		}
	}

	// Patch every remaining instruction that realizes a residual edge or
	// a pending input load. Generated programs are forward-jump-only, so
	// the remainder is exactly [pc, end).
	edgeVol := rp.EdgeVolumes()
	inputVol := rp.InputVolumes()
	patches := map[int]float64{}
	for p := pc; p < len(prog.Instrs); p++ {
		in := prog.Instrs[p]
		if in.Edge >= 0 {
			if v, ok := edgeVol[in.Edge]; ok {
				patches[p] = v
			}
		} else if in.Op == ais.Input && in.Node >= 0 {
			if v, ok := inputVol[in.Node]; ok {
				patches[p] = v
			}
		}
	}
	if !noCertify {
		// The patch map is the last hand-off before live volumes change:
		// verify every patched pc resolves to a residual edge or input and
		// carries exactly the certified plan's volume for it.
		resolve := func(p int) (edge, node int) {
			in := prog.Instrs[p]
			if in.Edge >= 0 {
				return in.Edge, -1
			}
			if in.Op == ais.Input && in.Node >= 0 {
				return -1, in.Node
			}
			return -1, -1
		}
		if err := certify.CheckPatches(rp, patches, resolve); err != nil {
			return infeasible(fmt.Errorf("replan patches failed certification: %w", err))
		}
	}
	// Patch in pc order so the machine's mutation sequence (and any
	// trace of it) is identical across runs.
	for _, p := range sortedPCs(patches) {
		m.Patch(p, patches[p])
	}

	out.Replans++
	out.ReplanInstrs += len(patches)
	out.ReplanBoundaries = append(out.ReplanBoundaries, boundary)
	m.RecordEvent(aquacore.Event{
		Kind: aquacore.EventReplan, PC: pc, Instr: prog.Instrs[pc].String(),
		Detail: fmt.Sprintf("re-solved residual DAG (%s, scale %.4g): %d instrs rescaled to fit %s at %.4g nl (needed %.4g)",
			rp.Method, rp.Plan.Scale, len(patches), src, have, need),
	})
	if jw != nil {
		if err := jw.Append(&journal.Record{Kind: journal.KindReplan, Replan: &journal.Replan{
			Boundary: boundary, PC: pc, Source: src, Need: need, Have: have,
			Method: rp.Method, Scale: rp.Plan.Scale, Patches: patches,
			CertHash: certify.ReplanHash(rp, patches),
		}}); err != nil {
			return false, err
		}
	}
	return true, nil
}

// sortedClusterStarts returns the cluster keys in increasing order, so
// cluster scans visit ranges deterministically.
func sortedClusterStarts(clusters map[int][2]int) []int {
	keys := make([]int, 0, len(clusters))
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedPCs returns the patched pcs in increasing order.
func sortedPCs(patches map[int]float64) []int {
	pcs := make([]int, 0, len(patches))
	for p := range patches {
		pcs = append(pcs, p)
	}
	sort.Ints(pcs)
	return pcs
}
