package recovery_test

import (
	"fmt"
	"reflect"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/assays"
	"aquavol/internal/codegen"
	"aquavol/internal/core"
	"aquavol/internal/faults"
	"aquavol/internal/lang"
	"aquavol/internal/lang/elab"
	recovery "aquavol/internal/recover"
)

func compileGlucose(t *testing.T) (*elab.Program, *core.Plan, *codegen.Result) {
	t.Helper()
	ep, err := lang.Compile(assays.GlucoseSource)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.DAGSolve(ep.Graph, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := codegen.Generate(ep, ep.Graph, codegen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ep, plan, cg
}

func newMachine(ep *elab.Program, plan *core.Plan, p faults.Profile, seed int64, trace *[]string) *aquacore.Machine {
	cfg := aquacore.Config{}
	if p.Enabled() {
		cfg.Faults = faults.New(p, seed)
	}
	if trace != nil {
		cfg.Trace = func(e aquacore.TraceEntry) {
			*trace = append(*trace, fmt.Sprintf("%+v", e))
		}
	}
	m := aquacore.New(cfg, ep.Graph, aquacore.PlanSource{Plan: plan})
	dry := map[string]float64{}
	for slot, v := range ep.Init {
		dry[ep.Slots[slot]] = v
	}
	m.SetDry(dry)
	return m
}

// With no faults, the recovery wrapper is a no-op: no repairs, and the
// machine result matches a plain Run exactly.
func TestCleanRunCompletes(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	m := newMachine(ep, plan, faults.Profile{}, 0, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{})
	if out.Status != recovery.Completed {
		t.Fatalf("status = %v, want completed (%s)", out.Status, out.Summary())
	}
	if out.Retries != 0 || out.Regens != 0 || len(out.Incidents) != 0 {
		t.Fatalf("clean run must not repair anything: %s", out.Summary())
	}

	plain, err := newMachine(ep, plan, faults.Profile{}, 0, nil).Run(cg.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Result, plain) {
		t.Error("recovered no-fault result differs from plain Run")
	}
}

// Transient FU failures are repaired by in-place retries.
func TestRetryRecoversTransientFailures(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	m := newMachine(ep, plan, faults.Profile{FailRate: 0.2}, 1, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{})
	if out.Status == recovery.Aborted {
		t.Fatalf("aborted: %v", out.Err)
	}
	if out.Retries == 0 {
		t.Fatalf("FailRate 0.2 over a glucose run must trigger retries (%s)", out.Summary())
	}
	if out.Status != recovery.Completed {
		t.Errorf("retries should repair every transient failure here: %s", out.Summary())
	}
	if out.BackoffSeconds <= 0 {
		t.Error("retries must spend simulated backoff time")
	}
}

// Dead-volume loss depletes intermediate fluids; the shortfall check must
// regenerate them by re-executing the producer's backward slice, so the
// run completes without a single ran-out event.
func TestRegenRecoversDepletion(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	m := newMachine(ep, plan, faults.Profile{DeadVolume: 0.5}, 0, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{})
	if out.Status != recovery.Completed {
		t.Fatalf("status = %v, want completed (%s)", out.Status, out.Summary())
	}
	if out.Regens == 0 {
		t.Fatalf("dead volume of 0.5 nl per transport must trigger regeneration (%s)", out.Summary())
	}
	if out.RegenInstrs == 0 {
		t.Error("regenerations must replay instructions")
	}
	for _, e := range m.Events() {
		if e.Kind == aquacore.EventRanOut {
			t.Errorf("shortfall should have been repaired before the draw: %v", e)
		}
	}
}

// Same (listing, plan, seed, profile) ⇒ byte-identical trace and equal
// Outcome — the reproducibility contract of the fault model.
func TestDeterministicOutcome(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	prof, ok := faults.Preset("moderate")
	if !ok {
		t.Fatal("moderate preset missing")
	}
	run := func() (*recovery.Outcome, []string) {
		var trace []string
		m := newMachine(ep, plan, prof, 7, &trace)
		return recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{}), trace
	}
	out1, tr1 := run()
	out2, tr2 := run()
	if !reflect.DeepEqual(tr1, tr2) {
		for i := range tr1 {
			if i < len(tr2) && tr1[i] != tr2[i] {
				t.Fatalf("traces diverge at step %d:\n  %s\n  %s", i, tr1[i], tr2[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(tr1), len(tr2))
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("outcomes differ:\n  %s\n  %s", out1.Summary(), out2.Summary())
	}
}

// Different seeds must diverge (the injector is actually seeded).
func TestSeedChangesOutcome(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	prof, _ := faults.Preset("harsh")
	run := func(seed int64) []string {
		var trace []string
		m := newMachine(ep, plan, prof, seed, &trace)
		recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{})
		return trace
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Error("harsh-profile traces identical across seeds 1 and 2")
	}
}

// A machine error (no volume source for an edge-annotated move) aborts
// with the error and a partial result.
func TestAbortOnMachineError(t *testing.T) {
	ep, _, cg := compileGlucose(t)
	m := aquacore.New(aquacore.Config{}, ep.Graph, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf}, recovery.Options{})
	if out.Status != recovery.Aborted {
		t.Fatalf("status = %v, want aborted", out.Status)
	}
	if out.Err == nil {
		t.Error("aborted outcome must carry the machine error")
	}
	if out.Result == nil {
		t.Error("aborted outcome must still carry the partial result")
	}
}

// With retries disabled and every FU attempt failing, the run still
// reaches the end of the program, degraded, with the failures recorded as
// incidents.
func TestDegradedWhenRetryDisabled(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	m := newMachine(ep, plan, faults.Profile{FailRate: 1}, 0, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{DisableRetry: true, DisableRegen: true})
	if out.Status != recovery.CompletedDegraded {
		t.Fatalf("status = %v, want completed-degraded (%s)", out.Status, out.Summary())
	}
	if len(out.Incidents) == 0 {
		t.Fatal("unrepaired failures must be recorded as incidents")
	}
	if out.Retries != 0 {
		t.Error("DisableRetry must suppress retries")
	}
}

// Retry budgets cap repair effort: with an always-failing unit the run
// degrades instead of retrying forever.
func TestRetryBudgetBounds(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	m := newMachine(ep, plan, faults.Profile{FailRate: 1}, 0, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{RetriesPerInstr: 2, TotalRetries: 5, DisableRegen: true})
	if out.Status != recovery.CompletedDegraded {
		t.Fatalf("status = %v, want completed-degraded (%s)", out.Status, out.Summary())
	}
	if out.Retries > 5 {
		t.Errorf("retries = %d exceeds total budget 5", out.Retries)
	}
}
