package recovery

import (
	"fmt"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/journal"
)

// Snapshots collects a recovered journal's snapshot records in append
// order (oldest first). The last element is the newest snapshot — the
// one a resume tries first.
func Snapshots(recs []*journal.Record) []*journal.Snapshot {
	var snaps []*journal.Snapshot
	for _, r := range recs {
		if r.Kind == journal.KindSnapshot && r.Snapshot != nil {
			snaps = append(snaps, r.Snapshot)
		}
	}
	return snaps
}

// ResumeFallback resumes from the newest usable snapshot, walking the
// ladder toward older ones when a snapshot turns out to be unrestorable
// (CRC-valid frame, poisoned contents: an out-of-range pc, a vanished
// vessel table, an impossible PRNG position — everything snapshot
// validation refuses). Determinism makes every rung equivalent: resuming
// from an older snapshot just replays more boundaries and lands on the
// bit-identical result. The bottom rung is a fresh run from the
// beginning, so the ladder fails only when no machine can be built at
// all.
//
// newMachine must construct a fresh machine per attempt (Restore demands
// one that has executed nothing). note, when non-nil, receives one
// diagnostic line per rejected rung plus the chosen rung's announcement,
// each emitted before execution starts. The returned snapshot is the
// rung that worked — nil when the run restarted from the beginning.
func ResumeFallback(newMachine func() (*aquacore.Machine, error), prog *ais.Program, c *Compiled,
	opts Options, snaps []*journal.Snapshot, note func(string)) (*Outcome, *journal.Snapshot, error) {
	say := func(format string, a ...any) {
		if note != nil {
			note(fmt.Sprintf(format, a...))
		}
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		snap := snaps[i]
		m, err := newMachine()
		if err != nil {
			return nil, nil, fmt.Errorf("recovery: building machine for resume: %w", err)
		}
		out, err := prepareResume(m, prog, snap)
		if err != nil {
			say("snapshot at boundary %d (pc %d) unusable: %v", snap.Boundary, snap.PC, err)
			continue
		}
		say("resuming at boundary %d (pc %d)", snap.Boundary, snap.PC)
		return run(m, prog, c, opts.withDefaults(), snap.PC, snap.Boundary, out), snap, nil
	}
	m, err := newMachine()
	if err != nil {
		return nil, nil, fmt.Errorf("recovery: building machine for restart: %w", err)
	}
	if len(snaps) > 0 {
		say("no usable snapshot among %d; restarting from the beginning", len(snaps))
	}
	return Run(m, prog, c, opts), nil, nil
}
