package recovery_test

import (
	"path/filepath"
	"strings"
	"testing"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	recovery "aquavol/internal/recover"
	"aquavol/internal/vfs"
)

// ladderFixture is a crashed journaled run with several snapshot rungs,
// plus everything a resume needs and the uninterrupted run's reference
// fingerprint.
type ladderFixture struct {
	prog  *ais.Program
	comp  *recovery.Compiled
	mk    func() *aquacore.Machine
	snaps []*journal.Snapshot
	want  string
}

// newLadderFixture kills a journaled glucose run late under a tight
// snapshot cadence, leaving at least three rungs to fall back across.
func newLadderFixture(t *testing.T) *ladderFixture {
	t.Helper()
	ep, plan, cg := compileGlucose(t)
	profile, _ := faults.Preset("moderate")
	const seed = 42
	fx := &ladderFixture{
		prog: cg.Prog,
		comp: &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		mk:   func() *aquacore.Machine { return newMachine(ep, plan, profile, seed, nil) },
	}

	ref := fx.mk()
	refOut := recovery.Run(ref, fx.prog, fx.comp, recovery.Options{})
	if refOut.Status == recovery.Aborted {
		t.Fatalf("reference run aborted: %v", refOut.Err)
	}
	fx.want = machineFingerprint(t, ref)

	path := filepath.Join(t.TempDir(), "crash.aqj")
	jw, f, err := journal.Create(vfs.OS{}, path, false)
	if err != nil {
		t.Fatal(err)
	}
	out := recovery.Run(fx.mk(), fx.prog, fx.comp,
		recovery.Options{SnapshotEvery: 2, Journal: jw, Crash: faults.CrashAt(9)})
	f.Close()
	if out.Status != recovery.Aborted {
		t.Fatalf("crash run status %s, want aborted", out.Status)
	}
	recs, _, err := journal.Recover(vfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	fx.snaps = recovery.Snapshots(recs)
	if len(fx.snaps) < 3 {
		t.Fatalf("need at least 3 snapshot rungs for the ladder, got %d", len(fx.snaps))
	}
	return fx
}

// The ladder: when the newest snapshots are unrestorable (CRC-valid
// frames, poisoned machine state), resume falls back to the first usable
// one and — by determinism — still finishes bit-identical to the
// uninterrupted run.
func TestResumeFallbackLadder(t *testing.T) {
	fx := newLadderFixture(t)

	// Poison the two newest rungs in distinct ways.
	fx.snaps[len(fx.snaps)-1].Machine.Vessels = nil
	fx.snaps[len(fx.snaps)-2].PC = len(fx.prog.Instrs) + 7

	var notes []string
	var m *aquacore.Machine
	out, used, err := recovery.ResumeFallback(
		func() (*aquacore.Machine, error) { m = fx.mk(); return m, nil },
		fx.prog, fx.comp, recovery.Options{SnapshotEvery: 2}, fx.snaps,
		func(s string) { notes = append(notes, s) })
	if err != nil {
		t.Fatal(err)
	}
	if used == nil {
		t.Fatal("ladder restarted from scratch though a good rung existed")
	}
	if used != fx.snaps[len(fx.snaps)-3] {
		t.Errorf("ladder resumed from boundary %d, want the third-newest snapshot (boundary %d)",
			used.Boundary, fx.snaps[len(fx.snaps)-3].Boundary)
	}
	if len(notes) < 3 || !strings.Contains(notes[0], "unusable") || !strings.Contains(notes[1], "unusable") {
		t.Errorf("ladder notes missing rejected-rung diagnostics: %q", notes)
	}
	if out.Status == recovery.Aborted {
		t.Fatalf("ladder resume aborted: %v", out.Err)
	}
	if got := machineFingerprint(t, m); got != fx.want {
		t.Errorf("ladder resume diverged from uninterrupted run\n got: %s\nwant: %s", got, fx.want)
	}
}

// With every snapshot poisoned, the bottom rung restarts from the
// beginning — and determinism still lands the identical final state.
func TestResumeFallbackRestartsWhenAllRungsFail(t *testing.T) {
	fx := newLadderFixture(t)
	for _, s := range fx.snaps {
		s.Machine = nil
	}
	var m *aquacore.Machine
	var notes []string
	out, used, err := recovery.ResumeFallback(
		func() (*aquacore.Machine, error) { m = fx.mk(); return m, nil },
		fx.prog, fx.comp, recovery.Options{}, fx.snaps,
		func(s string) { notes = append(notes, s) })
	if err != nil {
		t.Fatal(err)
	}
	if used != nil {
		t.Fatalf("ladder claims it resumed from boundary %d with every rung poisoned", used.Boundary)
	}
	if len(notes) == 0 || !strings.Contains(notes[len(notes)-1], "restarting from the beginning") {
		t.Errorf("restart note missing: %q", notes)
	}
	if out.Status == recovery.Aborted {
		t.Fatalf("restart rung aborted: %v", out.Err)
	}
	if got := machineFingerprint(t, m); got != fx.want {
		t.Errorf("restarted run diverged from reference\n got: %s\nwant: %s", got, fx.want)
	}
}
