package recovery_test

import (
	"errors"
	"path/filepath"
	"testing"

	"aquavol/internal/aquacore"
	"aquavol/internal/budget"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	recovery "aquavol/internal/recover"
	"aquavol/internal/vfs"
)

// A cancel fired mid-backoff (from the EventRetry hook, which runs right
// after the retry idle) is observed at the next retry-loop boundary: the
// run aborts promptly with the caller-cancelled cause instead of
// spending the rest of its retry budget sleeping.
func TestCancelDuringBackoffAbortsPromptly(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	meter := budget.New(0)
	cfg := aquacore.Config{
		// FailRate 1: every wet attempt transiently fails, so the retry
		// loop keeps cycling until the cancel lands.
		Faults: faults.New(faults.Profile{FailRate: 1}, 3),
		EventTrace: func(e aquacore.Event) {
			if e.Kind == aquacore.EventRetry {
				meter.Cancel()
			}
		},
	}
	m := aquacore.New(cfg, ep.Graph, aquacore.PlanSource{Plan: plan})
	dry := map[string]float64{}
	for slot, v := range ep.Init {
		dry[ep.Slots[slot]] = v
	}
	m.SetDry(dry)

	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{Budget: meter})
	if out.Status != recovery.Aborted {
		t.Fatalf("status = %v, want aborted (%s)", out.Status, out.Summary())
	}
	if !errors.Is(out.Err, budget.ErrCancelled) {
		t.Fatalf("Err = %v, want budget.ErrCancelled", out.Err)
	}
	if !errors.Is(out.Err, recovery.ErrAborted) {
		t.Fatalf("Err = %v, must still wrap ErrAborted", out.Err)
	}
	// Prompt: the cancel fired after the first retry's idle; exactly one
	// more boundary (the next retry-loop poll) may pass before the abort.
	if out.Retries > 1 {
		t.Fatalf("spent %d retries after the cancel, want at most 1", out.Retries)
	}
}

// A cancelled caller aborts at the next instruction boundary of a clean
// run too — no faults needed to observe the stop.
func TestCancelAtInstructionBoundary(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	meter := budget.New(0)
	meter.Cancel()
	m := newMachine(ep, plan, faults.Profile{}, 0, nil)
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{Budget: meter})
	if out.Status != recovery.Aborted || !errors.Is(out.Err, budget.ErrCancelled) {
		t.Fatalf("pre-cancelled run: status %v err %v, want aborted/ErrCancelled", out.Status, out.Err)
	}
	if out.Result == nil {
		t.Fatal("aborted outcome must still carry the partial machine result")
	}
}

// The total-backoff cap is deterministic and viable-checked: retries
// whose wait would push accumulated backoff past MaxBackoffSeconds are
// not taken, so total simulated backoff never exceeds the cap.
func TestMaxBackoffSecondsCapsTotalBackoff(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	m := newMachine(ep, plan, faults.Profile{FailRate: 0.5}, 11, nil)
	const cap = 3.0
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{MaxBackoffSeconds: cap})
	if out.Status == recovery.Aborted {
		t.Fatalf("aborted: %v", out.Err)
	}
	if out.BackoffSeconds > cap {
		t.Fatalf("total backoff %.3gs exceeds cap %.3gs", out.BackoffSeconds, cap)
	}
	// The cap must have bound something at FailRate 0.5, else the test
	// is vacuous: either retries stopped short or incidents were taken.
	if out.Retries == 0 && len(out.Incidents) == 0 {
		t.Fatal("FailRate 0.5 produced neither retries nor incidents; fixture broken")
	}
}

// A budget-cancelled journaled run fail-stops like a crash: no outcome
// record, so the journal remains resumable. (The full resume round-trip
// is exercised by bench E15 and ci.sh; here we pin the record shape.)
func TestCancelWritesNoOutcomeRecord(t *testing.T) {
	ep, plan, cg := compileGlucose(t)
	meter := budget.New(0).CancelAfter(5)
	cfg := aquacore.Config{Budget: meter}
	m := aquacore.New(cfg, ep.Graph, aquacore.PlanSource{Plan: plan})
	dry := map[string]float64{}
	for slot, v := range ep.Init {
		dry[ep.Slots[slot]] = v
	}
	m.SetDry(dry)

	path := filepath.Join(t.TempDir(), "cancel.aqj")
	jw, f, err := journal.Create(vfs.OS{}, path, false)
	if err != nil {
		t.Fatal(err)
	}
	out := recovery.Run(m, cg.Prog, &recovery.Compiled{Graph: ep.Graph, Clusters: cg.Clusters, VesselOf: cg.VesselOf},
		recovery.Options{Budget: meter, Journal: jw})
	if err := f.Close(); err != nil { //fluidvet:allow syncerr test fixture closes after the run's own syncs
		t.Fatal(err)
	}
	if out.Status != recovery.Aborted || !errors.Is(out.Err, budget.ErrCancelled) {
		t.Fatalf("status %v err %v, want aborted/ErrCancelled", out.Status, out.Err)
	}
	recs, _, _, f2, err := journal.OpenAppend(vfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close() //fluidvet:allow syncerr read-only reopen in a test
	sawSnapshot := false
	for _, r := range recs {
		switch r.Kind {
		case journal.KindOutcome:
			t.Fatal("budget stop wrote an outcome record; the journal must stay resumable like after a crash")
		case journal.KindSnapshot:
			sawSnapshot = true
		default:
			// Transfers, steps, recovery actions: fine either way.
		}
	}
	if !sawSnapshot {
		t.Fatal("run wrote no snapshot before the cancel; fixture broken (CancelAfter too early?)")
	}
}
