// Package recovery is the runtime companion to the fault model: it wraps
// AquaCore execution with the two repair strategies the paper's runtime
// layer motivates (§3.5, §4.3) plus graceful degradation.
//
//   - Transient functional-unit failures are retried in place with a
//     linearly-growing simulated-time backoff, bounded per instruction and
//     in total.
//   - A detected volume shortfall — the planned draw of the next transfer
//     exceeds what its source vessel actually holds, e.g. after dead-volume
//     or evaporation losses — regenerates the depleted fluid by
//     re-executing the backward slice of its producer (regen.BackwardSlice
//     over the codegen cluster map), exactly the reactive-regeneration
//     mechanism the regen package only counts.
//   - With Options.EnableReplan, a shortfall first tries the cheaper
//     repair: extract the residual DAG (the not-yet-executed remainder,
//     with live vessel volumes as fixed boundary conditions), re-solve it
//     under the same least-count/capacity constraints, and patch the
//     rescaled volumes into the remaining instructions — consuming no
//     fresh reagent at all. Regeneration remains the fallback when the
//     residual solve is infeasible.
//   - When repair budgets run out the run completes anyway and the Outcome
//     reports degradation, with the causal event chain preserved in the
//     machine's event log.
//
// Which repair runs is decided by a small policy engine (policy.go): each
// applicable strategy becomes a Candidate priced in reagent-equivalent
// nanoliters by a CostModel, and the cheapest viable one is applied.
//
// The package name is recovery (the directory is internal/recover; the
// package cannot be named after the builtin without shadowing it in every
// importer).
package recovery

import (
	"errors"
	"fmt"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/budget"
	"aquavol/internal/dag"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	"aquavol/internal/regen"
)

// volTol mirrors aquacore's volume comparison tolerance (nl).
const volTol = 1e-6

// ErrAborted is the sentinel every aborting Outcome.Err wraps: callers
// match it with errors.Is instead of switching on Status strings, and
// unwrap further for the concrete cause (a machine error, a journal
// write failure, or faults.ErrCrash for a simulated kill).
var ErrAborted = errors.New("recovery: run aborted")

// ErrRegenFailed classifies an incident whose cause was a regeneration
// that itself faulted: the backward-slice replay consumed budget and
// reagent but a fault during the replay kept it from raising the
// source. Distinct from the generic shortfall so callers can tell
// "regeneration was tried and broke" from "regeneration never sufficed".
var ErrRegenFailed = errors.New("recovery: regeneration itself faulted")

// Status classifies how a recovered run ended.
type Status int

const (
	// Completed: every instruction executed, every fault was repaired.
	Completed Status = iota
	// CompletedDegraded: the run reached the end of the program, but at
	// least one fault went unrepaired (see Outcome.Incidents).
	CompletedDegraded
	// Aborted: execution stopped on a machine error (see Outcome.Err).
	Aborted
)

func (s Status) String() string {
	switch s {
	case Completed:
		return "completed"
	case CompletedDegraded:
		return "completed-degraded"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options bounds the repair budgets. The zero value selects the defaults
// noted on each field.
type Options struct {
	// RetriesPerInstr bounds re-attempts of a single failed instruction
	// (default 3).
	RetriesPerInstr int
	// TotalRetries bounds re-attempts across the whole run (default 64).
	TotalRetries int
	// MaxRegens bounds backward-slice re-executions across the run
	// (default 32).
	MaxRegens int
	// MaxRegenRounds bounds consecutive regeneration attempts for one
	// stalled transfer (default 4); a shortfall that survives that many
	// slice re-executions is structural, not transient.
	MaxRegenRounds int
	// BackoffSeconds is the simulated idle before the first retry of an
	// instruction; attempt k waits k×BackoffSeconds (default 1).
	BackoffSeconds float64
	// MaxBackoffSeconds caps the TOTAL simulated backoff across the run
	// (default 4096): a retry whose wait would push the accumulated
	// backoff past the cap is not viable, so the run degrades instead of
	// idling unboundedly. Simulated time makes the cap deterministic.
	MaxBackoffSeconds float64
	// Budget, when non-nil, is polled at every instruction boundary and
	// between retry-backoff idles: a tripped meter fail-stops the run
	// exactly like a crash — Aborted outcome, typed cause in Outcome.Err,
	// and (under Journal) NO outcome record, leaving the journal
	// resumable so the salvaged prefix completes bit-identically later.
	// The meter is polled, never charged, here: the machine charges per
	// executed instruction through its own aquacore.Config.Budget (wire
	// the same meter into both for whole-run bounds).
	Budget *budget.Meter
	// DisableRetry turns off in-place retries.
	DisableRetry bool
	// DisableRegen turns off shortfall regeneration.
	DisableRegen bool
	// EnableReplan turns on adaptive replanning: a stalled transfer
	// first tries re-solving the residual DAG around the live vessel
	// volumes and rescaling the remaining instructions, falling back to
	// regeneration only when that solve is infeasible. Off by default —
	// replanning changes downstream volumes, which existing plans may
	// not want.
	EnableReplan bool
	// MaxReplans bounds residual re-solves across the run (default 8).
	MaxReplans int
	// NoCertify skips the independent certification of every residual
	// replan (internal/certify). On by default as defense-in-depth: a
	// re-solved plan that fails certification counts as a failed repair
	// and the policy engine falls back to the next-cheapest candidate.
	NoCertify bool
	// Cost scores candidate repairs when several apply; the zero value
	// selects the CostModel defaults.
	Cost CostModel
	// Journal, when non-nil, receives the durable-execution record
	// stream: planned transfers, repair actions, one step record per
	// instruction boundary, and periodic full snapshots. A journal append
	// failure aborts the run — a write-ahead log that silently stops
	// logging is worse than none.
	Journal *journal.Writer
	// SnapshotEvery is the snapshot cadence in instruction boundaries
	// (default 8; the first snapshot is always written at the starting
	// boundary). Ignored without Journal.
	SnapshotEvery int
	// Crash schedules a simulated process kill at one instruction
	// boundary (chaos testing): the run stops with faults.ErrCrash and —
	// exactly like a real kill — writes neither a final snapshot nor an
	// outcome record. nil never fires.
	Crash *faults.CrashPoint
}

func (o Options) withDefaults() Options {
	if o.RetriesPerInstr == 0 {
		o.RetriesPerInstr = 3
	}
	if o.TotalRetries == 0 {
		o.TotalRetries = 64
	}
	if o.MaxRegens == 0 {
		o.MaxRegens = 32
	}
	if o.MaxRegenRounds == 0 {
		o.MaxRegenRounds = 4
	}
	if o.MaxReplans == 0 {
		o.MaxReplans = 8
	}
	o.Cost = o.Cost.withDefaults()
	if o.BackoffSeconds == 0 {
		o.BackoffSeconds = 1
	}
	if o.MaxBackoffSeconds == 0 {
		o.MaxBackoffSeconds = 4096
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 8
	}
	return o
}

// Incident is a fault that repair could not (or was not allowed to) fix.
type Incident struct {
	// Event is the unrepaired machine event.
	Event aquacore.Event
	// Retries is how many re-attempts were spent on it before giving up.
	Retries int
}

// Err classifies the incident as a sentinel error chain: an exhausted
// retry budget wraps aquacore.ErrFUUnavailable, an unrepaired shortfall
// wraps aquacore.ErrShortfall. Callers match with errors.Is; the event
// detail stays in the message.
func (i Incident) Err() error {
	switch i.Event.Kind {
	case aquacore.EventFUFailure:
		return fmt.Errorf("%w after %d retries: %s", aquacore.ErrFUUnavailable, i.Retries, i.Event)
	case aquacore.EventRanOut:
		return fmt.Errorf("%w: %s", aquacore.ErrShortfall, i.Event)
	case aquacore.EventRegenFault:
		return fmt.Errorf("%w: %s", ErrRegenFailed, i.Event)
	default:
		return fmt.Errorf("unrepaired fault: %s", i.Event)
	}
}

// Outcome reports a recovered run: the terminal status, the machine
// result, and the repair accounting.
type Outcome struct {
	Status Status
	// Result is the machine result (always set, even on abort, so partial
	// traces and events survive).
	Result *aquacore.Result
	// Retries counts instruction re-attempts across the run.
	Retries int
	// Regens counts backward-slice re-executions.
	Regens int
	// RegenInstrs counts instructions replayed by those re-executions.
	RegenInstrs int
	// Replans counts adaptive residual re-solves applied.
	Replans int
	// ReplanInstrs counts instructions whose volumes those replans
	// rescaled.
	ReplanInstrs int
	// ReplanBoundaries lists the instruction boundaries replans were
	// applied at (crash-resume checks target these).
	ReplanBoundaries []int
	// BackoffSeconds is the total simulated time spent waiting before
	// retries.
	BackoffSeconds float64
	// Incidents lists the faults that went unrepaired.
	Incidents []Incident
	// Err is the machine error that aborted the run (nil otherwise).
	Err error
}

// Summary renders the outcome in one line.
func (o *Outcome) Summary() string {
	s := fmt.Sprintf("%s: %d retries, %d replans (%d instrs rescaled), %d regens (%d instrs replayed), %d unrepaired faults",
		o.Status, o.Retries, o.Replans, o.ReplanInstrs, o.Regens, o.RegenInstrs, len(o.Incidents))
	if o.Err != nil {
		s += fmt.Sprintf(": %v", o.Err)
	}
	return s
}

// Compiled bundles the compile-time artifacts the repair strategies
// need: the managed volume DAG, codegen's node→pc-range cluster map,
// and codegen's fluid→vessel placement map (for live-volume lookups
// during replanning). A nil bundle — or nil fields — degrades
// gracefully: without Graph and Clusters only in-place retry is
// available (e.g. for hand-written listings with no DAG); without
// VesselOf regeneration still works but replanning does not.
type Compiled struct {
	Graph    *dag.Graph
	Clusters map[int][2]int
	VesselOf map[string]string
}

// Run executes prog on m with retry, replanning, and regeneration
// repair, bounded and selected per opts.
//
// Determinism: repair decisions depend only on machine state and events,
// which are themselves deterministic in (listing, plan, seed, profile), so
// two identical runs produce byte-identical traces and Outcomes.
func Run(m *aquacore.Machine, prog *ais.Program, c *Compiled, opts Options) *Outcome {
	return run(m, prog, c, opts.withDefaults(), 0, 0, &Outcome{})
}

// Resume continues a journaled run from a snapshot record: it restores
// the machine state (fault-PRNG position and measurement log included)
// onto the freshly-constructed m, reloads the recovery counters, and
// re-enters the loop at the snapshot's (pc, boundary). Because execution
// is deterministic, the finished run is bit-identical to one that was
// never interrupted. opts.Journal, when set, should append to the
// recovered journal (journal.OpenAppend).
func Resume(m *aquacore.Machine, prog *ais.Program, c *Compiled,
	opts Options, snap *journal.Snapshot) (*Outcome, error) {
	out, err := prepareResume(m, prog, snap)
	if err != nil {
		return nil, err
	}
	return run(m, prog, c, opts.withDefaults(), snap.PC, snap.Boundary, out), nil
}

// prepareResume validates a snapshot, restores it onto the fresh machine
// m, and reconstructs the accumulated recovery counters — everything
// Resume does short of executing. Split out so the fallback ladder can
// probe a snapshot's usability (and announce the chosen rung) before
// committing to the run.
func prepareResume(m *aquacore.Machine, prog *ais.Program, snap *journal.Snapshot) (*Outcome, error) {
	if snap == nil || snap.Machine == nil {
		return nil, fmt.Errorf("recovery: resume needs a snapshot with machine state")
	}
	if snap.PC < 0 || snap.PC > len(prog.Instrs) {
		return nil, fmt.Errorf("recovery: snapshot pc %d out of range [0,%d]", snap.PC, len(prog.Instrs))
	}
	if snap.Boundary < 0 {
		return nil, fmt.Errorf("recovery: snapshot boundary %d is negative: corrupt", snap.Boundary)
	}
	if err := m.Restore(snap.Machine); err != nil {
		return nil, fmt.Errorf("recovery: restoring machine state: %w", err)
	}
	out := &Outcome{}
	if rs := snap.Recovery; rs != nil {
		out.Retries = rs.Retries
		out.Regens = rs.Regens
		out.RegenInstrs = rs.RegenInstrs
		out.Replans = rs.Replans
		out.ReplanInstrs = rs.ReplanInstrs
		out.ReplanBoundaries = append([]int(nil), rs.ReplanBoundaries...)
		out.BackoffSeconds = rs.BackoffSeconds
		for _, inc := range rs.Incidents {
			out.Incidents = append(out.Incidents, Incident{
				Event: aquacore.Event{
					Kind: aquacore.EventKind(inc.Kind), PC: inc.PC,
					Instr: inc.Instr, Detail: inc.Detail,
				},
				Retries: inc.Retries,
			})
		}
	}
	return out, nil
}

// recoveryState flattens the outcome counters for a journal snapshot.
func recoveryState(out *Outcome) *journal.RecoveryState {
	rs := &journal.RecoveryState{
		Retries:          out.Retries,
		Regens:           out.Regens,
		RegenInstrs:      out.RegenInstrs,
		Replans:          out.Replans,
		ReplanInstrs:     out.ReplanInstrs,
		ReplanBoundaries: append([]int(nil), out.ReplanBoundaries...),
		BackoffSeconds:   out.BackoffSeconds,
	}
	for _, inc := range out.Incidents {
		rs.Incidents = append(rs.Incidents, journal.Incident{
			Kind: int(inc.Event.Kind), PC: inc.Event.PC,
			Instr: inc.Event.Instr, Detail: inc.Event.Detail,
			Retries: inc.Retries,
		})
	}
	return rs
}

// run is the recovery loop, entered at (pc, boundary) with accumulated
// counters in out (zero for fresh runs, a snapshot's for resumes).
func run(m *aquacore.Machine, prog *ais.Program, c *Compiled,
	opt Options, pc, boundary int, out *Outcome) *Outcome {
	jw := opt.Journal
	abort := func(err error) *Outcome {
		out.Err = fmt.Errorf("%w: %w", ErrAborted, err)
		out.Status = Aborted
		out.Result = m.Finalize()
		// A real abort is a terminal state the process lived to record —
		// unlike a crash, which by nature journals nothing. A budget stop
		// fail-stops the same way a crash does: no outcome record, so the
		// journal stays resumable and the salvaged prefix completes
		// bit-identically under a fresh (or absent) meter.
		if jw != nil && !errors.Is(err, faults.ErrCrash) && !budget.IsStop(err) {
			jw.Append(&journal.Record{Kind: journal.KindOutcome, Outcome: &journal.Outcome{
				Status: Aborted.String(), Err: err.Error(), Boundaries: boundary,
			}})
		}
		return out
	}
	canRegen := !opt.DisableRegen && c != nil && c.Graph != nil && c.Clusters != nil
	canReplan := opt.EnableReplan && c != nil && c.Graph != nil && c.Clusters != nil && c.VesselOf != nil
	// Pad shortfall checks by the worst-case metering jitter: a draw can
	// overshoot its planned volume by that fraction, and regenerating one
	// round early is cheaper than an unrepairable mid-draw ran-out.
	jitterPad := 0.0
	if inj := m.Faults(); inj != nil {
		jitterPad = inj.Profile().MeterJitter
	}
	// nextSnap is the boundary the next snapshot is due at: immediately
	// for fresh runs, one full cadence later for resumes (the journal
	// already holds the snapshot this run restored from).
	nextSnap := boundary
	if boundary > 0 {
		nextSnap = boundary + opt.SnapshotEvery
	}

	for pc < len(prog.Instrs) {
		// Poll for cancellation/deadline at the instruction boundary —
		// before the snapshot, so a tripped budget stops without another
		// record and the journal's last frame stays the resume point.
		if err := opt.Budget.Err(); err != nil {
			return abort(err)
		}
		in := prog.Instrs[pc]

		// Snapshot BEFORE executing the boundary: the record's (pc,
		// boundary) is exactly where a resumed run re-enters this loop.
		if jw != nil && boundary >= nextSnap {
			nextSnap = boundary + opt.SnapshotEvery
			if err := jw.Append(&journal.Record{Kind: journal.KindSnapshot, Snapshot: &journal.Snapshot{
				Boundary: boundary, PC: pc,
				Machine:  m.Snapshot(),
				Recovery: recoveryState(out),
			}}); err != nil {
				return abort(err)
			}
		}

		// Pre-transfer shortfall check: repair the depleted source before
		// the draw would trip EventRanOut. Each pass over a still-stalled
		// transfer asks the policy engine for the cheapest viable repair:
		// a rescale (re-solve the residual DAG, consuming no fluid), a
		// regeneration round (fresh reagent + replay time), or degrading.
		if (canRegen || canReplan) && in.Edge >= 0 && in.Edge < len(c.Graph.Edges()) {
			if src, need, ok := m.PlannedTransfer(pc, in); ok {
				need *= 1 + jitterPad
				if jw != nil {
					if err := jw.Append(&journal.Record{Kind: journal.KindTransfer, Transfer: &journal.Transfer{
						Boundary: boundary, PC: pc, Source: src, Volume: need,
					}}); err != nil {
						return abort(err)
					}
				}
				// Rounds are NOT cut short when a replay fails to raise the
				// source: metered reloads re-draw their jitter each round,
				// so repeating is a legitimate re-measurement, and the
				// round bound already caps the cost. Rescaling gets one
				// attempt per stall: a successful one fits the remainder to
				// the live volume by construction, and a failed one will
				// fail the same way again.
				rounds, rescaled, rescaleFailed := 0, false, false
			repair:
				for need > m.VesselVolume(src)+volTol {
					have := m.VesselVolume(src)
					var cands []Candidate
					if canReplan && !rescaled && !rescaleFailed &&
						out.Replans < opt.MaxReplans && replanViable(prog, c.Clusters, pc) {
						cands = append(cands, Candidate{
							Kind: RepairRescale, Viable: true,
							Why: "re-solve residual DAG around live volumes",
						})
					}
					if canRegen && rounds < opt.MaxRegenRounds && out.Regens < opt.MaxRegens {
						reagent, secs := regenEstimate(m, prog, c, in.Edge)
						cands = append(cands, Candidate{
							Kind: RepairRegen, Reagent: reagent, Seconds: secs, Viable: true,
							Why: "re-execute producer backward slice",
						})
					}
					cands = append(cands, Candidate{
						Kind: RepairDegrade, Viable: true, Why: "let the draw run short",
					})
					choice, _ := opt.Cost.Choose(cands...)
					switch choice.Kind {
					case RepairRescale:
						ok, err := applyReplan(m, prog, c, pc, boundary, src, need, have, jitterPad, opt.NoCertify, jw, out)
						if err != nil {
							return abort(err)
						}
						if !ok {
							rescaleFailed = true
							continue
						}
						rescaled = true
						// The stalled draw itself was rescaled: re-read it.
						if _, patched, ok := m.PlannedTransfer(pc, in); ok {
							need = patched * (1 + jitterPad)
						}
					case RepairRegen:
						if err := regenerate(m, prog, c.Graph, c.Clusters, in.Edge, src, pc, out); err != nil {
							return abort(err)
						}
						rounds++
						if jw != nil {
							if err := jw.Append(&journal.Record{Kind: journal.KindRecovery, Recovery: &journal.RecoveryAction{
								Action: "regen", Boundary: boundary, PC: pc, Attempt: rounds,
								Detail: fmt.Sprintf("refill %s toward %.4g nl", src, need),
							}}); err != nil {
								return abort(err)
							}
						}
					default:
						break repair
					}
				}
			}
		}

		// Execute, retrying in place on transient FU failure.
		mark := len(m.Events())
		next, halted, err := m.ExecOne(prog, pc)
		if err != nil {
			return abort(err)
		}
		attempts := 0
		for fail := lastFUFailure(m.Events()[mark:]); fail != nil; fail = lastFUFailure(m.Events()[mark:]) {
			// Cancellation between backoff sleeps: a cancel that lands
			// during one idle is observed before the next, never swallowed
			// by an uncancellable sleep chain.
			if err := opt.Budget.Err(); err != nil {
				return abort(err)
			}
			wait := float64(attempts+1) * opt.BackoffSeconds
			choice, _ := opt.Cost.Choose(
				Candidate{
					Kind: RepairRetry, Seconds: wait,
					Viable: !opt.DisableRetry && attempts < opt.RetriesPerInstr && out.Retries < opt.TotalRetries &&
						out.BackoffSeconds+wait <= opt.MaxBackoffSeconds,
					Why: "re-execute the failed instruction after backoff",
				},
				Candidate{Kind: RepairDegrade, Viable: true, Why: "record the failure as an incident"},
			)
			if choice.Kind != RepairRetry {
				out.Incidents = append(out.Incidents, Incident{Event: *fail, Retries: attempts})
				break
			}
			attempts++
			out.Retries++
			m.Idle(wait)
			out.BackoffSeconds += wait
			m.RecordEvent(aquacore.Event{
				Kind: aquacore.EventRetry, PC: pc, Instr: in.String(),
				Detail: fmt.Sprintf("attempt %d after transient failure (%.3gs backoff)", attempts, wait),
			})
			if jw != nil {
				if jerr := jw.Append(&journal.Record{Kind: journal.KindRecovery, Recovery: &journal.RecoveryAction{
					Action: "retry", Boundary: boundary, PC: pc, Attempt: attempts,
					Detail: fail.Detail,
				}}); jerr != nil {
					return abort(jerr)
				}
			}
			mark = len(m.Events())
			next, halted, err = m.ExecOne(prog, pc)
			if err != nil {
				return abort(err)
			}
		}
		// Faults repair could not address degrade the run.
		for _, e := range m.Events()[mark:] {
			switch e.Kind {
			case aquacore.EventRanOut, aquacore.EventOverflow, aquacore.EventSolveFailed:
				out.Incidents = append(out.Incidents, Incident{Event: e})
			default:
				// Repair bookkeeping (retries, regens, replans) is not an
				// incident; only unrepaired machine faults are.
			}
		}

		if jw != nil {
			var draws uint64
			if inj := m.Faults(); inj != nil {
				draws = inj.Draws()
			}
			if err := jw.Append(&journal.Record{Kind: journal.KindStep, Step: &journal.Step{
				Boundary: boundary, PC: pc, Next: next, Halted: halted,
				Events: len(m.Events()), Draws: draws,
			}}); err != nil {
				return abort(err)
			}
		}
		// The simulated kill strikes after the step record, mimicking a
		// process that died between appends: the journal ends on a clean
		// frame with no outcome record, exactly what a real crash leaves.
		if opt.Crash.Fires(boundary) {
			return abort(fmt.Errorf("%w at boundary %d (pc %d)", faults.ErrCrash, boundary, pc))
		}
		boundary++

		if halted {
			break
		}
		pc = next
	}

	out.Result = m.Finalize()
	if len(out.Incidents) > 0 {
		out.Status = CompletedDegraded
	} else {
		out.Status = Completed
	}
	if jw != nil {
		if err := jw.Append(&journal.Record{Kind: journal.KindOutcome, Outcome: &journal.Outcome{
			Status: out.Status.String(), Boundaries: boundary,
		}}); err != nil {
			// The run itself finished; a failed closing record only costs a
			// needless (and harmless) re-execution on a later resume.
			out.Err = fmt.Errorf("run finished but journal close failed: %w", err)
		}
	}
	return out
}

// regenerate re-executes the backward slice of the producer feeding edge,
// refilling src before the stalled transfer at pc.
func regenerate(m *aquacore.Machine, prog *ais.Program, g *dag.Graph, clusters map[int][2]int,
	edge int, src string, pc int, out *Outcome) error {
	producer := g.Edges()[edge].From
	slice := regen.BackwardSlice(g, producer)
	mark := len(m.Events())
	replayed := 0
	for _, n := range slice {
		cl, ok := clusters[n.ID()]
		if !ok {
			continue // dry or merged nodes emit no cluster of their own
		}
		count, err := runRange(m, prog, cl)
		if err != nil {
			return err
		}
		replayed += count
	}
	out.Regens++
	out.RegenInstrs += replayed
	m.RecordEvent(aquacore.Event{
		Kind: aquacore.EventRegen, PC: pc, Instr: prog.Instrs[pc].String(),
		Detail: fmt.Sprintf("re-executed backward slice of %s (%d nodes, %d instrs) to refill %s",
			producer.Name, len(slice), replayed, src),
	})
	// A regeneration that itself faults is its own failure mode: the
	// replay consumed budget and reagent without (fully) raising the
	// source. Classify it as a distinct incident cause instead of
	// folding it into the generic shortfall path — or, worse, dropping
	// it silently.
	for _, e := range m.Events()[mark:] {
		switch e.Kind {
		case aquacore.EventFUFailure, aquacore.EventRanOut:
			ev := aquacore.Event{
				Kind: aquacore.EventRegenFault, PC: pc, Instr: prog.Instrs[pc].String(),
				Detail: fmt.Sprintf("regeneration of %s faulted: %s", src, e),
			}
			m.RecordEvent(ev)
			out.Incidents = append(out.Incidents, Incident{Event: ev})
		default:
			// Other events during replay (transfers, senses) are the
			// regeneration working as intended, not a fault.
		}
	}
	return nil
}

// runRange replays the half-open pc range cl. Codegen places guard skip
// labels exactly at cluster ends, so a forward jump past the range (or any
// backward jump) terminates the replay.
func runRange(m *aquacore.Machine, prog *ais.Program, cl [2]int) (int, error) {
	count := 0
	for cpc := cl[0]; cpc >= cl[0] && cpc < cl[1]; {
		next, halted, err := m.ExecOne(prog, cpc)
		if err != nil {
			return count, err
		}
		count++
		if halted || next <= cpc {
			break
		}
		cpc = next
	}
	return count, nil
}

// lastFUFailure finds the most recent transient-failure event in evs.
func lastFUFailure(evs []aquacore.Event) *aquacore.Event {
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == aquacore.EventFUFailure {
			return &evs[i]
		}
	}
	return nil
}
