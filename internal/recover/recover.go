// Package recovery is the runtime companion to the fault model: it wraps
// AquaCore execution with the two repair strategies the paper's runtime
// layer motivates (§3.5, §4.3) plus graceful degradation.
//
//   - Transient functional-unit failures are retried in place with a
//     linearly-growing simulated-time backoff, bounded per instruction and
//     in total.
//   - A detected volume shortfall — the planned draw of the next transfer
//     exceeds what its source vessel actually holds, e.g. after dead-volume
//     or evaporation losses — regenerates the depleted fluid by
//     re-executing the backward slice of its producer (regen.BackwardSlice
//     over the codegen cluster map), exactly the reactive-regeneration
//     mechanism the regen package only counts.
//   - When repair budgets run out the run completes anyway and the Outcome
//     reports degradation, with the causal event chain preserved in the
//     machine's event log.
//
// The package name is recovery (the directory is internal/recover; the
// package cannot be named after the builtin without shadowing it in every
// importer).
package recovery

import (
	"errors"
	"fmt"

	"aquavol/internal/ais"
	"aquavol/internal/aquacore"
	"aquavol/internal/dag"
	"aquavol/internal/faults"
	"aquavol/internal/journal"
	"aquavol/internal/regen"
)

// volTol mirrors aquacore's volume comparison tolerance (nl).
const volTol = 1e-6

// ErrAborted is the sentinel every aborting Outcome.Err wraps: callers
// match it with errors.Is instead of switching on Status strings, and
// unwrap further for the concrete cause (a machine error, a journal
// write failure, or faults.ErrCrash for a simulated kill).
var ErrAborted = errors.New("recovery: run aborted")

// Status classifies how a recovered run ended.
type Status int

const (
	// Completed: every instruction executed, every fault was repaired.
	Completed Status = iota
	// CompletedDegraded: the run reached the end of the program, but at
	// least one fault went unrepaired (see Outcome.Incidents).
	CompletedDegraded
	// Aborted: execution stopped on a machine error (see Outcome.Err).
	Aborted
)

func (s Status) String() string {
	switch s {
	case Completed:
		return "completed"
	case CompletedDegraded:
		return "completed-degraded"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options bounds the repair budgets. The zero value selects the defaults
// noted on each field.
type Options struct {
	// RetriesPerInstr bounds re-attempts of a single failed instruction
	// (default 3).
	RetriesPerInstr int
	// TotalRetries bounds re-attempts across the whole run (default 64).
	TotalRetries int
	// MaxRegens bounds backward-slice re-executions across the run
	// (default 32).
	MaxRegens int
	// MaxRegenRounds bounds consecutive regeneration attempts for one
	// stalled transfer (default 4); a shortfall that survives that many
	// slice re-executions is structural, not transient.
	MaxRegenRounds int
	// BackoffSeconds is the simulated idle before the first retry of an
	// instruction; attempt k waits k×BackoffSeconds (default 1).
	BackoffSeconds float64
	// DisableRetry turns off in-place retries.
	DisableRetry bool
	// DisableRegen turns off shortfall regeneration.
	DisableRegen bool
	// Journal, when non-nil, receives the durable-execution record
	// stream: planned transfers, repair actions, one step record per
	// instruction boundary, and periodic full snapshots. A journal append
	// failure aborts the run — a write-ahead log that silently stops
	// logging is worse than none.
	Journal *journal.Writer
	// SnapshotEvery is the snapshot cadence in instruction boundaries
	// (default 8; the first snapshot is always written at the starting
	// boundary). Ignored without Journal.
	SnapshotEvery int
	// Crash schedules a simulated process kill at one instruction
	// boundary (chaos testing): the run stops with faults.ErrCrash and —
	// exactly like a real kill — writes neither a final snapshot nor an
	// outcome record. nil never fires.
	Crash *faults.CrashPoint
}

func (o Options) withDefaults() Options {
	if o.RetriesPerInstr == 0 {
		o.RetriesPerInstr = 3
	}
	if o.TotalRetries == 0 {
		o.TotalRetries = 64
	}
	if o.MaxRegens == 0 {
		o.MaxRegens = 32
	}
	if o.MaxRegenRounds == 0 {
		o.MaxRegenRounds = 4
	}
	if o.BackoffSeconds == 0 {
		o.BackoffSeconds = 1
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 8
	}
	return o
}

// Incident is a fault that repair could not (or was not allowed to) fix.
type Incident struct {
	// Event is the unrepaired machine event.
	Event aquacore.Event
	// Retries is how many re-attempts were spent on it before giving up.
	Retries int
}

// Err classifies the incident as a sentinel error chain: an exhausted
// retry budget wraps aquacore.ErrFUUnavailable, an unrepaired shortfall
// wraps aquacore.ErrShortfall. Callers match with errors.Is; the event
// detail stays in the message.
func (i Incident) Err() error {
	switch i.Event.Kind {
	case aquacore.EventFUFailure:
		return fmt.Errorf("%w after %d retries: %s", aquacore.ErrFUUnavailable, i.Retries, i.Event)
	case aquacore.EventRanOut:
		return fmt.Errorf("%w: %s", aquacore.ErrShortfall, i.Event)
	default:
		return fmt.Errorf("unrepaired fault: %s", i.Event)
	}
}

// Outcome reports a recovered run: the terminal status, the machine
// result, and the repair accounting.
type Outcome struct {
	Status Status
	// Result is the machine result (always set, even on abort, so partial
	// traces and events survive).
	Result *aquacore.Result
	// Retries counts instruction re-attempts across the run.
	Retries int
	// Regens counts backward-slice re-executions.
	Regens int
	// RegenInstrs counts instructions replayed by those re-executions.
	RegenInstrs int
	// BackoffSeconds is the total simulated time spent waiting before
	// retries.
	BackoffSeconds float64
	// Incidents lists the faults that went unrepaired.
	Incidents []Incident
	// Err is the machine error that aborted the run (nil otherwise).
	Err error
}

// Summary renders the outcome in one line.
func (o *Outcome) Summary() string {
	s := fmt.Sprintf("%s: %d retries, %d regens (%d instrs replayed), %d unrepaired faults",
		o.Status, o.Retries, o.Regens, o.RegenInstrs, len(o.Incidents))
	if o.Err != nil {
		s += fmt.Sprintf(": %v", o.Err)
	}
	return s
}

// Run executes prog on m with retry and regeneration repair. g and
// clusters come from the compile (the managed graph and codegen's
// node→pc-range map); both nil degrades gracefully to retry-only repair
// (e.g. for hand-written listings with no DAG).
//
// Determinism: repair decisions depend only on machine state and events,
// which are themselves deterministic in (listing, plan, seed, profile), so
// two identical runs produce byte-identical traces and Outcomes.
func Run(m *aquacore.Machine, prog *ais.Program, g *dag.Graph, clusters map[int][2]int, opts Options) *Outcome {
	return run(m, prog, g, clusters, opts.withDefaults(), 0, 0, &Outcome{})
}

// Resume continues a journaled run from a snapshot record: it restores
// the machine state (fault-PRNG position and measurement log included)
// onto the freshly-constructed m, reloads the recovery counters, and
// re-enters the loop at the snapshot's (pc, boundary). Because execution
// is deterministic, the finished run is bit-identical to one that was
// never interrupted. opts.Journal, when set, should append to the
// recovered journal (journal.OpenAppend).
func Resume(m *aquacore.Machine, prog *ais.Program, g *dag.Graph, clusters map[int][2]int,
	opts Options, snap *journal.Snapshot) (*Outcome, error) {
	if snap == nil || snap.Machine == nil {
		return nil, fmt.Errorf("recovery: resume needs a snapshot with machine state")
	}
	if snap.PC < 0 || snap.PC > len(prog.Instrs) {
		return nil, fmt.Errorf("recovery: snapshot pc %d out of range [0,%d]", snap.PC, len(prog.Instrs))
	}
	if err := m.Restore(snap.Machine); err != nil {
		return nil, fmt.Errorf("recovery: restoring machine state: %w", err)
	}
	out := &Outcome{}
	if rs := snap.Recovery; rs != nil {
		out.Retries = rs.Retries
		out.Regens = rs.Regens
		out.RegenInstrs = rs.RegenInstrs
		out.BackoffSeconds = rs.BackoffSeconds
		for _, inc := range rs.Incidents {
			out.Incidents = append(out.Incidents, Incident{
				Event: aquacore.Event{
					Kind: aquacore.EventKind(inc.Kind), PC: inc.PC,
					Instr: inc.Instr, Detail: inc.Detail,
				},
				Retries: inc.Retries,
			})
		}
	}
	return run(m, prog, g, clusters, opts.withDefaults(), snap.PC, snap.Boundary, out), nil
}

// recoveryState flattens the outcome counters for a journal snapshot.
func recoveryState(out *Outcome) *journal.RecoveryState {
	rs := &journal.RecoveryState{
		Retries:        out.Retries,
		Regens:         out.Regens,
		RegenInstrs:    out.RegenInstrs,
		BackoffSeconds: out.BackoffSeconds,
	}
	for _, inc := range out.Incidents {
		rs.Incidents = append(rs.Incidents, journal.Incident{
			Kind: int(inc.Event.Kind), PC: inc.Event.PC,
			Instr: inc.Event.Instr, Detail: inc.Event.Detail,
			Retries: inc.Retries,
		})
	}
	return rs
}

// run is the recovery loop, entered at (pc, boundary) with accumulated
// counters in out (zero for fresh runs, a snapshot's for resumes).
func run(m *aquacore.Machine, prog *ais.Program, g *dag.Graph, clusters map[int][2]int,
	opt Options, pc, boundary int, out *Outcome) *Outcome {
	jw := opt.Journal
	abort := func(err error) *Outcome {
		out.Err = fmt.Errorf("%w: %w", ErrAborted, err)
		out.Status = Aborted
		out.Result = m.Finalize()
		// A real abort is a terminal state the process lived to record —
		// unlike a crash, which by nature journals nothing.
		if jw != nil && !errors.Is(err, faults.ErrCrash) {
			jw.Append(&journal.Record{Kind: journal.KindOutcome, Outcome: &journal.Outcome{
				Status: Aborted.String(), Err: err.Error(), Boundaries: boundary,
			}})
		}
		return out
	}
	canRegen := !opt.DisableRegen && g != nil && clusters != nil
	// Pad shortfall checks by the worst-case metering jitter: a draw can
	// overshoot its planned volume by that fraction, and regenerating one
	// round early is cheaper than an unrepairable mid-draw ran-out.
	jitterPad := 0.0
	if inj := m.Faults(); inj != nil {
		jitterPad = inj.Profile().MeterJitter
	}
	// nextSnap is the boundary the next snapshot is due at: immediately
	// for fresh runs, one full cadence later for resumes (the journal
	// already holds the snapshot this run restored from).
	nextSnap := boundary
	if boundary > 0 {
		nextSnap = boundary + opt.SnapshotEvery
	}

	for pc < len(prog.Instrs) {
		in := prog.Instrs[pc]

		// Snapshot BEFORE executing the boundary: the record's (pc,
		// boundary) is exactly where a resumed run re-enters this loop.
		if jw != nil && boundary >= nextSnap {
			nextSnap = boundary + opt.SnapshotEvery
			if err := jw.Append(&journal.Record{Kind: journal.KindSnapshot, Snapshot: &journal.Snapshot{
				Boundary: boundary, PC: pc,
				Machine:  m.Snapshot(),
				Recovery: recoveryState(out),
			}}); err != nil {
				return abort(err)
			}
		}

		// Pre-transfer shortfall check: regenerate the depleted producer
		// before the draw would trip EventRanOut.
		if canRegen && in.Edge >= 0 && in.Edge < len(g.Edges()) {
			if src, need, ok := m.PlannedTransfer(pc, in); ok {
				need *= 1 + jitterPad
				if jw != nil {
					if err := jw.Append(&journal.Record{Kind: journal.KindTransfer, Transfer: &journal.Transfer{
						Boundary: boundary, PC: pc, Source: src, Volume: need,
					}}); err != nil {
						return abort(err)
					}
				}
				rounds := 0
				// Rounds are NOT cut short when a replay fails to raise the
				// source: metered reloads re-draw their jitter each round,
				// so repeating is a legitimate re-measurement, and the
				// round bound already caps the cost.
				for need > m.VesselVolume(src)+volTol &&
					rounds < opt.MaxRegenRounds && out.Regens < opt.MaxRegens {
					if err := regenerate(m, prog, g, clusters, in.Edge, src, pc, out); err != nil {
						return abort(err)
					}
					rounds++
					if jw != nil {
						if err := jw.Append(&journal.Record{Kind: journal.KindRecovery, Recovery: &journal.RecoveryAction{
							Action: "regen", Boundary: boundary, PC: pc, Attempt: rounds,
							Detail: fmt.Sprintf("refill %s toward %.4g nl", src, need),
						}}); err != nil {
							return abort(err)
						}
					}
				}
			}
		}

		// Execute, retrying in place on transient FU failure.
		mark := len(m.Events())
		next, halted, err := m.ExecOne(prog, pc)
		if err != nil {
			return abort(err)
		}
		attempts := 0
		for fail := lastFUFailure(m.Events()[mark:]); fail != nil; fail = lastFUFailure(m.Events()[mark:]) {
			if opt.DisableRetry || attempts >= opt.RetriesPerInstr || out.Retries >= opt.TotalRetries {
				out.Incidents = append(out.Incidents, Incident{Event: *fail, Retries: attempts})
				break
			}
			attempts++
			out.Retries++
			wait := float64(attempts) * opt.BackoffSeconds
			m.Idle(wait)
			out.BackoffSeconds += wait
			m.RecordEvent(aquacore.Event{
				Kind: aquacore.EventRetry, PC: pc, Instr: in.String(),
				Detail: fmt.Sprintf("attempt %d after transient failure (%.3gs backoff)", attempts, wait),
			})
			if jw != nil {
				if jerr := jw.Append(&journal.Record{Kind: journal.KindRecovery, Recovery: &journal.RecoveryAction{
					Action: "retry", Boundary: boundary, PC: pc, Attempt: attempts,
					Detail: fail.Detail,
				}}); jerr != nil {
					return abort(jerr)
				}
			}
			mark = len(m.Events())
			next, halted, err = m.ExecOne(prog, pc)
			if err != nil {
				return abort(err)
			}
		}
		// Faults repair could not address degrade the run.
		for _, e := range m.Events()[mark:] {
			switch e.Kind {
			case aquacore.EventRanOut, aquacore.EventOverflow, aquacore.EventSolveFailed:
				out.Incidents = append(out.Incidents, Incident{Event: e})
			}
		}

		if jw != nil {
			var draws uint64
			if inj := m.Faults(); inj != nil {
				draws = inj.Draws()
			}
			if err := jw.Append(&journal.Record{Kind: journal.KindStep, Step: &journal.Step{
				Boundary: boundary, PC: pc, Next: next, Halted: halted,
				Events: len(m.Events()), Draws: draws,
			}}); err != nil {
				return abort(err)
			}
		}
		// The simulated kill strikes after the step record, mimicking a
		// process that died between appends: the journal ends on a clean
		// frame with no outcome record, exactly what a real crash leaves.
		if opt.Crash.Fires(boundary) {
			return abort(fmt.Errorf("%w at boundary %d (pc %d)", faults.ErrCrash, boundary, pc))
		}
		boundary++

		if halted {
			break
		}
		pc = next
	}

	out.Result = m.Finalize()
	if len(out.Incidents) > 0 {
		out.Status = CompletedDegraded
	} else {
		out.Status = Completed
	}
	if jw != nil {
		if err := jw.Append(&journal.Record{Kind: journal.KindOutcome, Outcome: &journal.Outcome{
			Status: out.Status.String(), Boundaries: boundary,
		}}); err != nil {
			// The run itself finished; a failed closing record only costs a
			// needless (and harmless) re-execution on a later resume.
			out.Err = fmt.Errorf("run finished but journal close failed: %w", err)
		}
	}
	return out
}

// regenerate re-executes the backward slice of the producer feeding edge,
// refilling src before the stalled transfer at pc.
func regenerate(m *aquacore.Machine, prog *ais.Program, g *dag.Graph, clusters map[int][2]int,
	edge int, src string, pc int, out *Outcome) error {
	producer := g.Edges()[edge].From
	slice := regen.BackwardSlice(g, producer)
	replayed := 0
	for _, n := range slice {
		cl, ok := clusters[n.ID()]
		if !ok {
			continue // dry or merged nodes emit no cluster of their own
		}
		count, err := runRange(m, prog, cl)
		if err != nil {
			return err
		}
		replayed += count
	}
	out.Regens++
	out.RegenInstrs += replayed
	m.RecordEvent(aquacore.Event{
		Kind: aquacore.EventRegen, PC: pc, Instr: prog.Instrs[pc].String(),
		Detail: fmt.Sprintf("re-executed backward slice of %s (%d nodes, %d instrs) to refill %s",
			producer.Name, len(slice), replayed, src),
	})
	return nil
}

// runRange replays the half-open pc range cl. Codegen places guard skip
// labels exactly at cluster ends, so a forward jump past the range (or any
// backward jump) terminates the replay.
func runRange(m *aquacore.Machine, prog *ais.Program, cl [2]int) (int, error) {
	count := 0
	for cpc := cl[0]; cpc >= cl[0] && cpc < cl[1]; {
		next, halted, err := m.ExecOne(prog, cpc)
		if err != nil {
			return count, err
		}
		count++
		if halted || next <= cpc {
			break
		}
		cpc = next
	}
	return count, nil
}

// lastFUFailure finds the most recent transient-failure event in evs.
func lastFUFailure(evs []aquacore.Event) *aquacore.Event {
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == aquacore.EventFUFailure {
			return &evs[i]
		}
	}
	return nil
}
