package analysis

import (
	"fmt"
	"math"

	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/diag"
)

// SkewPass is the skew/feasibility analysis: every mix's effective ratio
// (largest to smallest inbound fraction) is checked against the hardware's
// MaxSkew = MaxCapacity/LeastCount (§3.4.1).
//
//   - VOL010 (warning): the ratio exceeds MaxSkew but cascading repairs
//     it; the suggestion carries the minimal sufficient depth.
//   - VOL011 (error): the ratio exceeds MaxSkew and cascading cannot
//     apply (NOEXCESS fluids, more than two parts, or no feasible depth).
//   - VOL012 (info): the ratio is executable but above the cascade
//     trigger, so the volume manager will cascade if DAGSolve underflows.
type SkewPass struct{}

// Name implements Pass.
func (SkewPass) Name() string { return "skew" }

// Run implements Pass.
func (SkewPass) Run(ctx *Context) diag.List {
	var out diag.List
	maxSkew := ctx.Cfg.MaxSkew()
	trigger := cascadeTrigger(ctx.Cfg)
	for _, n := range ctx.Graph.Nodes() {
		if n == nil || n.Kind != dag.Mix || len(n.In()) < 2 {
			continue
		}
		R := dag.ExtremeRatio(n)
		switch {
		case R > maxSkew:
			if depth := dag.CascadeLevels(R, maxSkew); depth >= 2 && len(n.In()) == 2 && !cascadeForbidden(n) {
				out = append(out, CodeExtremeRatio.New(ctx.PosOf(n),
					"mix %s %s exceeds MaxSkew %.6g", n.Name, ratioString(n, R), maxSkew).
					Suggest("cascade depth %d suffices; the volume manager applies it automatically", depth))
			} else {
				out = append(out, CodeUncascadable.New(ctx.PosOf(n),
					"mix %s %s exceeds MaxSkew %.6g and cannot be cascaded (%s)",
					n.Name, ratioString(n, R), maxSkew, uncascadableReason(n, R, maxSkew)).
					Suggest("split the dilution into serial stages by hand, or relax the ratio"))
			}
		case R > trigger && len(n.In()) == 2 && !cascadeForbidden(n):
			if depth := dag.CascadeLevels(R, trigger); depth >= 2 {
				out = append(out, CodeCascadeExpected.New(ctx.PosOf(n),
					"mix %s %s exceeds the cascade trigger %.4g; the volume manager will cascade it (depth %d) if dispensing underflows",
					n.Name, ratioString(n, R), trigger, depth))
			}
		}
	}
	return out
}

// ratioString renders a mix's skew: as a 1:R ratio for two-part mixes,
// as a bare skew factor otherwise.
func ratioString(n *dag.Node, R float64) string {
	if len(n.In()) == 2 {
		return fmt.Sprintf("ratio 1:%.6g", R)
	}
	return fmt.Sprintf("skew %.6g", R)
}

func uncascadableReason(n *dag.Node, R, maxSkew float64) string {
	switch {
	case len(n.In()) != 2:
		return fmt.Sprintf("cascading supports two-part mixes, this one has %d parts", len(n.In()))
	case cascadeForbidden(n):
		return "its fluids forbid excess production (NOEXCESS)"
	case dag.CascadeLevels(R, maxSkew) < 2:
		return "no supported cascade depth brings each stage under MaxSkew"
	default:
		return "unknown"
	}
}

// cascadeForbidden mirrors core's rule: cascading never introduces excess
// of a mix whose result or components are marked NOEXCESS.
func cascadeForbidden(n *dag.Node) bool {
	if n.NoExcess {
		return true
	}
	for _, e := range n.In() {
		if e.From.NoExcess {
			return true
		}
	}
	return false
}

// cascadeTrigger mirrors core's default: sqrt(MaxSkew) when unset.
func cascadeTrigger(cfg core.Config) float64 {
	if cfg.CascadeTrigger > 0 {
		return cfg.CascadeTrigger
	}
	return math.Sqrt(cfg.MaxSkew())
}
