package analysis

import (
	"sort"

	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/diag"
	"aquavol/internal/lang/token"
)

// WastePass is the dead-fluid/waste analysis:
//
//   - VOL020 (warning): a fluid is produced but never consumed — a wet
//     leaf that is neither sensed nor output, or a separation whose
//     effluent is discarded while only its waste stream is used;
//   - VOL021 (warning): more than Options.DiscardThreshold of an input's
//     dispensed volume is statically known to end in waste sinks, computed
//     by propagating per-input composition fractions along the Vnorm flow;
//   - VOL022 (warning): a declared fluid is never referenced at all
//     (requires the elaborated program).
type WastePass struct{}

// Name implements Pass.
func (WastePass) Name() string { return "waste" }

// Run implements Pass.
func (p WastePass) Run(ctx *Context) diag.List {
	var out diag.List
	out = append(out, p.deadFluids(ctx)...)
	out = append(out, p.wastedInputs(ctx)...)
	out = append(out, p.unusedDecls(ctx)...)
	return out
}

// isWetProducer reports whether a node of this kind makes a fluid some
// later operation could consume.
func isWetProducer(k dag.Kind) bool {
	switch k {
	case dag.Mix, dag.Incubate, dag.Concentrate, dag.Separate:
		return true
	}
	return false
}

// deadLeaf reports whether n is a produced-but-never-used fluid.
func deadLeaf(n *dag.Node) bool {
	return n.IsLeaf() && isWetProducer(n.Kind)
}

func (WastePass) deadFluids(ctx *Context) diag.List {
	var out diag.List
	for _, n := range ctx.Graph.Nodes() {
		if n == nil {
			continue
		}
		switch {
		case deadLeaf(n):
			out = append(out, CodeDeadFluid.New(ctx.PosOf(n),
				"fluid %s is produced but never used", n.Name).
				Suggest("sense or output the fluid, or delete the operation"))
		case n.Kind == dag.Separate && !n.IsLeaf():
			// Discarding waste is normal; discarding the effluent while
			// consuming only the waste stream almost certainly is not.
			effluentUsed := false
			for _, e := range n.Out() {
				if e.Port != dag.PortWaste {
					effluentUsed = true
					break
				}
			}
			if !effluentUsed {
				out = append(out, CodeDeadFluid.New(ctx.PosOf(n),
					"the effluent of %s is never used; only its waste stream is consumed", n.Name).
					Suggest("consume the effluent, or swap the effluent/waste bindings if they are reversed"))
			}
		}
	}
	return out
}

// wastedInputs computes, per solve-time part, the fraction of each
// natural input's dispensed volume that ends in a waste sink — an Excess
// node, or the unconsumed waste stream of a separation — and warns past
// the threshold. Shares are exact within a part because the part's
// dispense scale cancels out. (Unconsumed *products* are not waste sinks;
// they get VOL020 instead. Attribution is by volume share, ignoring that
// separations change composition.)
func (p WastePass) wastedInputs(ctx *Context) diag.List {
	var out diag.List
	threshold := ctx.Opts.discardThreshold()
	// wastedShare[origInputID] tracks the worst share over parts.
	type wasteInfo struct {
		share float64
		name  string
	}
	worst := map[int]wasteInfo{}

	for pi := range ctx.Parts() {
		part := &ctx.Parts()[pi]
		// sinkFrac maps a part node to the fraction of its input volume that
		// is discarded there: 1 for Excess sinks, 1−OutFrac for separations
		// whose waste stream nobody consumes (consult the original graph —
		// the consumer may live in another part).
		sinkFrac := map[int]float64{}
		for _, n := range part.g.Nodes() {
			if n == nil {
				continue
			}
			switch {
			case n.Kind == dag.Excess:
				sinkFrac[n.ID()] = 1
			case n.Kind == dag.Separate && n.OutFrac < 1:
				orig := ctx.Graph.Node(part.origID(n.ID()))
				if orig == nil {
					orig = n
				}
				wasteUsed := false
				for _, e := range orig.Out() {
					if e.Port == dag.PortWaste {
						wasteUsed = true
						break
					}
				}
				if !wasteUsed {
					sinkFrac[n.ID()] = 1 - n.OutFrac
				}
			}
		}
		if len(sinkFrac) == 0 {
			continue
		}
		v, err := core.ComputeVnorms(part.g)
		if err != nil {
			continue
		}
		// comp[n][orig input id] is the fraction of n's input volume drawn
		// (transitively) from that input; sources attribute to themselves.
		comp := make([]map[int]float64, len(part.g.Nodes()))
		drawn := map[int]float64{} // orig input id → Vnorm volume dispensed in this part
		inputName := map[int]string{}
		for _, n := range part.g.TopoOrder() {
			id := n.ID()
			switch {
			case n.Kind == dag.Input:
				orig := part.origID(id)
				comp[id] = map[int]float64{orig: 1}
				drawn[orig] += v.Node[id]
				inputName[orig] = n.Name
			case n.Kind == dag.ConstrainedInput && n.SourceIsInput:
				comp[id] = map[int]float64{n.Source: 1}
				drawn[n.Source] += v.Node[id]
				if src := ctx.Graph.Node(n.Source); src != nil {
					inputName[n.Source] = src.Name
				}
			case n.IsSource():
				comp[id] = map[int]float64{} // produced upstream; unattributed
			default:
				c := map[int]float64{}
				for _, e := range n.In() {
					for src, f := range comp[e.From.ID()] {
						c[src] += e.Frac * f
					}
				}
				comp[id] = c
			}
		}
		wasted := map[int]float64{}
		for id, frac := range sinkFrac {
			for src, f := range comp[id] {
				wasted[src] += v.Node[id] * frac * f
			}
		}
		for src, w := range wasted {
			if drawn[src] <= 0 {
				continue
			}
			share := w / drawn[src]
			if share > worst[src].share {
				worst[src] = wasteInfo{share: share, name: inputName[src]}
			}
		}
	}

	srcs := make([]int, 0, len(worst))
	for src := range worst {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		w := worst[src]
		if w.share <= threshold {
			continue
		}
		out = append(out, CodeStaticWaste.New(p.declPos(ctx, w.name),
			"%.0f%% of input %s is statically discarded (threshold %.0f%%)",
			w.share*100, w.name, threshold*100).
			Suggest("reduce the contributing mix ratios or reuse the discarded fluid"))
	}
	return out
}

// declPos finds the declaration position for a fluid name, falling back to
// the input node's op position (zero when neither is known).
func (WastePass) declPos(ctx *Context, name string) token.Pos {
	if ctx.Prog != nil {
		for _, d := range ctx.Prog.FluidDecls {
			if d.Name == name {
				return d.Pos
			}
		}
	}
	if n := ctx.Graph.NodeByName(name); n != nil {
		return ctx.PosOf(n)
	}
	return token.Pos{}
}

func (WastePass) unusedDecls(ctx *Context) diag.List {
	if ctx.Prog == nil {
		return nil
	}
	var out diag.List
	for _, d := range ctx.Prog.FluidDecls {
		if ctx.Prog.UsedFluids[d.Name] {
			continue
		}
		out = append(out, CodeUnusedFluid.New(d.Pos,
			"fluid %s is declared but never used", d.Name).
			Suggest("delete the declaration"))
	}
	return out
}
