package analysis

import (
	"fmt"
	"math"

	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/diag"
)

// volTol absorbs floating-point noise in volume comparisons, matching the
// tolerance DAGSolve's feasibility checks use.
const volTol = 1e-9

// IntervalPass is the volume-interval analysis: an abstract interpretation
// that propagates [min, max] bounds on every node's total input volume
// through the DAG and reports
//
//   - VOL001: definite underflow — some dispense cannot reach the least
//     count under ANY volume assignment a solver could choose;
//   - VOL002: definite overflow — some node needs more than MaxCapacity
//     under ANY volume assignment;
//   - VOL003: predicted DAGSolve underflow — the proportional assignment
//     of §3.3 underflows, so the Fig. 6 hierarchy will engage transforms
//     or the LP fallback (advisory; the program may still compile).
//
// Bounds are solver-independent: the forward pass uses only capacity and
// edge-fraction constraints (edge = frac × consumer input ≤ producer
// production ≤ derived maxima), the backward pass only least-count and
// conservation constraints (production ≥ Σ consumer draws, each ≥ least
// count). Because the LP's non-deficit constraint is an inequality —
// production may exceed uses — these are the only bounds every solver
// shares, which is what makes VOL001/VOL002 "definite".
//
// Demands flowing out of a cascadable mix are relaxed to their
// post-cascade values so a single extreme ratio does not flood ancestors
// with secondary findings; the mix itself is still reported (as a Warning,
// since cascading repairs it automatically).
type IntervalPass struct{}

// Name implements Pass.
func (IntervalPass) Name() string { return "volume-interval" }

// Run implements Pass.
func (p IntervalPass) Run(ctx *Context) diag.List {
	a := &intervalAnalysis{ctx: ctx, cfg: ctx.Cfg}
	a.forward()
	a.findUnderflows()
	a.backward()
	a.findOverflows()
	if !a.foundDefinite {
		a.predictDAGSolve()
	}
	return a.out
}

type intervalAnalysis struct {
	ctx *Context
	cfg core.Config
	out diag.List

	// maxIn[id] bounds node id's total input volume from above (production
	// for sources); maxProd[id] bounds the production available to
	// non-excess consumers.
	maxIn, maxProd []float64
	// minIn[id] bounds node id's total input volume from below as written;
	// minInEff is the post-transform relaxation used when propagating
	// demands upstream.
	minIn, minInEff []float64

	order []*dag.Node
	// flaggedUnder/flaggedOver mark nodes already reported, for root-cause
	// suppression and VOL001/VOL002 deduplication. poisoned marks nodes
	// whose error-severity underflow makes every demand they propagate
	// upstream meaningless — their ancestors stay silent.
	flaggedUnder, flaggedOver, poisoned map[int]bool
	foundDefinite                       bool
}

func (a *intervalAnalysis) minFor(n *dag.Node) float64 {
	if m, ok := a.cfg.MinNodeVolume[n.Kind]; ok && m > a.cfg.LeastCount {
		return m
	}
	return a.cfg.LeastCount
}

// outFracHi bounds OutFrac from above: unknown-volume nodes may retain any
// fraction of their input, so 1 is the only sound bound.
func outFracHi(n *dag.Node) float64 {
	if n.Unknown {
		return 1
	}
	return n.OutFrac
}

// cascadeDepth reports the minimal hardware-feasible cascade depth for mix
// n (0 when no cascade is needed or possible). Mirrors the preconditions
// of core's diagnose: two-part Mix, no NOEXCESS component.
func (a *intervalAnalysis) cascadeDepth(n *dag.Node) int {
	if n.Kind != dag.Mix || len(n.In()) != 2 {
		return 0
	}
	if n.NoExcess || n.In()[0].From.NoExcess || n.In()[1].From.NoExcess {
		return 0
	}
	return dag.CascadeLevels(dag.ExtremeRatio(n), a.cfg.MaxSkew())
}

// forward computes maxIn/maxProd in topological order.
func (a *intervalAnalysis) forward() {
	g := a.ctx.Graph
	a.order = g.TopoOrder()
	a.maxIn = make([]float64, len(g.Nodes()))
	a.maxProd = make([]float64, len(g.Nodes()))
	cap := a.cfg.MaxCapacity
	for _, n := range a.order {
		id := n.ID()
		switch {
		case n.Kind == dag.ConstrainedInput:
			avail := cap
			if n.Share > 0 {
				avail = n.Share * cap
			}
			a.maxIn[id] = avail
			a.maxProd[id] = avail
		case n.IsSource():
			a.maxIn[id] = cap
			a.maxProd[id] = cap
		default:
			in := cap
			for _, e := range n.In() {
				// edge volume = frac × input(n) and ≤ producer's production.
				if b := a.maxProd[e.From.ID()] / e.Frac; b < in {
					in = b
				}
			}
			a.maxIn[id] = in
			a.maxProd[id] = in * outFracHi(n) * (1 - n.Discard)
		}
	}
}

// findUnderflows reports VOL001 with root-cause suppression: once a node
// is flagged, its descendants (whose bounds are squeezed by the same
// cause) stay silent.
func (a *intervalAnalysis) findUnderflows() {
	lc := a.cfg.LeastCount
	a.flaggedUnder = map[int]bool{}
	a.poisoned = map[int]bool{}
	blocked := map[int]bool{}
	for _, n := range a.order {
		id := n.ID()
		for _, e := range n.In() {
			if blocked[e.From.ID()] {
				blocked[id] = true
			}
		}
		if blocked[id] || n.Kind == dag.Excess {
			continue
		}
		flag := func(d diag.Diagnostic) {
			a.out = append(a.out, d)
			a.flaggedUnder[id] = true
			blocked[id] = true
			if d.Severity == diag.Error {
				a.foundDefinite = true
				a.poisoned[id] = true
			}
		}

		// Producer squeeze: the node cannot make enough product for even
		// one downstream dispense. No transform raises a yield.
		feedsWet := false
		for _, e := range n.Out() {
			if e.To.Kind != dag.Excess {
				feedsWet = true
				break
			}
		}
		if feedsWet && a.maxProd[id] < lc-volTol {
			flag(CodeUnderflow.New(a.ctx.PosOf(n),
				"%s can produce at most %.4g nl for downstream use (input ≤ %.4g nl, yield %.4g), below the least count %.4g nl",
				n.Name, a.maxProd[id], a.maxIn[id], outFracHi(n)*(1-n.Discard), lc).
				Suggest("raise the operation's yield or remove the downstream use; no volume assignment can dispense this product"))
			continue
		}
		if n.IsSource() {
			continue
		}

		// Dispense squeeze: some inbound edge cannot reach the least count
		// even at the node's maximal fill.
		var worst *dag.Edge
		worstVol := math.Inf(1)
		for _, e := range n.In() {
			if v := e.Frac * a.maxIn[id]; v < worstVol {
				worst, worstVol = e, v
			}
		}
		nodeMin := a.minFor(n)
		switch {
		case worst != nil && worstVol < lc-volTol:
			if depth := a.cascadeDepth(n); depth >= 2 {
				skew := dag.ExtremeRatio(n)
				// Cascading repairs this underflow, so the definite-Error
				// default downgrades to Warning here.
				flag(CodeUnderflow.NewWith(diag.Warning, a.ctx.PosOf(n),
					"mix %s: the %s component gets at most %.4g nl at any feasible scale, below the least count %.4g nl (mix skew %.4g exceeds MaxSkew %.4g)",
					n.Name, worst.From.Name, worstVol, lc, skew, a.cfg.MaxSkew()).
					Suggest("cascade depth %d suffices; the volume manager applies it automatically", depth))
			} else {
				flag(CodeUnderflow.New(a.ctx.PosOf(n),
					"%s: the %s component gets at most %.4g nl at any feasible scale, below the least count %.4g nl",
					n.Name, worst.From.Name, worstVol, lc).
					Suggest("no automatic transform applies (cascading needs a two-part mix of excess-permitting fluids); reduce the ratio skew or raise upstream volumes"))
			}
		case a.maxIn[id] < nodeMin-volTol:
			flag(CodeUnderflow.New(a.ctx.PosOf(n),
				"%s can receive at most %.4g nl, below the %.4g nl minimum for %s nodes",
				n.Name, a.maxIn[id], nodeMin, n.Kind))
		}
	}
}

// backward computes minIn/minInEff in reverse topological order.
func (a *intervalAnalysis) backward() {
	g := a.ctx.Graph
	lc := a.cfg.LeastCount
	a.minIn = make([]float64, len(g.Nodes()))
	a.minInEff = make([]float64, len(g.Nodes()))
	for i := len(a.order) - 1; i >= 0; i-- {
		n := a.order[i]
		id := n.ID()
		if n.Kind == dag.Excess {
			continue
		}
		demand := 0.0
		for _, e := range n.Out() {
			if e.To.Kind == dag.Excess {
				continue
			}
			d := e.Frac * a.minInEff[e.To.ID()]
			if d < lc {
				d = lc // every dispense must reach the least count
			}
			demand += d
		}
		need := demand / (outFracHi(n) * (1 - n.Discard))
		strict, eff := need, need
		if !n.IsSource() {
			floor := a.minFor(n)
			for _, e := range n.In() {
				if f := lc / e.Frac; f > floor {
					floor = f
				}
			}
			if floor > strict {
				strict = floor
			}
			// Post-cascade the minor fraction improves to (1+R)^(-1/depth),
			// so ancestors only see the relaxed demand.
			effFloor := floor
			if depth := a.cascadeDepth(n); depth >= 2 {
				R := dag.ExtremeRatio(n)
				effFloor = a.minFor(n)
				if f := lc * math.Pow(1+R, 1/float64(depth)); f > effFloor {
					effFloor = f
				}
			}
			if effFloor > eff {
				eff = effFloor
			}
		}
		a.minIn[id] = strict
		a.minInEff[id] = eff
	}
}

// findOverflows reports VOL002 with downstream-root-cause suppression (the
// demand that overflows an ancestor originates at its consumers).
func (a *intervalAnalysis) findOverflows() {
	cap := a.cfg.MaxCapacity
	a.flaggedOver = map[int]bool{}
	blocked := map[int]bool{}
	for i := len(a.order) - 1; i >= 0; i-- {
		n := a.order[i]
		id := n.ID()
		if a.poisoned[id] {
			blocked[id] = true
		}
		for _, e := range n.Out() {
			if blocked[e.To.ID()] {
				blocked[id] = true
			}
		}
		if blocked[id] || a.flaggedUnder[id] || n.Kind == dag.Excess {
			continue
		}
		if a.minIn[id] <= cap+volTol {
			continue
		}
		a.flaggedOver[id] = true
		blocked[id] = true
		// Severity is context-dependent: a repairable overflow (cascading
		// or replication applies) downgrades to Warning.
		msg := fmt.Sprintf("%s needs at least %.4g nl under any volume assignment, above the maximum capacity %.4g nl",
			n.Name, a.minIn[id], cap)
		var d diag.Diagnostic
		switch depth := a.cascadeDepth(n); {
		case depth >= 2:
			d = CodeOverflow.NewWith(diag.Warning, a.ctx.PosOf(n), "%s", msg).
				Suggest("cascade depth %d reduces the required volume; the volume manager applies it automatically", depth)
		case !n.Unknown && n.Kind != dag.ConstrainedInput && len(n.Out()) > 1:
			d = CodeOverflow.NewWith(diag.Warning, a.ctx.PosOf(n), "%s", msg).
				Suggest("the volume manager will replicate %s to split its %d uses", n.Name, len(n.Out()))
		default:
			d = CodeOverflow.New(a.ctx.PosOf(n), "%s", msg).
				Suggest("reduce downstream demand; replication cannot split this node")
			a.foundDefinite = true
		}
		a.out = append(a.out, d)
	}
}

// predictDAGSolve reports VOL003: per solve-time part, would the plain
// proportional assignment of §3.3 underflow? Skipped entirely when a
// definite Error was already found (it would restate the root cause).
func (a *intervalAnalysis) predictDAGSolve() {
	for pi := range a.ctx.Parts() {
		part := &a.ctx.Parts()[pi]
		v, err := core.ComputeVnorms(part.g)
		if err != nil {
			continue
		}
		_, maxV := v.MaxNode()
		if !(maxV > 0) {
			continue
		}
		scale := a.cfg.MaxCapacity / maxV
		for _, n := range part.g.Nodes() {
			// Statically-split inputs clamp the scale exactly as Dispense does.
			if n != nil && n.Kind == dag.ConstrainedInput && n.SourceIsInput {
				if vn := v.Node[n.ID()]; vn > 0 && n.Share*a.cfg.MaxCapacity/vn < scale {
					scale = n.Share * a.cfg.MaxCapacity / vn
				}
			}
		}

		var worstEdge *dag.Edge
		worstGap := 0.0 // shortfall relative to the edge's requirement
		for _, e := range part.g.Edges() {
			if e == nil || v.Edge[e.ID()] <= 0 {
				continue
			}
			vol := v.Edge[e.ID()] * scale
			if gap := a.cfg.LeastCount - vol; gap > worstGap+volTol {
				worstEdge, worstGap = e, gap
			}
		}
		var worstNode *dag.Node
		for _, n := range part.g.Nodes() {
			if n == nil || n.Kind == dag.Excess || n.IsSource() || v.Node[n.ID()] <= 0 {
				continue
			}
			vol := v.Node[n.ID()] * scale
			if gap := a.minFor(n) - vol; gap > worstGap+volTol {
				worstEdge, worstNode, worstGap = nil, n, gap
			}
		}
		if worstEdge == nil && worstNode == nil {
			continue
		}

		maxN, _ := v.MaxNode()
		var d diag.Diagnostic
		if worstEdge != nil {
			to := worstEdge.To
			d = CodeDAGSolveUnderflow.New(a.ctx.posOfOrig(part.origID(to.ID())),
				"DAGSolve would underflow: %s receives %.4g nl from %s (least count %.4g nl) when %s is filled to capacity",
				to.Name, v.Edge[worstEdge.ID()]*scale, worstEdge.From.Name, a.cfg.LeastCount, maxN.Name)
			// Mirror core's diagnose: an underflow at a high-skew two-part
			// mix is attributed to the ratio and fixed by cascading.
			skew := dag.ExtremeRatio(to)
			if to.Kind == dag.Mix && len(to.In()) == 2 && skew > cascadeTrigger(a.cfg) && !cascadeForbidden(to) {
				if depth := dag.CascadeLevels(skew, cascadeTrigger(a.cfg)); depth >= 2 {
					d.Suggestion = fmt.Sprintf("the volume manager will cascade mix %s (depth %d)", to.Name, depth)
				}
			}
			if d.Suggestion == "" {
				d.Suggestion = fmt.Sprintf("the volume manager will transform the DAG (replicating %s) or fall back on the LP solver", maxN.Name)
			}
		} else {
			d = CodeDAGSolveUnderflow.New(a.ctx.posOfOrig(part.origID(worstNode.ID())),
				"DAGSolve would underflow: %s receives %.4g nl, below its %.4g nl node minimum, when %s is filled to capacity",
				worstNode.Name, v.Node[worstNode.ID()]*scale, a.minFor(worstNode), maxN.Name).
				Suggest("the volume manager will transform the DAG (replicating %s) or fall back on the LP solver", maxN.Name)
		}
		a.out = append(a.out, d)
	}
}
