package analysis_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aquavol/internal/analysis"
	"aquavol/internal/assays"
	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/diag"
)

// volumeCodes are the interval-pass predictions cross-checked against the
// solvers.
func hasCode(l diag.List, codes ...diag.Code) bool {
	for _, d := range l {
		for _, c := range codes {
			if d.Code == c.ID {
				return true
			}
		}
	}
	return false
}

func findCode(l diag.List, code diag.Code) (diag.Diagnostic, bool) {
	for _, d := range l {
		if d.Code == code.ID {
			return d, true
		}
	}
	return diag.Diagnostic{}, false
}

// TestPaperAssaysClean asserts the four paper benchmarks lint without a
// single error-severity finding at the default configuration — everything
// the analyzer reports on them is a condition the volume manager repairs
// automatically (warnings) or advisory (info).
func TestPaperAssaysClean(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"glucose", assays.GlucoseSource},
		{"glycomics", assays.GlycomicsSource},
		{"enzyme4", assays.EnzymeSource(4)},
		{"enzyme10", assays.EnzymeSource(10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings, prog, err := analysis.LintSource(tc.src, core.DefaultConfig(), analysis.Options{})
			if err != nil {
				t.Fatalf("LintSource: %v", err)
			}
			if prog == nil {
				t.Fatalf("front end rejected the %s source:\n%s", tc.name, findings.Error())
			}
			for _, d := range findings {
				if d.Severity == diag.Error {
					t.Errorf("unexpected lint error: %s", d.Error())
				}
			}
			if tc.name == "glucose" && len(findings) != 0 {
				t.Errorf("glucose should lint perfectly clean, got:\n%s", render(findings))
			}
		})
	}
}

func render(l diag.List) string {
	var b strings.Builder
	for _, d := range l {
		b.WriteString(d.Error())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCraftedExtremeMixCascades is the analyzer's end-to-end acceptance
// check: a 1:(MaxSkew+1) two-part mix must be flagged with a cascade-depth
// suggestion, the as-written DAG must actually be DAGSolve-infeasible, and
// applying the suggested cascade must make DAGSolve feasible.
func TestCraftedExtremeMixCascades(t *testing.T) {
	cfg := core.DefaultConfig()
	ratio := cfg.MaxSkew() + 1 // 1001 at the default 100 nl / 0.1 nl

	build := func() *dag.Graph {
		g := dag.New()
		a := g.AddInput("acid")
		b := g.AddInput("water")
		m := g.AddMix("dilute", dag.Part{Source: a, Ratio: 1}, dag.Part{Source: b, Ratio: ratio})
		g.AddUnary(dag.Sense, "read", m)
		return g
	}

	findings, err := analysis.AnalyzeGraph(build(), cfg, analysis.Options{})
	if err != nil {
		t.Fatalf("AnalyzeGraph: %v", err)
	}
	under, ok := findCode(findings, analysis.CodeUnderflow)
	if !ok {
		t.Fatalf("no %s finding for a 1:%g mix, got:\n%s", analysis.CodeUnderflow.ID, ratio, render(findings))
	}
	if under.Severity != diag.Warning {
		t.Errorf("the underflow is cascade-repairable and should be a warning, got %s", under.Error())
	}
	wantDepth := dag.CascadeLevels(ratio, cfg.MaxSkew())
	if wantDepth != 2 {
		t.Fatalf("CascadeLevels(%g, %g) = %d, test assumes 2", ratio, cfg.MaxSkew(), wantDepth)
	}
	wantSuggestion := fmt.Sprintf("cascade depth %d", wantDepth)
	if !strings.Contains(under.Suggestion, wantSuggestion) {
		t.Errorf("underflow suggestion %q does not mention %q", under.Suggestion, wantSuggestion)
	}
	skew, ok := findCode(findings, analysis.CodeExtremeRatio)
	if !ok {
		t.Fatalf("no %s finding for a ratio beyond MaxSkew, got:\n%s", analysis.CodeExtremeRatio.ID, render(findings))
	}
	if !strings.Contains(skew.Suggestion, wantSuggestion) {
		t.Errorf("skew suggestion %q does not mention %q", skew.Suggestion, wantSuggestion)
	}

	// The prediction must match the solver: infeasible as written...
	plain := build()
	plan, err := core.DAGSolve(plain, cfg, nil)
	if err != nil {
		t.Fatalf("DAGSolve (as written): %v", err)
	}
	if plan.Feasible() {
		t.Fatalf("analyzer predicted underflow but DAGSolve found the as-written DAG feasible")
	}

	// ...and feasible after applying the suggested cascade depth.
	cascaded := build()
	if err := cascaded.Cascade(cascaded.NodeByName("dilute"), wantDepth); err != nil {
		t.Fatalf("Cascade: %v", err)
	}
	plan, err = core.DAGSolve(cascaded, cfg, nil)
	if err != nil {
		t.Fatalf("DAGSolve (cascaded): %v", err)
	}
	if !plan.Feasible() {
		t.Fatalf("suggested cascade depth %d is not actually feasible: %v", wantDepth, plan.Underflows)
	}
}

// TestVerdictsMatchDAGSolve cross-checks the interval pass against the real
// solver on the static corpus DAGs: the analyzer emits a volume prediction
// (VOL001/VOL002/VOL003) exactly when DAGSolve's proportional assignment
// underflows.
func TestVerdictsMatchDAGSolve(t *testing.T) {
	cfg := core.DefaultConfig()
	cases := []struct {
		name string
		g    *dag.Graph
	}{
		{"glucose", assays.GlucoseDAG()},
		{"fig2", assays.Fig2DAG()},
		{"enzyme4", assays.EnzymeDAG(4)},
		{"enzyme10", assays.EnzymeDAG(10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings, err := analysis.AnalyzeGraph(tc.g, cfg, analysis.Options{})
			if err != nil {
				t.Fatalf("AnalyzeGraph: %v", err)
			}
			predicted := hasCode(findings, analysis.CodeUnderflow, analysis.CodeOverflow, analysis.CodeDAGSolveUnderflow)
			plan, err := core.DAGSolve(tc.g, cfg, nil)
			if err != nil {
				t.Fatalf("DAGSolve: %v", err)
			}
			if predicted == plan.Feasible() {
				t.Errorf("analyzer predicted underflow=%v but DAGSolve feasible=%v; findings:\n%s",
					predicted, plan.Feasible(), render(findings))
			}
		})
	}
}

// TestDefiniteVerdictsMatchLP cross-checks "definite" interval verdicts
// against the RVol LP on the lint corpus: whenever the analyzer reports
// VOL001 or VOL002 — bounds every solver shares — the LP must be
// infeasible on the as-written DAG, and when it reports neither (VOL003
// being DAGSolve-specific) the LP must be feasible. This is the
// no-false-positives guarantee: a definite verdict is never contradicted
// by the exact solver.
func TestDefiniteVerdictsMatchLP(t *testing.T) {
	cfg := core.DefaultConfig()
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "*.asy"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".asy")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			findings, prog, err := analysis.LintSource(string(src), cfg, analysis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if prog == nil {
				t.Fatalf("front end rejected %s:\n%s", file, findings.Error())
			}
			if prog.Graph.NumEdges() > 400 {
				t.Skipf("%d edges: too large for the dense simplex cross-check", prog.Graph.NumEdges())
			}
			definite := hasCode(findings, analysis.CodeUnderflow, analysis.CodeOverflow)
			plan, err := core.SolveLP(prog.Graph, cfg, core.FormulateOptions{}, nil)
			switch {
			case errors.Is(err, core.ErrNeedsPartition):
				t.Skipf("unknown-volume nodes: LP needs partitioning")
			case errors.Is(err, core.ErrLPInfeasible):
				if !definite {
					t.Errorf("LP infeasible but analyzer reported no VOL001/VOL002; findings:\n%s", render(findings))
				}
			case err != nil:
				t.Fatalf("SolveLP: %v", err)
			default:
				if definite {
					t.Errorf("analyzer reported a definite verdict but the LP is feasible (plan feasible=%v); findings:\n%s",
						plan.Feasible(), render(findings))
				} else if !plan.Feasible() {
					t.Errorf("LP solved but plan has underflows: %v", plan.Underflows)
				}
			}
		})
	}
}
