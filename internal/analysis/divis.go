package analysis

import (
	"fmt"
	"math"
	"strings"

	"aquavol/internal/dag"
	"aquavol/internal/diag"
)

// DivisibilityPass is the least-count divisibility lint (VOL030): every
// dispensed volume must be an integer multiple of the hardware least
// count, so a mix is exactly realizable within one reservoir only if some
// integer total T ≤ MaxSkew splits into integer per-component counts in
// the requested proportions (e.g. 1:8 → T=9; 1:100:1 → T=102). Ratios
// with no such T (say 1:3.1417) are silently rounded by the dispenser;
// this pass surfaces the rounding and suggests the closest realizable
// ratio.
type DivisibilityPass struct{}

// Name implements Pass.
func (DivisibilityPass) Name() string { return "divisibility" }

// countTol separates float noise in frac×T (≲1e-12 for ratios that are
// exact rationals with denominator ≤ MaxSkew) from genuine misses (the
// best non-matching rational approximations err by ≳1e-5).
const countTol = 1e-6

// maxTotalScan bounds the search for pathological configurations.
const maxTotalScan = 100000

// Run implements Pass.
func (DivisibilityPass) Run(ctx *Context) diag.List {
	var out diag.List
	maxTotal := int(math.Floor(ctx.Cfg.MaxSkew() + countTol))
	if maxTotal > maxTotalScan {
		maxTotal = maxTotalScan
	}
	for _, n := range ctx.Graph.Nodes() {
		if n == nil || n.Kind != dag.Mix || len(n.In()) < 2 {
			continue
		}
		if dag.ExtremeRatio(n) > ctx.Cfg.MaxSkew() {
			continue // already reported by the skew/interval passes
		}
		if bestT, bestErr := scanTotals(n, maxTotal); bestErr > countTol {
			d := CodeInexactRatio.New(ctx.PosOf(n),
				"mix %s: ratios are not realizable as integer multiples of the least count within one reservoir (no exact total ≤ %d parts)",
				n.Name, maxTotal)
			if bestT > 0 && !math.IsInf(bestErr, 1) {
				d.Suggestion = fmt.Sprintf("closest realizable ratio is %s (%d parts, max error %.2g%%)",
					countsString(n, bestT), bestT, bestErr/float64(bestT)*100)
			}
			out = append(out, d)
		}
	}
	return out
}

// scanTotals finds the smallest total part count T at which every
// component count frac×T is integral (within countTol) and ≥ 1. When none
// exists it returns the T minimizing the worst absolute count error.
func scanTotals(n *dag.Node, maxTotal int) (bestT int, bestErr float64) {
	bestErr = math.Inf(1)
	for T := len(n.In()); T <= maxTotal; T++ {
		worst := 0.0
		for _, e := range n.In() {
			c := e.Frac * float64(T)
			if c < 0.5 {
				worst = math.Inf(1) // a component would get zero parts
				break
			}
			if err := math.Abs(c - math.Round(c)); err > worst {
				worst = err
			}
		}
		if worst < bestErr {
			bestT, bestErr = T, worst
		}
		if worst <= countTol {
			return T, worst
		}
	}
	return bestT, bestErr
}

// countsString renders the rounded integer counts at total T in edge
// order, e.g. "1:3".
func countsString(n *dag.Node, T int) string {
	parts := make([]string, len(n.In()))
	for i, e := range n.In() {
		c := math.Round(e.Frac * float64(T))
		if c < 1 {
			c = 1
		}
		parts[i] = fmt.Sprintf("%d", int(c))
	}
	return strings.Join(parts, ":")
}
