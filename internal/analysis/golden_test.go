package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aquavol/internal/analysis"
	"aquavol/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/lint")

// TestGolden lints every assay in testdata/lint and compares the rendered
// findings against the matching .golden file. Each volNNN_*.asy file is
// additionally required to actually produce its namesake code, so the
// corpus stays an exemplar of one diagnostic per file.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "*.asy"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/lint")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".asy")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			findings, _, err := analysis.LintSource(string(src), core.DefaultConfig(), analysis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range findings {
				b.WriteString(d.Error())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := strings.TrimSuffix(file, ".asy") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (rerun with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}

			// volNNN_*.asy must exhibit the code it is named after.
			if code, _, ok := strings.Cut(name, "_"); ok && strings.HasPrefix(code, "vol") {
				wantCode := "VOL" + strings.TrimPrefix(code, "vol")
				found := false
				for _, d := range findings {
					if d.Code == wantCode {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("corpus file %s produced no %s finding", file, wantCode)
				}
			}
			if name == "clean" && len(findings) > 0 {
				t.Errorf("clean.asy produced findings:\n%s", got)
			}
		})
	}
}
