package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"aquavol/internal/analysis"
	"aquavol/internal/assays"
	"aquavol/internal/core"
)

// FuzzLint drives the full parse → check → elaborate → analyze pipeline on
// arbitrary source text. The property is simply "no panic, no hang": every
// input either lints (possibly with findings) or is rejected with
// positioned front-end diagnostics.
func FuzzLint(f *testing.F) {
	f.Add(assays.GlucoseSource)
	f.Add(assays.GlycomicsSource)
	f.Add(assays.EnzymeSource(2))
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "*.asy"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	cfg := core.DefaultConfig()
	f.Fuzz(func(t *testing.T, src string) {
		findings, prog, err := analysis.LintSource(src, cfg, analysis.Options{})
		if err != nil {
			return // unusable input, reported as an error — fine
		}
		if prog == nil && len(findings) == 0 {
			t.Errorf("front end rejected the source without diagnostics")
		}
	})
}
