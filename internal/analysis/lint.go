package analysis

import (
	"errors"

	"aquavol/internal/core"
	"aquavol/internal/diag"
	"aquavol/internal/lang"
	"aquavol/internal/lang/elab"
)

// LintSource runs the whole linting front door on assay source text:
// parse → check → elaborate → Analyze, folding front-end syntax/semantic
// errors and analyzer findings into one sorted list. When the front end
// fails, its diagnostics are the result and the returned program is nil.
// The error return is reserved for analyzer-infrastructure failures
// (invalid Config, invalid DAG).
func LintSource(src string, cfg core.Config, opts Options) (diag.List, *elab.Program, error) {
	prog, err := lang.Compile(src)
	if err != nil {
		list := asList(err)
		list.Sort()
		return list, nil, nil
	}
	findings, err := Analyze(prog, cfg, opts)
	if err != nil {
		return nil, prog, err
	}
	return findings, prog, nil
}

// asList coerces a front-end error into diagnostics, preserving structure
// when it already is one.
func asList(err error) diag.List {
	var list diag.List
	if errors.As(err, &list) {
		return list
	}
	var d diag.Diagnostic
	if errors.As(err, &d) {
		return diag.List{d}
	}
	return diag.List{{Severity: diag.Error, Msg: err.Error()}}
}
