// Package analysis is the compile-time volume-safety analyzer (fluidlint):
// a multi-pass static analysis over the elaborated assay (elab IR +
// dag.Graph) that diagnoses volume errors — underflow below the least
// count, overflow past the maximum capacity, skew beyond MaxSkew =
// maxCap/leastCount, statically wasted fluid, and unrepresentable ratios —
// before any LP/ILP solver runs, with source positions and concrete fix
// suggestions.
//
// The passes, in pipeline order:
//
//   - volume-interval analysis (interval.go): abstract interpretation
//     propagating [min,max] volume intervals through the DAG; predicts
//     definite underflow/overflow for a given core.Config and
//     DAGSolve-specific underflow without invoking the solvers;
//   - skew/feasibility analysis (skew.go): per-mix effective ratio against
//     Config.MaxSkew(), with a computed minimal cascade depth as the
//     suggestion;
//   - dead-fluid/waste analysis (waste.go): fluids produced but never
//     consumed, inputs statically discarded beyond a threshold, unused
//     input declarations;
//   - divisibility lint (divis.go): mix ratios that cannot be realized as
//     integer multiples of the least count within one reservoir.
//
// Severity policy: a finding is an Error only when no automatic transform
// of the volume-management hierarchy (cascading, replication, the LP
// fallback) can repair it; conditions the compiler fixes on its own are
// Warnings carrying the transform as the suggestion, and purely advisory
// notes are Info.
package analysis

import (
	"fmt"

	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/diag"
	"aquavol/internal/lang/elab"
	"aquavol/internal/lang/token"
)

// Diagnostic codes, stable across releases, minted through the
// internal/diag registry so each is unique, carries a default
// severity, and is documented. See README.md for the code → meaning →
// paper-section reference table. Sites that need a context-dependent
// severity (VOL001 downgrades to Warning when cascading repairs the
// underflow) override it with NewWith.
var (
	// CodeUnderflow is a definite least-count underflow: some dispense
	// cannot reach Config.LeastCount under any volume assignment (§3.2
	// constraint class 1 vs class 2/4).
	CodeUnderflow = diag.MustRegister("VOL001", diag.Error,
		"definite least-count underflow", "README.md#static-analysis-fluidlint")
	// CodeOverflow is a definite capacity overflow: some node needs more
	// than Config.MaxCapacity under any volume assignment.
	CodeOverflow = diag.MustRegister("VOL002", diag.Error,
		"definite capacity overflow", "README.md#static-analysis-fluidlint")
	// CodeDAGSolveUnderflow predicts that DAGSolve's proportional
	// assignment (§3.3) underflows, engaging the Fig. 6 hierarchy.
	CodeDAGSolveUnderflow = diag.MustRegister("VOL003", diag.Warning,
		"predicted DAGSolve underflow", "README.md#static-analysis-fluidlint")
	// CodeExtremeRatio is a mix ratio beyond MaxSkew that cascading
	// (§3.4.1) repairs automatically.
	CodeExtremeRatio = diag.MustRegister("VOL010", diag.Warning,
		"mix ratio beyond MaxSkew, repairable by cascading", "README.md#static-analysis-fluidlint")
	// CodeUncascadable is a mix ratio beyond MaxSkew that cascading
	// cannot repair (NOEXCESS fluids, >2 parts, or no feasible depth).
	CodeUncascadable = diag.MustRegister("VOL011", diag.Error,
		"mix ratio beyond MaxSkew that cascading cannot repair", "README.md#static-analysis-fluidlint")
	// CodeCascadeExpected notes a ratio above the cascade trigger: legal,
	// but the volume manager will likely cascade it.
	CodeCascadeExpected = diag.MustRegister("VOL012", diag.Info,
		"ratio above the cascade trigger", "README.md#static-analysis-fluidlint")
	// CodeDeadFluid is a produced fluid that is never consumed.
	CodeDeadFluid = diag.MustRegister("VOL020", diag.Warning,
		"produced fluid is never consumed", "README.md#static-analysis-fluidlint")
	// CodeStaticWaste is an input a large fraction of which is statically
	// known to be discarded.
	CodeStaticWaste = diag.MustRegister("VOL021", diag.Warning,
		"input is statically discarded beyond the waste threshold", "README.md#static-analysis-fluidlint")
	// CodeUnusedFluid is a fluid declaration that is never referenced.
	CodeUnusedFluid = diag.MustRegister("VOL022", diag.Warning,
		"fluid declaration is never referenced", "README.md#static-analysis-fluidlint")
	// CodeInexactRatio is a mix ratio that cannot be dispensed exactly as
	// integer multiples of the least count within one reservoir.
	CodeInexactRatio = diag.MustRegister("VOL030", diag.Warning,
		"mix ratio is not realizable in least-count multiples", "README.md#static-analysis-fluidlint")
)

// Options tunes the analyzer.
type Options struct {
	// DiscardThreshold is the statically-discarded fraction of an input
	// above which the waste pass warns. Zero selects 0.25.
	DiscardThreshold float64
	// Passes overrides the default pass pipeline (mainly for tests).
	Passes []Pass
}

func (o Options) discardThreshold() float64 {
	if o.DiscardThreshold > 0 {
		return o.DiscardThreshold
	}
	return 0.25
}

// Pass is one analysis. Passes observe the Context and report findings;
// they must not mutate the graph or program.
type Pass interface {
	Name() string
	Run(ctx *Context) diag.List
}

// Context is the shared state passes analyze.
type Context struct {
	// Prog optionally supplies source-level information (positions,
	// declarations). Nil for analyses over programmatically-built DAGs.
	Prog *elab.Program
	// Graph is the assay DAG under analysis (pre-transform: as elaborated,
	// before cascading/replication/partitioning).
	Graph *dag.Graph
	// Cfg is the hardware configuration analyzed against.
	Cfg  core.Config
	Opts Options

	parts []analysisPart
}

// analysisPart is one solve-time region of the graph: the whole graph when
// all volumes are static, or one partition of §3.5 otherwise.
type analysisPart struct {
	g *dag.Graph
	// orig maps part-local node ids to ids in Context.Graph; identity (nil)
	// for the single-part case.
	orig map[int]int
}

func (p *analysisPart) origID(localID int) int {
	if p.orig == nil {
		return localID
	}
	if id, ok := p.orig[localID]; ok {
		return id
	}
	return -1 // synthetic node (ConstrainedInput)
}

// PosOf resolves a node of Context.Graph to its source position: the
// elaborated op it came from, or the fluid declaration for input nodes
// (which no op creates); the zero Pos when unavailable.
func (ctx *Context) PosOf(n *dag.Node) token.Pos {
	if ctx.Prog == nil || n == nil {
		return token.Pos{}
	}
	if idx, ok := n.Ref.(int); ok && idx >= 0 && idx < len(ctx.Prog.Ops) {
		return ctx.Prog.Ops[idx].Pos
	}
	if n.Kind == dag.Input {
		for _, d := range ctx.Prog.FluidDecls {
			if d.Name == n.Name {
				return d.Pos
			}
		}
	}
	return token.Pos{}
}

// posOfOrig is PosOf by original-graph node id.
func (ctx *Context) posOfOrig(id int) token.Pos {
	if id < 0 {
		return token.Pos{}
	}
	return ctx.PosOf(ctx.Graph.Node(id))
}

// Parts returns the solve-time regions of the graph, partitioning at
// unknown-volume nodes exactly as the staged volume manager does (§3.5).
// Per-part analyses (DAGSolve prediction, waste shares) use these, because
// each part is dispensed at its own scale.
func (ctx *Context) Parts() []analysisPart {
	if ctx.parts != nil {
		return ctx.parts
	}
	hasUnknown := false
	for _, n := range ctx.Graph.Nodes() {
		if n != nil && n.Unknown && !n.IsLeaf() {
			hasUnknown = true
			break
		}
	}
	if !hasUnknown {
		ctx.parts = []analysisPart{{g: ctx.Graph}}
		return ctx.parts
	}
	res, err := dag.Partition(ctx.Graph)
	if err != nil {
		// The driver validated the graph already; an unpartitionable graph
		// simply gets no per-part analyses.
		ctx.parts = []analysisPart{}
		return ctx.parts
	}
	for i, pg := range res.Parts {
		ctx.parts = append(ctx.parts, analysisPart{g: pg, orig: res.OrigOf[i]})
	}
	return ctx.parts
}

// DefaultPasses returns the standard pipeline in order.
func DefaultPasses() []Pass {
	return []Pass{IntervalPass{}, SkewPass{}, WastePass{}, DivisibilityPass{}}
}

// Analyze lints an elaborated program against cfg, running every pass and
// returning the aggregated, position-sorted findings. It returns a non-nil
// error only when the inputs themselves are unusable (invalid config or
// DAG) — an assay full of volume errors analyzes fine and reports them.
//
// Analyze is certified parallel-safe: concurrent lints are race-free
// provided any caller-supplied Options.Passes are (the default pipeline
// is).
//
//fluidvet:parallelsafe
func Analyze(prog *elab.Program, cfg core.Config, opts Options) (diag.List, error) {
	return run(&Context{Prog: prog, Graph: prog.Graph, Cfg: cfg, Opts: opts})
}

// AnalyzeGraph lints a bare assay DAG (no source positions).
func AnalyzeGraph(g *dag.Graph, cfg core.Config, opts Options) (diag.List, error) {
	return run(&Context{Graph: g, Cfg: cfg, Opts: opts})
}

func run(ctx *Context) (diag.List, error) {
	if err := ctx.Cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.Graph == nil {
		return nil, fmt.Errorf("analysis: nil graph")
	}
	if err := ctx.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("analysis: invalid DAG: %w", err)
	}
	passes := ctx.Opts.Passes
	if passes == nil {
		passes = DefaultPasses()
	}
	var out diag.List
	for _, p := range passes {
		// Cooperative cancellation at the pass boundary: a tripped
		// cfg.Budget stops the lint with its typed cause.
		if err := ctx.Cfg.Budget.Err(); err != nil {
			return nil, err
		}
		out = append(out, runPass(p, ctx)...)
	}
	out.Sort()
	return out, nil
}

// runPass dispatches one pass through the Pass interface — the single
// dynamic call on the certified Analyze path, isolated here so the
// effect assertion trusts exactly this dispatch and nothing else. The
// default passes (interval, skew, waste, divisibility) are in-package
// pure analyses over the Context; caller-supplied passes must uphold
// the same contract, which Options.Passes documents.
//
//fluidvet:effect reads-global,calls-param default passes are in-package pure analyses; Options.Passes extensions must be race-free per the field contract
func runPass(p Pass, ctx *Context) diag.List {
	return p.Run(ctx)
}
