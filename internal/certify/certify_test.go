package certify

import (
	"errors"
	"testing"

	"aquavol/internal/assays"
	"aquavol/internal/budget"
	"aquavol/internal/core"
	"aquavol/internal/dag"
)

func cfg() core.Config { return core.DefaultConfig() }

// cause extracts the typed sentinel of a certification error and asserts
// there is exactly one.
func cause(t *testing.T, err error) error {
	t.Helper()
	if err == nil {
		t.Fatal("expected a certification error")
	}
	if !errors.Is(err, ErrCertificate) {
		t.Fatalf("error %v does not match ErrCertificate", err)
	}
	causes := []error{ErrShape, ErrConservation, ErrCapacity, ErrLeastCount,
		ErrAvailability, ErrPrimal, ErrDual, ErrGap, ErrPatch, ErrHash}
	var matched []error
	for _, c := range causes {
		if errors.Is(err, c) {
			matched = append(matched, c)
		}
	}
	if len(matched) != 1 {
		t.Fatalf("error %v matches %d typed causes (%v), want exactly 1", err, len(matched), matched)
	}
	return matched[0]
}

func dagsolvePlan(t *testing.T, g *dag.Graph) *core.Plan {
	t.Helper()
	p, err := core.DAGSolve(g, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Fatalf("fixture plan infeasible: %v", p.Underflows)
	}
	return p
}

func lpPlan(t *testing.T, g *dag.Graph) *core.Plan {
	t.Helper()
	p, err := core.SolveLP(g, cfg(), core.FormulateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Fatalf("fixture LP plan infeasible: %v", p.Underflows)
	}
	return p
}

// Every shipped assay's plan must certify clean, through both solvers
// and the full Manage hierarchy.
func TestShippedPlansCertifyClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *dag.Graph
	}{
		{"fig2", assays.Fig2DAG()},
		{"glucose", assays.GlucoseDAG()},
	} {
		if err := CheckPlan(dagsolvePlan(t, tc.g), cfg(), nil); err != nil {
			t.Errorf("%s/dagsolve: %v", tc.name, err)
		}
	}
	if err := CheckPlan(lpPlan(t, assays.GlucoseDAG()), cfg(), nil); err != nil {
		t.Errorf("glucose/lp: %v", err)
	}
	res, err := core.Manage(assays.EnzymeDAG(4), cfg(), core.ManageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(res.Plan, cfg(), core.StaticAvailability(cfg())); err != nil {
		t.Errorf("enzyme4/manage (%s): %v", res.Plan.Method, err)
	}
}

// A plan solved under a nonzero safety margin still certifies: the
// non-deficit check must apply the same margin the solver did.
func TestMarginPlanCertifies(t *testing.T) {
	c := cfg()
	c.SafetyMargin = 0.05
	p, err := core.DAGSolve(assays.GlucoseDAG(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(p, c, nil); err != nil {
		t.Errorf("margin plan: %v", err)
	}
}

// Staged plans certify part by part under PartAvailability.
func TestStagedPartsCertify(t *testing.T) {
	sp, err := core.NewStagedPlan(assays.GlycomicsDAG(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	measured := map[int]float64{}
	measure := func(orig int, port string) (float64, bool) {
		v, ok := measured[orig]
		return v, ok
	}
	for i := 0; i < sp.NumParts(); i++ {
		if !sp.Static(i) {
			// Feed the separator's unknown effluents a plausible reading.
			for _, b := range sp.Partition.Bindings {
				if b.Part == i && b.SourceUnknown {
					measured[b.SourceID] = 40
				}
			}
		}
		plan, err := sp.SolvePart(i, measure)
		if err != nil {
			t.Fatalf("part %d: %v", i, err)
		}
		if !plan.Feasible() {
			t.Fatalf("part %d infeasible: %v", i, plan.Underflows)
		}
		if err := CheckPlan(plan, sp.Config(), sp.PartAvailability(i, measure)); err != nil {
			t.Errorf("part %d (%s): %v", i, plan.Method, err)
		}
	}
}

// residualFixture mirrors core's replan test: in1,in2 → mix(1:3) →
// incubate → sense with everything through the mix executed, leaving a
// residual fed by one live vessel.
func residualFixture(t *testing.T) (*dag.Graph, *dag.Node, *dag.Residual) {
	t.Helper()
	g := dag.New()
	in1 := g.AddInput("in1")
	in2 := g.AddInput("in2")
	m := g.AddMix("M", dag.Part{Source: in1, Ratio: 1}, dag.Part{Source: in2, Ratio: 3})
	h := g.AddUnary(dag.Incubate, "H", m)
	g.AddUnary(dag.Sense, "end", h)
	done := map[int]bool{in1.ID(): true, in2.ID(): true, m.ID(): true}
	r, err := dag.ExtractResidual(g, func(n *dag.Node) bool { return done[n.ID()] })
	if err != nil {
		t.Fatal(err)
	}
	return g, m, r
}

func solvedResidual(t *testing.T, liveVol float64) (*core.ResidualPlan, *dag.Node) {
	t.Helper()
	_, m, r := residualFixture(t)
	live := func(sourceID int, port string) (float64, bool) { return liveVol, true }
	rp, err := core.SolveResidual(r, cfg(), live)
	if err != nil {
		t.Fatal(err)
	}
	return rp, m
}

func TestResidualCertifies(t *testing.T) {
	rp, _ := solvedResidual(t, 37.5)
	live := func(sourceID int, port string) (float64, bool) { return 37.5, true }
	if err := CheckResidual(rp, cfg(), live); err != nil {
		t.Fatal(err)
	}
	// A shrunken live reading means the certified plan now over-draws.
	shrunk := func(sourceID int, port string) (float64, bool) {
		return 0.9 * 37.5, true
	}
	err := CheckResidual(rp, cfg(), shrunk)
	if got := cause(t, err); got != ErrAvailability {
		t.Fatalf("cause = %v, want ErrAvailability", got)
	}
}

func TestPatchesCertify(t *testing.T) {
	rp, _ := solvedResidual(t, 37.5)
	// Build the patch map the way the repair engine does: pc → edge
	// volume, with resolve mapping each pc straight to its edge.
	patches := map[int]float64{}
	edges := map[int]int{} // pc → original edge id
	pc := 100
	for orig, v := range rp.EdgeVolumes() {
		patches[pc] = v
		edges[pc] = orig
		pc++
	}
	resolve := func(pc int) (int, int) {
		if e, ok := edges[pc]; ok {
			return e, -1
		}
		return -1, -1
	}
	if err := CheckPatches(rp, patches, resolve); err != nil {
		t.Fatal(err)
	}
	// Perturb one patched volume: the map no longer matches the plan.
	for pc := range patches {
		patches[pc] += 0.5
		break
	}
	if got := cause(t, CheckPatches(rp, patches, resolve)); got != ErrPatch {
		t.Fatalf("cause = %v, want ErrPatch", got)
	}
	// A patch that resolves to nothing is equally fatal.
	if got := cause(t, CheckPatches(rp, map[int]float64{7: 1}, func(int) (int, int) { return -1, -1 })); got != ErrPatch {
		t.Fatalf("cause = %v, want ErrPatch", got)
	}
}

// Single-field perturbations of a dagsolve plan each yield exactly one
// typed cause.
func TestMutantsDagsolve(t *testing.T) {
	base := func() *core.Plan { return dagsolvePlan(t, assays.GlucoseDAG()) }
	cases := []struct {
		name   string
		mutate func(p *core.Plan)
		want   error
	}{
		{"edge-volume", func(p *core.Plan) { p.EdgeVolume[firstEdge(p)] += 0.5 }, ErrConservation},
		{"node-volume", func(p *core.Plan) { p.NodeVolume[firstNonSource(p)] += 0.5 }, ErrConservation},
		{"production", func(p *core.Plan) { p.Production[firstNonSource(p)] -= 0.5 }, ErrConservation},
		{"source-volume", func(p *core.Plan) { p.NodeVolume[firstSource(p)] += 0.5 }, ErrConservation},
		{"nan", func(p *core.Plan) { p.NodeVolume[firstSource(p)] = nan() }, ErrShape},
		{"truncate", func(p *core.Plan) { p.EdgeVolume = p.EdgeVolume[:1] }, ErrShape},
	}
	for _, tc := range cases {
		p := base()
		tc.mutate(p)
		if got := cause(t, CheckPlan(p, cfg(), nil)); got != tc.want {
			t.Errorf("%s: cause = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// A coherent over-capacity scaling (every volume ×1.2) preserves
// conservation but must still die on capacity.
func TestMutantOverCapacity(t *testing.T) {
	p := dagsolvePlan(t, assays.GlucoseDAG())
	for i := range p.NodeVolume {
		p.NodeVolume[i] *= 1.2
		p.Production[i] *= 1.2
	}
	for i := range p.EdgeVolume {
		p.EdgeVolume[i] *= 1.2
	}
	if got := cause(t, CheckPlan(p, cfg(), nil)); got != ErrCapacity {
		t.Fatalf("cause = %v, want ErrCapacity", got)
	}
}

// A coherent scale-down dies on the least count instead.
func TestMutantUnderLeastCount(t *testing.T) {
	p := dagsolvePlan(t, assays.GlucoseDAG())
	_, min := p.MinDispense()
	k := 0.5 * cfg().LeastCount / min
	for i := range p.NodeVolume {
		p.NodeVolume[i] *= k
		p.Production[i] *= k
	}
	for i := range p.EdgeVolume {
		p.EdgeVolume[i] *= k
	}
	if got := cause(t, CheckPlan(p, cfg(), nil)); got != ErrLeastCount {
		t.Fatalf("cause = %v, want ErrLeastCount", got)
	}
}

// Certificate perturbations on LP plans: duals and reduced costs are
// pinned by the recomputation identity; a missing certificate is fatal.
func TestMutantsLP(t *testing.T) {
	base := func() *core.Plan { return lpPlan(t, assays.GlucoseDAG()) }
	cases := []struct {
		name   string
		mutate func(p *core.Plan)
		want   error
	}{
		{"dual", func(p *core.Plan) { p.Duals[0] += 0.05 }, ErrDual},
		{"reduced-cost", func(p *core.Plan) { p.ReducedCosts[0] += 0.05 }, ErrDual},
		{"missing-certificate", func(p *core.Plan) { p.Duals, p.ReducedCosts = nil, nil }, ErrDual},
		{"truncated-certificate", func(p *core.Plan) { p.Duals = p.Duals[:1] }, ErrShape},
		{"edge-volume", func(p *core.Plan) { p.EdgeVolume[firstEdge(p)] += 0.5 }, ErrConservation},
	}
	for _, tc := range cases {
		p := base()
		tc.mutate(p)
		if got := cause(t, CheckPlan(p, cfg(), nil)); got != tc.want {
			t.Errorf("%s: cause = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// An LP plan declared as solving a different problem (wrong config) must
// not certify: the re-derived formulation disagrees.
func TestLPWrongConfig(t *testing.T) {
	p := lpPlan(t, assays.GlucoseDAG())
	c := cfg()
	c.MaxCapacity = 80 // the plan saturates nodes at 100
	if err := CheckPlan(p, c, nil); err == nil {
		t.Fatal("expected certification failure under shrunken capacity")
	} else {
		cause(t, err)
	}
}

// Budget stops pass through as budget errors, never as certification
// failures.
func TestBudgetPassthrough(t *testing.T) {
	p := dagsolvePlan(t, assays.GlucoseDAG())
	c := cfg()
	c.Budget = budget.New(3)
	err := CheckPlan(p, c, nil)
	if err == nil {
		t.Fatal("expected budget stop")
	}
	if !budget.IsStop(err) {
		t.Fatalf("err = %v, want a budget stop", err)
	}
	if errors.Is(err, ErrCertificate) {
		t.Fatalf("budget stop %v must not match ErrCertificate", err)
	}
}

func TestPlanHashDeterministic(t *testing.T) {
	p1 := dagsolvePlan(t, assays.GlucoseDAG())
	p2 := dagsolvePlan(t, assays.GlucoseDAG())
	h1, h2 := PlanHash(p1), PlanHash(p2)
	if h1 != h2 {
		t.Fatalf("same plan hashed %08x vs %08x", h1, h2)
	}
	p2.EdgeVolume[firstEdge(p2)] += 0.5
	if PlanHash(p2) == h1 {
		t.Fatal("perturbed plan hashed identically")
	}
	lp1, lp2 := lpPlan(t, assays.GlucoseDAG()), lpPlan(t, assays.GlucoseDAG())
	if PlanHash(lp1) != PlanHash(lp2) {
		t.Fatal("same LP plan hashed differently")
	}
	lp2.Duals[0] += 0.05
	if PlanHash(lp1) == PlanHash(lp2) {
		t.Fatal("dual perturbation not reflected in hash")
	}
}

func TestReplanHashCoversPatches(t *testing.T) {
	rp, _ := solvedResidual(t, 37.5)
	patches := map[int]float64{3: 1.5, 9: 2.5}
	h := ReplanHash(rp, patches)
	if h != ReplanHash(rp, map[int]float64{9: 2.5, 3: 1.5}) {
		t.Fatal("hash depends on patch insertion order")
	}
	patches[9] += 0.5
	if ReplanHash(rp, patches) == h {
		t.Fatal("patch perturbation not reflected in hash")
	}
}

func firstEdge(p *core.Plan) int {
	for _, e := range p.Graph.Edges() {
		if e != nil {
			return e.ID()
		}
	}
	panic("no edges")
}

func firstNonSource(p *core.Plan) int {
	for _, n := range p.Graph.Nodes() {
		if n != nil && !n.IsSource() {
			return n.ID()
		}
	}
	panic("no non-source nodes")
}

func firstSource(p *core.Plan) int {
	for _, n := range p.Graph.Nodes() {
		if n != nil && n.IsSource() {
			return n.ID()
		}
	}
	panic("no source nodes")
}

func nan() float64 {
	v := 0.0
	return v / v
}
