package certify

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"aquavol/internal/core"
)

// Certificate hashes pin a certified plan to the journal records that
// carry it: fluidvm stores PlanHash in the journal's begin record (and
// ReplanHash in each replan record), and resume recomputes the hash from
// the re-derived plan before touching the machine — a mismatch means the
// journal's plan is not the plan that was certified, and the run
// fail-stops with ErrHash.
//
// The hash is CRC32 (IEEE) over a canonical little-endian encoding of
// the plan: method, slice lengths, then the raw IEEE-754 bits of every
// node volume, production, edge volume, dual, and reduced cost in id
// order. Bit-identical plans — the determinism contract the replay
// gates already enforce — therefore hash identically across runs and
// resumes.

// PlanHash returns the certificate hash of a plan.
func PlanHash(p *core.Plan) uint32 {
	h := crc32.NewIEEE()
	writePlan(h, p)
	return h.Sum32()
}

// VerifyHash compares a recomputed certificate hash against the
// journaled one and returns an ErrHash violation on mismatch: the plan
// the resume path re-derived is not the plan the original run
// certified, so replaying its volumes would execute an uncertified
// plan.
func VerifyHash(recomputed, journaled uint32) error {
	if recomputed == journaled {
		return nil
	}
	return &Violation{
		Cause: ErrHash, Check: "hash/plan", Where: "journal begin record",
		Detail: fmt.Sprintf("journaled certificate %08x, recomputed %08x", journaled, recomputed),
	}
}

// ReplanHash returns the certificate hash of a residual replan together
// with its instruction patch map (pc → volume, encoded in pc order).
func ReplanHash(rp *core.ResidualPlan, patches map[int]float64) uint32 {
	h := crc32.NewIEEE()
	writePlan(h, rp.Plan)
	pcs := make([]int, 0, len(patches))
	for pc := range patches {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	writeU64(h, uint64(len(pcs)))
	for _, pc := range pcs {
		writeU64(h, uint64(int64(pc)))
		writeU64(h, math.Float64bits(patches[pc]))
	}
	return h.Sum32()
}

func writePlan(w io.Writer, p *core.Plan) {
	io.WriteString(w, p.Method)
	for _, s := range [][]float64{p.NodeVolume, p.Production, p.EdgeVolume, p.Duals, p.ReducedCosts} {
		writeU64(w, uint64(len(s)))
		for _, v := range s {
			writeU64(w, math.Float64bits(v))
		}
	}
}

func writeU64(w io.Writer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}
