// Package certify is the independent, solver-blind certificate checker
// for volume plans: every core.Plan, core.ResidualPlan, and staged
// SolvePart result is validated here before it may reach codegen or a
// live machine, in the translation-validation style — the checker never
// re-solves, it only verifies that the artifact the solver emitted is a
// correct plan for the problem the solver was given.
//
// Checks run in exact arithmetic over dyadic rationals (every float64
// is one, and the checks are closed under +, −, ×; see dyadic.go), so
// the checker shares no rounding behavior with the float64 solvers it
// polices:
//
//   - shape: slice lengths match the graph; no NaN or ±Inf anywhere
//     (big.Rat.SetFloat64 silently no-ops on NaN, so this must come
//     first);
//   - conservation: every non-source node's volume equals the sum of its
//     inbound edge volumes, and production obeys the solver's identity
//     (dagsolve: NodeVolume·OutFrac·(1−Discard); lp: NodeVolume·OutFrac);
//   - non-deficit: (1+SafetyMargin)× the non-excess outbound draws never
//     exceed production;
//   - capacity: 0 ≤ NodeVolume ≤ MaxCapacity;
//   - least count: every dispense is at least Config.LeastCount (exact
//     divisibility is enforced after rounding, at the instruction level,
//     by aisverify) and every node meets its FFU minimum (Config.MinFor);
//   - availability: no constrained input draws more than its source can
//     supply — the planned share for static splits, the measured live
//     volume for residual replans;
//   - LP optimality (Method "lp" only): the plan must carry the dual
//     certificate from lp.Solve (Plan.Duals, Plan.ReducedCosts); the
//     checker re-derives the formulation (production always builds it
//     with core.FormulateOptions{}) and verifies primal feasibility,
//     dual sign feasibility, carried-vs-recomputed reduced-cost
//     consistency, complementary slackness, and a zero duality gap.
//
// Tolerances come from the documented ladder in internal/lp/tol.go:
// volume and primal checks use lp.FeasCheckTol, dual-value comparisons
// lp.SolutionTol, and the duality gap lp.ObjectiveRelTol — each scaled
// by (1 + |reference|).
//
// Every violation fail-stops with a *Violation wrapping one typed cause
// (ErrConservation, ErrCapacity, …), each of which in turn wraps
// ErrCertificate, so callers can match either the family or the exact
// cause with errors.Is. Checks run in a fixed documented order and stop
// at the first violation, so a given bad plan always reports the same
// single cause.
package certify

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aquavol/internal/core"
	"aquavol/internal/dag"
	"aquavol/internal/lp"
)

// ErrCertificate is the family sentinel: every certification failure
// matches it via errors.Is. Budget stops are not certification failures
// and pass through untouched.
var ErrCertificate = errors.New("certify: plan failed certification")

// Typed causes, one per check class. Each wraps ErrCertificate.
var (
	// ErrShape reports a structurally broken plan: slice lengths that do
	// not match the graph, NaN or ±Inf volumes, or a missing certificate
	// field.
	ErrShape = fmt.Errorf("%w: malformed plan", ErrCertificate)
	// ErrConservation reports a volume-conservation violation: a node
	// whose volume is not the sum of its inbound dispenses, or a
	// production volume that breaks the solver's output identity.
	ErrConservation = fmt.Errorf("%w: volume conservation violated", ErrCertificate)
	// ErrCapacity reports a vessel filled beyond MaxCapacity or to a
	// negative volume.
	ErrCapacity = fmt.Errorf("%w: capacity bound violated", ErrCertificate)
	// ErrLeastCount reports a dispense below the hardware least count or
	// a node below its FFU minimum volume.
	ErrLeastCount = fmt.Errorf("%w: least-count minimum violated", ErrCertificate)
	// ErrAvailability reports a constrained input drawing more volume
	// than its source holds.
	ErrAvailability = fmt.Errorf("%w: availability exceeded", ErrCertificate)
	// ErrPrimal reports an LP plan violating a formulation constraint or
	// variable bound.
	ErrPrimal = fmt.Errorf("%w: LP primal infeasible", ErrCertificate)
	// ErrDual reports a broken dual certificate: wrong sign, inconsistent
	// reduced costs, or violated complementary slackness.
	ErrDual = fmt.Errorf("%w: LP dual certificate invalid", ErrCertificate)
	// ErrGap reports a nonzero duality gap: the plan is feasible but not
	// provably optimal.
	ErrGap = fmt.Errorf("%w: LP duality gap nonzero", ErrCertificate)
	// ErrPatch reports a replan patch map that disagrees with the
	// certified residual plan it claims to carry.
	ErrPatch = fmt.Errorf("%w: replan patch mismatch", ErrCertificate)
	// ErrHash reports a certificate hash mismatch: the plan a journal or
	// resume path presents is not the plan that was certified.
	ErrHash = fmt.Errorf("%w: certificate hash mismatch", ErrCertificate)
)

// Violation is the concrete error for every failed check: a typed cause
// plus the witness that triggered it.
type Violation struct {
	// Cause is the typed sentinel (ErrConservation, …) this violation
	// instantiates.
	Cause error
	// Check names the specific check, e.g. "conservation/node-input".
	Check string
	// Where locates the witness: a node, edge, constraint, or variable.
	Where string
	// Detail states the violated relation with both sides' values.
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%v: %s at %s: %s", v.Cause, v.Check, v.Where, v.Detail)
}

// Unwrap exposes the typed cause (and through it ErrCertificate) to
// errors.Is.
func (v *Violation) Unwrap() error { return v.Cause }

// exceedsTol reports whether a > b + tol·(1+|b|), the one comparison
// primitive all volume checks reduce to. a and b are exact; only the
// tolerance band is approximate, and it is explicit.
func exceedsTol(a, b *exact, tol float64) bool {
	band := rat(tol)
	scale := new(exact).Abs(b)
	scale.Add(scale, new(exact).SetInt64(1))
	band.Mul(band, scale)
	lim := new(exact).Add(b, band)
	return a.Cmp(lim) > 0
}

// differsTol reports whether |a − b| > tol·(1+|b|).
func differsTol(a, b *exact, tol float64) bool {
	return exceedsTol(a, b, tol) || exceedsTol(b, a, tol)
}

// CheckPlan certifies one volume plan against the graph it covers, the
// configuration it was solved under, and the availability limits of its
// constrained inputs (avail may be nil when the graph has none; pass the
// same Availability the solver used). A non-nil cfg.Budget is charged
// one work unit per checked node, edge, LP constraint, and LP variable;
// a tripped budget aborts with its typed cause, not a certification
// error.
//
// CheckPlan is certified parallel-safe: it only reads the plan and
// calls avail, so concurrent certifications are race-free provided the
// availability callback is.
//
//fluidvet:parallelsafe
func CheckPlan(p *core.Plan, cfg core.Config, avail core.Availability) error {
	if err := checkShape(p); err != nil {
		return err
	}
	if err := checkVolumes(p, cfg); err != nil {
		return err
	}
	if err := checkAvailability(p, cfg, avail); err != nil {
		return err
	}
	if p.Method == "lp" {
		return checkLP(p, cfg, avail)
	}
	return nil
}

// checkShape validates slice shapes and rejects NaN/Inf before any
// rational conversion.
func checkShape(p *core.Plan) error {
	g := p.Graph
	if g == nil {
		return &Violation{Cause: ErrShape, Check: "shape/graph", Where: "plan", Detail: "plan has no graph"}
	}
	nn, ne := len(g.Nodes()), len(g.Edges())
	if len(p.NodeVolume) != nn || len(p.Production) != nn || len(p.EdgeVolume) != ne {
		return &Violation{Cause: ErrShape, Check: "shape/len", Where: "plan",
			Detail: fmt.Sprintf("volumes sized %d/%d/%d for graph with %d nodes, %d edges",
				len(p.NodeVolume), len(p.Production), len(p.EdgeVolume), nn, ne)}
	}
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		if bad(p.NodeVolume[n.ID()]) || bad(p.Production[n.ID()]) {
			return &Violation{Cause: ErrShape, Check: "shape/finite", Where: n.String(),
				Detail: fmt.Sprintf("volume %v, production %v", p.NodeVolume[n.ID()], p.Production[n.ID()])}
		}
	}
	for _, e := range g.Edges() {
		if e == nil {
			continue
		}
		if bad(p.EdgeVolume[e.ID()]) {
			return &Violation{Cause: ErrShape, Check: "shape/finite", Where: edgeLabel(e),
				Detail: fmt.Sprintf("volume %v", p.EdgeVolume[e.ID()])}
		}
	}
	for i, v := range p.Duals {
		if bad(v) {
			return &Violation{Cause: ErrShape, Check: "shape/finite", Where: fmt.Sprintf("dual %d", i),
				Detail: fmt.Sprintf("value %v", v)}
		}
	}
	for i, v := range p.ReducedCosts {
		if bad(v) {
			return &Violation{Cause: ErrShape, Check: "shape/finite", Where: fmt.Sprintf("reduced cost %d", i),
				Detail: fmt.Sprintf("value %v", v)}
		}
	}
	return nil
}

// checkVolumes runs the DAG-level conservation, production-identity,
// non-deficit, capacity, and least-count checks in exact arithmetic.
func checkVolumes(p *core.Plan, cfg core.Config) error {
	g := p.Graph
	maxCap := rat(cfg.MaxCapacity)
	leastCount := rat(cfg.LeastCount)
	zero := new(exact)
	margin := rat(1 + cfg.SafetyMargin)
	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		if err := cfg.Budget.Charge(1); err != nil {
			return err
		}
		id := n.ID()
		nodeVol := rat(p.NodeVolume[id])
		prod := rat(p.Production[id])

		// Conservation: a non-source node holds exactly what was dispensed
		// into it.
		if !n.IsSource() {
			in := new(exact)
			for _, e := range n.In() {
				in.Add(in, rat(p.EdgeVolume[e.ID()]))
			}
			if differsTol(nodeVol, in, lp.FeasCheckTol) {
				return &Violation{Cause: ErrConservation, Check: "conservation/node-input", Where: n.String(),
					Detail: fmt.Sprintf("node volume %g vs inbound sum %s", p.NodeVolume[id], in.FloatString(9))}
			}
		}

		// Production identity: what the node forwards is determined by what
		// it holds. dagsolve discounts cascade discard; the LP formulation
		// models excess as explicit edges instead, so its identity has no
		// discard factor.
		want := new(exact).Set(nodeVol)
		if !n.IsSource() {
			want.Mul(want, rat(n.OutFrac))
		}
		if p.Method != "lp" {
			want.Mul(want, rat(1-n.Discard))
		}
		if differsTol(prod, want, lp.FeasCheckTol) {
			return &Violation{Cause: ErrConservation, Check: "conservation/production", Where: n.String(),
				Detail: fmt.Sprintf("production %g vs identity %s", p.Production[id], want.FloatString(9))}
		}

		// Non-deficit: planned draws (with safety margin) within production.
		if !n.IsLeaf() {
			out := new(exact)
			for _, e := range n.Out() {
				if e.To.Kind == dag.Excess {
					continue // surplus by construction, not a consumer draw
				}
				out.Add(out, rat(p.EdgeVolume[e.ID()]))
			}
			out.Mul(out, margin)
			if exceedsTol(out, prod, lp.FeasCheckTol) {
				return &Violation{Cause: ErrConservation, Check: "conservation/non-deficit", Where: n.String(),
					Detail: fmt.Sprintf("(1+margin)·draws %s exceed production %g", out.FloatString(9), p.Production[id])}
			}
		}

		// Capacity: 0 ≤ volume ≤ MaxCapacity.
		if exceedsTol(nodeVol, maxCap, lp.FeasCheckTol) {
			return &Violation{Cause: ErrCapacity, Check: "capacity/max", Where: n.String(),
				Detail: fmt.Sprintf("volume %g exceeds capacity %g", p.NodeVolume[id], cfg.MaxCapacity)}
		}
		if exceedsTol(zero, nodeVol, lp.FeasCheckTol) {
			return &Violation{Cause: ErrCapacity, Check: "capacity/negative", Where: n.String(),
				Detail: fmt.Sprintf("volume %g is negative", p.NodeVolume[id])}
		}

		// FFU minimum: total input at least the kind's configured minimum.
		if !n.IsSource() {
			if min := cfg.MinFor(n); min > cfg.LeastCount {
				if exceedsTol(rat(min), nodeVol, lp.FeasCheckTol) {
					return &Violation{Cause: ErrLeastCount, Check: "least-count/node-min", Where: n.String(),
						Detail: fmt.Sprintf("volume %g below minimum %g", p.NodeVolume[id], min)}
				}
			}
		}
	}
	for _, e := range g.Edges() {
		if e == nil {
			continue
		}
		if err := cfg.Budget.Charge(1); err != nil {
			return err
		}
		if exceedsTol(leastCount, rat(p.EdgeVolume[e.ID()]), lp.FeasCheckTol) {
			return &Violation{Cause: ErrLeastCount, Check: "least-count/dispense", Where: edgeLabel(e),
				Detail: fmt.Sprintf("dispense %g below least count %g", p.EdgeVolume[e.ID()], cfg.LeastCount)}
		}
	}
	return nil
}

// checkAvailability verifies that no constrained input draws beyond what
// its source holds.
func checkAvailability(p *core.Plan, cfg core.Config, avail core.Availability) error {
	for _, n := range p.Graph.Nodes() {
		if n == nil || n.Kind != dag.ConstrainedInput {
			continue
		}
		if err := cfg.Budget.Charge(1); err != nil {
			return err
		}
		if avail == nil {
			return &Violation{Cause: ErrAvailability, Check: "availability/missing", Where: n.String(),
				Detail: "constrained input but no availability provided"}
		}
		a, ok := avail(n)
		if !ok {
			return &Violation{Cause: ErrAvailability, Check: "availability/unknown", Where: n.String(),
				Detail: "availability unknown"}
		}
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return &Violation{Cause: ErrAvailability, Check: "availability/finite", Where: n.String(),
				Detail: fmt.Sprintf("availability %v", a)}
		}
		if exceedsTol(rat(p.NodeVolume[n.ID()]), rat(a), lp.FeasCheckTol) {
			return &Violation{Cause: ErrAvailability, Check: "availability/limit", Where: n.String(),
				Detail: fmt.Sprintf("draw %g exceeds available %g", p.NodeVolume[n.ID()], a)}
		}
	}
	return nil
}

// checkLP verifies the optimality certificate of an LP plan: re-derive
// the formulation the production paths use (core.FormulateOptions{}),
// reconstruct the solution vector from the plan, and verify the KKT
// conditions against the carried duals and reduced costs.
func checkLP(p *core.Plan, cfg core.Config, avail core.Availability) error {
	f, err := core.Formulate(p.Graph, cfg, core.FormulateOptions{}, avail)
	if err != nil {
		return &Violation{Cause: ErrShape, Check: "lp/formulate", Where: "plan",
			Detail: fmt.Sprintf("cannot re-derive formulation: %v", err)}
	}
	prob := f.Prob
	nv, nc := prob.NumVariables(), prob.NumConstraints()
	if p.Duals == nil || p.ReducedCosts == nil {
		return &Violation{Cause: ErrDual, Check: "lp/certificate-missing", Where: "plan",
			Detail: fmt.Sprintf("lp plan carries no dual certificate (duals %d, reduced costs %d)",
				len(p.Duals), len(p.ReducedCosts))}
	}
	if len(p.Duals) != nc || len(p.ReducedCosts) != nv {
		return &Violation{Cause: ErrShape, Check: "lp/certificate-len", Where: "plan",
			Detail: fmt.Sprintf("certificate sized %d/%d for formulation with %d constraints, %d variables",
				len(p.Duals), len(p.ReducedCosts), nc, nv)}
	}

	// Reconstruct X from the plan through the formulation's variable maps.
	x := make([]*exact, nv)
	for _, e := range p.Graph.Edges() {
		if e != nil {
			x[f.EdgeVar[e.ID()]] = rat(p.EdgeVolume[e.ID()])
		}
	}
	for _, n := range p.Graph.Nodes() {
		if n == nil {
			continue
		}
		if v := f.SourceVar[n.ID()]; v >= 0 {
			x[v] = rat(p.NodeVolume[n.ID()])
		}
		if v := f.ProdVar[n.ID()]; v >= 0 {
			x[v] = rat(p.Production[n.ID()])
		}
	}
	for j := range x {
		if x[j] == nil {
			return &Violation{Cause: ErrShape, Check: "lp/variable-unmapped", Where: prob.VariableName(lp.VarID(j)),
				Detail: "formulation variable not reconstructible from plan"}
		}
	}

	// The formulation is always Maximize; normalize the certificate to
	// minimization form (c̃ = σ·c, ỹ = σ·y, r̃ = σ·r with σ = −1) so the
	// sign conditions below read uniformly: LE rows need ỹ ≤ 0, GE rows
	// ỹ ≥ 0, and low-bounded variables need r̃ ≥ 0.
	sigma := new(exact).SetInt64(1)
	if prob.Direction() == lp.Maximize {
		sigma.SetInt64(-1)
	}

	conName := func(i int) string {
		if name := prob.ConstraintName(lp.ConID(i)); name != "" {
			return name
		}
		return fmt.Sprintf("constraint %d", i)
	}

	// Primal feasibility: every row and every variable bound.
	tolBand := lp.FeasCheckTol
	rowAct := make([]*exact, nc)
	for i := 0; i < nc; i++ {
		if err := cfg.Budget.Charge(1); err != nil {
			return err
		}
		terms, sense, rhs := prob.Constraint(lp.ConID(i))
		act := new(exact)
		tmp := new(exact)
		for _, t := range terms {
			tmp.Mul(rat(t.Coef), x[t.Var])
			act.Add(act, tmp)
		}
		rowAct[i] = act
		rhsR := rat(rhs)
		violated := false
		switch sense {
		case lp.LE:
			violated = exceedsTol(act, rhsR, tolBand)
		case lp.GE:
			violated = exceedsTol(rhsR, act, tolBand)
		case lp.EQ:
			violated = differsTol(act, rhsR, tolBand)
		}
		if violated {
			return &Violation{Cause: ErrPrimal, Check: "lp/primal-row", Where: conName(i),
				Detail: fmt.Sprintf("activity %s %s rhs %g violated", act.FloatString(9), sense, rhs)}
		}
	}
	for j := 0; j < nv; j++ {
		lo, hi := prob.Bounds(lp.VarID(j))
		if !math.IsInf(lo, -1) && exceedsTol(rat(lo), x[j], tolBand) {
			return &Violation{Cause: ErrPrimal, Check: "lp/primal-bound", Where: prob.VariableName(lp.VarID(j)),
				Detail: fmt.Sprintf("value %s below lower bound %g", x[j].FloatString(9), lo)}
		}
		if !math.IsInf(hi, 1) && exceedsTol(x[j], rat(hi), tolBand) {
			return &Violation{Cause: ErrPrimal, Check: "lp/primal-bound", Where: prob.VariableName(lp.VarID(j)),
				Detail: fmt.Sprintf("value %s above upper bound %g", x[j].FloatString(9), hi)}
		}
	}

	// Dual sign feasibility per row sense, in min-form.
	zero := new(exact)
	yTil := make([]*exact, nc)
	for i := 0; i < nc; i++ {
		if err := cfg.Budget.Charge(1); err != nil {
			return err
		}
		yTil[i] = new(exact).Mul(sigma, rat(p.Duals[i]))
		_, sense, _ := prob.Constraint(lp.ConID(i))
		violated := false
		switch sense {
		case lp.LE: // min-form LE rows price at ỹ ≤ 0
			violated = exceedsTol(yTil[i], zero, lp.SolutionTol)
		case lp.GE:
			violated = exceedsTol(zero, yTil[i], lp.SolutionTol)
		}
		if violated {
			return &Violation{Cause: ErrDual, Check: "lp/dual-sign", Where: conName(i),
				Detail: fmt.Sprintf("dual %g has wrong sign for %v row", p.Duals[i], sense)}
		}
	}

	// Reduced-cost consistency: the carried reduced costs must equal
	// c_j − Σ_i y_i·a_ij recomputed exactly from the formulation. This is
	// the check that pins the certificate to the plan: perturb any dual
	// or reduced cost and the identity breaks by the full perturbation.
	rTil := make([]*exact, nv)
	for j := 0; j < nv; j++ {
		rTil[j] = new(exact).Mul(sigma, rat(prob.Objective(lp.VarID(j))))
	}
	tmp := new(exact)
	for i := 0; i < nc; i++ {
		terms, _, _ := prob.Constraint(lp.ConID(i))
		for _, t := range terms {
			tmp.Mul(yTil[i], rat(t.Coef))
			rTil[t.Var].Sub(rTil[t.Var], tmp)
		}
	}
	for j := 0; j < nv; j++ {
		if err := cfg.Budget.Charge(1); err != nil {
			return err
		}
		carried := new(exact).Mul(sigma, rat(p.ReducedCosts[j]))
		if differsTol(carried, rTil[j], lp.SolutionTol) {
			return &Violation{Cause: ErrDual, Check: "lp/reduced-cost", Where: prob.VariableName(lp.VarID(j)),
				Detail: fmt.Sprintf("carried reduced cost %g vs recomputed %s", p.ReducedCosts[j], rTil[j].FloatString(9))}
		}
		// Dual feasibility of the bound multipliers: with no finite upper
		// bounds in the formulation, a low-bounded variable needs r̃ ≥ 0.
		lo, hi := prob.Bounds(lp.VarID(j))
		if math.IsInf(hi, 1) && !math.IsInf(lo, -1) && exceedsTol(zero, rTil[j], lp.SolutionTol) {
			return &Violation{Cause: ErrDual, Check: "lp/reduced-cost-sign", Where: prob.VariableName(lp.VarID(j)),
				Detail: fmt.Sprintf("reduced cost %s negative with no upper bound", rTil[j].FloatString(9))}
		}
	}

	// Complementary slackness: a row priced at ỹ ≠ 0 must be tight, and a
	// variable with r̃ ≠ 0 must sit at its lower bound.
	for i := 0; i < nc; i++ {
		_, sense, rhs := prob.Constraint(lp.ConID(i))
		if sense == lp.EQ {
			continue
		}
		slack := new(exact).Sub(rat(rhs), rowAct[i])
		slack.Abs(slack)
		if exceedsTol(slack, zero, lp.FeasCheckTol) && differsTol(yTil[i], zero, lp.FeasCheckTol) {
			return &Violation{Cause: ErrDual, Check: "lp/slackness-row", Where: conName(i),
				Detail: fmt.Sprintf("slack row priced at dual %g", p.Duals[i])}
		}
	}
	for j := 0; j < nv; j++ {
		lo, _ := prob.Bounds(lp.VarID(j))
		if math.IsInf(lo, -1) {
			continue
		}
		gap := new(exact).Sub(x[j], rat(lo))
		if exceedsTol(gap, zero, lp.FeasCheckTol) && differsTol(rTil[j], zero, lp.FeasCheckTol) {
			return &Violation{Cause: ErrDual, Check: "lp/slackness-var", Where: prob.VariableName(lp.VarID(j)),
				Detail: fmt.Sprintf("interior variable has reduced cost %s", rTil[j].FloatString(9))}
		}
	}

	// Zero duality gap: the primal objective must meet the dual bound
	// b·ỹ + Σ_j max(r̃_j, 0)·lo_j (no finite upper bounds exist).
	primal := new(exact)
	for j := 0; j < nv; j++ {
		tmp.Mul(new(exact).Mul(sigma, rat(prob.Objective(lp.VarID(j)))), x[j])
		primal.Add(primal, tmp)
	}
	dual := new(exact)
	for i := 0; i < nc; i++ {
		_, _, rhs := prob.Constraint(lp.ConID(i))
		tmp.Mul(yTil[i], rat(rhs))
		dual.Add(dual, tmp)
	}
	for j := 0; j < nv; j++ {
		lo, _ := prob.Bounds(lp.VarID(j))
		if math.IsInf(lo, -1) || rTil[j].Sign() <= 0 {
			continue
		}
		tmp.Mul(rTil[j], rat(lo))
		dual.Add(dual, tmp)
	}
	if differsTol(primal, dual, lp.ObjectiveRelTol) {
		return &Violation{Cause: ErrGap, Check: "lp/gap", Where: "objective",
			Detail: fmt.Sprintf("primal %s vs dual bound %s", primal.FloatString(9), dual.FloatString(9))}
	}
	return nil
}

// CheckResidual certifies a residual replan against the live vessel
// volumes it was solved from: the full CheckPlan battery over the
// residual graph, with availability resolved through the residual's
// boundaries exactly as core.SolveResidual resolved it.
//
// CheckResidual is certified parallel-safe: concurrent certifications
// are race-free provided the live callback is.
//
//fluidvet:parallelsafe
func CheckResidual(rp *core.ResidualPlan, cfg core.Config, live core.LiveVolume) error {
	if rp == nil || rp.Plan == nil || rp.Residual == nil {
		return &Violation{Cause: ErrShape, Check: "residual/shape", Where: "replan", Detail: "missing plan or residual"}
	}
	bound := make(map[int]dag.ResidualBoundary, len(rp.Residual.Boundaries))
	for _, b := range rp.Residual.Boundaries {
		bound[b.CINode] = b
	}
	avail := func(ci *dag.Node) (float64, bool) {
		b, ok := bound[ci.ID()]
		if !ok {
			return 0, false
		}
		return live(b.SourceID, b.SourcePort)
	}
	return CheckPlan(rp.Plan, cfg, avail)
}

// CheckPatches certifies the instruction patch map derived from a
// residual replan: every patched volume must equal the certified plan's
// volume for that edge (or pending-input node). resolve maps a patched
// pc to the original-graph edge id (or -1) and input node id (or -1) the
// instruction at that pc draws from — the same mapping the repair engine
// used to build the patches.
func CheckPatches(rp *core.ResidualPlan, patches map[int]float64, resolve func(pc int) (edge, node int)) error {
	edgeVols := rp.EdgeVolumes()
	inputVols := rp.InputVolumes()
	pcs := make([]int, 0, len(patches))
	for pc := range patches {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		got := patches[pc]
		if math.IsNaN(got) || math.IsInf(got, 0) {
			return &Violation{Cause: ErrPatch, Check: "patch/finite", Where: fmt.Sprintf("pc %d", pc),
				Detail: fmt.Sprintf("patched volume %v", got)}
		}
		edge, node := resolve(pc)
		var want float64
		var ok bool
		var what string
		switch {
		case edge >= 0:
			want, ok = edgeVols[edge]
			what = fmt.Sprintf("edge %d", edge)
		case node >= 0:
			want, ok = inputVols[node]
			what = fmt.Sprintf("input node %d", node)
		default:
			return &Violation{Cause: ErrPatch, Check: "patch/unmapped", Where: fmt.Sprintf("pc %d", pc),
				Detail: "patched instruction draws from no replanned edge or input"}
		}
		if !ok {
			return &Violation{Cause: ErrPatch, Check: "patch/missing", Where: fmt.Sprintf("pc %d", pc),
				Detail: fmt.Sprintf("replan has no volume for %s", what)}
		}
		if differsTol(rat(got), rat(want), lp.SolutionTol) {
			return &Violation{Cause: ErrPatch, Check: "patch/value", Where: fmt.Sprintf("pc %d", pc),
				Detail: fmt.Sprintf("patched volume %g vs certified %g for %s", got, want, what)}
		}
	}
	return nil
}

func edgeLabel(e *dag.Edge) string {
	return fmt.Sprintf("edge %d (%s -> %s)", e.ID(), e.From.Name, e.To.Name)
}
