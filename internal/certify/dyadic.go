package certify

import (
	"math"
	"math/big"
)

// exact is an exact binary rational m·2^e. Every number the checker
// handles originates as a float64 — a dyadic rational — and the checks
// only ever add, subtract, multiply, and compare, all of which dyadic
// rationals are closed under. Staying dyadic is what makes exact
// certification affordable: big.Rat normalizes through a GCD on every
// operation (it dominated the checker's profile at >70% of CPU), while
// these operations are a shift, an integer add or mul, and nothing
// else. Division is never needed, so the representation never leaves
// this form.
//
// The zero value is the number 0. Methods follow math/big conventions:
// z.Op(x, y) stores x∘y into z and returns z; receivers may alias
// arguments.
type exact struct {
	m big.Int
	e int
}

// rat converts a float64 to an exact rational. Callers must have
// rejected NaN and ±Inf already.
func rat(v float64) *exact { return new(exact).SetFloat64(v) }

// SetFloat64 sets z to the exact value of v (which must be finite):
// frac·2^exp with the 53-bit mantissa made integral.
func (z *exact) SetFloat64(v float64) *exact {
	if v == 0 {
		z.m.SetInt64(0)
		z.e = 0
		return z
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, 0.5 ≤ |frac| < 1
	z.m.SetInt64(int64(frac * (1 << 53)))
	z.e = exp - 53
	return z
}

// SetInt64 sets z to n.
func (z *exact) SetInt64(n int64) *exact {
	z.m.SetInt64(n)
	z.e = 0
	return z
}

// Set sets z to x.
func (z *exact) Set(x *exact) *exact {
	z.m.Set(&x.m)
	z.e = x.e
	return z
}

// aligned returns the two mantissas on their common (smaller)
// exponent, shifting only the wider-exponent operand (none when the
// exponents already match — t is scratch for the shifted copy).
func aligned(x, y *exact, t *big.Int) (xm, ym *big.Int, e int) {
	switch {
	case x.e == y.e:
		return &x.m, &y.m, x.e
	case x.e > y.e:
		t.Lsh(&x.m, uint(x.e-y.e))
		return t, &y.m, y.e
	default:
		t.Lsh(&y.m, uint(y.e-x.e))
		return &x.m, t, x.e
	}
}

// Add sets z = x + y.
func (z *exact) Add(x, y *exact) *exact {
	var t big.Int
	xm, ym, e := aligned(x, y, &t)
	z.m.Add(xm, ym)
	z.e = e
	return z
}

// Sub sets z = x − y.
func (z *exact) Sub(x, y *exact) *exact {
	var t big.Int
	xm, ym, e := aligned(x, y, &t)
	z.m.Sub(xm, ym)
	z.e = e
	return z
}

// Mul sets z = x · y.
func (z *exact) Mul(x, y *exact) *exact {
	z.m.Mul(&x.m, &y.m)
	z.e = x.e + y.e
	return z
}

// Abs sets z = |x|.
func (z *exact) Abs(x *exact) *exact {
	z.m.Abs(&x.m)
	z.e = x.e
	return z
}

// Sign returns −1, 0, or +1.
func (x *exact) Sign() int { return x.m.Sign() }

// Cmp compares x and y, returning −1, 0, or +1.
func (x *exact) Cmp(y *exact) int {
	if xs, ys := x.m.Sign(), y.m.Sign(); xs != ys {
		if xs < ys {
			return -1
		}
		return 1
	}
	var t big.Int
	xm, ym, _ := aligned(x, y, &t)
	return xm.Cmp(ym)
}

// Rat returns the value as a big.Rat, for diagnostics.
func (x *exact) Rat() *big.Rat {
	r := new(big.Rat).SetInt(&x.m)
	if x.e >= 0 {
		return r.Mul(r, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(x.e))))
	}
	return r.Quo(r, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(-x.e))))
}

// FloatString renders the value with prec decimal digits, for
// violation messages (cold path only).
func (x *exact) FloatString(prec int) string { return x.Rat().FloatString(prec) }
