package certify

import (
	"math"
	"math/big"
	"testing"

	"aquavol/internal/assays"
	"aquavol/internal/core"
)

// The dyadic representation must agree exactly with big.Rat — same
// float64→exact conversion, same results under +, −, ×, compare — on
// values spanning the magnitudes the checker sees (volumes, tolerance
// bands, LP coefficients, and their products).
func TestExactMatchesBigRat(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.5, -0.5, 37.5, 100, 1e-6, -1e-6, 1e-9,
		2.5e-7, 1.0 / 3.0, math.Pi, -math.Pi, 1e12, math.SmallestNonzeroFloat64,
	}
	toRat := func(v float64) *big.Rat { return new(big.Rat).SetFloat64(v) }
	for _, a := range vals {
		if got, want := rat(a).Rat(), toRat(a); got.Cmp(want) != 0 {
			t.Fatalf("rat(%g) = %s, want %s", a, got, want)
		}
		for _, b := range vals {
			ea, eb := rat(a), rat(b)
			ra, rb := toRat(a), toRat(b)
			if got, want := new(exact).Add(ea, eb).Rat(), new(big.Rat).Add(ra, rb); got.Cmp(want) != 0 {
				t.Errorf("%g + %g = %s, want %s", a, b, got, want)
			}
			if got, want := new(exact).Sub(ea, eb).Rat(), new(big.Rat).Sub(ra, rb); got.Cmp(want) != 0 {
				t.Errorf("%g - %g = %s, want %s", a, b, got, want)
			}
			if got, want := new(exact).Mul(ea, eb).Rat(), new(big.Rat).Mul(ra, rb); got.Cmp(want) != 0 {
				t.Errorf("%g * %g = %s, want %s", a, b, got, want)
			}
			if got, want := ea.Cmp(eb), ra.Cmp(rb); got != want {
				t.Errorf("cmp(%g, %g) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// Aliasing: z may be x, y, or both, exactly as with math/big.
func TestExactAliasing(t *testing.T) {
	z := rat(37.5)
	z.Add(z, z)
	if got := z.Rat().FloatString(1); got != "75.0" {
		t.Fatalf("z.Add(z, z) = %s, want 75.0", got)
	}
	z.Mul(z, z)
	if got := z.Rat().FloatString(1); got != "5625.0" {
		t.Fatalf("z.Mul(z, z) = %s, want 5625.0", got)
	}
	z.Sub(z, z)
	if z.Sign() != 0 {
		t.Fatalf("z.Sub(z, z) = %s, want 0", z.Rat())
	}
	// Mixed exponents through the shared-scratch alignment path.
	z = rat(0.25)
	z.Add(z, rat(1<<20))
	if got := z.Rat().FloatString(2); got != "1048576.25" {
		t.Fatalf("0.25 + 2^20 = %s", got)
	}
}

// The checker's cost contract (see EXPERIMENTS.md E16): certification
// must stay a small fraction of managed planning on solve-dominated
// assays. These benchmarks record the per-plan cost the dyadic
// representation buys — run with -bench to compare against Manage.
func BenchmarkCheckPlanGlucose(b *testing.B) {
	res, err := core.Manage(assays.GlucoseDAG(), core.DefaultConfig(), core.ManageOptions{})
	if err != nil {
		b.Fatal(err)
	}
	av := core.StaticAvailability(core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckPlan(res.Plan, core.DefaultConfig(), av); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckPlanEnzyme4(b *testing.B) {
	res, err := core.Manage(assays.EnzymeDAG(4), core.DefaultConfig(), core.ManageOptions{})
	if err != nil {
		b.Fatal(err)
	}
	av := core.StaticAvailability(core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckPlan(res.Plan, core.DefaultConfig(), av); err != nil {
			b.Fatal(err)
		}
	}
}
