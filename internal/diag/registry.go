package diag

import (
	"fmt"
	"regexp"
	"sort"
	"sync"

	"aquavol/internal/lang/token"
)

// Code is one registered diagnostic code: the stable machine-readable
// identifier tools key on, its default severity, a one-line summary,
// and a documentation link. Codes are minted exclusively through
// MustRegister — internal/fluidvet's diagcode analyzer rejects raw
// "VOL001"-shaped string literals anywhere else — so every code in the
// system is unique, carries exactly one default severity, and is
// documented.
type Code struct {
	// ID is the stable identifier ("VOL001"). The families are VOL
	// (compile-time volume-safety lints), AIS (listing-verifier
	// findings), and ASM (assembler errors).
	ID string
	// Default is the severity a finding carries unless the reporting
	// site overrides it with NewWith (e.g. VOL001 downgrades to Warning
	// when cascading will repair the underflow).
	Default Severity
	// Summary is a one-line description of the condition.
	Summary string
	// Doc links the code's documentation (a README anchor).
	Doc string
}

// codeIDRe is the code grammar: a three-letter family tag and three
// digits. internal/fluidvet enforces the same grammar statically.
var codeIDRe = regexp.MustCompile(`^(VOL|AIS|ASM)[0-9]{3}$`)

var (
	registryMu sync.Mutex
	registry   = map[string]Code{}
)

// MustRegister records a code in the global registry and returns it.
// It panics on a malformed ID, a duplicate registration, or a missing
// summary or doc link: registration happens in package variable
// initializers, so any violation fails the first test or run that
// links the offending package.
func MustRegister(id string, def Severity, summary, doc string) Code {
	if !codeIDRe.MatchString(id) {
		panic(fmt.Sprintf("diag: code %q does not match %s", id, codeIDRe))
	}
	if summary == "" || doc == "" {
		panic(fmt.Sprintf("diag: code %s registered without summary or doc link", id))
	}
	c := Code{ID: id, Default: def, Summary: summary, Doc: doc}
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, dup := registry[id]; dup {
		panic(fmt.Sprintf("diag: code %s registered twice (%q vs %q)", id, prev.Summary, summary))
	}
	registry[id] = c
	return c
}

// Lookup returns the registered code, if any.
func Lookup(id string) (Code, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	c, ok := registry[id]
	return c, ok
}

// All returns every registered code sorted by ID. Only codes whose
// registering packages are linked into the binary appear; the
// internal/diag meta-test imports all of them.
func All() []Code {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Code, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// New constructs a finding for the code at its default severity.
func (c Code) New(pos token.Pos, format string, args ...any) Diagnostic {
	return c.NewWith(c.Default, pos, format, args...)
}

// NewWith constructs a finding with an explicit severity, for codes
// whose severity is context-dependent.
func (c Code) NewWith(sev Severity, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      pos,
		Severity: sev,
		Code:     c.ID,
		Msg:      fmt.Sprintf(format, args...),
	}
}

// Suggest returns a copy of the diagnostic with the fix suggestion set,
// so registry-constructed findings can chain:
//
//	CodeUnderflow.New(pos, "…").Suggest("cascade depth %d suffices", d)
func (d Diagnostic) Suggest(format string, args ...any) Diagnostic {
	d.Suggestion = fmt.Sprintf(format, args...)
	return d
}
