// Package diag defines the shared diagnostic currency of the compiler:
// position-carrying findings with a severity, a stable machine-readable
// code, and an optional fix suggestion. The language front end (parser,
// sema, elab) and the static volume-safety analyzer (internal/analysis)
// all report through this package so that syntax errors, semantic errors,
// and lint findings print and sort identically.
package diag

import (
	"fmt"
	"sort"
	"strings"

	"aquavol/internal/lang/token"
)

// Severity classifies a diagnostic. The zero value is Error so that bare
// Diagnostic{Pos, Msg} literals (the historical sema/parser error shape)
// keep error severity.
type Severity int

const (
	// Error findings make compilation fail (or fluidlint exit non-zero).
	Error Severity = iota
	// Warning findings flag likely problems the compiler can work around.
	Warning
	// Info findings are advisory.
	Info
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Info:
		return "info"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON parses the lower-case severity names MarshalJSON emits, so
// tools consuming fluidlint -json output can round-trip findings.
func (s *Severity) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"error"`:
		*s = Error
	case `"warning"`:
		*s = Warning
	case `"info"`:
		*s = Info
	default:
		return fmt.Errorf("diag: unknown severity %s", data)
	}
	return nil
}

// Diagnostic is one finding. Pos may be the zero value for findings with
// no source anchor (e.g. analyses over programmatically-built DAGs).
type Diagnostic struct {
	Pos      token.Pos
	Severity Severity
	// Code is a stable machine-readable identifier ("VOL001"). Front-end
	// syntax and semantic errors leave it empty.
	Code string
	Msg  string
	// Suggestion optionally describes a concrete fix ("cascade depth 2
	// suffices").
	Suggestion string
}

// Error renders the diagnostic as "line:col: severity[CODE]: msg;
// suggestion", omitting the parts that are unset. Code-less errors print
// as the historical "line:col: msg" so front-end messages are unchanged.
func (d Diagnostic) Error() string {
	var b strings.Builder
	if d.Pos.IsValid() {
		b.WriteString(d.Pos.String())
		b.WriteString(": ")
	}
	if d.Code != "" || d.Severity != Error {
		fmt.Fprintf(&b, "%s[%s]: ", d.Severity, d.Code)
	}
	b.WriteString(d.Msg)
	if d.Suggestion != "" {
		b.WriteString("; ")
		b.WriteString(d.Suggestion)
	}
	return b.String()
}

// Errorf builds an error-severity diagnostic.
func Errorf(pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: pos, Severity: Error, Msg: fmt.Sprintf(format, args...)}
}

// List collects diagnostics. It implements error.
type List []Diagnostic

func (l List) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, d := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil when it is empty.
func (l List) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// HasErrors reports whether any finding has Error severity.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Count reports the number of findings with the given severity.
func (l List) Count(s Severity) int {
	n := 0
	for _, d := range l {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Sort orders the list by source position, then severity (errors first),
// then code, then message, so reports are deterministic.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}
