package diag_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"aquavol/internal/diag"
	"aquavol/internal/lang/token"

	// Link every code-registering package so diag.All sees the full set.
	_ "aquavol/internal/ais"
	_ "aquavol/internal/aisverify"
	_ "aquavol/internal/analysis"
)

// declRe matches a registration site and captures the Go identifier and
// the code ID, so the witness scan can accept either form.
var declRe = regexp.MustCompile(`(\w+)\s*=\s*diag\.MustRegister\(\s*"([A-Z]{3}[0-9]{3})"`)

// TestRegistryBasics pins the registry surface: the full code set is
// linked, lookups resolve, All is ID-sorted, and each entry is complete
// (MustRegister enforces completeness at init; this guards the getters).
func TestRegistryBasics(t *testing.T) {
	all := diag.All()
	if len(all) < 26 {
		t.Fatalf("registry holds %d codes, want the full VOL/AIS/ASM set (>= 26)", len(all))
	}
	for i, c := range all {
		if i > 0 && all[i-1].ID >= c.ID {
			t.Errorf("All() not sorted: %s before %s", all[i-1].ID, c.ID)
		}
		if c.Summary == "" || c.Doc == "" {
			t.Errorf("%s registered without summary or doc", c.ID)
		}
		got, ok := diag.Lookup(c.ID)
		if !ok || got != c {
			t.Errorf("Lookup(%s) = %+v, %v; want the registered code", c.ID, got, ok)
		}
	}
	if _, ok := diag.Lookup("VOL999"); ok {
		t.Error("Lookup(VOL999) succeeded for an unregistered code")
	}
}

// TestConstructors pins New/NewWith/Suggest semantics: default severity,
// explicit override, and suggestion chaining.
func TestConstructors(t *testing.T) {
	c, ok := diag.Lookup("VOL001")
	if !ok {
		t.Fatal("VOL001 not registered")
	}
	if c.Default != diag.Error {
		t.Fatalf("VOL001 default severity = %v, want Error", c.Default)
	}
	d := c.New(token.Pos{Line: 3, Col: 7}, "short by %g nl", 2.5)
	if d.Code != "VOL001" || d.Severity != diag.Error || d.Msg != "short by 2.5 nl" {
		t.Errorf("New built %+v", d)
	}
	if d.Pos.Line != 3 || d.Pos.Col != 7 {
		t.Errorf("New lost the position: %+v", d.Pos)
	}
	w := c.NewWith(diag.Warning, token.Pos{Line: 1, Col: 1}, "repairable").Suggest("cascade depth %d", 2)
	if w.Severity != diag.Warning || w.Suggestion != "cascade depth 2" {
		t.Errorf("NewWith/Suggest built %+v", w)
	}
}

// TestEveryCodeHasTestWitness asserts each registered code is exercised
// somewhere under internal/: its ID appears literally in a _test.go or
// testdata file, or the identifier it is bound to appears in a _test.go
// file. A code nothing tests is a code whose meaning can silently rot.
func TestEveryCodeHasTestWitness(t *testing.T) {
	idents := map[string]string{} // code ID -> declared identifier
	var testCorpus, dataCorpus strings.Builder
	root := ".." // the internal/ tree, relative to internal/diag
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		inTestdata := strings.Contains(path, string(filepath.Separator)+"testdata"+string(filepath.Separator))
		isGo := strings.HasSuffix(path, ".go")
		isTest := strings.HasSuffix(path, "_test.go")
		if !isGo && !inTestdata {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s := string(b)
		switch {
		case isTest:
			testCorpus.WriteString(s)
		case inTestdata:
			dataCorpus.WriteString(s)
		default:
			for _, m := range declRe.FindAllStringSubmatch(s, -1) {
				idents[m[2]] = m[1]
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tests, data := testCorpus.String(), dataCorpus.String()
	for _, c := range diag.All() {
		if strings.Contains(tests, c.ID) || strings.Contains(data, c.ID) {
			continue
		}
		if id := idents[c.ID]; id != "" && regexp.MustCompile(`\b`+id+`\b`).MatchString(tests) {
			continue
		}
		t.Errorf("%s (%s) has no test witness: no _test.go or testdata file under internal/ mentions the ID or its identifier %q",
			c.ID, c.Summary, idents[c.ID])
	}
}

// TestDocLinksResolve asserts every Doc link names a repo file that
// exists and, when it carries an anchor, a heading that slugifies to it.
func TestDocLinksResolve(t *testing.T) {
	nonWord := regexp.MustCompile(`[^a-z0-9 -]`)
	for _, c := range diag.All() {
		file, anchor, _ := strings.Cut(c.Doc, "#")
		path := filepath.Join("..", "..", file)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: doc link %q: %v", c.ID, c.Doc, err)
			continue
		}
		if anchor == "" {
			continue
		}
		found := false
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "#") {
				continue
			}
			h := strings.ToLower(strings.TrimSpace(strings.TrimLeft(line, "#")))
			h = strings.ReplaceAll(nonWord.ReplaceAllString(h, ""), " ", "-")
			if h == anchor {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: doc anchor %q not found as a heading in %s", c.ID, anchor, file)
		}
	}
}
