package diag

import (
	"encoding/json"
	"errors"
	"testing"

	"aquavol/internal/lang/token"
)

func TestDiagnosticError(t *testing.T) {
	pos := token.Pos{Line: 3, Col: 7}
	cases := []struct {
		d    Diagnostic
		want string
	}{
		// The historical front-end shape: code-less error at a position.
		{Diagnostic{Pos: pos, Msg: "undeclared identifier x"},
			"3:7: undeclared identifier x"},
		{Diagnostic{Pos: pos, Severity: Warning, Code: "VOL010", Msg: "ratio too skewed", Suggestion: "cascade depth 2 suffices"},
			"3:7: warning[VOL010]: ratio too skewed; cascade depth 2 suffices"},
		{Diagnostic{Severity: Info, Code: "VOL012", Msg: "will cascade"},
			"info[VOL012]: will cascade"},
	}
	for _, tc := range cases {
		if got := tc.d.Error(); got != tc.want {
			t.Errorf("Error() = %q, want %q", got, tc.want)
		}
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Error, Warning, Info} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, data, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity name should not unmarshal")
	}
}

func TestListSortAndHelpers(t *testing.T) {
	l := List{
		{Pos: token.Pos{Line: 5, Col: 1}, Severity: Info, Code: "VOL012", Msg: "b"},
		{Pos: token.Pos{Line: 2, Col: 4}, Severity: Warning, Code: "VOL010", Msg: "a"},
		{Pos: token.Pos{Line: 2, Col: 4}, Severity: Error, Code: "VOL001", Msg: "c"},
	}
	l.Sort()
	if l[0].Code != "VOL001" || l[1].Code != "VOL010" || l[2].Code != "VOL012" {
		t.Errorf("sort order wrong: %v", l)
	}
	if !l.HasErrors() || l.Count(Error) != 1 || l.Count(Warning) != 1 || l.Count(Info) != 1 {
		t.Errorf("helpers disagree with contents: %v", l)
	}
	if List(nil).Err() != nil {
		t.Error("empty list should Err() nil")
	}
	var asList List
	if err := error(l); !errors.As(err, &asList) || len(asList) != 3 {
		t.Error("List should round-trip through error via errors.As")
	}
}
