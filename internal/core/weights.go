package core

import (
	"fmt"
	"math"
	"sort"

	"aquavol/internal/budget"
	"aquavol/internal/dag"
)

// This file implements two refinements the paper describes around the
// base DAGSolve algorithm:
//
//   - §3.3: "the Vnorms could be set to arbitrary values to produce
//     outputs in arbitrary ratios ... unless we have information to
//     prefer production of one output fluid over another, we initialize
//     all output volumes to be equal." ComputeVnormsWeighted exposes that
//     preference knob.
//
//   - §3.5, loops with independent iterations: "instead of assigning the
//     largest Vnorm to the default maximum, we pick the output node with
//     the smallest Vnorm and assign it the programmer-specified volume."
//     DispenseForMinOutputs implements that inverse dispensing mode,
//     which plans the smallest input volumes that still meet required
//     output volumes.

// ComputeVnormsWeighted is ComputeVnorms with per-leaf output weights:
// leaf (output) nodes are seeded with weight[id] instead of 1, producing
// output volumes in the given relative proportions. Leaves absent from
// the map get weight 1; weights must be positive.
func ComputeVnormsWeighted(g *dag.Graph, weight map[int]float64) (*Vnorms, error) {
	for _, id := range sortedIDs(weight) {
		w := weight[id]
		n := g.Node(id)
		if n == nil {
			return nil, fmt.Errorf("core: output weight for missing node %d", id)
		}
		if !n.IsLeaf() || n.Kind == dag.Excess {
			return nil, fmt.Errorf("core: output weight for non-output node %v", n)
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("core: output weight for %v must be positive and finite, got %v", n, w)
		}
	}
	v, err := computeVnormsSeeded(g, func(n *dag.Node) float64 {
		if w, ok := weight[n.ID()]; ok {
			return w
		}
		return 1
	}, 0, nil)
	return v, err
}

// DispenseForMinOutputs assigns absolute volumes so that every output
// listed in minVol (node id → nl) receives AT LEAST that volume, using as
// little fluid as possible: the binding output fixes the scale and
// everything else follows proportionally. It fails with overflow
// underflows recorded in the plan if meeting the minimums would exceed
// hardware capacity anywhere, and with the usual least-count underflows
// if the required scale is too small.
//
// This is the §3.5 dispensing mode for while-loop bodies whose required
// per-iteration output volumes are known: over-provisioning of the inputs
// (via static replication) is the caller's job; this computes the
// per-iteration demand.
func DispenseForMinOutputs(v *Vnorms, cfg Config, minVol map[int]float64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(minVol) == 0 {
		return nil, fmt.Errorf("core: DispenseForMinOutputs needs at least one required output volume")
	}
	g := v.Graph
	scale := 0.0
	for _, id := range sortedIDs(minVol) {
		want := minVol[id]
		n := g.Node(id)
		if n == nil || !n.IsLeaf() || n.Kind == dag.Excess {
			return nil, fmt.Errorf("core: required volume for non-output node %d", id)
		}
		if !(want > 0) {
			return nil, fmt.Errorf("core: required volume for %v must be positive, got %v", n, want)
		}
		if vn := v.Node[id]; vn > 0 && want/vn > scale {
			scale = want / vn
		}
	}
	p := &Plan{
		Graph:      g,
		Method:     "dagsolve-minout",
		NodeVnorm:  v.Node,
		EdgeVnorm:  v.Edge,
		NodeVolume: make([]float64, len(v.Node)),
		EdgeVolume: make([]float64, len(v.Edge)),
		Production: make([]float64, len(v.Node)),
		Scale:      scale,
	}
	for _, n := range g.Nodes() {
		if n == nil {
			continue
		}
		id := n.ID()
		p.NodeVolume[id] = v.Node[id] * scale
		prod := v.Node[id]
		if !n.IsSource() {
			prod *= n.OutFrac
		}
		prod *= 1 - n.Discard
		p.Production[id] = prod * scale
		// Overflow is possible in this mode: the required outputs may
		// demand more than capacity upstream.
		if p.NodeVolume[id] > cfg.MaxCapacity+volTol {
			p.Underflows = append(p.Underflows, Underflow{
				Edge: -1, Node: id,
				Volume:  p.NodeVolume[id],
				Minimum: -cfg.MaxCapacity, // negative minimum marks an overflow record
			})
		}
	}
	for _, e := range g.Edges() {
		if e == nil {
			continue
		}
		p.EdgeVolume[e.ID()] = v.Edge[e.ID()] * scale
	}
	p.checkMinimums(cfg)
	return p, nil
}

// computeVnormsSeeded is the backward pass with a custom leaf seed and an
// optional safety margin: every non-leaf node's consumption is inflated
// by (1+margin) before computing its production, so each level of the
// plan carries ε slack against fluid loss. Margins scale a node's
// in-edges uniformly, preserving mix ratios, and the maximum node still
// defines the dispensing scale, so capacity is never exceeded. bud (may
// be nil) is charged one work unit per node visited.
func computeVnormsSeeded(g *dag.Graph, seed func(*dag.Node) float64, margin float64, bud *budget.Meter) (*Vnorms, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for _, n := range g.Nodes() {
		if n != nil && n.Unknown && !n.IsLeaf() {
			return nil, ErrNeedsPartition
		}
	}
	order := g.TopoOrder()
	v := &Vnorms{
		Graph: g,
		Node:  make([]float64, len(g.Nodes())),
		Edge:  make([]float64, len(g.Edges())),
	}
	for i := len(order) - 1; i >= 0; i-- {
		if err := bud.Charge(1); err != nil {
			return nil, err
		}
		n := order[i]
		id := n.ID()
		var used float64
		switch {
		case n.Kind == dag.Excess:
			continue
		case n.IsLeaf():
			used = seed(n)
		default:
			for _, e := range n.Out() {
				if e.To.Kind == dag.Excess {
					continue
				}
				used += v.Edge[e.ID()]
			}
			used *= 1 + margin
		}
		production := used / (1 - n.Discard)
		input := production / n.OutFrac
		if n.IsSource() {
			v.Node[id] = production
		} else {
			v.Node[id] = input
		}
		for _, e := range n.In() {
			v.Edge[e.ID()] = e.Frac * input
		}
		for _, e := range n.Out() {
			if e.To.Kind == dag.Excess {
				ex := production * n.Discard
				v.Edge[e.ID()] = ex
				v.Node[e.To.ID()] = ex
			}
		}
	}
	return v, nil
}

// sortedIDs returns the map's node ids in increasing order, so
// validation errors and scale selection do not depend on map iteration
// order.
func sortedIDs(m map[int]float64) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
